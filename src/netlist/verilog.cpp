#include "netlist/verilog.hpp"

#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace ripple::netlist {
namespace {

// Wire names containing bus-bit brackets need Verilog escaped-identifier
// syntax: "\name[3] " (backslash prefix, terminating space).
std::string escape_name(const std::string& name) {
  if (name.find('[') == std::string::npos) return name;
  return "\\" + name + " ";
}

} // namespace

void write_verilog(const Netlist& n, std::ostream& os) {
  n.check();

  os << "module " << n.name() << " (";
  bool first = true;
  for (WireId w : n.primary_inputs()) {
    os << (first ? "" : ", ") << escape_name(n.wire(w).name);
    first = false;
  }
  for (WireId w : n.primary_outputs()) {
    os << (first ? "" : ", ") << escape_name(n.wire(w).name);
    first = false;
  }
  os << ");\n";

  for (WireId w : n.primary_inputs()) {
    os << "  input " << escape_name(n.wire(w).name) << ";\n";
  }
  for (WireId w : n.primary_outputs()) {
    os << "  output " << escape_name(n.wire(w).name) << ";\n";
  }
  for (WireId w : n.all_wires()) {
    const Wire& wire = n.wire(w);
    if (wire.driver_kind == DriverKind::PrimaryInput) continue;
    // Verilog requires outputs not to be re-declared as plain wires.
    if (wire.is_primary_output) continue;
    os << "  wire " << escape_name(wire.name) << ";\n";
  }

  for (GateId g : n.all_gates()) {
    const Gate& gate = n.gate(g);
    const cell::Info& ci = cell::info(gate.kind);
    os << "  " << ci.name << " g" << g.value() << " (";
    for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
      os << '.' << ci.pins[p] << '('
         << escape_name(n.wire(gate.inputs[p]).name) << "), ";
    }
    os << ".Y(" << escape_name(n.wire(gate.output).name) << "));\n";
  }

  for (FlopId f : n.all_flops()) {
    const Flop& flop = n.flop(f);
    os << "  DFF_X1 #(.INIT(1'b" << (flop.init ? 1 : 0) << ")) "
       << escape_name(flop.name) << " (.D("
       << escape_name(n.wire(flop.d).name) << "), .Q("
       << escape_name(n.wire(flop.q).name) << "));\n";
  }

  os << "endmodule\n";
}

std::string to_verilog(const Netlist& n) {
  std::ostringstream os;
  write_verilog(n, os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Token {
  std::string text;
  int line;
};

class Lexer {
public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '\\') {
        // Escaped identifier: up to next whitespace, backslash dropped.
        ++pos_;
        const std::size_t start = pos_;
        while (pos_ < text_.size() && !std::isspace(
                   static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        tokens.push_back(
            Token{std::string(text_.substr(start, pos_ - start)), line_});
      } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                 c == '\'') {
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
          const char d = text_[pos_];
          if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
              d == '\'' || d == '$' || d == '.') {
            ++pos_;
          } else {
            break;
          }
        }
        tokens.push_back(
            Token{std::string(text_.substr(start, pos_ - start)), line_});
      } else {
        tokens.push_back(Token{std::string(1, c), line_});
        ++pos_;
      }
    }
    tokens.push_back(Token{"", line_}); // EOF sentinel
    return tokens;
  }

private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
public:
  explicit Parser(std::string_view text) : tokens_(Lexer(text).run()) {}

  Netlist run() {
    expect("module");
    Netlist n(take_identifier("module name"));
    expect("(");
    if (!at(")")) {
      do {
        take_identifier("port name"); // role determined by declarations below
      } while (accept(","));
    }
    expect(")");
    expect(";");

    // Phase 1: scan all statements, record declarations and instances; wires
    // may be referenced before declaration order-wise, so instances are
    // resolved in phase 2.
    struct Instance {
      std::string cell;
      std::string name;
      bool init = false;
      std::vector<std::pair<std::string, std::string>> conns; // pin -> wire
      int line;
    };
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
    std::vector<std::string> wires;
    std::vector<Instance> instances;

    while (!at("endmodule")) {
      RIPPLE_CHECK(!at_eof(), "unexpected end of file in module body");
      if (accept("input")) {
        do {
          inputs.push_back(take_identifier("input name"));
        } while (accept(","));
        expect(";");
      } else if (accept("output")) {
        do {
          outputs.push_back(take_identifier("output name"));
        } while (accept(","));
        expect(";");
      } else if (accept("wire")) {
        do {
          wires.push_back(take_identifier("wire name"));
        } while (accept(","));
        expect(";");
      } else {
        Instance inst;
        inst.line = peek().line;
        inst.cell = take_identifier("cell name");
        if (accept("#")) {
          expect("(");
          expect(".");
          const std::string param = take_identifier("parameter name");
          RIPPLE_CHECK(param == "INIT", "line ", inst.line,
                       ": unsupported parameter '", param, "'");
          expect("(");
          const std::string value = take_identifier("INIT value");
          RIPPLE_CHECK(value == "1'b0" || value == "1'b1", "line ", inst.line,
                       ": bad INIT value '", value, "'");
          inst.init = value == "1'b1";
          expect(")");
          expect(")");
        }
        inst.name = take_identifier("instance name");
        expect("(");
        do {
          expect(".");
          const std::string pin = take_identifier("pin name");
          expect("(");
          const std::string wire = take_identifier("wire name");
          expect(")");
          inst.conns.emplace_back(pin, wire);
        } while (accept(","));
        expect(")");
        expect(";");
        instances.push_back(std::move(inst));
      }
    }
    expect("endmodule");

    // Phase 2: build the netlist.
    for (const std::string& in : inputs) n.add_input(in);
    for (const std::string& w : wires) n.add_wire(w);
    for (const std::string& out : outputs) {
      if (!n.find_wire(out)) n.add_wire(out);
    }

    const auto wire_of = [&](const std::string& name, int line) {
      const auto id = n.find_wire(name);
      RIPPLE_CHECK(id.has_value(), "line ", line, ": undeclared wire '", name,
                   "'");
      return *id;
    };

    const cell::Library& lib = cell::Library::instance();
    for (const Instance& inst : instances) {
      const auto kind = lib.find(inst.cell);
      RIPPLE_CHECK(kind.has_value(), "line ", inst.line, ": unknown cell '",
                   inst.cell, "'");
      const auto pin_value = [&](std::string_view pin) -> const std::string* {
        for (const auto& [p, w] : inst.conns) {
          if (p == pin) return &w;
        }
        return nullptr;
      };

      if (*kind == Kind::Dff) {
        const std::string* d = pin_value("D");
        const std::string* q = pin_value("Q");
        RIPPLE_CHECK(d && q, "line ", inst.line, ": DFF needs .D and .Q");
        // The flop's Q wire was declared as a plain wire; re-bind it: create
        // the flop with a temporary name check, then alias. We instead
        // require the canonical writer convention: Q wire == declared wire.
        // To keep parsing general we create the flop and splice its Q.
        const FlopId f = splice_flop(n, inst.name, inst.init, *q, inst.line);
        n.connect_flop(f, wire_of(*d, inst.line));
      } else {
        const cell::Info& ci = cell::info(*kind);
        std::vector<WireId> ins(ci.num_inputs);
        for (std::size_t p = 0; p < ci.num_inputs; ++p) {
          const std::string* w = pin_value(ci.pins[p]);
          RIPPLE_CHECK(w != nullptr, "line ", inst.line, ": cell ", ci.name,
                       " missing pin ", ci.pins[p]);
          ins[p] = wire_of(*w, inst.line);
        }
        const std::string* y = pin_value("Y");
        RIPPLE_CHECK(y != nullptr, "line ", inst.line, ": missing .Y");
        n.add_gate(*kind, ins, wire_of(*y, inst.line));
      }
    }

    for (const std::string& out : outputs) {
      n.mark_output(wire_of(out, 0));
    }

    n.check();
    return n;
  }

private:
  // The writer emits DFFs whose Q wire is "<flopname>__q", and add_flop
  // creates exactly that wire. For foreign netlists the Q net can have any
  // name; we handle both by pre-checking whether add_flop's convention fits.
  static FlopId splice_flop(Netlist& n, const std::string& inst_name,
                            bool init, const std::string& q_wire, int line) {
    const auto q = n.find_wire(q_wire);
    RIPPLE_CHECK(q.has_value(), "line ", line, ": undeclared wire '", q_wire,
                 "'");
    return n.adopt_flop(inst_name, init, *q);
  }

  const Token& peek() const { return tokens_[pos_]; }
  bool at_eof() const { return peek().text.empty(); }
  bool at(std::string_view t) const { return peek().text == t; }

  bool accept(std::string_view t) {
    if (at(t)) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(std::string_view t) {
    RIPPLE_CHECK(accept(t), "line ", peek().line, ": expected '",
                 std::string(t), "', got '", peek().text, "'");
  }

  std::string take_identifier(std::string_view what) {
    RIPPLE_CHECK(!at_eof(), "unexpected end of file, wanted ",
                 std::string(what));
    const std::string t = peek().text;
    RIPPLE_CHECK(t != "(" && t != ")" && t != ";" && t != "," && t != ".",
                 "line ", peek().line, ": expected ", std::string(what),
                 ", got '", t, "'");
    ++pos_;
    return t;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

} // namespace

Netlist parse_verilog(std::string_view text) { return Parser(text).run(); }

} // namespace ripple::netlist
