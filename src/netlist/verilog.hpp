// Structural-Verilog (subset) serialization of netlists.
//
// The subset covers exactly what a flat, technology-mapped netlist needs —
// the same artifact the paper obtains from Design Compiler:
//
//   module <name> (<port>, ...);
//     input  a;
//     output y;
//     wire   n1;
//     AND2_X1 g0 (.A(a), .B(n1), .Y(y));
//     DFF_X1 #(.INIT(1'b0)) state_reg (.D(n1), .Q(state_reg__q));
//   endmodule
//
// One module per file, no behavioural constructs, no vectors (bus bits are
// flattened to "name[3]" escaped as "\name[3] "). Round-trips exactly:
// parse(write(n)) is structurally identical to n.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace ripple::netlist {

/// Serialize a checked netlist.
void write_verilog(const Netlist& n, std::ostream& os);
[[nodiscard]] std::string to_verilog(const Netlist& n);

/// Parse one module. Throws ripple::Error with line information on malformed
/// input or unknown cells.
[[nodiscard]] Netlist parse_verilog(std::string_view text);

} // namespace ripple::netlist
