// Gate-level netlist of a synchronous circuit.
//
// The model matches the paper's Section 2 system model: a boolean network N
// over primary inputs and flip-flop outputs, computing primary outputs and
// flip-flop next-state (D) values, clocked by a single implicit clock.
//
// Entities are stored in dense vectors indexed by strongly typed ids:
//   Wire -- a named signal; driven by exactly one of {primary input, gate
//           output, flop Q}.
//   Gate -- an instance of a combinational library cell.
//   Flop -- a D flip-flop with an initial value. Flops are kept out of the
//           gate table because the simulator, the fault model (SEU = flip of
//           a flop) and the MATE engine all treat them specially.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cell/library.hpp"
#include "util/assert.hpp"
#include "util/ids.hpp"

namespace ripple::netlist {

using cell::Kind;

/// How a wire gets its value.
enum class DriverKind : std::uint8_t {
  None,         // declared but not yet driven (invalid in a checked netlist)
  PrimaryInput, // set by the environment each cycle
  Gate,         // output of a combinational gate
  Flop,         // Q output of a flip-flop
};

struct Wire {
  std::string name;
  DriverKind driver_kind = DriverKind::None;
  GateId driver_gate;            // valid iff driver_kind == Gate
  FlopId driver_flop;            // valid iff driver_kind == Flop
  bool is_primary_output = false;

  // Readers. Kept up to date by Netlist mutation methods; the MATE fault-cone
  // computation walks these.
  std::vector<GateId> gate_fanout;
  std::vector<FlopId> flop_fanout;
};

struct Gate {
  Kind kind = Kind::Buf;
  std::vector<WireId> inputs; // pin order follows cell::Info::pins
  WireId output;
};

struct Flop {
  std::string name;  // instance name (usually the Q wire name + "_reg")
  WireId d;          // next-state input; invalid until connected
  WireId q;          // state output wire
  bool init = false; // reset value
};

class Netlist {
public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // --- construction -------------------------------------------------------

  /// Declare a new wire. Names must be unique and valid identifiers (bus bits
  /// use the flat form "name[3]", which we also accept).
  WireId add_wire(std::string_view name);

  /// Declare a primary input (creates the wire).
  WireId add_input(std::string_view name);

  /// Instantiate a combinational cell driving `output`. The output wire must
  /// be undriven so far; input wires must exist.
  GateId add_gate(Kind kind, std::span<const WireId> inputs, WireId output);

  /// Convenience: create the output wire and the gate in one step.
  WireId add_gate_new(Kind kind, std::span<const WireId> inputs,
                      std::string_view output_name);

  GateId add_gate(Kind kind, std::initializer_list<WireId> inputs,
                  WireId output) {
    return add_gate(kind, std::span<const WireId>(inputs.begin(),
                                                  inputs.size()),
                    output);
  }
  WireId add_gate_new(Kind kind, std::initializer_list<WireId> inputs,
                      std::string_view output_name) {
    return add_gate_new(kind,
                        std::span<const WireId>(inputs.begin(), inputs.size()),
                        output_name);
  }

  /// Create a flip-flop with a fresh Q wire; the D input is connected later
  /// (state feedback loops make D unavailable at creation time).
  FlopId add_flop(std::string_view name, bool init = false);

  /// Create a flop whose Q output is an existing, so-far-undriven wire.
  /// Used by the Verilog parser, where the Q net is declared separately.
  FlopId adopt_flop(std::string_view name, bool init, WireId q);

  /// Connect the D input of a flop.
  void connect_flop(FlopId f, WireId d);

  /// Mark a wire as primary output (idempotent).
  void mark_output(WireId w);

  // --- access -------------------------------------------------------------

  [[nodiscard]] std::size_t num_wires() const { return wires_.size(); }
  [[nodiscard]] std::size_t num_gates() const { return gates_.size(); }
  [[nodiscard]] std::size_t num_flops() const { return flops_.size(); }

  [[nodiscard]] const Wire& wire(WireId id) const {
    RIPPLE_ASSERT(id.index() < wires_.size());
    return wires_[id.index()];
  }
  [[nodiscard]] const Gate& gate(GateId id) const {
    RIPPLE_ASSERT(id.index() < gates_.size());
    return gates_[id.index()];
  }
  [[nodiscard]] const Flop& flop(FlopId id) const {
    RIPPLE_ASSERT(id.index() < flops_.size());
    return flops_[id.index()];
  }

  [[nodiscard]] std::span<const WireId> primary_inputs() const {
    return inputs_;
  }
  [[nodiscard]] std::span<const WireId> primary_outputs() const {
    return outputs_;
  }

  /// Find a wire by name; nullopt if absent.
  [[nodiscard]] std::optional<WireId> find_wire(std::string_view name) const;

  /// Find a flop by instance name; nullopt if absent.
  [[nodiscard]] std::optional<FlopId> find_flop(std::string_view name) const;

  /// Iterate helpers (ids are dense: 0..num_X()-1).
  [[nodiscard]] std::vector<WireId> all_wires() const;
  [[nodiscard]] std::vector<GateId> all_gates() const;
  [[nodiscard]] std::vector<FlopId> all_flops() const;

  // --- integrity ----------------------------------------------------------

  /// Throw ripple::Error if any wire is undriven, any flop unconnected, or
  /// any gate has a pin-count mismatch. (Combinational cycles are detected by
  /// the levelizer, which needs the topological sort anyway.)
  void check() const;

  /// Total cell area (gates + flops), in library units.
  [[nodiscard]] double total_area() const;

  /// Gate-count histogram by cell kind.
  [[nodiscard]] std::unordered_map<Kind, std::size_t> kind_histogram() const;

private:
  std::string name_;
  std::vector<Wire> wires_;
  std::vector<Gate> gates_;
  std::vector<Flop> flops_;
  std::vector<WireId> inputs_;
  std::vector<WireId> outputs_;
  std::unordered_map<std::string, WireId> wire_by_name_;
  std::unordered_map<std::string, FlopId> flop_by_name_;
};

} // namespace ripple::netlist
