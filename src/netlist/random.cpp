#include "netlist/random.hpp"

#include <string>
#include <vector>

namespace ripple::netlist {

Netlist random_circuit(const RandomCircuitSpec& spec, Rng& rng) {
  RIPPLE_CHECK(spec.num_inputs + spec.num_flops > 0,
               "need at least one signal source");
  Netlist n("rand");

  std::vector<WireId> pool; // wires available as gate inputs, creation order

  for (std::size_t i = 0; i < spec.num_inputs; ++i) {
    pool.push_back(n.add_input("in" + std::to_string(i)));
  }

  std::vector<FlopId> flops;
  for (std::size_t i = 0; i < spec.num_flops; ++i) {
    const FlopId f = n.add_flop("r" + std::to_string(i), rng.next_bool());
    flops.push_back(f);
    pool.push_back(n.flop(f).q);
  }

  std::vector<cell::Kind> kinds = {
      cell::Kind::Inv,   cell::Kind::Buf,   cell::Kind::And2,
      cell::Kind::And3,  cell::Kind::Nand2, cell::Kind::Or2,
      cell::Kind::Or3,   cell::Kind::Nor2,  cell::Kind::Aoi21,
      cell::Kind::Oai21, cell::Kind::And4,  cell::Kind::Nor3,
  };
  if (spec.allow_xor) {
    kinds.push_back(cell::Kind::Xor2);
    kinds.push_back(cell::Kind::Xnor2);
  }
  if (spec.allow_mux) kinds.push_back(cell::Kind::Mux2);

  const auto pick_input = [&]() -> WireId {
    if (rng.next_double() < spec.locality && pool.size() > 4) {
      const std::size_t quarter = pool.size() / 4;
      return pool[pool.size() - 1 - rng.next_below(quarter + 1)];
    }
    return pool[rng.next_below(pool.size())];
  };

  for (std::size_t i = 0; i < spec.num_gates; ++i) {
    const cell::Kind kind = kinds[rng.next_below(kinds.size())];
    const std::size_t arity = cell::num_inputs(kind);
    std::vector<WireId> ins(arity);
    for (auto& w : ins) w = pick_input();
    pool.push_back(
        n.add_gate_new(kind, ins, "n" + std::to_string(i)));
  }

  // Connect every flop D to some wire (possibly another flop's Q — that is a
  // legal feedback path through state).
  for (FlopId f : flops) {
    n.connect_flop(f, pool[rng.next_below(pool.size())]);
  }

  // Primary outputs from the deepest region of the circuit. Never reuse a
  // primary input as an output (the Verilog writer would emit a port that is
  // both input and output).
  for (std::size_t i = 0; i < spec.num_outputs; ++i) {
    WireId w = pick_input();
    for (int tries = 0;
         n.wire(w).driver_kind == DriverKind::PrimaryInput && tries < 64;
         ++tries) {
      w = pick_input();
    }
    if (n.wire(w).driver_kind != DriverKind::PrimaryInput) n.mark_output(w);
  }

  n.check();
  return n;
}

} // namespace ripple::netlist
