#include "netlist/dot.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ripple::netlist {

void write_dot(const Netlist& n, std::ostream& os, const DotOptions& options) {
  const auto wire_highlighted = [&](WireId w) {
    return std::find(options.highlight_wires.begin(),
                     options.highlight_wires.end(),
                     w) != options.highlight_wires.end();
  };
  const auto gate_highlighted = [&](GateId g) {
    return std::find(options.highlight_gates.begin(),
                     options.highlight_gates.end(),
                     g) != options.highlight_gates.end();
  };

  os << "digraph \"" << n.name() << "\" {\n";
  os << "  rankdir=LR;\n  node [fontname=\"monospace\"];\n";

  for (WireId w : n.primary_inputs()) {
    os << "  \"w" << w.value() << "\" [shape=plaintext,label=\""
       << n.wire(w).name << "\"";
    if (wire_highlighted(w)) os << ",fontcolor=red";
    os << "];\n";
  }
  for (GateId g : n.all_gates()) {
    const Gate& gate = n.gate(g);
    os << "  \"g" << g.value() << "\" [shape=box,label=\""
       << cell::name(gate.kind);
    if (!options.compact) os << "\\ng" << g.value();
    os << "\"";
    if (gate_highlighted(g)) os << ",style=filled,fillcolor=orange";
    os << "];\n";
  }
  for (FlopId f : n.all_flops()) {
    os << "  \"f" << f.value() << "\" [shape=box,style=rounded,label=\"DFF\\n"
       << n.flop(f).name << "\"];\n";
  }

  const auto wire_source = [&](WireId w) -> std::string {
    const Wire& wire = n.wire(w);
    switch (wire.driver_kind) {
      case DriverKind::PrimaryInput:
        return "\"w" + std::to_string(w.value()) + "\"";
      case DriverKind::Gate:
        return "\"g" + std::to_string(wire.driver_gate.value()) + "\"";
      case DriverKind::Flop:
        return "\"f" + std::to_string(wire.driver_flop.value()) + "\"";
      case DriverKind::None:
        return "\"undriven\"";
    }
    return {};
  };

  const auto edge_attr = [&](WireId w) {
    std::string attr = " [label=\"" + n.wire(w).name + "\"";
    if (wire_highlighted(w)) attr += ",color=red,fontcolor=red";
    return attr + "]";
  };

  for (GateId g : n.all_gates()) {
    for (WireId in : n.gate(g).inputs) {
      os << "  " << wire_source(in) << " -> \"g" << g.value() << "\""
         << edge_attr(in) << ";\n";
    }
  }
  for (FlopId f : n.all_flops()) {
    const WireId d = n.flop(f).d;
    if (d.valid()) {
      os << "  " << wire_source(d) << " -> \"f" << f.value() << "\""
         << edge_attr(d) << ";\n";
    }
  }
  for (WireId w : n.primary_outputs()) {
    os << "  \"out_w" << w.value() << "\" [shape=plaintext,label=\""
       << n.wire(w).name << "\"];\n";
    os << "  " << wire_source(w) << " -> \"out_w" << w.value() << "\""
       << edge_attr(w) << ";\n";
  }

  os << "}\n";
}

std::string to_dot(const Netlist& n, const DotOptions& options) {
  std::ostringstream os;
  write_dot(n, os, options);
  return os.str();
}

} // namespace ripple::netlist
