// Graphviz export for debugging and for the Figure-1 example rendering.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace ripple::netlist {

struct DotOptions {
  /// Wires to highlight (e.g. a fault cone); drawn filled red.
  std::vector<WireId> highlight_wires;
  /// Gates to highlight; drawn filled orange.
  std::vector<GateId> highlight_gates;
  /// If true, label gates with the cell kind only (no instance id).
  bool compact = false;
};

void write_dot(const Netlist& n, std::ostream& os,
               const DotOptions& options = {});
[[nodiscard]] std::string to_dot(const Netlist& n,
                                 const DotOptions& options = {});

} // namespace ripple::netlist
