// Random synchronous-circuit generation for property-based testing.
//
// The generated circuits are always valid (checked, acyclic): gates only read
// wires created earlier, flop D inputs are chosen from any wire, so feedback
// goes through flops exactly as in a real synchronous design. Used to fuzz
// the simulator, the Verilog round-trip, the optimizer, and — most
// importantly — the MATE soundness property (every trigger is a real mask).
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace ripple::netlist {

struct RandomCircuitSpec {
  std::size_t num_inputs = 4;
  std::size_t num_outputs = 3;
  std::size_t num_flops = 6;
  std::size_t num_gates = 40;
  /// Probability that a gate input is taken from the most recent quarter of
  /// wires (biases toward deep circuits instead of wide ones).
  double locality = 0.5;
  /// Allow XOR/XNOR cells (they have no masking capability; turning them off
  /// yields circuits with many MATEs, good for exercising the search).
  bool allow_xor = true;
  /// Allow MUX2 cells.
  bool allow_mux = true;
};

[[nodiscard]] Netlist random_circuit(const RandomCircuitSpec& spec, Rng& rng);

} // namespace ripple::netlist
