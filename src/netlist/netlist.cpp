#include "netlist/netlist.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace ripple::netlist {
namespace {

bool valid_wire_name(std::string_view name) {
  // Identifier characters with optional flat bus-bit segments "[123]"
  // anywhere after the first character (flop Q wires are "<flop>[i]__q").
  if (name.empty()) return false;
  const char head = name.front();
  if (!(std::isalpha(static_cast<unsigned char>(head)) || head == '_')) {
    return false;
  }
  bool in_bracket = false;
  bool bracket_has_digit = false;
  for (char c : name.substr(1)) {
    if (in_bracket) {
      if (c == ']') {
        if (!bracket_has_digit) return false;
        in_bracket = false;
      } else if (c >= '0' && c <= '9') {
        bracket_has_digit = true;
      } else {
        return false;
      }
    } else if (c == '[') {
      in_bracket = true;
      bracket_has_digit = false;
    } else if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                 c == '$' || c == '.')) {
      return false;
    }
  }
  return !in_bracket;
}

} // namespace

WireId Netlist::add_wire(std::string_view name) {
  RIPPLE_CHECK(valid_wire_name(name), "bad wire name '", std::string(name),
               "'");
  RIPPLE_CHECK(!wire_by_name_.contains(std::string(name)),
               "duplicate wire name '", std::string(name), "'");
  const WireId id{static_cast<WireId::value_type>(wires_.size())};
  Wire w;
  w.name = std::string(name);
  wires_.push_back(std::move(w));
  wire_by_name_.emplace(std::string(name), id);
  return id;
}

WireId Netlist::add_input(std::string_view name) {
  const WireId id = add_wire(name);
  wires_[id.index()].driver_kind = DriverKind::PrimaryInput;
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_gate(Kind kind, std::span<const WireId> inputs,
                         WireId output) {
  RIPPLE_CHECK(kind != Kind::Dff, "use add_flop for flip-flops");
  const cell::Info& ci = cell::info(kind);
  RIPPLE_CHECK(inputs.size() == ci.num_inputs, "cell ", ci.name, " needs ",
               static_cast<int>(ci.num_inputs), " inputs, got ",
               inputs.size());
  RIPPLE_ASSERT(output.index() < wires_.size());
  Wire& out = wires_[output.index()];
  RIPPLE_CHECK(out.driver_kind == DriverKind::None, "wire '", out.name,
               "' already driven");

  const GateId id{static_cast<GateId::value_type>(gates_.size())};
  Gate g;
  g.kind = kind;
  g.inputs.assign(inputs.begin(), inputs.end());
  g.output = output;
  gates_.push_back(std::move(g));

  out.driver_kind = DriverKind::Gate;
  out.driver_gate = id;
  for (WireId in : inputs) {
    RIPPLE_ASSERT(in.index() < wires_.size());
    wires_[in.index()].gate_fanout.push_back(id);
  }
  return id;
}

WireId Netlist::add_gate_new(Kind kind, std::span<const WireId> inputs,
                             std::string_view output_name) {
  const WireId out = add_wire(output_name);
  add_gate(kind, inputs, out);
  return out;
}

FlopId Netlist::add_flop(std::string_view name, bool init) {
  RIPPLE_CHECK(is_identifier(name) || valid_wire_name(name),
               "bad flop name '", std::string(name), "'");
  RIPPLE_CHECK(!flop_by_name_.contains(std::string(name)),
               "duplicate flop name '", std::string(name), "'");
  const FlopId id{static_cast<FlopId::value_type>(flops_.size())};
  const WireId q = add_wire(std::string(name) + "__q");
  flops_.push_back(Flop{.name = std::string(name),
                        .d = WireId{},
                        .q = q,
                        .init = init});
  wires_[q.index()].driver_kind = DriverKind::Flop;
  wires_[q.index()].driver_flop = id;
  flop_by_name_.emplace(std::string(name), id);
  return id;
}

FlopId Netlist::adopt_flop(std::string_view name, bool init, WireId q) {
  RIPPLE_CHECK(!flop_by_name_.contains(std::string(name)),
               "duplicate flop name '", std::string(name), "'");
  RIPPLE_ASSERT(q.index() < wires_.size());
  Wire& qw = wires_[q.index()];
  RIPPLE_CHECK(qw.driver_kind == DriverKind::None, "wire '", qw.name,
               "' already driven, cannot be a flop Q");
  const FlopId id{static_cast<FlopId::value_type>(flops_.size())};
  flops_.push_back(Flop{.name = std::string(name),
                        .d = WireId{},
                        .q = q,
                        .init = init});
  qw.driver_kind = DriverKind::Flop;
  qw.driver_flop = id;
  flop_by_name_.emplace(std::string(name), id);
  return id;
}

void Netlist::connect_flop(FlopId f, WireId d) {
  RIPPLE_ASSERT(f.index() < flops_.size());
  RIPPLE_ASSERT(d.index() < wires_.size());
  Flop& ff = flops_[f.index()];
  RIPPLE_CHECK(!ff.d.valid(), "flop '", ff.name, "' already connected");
  ff.d = d;
  wires_[d.index()].flop_fanout.push_back(f);
}

void Netlist::mark_output(WireId w) {
  RIPPLE_ASSERT(w.index() < wires_.size());
  Wire& wire = wires_[w.index()];
  if (!wire.is_primary_output) {
    wire.is_primary_output = true;
    outputs_.push_back(w);
  }
}

std::optional<WireId> Netlist::find_wire(std::string_view name) const {
  const auto it = wire_by_name_.find(std::string(name));
  if (it == wire_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<FlopId> Netlist::find_flop(std::string_view name) const {
  const auto it = flop_by_name_.find(std::string(name));
  if (it == flop_by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<WireId> Netlist::all_wires() const {
  std::vector<WireId> v;
  v.reserve(wires_.size());
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    v.emplace_back(static_cast<WireId::value_type>(i));
  }
  return v;
}

std::vector<GateId> Netlist::all_gates() const {
  std::vector<GateId> v;
  v.reserve(gates_.size());
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    v.emplace_back(static_cast<GateId::value_type>(i));
  }
  return v;
}

std::vector<FlopId> Netlist::all_flops() const {
  std::vector<FlopId> v;
  v.reserve(flops_.size());
  for (std::size_t i = 0; i < flops_.size(); ++i) {
    v.emplace_back(static_cast<FlopId::value_type>(i));
  }
  return v;
}

void Netlist::check() const {
  for (const Wire& w : wires_) {
    RIPPLE_CHECK(w.driver_kind != DriverKind::None, "wire '", w.name,
                 "' is undriven");
  }
  for (const Flop& f : flops_) {
    RIPPLE_CHECK(f.d.valid(), "flop '", f.name, "' has no D connection");
  }
  for (const Gate& g : gates_) {
    const cell::Info& ci = cell::info(g.kind);
    RIPPLE_CHECK(g.inputs.size() == ci.num_inputs, "gate pin-count mismatch");
  }
}

double Netlist::total_area() const {
  double area = 0.0;
  for (const Gate& g : gates_) area += cell::info(g.kind).area_um2;
  area += static_cast<double>(flops_.size()) *
          cell::info(Kind::Dff).area_um2;
  return area;
}

std::unordered_map<Kind, std::size_t> Netlist::kind_histogram() const {
  std::unordered_map<Kind, std::size_t> hist;
  for (const Gate& g : gates_) ++hist[g.kind];
  if (!flops_.empty()) hist[Kind::Dff] = flops_.size();
  return hist;
}

} // namespace ripple::netlist
