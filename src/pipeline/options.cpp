#include "pipeline/options.hpp"

#include <cstdlib>

#include "util/assert.hpp"

namespace ripple::pipeline {

PipelineConfig PipelineOptions::config() const {
  PipelineConfig config;
  if (!cache_dir.empty()) {
    config.cache_dir = cache_dir;
  } else if (const char* env = std::getenv("RIPPLE_CACHE_DIR");
             env != nullptr && env[0] != '\0') {
    config.cache_dir = env;
  }
  config.use_cache = !no_cache;
  config.threads = threads;
  config.eval_engine = engine();
  config.search_dedup = dedup_enabled();
  if (trace_chunk_cycles != 0) {
    RIPPLE_CHECK(trace_chunk_cycles % 64 == 0,
                 "--trace-chunk-cycles must be a multiple of 64, got ",
                 trace_chunk_cycles);
    config.trace_chunk_cycles = trace_chunk_cycles;
  }
  return config;
}

mate::EvalEngine PipelineOptions::engine() const {
  if (eval_engine.empty() || eval_engine == "stream") {
    return mate::EvalEngine::Streaming;
  }
  if (eval_engine == "bitpar") return mate::EvalEngine::BitParallel;
  RIPPLE_CHECK(eval_engine == "scalar", "unknown --eval-engine '",
               eval_engine, "' (expected 'stream', 'bitpar' or 'scalar')");
  return mate::EvalEngine::Scalar;
}

bool PipelineOptions::dedup_enabled() const {
  if (search_dedup.empty() || search_dedup == "on") return true;
  RIPPLE_CHECK(search_dedup == "off", "unknown --search-dedup '",
               search_dedup, "' (expected 'on' or 'off')");
  return false;
}

mate::SearchParams PipelineOptions::search_params() const {
  return apply(mate::SearchParams{});
}

mate::SearchParams PipelineOptions::apply(mate::SearchParams params) const {
  if (depth != 0) params.path_depth = static_cast<unsigned>(depth);
  if (threads != 0) params.threads = threads;
  params.dedup = dedup_enabled();
  return params;
}

bool PipelineOptions::report_json() const {
  return report == "json" || report.rfind("json:", 0) == 0;
}

std::string PipelineOptions::report_file() const {
  if (report.rfind("json:", 0) == 0) return report.substr(5);
  return {};
}

hafi::CampaignConfig CampaignOptions::apply(hafi::CampaignConfig config) const {
  if (sample != kUnset) config.sample = sample;
  if (run_cycles != kUnset) config.run_cycles = run_cycles;
  if (shard_size != 0) config.shard_size = shard_size;
  config.dut_engine = engine();
  return config;
}

hafi::DutEngine CampaignOptions::engine() const {
  if (dut_engine.empty() || dut_engine == "bitpar") {
    return hafi::DutEngine::BitParallel;
  }
  RIPPLE_CHECK(dut_engine == "scalar", "unknown --dut-engine '", dut_engine,
               "' (expected 'bitpar' or 'scalar')");
  return hafi::DutEngine::Scalar;
}

void register_campaign_options(OptionParser& parser, CampaignOptions& opts) {
  parser.add_value("sample",
                   "sampled injection points (0 = exhaustive fault space)",
                   &opts.sample);
  parser.add_value("run-cycles", "cycles per golden/faulty campaign run",
                   &opts.run_cycles);
  parser.add_flag("validate-pruned",
                  "execute pruned injections anyway and verify soundness",
                  &opts.validate_pruned);
  parser.add_value("shard-size",
                   "injection points per campaign shard (0 = auto)",
                   &opts.shard_size);
  parser.add_flag("resume",
                  "checkpoint finished shards to the artifact cache and "
                  "skip shards already stored there",
                  &opts.resume);
  parser.add_value("dut-engine",
                   "injection engine: bitpar (default) or scalar",
                   &opts.dut_engine);
}

void register_pipeline_options(OptionParser& parser, PipelineOptions& opts) {
  parser.add_flag("csv", "emit CSV instead of the pretty table", &opts.csv);
  parser.add_value("cache-dir",
                   "artifact cache directory (default: $RIPPLE_CACHE_DIR)",
                   &opts.cache_dir);
  parser.add_flag("no-cache", "disable the artifact cache", &opts.no_cache);
  parser.add_value("threads",
                   "MATE-search worker threads (0 = hardware concurrency)",
                   &opts.threads);
  parser.add_value("depth", "override the path-depth heuristic parameter",
                   &opts.depth);
  parser.add_value("cycles", "override the trace length", &opts.cycles);
  parser.add_value("eval-engine",
                   "MATE evaluation engine: stream (default), bitpar or "
                   "scalar",
                   &opts.eval_engine);
  parser.add_value("search-dedup",
                   "cone-isomorphism dedup in the MATE search: on (default) "
                   "or off (per-wire oracle)",
                   &opts.search_dedup);
  parser.add_value("trace-chunk-cycles",
                   "streaming trace chunk length in cycles (multiple of 64; "
                   "0 = default 65536)",
                   &opts.trace_chunk_cycles);
  parser.add_value("report", "stage/cache report format: json[:FILE]",
                   &opts.report);
  parser.add_value("trace-out",
                   "export recorded spans as Chrome trace-event JSON to FILE",
                   &opts.trace_out);
}

} // namespace ripple::pipeline
