// The shared pipeline command line.
//
// Every bench/example binary registers this flag set on its OptionParser
// (replacing the old ad-hoc `want_csv` argv scan):
//   --csv              machine-readable tables on stdout
//   --cache-dir=DIR    artifact cache directory (default: $RIPPLE_CACHE_DIR)
//   --no-cache         disable the artifact cache for this run
//   --threads=N        MATE-search worker threads (0 = hardware concurrency)
//   --depth=N          override SearchParams::path_depth
//   --cycles=N         override the trace length
//   --eval-engine=E    MATE evaluation engine: stream (default), bitpar or
//                      scalar
//   --search-dedup=M   cone-isomorphism dedup in the MATE search: on
//                      (default) or off (per-wire oracle)
//   --trace-chunk-cycles=N  streaming trace chunk length (multiple of 64)
//   --report=json[:F]  emit the stage/cache report as JSON (stderr, or file F)
//   --trace-out=FILE   record spans and export a Chrome trace-event JSON
#pragma once

#include <cstddef>
#include <string>

#include "hafi/campaign.hpp"
#include "mate/search.hpp"
#include "pipeline/pipeline.hpp"
#include "util/options.hpp"

namespace ripple::pipeline {

struct PipelineOptions {
  bool csv = false;
  bool no_cache = false;
  std::string cache_dir; // empty -> $RIPPLE_CACHE_DIR -> caching off
  std::size_t threads = 0;
  std::size_t depth = 0;  // 0 = keep SearchParams default
  std::size_t cycles = 0; // 0 = keep the binary's default
  std::string eval_engine; // "", "stream", "bitpar" or "scalar"
  std::string search_dedup; // "", "on" or "off"
  std::string report;     // "", "json" or "json:FILE"
  std::size_t trace_chunk_cycles = 0; // 0 = kDefaultChunkCycles
  std::string trace_out;  // empty = span recording off (near-zero cost)

  /// PipelineConfig derived from the flags (env fallback applied). Throws
  /// ripple::Error on an unknown --eval-engine value.
  [[nodiscard]] PipelineConfig config() const;

  /// --eval-engine parsed ("" defaults to stream).
  [[nodiscard]] mate::EvalEngine engine() const;

  /// --search-dedup parsed ("" defaults to on). Throws ripple::Error on an
  /// unknown value.
  [[nodiscard]] bool dedup_enabled() const;

  /// Default SearchParams with --depth/--threads applied.
  [[nodiscard]] mate::SearchParams search_params() const;
  /// Apply --depth/--threads to existing params.
  [[nodiscard]] mate::SearchParams apply(mate::SearchParams params) const;

  /// --report handling. Valid values: "" (off), "json", "json:FILE".
  [[nodiscard]] bool report_json() const;
  /// Output file of --report=json:FILE; empty = stderr.
  [[nodiscard]] std::string report_file() const;
};

/// Register the shared flags on a parser (each binary may add its own).
void register_pipeline_options(OptionParser& parser, PipelineOptions& opts);

/// The shared campaign flag set (previously duplicated hard-coded configs
/// across the hafi benches):
///   --sample=N           sampled injection points (0 = exhaustive)
///   --run-cycles=N       cycles per golden/faulty run
///   --validate-pruned    execute pruned injections and verify soundness
///   --shard-size=N       injection points per checkpointable shard (0=auto)
///   --resume             persist finished shards to the artifact cache and
///                        skip shards already checkpointed there
///   --dut-engine=E       injection engine: bitpar (default, 64-lane batch
///                        passes) or scalar (one DUT boot per experiment)
/// (`--threads` comes from the pipeline flag set and applies to the shard
/// fan-out as well.)
struct CampaignOptions {
  std::size_t sample = kUnset;     // kUnset = keep the binary's default
  std::size_t run_cycles = kUnset; // kUnset = keep the binary's default
  bool validate_pruned = false;
  std::size_t shard_size = 0;
  bool resume = false;
  std::string dut_engine; // "", "bitpar" or "scalar"

  static constexpr std::size_t kUnset = static_cast<std::size_t>(-1);

  /// Apply the flag overrides to a binary's default campaign config. The
  /// mode is the caller's choice per campaign run; --validate-pruned
  /// upgrades Pruned to Validate via pruned_mode().
  [[nodiscard]] hafi::CampaignConfig apply(hafi::CampaignConfig config) const;

  /// --dut-engine parsed ("" defaults to bitpar). Throws ripple::Error on an
  /// unknown value.
  [[nodiscard]] hafi::DutEngine engine() const;

  /// Pruned, or Validate when --validate-pruned was passed.
  [[nodiscard]] hafi::CampaignMode pruned_mode() const {
    return validate_pruned ? hafi::CampaignMode::Validate
                           : hafi::CampaignMode::Pruned;
  }
};

void register_campaign_options(OptionParser& parser, CampaignOptions& opts);

} // namespace ripple::pipeline
