#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <thread>

#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "cores/avr/system.hpp"
#include "cores/msp430/core.hpp"
#include "cores/msp430/programs.hpp"
#include "cores/msp430/system.hpp"
#include "mate/stream.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/registry.hpp"
#include "util/eta.hpp"
#include "util/hash.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace ripple::pipeline {
namespace {

// --- cache key derivation (see DESIGN.md, "Pipeline & artifact cache") ----

std::uint64_t trace_key(std::uint64_t netlist_fp, std::string_view workload,
                        std::size_t cycles) {
  Hasher h;
  h.update_value(kArtifactVersion);
  h.update_value(netlist_fp);
  h.update_string(workload);
  h.update_value(static_cast<std::uint64_t>(cycles));
  return h.digest();
}

/// Per-chunk cache key of the streaming trace path. The total cycle count
/// is deliberately absent so a longer run reuses a shorter run's full
/// prefix chunks; `cycles_in_chunk` is included so a shorter run's partial
/// tail chunk can never satisfy a full chunk of a longer run.
std::uint64_t chunk_key(std::uint64_t netlist_fp, std::string_view workload,
                        std::size_t chunk_cycles, std::size_t chunk_index,
                        std::size_t cycles_in_chunk) {
  Hasher h;
  h.update_value(kArtifactVersion);
  h.update_value(netlist_fp);
  h.update_string(workload);
  h.update_value(static_cast<std::uint64_t>(chunk_cycles));
  h.update_value(static_cast<std::uint64_t>(chunk_index));
  h.update_value(static_cast<std::uint64_t>(cycles_in_chunk));
  return h.digest();
}

std::uint64_t search_key(std::uint64_t netlist_fp,
                         std::span<const WireId> faulty,
                         const mate::SearchParams& p) {
  Hasher h;
  h.update_value(kArtifactVersion);
  h.update_value(netlist_fp);
  h.update_value(static_cast<std::uint64_t>(faulty.size()));
  for (WireId wire : faulty) h.update_value(wire.value());
  // Every result-affecting parameter; `threads` and `dedup` are
  // deliberately absent (they change wall time, never results — dedup on
  // and off are byte-identical by construction, search_iso_test verifies
  // it), so neither flag splits the cache.
  h.update_value(static_cast<std::uint32_t>(p.path_depth));
  h.update_value(static_cast<std::uint32_t>(p.max_terms));
  h.update_value(static_cast<std::uint64_t>(p.max_candidates_per_wire));
  h.update_value(static_cast<std::uint64_t>(p.max_paths_per_wire));
  h.update_value(static_cast<std::uint64_t>(p.max_mates_per_wire));
  return h.digest();
}

std::uint64_t select_key(std::uint64_t set_fp, std::uint64_t trace_fp) {
  Hasher h;
  h.update_value(kArtifactVersion);
  h.update_value(set_fp);
  h.update_value(trace_fp);
  return h.digest();
}

std::uint64_t eval_key(std::uint64_t set_fp, std::uint64_t trace_fp,
                       bool keep_trigger_lists) {
  Hasher h;
  h.update_value(kArtifactVersion);
  h.update_value(set_fp);
  h.update_value(trace_fp);
  h.update_value(static_cast<std::uint8_t>(keep_trigger_lists ? 1 : 0));
  return h.digest();
}

void fill_eval_counters(StageStats& stats, const mate::EvalResult& result) {
  stats.counters = {
      {"fault_space", static_cast<double>(result.fault_space())},
      {"masked_faults", static_cast<double>(result.masked_faults)},
      {"effective_mates", static_cast<double>(result.effective_mates)},
  };
}

/// Hot-path throughput counters for computed (non-cached) evaluate/select
/// stages, so BENCH_*.json can track the engine across PRs: trace cycles
/// replayed per second and MATE-cycle evaluations per second.
void fill_throughput_counters(StageStats& stats, std::size_t cycles,
                              std::size_t mates) {
  if (stats.seconds <= 0.0) return;
  stats.counters.emplace_back(
      "cycles_per_sec", static_cast<double>(cycles) / stats.seconds);
  stats.counters.emplace_back(
      "mates_per_sec",
      static_cast<double>(cycles) * static_cast<double>(mates) /
          stats.seconds);
}

void fill_search_counters(StageStats& stats, const mate::SearchResult& r) {
  stats.counters = {
      {"faulty_wires", static_cast<double>(r.outcomes.size())},
      {"mates", static_cast<double>(r.set.mates.size())},
      {"candidates", static_cast<double>(r.total_candidates)},
      {"unmaskable_wires", static_cast<double>(r.unmaskable_wires)},
      {"search_dedup_classes", static_cast<double>(r.dedup_classes)},
  };
}

} // namespace

std::string_view core_name(CoreKind kind) {
  switch (kind) {
    case CoreKind::Avr: return "AVR";
    case CoreKind::Msp430: return "MSP430";
  }
  return "?";
}

CampaignPipeline::CampaignPipeline(PipelineConfig config)
    : config_(std::move(config)),
      cache_(std::make_shared<ArtifactCache>(config_.cache_dir,
                                             config_.use_cache)) {}

CampaignPipeline::CampaignPipeline(PipelineConfig config,
                                   std::shared_ptr<ArtifactCache> cache)
    : config_(std::move(config)), cache_(std::move(cache)) {
  RIPPLE_CHECK(cache_ != nullptr, "CampaignPipeline: null shared cache");
}

void CampaignPipeline::add_observer(std::shared_ptr<StageObserver> observer) {
  if (observer != nullptr) observers_.push_back(std::move(observer));
}

void CampaignPipeline::remove_observer(
    const std::shared_ptr<StageObserver>& observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void CampaignPipeline::notify_begin(std::string_view stage,
                                    std::string_view detail) {
  sim::trace_memory::reset_peak();
  for (const auto& o : observers_) o->stage_begin(stage, detail);
}

void CampaignPipeline::notify_end(StageStats stats) {
  // Every stage reports the high-water mark of resident streaming-trace
  // bytes it caused (satellite of the bounded-memory contract: stream_smoke
  // asserts this stays under two chunks). Zero — no streaming traffic — is
  // omitted to keep whole-trace stage reports unchanged.
  const std::size_t peak = sim::trace_memory::peak();
  if (peak > 0) {
    stats.counters.emplace_back("trace_bytes_peak",
                                static_cast<double>(peak));
  }
  for (const auto& o : observers_) o->stage_end(stats);
}

void CampaignPipeline::notify_campaign_progress(
    const CampaignProgress& progress) {
  for (const auto& o : observers_) o->campaign_progress(progress);
}

void CampaignPipeline::progress(const char* fmt, ...) {
  char buf[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  for (const auto& o : observers_) o->progress(buf);
}

mate::SearchParams CampaignPipeline::apply_threads(
    mate::SearchParams params) const {
  if (config_.threads != 0) params.threads = config_.threads;
  return params;
}

mate::SearchParams CampaignPipeline::default_params() const {
  return apply_threads(mate::SearchParams{});
}

const sim::TransposedTrace& CampaignPipeline::transposed(
    const sim::Trace& trace, std::uint64_t trace_fingerprint) {
  auto it = transposed_.find(trace_fingerprint);
  if (it == transposed_.end()) {
    it = transposed_.emplace(trace_fingerprint, sim::TransposedTrace(trace))
             .first;
  }
  return it->second;
}

CoreSetup CampaignPipeline::setup(const CoreSetupSpec& spec) {
  const std::string name{core_name(spec.kind)};
  obs::Span span("pipeline", "setup", name);
  notify_begin("build_core", name);
  Stopwatch watch;

  CoreSetup s;
  s.name = name;

  if (spec.kind == CoreKind::Avr) {
    cores::avr::AvrCore core = cores::avr::build_avr_core(spec.optimized);
    s.fingerprint = fingerprint(core.netlist);
    s.ff = mate::all_flop_wires(core.netlist);
    s.ff_xrf = mate::flop_wires_excluding_prefix(core.netlist,
                                                 cores::avr::kRegfilePrefix);
    {
      StageStats stats;
      stats.stage = "build_core";
      stats.detail = name;
      stats.seconds = watch.seconds();
      stats.counters = {
          {"wires", static_cast<double>(core.netlist.num_wires())},
          {"gates", static_cast<double>(core.netlist.num_gates())},
          {"flops", static_cast<double>(core.netlist.num_flops())},
      };
      notify_end(stats);
    }
    s.fib_trace =
        record_trace(s.fingerprint, "fib", spec.trace_cycles, [&core, &spec] {
          cores::avr::AvrSystem sys(core, cores::avr::fib_program());
          return sys.run_trace(spec.trace_cycles);
        });
    s.conv_trace =
        record_trace(s.fingerprint, "conv", spec.trace_cycles, [&core, &spec] {
          cores::avr::AvrSystem sys(core, cores::avr::conv_program());
          return sys.run_trace(spec.trace_cycles);
        });
    s.fib_trace_fp = fingerprint(s.fib_trace);
    s.conv_trace_fp = fingerprint(s.conv_trace);
    s.netlist = std::move(core.netlist);
  } else {
    cores::msp430::Msp430Core core =
        cores::msp430::build_msp430_core(spec.optimized);
    s.fingerprint = fingerprint(core.netlist);
    s.ff = mate::all_flop_wires(core.netlist);
    s.ff_xrf = mate::flop_wires_excluding_prefix(
        core.netlist, cores::msp430::kRegfilePrefix);
    {
      StageStats stats;
      stats.stage = "build_core";
      stats.detail = name;
      stats.seconds = watch.seconds();
      stats.counters = {
          {"wires", static_cast<double>(core.netlist.num_wires())},
          {"gates", static_cast<double>(core.netlist.num_gates())},
          {"flops", static_cast<double>(core.netlist.num_flops())},
      };
      notify_end(stats);
    }
    s.fib_trace =
        record_trace(s.fingerprint, "fib", spec.trace_cycles, [&core, &spec] {
          cores::msp430::Msp430System sys(core, cores::msp430::fib_image());
          return sys.run_trace(spec.trace_cycles);
        });
    s.conv_trace =
        record_trace(s.fingerprint, "conv", spec.trace_cycles, [&core, &spec] {
          cores::msp430::Msp430System sys(core, cores::msp430::conv_image());
          return sys.run_trace(spec.trace_cycles);
        });
    s.fib_trace_fp = fingerprint(s.fib_trace);
    s.conv_trace_fp = fingerprint(s.conv_trace);
    s.netlist = std::move(core.netlist);
  }
  return s;
}

sim::Trace CampaignPipeline::record_trace(
    std::uint64_t netlist_fingerprint, std::string_view workload,
    std::size_t cycles, const std::function<sim::Trace()>& run) {
  const CacheKey key{"record_trace",
                     trace_key(netlist_fingerprint, workload, cycles)};
  StageStats stats;
  stats.stage = "record_trace";
  stats.detail = strprintf("%.*s, %zu cycles",
                           static_cast<int>(workload.size()), workload.data(),
                           cycles);
  stats.cacheable = cache_->enabled();
  obs::Span span("pipeline", "stage:record_trace");
  if (span.active()) span.set_detail(stats.detail);
  notify_begin(stats.stage, stats.detail);
  Stopwatch watch;

  if (auto payload = cache_->load(key)) {
    ByteReader r(*payload);
    sim::Trace t = read_trace(r);
    r.expect_done();
    stats.cache_hit = true;
    stats.seconds = watch.seconds();
    stats.counters = {{"cycles", static_cast<double>(t.num_cycles())},
                      {"wires", static_cast<double>(t.num_wires())}};
    notify_end(stats);
    return t;
  }

  sim::Trace t = run();
  ByteWriter w;
  write_trace(w, t);
  cache_->store(key, w.bytes());
  stats.seconds = watch.seconds();
  stats.counters = {{"cycles", static_cast<double>(t.num_cycles())},
                    {"wires", static_cast<double>(t.num_wires())}};
  notify_end(stats);
  return t;
}

mate::SearchResult CampaignPipeline::find_mates(
    const CoreSetup& setup, std::span<const WireId> faulty,
    const mate::SearchParams& params, std::string detail) {
  return find_mates(setup.netlist, setup.fingerprint, faulty, params,
                    std::move(detail));
}

mate::SearchResult CampaignPipeline::find_mates(
    const netlist::Netlist& n, std::uint64_t netlist_fingerprint,
    std::span<const WireId> faulty, const mate::SearchParams& params,
    std::string detail) {
  mate::SearchParams run_params = apply_threads(params);
  run_params.dedup = config_.search_dedup;
  const CacheKey key{"find_mates",
                     search_key(netlist_fingerprint, faulty, run_params)};
  StageStats stats;
  stats.stage = "find_mates";
  stats.detail = std::move(detail);
  stats.cacheable = cache_->enabled();
  obs::Span span("pipeline", "stage:find_mates");
  if (span.active()) span.set_detail(stats.detail);
  notify_begin(stats.stage, stats.detail);
  Stopwatch watch;

  if (auto payload = cache_->load(key)) {
    ByteReader r(*payload);
    mate::SearchResult result = read_search_result(r);
    r.expect_done();
    stats.cache_hit = true;
    stats.seconds = watch.seconds();
    fill_search_counters(stats, result);
    notify_end(stats);
    return result;
  }

  mate::SearchResult result = mate::find_mates(
      n, std::vector<WireId>(faulty.begin(), faulty.end()), run_params);
  ByteWriter w;
  write_search_result(w, result);
  cache_->store(key, w.bytes());

  stats.seconds = watch.seconds();
  stats.threads = std::max<std::size_t>(result.threads_used, 1);
  if (stats.seconds > 0.0) {
    stats.utilization =
        std::min(1.0, result.busy_seconds /
                          (static_cast<double>(stats.threads) * stats.seconds));
  }
  fill_search_counters(stats, result);
  stats.counters.emplace_back("search_utilization", stats.utilization);
  notify_end(stats);
  return result;
}

mate::EvalResult CampaignPipeline::evaluate(const mate::MateSet& set,
                                            const sim::Trace& trace,
                                            bool keep_trigger_lists,
                                            std::string detail) {
  return evaluate(set, trace, fingerprint(trace), keep_trigger_lists,
                  std::move(detail));
}

mate::EvalResult CampaignPipeline::evaluate(const mate::MateSet& set,
                                            const sim::Trace& trace,
                                            std::uint64_t trace_fingerprint,
                                            bool keep_trigger_lists,
                                            std::string detail) {
  const CacheKey key{
      "evaluate",
      eval_key(fingerprint(set), trace_fingerprint, keep_trigger_lists)};
  StageStats stats;
  stats.stage = "evaluate";
  stats.detail = std::move(detail);
  stats.cacheable = cache_->enabled();
  obs::Span span("pipeline", "stage:evaluate");
  if (span.active()) span.set_detail(stats.detail);
  notify_begin(stats.stage, stats.detail);
  Stopwatch watch;

  if (auto payload = cache_->load(key)) {
    ByteReader r(*payload);
    mate::EvalResult result = read_eval_result(r);
    r.expect_done();
    stats.cache_hit = true;
    stats.seconds = watch.seconds();
    fill_eval_counters(stats, result);
    notify_end(stats);
    return result;
  }

  mate::EvalResult result;
  if (config_.eval_engine == mate::EvalEngine::Scalar) {
    result = mate::evaluate_mates_scalar(set, trace, keep_trigger_lists);
  } else if (config_.eval_engine == mate::EvalEngine::Streaming &&
             !keep_trigger_lists) {
    // Chunked replay of the memoized transposed trace (borrowed slices, no
    // copies). Trigger lists are whole-trace state, so that variant stays
    // on the whole-trace engine below.
    sim::TransposedTraceSource source(transposed(trace, trace_fingerprint),
                                      config_.trace_chunk_cycles);
    result = mate::evaluate_mates_stream(set, source, config_.threads,
                                         /*overlap=*/false);
  } else {
    result = mate::evaluate_mates_bitpar(
        set, transposed(trace, trace_fingerprint), keep_trigger_lists,
        config_.threads);
  }
  ByteWriter w;
  write_eval_result(w, result);
  cache_->store(key, w.bytes());

  stats.seconds = watch.seconds();
  fill_eval_counters(stats, result);
  fill_throughput_counters(stats, result.num_cycles, set.mates.size());
  notify_end(stats);
  return result;
}

mate::SelectionResult CampaignPipeline::select(const mate::MateSet& set,
                                               const sim::Trace& trace,
                                               std::string detail) {
  return select(set, trace, fingerprint(trace), std::move(detail));
}

mate::SelectionResult CampaignPipeline::select(const mate::MateSet& set,
                                               const sim::Trace& trace,
                                               std::uint64_t trace_fingerprint,
                                               std::string detail) {
  const CacheKey key{"select",
                     select_key(fingerprint(set), trace_fingerprint)};
  StageStats stats;
  stats.stage = "select";
  stats.detail = std::move(detail);
  stats.cacheable = cache_->enabled();
  obs::Span span("pipeline", "stage:select");
  if (span.active()) span.set_detail(stats.detail);
  notify_begin(stats.stage, stats.detail);
  Stopwatch watch;

  if (auto payload = cache_->load(key)) {
    ByteReader r(*payload);
    mate::SelectionResult result = read_selection(r);
    r.expect_done();
    stats.cache_hit = true;
    stats.seconds = watch.seconds();
    stats.counters = {{"ranked", static_cast<double>(result.ranking.size())}};
    notify_end(stats);
    return result;
  }

  mate::SelectionResult result;
  if (config_.eval_engine == mate::EvalEngine::Scalar) {
    result = mate::rank_mates_scalar(set, trace);
  } else if (config_.eval_engine == mate::EvalEngine::Streaming) {
    sim::TransposedTraceSource source(transposed(trace, trace_fingerprint),
                                      config_.trace_chunk_cycles);
    result = mate::rank_mates_stream(set, source, config_.threads,
                                     /*overlap=*/false);
  } else {
    result = mate::rank_mates_bitpar(
        set, transposed(trace, trace_fingerprint), config_.threads);
  }
  ByteWriter w;
  write_selection(w, result);
  cache_->store(key, w.bytes());
  stats.seconds = watch.seconds();
  stats.counters = {{"ranked", static_cast<double>(result.ranking.size())}};
  fill_throughput_counters(stats, trace.num_cycles(), set.mates.size());
  notify_end(stats);
  return result;
}

namespace {

/// WorkloadRunner over an AVR system; the core netlist is shared across
/// boots of the same stream (replay passes re-boot, the build does not
/// re-run).
class AvrRunner final : public WorkloadRunner {
public:
  AvrRunner(std::shared_ptr<const cores::avr::AvrCore> core,
            std::string_view workload)
      : core_(std::move(core)),
        system_(*core_, cores::avr::workload_program(workload)) {}

  void run(std::size_t cycles) override { system_.run(cycles); }
  void run_stream(std::size_t cycles, sim::RowSink& sink) override {
    system_.run_stream(cycles, sink);
  }

private:
  std::shared_ptr<const cores::avr::AvrCore> core_;
  cores::avr::AvrSystem system_;
};

class Msp430Runner final : public WorkloadRunner {
public:
  Msp430Runner(std::shared_ptr<const cores::msp430::Msp430Core> core,
               std::string_view workload)
      : core_(std::move(core)),
        system_(*core_, cores::msp430::workload_image(workload)) {}

  void run(std::size_t cycles) override { system_.run(cycles); }
  void run_stream(std::size_t cycles, sim::RowSink& sink) override {
    system_.run_stream(cycles, sink);
  }

private:
  std::shared_ptr<const cores::msp430::Msp430Core> core_;
  cores::msp430::Msp430System system_;
};

} // namespace

ChunkedTraceStream::ChunkedTraceStream(
    CampaignPipeline& pipeline,
    std::function<std::unique_ptr<WorkloadRunner>()> boot,
    std::uint64_t netlist_fingerprint, std::string workload,
    std::size_t num_wires, std::size_t cycles, std::size_t chunk_cycles)
    : pipeline_(&pipeline),
      boot_(std::move(boot)),
      netlist_fingerprint_(netlist_fingerprint),
      workload_(std::move(workload)),
      num_wires_(num_wires),
      cycles_(cycles),
      chunk_cycles_(chunk_cycles),
      fingerprint_(trace_key(netlist_fingerprint, workload_, cycles)) {
  RIPPLE_CHECK(chunk_cycles_ > 0 && chunk_cycles_ % 64 == 0,
               "--trace-chunk-cycles must be a positive multiple of 64, got ",
               chunk_cycles_);
  RIPPLE_CHECK(cycles_ > 0, "empty trace stream");
}

void ChunkedTraceStream::stream(sim::TraceSink& sink) {
  ArtifactCache& cache = pipeline_->cache();
  StageStats stats;
  stats.stage = "record_trace";
  stats.detail =
      strprintf("%s, %zu cycles (streamed)", workload_.c_str(), cycles_);
  stats.cacheable = cache.enabled();
  obs::Span stage_span("pipeline", "stage:record_trace");
  if (stage_span.active()) stage_span.set_detail(stats.detail);
  pipeline_->notify_begin(stats.stage, stats.detail);
  Stopwatch watch;

  const std::size_t num_chunks = (cycles_ + chunk_cycles_ - 1) / chunk_cycles_;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::unique_ptr<WorkloadRunner> runner; // booted at the first cache miss
  std::size_t sim_pos = 0;                // cycles the runner has advanced

  for (std::size_t ci = 0; ci < num_chunks; ++ci) {
    const std::size_t base = ci * chunk_cycles_;
    const std::size_t len = std::min(chunk_cycles_, cycles_ - base);
    const CacheKey key{
        "trace_chunk",
        chunk_key(netlist_fingerprint_, workload_, chunk_cycles_, ci, len)};

    obs::Span chunk_span("stream", "chunk");
    if (auto payload = cache.load(key)) {
      ByteReader r(*payload);
      sim::TransposedTrace t = read_transposed_trace(r);
      r.expect_done();
      RIPPLE_CHECK(t.num_wires() == num_wires_ && t.num_cycles() == len,
                   "cached trace chunk has the wrong shape");
      ++hits;
      if (chunk_span.active()) {
        chunk_span.set_detail(strprintf("chunk %zu (hit)", ci));
      }
      sink.on_chunk(sim::make_owned_chunk(ci, base, std::move(t)));
      continue;
    }

    ++misses;
    if (chunk_span.active()) {
      chunk_span.set_detail(strprintf("chunk %zu (sim)", ci));
    }
    if (!runner) runner = boot_();
    if (sim_pos < base) {
      // Fast-forward (untraced) across the cached span to this miss.
      runner->run(base - sim_pos);
      sim_pos = base;
    }
    struct CollectSink final : sim::TraceSink {
      sim::TraceChunk chunk;
      void on_chunk(sim::TraceChunk c) override { chunk = std::move(c); }
    } collect;
    sim::ChunkedTraceRecorder recorder(num_wires_, base + len, chunk_cycles_,
                                       collect, base);
    runner->run_stream(len, recorder);
    recorder.finish();
    sim_pos += len;
    RIPPLE_CHECK(collect.chunk.owned != nullptr,
                 "chunk recorder emitted nothing");
    if (cache.enabled()) {
      ByteWriter w;
      write_transposed_trace(w, *collect.chunk.owned);
      cache.store(key, w.bytes());
    }
    sink.on_chunk(std::move(collect.chunk));
  }

  stats.cache_hit = cache.enabled() && misses == 0;
  stats.seconds = watch.seconds();
  stats.counters = {
      {"cycles", static_cast<double>(cycles_)},
      {"wires", static_cast<double>(num_wires_)},
      {"chunks", static_cast<double>(num_chunks)},
      {"chunk_hits", static_cast<double>(hits)},
      {"chunk_misses", static_cast<double>(misses)},
  };
  pipeline_->notify_end(stats);
}

std::unique_ptr<ChunkedTraceStream> CampaignPipeline::trace_stream(
    CoreKind kind, std::string_view workload, std::size_t cycles,
    bool optimized) {
  const std::string wl(workload);
  if (kind == CoreKind::Avr) {
    auto core = std::make_shared<const cores::avr::AvrCore>(
        cores::avr::build_avr_core(optimized));
    const std::uint64_t fp = fingerprint(core->netlist);
    const std::size_t wires = core->netlist.num_wires();
    return std::make_unique<ChunkedTraceStream>(
        *this,
        [core, wl] { return std::make_unique<AvrRunner>(core, wl); },
        fp, wl, wires, cycles, config_.trace_chunk_cycles);
  }
  auto core = std::make_shared<const cores::msp430::Msp430Core>(
      cores::msp430::build_msp430_core(optimized));
  const std::uint64_t fp = fingerprint(core->netlist);
  const std::size_t wires = core->netlist.num_wires();
  return std::make_unique<ChunkedTraceStream>(
      *this,
      [core, wl] { return std::make_unique<Msp430Runner>(core, wl); },
      fp, wl, wires, cycles, config_.trace_chunk_cycles);
}

mate::EvalResult CampaignPipeline::evaluate_stream(
    const mate::MateSet& set, sim::TraceSource& source,
    std::uint64_t stream_fingerprint, std::string detail) {
  const CacheKey key{
      "evaluate",
      eval_key(fingerprint(set), stream_fingerprint,
               /*keep_trigger_lists=*/false)};
  StageStats stats;
  stats.stage = "evaluate";
  stats.detail = std::move(detail);
  stats.cacheable = cache_->enabled();
  obs::Span span("pipeline", "stage:evaluate");
  if (span.active()) span.set_detail(stats.detail);
  notify_begin(stats.stage, stats.detail);
  Stopwatch watch;

  if (auto payload = cache_->load(key)) {
    ByteReader r(*payload);
    mate::EvalResult result = read_eval_result(r);
    r.expect_done();
    stats.cache_hit = true;
    stats.seconds = watch.seconds();
    fill_eval_counters(stats, result);
    notify_end(stats);
    return result;
  }

  mate::EvalResult result =
      mate::evaluate_mates_stream(set, source, config_.threads,
                                  /*overlap=*/true);
  ByteWriter w;
  write_eval_result(w, result);
  cache_->store(key, w.bytes());

  stats.seconds = watch.seconds();
  fill_eval_counters(stats, result);
  fill_throughput_counters(stats, result.num_cycles, set.mates.size());
  notify_end(stats);
  return result;
}

mate::SelectionResult CampaignPipeline::select_stream(
    const mate::MateSet& set, sim::TraceSource& source,
    std::uint64_t stream_fingerprint, std::string detail) {
  const CacheKey key{"select",
                     select_key(fingerprint(set), stream_fingerprint)};
  StageStats stats;
  stats.stage = "select";
  stats.detail = std::move(detail);
  stats.cacheable = cache_->enabled();
  obs::Span span("pipeline", "stage:select");
  if (span.active()) span.set_detail(stats.detail);
  notify_begin(stats.stage, stats.detail);
  Stopwatch watch;

  if (auto payload = cache_->load(key)) {
    ByteReader r(*payload);
    mate::SelectionResult result = read_selection(r);
    r.expect_done();
    stats.cache_hit = true;
    stats.seconds = watch.seconds();
    stats.counters = {{"ranked", static_cast<double>(result.ranking.size())}};
    notify_end(stats);
    return result;
  }

  mate::SelectionResult result =
      mate::rank_mates_stream(set, source, config_.threads, /*overlap=*/true);
  ByteWriter w;
  write_selection(w, result);
  cache_->store(key, w.bytes());
  stats.seconds = watch.seconds();
  stats.counters = {{"ranked", static_cast<double>(result.ranking.size())}};
  fill_throughput_counters(stats, source.num_cycles(), set.mates.size());
  notify_end(stats);
  return result;
}

hafi::CampaignResult CampaignPipeline::campaign(
    ::ripple::pipeline::CampaignSpec spec, std::string detail) {
  // The pipeline's --threads applies when the spec leaves the campaign
  // thread count at "hardware concurrency" (0). Never part of any key.
  if (spec.config.threads == 0) spec.config.threads = config_.threads;

  StageStats stats;
  stats.stage = "campaign";
  stats.detail = std::move(detail);
  obs::Span span("pipeline", "stage:campaign");
  if (span.active()) span.set_detail(stats.detail);
  notify_begin(stats.stage, stats.detail);
  Stopwatch watch;

  // A bitpar campaign without a batch DUT factory silently degrades to the
  // scalar engine; surface that through the observers — a local
  // ProgressObserver prints it to stderr, and a daemon session observer
  // forwards it to the requesting client — and report it so --report=json
  // consumers can tell which engine actually ran.
  const bool dut_engine_fallback =
      spec.config.dut_engine == hafi::DutEngine::BitParallel &&
      !spec.batch_factory;
  if (dut_engine_fallback) {
    progress(
        "warning: --dut-engine=bitpar requested but no 64-lane batch DUT "
        "factory is available; campaign falls back to the scalar engine");
  }

  hafi::Campaign campaign(std::move(spec.factory), spec.config, spec.mates);
  if (spec.batch_factory) {
    campaign.set_batch_factory(std::move(spec.batch_factory));
  }
  if (spec.plan.has_value()) campaign.use_plan(std::move(*spec.plan));

  const bool checkpoint =
      spec.resume && spec.netlist_fingerprint != 0 && cache_->enabled();
  const std::uint64_t mates_fp =
      spec.config.mode != hafi::CampaignMode::Baseline
          ? fingerprint(*spec.mates)
          : 0;
  const auto shard_cache_key = [&](std::size_t shard) {
    Hasher h;
    h.update_value(kArtifactVersion);
    h.update_value(spec.netlist_fingerprint);
    h.update_value(static_cast<std::uint64_t>(spec.config.run_cycles));
    h.update_value(static_cast<std::uint64_t>(spec.config.sample));
    h.update_value(spec.config.seed);
    h.update_value(static_cast<std::uint8_t>(spec.config.mode));
    h.update_value(mates_fp);
    // The *resolved* shard size: boundaries must match across runs for a
    // shard artifact to be reusable. threads is deliberately absent.
    h.update_value(static_cast<std::uint64_t>(campaign.plan().shard_size));
    h.update_value(static_cast<std::uint64_t>(shard));
    return CacheKey{"campaign_shard", h.digest()};
  };

  // Per-shard throughput/ETA narration plus the counters that end up in
  // --report=json. Executed-shard wall times feed the ETA; resumed shards
  // (zero cost) deliberately do not.
  EtaTracker eta;
  std::size_t executed_injections = 0;
  std::size_t shards_resumed = 0;
  double busy_seconds = 0.0;
  std::size_t dut_passes = 0;
  std::size_t lane_slots = 0;
  std::size_t lanes_retired_early = 0;
  std::uint64_t lane_cycles_saved = 0;

  hafi::Campaign::ShardHooks hooks;
  if (checkpoint) {
    hooks.load = [&](std::size_t shard) -> std::optional<hafi::ShardResult> {
      auto payload = cache_->load(shard_cache_key(shard));
      if (!payload) return std::nullopt;
      ByteReader r(*payload);
      hafi::ShardResult result = read_shard_result(r);
      r.expect_done();
      return result;
    };
    hooks.store = [&](const hafi::ShardResult& shard) {
      ByteWriter w;
      write_shard_result(w, shard);
      cache_->store(shard_cache_key(shard.shard), w.bytes());
    };
  }
  // Executed-shard wall times feed the shard_seconds histogram (report v2)
  // alongside the lane-utilization distribution; resolved once so the
  // per-shard hot path is two relaxed atomic adds per record.
  constexpr double kShardSecondsBounds[] = {0.001, 0.003, 0.01, 0.03, 0.1,
                                            0.3,   1.0,   3.0,  10.0, 30.0,
                                            100.0};
  constexpr double kRatioBounds[] = {0.1, 0.2, 0.3, 0.4, 0.5,
                                     0.6, 0.7, 0.8, 0.9, 1.0};
  obs::MetricRegistry& registry = obs::MetricRegistry::global();
  obs::Histogram& shard_seconds_hist =
      registry.histogram("shard_seconds", kShardSecondsBounds);
  obs::Histogram& lane_utilization_hist =
      registry.histogram("lane_utilization", kRatioBounds);

  hooks.progress = [&](const hafi::Campaign::ShardProgress& p) {
    if (p.resumed) {
      ++shards_resumed;
    } else {
      eta.add(p.seconds);
      busy_seconds += p.seconds;
      shard_seconds_hist.record(p.seconds);
      if (p.lane_slots > 0) {
        lane_utilization_hist.record(static_cast<double>(p.executed) /
                                     static_cast<double>(p.lane_slots));
      }
    }
    executed_injections += p.executed;
    dut_passes += p.dut_passes;
    lane_slots += p.lane_slots;
    lanes_retired_early += p.lanes_retired_early;
    lane_cycles_saved += p.lane_cycles_saved;

    CampaignProgress cp;
    cp.shard = p.shard;
    cp.shards_done = p.shards_done;
    cp.num_shards = p.num_shards;
    cp.resumed = p.resumed;
    cp.seconds = p.seconds;
    cp.executed = p.executed;
    cp.executed_total = executed_injections;
    if (!p.resumed && p.seconds > 0.0) {
      cp.inj_per_sec = static_cast<double>(p.executed) / p.seconds;
    }
    cp.eta_seconds = eta.eta_seconds(p.num_shards - p.shards_done);
    notify_campaign_progress(cp);
  };
  // The daemon's fair shared scheduler (when configured) replaces the
  // campaign's private ThreadPool; results are identical either way.
  if (config_.shard_executor) hooks.execute = config_.shard_executor;

  hafi::CampaignResult result = campaign.run(hooks);

  stats.seconds = watch.seconds();
  stats.threads = spec.config.threads != 0
                      ? spec.config.threads
                      : std::max<std::size_t>(
                            1, std::thread::hardware_concurrency());
  if (stats.seconds > 0.0) {
    stats.utilization = std::min(
        1.0, busy_seconds / (static_cast<double>(stats.threads) *
                             stats.seconds));
  }
  const std::size_t num_shards = campaign.plan().num_shards();
  stats.counters = {
      {"experiments", static_cast<double>(result.total)},
      {"pruned", static_cast<double>(result.pruned)},
      {"executed", static_cast<double>(result.executed)},
      {"benign", static_cast<double>(result.benign)},
      {"latent", static_cast<double>(result.latent)},
      {"sdc", static_cast<double>(result.sdc)},
      {"shards", static_cast<double>(num_shards)},
      {"shards_resumed", static_cast<double>(shards_resumed)},
      {"pruned_rate",
       result.total > 0
           ? static_cast<double>(result.pruned) /
                 static_cast<double>(result.total)
           : 0.0},
      {"dut_passes", static_cast<double>(dut_passes)},
      {"lanes_retired_early", static_cast<double>(lanes_retired_early)},
      {"lane_cycles_saved", static_cast<double>(lane_cycles_saved)},
      // Executed experiments / experiment capacity of the gate-level passes:
      // 1.0 when every lane of every pass carried an injection (the scalar
      // engine is 1.0 by definition, one experiment per boot).
      {"lane_utilization",
       lane_slots > 0 ? static_cast<double>(executed_injections) /
                            static_cast<double>(lane_slots)
                      : 0.0},
      // 1 when a bitpar request degraded to the scalar engine (no batch
      // factory); always present so report consumers need not probe.
      {"dut_engine_fallback", dut_engine_fallback ? 1.0 : 0.0},
  };
  // Retired experiments per second — counts injections, not gate-level
  // passes, so the number is comparable across engines.
  if (eta.total_seconds() > 0.0) {
    stats.counters.emplace_back(
        "injections_per_sec",
        static_cast<double>(executed_injections) / eta.total_seconds());
  }
  notify_end(stats);
  return result;
}

hafi::CampaignResult CampaignPipeline::run(const CampaignRequest& request,
                                           std::string detail) {
  CoreRuntime rt = CoreRegistry::global().make(request.core, request.workload);
  if (detail.empty()) detail = request_summary(request);

  ::ripple::pipeline::CampaignSpec spec;
  spec.factory = rt.factory;
  spec.batch_factory = rt.batch_factory;
  spec.config = request.config;
  spec.netlist_fingerprint = rt.fingerprint;
  spec.resume = request.resume;

  // Pruned/Validate: derive the MATE set. `mates` owns the storage the spec
  // borrows; it must outlive the campaign() call below.
  mate::MateSet mates;
  if (request.config.mode != hafi::CampaignMode::Baseline) {
    mate::SearchParams params = default_params();
    if (request.search_depth != 0) params.path_depth = request.search_depth;
    mate::SearchResult search = find_mates(
        *rt.netlist, rt.fingerprint, mate::all_flop_wires(*rt.netlist),
        params, request.core + " all flops");
    if (request.top_n > 0) {
      const std::size_t cycles =
          request.select_cycles != 0
              ? static_cast<std::size_t>(request.select_cycles)
              : request.config.run_cycles;
      const sim::Trace trace =
          record_trace(rt.fingerprint, rt.workload, cycles,
                       [&rt, cycles] { return rt.record_trace(cycles); });
      const mate::SelectionResult sel =
          select(search.set, trace,
                 strprintf("%s %s, %zu cycles", request.core.c_str(),
                           rt.workload.c_str(), cycles));
      mates = mate::top_n(search.set, sel, request.top_n);
    } else {
      mates = std::move(search.set);
    }
    spec.mates = &mates;
  }
  return campaign(std::move(spec), std::move(detail));
}

} // namespace ripple::pipeline
