// The unified campaign pipeline (tying Sections 3-6 together).
//
// Models the paper's cross-layer flow as named stages over typed artifacts:
//
//   build_core ──> record_trace ──┐
//        │                        ├──> evaluate ──> select ──> campaign
//        └───────> find_mates ────┘
//
// Stage inputs/outputs are the artifact types of artifact.hpp; cacheable
// stages (record_trace, find_mates, evaluate, select) consult the
// content-addressed ArtifactCache so a second run with the same inputs
// replays stored results instead of recomputing them. Every stage reports begin/end plus a
// StageStats record to the registered StageObservers, which is where all
// bench progress output and the `--report=json` emitter hang off.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hafi/campaign.hpp"
#include "mate/eval.hpp"
#include "mate/search.hpp"
#include "mate/select.hpp"
#include "netlist/netlist.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/observer.hpp"
#include "pipeline/request.hpp"
#include "sim/stream.hpp"
#include "sim/trace.hpp"
#include "sim/transposed.hpp"

namespace ripple::pipeline {

/// The paper's trace length (Tables 2 and 3: "Both programs ran for 8500
/// clock cycles").
inline constexpr std::size_t kDefaultTraceCycles = 8500;

enum class CoreKind { Avr, Msp430 };

[[nodiscard]] std::string_view core_name(CoreKind kind);

/// Everything that determines a core setup; replaces the parallel
/// make_avr_setup/make_msp430_setup code paths.
struct CoreSetupSpec {
  CoreKind kind = CoreKind::Avr;
  std::size_t trace_cycles = kDefaultTraceCycles;
  bool optimized = true; // netlist optimization passes (always on in benches)
};

/// Output of the build_core + record_trace stages: the core netlist, its
/// content fingerprint, the two workload traces and the evaluation's two
/// fault sets ("FF" and "FF w/o RF").
struct CoreSetup {
  std::string name; // "AVR" or "MSP430"
  netlist::Netlist netlist;
  std::uint64_t fingerprint = 0; // content fingerprint of `netlist`
  sim::Trace fib_trace;
  sim::Trace conv_trace;
  std::uint64_t fib_trace_fp = 0;  // content fingerprint of `fib_trace`
  std::uint64_t conv_trace_fp = 0; // content fingerprint of `conv_trace`
  std::vector<WireId> ff;     // all flipflops
  std::vector<WireId> ff_xrf; // flipflops outside the register file
};

struct PipelineConfig {
  /// Artifact cache directory; empty disables caching.
  std::filesystem::path cache_dir;
  bool use_cache = true; // `--no-cache` clears this
  /// Worker threads for the MATE search; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Engine for the evaluate/select stages (`--eval-engine`). Deliberately
  /// absent from the cache keys: all engines produce identical results.
  mate::EvalEngine eval_engine = mate::EvalEngine::Streaming;
  /// Cone-isomorphism dedup in the find_mates stage (`--search-dedup`).
  /// Deliberately absent from the search cache key, like `threads`: on and
  /// off produce byte-identical MATE results, only wall time changes.
  bool search_dedup = true;
  /// Chunk length of the streaming trace path (`--trace-chunk-cycles`);
  /// must be a positive multiple of 64.
  std::size_t trace_chunk_cycles = sim::kDefaultChunkCycles;
  /// Shard fan-out executor for the campaign stage; empty = a private
  /// ThreadPool per campaign. The rippled daemon injects its fair shared
  /// scheduler here so concurrent executions multiplex one pool. Runtime
  /// state, never part of any cache key.
  hafi::ShardExecutor shard_executor;
};

/// Minimal interface over a booted core system for the streaming trace
/// path: fast-forward without tracing, or run while pushing per-cycle rows.
class WorkloadRunner {
public:
  virtual ~WorkloadRunner() = default;
  virtual void run(std::size_t cycles) = 0;
  virtual void run_stream(std::size_t cycles, sim::RowSink& sink) = 0;
};

class CampaignPipeline;

/// Fault-injection campaign stage input. The merged campaign result is
/// never cached — the campaign *is* the experiment (and its DUT factory
/// captures arbitrary state) — but finished *shards* are persisted as
/// versioned artifacts when `resume` is set, keyed by (netlist
/// fingerprint, campaign config, MATE-set fingerprint, shard index), so a
/// killed campaign picks up from its last finished shard.
///
/// This is the in-process form: it carries live factories and a borrowed
/// MATE set. The serializable, wire-friendly form is CampaignRequest
/// (request.hpp), which CampaignPipeline::run() lowers onto this struct via
/// the CoreRegistry.
struct CampaignSpec {
  hafi::DutFactory factory;
  /// 64-lane batch DUT for CampaignConfig::dut_engine == BitParallel; the
  /// campaign falls back to the scalar factory when absent. Deliberately
  /// absent from the shard-checkpoint keys: both engines produce
  /// byte-identical results, so checkpoints are interchangeable.
  hafi::BatchDutFactory batch_factory;
  hafi::CampaignConfig config;
  /// Required for Pruned/Validate mode; ignored for Baseline.
  const mate::MateSet* mates = nullptr;
  /// Fingerprint of the DUT netlist; keys the shard checkpoints. 0
  /// disables checkpointing even with `resume` set.
  std::uint64_t netlist_fingerprint = 0;
  /// Persist finished shards to the artifact cache and skip shards already
  /// present (interrupt/resume). Requires the cache and a fingerprint.
  bool resume = false;
  /// Reuse a plan produced by another campaign over the same DUT/config
  /// (like-for-like baseline vs pruned comparisons). Stale shard
  /// checkpoints that disagree with the plan re-execute.
  std::optional<hafi::CampaignPlan> plan;
};

/// A workload trace streamed in fixed-size transposed chunks, each cached
/// individually by (netlist fingerprint, workload, chunk_cycles, chunk
/// index, cycles in chunk) — the total cycle count is deliberately absent,
/// so extending a run's tail replays the cached prefix chunks and only
/// simulates the new trailing ones. Each stream() pass boots the workload
/// lazily: cached chunks are emitted without simulation, and the simulator
/// fast-forwards (untraced) across cached spans to reach the first miss.
/// Replayable, so rank_mates_stream's two passes work; a second pass hits
/// the chunks the first one stored (or re-simulates when caching is off).
class ChunkedTraceStream final : public sim::TraceSource {
public:
  ChunkedTraceStream(CampaignPipeline& pipeline,
                     std::function<std::unique_ptr<WorkloadRunner>()> boot,
                     std::uint64_t netlist_fingerprint, std::string workload,
                     std::size_t num_wires, std::size_t cycles,
                     std::size_t chunk_cycles);

  [[nodiscard]] std::size_t num_wires() const override { return num_wires_; }
  [[nodiscard]] std::size_t num_cycles() const override { return cycles_; }
  [[nodiscard]] std::size_t chunk_cycles() const override {
    return chunk_cycles_;
  }
  void stream(sim::TraceSink& sink) override;

  /// Identity fingerprint of the stream — (netlist fingerprint, workload,
  /// cycles), like the whole-trace record_trace cache key. Downstream
  /// evaluate/select stages use it as the trace fingerprint in their cache
  /// keys.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

private:
  CampaignPipeline* pipeline_;
  std::function<std::unique_ptr<WorkloadRunner>()> boot_;
  std::uint64_t netlist_fingerprint_;
  std::string workload_;
  std::size_t num_wires_;
  std::size_t cycles_;
  std::size_t chunk_cycles_;
  std::uint64_t fingerprint_;
};

class CampaignPipeline {
public:
  explicit CampaignPipeline(PipelineConfig config = {});

  /// Share an existing artifact cache between pipelines (the rippled daemon
  /// gives every concurrent execution its own pipeline over one cache;
  /// ArtifactCache is thread-safe). `cache` must be non-null.
  CampaignPipeline(PipelineConfig config, std::shared_ptr<ArtifactCache> cache);

  /// Register an observer; shared ownership keeps it alive for the
  /// pipeline's lifetime (no more dangling raw pointers when a bench's
  /// observer goes out of scope first).
  void add_observer(std::shared_ptr<StageObserver> observer);
  /// Unregister a previously added observer (no-op when absent).
  void remove_observer(const std::shared_ptr<StageObserver>& observer);

  /// build_core + record_trace (x2 workloads). Traces are cached by
  /// (netlist fingerprint, workload, cycles); the netlist build itself is
  /// fast and always runs (it also provides the fingerprint).
  [[nodiscard]] CoreSetup setup(const CoreSetupSpec& spec);

  /// MATE search stage, cached by (netlist fingerprint, fault set, search
  /// params). `params.threads` is excluded from the key — the thread count
  /// changes wall time, never results.
  [[nodiscard]] mate::SearchResult find_mates(const CoreSetup& setup,
                                              std::span<const WireId> faulty,
                                              const mate::SearchParams& params,
                                              std::string detail = {});

  /// Same, for netlists that did not come from setup() (e.g. the Figure 1
  /// example circuit). `netlist_fingerprint` must be fingerprint(n).
  [[nodiscard]] mate::SearchResult find_mates(const netlist::Netlist& n,
                                              std::uint64_t netlist_fingerprint,
                                              std::span<const WireId> faulty,
                                              const mate::SearchParams& params,
                                              std::string detail = {});

  /// Trace evaluation stage (fault-space quantification), cached by (MATE
  /// set fingerprint, trace fingerprint, keep_trigger_lists). The first
  /// overload fingerprints the trace itself; pass a precomputed
  /// `trace_fingerprint` (e.g. CoreSetup::fib_trace_fp) when evaluating
  /// many MATE sets against the same long trace.
  [[nodiscard]] mate::EvalResult evaluate(const mate::MateSet& set,
                                          const sim::Trace& trace,
                                          bool keep_trigger_lists = false,
                                          std::string detail = {});
  [[nodiscard]] mate::EvalResult evaluate(const mate::MateSet& set,
                                          const sim::Trace& trace,
                                          std::uint64_t trace_fingerprint,
                                          bool keep_trigger_lists,
                                          std::string detail);

  /// Greedy top-N ranking stage, cached by (MATE set fingerprint, trace
  /// fingerprint).
  [[nodiscard]] mate::SelectionResult select(const mate::MateSet& set,
                                             const sim::Trace& trace,
                                             std::string detail = {});
  [[nodiscard]] mate::SelectionResult select(const mate::MateSet& set,
                                             const sim::Trace& trace,
                                             std::uint64_t trace_fingerprint,
                                             std::string detail);

  /// Streaming record_trace: a replayable chunk stream over `workload`
  /// (any name from the cores' workload registries, e.g. "fib", "conv",
  /// "sort", "crc", "irq") on the given core. Nothing is simulated until
  /// the stream is consumed; chunks are cached individually (stage
  /// "record_trace", kind "trace_chunk"), so only chunks missing from the
  /// cache re-simulate. This is the bounded-memory path for million-cycle
  /// traces — the whole trace is never resident.
  [[nodiscard]] std::unique_ptr<ChunkedTraceStream> trace_stream(
      CoreKind kind, std::string_view workload, std::size_t cycles,
      bool optimized = true);

  /// Streaming evaluate/select: consume a chunked trace source through the
  /// streaming engine with simulation/evaluation overlap. Results are
  /// byte-identical to the whole-trace stages and cached under the same
  /// evaluate/select stage kinds, keyed by `stream_fingerprint`
  /// (ChunkedTraceStream::fingerprint()).
  [[nodiscard]] mate::EvalResult evaluate_stream(const mate::MateSet& set,
                                                 sim::TraceSource& source,
                                                 std::uint64_t stream_fingerprint,
                                                 std::string detail = {});
  [[nodiscard]] mate::SelectionResult select_stream(
      const mate::MateSet& set, sim::TraceSource& source,
      std::uint64_t stream_fingerprint, std::string detail = {});

  /// Deprecated name for the promoted top-level pipeline::CampaignSpec;
  /// kept one release so out-of-tree call sites migrate gracefully.
  using CampaignSpec [[deprecated(
      "use pipeline::CampaignSpec (or the serializable "
      "pipeline::CampaignRequest with run())")]] = ::ripple::pipeline::
      CampaignSpec;

  /// Run the campaign stage: shard fan-out per CampaignConfig::threads
  /// (0 falls back to the pipeline's --threads), per-shard progress with
  /// injections/sec, pruned-rate and ETA via the observers, and optional
  /// shard checkpointing per `spec.resume`. Throws hafi::SoundnessError
  /// (with its per-shard violation report) in Validate mode.
  [[nodiscard]] hafi::CampaignResult campaign(::ripple::pipeline::CampaignSpec
                                                  spec,
                                              std::string detail = {});

  /// Run a full serializable request end-to-end: resolve the core through
  /// the CoreRegistry, derive the MATE set (find_mates, plus the cached
  /// selection trace + greedy top-N when `request.top_n` asks for it), then
  /// run the campaign stage. This is the daemon's entry point — everything
  /// a request needs beyond pure data comes from the registry, and equal
  /// request_checksum()s are guaranteed byte-identical results.
  [[nodiscard]] hafi::CampaignResult run(const CampaignRequest& request,
                                         std::string detail = {});

  /// Free-form narration routed to the observers (bench progress lines;
  /// keeps stdout clean for tables/CSV/JSON).
  void progress(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  [[nodiscard]] ArtifactCache& cache() { return *cache_; }
  [[nodiscard]] const ArtifactCache& cache() const { return *cache_; }
  /// The shared cache handle (pass to another pipeline to share artifacts).
  [[nodiscard]] std::shared_ptr<ArtifactCache> shared_cache() const {
    return cache_;
  }
  [[nodiscard]] const PipelineConfig& config() const { return config_; }

  /// Default SearchParams with the pipeline's --threads applied.
  [[nodiscard]] mate::SearchParams default_params() const;
  /// Apply the pipeline's --threads override to existing params.
  [[nodiscard]] mate::SearchParams apply_threads(
      mate::SearchParams params) const;

  /// Column-major view of `trace` for the bit-parallel engine, built on
  /// first use and memoized by trace fingerprint so repeated evaluate/select
  /// stages against the same trace transpose it only once.
  [[nodiscard]] const sim::TransposedTrace& transposed(
      const sim::Trace& trace, std::uint64_t trace_fingerprint);

private:
  friend class ChunkedTraceStream;

  void notify_begin(std::string_view stage, std::string_view detail);
  void notify_end(StageStats stats);
  void notify_campaign_progress(const CampaignProgress& progress);

  [[nodiscard]] sim::Trace record_trace(
      std::uint64_t netlist_fingerprint, std::string_view workload,
      std::size_t cycles, const std::function<sim::Trace()>& run);

  PipelineConfig config_;
  std::shared_ptr<ArtifactCache> cache_;
  std::vector<std::shared_ptr<StageObserver>> observers_;
  std::unordered_map<std::uint64_t, sim::TransposedTrace> transposed_;
};

} // namespace ripple::pipeline
