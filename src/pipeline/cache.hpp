// Content-addressed on-disk artifact cache.
//
// Artifacts are addressed by (stage tag, 64-bit key); the key is a hash over
// everything that determines the artifact's content — netlist fingerprint,
// fault set, search parameters, trace length, artifact format version. Files
// are written atomically (unique temp file + rename) and validated on load
// via the artifact frame checksum, so a torn or foreign file degrades to a
// miss. One cache may be shared by concurrent pipelines (the rippled daemon
// runs every execution against a single instance): load/store are
// thread-safe, and a racing store of the same key publishes one intact file.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ripple::pipeline {

struct CacheKey {
  std::string stage;     // "record_trace", "find_mates", "select", ...
  std::uint64_t hash = 0;
};

class ArtifactCache {
public:
  /// An empty `dir` (or enabled = false) disables the cache: every load is
  /// a miss that is not counted, every store a no-op.
  ArtifactCache(std::filesystem::path dir, bool enabled);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

  /// The artifact payload stored under `key`, or nullopt (miss / corrupt /
  /// cache disabled). Counted in stats() when the cache is enabled.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> load(
      const CacheKey& key);

  /// Store `payload` under `key` (framed + checksummed). No-op when disabled.
  void store(const CacheKey& key, std::span<const std::uint8_t> payload);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t stores = 0;
    std::size_t corrupt = 0; // present but failed frame validation
  };
  /// Snapshot of the counters (by value: the cache may be shared by
  /// concurrent pipelines).
  [[nodiscard]] Stats stats() const;

  /// Cache file path for a key (exposed for tests/tooling).
  [[nodiscard]] std::filesystem::path path_for(const CacheKey& key) const;

private:
  std::filesystem::path dir_;
  bool enabled_ = false;
  mutable std::mutex mutex_; // guards stats_ and the temp-name counter
  Stats stats_;
  std::uint64_t store_seq_ = 0;
};

} // namespace ripple::pipeline
