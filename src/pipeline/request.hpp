// The serializable campaign request — the unit of work of the campaign
// service (and the promoted successor of the old nested
// CampaignPipeline::CampaignSpec).
//
// A CampaignRequest is pure data: a core *name* (resolved through the
// CoreRegistry, which owns every function-pointer/factory that used to live
// in the spec), a workload name, the campaign configuration, and how to
// derive the MATE set (search depth + top-N selection). It has a versioned
// binary encoding (write_request/read_request) so it can travel the rippled
// wire protocol, and a stable checksum over its result-affecting fields that
// doubles as the daemon's dedup key: two requests with equal checksums are
// guaranteed to produce byte-identical CampaignResults, so concurrent
// clients submitting them share one execution.
#pragma once

#include <cstdint>
#include <string>

#include "hafi/campaign.hpp"
#include "util/serialize.hpp"

namespace ripple::pipeline {

/// Bump when the encoding below changes; read_request rejects other
/// versions (a daemon never guesses at a foreign layout).
inline constexpr std::uint32_t kRequestVersion = 1;

struct CampaignRequest {
  /// CoreRegistry key ("avr", "msp430", or a name the binary registered).
  std::string core = "avr";
  /// Workload the DUT boots and the selection trace records; empty = the
  /// core's default ("fib" for the built-ins).
  std::string workload;
  /// Campaign configuration. `threads` and `dut_engine` are scheduling
  /// knobs — serialized, but excluded from the checksum (they never affect
  /// results).
  hafi::CampaignConfig config;
  /// Pruned/Validate: keep only the top-N MATEs of the greedy selection
  /// (0 = the full MATE set, no selection pass needed).
  std::uint32_t top_n = 0;
  /// MATE search depth override (0 = SearchParams default).
  std::uint32_t search_depth = 0;
  /// Selection trace length (0 = config.run_cycles). Ignored when top_n is
  /// 0 or the mode is Baseline.
  std::uint64_t select_cycles = 0;
  /// Persist finished shards to the artifact cache and skip checkpointed
  /// ones. The daemon forces this on so identical re-submissions and
  /// daemon restarts replay instead of re-executing.
  bool resume = false;

  bool operator==(const CampaignRequest&) const = default;
};

/// Versioned binary encoding (the wire and fingerprint form).
void write_request(ByteWriter& w, const CampaignRequest& request);
/// Decode; throws ripple::Error on a version mismatch or malformed bytes.
[[nodiscard]] CampaignRequest read_request(ByteReader& r);

/// Stable dedup key: a hash over the result-affecting fields only.
/// `config.threads`, `config.dut_engine`, `config.shard_size` and `resume`
/// are excluded (wall-time/scheduling/persistence knobs — byte-identical
/// results either way), and Baseline requests normalize the MATE-derivation
/// fields away, so e.g. a baseline request with top_n=7 and one with
/// top_n=0 share one execution.
[[nodiscard]] std::uint64_t request_checksum(const CampaignRequest& request);

/// One-line human description ("avr fib pruned, 3000 pts @ 1500 cycles"),
/// used as the default stage detail and in daemon logs.
[[nodiscard]] std::string request_summary(const CampaignRequest& request);

} // namespace ripple::pipeline
