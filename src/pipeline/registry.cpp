#include "pipeline/registry.hpp"

#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "cores/avr/system.hpp"
#include "cores/msp430/core.hpp"
#include "cores/msp430/programs.hpp"
#include "cores/msp430/system.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/msp430_dut.hpp"
#include "pipeline/artifact.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace ripple::pipeline {
namespace {

CoreRuntime make_avr_runtime(std::string_view workload) {
  const std::string wl = workload.empty() ? "fib" : std::string(workload);
  auto core = std::make_shared<const cores::avr::AvrCore>(
      cores::avr::build_avr_core(true));
  auto program = std::make_shared<const cores::avr::Program>(
      cores::avr::workload_program(wl));

  CoreRuntime rt;
  rt.netlist =
      std::shared_ptr<const netlist::Netlist>(core, &core->netlist);
  rt.fingerprint = fingerprint(core->netlist);
  rt.workload = wl;
  // The inner factories capture `core`/`program` by reference; the wrapping
  // lambdas hold the shared_ptrs so the references stay valid for as long as
  // any copy of the runtime lives.
  rt.factory = [core, program,
                inner = hafi::make_avr_factory(*core, *program)] {
    return inner();
  };
  rt.batch_factory = [core, program,
                      inner = hafi::make_avr_batch_factory(*core, *program)] {
    return inner();
  };
  rt.record_trace = [core, program](std::size_t cycles) {
    cores::avr::AvrSystem sys(*core, *program);
    return sys.run_trace(cycles);
  };
  return rt;
}

CoreRuntime make_msp430_runtime(std::string_view workload) {
  const std::string wl = workload.empty() ? "fib" : std::string(workload);
  auto core = std::make_shared<const cores::msp430::Msp430Core>(
      cores::msp430::build_msp430_core(true));
  auto image = std::make_shared<const cores::msp430::Image>(
      cores::msp430::workload_image(wl));

  CoreRuntime rt;
  rt.netlist =
      std::shared_ptr<const netlist::Netlist>(core, &core->netlist);
  rt.fingerprint = fingerprint(core->netlist);
  rt.workload = wl;
  rt.factory = [core, image,
                inner = hafi::make_msp430_factory(*core, *image)] {
    return inner();
  };
  rt.batch_factory = [core, image,
                      inner = hafi::make_msp430_batch_factory(*core,
                                                              *image)] {
    return inner();
  };
  rt.record_trace = [core, image](std::size_t cycles) {
    cores::msp430::Msp430System sys(*core, *image);
    return sys.run_trace(cycles);
  };
  return rt;
}

} // namespace

CoreRegistry& CoreRegistry::global() {
  static CoreRegistry* registry = [] {
    auto* r = new CoreRegistry;
    r->register_core("avr", make_avr_runtime);
    r->register_core("msp430", make_msp430_runtime);
    return r;
  }();
  return *registry;
}

void CoreRegistry::register_core(std::string name, Maker maker) {
  RIPPLE_CHECK(!name.empty(), "core registry: empty name");
  RIPPLE_CHECK(maker != nullptr, "core registry: empty maker for '", name,
               "'");
  std::lock_guard lock(mutex_);
  makers_[std::move(name)] = std::move(maker);
}

bool CoreRegistry::contains(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return makers_.count(name) != 0;
}

CoreRuntime CoreRegistry::make(const std::string& name,
                               std::string_view workload) const {
  Maker maker;
  {
    std::lock_guard lock(mutex_);
    const auto it = makers_.find(name);
    if (it == makers_.end()) {
      std::string known;
      for (const auto& [n, m] : makers_) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw Error(strprintf("unknown core '%s' (registered: %s)",
                            name.c_str(), known.c_str()));
    }
    maker = it->second;
  }
  CoreRuntime rt = maker(workload);
  RIPPLE_CHECK(rt.netlist != nullptr && rt.factory != nullptr,
               "core registry: maker for '", name,
               "' produced an incomplete runtime");
  return rt;
}

std::vector<std::string> CoreRegistry::names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(makers_.size());
  for (const auto& [n, m] : makers_) names.push_back(n);
  return names;
}

} // namespace ripple::pipeline
