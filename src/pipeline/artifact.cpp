#include "pipeline/artifact.hpp"

#include "util/hash.hpp"

namespace ripple::pipeline {
namespace {

constexpr std::string_view kMagic = "RPLA";

void write_wire_id(ByteWriter& w, WireId id) { w.u32(id.value()); }

[[nodiscard]] WireId read_wire_id(ByteReader& r, std::size_t num_wires) {
  const WireId id{r.u32()};
  RIPPLE_CHECK(id.index() < num_wires, "wire id out of range in artifact");
  return id;
}

void write_wire_ids(ByteWriter& w, std::span<const WireId> ids) {
  w.u64(ids.size());
  for (WireId id : ids) write_wire_id(w, id);
}

[[nodiscard]] std::vector<WireId> read_wire_ids(ByteReader& r,
                                                std::size_t num_wires) {
  const std::size_t n = r.count(4);
  std::vector<WireId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(read_wire_id(r, num_wires));
  return ids;
}

void write_cube(ByteWriter& w, const mate::Cube& cube) {
  w.u64(cube.size());
  for (const mate::Literal& l : cube.literals()) {
    write_wire_id(w, l.wire);
    w.b(l.value);
  }
}

[[nodiscard]] mate::Cube read_cube(ByteReader& r) {
  const std::size_t n = r.count(5);
  std::vector<mate::Literal> lits;
  lits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const WireId wire{r.u32()};
    const bool value = r.b();
    lits.push_back(mate::Literal{wire, value});
  }
  return mate::Cube{std::move(lits)};
}

} // namespace

// --- netlist --------------------------------------------------------------

void write_netlist(ByteWriter& w, const netlist::Netlist& n) {
  w.str(n.name());

  w.u64(n.num_wires());
  for (WireId id : n.all_wires()) {
    const netlist::Wire& wire = n.wire(id);
    w.str(wire.name);
    w.b(wire.driver_kind == netlist::DriverKind::PrimaryInput);
  }

  w.u64(n.num_gates());
  for (GateId id : n.all_gates()) {
    const netlist::Gate& g = n.gate(id);
    w.u8(static_cast<std::uint8_t>(g.kind));
    w.u64(g.inputs.size());
    for (WireId in : g.inputs) write_wire_id(w, in);
    write_wire_id(w, g.output);
  }

  w.u64(n.num_flops());
  for (FlopId id : n.all_flops()) {
    const netlist::Flop& f = n.flop(id);
    w.str(f.name);
    w.b(f.init);
    write_wire_id(w, f.q);
    write_wire_id(w, f.d);
  }

  write_wire_ids(w, n.primary_outputs());
}

netlist::Netlist read_netlist(ByteReader& r) {
  netlist::Netlist n(r.str());

  // Wires in id order; primary inputs are re-registered in the same relative
  // order they were declared (input declaration follows wire creation).
  const std::size_t num_wires = r.count(2);
  for (std::size_t i = 0; i < num_wires; ++i) {
    const std::string name = r.str();
    const bool is_input = r.b();
    const WireId id = is_input ? n.add_input(name) : n.add_wire(name);
    RIPPLE_CHECK(id.index() == i, "non-dense wire ids in artifact");
  }

  const std::size_t num_gates = r.count(6);
  for (std::size_t i = 0; i < num_gates; ++i) {
    const std::uint8_t kind_raw = r.u8();
    RIPPLE_CHECK(kind_raw < cell::kKindCount, "bad cell kind in artifact");
    const auto kind = static_cast<cell::Kind>(kind_raw);
    const std::size_t num_inputs = r.count(4);
    std::vector<WireId> inputs;
    inputs.reserve(num_inputs);
    for (std::size_t p = 0; p < num_inputs; ++p) {
      inputs.push_back(read_wire_id(r, num_wires));
    }
    const WireId output = read_wire_id(r, num_wires);
    const GateId id = n.add_gate(kind, inputs, output);
    RIPPLE_CHECK(id.index() == i, "non-dense gate ids in artifact");
  }

  const std::size_t num_flops = r.count(10);
  struct PendingD {
    FlopId flop;
    WireId d;
  };
  std::vector<PendingD> pending;
  pending.reserve(num_flops);
  for (std::size_t i = 0; i < num_flops; ++i) {
    const std::string name = r.str();
    const bool init = r.b();
    const WireId q = read_wire_id(r, num_wires);
    const WireId d = read_wire_id(r, num_wires);
    const FlopId id = n.adopt_flop(name, init, q);
    RIPPLE_CHECK(id.index() == i, "non-dense flop ids in artifact");
    pending.push_back({id, d});
  }
  // D nets may be driven by any wire, including later flop Qs; connect after
  // all flops exist (state feedback loops).
  for (const PendingD& p : pending) n.connect_flop(p.flop, p.d);

  for (WireId out : read_wire_ids(r, num_wires)) n.mark_output(out);

  n.check();
  return n;
}

// --- trace ----------------------------------------------------------------

void write_trace(ByteWriter& w, const sim::Trace& t) {
  w.u64(t.num_wires());
  for (std::size_t i = 0; i < t.num_wires(); ++i) w.str(t.wire_name(i));
  w.u64(t.num_cycles());
  for (std::size_t c = 0; c < t.num_cycles(); ++c) {
    const BitVec& row = t.cycle_values(c);
    RIPPLE_ASSERT(row.size() == t.num_wires());
    for (std::uint64_t word : row.words()) w.u64(word);
  }
}

sim::Trace read_trace(ByteReader& r) {
  const std::size_t num_wires = r.count(2);
  std::vector<std::string> names;
  names.reserve(num_wires);
  for (std::size_t i = 0; i < num_wires; ++i) names.push_back(r.str());
  sim::Trace t = sim::make_trace_for_names(std::move(names));

  const std::size_t cycles = r.count();
  const std::size_t words_per_row = (num_wires + 63) / 64;
  for (std::size_t c = 0; c < cycles; ++c) {
    std::vector<std::uint64_t> words;
    words.reserve(words_per_row);
    for (std::size_t i = 0; i < words_per_row; ++i) words.push_back(r.u64());
    t.append(BitVec::from_words(num_wires, std::move(words)));
  }
  return t;
}

// Column-major twin of write_trace/read_trace. Wire names are not carried —
// a transposed trace is a derived view; its identity is the source trace's
// fingerprint.
void write_transposed_trace(ByteWriter& w, const sim::TransposedTrace& t) {
  w.u64(t.num_wires());
  w.u64(t.num_cycles());
  for (std::uint64_t word : t.words()) w.u64(word);
}

sim::TransposedTrace read_transposed_trace(ByteReader& r) {
  const std::size_t num_wires = static_cast<std::size_t>(r.u64());
  const std::size_t num_cycles = static_cast<std::size_t>(r.u64());
  const std::size_t words = num_wires * ((num_cycles + 63) / 64);
  RIPPLE_CHECK(words <= r.remaining() / 8,
               "transposed-trace word count exceeds payload size");
  std::vector<std::uint64_t> bits;
  bits.reserve(words);
  for (std::size_t i = 0; i < words; ++i) bits.push_back(r.u64());
  return sim::TransposedTrace::from_words(num_wires, num_cycles,
                                          std::move(bits));
}

// --- MATE sets / search results / selections ------------------------------

void write_mate_set(ByteWriter& w, const mate::MateSet& set) {
  w.u64(set.mates.size());
  for (const mate::Mate& m : set.mates) {
    write_cube(w, m.cube);
    write_wire_ids(w, m.masked_wires);
  }
  write_wire_ids(w, set.faulty_wires);
}

mate::MateSet read_mate_set(ByteReader& r) {
  mate::MateSet set;
  const std::size_t n = r.count();
  set.mates.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    mate::Mate m;
    m.cube = read_cube(r);
    m.masked_wires = read_wire_ids(r, WireId::kInvalid);
    set.mates.push_back(std::move(m));
  }
  set.faulty_wires = read_wire_ids(r, WireId::kInvalid);
  return set;
}

void write_search_result(ByteWriter& w, const mate::SearchResult& result) {
  write_mate_set(w, result.set);
  w.u64(result.outcomes.size());
  for (const mate::WireOutcome& o : result.outcomes) {
    write_wire_id(w, o.wire);
    w.u8(static_cast<std::uint8_t>(o.status));
    w.u64(o.cone_gates);
    w.u64(o.border_wires);
    w.u64(o.num_paths);
    w.u64(o.candidates_tried);
    w.u64(o.mates_found);
    w.f64(o.seconds);
  }
  w.u64(result.total_candidates);
  w.u64(result.total_mates);
  w.u64(result.unmaskable_wires);
  w.f64(result.seconds);
  w.u64(result.threads_used);
  w.u64(result.dedup_classes);
  w.f64(result.busy_seconds);
}

mate::SearchResult read_search_result(ByteReader& r) {
  mate::SearchResult result;
  result.set = read_mate_set(r);
  const std::size_t n = r.count(10);
  result.outcomes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    mate::WireOutcome o;
    o.wire = WireId{r.u32()};
    const std::uint8_t status = r.u8();
    RIPPLE_CHECK(status <= static_cast<std::uint8_t>(
                               mate::WireStatus::PathBudget),
                 "bad wire status in artifact");
    o.status = static_cast<mate::WireStatus>(status);
    o.cone_gates = static_cast<std::size_t>(r.u64());
    o.border_wires = static_cast<std::size_t>(r.u64());
    o.num_paths = static_cast<std::size_t>(r.u64());
    o.candidates_tried = static_cast<std::size_t>(r.u64());
    o.mates_found = static_cast<std::size_t>(r.u64());
    o.seconds = r.f64();
    result.outcomes.push_back(o);
  }
  result.total_candidates = static_cast<std::size_t>(r.u64());
  result.total_mates = static_cast<std::size_t>(r.u64());
  result.unmaskable_wires = static_cast<std::size_t>(r.u64());
  result.seconds = r.f64();
  result.threads_used = static_cast<std::size_t>(r.u64());
  result.dedup_classes = static_cast<std::size_t>(r.u64());
  result.busy_seconds = r.f64();
  return result;
}

void write_selection(ByteWriter& w, const mate::SelectionResult& sel) {
  w.u64(sel.ranking.size());
  for (std::size_t i : sel.ranking) w.u64(i);
  w.u64(sel.hits.size());
  for (std::size_t h : sel.hits) w.u64(h);
}

mate::SelectionResult read_selection(ByteReader& r) {
  mate::SelectionResult sel;
  const std::size_t n = r.count(8);
  sel.ranking.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sel.ranking.push_back(static_cast<std::size_t>(r.u64()));
  }
  const std::size_t h = r.count(8);
  sel.hits.reserve(h);
  for (std::size_t i = 0; i < h; ++i) {
    sel.hits.push_back(static_cast<std::size_t>(r.u64()));
  }
  return sel;
}

void write_eval_result(ByteWriter& w, const mate::EvalResult& eval) {
  w.u64(eval.num_cycles);
  w.u64(eval.num_faulty_wires);
  w.u64(eval.masked_faults);
  w.u64(eval.effective_mates);
  w.f64(eval.avg_inputs);
  w.f64(eval.sd_inputs);
  w.u64(eval.per_mate.size());
  for (const mate::MateTraceStats& m : eval.per_mate) {
    w.u64(m.triggers);
    w.u64(m.masked_total);
  }
  w.u64(eval.triggered_by_cycle.size());
  for (const auto& cycle : eval.triggered_by_cycle) {
    w.u64(cycle.size());
    for (std::uint32_t idx : cycle) w.u32(idx);
  }
}

mate::EvalResult read_eval_result(ByteReader& r) {
  mate::EvalResult eval;
  eval.num_cycles = static_cast<std::size_t>(r.u64());
  eval.num_faulty_wires = static_cast<std::size_t>(r.u64());
  eval.masked_faults = static_cast<std::size_t>(r.u64());
  eval.effective_mates = static_cast<std::size_t>(r.u64());
  eval.avg_inputs = r.f64();
  eval.sd_inputs = r.f64();
  const std::size_t num_mates = r.count(16);
  eval.per_mate.reserve(num_mates);
  for (std::size_t i = 0; i < num_mates; ++i) {
    mate::MateTraceStats m;
    m.triggers = static_cast<std::size_t>(r.u64());
    m.masked_total = static_cast<std::size_t>(r.u64());
    eval.per_mate.push_back(m);
  }
  const std::size_t num_cycles = r.count(8);
  eval.triggered_by_cycle.reserve(num_cycles);
  for (std::size_t c = 0; c < num_cycles; ++c) {
    const std::size_t n = r.count(4);
    std::vector<std::uint32_t> cycle;
    cycle.reserve(n);
    for (std::size_t i = 0; i < n; ++i) cycle.push_back(r.u32());
    eval.triggered_by_cycle.push_back(std::move(cycle));
  }
  return eval;
}

// --- campaign shards & results --------------------------------------------

namespace {

void write_experiment(ByteWriter& w, const hafi::Experiment& e) {
  w.u32(e.point.flop.value());
  w.u64(e.point.cycle);
  w.b(e.pruned);
  w.b(e.executed);
  w.u8(static_cast<std::uint8_t>(e.outcome));
}

[[nodiscard]] hafi::Experiment read_experiment(ByteReader& r) {
  hafi::Experiment e;
  e.point.flop = FlopId{r.u32()};
  e.point.cycle = r.u64();
  e.pruned = r.b();
  e.executed = r.b();
  const std::uint8_t outcome = r.u8();
  RIPPLE_CHECK(outcome <= static_cast<std::uint8_t>(hafi::Outcome::Sdc),
               "bad outcome in campaign artifact");
  e.outcome = static_cast<hafi::Outcome>(outcome);
  return e;
}

constexpr std::size_t kExperimentBytes = 4 + 8 + 1 + 1 + 1;

} // namespace

void write_shard_result(ByteWriter& w, const hafi::ShardResult& shard) {
  w.u32(shard.shard);
  w.u64(shard.experiments.size());
  for (const hafi::Experiment& e : shard.experiments) write_experiment(w, e);
}

hafi::ShardResult read_shard_result(ByteReader& r) {
  hafi::ShardResult shard;
  shard.shard = r.u32();
  const std::size_t n = r.count(kExperimentBytes);
  shard.experiments.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shard.experiments.push_back(read_experiment(r));
  }
  return shard;
}

void write_campaign_result(ByteWriter& w, const hafi::CampaignResult& result) {
  w.u64(result.experiments.size());
  for (const hafi::Experiment& e : result.experiments) write_experiment(w, e);
  w.u64(result.total);
  w.u64(result.pruned);
  w.u64(result.executed);
  w.u64(result.benign);
  w.u64(result.latent);
  w.u64(result.sdc);
  w.u64(result.pruned_confirmed);
}

hafi::CampaignResult read_campaign_result(ByteReader& r) {
  hafi::CampaignResult result;
  const std::size_t n = r.count(kExperimentBytes);
  result.experiments.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.experiments.push_back(read_experiment(r));
  }
  result.total = static_cast<std::size_t>(r.u64());
  result.pruned = static_cast<std::size_t>(r.u64());
  result.executed = static_cast<std::size_t>(r.u64());
  result.benign = static_cast<std::size_t>(r.u64());
  result.latent = static_cast<std::size_t>(r.u64());
  result.sdc = static_cast<std::size_t>(r.u64());
  result.pruned_confirmed = static_cast<std::size_t>(r.u64());
  return result;
}

// --- fingerprints ---------------------------------------------------------

std::uint64_t fingerprint(const netlist::Netlist& n) {
  ByteWriter w;
  write_netlist(w, n);
  return hash_bytes(w.bytes());
}

std::uint64_t fingerprint(const sim::Trace& t) {
  ByteWriter w;
  write_trace(w, t);
  return hash_bytes(w.bytes());
}

std::uint64_t fingerprint(const mate::MateSet& set) {
  ByteWriter w;
  write_mate_set(w, set);
  return hash_bytes(w.bytes());
}

// --- framing --------------------------------------------------------------

std::vector<std::uint8_t> frame_artifact(std::string_view type_tag,
                                         std::span<const std::uint8_t> payload) {
  ByteWriter w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kArtifactVersion);
  w.str(type_tag);
  w.u64(payload.size());
  Hasher h;
  h.update_bytes(payload);
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  ByteWriter tail;
  tail.u64(h.digest());
  const auto& tail_bytes = tail.bytes();
  out.insert(out.end(), tail_bytes.begin(), tail_bytes.end());
  return out;
}

std::optional<std::vector<std::uint8_t>> unframe_artifact(
    std::string_view type_tag, std::span<const std::uint8_t> file) {
  try {
    ByteReader r(file);
    for (char c : kMagic) {
      if (r.u8() != static_cast<std::uint8_t>(c)) return std::nullopt;
    }
    if (r.u32() != kArtifactVersion) return std::nullopt;
    if (r.str() != type_tag) return std::nullopt;
    const std::uint64_t size = r.u64();
    if (size + 8 != r.remaining()) return std::nullopt;
    std::vector<std::uint8_t> payload = r.blob(size);
    if (r.u64() != hash_bytes(payload)) return std::nullopt;
    r.expect_done();
    return payload;
  } catch (const Error&) {
    return std::nullopt;
  }
}

} // namespace ripple::pipeline
