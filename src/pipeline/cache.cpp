#include "pipeline/cache.hpp"

#include <cstdio>
#include <fstream>

#include <unistd.h>

#include "pipeline/artifact.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace ripple::pipeline {

ArtifactCache::ArtifactCache(std::filesystem::path dir, bool enabled)
    : dir_(std::move(dir)), enabled_(enabled && !dir_.empty()) {
  if (enabled_) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      std::fprintf(stderr,
                   "ripple: cannot create cache directory '%s' (%s); "
                   "caching disabled\n",
                   dir_.string().c_str(), ec.message().c_str());
      enabled_ = false;
    }
  }
}

std::filesystem::path ArtifactCache::path_for(const CacheKey& key) const {
  return dir_ / (key.stage + "-" + hex64(key.hash) + ".rpl");
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::optional<std::vector<std::uint8_t>> ArtifactCache::load(
    const CacheKey& key) {
  if (!enabled_) return std::nullopt;

  const auto count = [this](std::size_t Stats::* field) {
    std::lock_guard lock(mutex_);
    ++(stats_.*field);
  };

  const std::filesystem::path path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    count(&Stats::misses);
    return std::nullopt;
  }
  std::vector<std::uint8_t> file(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    count(&Stats::misses);
    return std::nullopt;
  }

  auto payload = unframe_artifact(key.stage, file);
  if (!payload) {
    count(&Stats::corrupt);
    count(&Stats::misses);
    return std::nullopt;
  }
  count(&Stats::hits);
  return payload;
}

void ArtifactCache::store(const CacheKey& key,
                          std::span<const std::uint8_t> payload) {
  if (!enabled_) return;

  const std::vector<std::uint8_t> framed = frame_artifact(key.stage, payload);
  const std::filesystem::path path = path_for(key);
  // Unique temp name: concurrent pipelines may store the same key at once;
  // each writes its own temp file and the renames race benignly (identical
  // content, atomic replace).
  std::uint64_t seq;
  {
    std::lock_guard lock(mutex_);
    seq = ++store_seq_;
  }
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(seq);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "ripple: cannot write cache file '%s'\n",
                   tmp.string().c_str());
      return;
    }
    out.write(reinterpret_cast<const char*>(framed.data()),
              static_cast<std::streamsize>(framed.size()));
    if (!out.good()) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::lock_guard lock(mutex_);
  ++stats_.stores;
}

} // namespace ripple::pipeline
