#include "pipeline/request.hpp"

#include "util/hash.hpp"
#include "util/strings.hpp"

namespace ripple::pipeline {

void write_request(ByteWriter& w, const CampaignRequest& request) {
  w.u32(kRequestVersion);
  w.str(request.core);
  w.str(request.workload);
  w.u64(request.config.run_cycles);
  w.u64(request.config.sample);
  w.u64(request.config.seed);
  w.u8(static_cast<std::uint8_t>(request.config.mode));
  w.u64(request.config.threads);
  w.u64(request.config.shard_size);
  w.u8(static_cast<std::uint8_t>(request.config.dut_engine));
  w.u32(request.top_n);
  w.u32(request.search_depth);
  w.u64(request.select_cycles);
  w.b(request.resume);
}

CampaignRequest read_request(ByteReader& r) {
  const std::uint32_t version = r.u32();
  RIPPLE_CHECK(version == kRequestVersion,
               "campaign request version mismatch: got ", version,
               ", expected ", kRequestVersion);
  CampaignRequest q;
  q.core = r.str();
  q.workload = r.str();
  q.config.run_cycles = static_cast<std::size_t>(r.u64());
  q.config.sample = static_cast<std::size_t>(r.u64());
  q.config.seed = r.u64();
  const std::uint8_t mode = r.u8();
  RIPPLE_CHECK(mode <= static_cast<std::uint8_t>(hafi::CampaignMode::Validate),
               "campaign request: bad mode ", mode);
  q.config.mode = static_cast<hafi::CampaignMode>(mode);
  q.config.threads = static_cast<std::size_t>(r.u64());
  q.config.shard_size = static_cast<std::size_t>(r.u64());
  const std::uint8_t engine = r.u8();
  RIPPLE_CHECK(
      engine <= static_cast<std::uint8_t>(hafi::DutEngine::BitParallel),
      "campaign request: bad dut engine ", engine);
  q.config.dut_engine = static_cast<hafi::DutEngine>(engine);
  q.top_n = r.u32();
  q.search_depth = r.u32();
  q.select_cycles = r.u64();
  q.resume = r.b();
  return q;
}

std::uint64_t request_checksum(const CampaignRequest& request) {
  const bool baseline = request.config.mode == hafi::CampaignMode::Baseline;
  Hasher h;
  h.update_value(kRequestVersion);
  h.update_string(request.core);
  h.update_string(request.workload);
  h.update_value(static_cast<std::uint64_t>(request.config.run_cycles));
  h.update_value(static_cast<std::uint64_t>(request.config.sample));
  h.update_value(request.config.seed);
  h.update_value(static_cast<std::uint8_t>(request.config.mode));
  // MATE derivation, normalized: Baseline campaigns never derive a set, so
  // those fields hash as zero; a select_cycles of 0 resolves to run_cycles.
  h.update_value(baseline ? 0 : request.top_n);
  h.update_value(baseline ? 0 : request.search_depth);
  const std::uint64_t select_cycles =
      baseline || request.top_n == 0
          ? 0
          : (request.select_cycles != 0 ? request.select_cycles
                                        : request.config.run_cycles);
  h.update_value(select_cycles);
  return h.digest();
}

std::string request_summary(const CampaignRequest& request) {
  std::string summary = request.core;
  if (!request.workload.empty()) summary += " " + request.workload;
  summary += " ";
  summary += hafi::mode_name(request.config.mode);
  if (request.config.mode != hafi::CampaignMode::Baseline &&
      request.top_n > 0) {
    summary += strprintf(" top-%u", request.top_n);
  }
  summary += strprintf(", %zu pts @ %zu cycles", request.config.sample,
                       request.config.run_cycles);
  return summary;
}

} // namespace ripple::pipeline
