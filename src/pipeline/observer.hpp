// Per-stage observability for the campaign pipeline.
//
// Every pipeline stage reports begin/end plus a StageStats record (wall
// time, worker threads and their utilization, stage-specific counters,
// cache hit/miss). Observers consume these events:
//   * ProgressObserver  -- human-readable progress on stderr (replaces the
//                          ad-hoc fprintf(stderr, ...) lines of the benches;
//                          stdout stays clean for tables/CSV/JSON),
//   * JsonReportObserver -- collects all stage records and emits the
//                          machine-readable `--report=json` document.
#pragma once

#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/cache.hpp"

namespace ripple::pipeline {

struct StageStats {
  std::string stage;   // "find_mates"
  std::string detail;  // e.g. "AVR FF" — distinguishes invocations
  double seconds = 0.0;
  std::size_t threads = 1;
  /// Busy thread-seconds / (threads * wall); 0 when unknown or cached.
  double utilization = 0.0;
  bool cacheable = false;   // stage consults the artifact cache
  bool cache_hit = false;
  /// Ordered stage-specific counters ("mates", "candidates", ...).
  obs::CounterSet counters;
};

/// One campaign shard-progress tick: the structured form of the old
/// "[campaign] shard N/M ..." narration, so observers can consume the
/// numbers (daemon Stats responses) instead of re-parsing text.
struct CampaignProgress {
  std::size_t shard = 0;       // shard index that just finished
  std::size_t shards_done = 0; // finished so far (resumed + executed)
  std::size_t num_shards = 0;
  bool resumed = false;        // replayed from a checkpoint (zero cost)
  double seconds = 0.0;        // this shard's wall time (0 when resumed)
  std::size_t executed = 0;       // injections executed by this shard
  std::size_t executed_total = 0; // cumulative executed injections
  double inj_per_sec = 0.0;    // this shard's throughput (0 when resumed)
  double eta_seconds = 0.0;    // EtaTracker projection for the remainder
};

/// The canonical one-line rendering of a progress tick — shared by the
/// local ProgressObserver and the daemon's client-facing log frames so both
/// narrate identically.
[[nodiscard]] std::string format_campaign_progress(const CampaignProgress& p);

class StageObserver {
public:
  virtual ~StageObserver() = default;

  virtual void stage_begin(std::string_view stage, std::string_view detail) {
    (void)stage;
    (void)detail;
  }
  virtual void stage_end(const StageStats& stats) { (void)stats; }

  /// Free-form progress line (bench narration between stages).
  virtual void progress(std::string_view message) { (void)message; }

  /// Structured campaign shard progress (also rendered as a progress line
  /// by ProgressObserver).
  virtual void campaign_progress(const CampaignProgress& p) { (void)p; }
};

/// stderr narration: one line per stage completion plus pass-through
/// progress lines. Quiet by construction on stdout. Every line is built in
/// full and emitted as a single write, so lines from concurrent campaigns
/// (the rippled daemon attaches one labeled instance per execution) never
/// interleave mid-line; a non-empty `label` — e.g. the short request
/// checksum — prefixes each line as "[label] ..." to tell them apart.
class ProgressObserver final : public StageObserver {
public:
  explicit ProgressObserver(std::FILE* out = nullptr, std::string label = {});

  void stage_begin(std::string_view stage, std::string_view detail) override;
  void stage_end(const StageStats& stats) override;
  void progress(std::string_view message) override;
  void campaign_progress(const CampaignProgress& p) override;

private:
  void write_line(std::string_view line);

  std::FILE* out_;
  std::string label_;
};

/// Version of the shared `--report=json` envelope every binary (benches,
/// hafi_campaign, rippled, ripple-client) emits:
///   {"tool": ..., "version": N, "stages": [...], "counters": {...},
///    "histograms": {...}}
/// `stages[]` carries the per-stage records (wall time, threads,
/// utilization, cache outcome, stage counters); `counters{}` carries the
/// tool-wide totals (peak_rss_bytes, cache_* when a cache is attached,
/// service totals for the daemon). Version 2 added `histograms{}` —
/// count/sum/p50/p90/p99 per MetricRegistry histogram (shard_seconds,
/// lane_utilization, chunk_queue_depth) — plus the registry's counters and
/// gauges folded into `counters{}`; every v1 field is unchanged.
/// Documented in DESIGN.md §14/§15.
inline constexpr std::uint32_t kReportVersion = 2;

/// Collects stage records for the `--report=json` emitter. Thread-safe: the
/// rippled daemon feeds one instance from concurrent executions.
class JsonReportObserver final : public StageObserver {
public:
  void stage_end(const StageStats& stats) override;

  [[nodiscard]] std::vector<StageStats> stages() const;

  /// Set a tool-wide envelope counter (last write per name wins).
  void set_counter(const std::string& name, double value);
  /// Fold a cache's totals into the envelope counters (cache_enabled,
  /// cache_hits, cache_misses, cache_stores, cache_corrupt,
  /// cache_hit_ratio).
  void add_cache_counters(const ArtifactCache& cache);

  /// The metric registry whose counters/gauges/histograms the report folds
  /// in; defaults to obs::MetricRegistry::global(). Tests inject a private
  /// registry for isolation; nullptr omits the registry sections.
  void set_metric_registry(const obs::MetricRegistry* registry);

  /// Emit the shared report envelope. peak_rss_bytes is always included in
  /// counters{}; the overload taking a cache folds its totals in first.
  void write(std::ostream& os, std::string_view tool) const;
  void write(std::ostream& os, std::string_view tool,
             const ArtifactCache& cache);

private:
  mutable std::mutex mutex_;
  std::vector<StageStats> stages_;
  obs::CounterSet counters_;
  const obs::MetricRegistry* registry_ = &obs::MetricRegistry::global();
};

/// Process-wide peak resident set size in bytes (getrusage), 0 when
/// unavailable. Reported in `--report=json` and asserted against by
/// stream_smoke: the streaming pipeline's RSS must not scale with trace
/// length.
[[nodiscard]] std::size_t peak_rss_bytes();

} // namespace ripple::pipeline
