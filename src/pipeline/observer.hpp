// Per-stage observability for the campaign pipeline.
//
// Every pipeline stage reports begin/end plus a StageStats record (wall
// time, worker threads and their utilization, stage-specific counters,
// cache hit/miss). Observers consume these events:
//   * ProgressObserver  -- human-readable progress on stderr (replaces the
//                          ad-hoc fprintf(stderr, ...) lines of the benches;
//                          stdout stays clean for tables/CSV/JSON),
//   * JsonReportObserver -- collects all stage records and emits the
//                          machine-readable `--report=json` document.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pipeline/cache.hpp"

namespace ripple::pipeline {

struct StageStats {
  std::string stage;   // "find_mates"
  std::string detail;  // e.g. "AVR FF" — distinguishes invocations
  double seconds = 0.0;
  std::size_t threads = 1;
  /// Busy thread-seconds / (threads * wall); 0 when unknown or cached.
  double utilization = 0.0;
  bool cacheable = false;   // stage consults the artifact cache
  bool cache_hit = false;
  /// Ordered stage-specific counters ("mates", "candidates", ...).
  std::vector<std::pair<std::string, double>> counters;
};

class StageObserver {
public:
  virtual ~StageObserver() = default;

  virtual void stage_begin(std::string_view stage, std::string_view detail) {
    (void)stage;
    (void)detail;
  }
  virtual void stage_end(const StageStats& stats) { (void)stats; }

  /// Free-form progress line (bench narration between stages).
  virtual void progress(std::string_view message) { (void)message; }
};

/// stderr narration: one line per stage completion plus pass-through
/// progress lines. Quiet by construction on stdout.
class ProgressObserver final : public StageObserver {
public:
  explicit ProgressObserver(std::FILE* out = nullptr);

  void stage_begin(std::string_view stage, std::string_view detail) override;
  void stage_end(const StageStats& stats) override;
  void progress(std::string_view message) override;

private:
  std::FILE* out_;
};

/// Collects stage records for the `--report=json` emitter.
class JsonReportObserver final : public StageObserver {
public:
  void stage_end(const StageStats& stats) override;

  [[nodiscard]] const std::vector<StageStats>& stages() const {
    return stages_;
  }

  /// Emit the report: binary name, process peak RSS, per-stage wall time /
  /// threads / utilization / counters / cache outcome, and cache-wide
  /// totals.
  void write(std::ostream& os, std::string_view binary,
             const ArtifactCache& cache) const;

private:
  std::vector<StageStats> stages_;
};

/// Process-wide peak resident set size in bytes (getrusage), 0 when
/// unavailable. Reported in `--report=json` and asserted against by
/// stream_smoke: the streaming pipeline's RSS must not scale with trace
/// length.
[[nodiscard]] std::size_t peak_rss_bytes();

} // namespace ripple::pipeline
