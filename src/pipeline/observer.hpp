// Per-stage observability for the campaign pipeline.
//
// Every pipeline stage reports begin/end plus a StageStats record (wall
// time, worker threads and their utilization, stage-specific counters,
// cache hit/miss). Observers consume these events:
//   * ProgressObserver  -- human-readable progress on stderr (replaces the
//                          ad-hoc fprintf(stderr, ...) lines of the benches;
//                          stdout stays clean for tables/CSV/JSON),
//   * JsonReportObserver -- collects all stage records and emits the
//                          machine-readable `--report=json` document.
#pragma once

#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pipeline/cache.hpp"

namespace ripple::pipeline {

struct StageStats {
  std::string stage;   // "find_mates"
  std::string detail;  // e.g. "AVR FF" — distinguishes invocations
  double seconds = 0.0;
  std::size_t threads = 1;
  /// Busy thread-seconds / (threads * wall); 0 when unknown or cached.
  double utilization = 0.0;
  bool cacheable = false;   // stage consults the artifact cache
  bool cache_hit = false;
  /// Ordered stage-specific counters ("mates", "candidates", ...).
  std::vector<std::pair<std::string, double>> counters;
};

class StageObserver {
public:
  virtual ~StageObserver() = default;

  virtual void stage_begin(std::string_view stage, std::string_view detail) {
    (void)stage;
    (void)detail;
  }
  virtual void stage_end(const StageStats& stats) { (void)stats; }

  /// Free-form progress line (bench narration between stages).
  virtual void progress(std::string_view message) { (void)message; }
};

/// stderr narration: one line per stage completion plus pass-through
/// progress lines. Quiet by construction on stdout.
class ProgressObserver final : public StageObserver {
public:
  explicit ProgressObserver(std::FILE* out = nullptr);

  void stage_begin(std::string_view stage, std::string_view detail) override;
  void stage_end(const StageStats& stats) override;
  void progress(std::string_view message) override;

private:
  std::FILE* out_;
};

/// Version of the shared `--report=json` envelope every binary (benches,
/// hafi_campaign, rippled, ripple-client) emits:
///   {"tool": ..., "version": N, "stages": [...], "counters": {...}}
/// `stages[]` carries the per-stage records (wall time, threads,
/// utilization, cache outcome, stage counters); `counters{}` carries the
/// tool-wide totals (peak_rss_bytes, cache_* when a cache is attached,
/// service totals for the daemon). Documented in DESIGN.md §14.
inline constexpr std::uint32_t kReportVersion = 1;

/// Collects stage records for the `--report=json` emitter. Thread-safe: the
/// rippled daemon feeds one instance from concurrent executions.
class JsonReportObserver final : public StageObserver {
public:
  void stage_end(const StageStats& stats) override;

  [[nodiscard]] std::vector<StageStats> stages() const;

  /// Set a tool-wide envelope counter (last write per name wins).
  void set_counter(const std::string& name, double value);
  /// Fold a cache's totals into the envelope counters (cache_enabled,
  /// cache_hits, cache_misses, cache_stores, cache_corrupt).
  void add_cache_counters(const ArtifactCache& cache);

  /// Emit the shared report envelope. peak_rss_bytes is always included in
  /// counters{}; the overload taking a cache folds its totals in first.
  void write(std::ostream& os, std::string_view tool) const;
  void write(std::ostream& os, std::string_view tool,
             const ArtifactCache& cache);

private:
  mutable std::mutex mutex_;
  std::vector<StageStats> stages_;
  std::vector<std::pair<std::string, double>> counters_;
};

/// Process-wide peak resident set size in bytes (getrusage), 0 when
/// unavailable. Reported in `--report=json` and asserted against by
/// stream_smoke: the streaming pipeline's RSS must not scale with trace
/// length.
[[nodiscard]] std::size_t peak_rss_bytes();

} // namespace ripple::pipeline
