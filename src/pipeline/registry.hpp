// Core registry: resolves a *name* to the runtime pieces a campaign needs.
//
// The serializable CampaignRequest (request.hpp) cannot carry function
// pointers, so everything executable — DUT factories, the netlist build, the
// workload trace recorder — lives here, keyed by core name. The built-in
// cores ("avr", "msp430") are registered on first use; binaries with custom
// targets (e.g. the avr_campaign example's checksum program) register their
// own name before submitting requests. The rippled daemon serves exactly the
// names registered in its process.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "hafi/batch_dut.hpp"
#include "hafi/dut.hpp"
#include "netlist/netlist.hpp"
#include "sim/trace.hpp"

namespace ripple::pipeline {

/// Everything CampaignPipeline::run needs from one resolved core build. The
/// factories keep the underlying core alive through shared ownership, so a
/// CoreRuntime is self-contained.
struct CoreRuntime {
  std::shared_ptr<const netlist::Netlist> netlist;
  std::uint64_t fingerprint = 0; // content fingerprint of *netlist
  hafi::DutFactory factory;
  hafi::BatchDutFactory batch_factory; // empty: scalar-only target
  /// Record the MATE-selection trace over the resolved workload.
  std::function<sim::Trace(std::size_t cycles)> record_trace;
  std::string workload; // resolved workload name (trace cache key)
};

class CoreRegistry {
public:
  /// Build a CoreRuntime for `workload` (a name from the core's workload
  /// registry; built-ins default an empty string to "fib").
  using Maker = std::function<CoreRuntime(std::string_view workload)>;

  /// The process-wide registry with "avr" and "msp430" pre-registered.
  [[nodiscard]] static CoreRegistry& global();

  /// Register (or replace) a named core target.
  void register_core(std::string name, Maker maker);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Resolve `name`; throws ripple::Error on an unknown core.
  [[nodiscard]] CoreRuntime make(const std::string& name,
                                 std::string_view workload = {}) const;

  /// Registered names, sorted (daemon hello / error messages).
  [[nodiscard]] std::vector<std::string> names() const;

private:
  mutable std::mutex mutex_;
  std::map<std::string, Maker> makers_;
};

} // namespace ripple::pipeline
