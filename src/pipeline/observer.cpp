#include "pipeline/observer.hpp"

#include <cmath>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "mate/report.hpp" // json_escape
#include "util/strings.hpp"

namespace ripple::pipeline {
namespace {

/// Doubles in JSON: integers print bare, everything else with enough digits
/// to round-trip the interesting range (timings, fractions).
std::string json_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return strprintf("%.0f", v);
  }
  return strprintf("%.6g", v);
}

} // namespace

ProgressObserver::ProgressObserver(std::FILE* out)
    : out_(out != nullptr ? out : stderr) {}

void ProgressObserver::stage_begin(std::string_view stage,
                                   std::string_view detail) {
  if (detail.empty()) {
    std::fprintf(out_, "[%.*s] ...\n", static_cast<int>(stage.size()),
                 stage.data());
  } else {
    std::fprintf(out_, "[%.*s] %.*s ...\n", static_cast<int>(stage.size()),
                 stage.data(), static_cast<int>(detail.size()), detail.data());
  }
  std::fflush(out_);
}

void ProgressObserver::stage_end(const StageStats& stats) {
  std::string line = "[" + stats.stage + "]";
  if (!stats.detail.empty()) line += " " + stats.detail;
  line += strprintf(": %.2f s", stats.seconds);
  if (stats.cacheable) {
    line += stats.cache_hit ? " (cache hit)" : " (cache miss)";
  }
  if (stats.threads > 1) {
    line += strprintf(", %zu threads", stats.threads);
    if (stats.utilization > 0.0) {
      line += strprintf(" (%.0f %% busy)", 100.0 * stats.utilization);
    }
  }
  std::fprintf(out_, "%s\n", line.c_str());
  std::fflush(out_);
}

void ProgressObserver::progress(std::string_view message) {
  std::fprintf(out_, "%.*s\n", static_cast<int>(message.size()),
               message.data());
  std::fflush(out_);
}

void JsonReportObserver::stage_end(const StageStats& stats) {
  stages_.push_back(stats);
}

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss); // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024; // KiB on Linux
#endif
#else
  return 0;
#endif
}

void JsonReportObserver::write(std::ostream& os, std::string_view binary,
                               const ArtifactCache& cache) const {
  os << "{\n  \"binary\": \"" << mate::json_escape(binary) << "\",\n";
  os << "  \"peak_rss_bytes\": " << peak_rss_bytes() << ",\n";
  os << "  \"stages\": [\n";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const StageStats& s = stages_[i];
    os << "    {\"stage\": \"" << mate::json_escape(s.stage) << "\"";
    if (!s.detail.empty()) {
      os << ", \"detail\": \"" << mate::json_escape(s.detail) << "\"";
    }
    os << ", \"seconds\": " << json_number(s.seconds);
    os << ", \"threads\": " << s.threads;
    if (s.utilization > 0.0) {
      os << ", \"utilization\": " << json_number(s.utilization);
    }
    if (s.cacheable) {
      os << ", \"cache\": \"" << (s.cache_hit ? "hit" : "miss") << "\"";
    }
    if (!s.counters.empty()) {
      os << ", \"counters\": {";
      for (std::size_t c = 0; c < s.counters.size(); ++c) {
        if (c != 0) os << ", ";
        os << "\"" << mate::json_escape(s.counters[c].first)
           << "\": " << json_number(s.counters[c].second);
      }
      os << "}";
    }
    os << "}" << (i + 1 < stages_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  const ArtifactCache::Stats& cs = cache.stats();
  os << "  \"cache\": {\"enabled\": " << (cache.enabled() ? "true" : "false");
  if (cache.enabled()) {
    os << ", \"dir\": \"" << mate::json_escape(cache.dir().string()) << "\"";
  }
  os << ", \"hits\": " << cs.hits << ", \"misses\": " << cs.misses
     << ", \"stores\": " << cs.stores << ", \"corrupt\": " << cs.corrupt
     << "}\n";
  os << "}\n";
}

} // namespace ripple::pipeline
