#include "pipeline/observer.hpp"

#include <cmath>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "mate/report.hpp" // json_escape
#include "util/strings.hpp"

namespace ripple::pipeline {
namespace {

/// Doubles in JSON: integers print bare, everything else with enough digits
/// to round-trip the interesting range (timings, fractions).
std::string json_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return strprintf("%.0f", v);
  }
  return strprintf("%.6g", v);
}

} // namespace

std::string format_campaign_progress(const CampaignProgress& p) {
  if (p.resumed) {
    return strprintf("[campaign] shard %zu/%zu resumed from checkpoint",
                     p.shards_done, p.num_shards);
  }
  return strprintf("[campaign] shard %zu/%zu done: %.0f inj/s, ETA %.1f s",
                   p.shards_done, p.num_shards, p.inj_per_sec, p.eta_seconds);
}

ProgressObserver::ProgressObserver(std::FILE* out, std::string label)
    : out_(out != nullptr ? out : stderr), label_(std::move(label)) {}

void ProgressObserver::write_line(std::string_view line) {
  // One buffer, one fwrite: lines from concurrent executions (the daemon
  // runs one labeled observer per campaign on a shared stderr) come out
  // whole instead of interleaved mid-line.
  std::string buffer;
  buffer.reserve(label_.size() + line.size() + 4);
  if (!label_.empty()) {
    buffer += '[';
    buffer += label_;
    buffer += "] ";
  }
  buffer += line;
  buffer += '\n';
  std::fwrite(buffer.data(), 1, buffer.size(), out_);
  std::fflush(out_);
}

void ProgressObserver::stage_begin(std::string_view stage,
                                   std::string_view detail) {
  std::string line = "[" + std::string(stage) + "]";
  if (!detail.empty()) {
    line += " ";
    line += detail;
  }
  line += " ...";
  write_line(line);
}

void ProgressObserver::stage_end(const StageStats& stats) {
  std::string line = "[" + stats.stage + "]";
  if (!stats.detail.empty()) line += " " + stats.detail;
  line += strprintf(": %.2f s", stats.seconds);
  if (stats.cacheable) {
    line += stats.cache_hit ? " (cache hit)" : " (cache miss)";
  }
  if (stats.threads > 1) {
    line += strprintf(", %zu threads", stats.threads);
    if (stats.utilization > 0.0) {
      line += strprintf(" (%.0f %% busy)", 100.0 * stats.utilization);
    }
  }
  write_line(line);
}

void ProgressObserver::progress(std::string_view message) {
  write_line(message);
}

void ProgressObserver::campaign_progress(const CampaignProgress& p) {
  write_line(format_campaign_progress(p));
}

void JsonReportObserver::stage_end(const StageStats& stats) {
  std::lock_guard lock(mutex_);
  stages_.push_back(stats);
}

std::vector<StageStats> JsonReportObserver::stages() const {
  std::lock_guard lock(mutex_);
  return stages_;
}

void JsonReportObserver::set_counter(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  counters_.set(name, value);
}

void JsonReportObserver::add_cache_counters(const ArtifactCache& cache) {
  const ArtifactCache::Stats cs = cache.stats();
  set_counter("cache_enabled", cache.enabled() ? 1.0 : 0.0);
  set_counter("cache_hits", static_cast<double>(cs.hits));
  set_counter("cache_misses", static_cast<double>(cs.misses));
  set_counter("cache_stores", static_cast<double>(cs.stores));
  set_counter("cache_corrupt", static_cast<double>(cs.corrupt));
  const std::size_t lookups = cs.hits + cs.misses;
  if (lookups > 0) {
    const double ratio =
        static_cast<double>(cs.hits) / static_cast<double>(lookups);
    set_counter("cache_hit_ratio", ratio);
    obs::MetricRegistry::global().gauge("cache_hit_ratio").set(ratio);
  }
}

void JsonReportObserver::set_metric_registry(
    const obs::MetricRegistry* registry) {
  std::lock_guard lock(mutex_);
  registry_ = registry;
}

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss); // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024; // KiB on Linux
#endif
#else
  return 0;
#endif
}

void JsonReportObserver::write(std::ostream& os, std::string_view tool,
                               const ArtifactCache& cache) {
  add_cache_counters(cache);
  write(os, tool);
}

void JsonReportObserver::write(std::ostream& os, std::string_view tool) const {
  std::vector<StageStats> stages;
  const obs::MetricRegistry* registry = nullptr;
  obs::CounterSet counters;
  {
    std::lock_guard lock(mutex_);
    stages = stages_;
    registry = registry_;
    // Registry counters/gauges first, explicit envelope counters on top
    // (an explicit set_counter wins over a registry metric of the same
    // name); entry order stays deterministic either way.
    if (registry != nullptr) counters = registry->counters();
    for (const auto& [name, value] : counters_) counters.set(name, value);
  }
  os << "{\n  \"tool\": \"" << mate::json_escape(tool) << "\",\n";
  os << "  \"version\": " << kReportVersion << ",\n";
  os << "  \"stages\": [\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageStats& s = stages[i];
    os << "    {\"stage\": \"" << mate::json_escape(s.stage) << "\"";
    if (!s.detail.empty()) {
      os << ", \"detail\": \"" << mate::json_escape(s.detail) << "\"";
    }
    os << ", \"seconds\": " << json_number(s.seconds);
    os << ", \"threads\": " << s.threads;
    if (s.utilization > 0.0) {
      os << ", \"utilization\": " << json_number(s.utilization);
    }
    if (s.cacheable) {
      os << ", \"cache\": \"" << (s.cache_hit ? "hit" : "miss") << "\"";
    }
    if (!s.counters.empty()) {
      os << ", \"counters\": {";
      for (std::size_t c = 0; c < s.counters.size(); ++c) {
        if (c != 0) os << ", ";
        os << "\"" << mate::json_escape(s.counters[c].first)
           << "\": " << json_number(s.counters[c].second);
      }
      os << "}";
    }
    os << "}" << (i + 1 < stages.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"counters\": {\"peak_rss_bytes\": " << peak_rss_bytes();
  for (const auto& [name, value] : counters) {
    os << ", \"" << mate::json_escape(name) << "\": " << json_number(value);
  }
  os << "},\n";

  // Report v2: quantile summaries of every registry histogram, sorted by
  // name. Always present (possibly empty) so consumers need not probe.
  os << "  \"histograms\": {";
  if (registry != nullptr) {
    const auto snapshots = registry->histograms();
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
      const obs::Histogram::Snapshot& h = snapshots[i];
      if (i != 0) os << ",";
      os << "\n    \"" << mate::json_escape(h.name)
         << "\": {\"count\": " << h.count
         << ", \"sum\": " << json_number(h.sum)
         << ", \"p50\": " << json_number(h.quantile(0.50))
         << ", \"p90\": " << json_number(h.quantile(0.90))
         << ", \"p99\": " << json_number(h.quantile(0.99)) << "}";
    }
    if (!snapshots.empty()) os << "\n  ";
  }
  os << "}\n}\n";
}

} // namespace ripple::pipeline
