#include "pipeline/observer.hpp"

#include <cmath>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "mate/report.hpp" // json_escape
#include "util/strings.hpp"

namespace ripple::pipeline {
namespace {

/// Doubles in JSON: integers print bare, everything else with enough digits
/// to round-trip the interesting range (timings, fractions).
std::string json_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return strprintf("%.0f", v);
  }
  return strprintf("%.6g", v);
}

} // namespace

ProgressObserver::ProgressObserver(std::FILE* out)
    : out_(out != nullptr ? out : stderr) {}

void ProgressObserver::stage_begin(std::string_view stage,
                                   std::string_view detail) {
  if (detail.empty()) {
    std::fprintf(out_, "[%.*s] ...\n", static_cast<int>(stage.size()),
                 stage.data());
  } else {
    std::fprintf(out_, "[%.*s] %.*s ...\n", static_cast<int>(stage.size()),
                 stage.data(), static_cast<int>(detail.size()), detail.data());
  }
  std::fflush(out_);
}

void ProgressObserver::stage_end(const StageStats& stats) {
  std::string line = "[" + stats.stage + "]";
  if (!stats.detail.empty()) line += " " + stats.detail;
  line += strprintf(": %.2f s", stats.seconds);
  if (stats.cacheable) {
    line += stats.cache_hit ? " (cache hit)" : " (cache miss)";
  }
  if (stats.threads > 1) {
    line += strprintf(", %zu threads", stats.threads);
    if (stats.utilization > 0.0) {
      line += strprintf(" (%.0f %% busy)", 100.0 * stats.utilization);
    }
  }
  std::fprintf(out_, "%s\n", line.c_str());
  std::fflush(out_);
}

void ProgressObserver::progress(std::string_view message) {
  std::fprintf(out_, "%.*s\n", static_cast<int>(message.size()),
               message.data());
  std::fflush(out_);
}

void JsonReportObserver::stage_end(const StageStats& stats) {
  std::lock_guard lock(mutex_);
  stages_.push_back(stats);
}

std::vector<StageStats> JsonReportObserver::stages() const {
  std::lock_guard lock(mutex_);
  return stages_;
}

void JsonReportObserver::set_counter(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  for (auto& [k, v] : counters_) {
    if (k == name) {
      v = value;
      return;
    }
  }
  counters_.emplace_back(name, value);
}

void JsonReportObserver::add_cache_counters(const ArtifactCache& cache) {
  const ArtifactCache::Stats cs = cache.stats();
  set_counter("cache_enabled", cache.enabled() ? 1.0 : 0.0);
  set_counter("cache_hits", static_cast<double>(cs.hits));
  set_counter("cache_misses", static_cast<double>(cs.misses));
  set_counter("cache_stores", static_cast<double>(cs.stores));
  set_counter("cache_corrupt", static_cast<double>(cs.corrupt));
}

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss); // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024; // KiB on Linux
#endif
#else
  return 0;
#endif
}

void JsonReportObserver::write(std::ostream& os, std::string_view tool,
                               const ArtifactCache& cache) {
  add_cache_counters(cache);
  write(os, tool);
}

void JsonReportObserver::write(std::ostream& os, std::string_view tool) const {
  std::vector<StageStats> stages;
  std::vector<std::pair<std::string, double>> counters;
  {
    std::lock_guard lock(mutex_);
    stages = stages_;
    counters = counters_;
  }
  os << "{\n  \"tool\": \"" << mate::json_escape(tool) << "\",\n";
  os << "  \"version\": " << kReportVersion << ",\n";
  os << "  \"stages\": [\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageStats& s = stages[i];
    os << "    {\"stage\": \"" << mate::json_escape(s.stage) << "\"";
    if (!s.detail.empty()) {
      os << ", \"detail\": \"" << mate::json_escape(s.detail) << "\"";
    }
    os << ", \"seconds\": " << json_number(s.seconds);
    os << ", \"threads\": " << s.threads;
    if (s.utilization > 0.0) {
      os << ", \"utilization\": " << json_number(s.utilization);
    }
    if (s.cacheable) {
      os << ", \"cache\": \"" << (s.cache_hit ? "hit" : "miss") << "\"";
    }
    if (!s.counters.empty()) {
      os << ", \"counters\": {";
      for (std::size_t c = 0; c < s.counters.size(); ++c) {
        if (c != 0) os << ", ";
        os << "\"" << mate::json_escape(s.counters[c].first)
           << "\": " << json_number(s.counters[c].second);
      }
      os << "}";
    }
    os << "}" << (i + 1 < stages.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"counters\": {\"peak_rss_bytes\": " << peak_rss_bytes();
  for (const auto& [name, value] : counters) {
    os << ", \"" << mate::json_escape(name) << "\": " << json_number(value);
  }
  os << "}\n}\n";
}

} // namespace ripple::pipeline
