// Versioned, checksummed binary serialization of the pipeline's typed
// artifacts: netlists, traces, MATE sets, search results and selections.
//
// The byte stream is canonical (fixed-width little-endian fields, entities
// in id order), so it serves three purposes at once:
//   * the on-disk artifact format of the content-addressed cache,
//   * the input to content fingerprints (two artifacts are equal iff their
//     payloads are byte-identical),
//   * the deep-equality oracle of the round-trip tests.
//
// Framing: every artifact file is
//   "RPLA" | u32 format version | type tag | u64 payload size | payload |
//   u64 FNV-1a(payload)
// Readers reject wrong magic/version/tag and checksum mismatches with
// ripple::Error; the cache maps that to a miss (never a crash).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "hafi/campaign.hpp"
#include "mate/eval.hpp"
#include "mate/search.hpp"
#include "mate/select.hpp"
#include "netlist/netlist.hpp"
#include "sim/trace.hpp"
#include "sim/transposed.hpp"
#include "util/serialize.hpp"

namespace ripple::pipeline {

/// Bump when any payload layout below changes; part of every cache key, so
/// stale cache directories invalidate themselves.
inline constexpr std::uint32_t kArtifactVersion = 2;

// --- payload serializers (symmetrical write/read pairs) -------------------

void write_netlist(ByteWriter& w, const netlist::Netlist& n);
[[nodiscard]] netlist::Netlist read_netlist(ByteReader& r);

void write_trace(ByteWriter& w, const sim::Trace& t);
[[nodiscard]] sim::Trace read_trace(ByteReader& r);

void write_transposed_trace(ByteWriter& w, const sim::TransposedTrace& t);
[[nodiscard]] sim::TransposedTrace read_transposed_trace(ByteReader& r);

void write_mate_set(ByteWriter& w, const mate::MateSet& set);
[[nodiscard]] mate::MateSet read_mate_set(ByteReader& r);

void write_search_result(ByteWriter& w, const mate::SearchResult& result);
[[nodiscard]] mate::SearchResult read_search_result(ByteReader& r);

void write_selection(ByteWriter& w, const mate::SelectionResult& sel);
[[nodiscard]] mate::SelectionResult read_selection(ByteReader& r);

void write_eval_result(ByteWriter& w, const mate::EvalResult& eval);
[[nodiscard]] mate::EvalResult read_eval_result(ByteReader& r);

/// Campaign shard checkpoint (the unit of interrupt/resume persistence) and
/// the merged campaign result (canonical form backing the byte-identity
/// guarantee across thread counts).
void write_shard_result(ByteWriter& w, const hafi::ShardResult& shard);
[[nodiscard]] hafi::ShardResult read_shard_result(ByteReader& r);

void write_campaign_result(ByteWriter& w, const hafi::CampaignResult& result);
[[nodiscard]] hafi::CampaignResult read_campaign_result(ByteReader& r);

// --- content fingerprints -------------------------------------------------

/// Hash of the canonical payload (serialize + FNV-1a). Identical structure
/// => identical fingerprint, independent of how the object was built.
[[nodiscard]] std::uint64_t fingerprint(const netlist::Netlist& n);
[[nodiscard]] std::uint64_t fingerprint(const sim::Trace& t);
[[nodiscard]] std::uint64_t fingerprint(const mate::MateSet& set);

// --- framing --------------------------------------------------------------

/// Wrap a payload in the versioned, checksummed artifact frame.
[[nodiscard]] std::vector<std::uint8_t> frame_artifact(
    std::string_view type_tag, std::span<const std::uint8_t> payload);

/// Unwrap a frame; nullopt if the magic, version, tag or checksum does not
/// match (corrupt or foreign file — callers treat it as absent).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> unframe_artifact(
    std::string_view type_tag, std::span<const std::uint8_t> file);

} // namespace ripple::pipeline
