#include "hafi/instrument.hpp"

#include <string>
#include <unordered_map>

#include "util/assert.hpp"

namespace ripple::hafi {

using netlist::Kind;
using netlist::Netlist;

InstrumentedNetlist instrument_with_mates(const Netlist& n,
                                          const mate::MateSet& set) {
  InstrumentedNetlist out;
  out.netlist = n; // value copy; ids stay identical
  Netlist& nl = out.netlist;
  const std::size_t gates_before = nl.num_gates();

  // Shared inverters for negative literals.
  std::unordered_map<WireId, WireId> inverted;
  const auto literal_wire = [&](const mate::Literal& lit) -> WireId {
    if (lit.value) return lit.wire;
    const auto it = inverted.find(lit.wire);
    if (it != inverted.end()) return it->second;
    const WireId inv = nl.add_gate_new(
        Kind::Inv, {lit.wire},
        "mate_n" + std::to_string(inverted.size()));
    inverted.emplace(lit.wire, inv);
    return inv;
  };

  std::size_t fresh = 0;
  const auto and_tree = [&](std::vector<WireId> level,
                            const std::string& out_name) -> WireId {
    RIPPLE_ASSERT(!level.empty());
    while (level.size() > 1) {
      std::vector<WireId> next;
      for (std::size_t i = 0; i < level.size();) {
        const std::size_t rest = level.size() - i;
        const std::size_t take = rest >= 4 ? 4 : rest >= 3 ? 3 : 2;
        if (rest == 1) {
          next.push_back(level[i]);
          i += 1;
          continue;
        }
        const Kind kind = take == 4   ? Kind::And4
                          : take == 3 ? Kind::And3
                                      : Kind::And2;
        std::vector<WireId> ins(level.begin() +
                                    static_cast<std::ptrdiff_t>(i),
                                level.begin() +
                                    static_cast<std::ptrdiff_t>(i + take));
        const bool last = rest == take && next.empty();
        next.push_back(nl.add_gate_new(
            kind, ins,
            last ? out_name : "mate_t" + std::to_string(fresh++)));
        i += take;
      }
      level = std::move(next);
    }
    // Single-literal MATE: buffer it into the named trigger wire.
    if (nl.wire(level[0]).name != out_name) {
      return nl.add_gate_new(Kind::Buf, {level[0]}, out_name);
    }
    return level[0];
  };

  const auto or_tree = [&](std::vector<WireId> level,
                           const std::string& out_name) -> WireId {
    while (level.size() > 1) {
      std::vector<WireId> next;
      for (std::size_t i = 0; i < level.size();) {
        const std::size_t rest = level.size() - i;
        const std::size_t take = rest >= 4 ? 4 : rest >= 3 ? 3 : 2;
        if (rest == 1) {
          next.push_back(level[i]);
          i += 1;
          continue;
        }
        const Kind kind = take == 4   ? Kind::Or4
                          : take == 3 ? Kind::Or3
                                      : Kind::Or2;
        std::vector<WireId> ins(level.begin() +
                                    static_cast<std::ptrdiff_t>(i),
                                level.begin() +
                                    static_cast<std::ptrdiff_t>(i + take));
        const bool last = rest == take && next.empty();
        next.push_back(nl.add_gate_new(
            kind, ins,
            last ? out_name : "mate_o" + std::to_string(fresh++)));
        i += take;
      }
      level = std::move(next);
    }
    if (nl.wire(level[0]).name != out_name) {
      return nl.add_gate_new(Kind::Buf, {level[0]}, out_name);
    }
    return level[0];
  };

  out.triggers.reserve(set.mates.size());
  for (std::size_t m = 0; m < set.mates.size(); ++m) {
    const mate::Mate& mate = set.mates[m];
    const std::string name = "mate_trigger[" + std::to_string(m) + "]";
    WireId trig;
    if (mate.cube.empty()) {
      trig = nl.add_gate_new(Kind::Tie1, {}, name);
    } else {
      std::vector<WireId> lits;
      lits.reserve(mate.cube.size());
      for (const mate::Literal& lit : mate.cube.literals()) {
        lits.push_back(literal_wire(lit));
      }
      trig = and_tree(std::move(lits), name);
    }
    nl.mark_output(trig);
    out.triggers.push_back(trig);
  }

  if (out.triggers.empty()) {
    out.any_trigger = nl.add_gate_new(Kind::Tie0, {}, "mate_any");
  } else {
    out.any_trigger = or_tree(out.triggers, "mate_any");
  }
  nl.mark_output(out.any_trigger);

  out.added_gates = nl.num_gates() - gates_before;
  nl.check();
  return out;
}

} // namespace ripple::hafi
