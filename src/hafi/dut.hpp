// Device-under-test abstraction for the (simulated) HAFI platform.
//
// A Dut is one bootable instance of a target system: the core netlist plus
// its environment (memories, I/O). The campaign boots many instances — one
// golden run plus one per injection experiment — through a DutFactory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ripple::hafi {

/// One point of the fault space: flip `flop`'s state at the start of `cycle`
/// (the SEU corrupts the value the flop carries *into* that cycle).
struct InjectionPoint {
  FlopId flop;
  std::uint64_t cycle;

  bool operator==(const InjectionPoint&) const = default;
};

/// Classification of one executed injection against the golden run.
enum class Outcome {
  Benign,     // observable and architectural state match the golden run
  Latent,     // observable matches, architectural state differs at the end
  Sdc,        // observable diverged: silent data corruption / wrong output
};

class Dut {
public:
  virtual ~Dut() = default;

  [[nodiscard]] virtual const netlist::Netlist& netlist() const = 0;
  [[nodiscard]] virtual sim::Simulator& simulator() = 0;

  /// Advance one clock cycle (including environment service). When `trace`
  /// is non-null, the cycle's settled wire values are appended to it.
  virtual void step(sim::Trace* trace = nullptr) = 0;

  /// Externally visible behaviour so far (e.g. serialized I/O event log).
  /// Divergence from the golden run = the fault became an *error*.
  [[nodiscard]] virtual std::string observable() const = 0;

  /// ISA-visible state (memory, register contents) for latent-corruption
  /// classification at experiment end.
  [[nodiscard]] virtual std::string architectural_state() const = 0;
};

using DutFactory = std::function<std::unique_ptr<Dut>()>;

} // namespace ripple::hafi
