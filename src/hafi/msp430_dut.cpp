#include "hafi/msp430_dut.hpp"

#include <memory>

#include "util/strings.hpp"

namespace ripple::hafi {

std::string Msp430Dut::observable() const {
  std::string out;
  for (const cores::msp430::IoEvent& e : system_.io_log()) {
    out += strprintf("%llu:%04x=%04x;", static_cast<unsigned long long>(
                                            e.cycle),
                     e.addr, e.data);
  }
  return out;
}

std::string Msp430Dut::architectural_state() const {
  const auto& mem = system_.memory();
  return std::string(reinterpret_cast<const char*>(mem.data()),
                     mem.size() * sizeof(std::uint16_t));
}

DutFactory make_msp430_factory(const cores::msp430::Msp430Core& core,
                               const cores::msp430::Image& image) {
  return [&core, &image] { return std::make_unique<Msp430Dut>(core, image); };
}

} // namespace ripple::hafi
