#include "hafi/msp430_dut.hpp"

#include <algorithm>
#include <bit>
#include <memory>

#include "util/strings.hpp"

namespace ripple::hafi {

std::string Msp430Dut::observable() const {
  std::string out;
  for (const cores::msp430::IoEvent& e : system_.io_log()) {
    out += strprintf("%llu:%04x=%04x;", static_cast<unsigned long long>(
                                            e.cycle),
                     e.addr, e.data);
  }
  return out;
}

std::string Msp430Dut::architectural_state() const {
  const auto& mem = system_.memory();
  return std::string(reinterpret_cast<const char*>(mem.data()),
                     mem.size() * sizeof(std::uint16_t));
}

DutFactory make_msp430_factory(const cores::msp430::Msp430Core& core,
                               const cores::msp430::Image& image) {
  return [&core, &image] { return std::make_unique<Msp430Dut>(core, image); };
}

BatchMsp430Dut::BatchMsp430Dut(const cores::msp430::Msp430Core& core,
                               const cores::msp430::Image& image)
    : core_(&core), image_(kMemWords, 0),
      memory_(sim::kBatchLanes * kMemWords, 0), sim_(core.netlist) {
  RIPPLE_CHECK(image.words.size() <= image_.size(),
               "program image larger than memory");
  std::copy(image.words.begin(), image.words.end(), image_.begin());
}

std::vector<Outcome> BatchMsp430Dut::run(std::span<const InjectionPoint> points,
                                         std::size_t run_cycles,
                                         BatchRunStats* stats) {
  using cores::msp430::kIoBase;
  const cores::msp430::Msp430Ports& p = core_->ports;
  lanes_.begin(points, run_cycles);
  sim_.reset();
  // Only lanes 0..points.size() are ever simulated; seed just those.
  for (std::size_t lane = 0; lane <= points.size(); ++lane) {
    std::copy(image_.begin(), image_.end(),
              memory_.begin() +
                  static_cast<std::ptrdiff_t>(lane * kMemWords));
  }

  for (std::uint64_t c = 0; c < run_cycles; ++c) {
    if (lanes_.all_retired()) break;
    lanes_.inject(sim_, c);

    // Mirror of Msp430System::step: settle, serve the word, resettle.
    sim_.eval();
    const sim::LaneMask live =
        lanes_.active() | BatchLaneState::lane_bit(kGoldenLane);
    for (sim::LaneMask m = live; m != 0; m &= m - 1) {
      const auto lane = static_cast<unsigned>(std::countr_zero(m));
      addr_[lane] = sim_.read_bus(p.mem_addr, lane) & 0xffff;
      rdata_[lane] =
          memory_[lane * kMemWords + ((addr_[lane] >> 1) & 0x7fff)];
    }
    sim_.drive_bus(p.mem_rdata, rdata_);
    sim_.eval();

    const std::uint64_t we = sim_.value(p.mem_we);

    // Golden lane's store this cycle; memory stays pre-write until every
    // experiment lane has been audited against it.
    const bool g_we = (we >> kGoldenLane) & 1u;
    const auto g_addr = static_cast<std::uint16_t>(addr_[kGoldenLane]);
    const auto g_wdata = static_cast<std::uint16_t>(
        g_we ? sim_.read_bus(p.mem_wdata, kGoldenLane) : 0);
    const bool g_io = g_we && g_addr >= kIoBase;
    const bool g_mem_we = g_we && g_addr < kIoBase;
    const std::size_t g_word = (g_addr >> 1) & 0x7fff;

    for (sim::LaneMask m = lanes_.active(); m != 0; m &= m - 1) {
      const auto lane = static_cast<unsigned>(std::countr_zero(m));
      const bool l_we = (we >> lane) & 1u;
      const auto l_addr = static_cast<std::uint16_t>(addr_[lane]);
      const auto l_wdata = static_cast<std::uint16_t>(
          l_we ? sim_.read_bus(p.mem_wdata, lane) : 0);
      const bool l_io = l_we && l_addr >= kIoBase;
      const bool l_mem_we = l_we && l_addr < kIoBase;
      const std::size_t l_word = (l_addr >> 1) & 0x7fff;
      if (lanes_.is_armed(lane)) {
        // Observable compare (events embed the cycle, so any mismatch at
        // this cycle is permanent).
        if (l_io != g_io ||
            (l_io && (l_addr != g_addr || l_wdata != g_wdata))) {
          lanes_.retire_sdc(lane, c + 1);
          continue;
        }
        const auto audit = [&](std::size_t word) {
          const std::uint16_t gp = memory_[kGoldenLane * kMemWords + word];
          const std::uint16_t gq = (g_mem_we && word == g_word) ? g_wdata : gp;
          const std::uint16_t lp = memory_[lane * kMemWords + word];
          const std::uint16_t lq = (l_mem_we && word == l_word) ? l_wdata : lp;
          lanes_.bump_mem_diff(lane, lp == gp, lq == gq);
        };
        if (l_mem_we) audit(l_word);
        if (g_mem_we && (!l_mem_we || g_word != l_word)) audit(g_word);
      }
      if (l_mem_we) memory_[lane * kMemWords + l_word] = l_wdata;
    }
    if (g_mem_we) memory_[kGoldenLane * kMemWords + g_word] = g_wdata;

    sim_.latch();
    if (c + 1 < run_cycles) lanes_.retire_converged(sim_, c + 1);
  }
  return lanes_.finish(stats);
}

BatchDutFactory make_msp430_batch_factory(const cores::msp430::Msp430Core& core,
                                          const cores::msp430::Image& image) {
  return [&core, &image] {
    return std::make_unique<BatchMsp430Dut>(core, image);
  };
}

} // namespace ripple::hafi
