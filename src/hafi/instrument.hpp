// Netlist instrumentation for the HAFI platform (Sections 1.1 and 6.1).
//
// A real HAFI flow does not evaluate MATEs in software: the selected MATEs
// are synthesized into the emulated design, and the injection control unit
// reads their trigger outputs while the workload runs. This module performs
// exactly that instrumentation — it appends, for each MATE, an AND tree over
// the (possibly inverted) border wires and exposes the triggers as primary
// outputs ("mate_trigger[i]"), plus their OR ("mate_any").
//
// The instrumented netlist is a plain library-cell netlist again, so it can
// be simulated, re-serialized to Verilog for an FPGA flow, or even analyzed
// recursively.
#pragma once

#include <vector>

#include "mate/mate.hpp"
#include "netlist/netlist.hpp"

namespace ripple::hafi {

struct InstrumentedNetlist {
  netlist::Netlist netlist;
  /// Trigger wires, one per MATE of the set (same order).
  std::vector<WireId> triggers;
  /// OR over all triggers ("at least one injection is prunable this cycle").
  WireId any_trigger;
  /// Cells added by the instrumentation (the hardware cost).
  std::size_t added_gates = 0;
};

/// Append checker logic for `set` to a copy of `n`. The set's cubes must
/// only reference wires of `n` (which border MATEs by construction do).
[[nodiscard]] InstrumentedNetlist instrument_with_mates(
    const netlist::Netlist& n, const mate::MateSet& set);

} // namespace ripple::hafi
