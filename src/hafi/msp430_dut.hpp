// Dut adapter for the MSP430 core + its memory/I/O environment, mirroring
// the AVR adapter so campaigns run on both paper cores.
#pragma once

#include <array>
#include <vector>

#include "cores/msp430/system.hpp"
#include "hafi/batch_dut.hpp"
#include "hafi/dut.hpp"

namespace ripple::hafi {

class Msp430Dut final : public Dut {
public:
  Msp430Dut(const cores::msp430::Msp430Core& core,
            const cores::msp430::Image& image)
      : system_(core, image) {}

  [[nodiscard]] const netlist::Netlist& netlist() const override {
    return system_.core().netlist;
  }
  [[nodiscard]] sim::Simulator& simulator() override {
    return system_.simulator();
  }
  void step(sim::Trace* trace = nullptr) override { system_.step(trace); }
  [[nodiscard]] std::string observable() const override;
  [[nodiscard]] std::string architectural_state() const override;

  [[nodiscard]] cores::msp430::Msp430System& system() { return system_; }

private:
  cores::msp430::Msp430System system_;
};

/// Factory capturing core and image by reference (both must outlive the
/// campaign).
[[nodiscard]] DutFactory make_msp430_factory(
    const cores::msp430::Msp430Core& core, const cores::msp430::Image& image);

/// 64-lane batch counterpart of Msp430Dut. The unified word memory is
/// vectorized per lane (each used lane re-seeded from the program image per
/// pass); memory-mapped stores at kIoBase and up become the per-cycle
/// observable compare against the golden lane.
class BatchMsp430Dut final : public BatchDut {
public:
  BatchMsp430Dut(const cores::msp430::Msp430Core& core,
                 const cores::msp430::Image& image);

  [[nodiscard]] const netlist::Netlist& netlist() const override {
    return core_->netlist;
  }
  [[nodiscard]] std::vector<Outcome> run(std::span<const InjectionPoint> points,
                                         std::size_t run_cycles,
                                         BatchRunStats* stats) override;

private:
  static constexpr std::size_t kMemWords = 1u << 15;

  const cores::msp430::Msp430Core* core_;
  std::vector<std::uint16_t> image_;  // memory seed (image + zero fill)
  std::vector<std::uint16_t> memory_; // lane-major: [lane * kMemWords + word]
  sim::BatchSimulator sim_;
  BatchLaneState lanes_;
  std::array<std::uint64_t, sim::kBatchLanes> rdata_{};
  std::array<std::uint64_t, sim::kBatchLanes> addr_{};
};

/// Batch factory capturing core and image by reference (both must outlive
/// the campaign).
[[nodiscard]] BatchDutFactory make_msp430_batch_factory(
    const cores::msp430::Msp430Core& core, const cores::msp430::Image& image);

} // namespace ripple::hafi
