// Dut adapter for the MSP430 core + its memory/I/O environment, mirroring
// the AVR adapter so campaigns run on both paper cores.
#pragma once

#include "cores/msp430/system.hpp"
#include "hafi/dut.hpp"

namespace ripple::hafi {

class Msp430Dut final : public Dut {
public:
  Msp430Dut(const cores::msp430::Msp430Core& core,
            const cores::msp430::Image& image)
      : system_(core, image) {}

  [[nodiscard]] const netlist::Netlist& netlist() const override {
    return system_.core().netlist;
  }
  [[nodiscard]] sim::Simulator& simulator() override {
    return system_.simulator();
  }
  void step(sim::Trace* trace = nullptr) override { system_.step(trace); }
  [[nodiscard]] std::string observable() const override;
  [[nodiscard]] std::string architectural_state() const override;

  [[nodiscard]] cores::msp430::Msp430System& system() { return system_; }

private:
  cores::msp430::Msp430System system_;
};

/// Factory capturing core and image by reference (both must outlive the
/// campaign).
[[nodiscard]] DutFactory make_msp430_factory(
    const cores::msp430::Msp430Core& core, const cores::msp430::Image& image);

} // namespace ripple::hafi
