#include "hafi/defuse.hpp"

#include "cores/avr/isa.hpp"
#include "cores/msp430/core.hpp"
#include "rtl/ports.hpp"

namespace ripple::hafi {
namespace {

using cores::avr::Instruction;
using cores::avr::Mnemonic;

struct InsnAccess {
  std::array<bool, 32> reads{};
  std::array<bool, 32> writes{};
};

/// Architectural reads/uses and writes of one instruction.
InsnAccess classify(const Instruction& i) {
  InsnAccess a;
  switch (i.mnemonic) {
    case Mnemonic::Nop:
    case Mnemonic::Rjmp:
    case Mnemonic::Brbs:
    case Mnemonic::Brbc:
      break;
    case Mnemonic::Mov:
      a.reads[i.rr] = true;
      a.writes[i.rd] = true;
      break;
    case Mnemonic::Add:
    case Mnemonic::Adc:
    case Mnemonic::Sub:
    case Mnemonic::Sbc:
    case Mnemonic::And:
    case Mnemonic::Eor:
    case Mnemonic::Or:
      a.reads[i.rd] = true;
      a.reads[i.rr] = true;
      a.writes[i.rd] = true;
      break;
    case Mnemonic::Cp:
    case Mnemonic::Cpc:
      a.reads[i.rd] = true;
      a.reads[i.rr] = true;
      break;
    case Mnemonic::Cpi:
      a.reads[i.rd] = true;
      break;
    case Mnemonic::Sbci:
    case Mnemonic::Subi:
    case Mnemonic::Ori:
    case Mnemonic::Andi:
      a.reads[i.rd] = true;
      a.writes[i.rd] = true;
      break;
    case Mnemonic::Ldi:
      a.writes[i.rd] = true;
      break;
    case Mnemonic::Com:
    case Mnemonic::Inc:
    case Mnemonic::Dec:
    case Mnemonic::Lsr:
    case Mnemonic::Ror:
      a.reads[i.rd] = true;
      a.writes[i.rd] = true;
      break;
    case Mnemonic::LdX:
      a.reads[26] = true; // X pointer (EX-cycle read, see below)
      a.writes[i.rd] = true;
      break;
    case Mnemonic::StX:
      a.reads[26] = true;
      a.reads[i.rr] = true;
      break;
    case Mnemonic::Out:
      a.reads[i.rr] = true;
      break;
  }
  return a;
}

} // namespace

AvrRegAccesses analyze_avr_accesses(const netlist::Netlist& core_netlist,
                                    const sim::Trace& trace) {
  const rtl::Bus ir = rtl::find_bus(core_netlist, "ir", 16,
                                    /*suffix=*/"__q");
  const WireId valid =
      rtl::find_wire_checked(core_netlist, "ex_valid__q");

  AvrRegAccesses out;
  out.reads_capture.assign(trace.num_cycles(), {});
  out.reads_direct.assign(trace.num_cycles(), {});
  out.writes.assign(trace.num_cycles(), {});

  for (std::size_t cycle = 0; cycle < trace.num_cycles(); ++cycle) {
    const BitVec& row = trace.cycle_values(cycle);
    if (!row.get(valid.index())) continue; // pipeline bubble
    std::uint16_t word = 0;
    for (int b = 0; b < 16; ++b) {
      word |= static_cast<std::uint16_t>(row.get(ir[static_cast<std::size_t>(
                  b)].index()))
              << b;
    }
    const auto insn = cores::avr::decode(word);
    if (!insn) continue; // executes as NOP
    const InsnAccess acc = classify(*insn);
    const bool is_mem = insn->mnemonic == Mnemonic::LdX ||
                        insn->mnemonic == Mnemonic::StX;
    for (int r = 0; r < 32; ++r) {
      if (acc.writes[static_cast<std::size_t>(r)]) {
        out.writes[cycle][static_cast<std::size_t>(r)] = true;
      }
      if (!acc.reads[static_cast<std::size_t>(r)]) continue;
      // Operand reads happen in the IF stage, one cycle before EX; the
      // X pointer of LD/ST is additionally read combinationally during EX.
      if (cycle > 0) {
        out.reads_capture[cycle - 1][static_cast<std::size_t>(r)] = true;
      }
      if (r == 26 && is_mem) {
        out.reads_direct[cycle][26] = true;
      }
    }
  }
  return out;
}

AvrRegAccesses analyze_msp430_accesses(const netlist::Netlist& core_netlist,
                                       const sim::Trace& trace) {
  namespace msp = cores::msp430;
  const rtl::Bus ir = rtl::find_bus(core_netlist, "ir", 16, "__q");
  const rtl::Bus fsm = rtl::find_bus(core_netlist, "fsm", 3, "__q");

  AvrRegAccesses out;
  out.reads_capture.assign(trace.num_cycles(), {});
  out.reads_direct.assign(trace.num_cycles(), {});
  out.writes.assign(trace.num_cycles(), {});

  const auto read_bus = [&](const BitVec& row, const rtl::Bus& bus) {
    std::uint32_t v = 0;
    for (std::size_t b = 0; b < bus.size(); ++b) {
      v |= static_cast<std::uint32_t>(row.get(bus[b].index())) << b;
    }
    return v;
  };

  for (std::size_t cycle = 0; cycle < trace.num_cycles(); ++cycle) {
    const BitVec& row = trace.cycle_values(cycle);
    const unsigned state = read_bus(row, fsm);
    if (state == msp::kFetch) continue; // ir not yet valid for this insn
    const std::uint16_t word = static_cast<std::uint16_t>(read_bus(row, ir));

    // Field decode (shared by all states of the instruction).
    const bool is_fmt2 = (word & 0xfc00) == 0x1000;
    const bool is_jump = (word & 0xe000) == 0x2000;
    const bool is_fmt1 = (word >> 12) >= 4;
    const unsigned s_reg = (word >> 8) & 0xf;
    const unsigned as = (word >> 4) & 0x3;
    const bool ad = (word >> 7) & 0x1;
    const unsigned d_reg = word & 0xf;
    const unsigned op1 = word >> 12;
    const bool s_gp = s_reg != 0 && s_reg != 2;
    const bool d_gp = d_reg != 0 && d_reg != 2;

    const auto read = [&](unsigned r) { out.reads_direct[cycle][r] = true; };
    const auto write = [&](unsigned r) { out.writes[cycle][r] = true; };

    if (is_jump) continue;

    switch (state) {
      case msp::kDecode:
        if (is_fmt2) {
          if (d_gp) read(d_reg); // operand latch (fmt2 reg in dst field)
        } else if (is_fmt1) {
          if (as == 0 && s_gp) read(s_reg);          // src_val <= R[s]
          if ((as == 2 || as == 3) && s_gp) read(s_reg); // addr <= R[s]
        }
        break;
      case msp::kSrcExt:
        if (s_gp) read(s_reg); // addr <= R[s] + ext
        break;
      case msp::kSrcRead:
        if (as == 3 && s_gp) {
          read(s_reg); // R[s] + 2 ...
          write(s_reg); // ... written back (read dominates: not benign)
        }
        break;
      case msp::kDstExt:
        if (d_gp) read(d_reg); // addr <= R[d] + ext
        break;
      case msp::kExec:
        if (is_fmt2) {
          if (d_gp) write(d_reg); // operand was read in DECODE
        } else if (is_fmt1 && !ad) {
          const bool writes_reg = op1 != 0x9 /*CMP*/ && op1 != 0xb /*BIT*/;
          const bool reads_dst = op1 != 0x4 /*MOV*/;
          if (d_gp && reads_dst) read(d_reg);
          if (d_gp && writes_reg) write(d_reg);
        }
        break;
      default:
        break; // DST_READ / DST_WRITE touch memory only
    }
  }
  return out;
}

DefUseResult defuse_prune(const AvrRegAccesses& accesses) {
  const std::size_t cycles = accesses.writes.size();
  DefUseResult result;
  result.benign.assign(32, std::vector<bool>(cycles, false));
  result.fault_space = 32 * cycles;

  // Scan backwards. Within one cycle the fault (present since the cycle
  // start) is observed by a direct read, observed by a capture read unless
  // the same cycle's write forwards around the register file, and killed by
  // the write at the cycle's end.
  for (std::size_t r = 0; r < 32; ++r) {
    bool next_is_kill = false; // no further access => not proven benign
    for (std::size_t t = cycles; t-- > 0;) {
      if (accesses.reads_direct[t][r]) {
        next_is_kill = false;
      } else if (accesses.writes[t][r]) {
        next_is_kill = true; // capture reads in this cycle are forwarded
      } else if (accesses.reads_capture[t][r]) {
        next_is_kill = false;
      }
      result.benign[r][t] = next_is_kill;
      if (next_is_kill) ++result.benign_points;
    }
  }
  return result;
}

} // namespace ripple::hafi
