#include "hafi/avr_dut.hpp"

#include <memory>

#include "util/strings.hpp"

namespace ripple::hafi {

std::string AvrDut::observable() const {
  std::string out;
  for (const cores::avr::IoEvent& e : system_.io_log()) {
    out += strprintf("%llu:%02x=%02x;", static_cast<unsigned long long>(
                                            e.cycle),
                     e.addr, e.data);
  }
  return out;
}

std::string AvrDut::architectural_state() const {
  const auto& dmem = system_.dmem();
  return std::string(reinterpret_cast<const char*>(dmem.data()), dmem.size());
}

DutFactory make_avr_factory(const cores::avr::AvrCore& core,
                            const cores::avr::Program& program) {
  return [&core, &program] { return std::make_unique<AvrDut>(core, program); };
}

} // namespace ripple::hafi
