#include "hafi/avr_dut.hpp"

#include <algorithm>
#include <bit>
#include <memory>

#include "util/strings.hpp"

namespace ripple::hafi {

std::string AvrDut::observable() const {
  std::string out;
  for (const cores::avr::IoEvent& e : system_.io_log()) {
    out += strprintf("%llu:%02x=%02x;", static_cast<unsigned long long>(
                                            e.cycle),
                     e.addr, e.data);
  }
  return out;
}

std::string AvrDut::architectural_state() const {
  const auto& dmem = system_.dmem();
  return std::string(reinterpret_cast<const char*>(dmem.data()), dmem.size());
}

DutFactory make_avr_factory(const cores::avr::AvrCore& core,
                            const cores::avr::Program& program) {
  return [&core, &program] { return std::make_unique<AvrDut>(core, program); };
}

BatchAvrDut::BatchAvrDut(const cores::avr::AvrCore& core,
                         const cores::avr::Program& program)
    : core_(&core), imem_(program.words),
      dmem_(sim::kBatchLanes * kDmemBytes, 0), sim_(core.netlist) {}

std::vector<Outcome> BatchAvrDut::run(std::span<const InjectionPoint> points,
                                      std::size_t run_cycles,
                                      BatchRunStats* stats) {
  const cores::avr::AvrPorts& p = core_->ports;
  lanes_.begin(points, run_cycles);
  sim_.reset();
  std::fill(dmem_.begin(), dmem_.end(), 0);

  for (std::uint64_t c = 0; c < run_cycles; ++c) {
    // Once every experiment lane is classified the rest of the golden run
    // cannot change any outcome.
    if (lanes_.all_retired()) break;
    lanes_.inject(sim_, c);

    // Mirror of AvrSystem::step: settle, serve memories per lane, resettle.
    sim_.eval();
    const sim::LaneMask live =
        lanes_.active() | BatchLaneState::lane_bit(kGoldenLane);
    for (sim::LaneMask m = live; m != 0; m &= m - 1) {
      const auto lane = static_cast<unsigned>(std::countr_zero(m));
      const std::uint64_t pc = sim_.read_bus(p.imem_addr, lane);
      instr_[lane] = pc < imem_.size() ? imem_[pc] : 0 /* NOP */;
      daddr_[lane] = sim_.read_bus(p.dmem_addr, lane);
      rdata_[lane] = dmem_[lane * kDmemBytes + daddr_[lane]];
    }
    sim_.drive_bus(p.instr, instr_);
    sim_.drive_bus(p.dmem_rdata, rdata_);
    sim_.eval();

    const std::uint64_t we = sim_.value(p.dmem_we);
    const std::uint64_t io_we = sim_.value(p.io_we);

    // The golden lane's effects this cycle; its memory stays pre-write until
    // every experiment lane has been audited against it.
    const bool g_we = (we >> kGoldenLane) & 1u;
    const auto g_addr = static_cast<std::size_t>(daddr_[kGoldenLane]);
    const auto g_data = static_cast<std::uint8_t>(
        g_we ? sim_.read_bus(p.dmem_wdata, kGoldenLane) : 0);
    const bool g_io = (io_we >> kGoldenLane) & 1u;
    const std::uint64_t g_io_addr =
        g_io ? sim_.read_bus(p.io_addr, kGoldenLane) : 0;
    const std::uint64_t g_io_data =
        g_io ? sim_.read_bus(p.io_data, kGoldenLane) : 0;

    for (sim::LaneMask m = lanes_.active(); m != 0; m &= m - 1) {
      const auto lane = static_cast<unsigned>(std::countr_zero(m));
      const bool l_we = (we >> lane) & 1u;
      const auto l_addr = static_cast<std::size_t>(daddr_[lane]);
      const auto l_data = static_cast<std::uint8_t>(
          l_we ? sim_.read_bus(p.dmem_wdata, lane) : 0);
      if (lanes_.is_armed(lane)) {
        // Observable compare: the scalar engine's io_log strings embed the
        // cycle number, so any event mismatch at this cycle is permanent.
        const bool l_io = (io_we >> lane) & 1u;
        if (l_io != g_io ||
            (l_io && (sim_.read_bus(p.io_addr, lane) != g_io_addr ||
                      sim_.read_bus(p.io_data, lane) != g_io_data))) {
          lanes_.retire_sdc(lane, c + 1);
          continue; // outcome pinned; the lane's memory no longer matters
        }
        // Incremental memory diff: only the two written addresses can change
        // lane-vs-golden equality this cycle.
        const auto audit = [&](std::size_t addr) {
          const std::uint8_t gp = dmem_[kGoldenLane * kDmemBytes + addr];
          const std::uint8_t gq = (g_we && addr == g_addr) ? g_data : gp;
          const std::uint8_t lp = dmem_[lane * kDmemBytes + addr];
          const std::uint8_t lq = (l_we && addr == l_addr) ? l_data : lp;
          lanes_.bump_mem_diff(lane, lp == gp, lq == gq);
        };
        if (l_we) audit(l_addr);
        if (g_we && (!l_we || g_addr != l_addr)) audit(g_addr);
      }
      if (l_we) dmem_[lane * kDmemBytes + l_addr] = l_data;
    }
    if (g_we) dmem_[kGoldenLane * kDmemBytes + g_addr] = g_data;

    sim_.latch();
    if (c + 1 < run_cycles) lanes_.retire_converged(sim_, c + 1);
  }
  return lanes_.finish(stats);
}

BatchDutFactory make_avr_batch_factory(const cores::avr::AvrCore& core,
                                       const cores::avr::Program& program) {
  return [&core, &program] {
    return std::make_unique<BatchAvrDut>(core, program);
  };
}

} // namespace ripple::hafi
