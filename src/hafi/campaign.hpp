// Fault-injection campaign controller (Section 1.1 / Section 6).
//
// Emulates what an FPGA-based HAFI platform does: run the workload once
// (golden run), then re-run it once per fault-space point, flipping one flop
// in one cycle, and classify the outcome against the golden run. With a MATE
// set installed, injections whose fault the triggered MATEs prove benign are
// skipped — the paper's fault-space pruning — and can optionally still be
// executed to validate soundness.
#pragma once

#include <cstdint>
#include <vector>

#include "hafi/dut.hpp"
#include "mate/mate.hpp"
#include "util/rng.hpp"

namespace ripple::hafi {

struct InjectionPoint {
  FlopId flop;
  std::uint64_t cycle;
};

enum class Outcome {
  Benign,     // observable and architectural state match the golden run
  Latent,     // observable matches, architectural state differs at the end
  Sdc,        // observable diverged: silent data corruption / wrong output
};

struct Experiment {
  InjectionPoint point;
  bool pruned = false; // a MATE proved it benign; skipped unless validating
  bool executed = false;
  Outcome outcome = Outcome::Benign;
};

struct CampaignConfig {
  /// Cycles each run executes (golden and faulty alike).
  std::size_t run_cycles = 2000;
  /// Number of injection points sampled uniformly from flops x cycles;
  /// 0 = exhaustive (every flop, every cycle — large!).
  std::size_t sample = 1000;
  std::uint64_t seed = 1;
  /// Execute pruned injections anyway and check they really are benign.
  bool validate_pruned = false;
};

struct CampaignResult {
  std::vector<Experiment> experiments;

  std::size_t total = 0;
  std::size_t pruned = 0;       // skipped (or validated) thanks to MATEs
  std::size_t executed = 0;     // actually simulated
  std::size_t benign = 0;
  std::size_t latent = 0;
  std::size_t sdc = 0;
  /// validate_pruned only: pruned experiments whose execution confirmed
  /// Benign. Soundness demands pruned_confirmed == pruned.
  std::size_t pruned_confirmed = 0;
};

class Campaign {
public:
  Campaign(DutFactory factory, CampaignConfig config);

  /// Run the campaign. `mates` may be null (baseline: no pruning). The MATE
  /// set must target flop Q wires of the DUT netlist.
  [[nodiscard]] CampaignResult run(const mate::MateSet* mates);

  /// The sampled injection points (stable across runs for a fixed config, so
  /// baseline and pruned campaigns compare like for like).
  [[nodiscard]] std::vector<InjectionPoint> injection_points(
      const netlist::Netlist& n) const;

private:
  DutFactory factory_;
  CampaignConfig config_;
};

} // namespace ripple::hafi
