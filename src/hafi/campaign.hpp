// Shard-parallel fault-injection campaign engine (Section 1.1 / Section 6).
//
// Emulates what an FPGA-based HAFI platform does: run the workload once
// (golden run), then re-run it once per fault-space point, flipping one flop
// in one cycle, and classify the outcome against the golden run. With a MATE
// set installed, injections whose fault the triggered MATEs prove benign are
// skipped — the paper's fault-space pruning — and can optionally still be
// executed to validate soundness.
//
// Every injection is independent, so the engine partitions the injection-
// point list into fixed shards and fans them out across a ThreadPool; each
// worker boots its own DUT instances through the DutFactory. With the
// default BitParallel engine a shard's executed points are additionally
// packed 63 at a time into 64-lane BatchDut passes (lane 0 carries the
// golden run), so one gate-level pass retires a whole batch. Shards are
// merged in shard-index order, so the CampaignResult — including the
// per-experiment outcome list — is byte-identical for any thread count,
// either engine, and any resume pattern.
// Shard hooks let callers persist finished shards (the pipeline layer stores
// them as versioned artifacts) and skip them on resume after an interrupt.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "hafi/batch_dut.hpp"
#include "hafi/dut.hpp"
#include "mate/mate.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ripple::hafi {

/// What the campaign does with the MATE set.
enum class CampaignMode {
  Baseline, // no pruning: execute every sampled injection
  Pruned,   // skip injections a triggered MATE proves benign
  Validate, // execute pruned injections anyway; abort on a non-benign one
};

[[nodiscard]] std::string_view mode_name(CampaignMode mode);

/// How injections are executed. Never affects results: the batch engine's
/// incremental classification is equivalent to the scalar string compares,
/// so CampaignResult is byte-identical either way (campaign_batch_test pins
/// this down).
enum class DutEngine {
  Scalar,      // one DUT boot per experiment; the reference oracle
  BitParallel, // 64-lane batch passes retire up to 63 experiments each
};

[[nodiscard]] std::string_view dut_engine_name(DutEngine engine);

struct Experiment {
  InjectionPoint point;
  bool pruned = false; // a MATE proved it benign; skipped unless validating
  bool executed = false;
  Outcome outcome = Outcome::Benign;

  bool operator==(const Experiment&) const = default;
};

struct CampaignConfig {
  /// Cycles each run executes (golden and faulty alike).
  std::size_t run_cycles = 2000;
  /// Number of injection points sampled uniformly from flops x cycles;
  /// 0 = exhaustive (every flop, every cycle — large!).
  std::size_t sample = 1000;
  std::uint64_t seed = 1;
  /// Pruned and Validate require a MATE set (Campaign constructor).
  CampaignMode mode = CampaignMode::Baseline;
  /// Worker threads for the shard fan-out; 0 = hardware concurrency.
  /// Never affects results (shards merge in deterministic order).
  std::size_t threads = 0;
  /// Injection points per shard; 0 picks a size from the plan (deterministic
  /// in the point count, independent of the thread count).
  std::size_t shard_size = 0;
  /// Execution engine. BitParallel needs a batch factory (set_batch_factory)
  /// and silently falls back to Scalar without one, so Dut-only callers keep
  /// working unchanged.
  DutEngine dut_engine = DutEngine::BitParallel;

  bool operator==(const CampaignConfig&) const = default;
};

/// External shard fan-out: run `task(i)` for every i in [0, n) on whatever
/// workers the host provides and return once all of them finished. Installed
/// via ShardHooks::execute; without one the campaign spins up a private
/// ThreadPool per run. The serve layer injects a fair shared scheduler here
/// so many concurrent campaigns multiplex one pool.
using ShardExecutor = std::function<void(
    std::size_t n, const std::function<void(std::size_t)>& task)>;

/// The campaign's work list: the sampled (or exhaustive) injection points
/// plus the shard partition over them. Produced by the campaign itself —
/// callers no longer rebuild a throwaway DUT to get at the netlist — and
/// stable for a fixed config, so baseline and pruned campaigns (and the
/// benches' like-for-like comparisons) share one plan.
struct CampaignPlan {
  std::vector<InjectionPoint> points;
  std::size_t shard_size = 1; // resolved: never 0

  [[nodiscard]] std::size_t num_shards() const {
    return points.empty() ? 0 : (points.size() + shard_size - 1) / shard_size;
  }
  [[nodiscard]] std::size_t shard_begin(std::size_t shard) const {
    return shard * shard_size;
  }
  [[nodiscard]] std::size_t shard_end(std::size_t shard) const {
    return std::min(points.size(), (shard + 1) * shard_size);
  }
  [[nodiscard]] std::span<const InjectionPoint> shard(
      std::size_t index) const {
    return std::span<const InjectionPoint>(points)
        .subspan(shard_begin(index), shard_end(index) - shard_begin(index));
  }
};

/// One finished shard: the experiments of plan.shard(shard), in plan order.
/// This is the unit of checkpointing — the pipeline layer persists it as a
/// versioned artifact and feeds it back through ShardHooks::load on resume.
struct ShardResult {
  std::uint32_t shard = 0;
  std::vector<Experiment> experiments;

  bool operator==(const ShardResult&) const = default;
};

/// A pruned injection that executed to a non-benign outcome under
/// CampaignMode::Validate — a MATE soundness violation.
struct SoundnessViolation {
  std::size_t shard = 0;
  InjectionPoint point;
  Outcome outcome = Outcome::Benign;
};

/// Raised by Campaign::run when Validate mode finds soundness violations.
/// what() carries a per-shard report (shard index, flop, cycle, outcome for
/// every violation) instead of the old bare counter mismatch.
class SoundnessError : public Error {
public:
  SoundnessError(std::string report, std::vector<SoundnessViolation> v)
      : Error(std::move(report)), violations_(std::move(v)) {}

  [[nodiscard]] const std::vector<SoundnessViolation>& violations() const {
    return violations_;
  }

private:
  std::vector<SoundnessViolation> violations_;
};

struct CampaignResult {
  std::vector<Experiment> experiments;

  std::size_t total = 0;
  std::size_t pruned = 0;       // skipped (or validated) thanks to MATEs
  std::size_t executed = 0;     // actually simulated
  std::size_t benign = 0;
  std::size_t latent = 0;
  std::size_t sdc = 0;
  /// Validate mode only: pruned experiments whose execution confirmed
  /// Benign. The engine aborts with SoundnessError otherwise, so a returned
  /// result always has pruned_confirmed == pruned.
  std::size_t pruned_confirmed = 0;
};

class Campaign {
public:
  /// `mates` must be non-null for Pruned/Validate mode and target flop Q
  /// wires of the DUT netlist; it is ignored in Baseline mode. The set must
  /// outlive the campaign.
  Campaign(DutFactory factory, CampaignConfig config,
           const mate::MateSet* mates = nullptr);

  /// Install the 64-lane batch DUT used when config.dut_engine is
  /// BitParallel. The factory must boot the same target system as the scalar
  /// DutFactory (same netlist, program and environment) — campaign outcomes
  /// are classified against the scalar golden run's semantics.
  void set_batch_factory(BatchDutFactory factory);

  /// The injection points and shard partition (built on first use; boots one
  /// DUT to size the fault space). Stable across runs for a fixed config, so
  /// baseline and pruned campaigns compare like for like.
  [[nodiscard]] const CampaignPlan& plan();

  /// Install a plan produced by another campaign over the same DUT and
  /// config — benches hand one plan to their baseline and pruned campaigns
  /// so the comparison is like for like by construction.
  void use_plan(CampaignPlan plan);

  /// Per-shard progress record, delivered to ShardHooks::progress in merge
  /// (shard-index) order.
  struct ShardProgress {
    std::size_t shard = 0;
    std::size_t shards_done = 0; // including this one
    std::size_t num_shards = 0;
    std::size_t executed = 0;   // experiments simulated in this shard
    double seconds = 0.0;       // this shard's execution wall time
    bool resumed = false;       // served by ShardHooks::load, not executed
    // Engine utilization (zero for resumed shards — nothing ran):
    std::size_t dut_passes = 0; // gate-level passes (scalar: DUT boots)
    std::size_t lane_slots = 0; // experiment capacity those passes offered
    std::size_t lanes_retired_early = 0; // classified before the run ended
    std::uint64_t lane_cycles_saved = 0; // cycles skipped by early retirement
  };

  /// Checkpoint/instrumentation hooks. All hooks are invoked with external
  /// synchronization (never concurrently); `store` and `progress` may run on
  /// the caller or any worker thread.
  struct ShardHooks {
    /// Return a previously persisted result to skip executing shard `index`.
    /// A result whose experiments do not match the plan (stale artifact) is
    /// discarded and the shard re-executes.
    std::function<std::optional<ShardResult>(std::size_t index)> load;
    /// Called once per *executed* shard (not for resumed ones).
    std::function<void(const ShardResult&)> store;
    std::function<void(const ShardProgress&)> progress;
    /// Shard fan-out executor; empty = a private ThreadPool per run. Never
    /// affects results (shards still merge in shard-index order), only where
    /// the work runs.
    ShardExecutor execute;
  };

  /// Run the campaign in config.mode. Throws SoundnessError in Validate
  /// mode if any pruned injection executes to a non-benign outcome.
  [[nodiscard]] CampaignResult run(const ShardHooks& hooks = {});

private:
  [[nodiscard]] CampaignResult run_impl(const ShardHooks& hooks);

  DutFactory factory_;
  BatchDutFactory batch_factory_;
  CampaignConfig config_;
  const mate::MateSet* mates_ = nullptr;
  std::optional<CampaignPlan> plan_;
};

} // namespace ripple::hafi
