// ISA-level def-use fault pruning for the AVR register file (the paper's
// Section 6.3: software-based techniques "take over at ISA level" for
// register/memory faults that intra-cycle MATEs cannot catch).
//
// Idea (Relyzer-style): an SEU in register r at cycle t is benign if, in the
// architectural instruction stream, the next access to r is a full overwrite
// (def) — the corrupted value dies before anybody reads (uses) it.
//
// Timing model of our 2-stage core:
//   * operand reads happen in the IF stage, one cycle before the
//     instruction's EX cycle (the operand-capture latches sample then);
//   * the X-pointer (r26) is read combinationally during the EX cycle of
//     LD/ST instructions;
//   * the destination register is written at the end of the EX cycle.
// A fault at cycle t is read by accesses at cycles >= t and killed by the
// first pure write at a cycle >= t.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cores/avr/core.hpp"
#include "sim/trace.hpp"

namespace ripple::hafi {

/// Architectural register accesses attributed to clock cycles.
///
/// Two read classes with different bypass behaviour:
///  * capture reads (operand fetch in IF) are satisfied by the EX->IF
///    forwarding path when the same cycle writes the register — they do NOT
///    observe the old register value in that case;
///  * direct reads (the X pointer during LD/ST EX) always observe the
///    register file.
struct AvrRegAccesses {
  std::vector<std::array<bool, 32>> reads_capture;
  std::vector<std::array<bool, 32>> reads_direct;
  /// [cycle][reg]: register reg is fully overwritten at this cycle.
  std::vector<std::array<bool, 32>> writes;
};

/// Reconstruct the access stream from a recorded wire-level trace of the
/// AVR core (decodes the EX-stage instruction register per cycle).
[[nodiscard]] AvrRegAccesses analyze_avr_accesses(
    const netlist::Netlist& core_netlist, const sim::Trace& trace);

/// Same analysis for the MSP430 core. The multi-cycle FSM reads registers
/// combinationally in the cycle that consumes them (DECODE operand latch,
/// EXT-state base addressing, SRC_READ auto-increment, EXEC destination
/// read) — there is no forwarding, so every read is a *direct* read; only
/// MOV-to-register and the Format II result write are pure overwrites.
/// Registers are numbered architecturally (r0..r15; only r1, r3..r15 carry
/// state in this core).
[[nodiscard]] AvrRegAccesses analyze_msp430_accesses(
    const netlist::Netlist& core_netlist, const sim::Trace& trace);

struct DefUseResult {
  /// [reg][cycle]: a fault in any bit of reg at this cycle dies before use.
  std::vector<std::vector<bool>> benign;
  std::size_t benign_points = 0; // summed over regs x cycles
  std::size_t fault_space = 0;

  [[nodiscard]] double benign_fraction() const {
    return fault_space == 0 ? 0.0
                            : static_cast<double>(benign_points) /
                                  static_cast<double>(fault_space);
  }
};

/// Def-use analysis over the whole trace. Conservative at the trace end: a
/// register without a further access is *not* proven benign.
[[nodiscard]] DefUseResult defuse_prune(const AvrRegAccesses& accesses);

} // namespace ripple::hafi
