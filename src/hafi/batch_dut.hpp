// 64-lane batch device-under-test abstraction.
//
// A BatchDut is the parallel-fault counterpart of Dut: one boot of the
// target system whose simulator carries 64 lanes — lane 0 is the golden
// (fault-free) run, lanes 1..63 each carry one injection experiment — so a
// single gate-level pass retires a whole batch of the campaign's injection
// points. All lanes share the boot sequence (every lane starts from the
// same reset state and program image); environment state that can diverge
// per lane (data memory, the I/O event log) is vectorized per lane inside
// the implementation.
//
// Divergence handling, per cycle:
//   * an I/O event that deviates from the golden lane's event stream pins
//     the lane's outcome to Sdc immediately (the serialized observable can
//     never match again) and retires the lane;
//   * a lane whose flop state XOR-matches the golden lane again *and* whose
//     memory diff count is zero has provably converged — everything it does
//     from here on is identical to the golden run — and retires as Benign;
//   * at the end of the run, surviving lanes classify as Latent when their
//     memory still differs from the golden lane's, Benign otherwise.
// The classification is exactly Dut::observable()/architectural_state()
// equality folded into incremental per-lane bookkeeping, so a BatchDut
// produces byte-identical campaign outcomes to the scalar engine.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "hafi/dut.hpp"
#include "sim/batch.hpp"
#include "util/assert.hpp"

namespace ripple::hafi {

/// Lane 0 always carries the fault-free reference run.
inline constexpr unsigned kGoldenLane = 0;

/// Injection experiments per batch pass (every lane except the golden one).
inline constexpr std::size_t kExperimentLanes = sim::kBatchLanes - 1;

/// Per-pass utilization/retirement accounting, accumulated by the campaign
/// into the `--report=json` lane counters.
struct BatchRunStats {
  std::size_t lanes = 0;               // experiments carried in this pass
  std::size_t lanes_retired_early = 0; // classified before the run ended
  std::uint64_t lane_cycles_saved = 0; // cycles not simulated thanks to that
};

/// Shared per-lane bookkeeping for BatchDut implementations: injection
/// scheduling, active/armed lane masks, per-lane memory-diff counters,
/// retirement and the final outcome classification. The concrete DUT owns
/// the environment (memories, I/O ports) and reports memory-diff deltas and
/// observable divergence here; everything below is core-independent.
class BatchLaneState {
public:
  /// Start a pass: points[i] rides in lane i+1.
  void begin(std::span<const InjectionPoint> points, std::size_t run_cycles) {
    RIPPLE_CHECK(points.size() <= kExperimentLanes,
                 "batch pass carries at most ", kExperimentLanes,
                 " experiments, got ", points.size());
    points_ = points;
    run_cycles_ = run_cycles;
    outcomes_.assign(points.size(), Outcome::Benign);
    mem_diff_.assign(sim::kBatchLanes, 0);
    active_ = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      active_ |= lane_bit(lane_of(i));
    }
    armed_ = 0;
    stats_ = BatchRunStats{};
    stats_.lanes = points.size();
    order_.resize(points.size());
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return points[a].cycle < points[b].cycle;
                     });
    cursor_ = 0;
  }

  [[nodiscard]] static unsigned lane_of(std::size_t point_index) {
    return static_cast<unsigned>(point_index) + 1;
  }
  [[nodiscard]] static sim::LaneMask lane_bit(unsigned lane) {
    return sim::LaneMask{1} << lane;
  }

  /// Experiment lanes still simulating (the golden lane is never in it).
  [[nodiscard]] sim::LaneMask active() const { return active_; }
  /// Active lanes whose injection already happened. Only they can diverge;
  /// a lane before its injection cycle is bit-identical to the golden lane.
  [[nodiscard]] sim::LaneMask armed_active() const { return armed_ & active_; }
  [[nodiscard]] bool is_armed(unsigned lane) const {
    return (armed_ >> lane) & 1u;
  }
  [[nodiscard]] bool all_retired() const { return active_ == 0; }

  /// Apply the SEUs scheduled for the start of cycle `c`.
  void inject(sim::BatchSimulator& sim, std::uint64_t c) {
    while (cursor_ < order_.size() && points_[order_[cursor_]].cycle == c) {
      const std::size_t i = order_[cursor_++];
      sim.flip_flop(points_[i].flop, lane_bit(lane_of(i)));
      armed_ |= lane_bit(lane_of(i));
    }
  }

  /// Addresses where the lane's memory differs from the golden lane's.
  [[nodiscard]] std::uint64_t mem_diff(unsigned lane) const {
    return mem_diff_[lane];
  }
  void bump_mem_diff(unsigned lane, bool was_equal, bool is_equal) {
    if (was_equal && !is_equal) {
      ++mem_diff_[lane];
    } else if (!was_equal && is_equal) {
      --mem_diff_[lane];
    }
  }

  /// The lane's observable diverged from the golden lane's event stream: the
  /// serialized I/O log can never match again, so the outcome is pinned to
  /// Sdc and the lane retires now.
  void retire_sdc(unsigned lane, std::uint64_t cycles_done) {
    retire(lane, Outcome::Sdc, cycles_done);
  }

  /// After latch: retire every armed lane whose flop state XOR-matches the
  /// golden lane again and whose memory diff is zero — it has converged, and
  /// everything it does for the rest of the run is identical to the golden
  /// run, so its outcome is provably Benign.
  void retire_converged(const sim::BatchSimulator& sim,
                        std::uint64_t cycles_done) {
    sim::LaneMask candidates =
        armed_active() & ~sim.state_divergence(kGoldenLane);
    while (candidates != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(candidates));
      candidates &= candidates - 1;
      if (mem_diff_[lane] == 0) retire(lane, Outcome::Benign, cycles_done);
    }
  }

  /// End of run: surviving lanes matched the golden observable the whole
  /// way, so their memory decides Latent vs Benign. Returns the outcomes in
  /// points order.
  [[nodiscard]] std::vector<Outcome> finish(BatchRunStats* stats) {
    sim::LaneMask remaining = active_;
    while (remaining != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(remaining));
      remaining &= remaining - 1;
      outcomes_[lane - 1] =
          mem_diff_[lane] != 0 ? Outcome::Latent : Outcome::Benign;
    }
    active_ = 0;
    if (stats != nullptr) *stats = stats_;
    return std::move(outcomes_);
  }

private:
  void retire(unsigned lane, Outcome outcome, std::uint64_t cycles_done) {
    outcomes_[lane - 1] = outcome;
    active_ &= ~lane_bit(lane);
    ++stats_.lanes_retired_early;
    stats_.lane_cycles_saved += run_cycles_ - cycles_done;
  }

  std::span<const InjectionPoint> points_;
  std::size_t run_cycles_ = 0;
  std::vector<Outcome> outcomes_;
  std::vector<std::uint64_t> mem_diff_; // per lane, vs the golden lane
  sim::LaneMask active_ = 0;
  sim::LaneMask armed_ = 0;
  std::vector<std::size_t> order_; // point indices sorted by injection cycle
  std::size_t cursor_ = 0;
  BatchRunStats stats_;
};

class BatchDut {
public:
  virtual ~BatchDut() = default;

  [[nodiscard]] virtual const netlist::Netlist& netlist() const = 0;

  /// Execute one batch pass: boot every lane from reset, flip points[i]'s
  /// flop in lane i+1 at the start of points[i].cycle, run `run_cycles`
  /// cycles (stopping early once every lane is retired) and classify each
  /// lane against the golden lane. Returns outcomes in points order;
  /// points.size() must be <= kExperimentLanes. The pass is self-contained:
  /// run() may be called repeatedly on one BatchDut.
  [[nodiscard]] virtual std::vector<Outcome> run(
      std::span<const InjectionPoint> points, std::size_t run_cycles,
      BatchRunStats* stats = nullptr) = 0;
};

using BatchDutFactory = std::function<std::unique_ptr<BatchDut>()>;

} // namespace ripple::hafi
