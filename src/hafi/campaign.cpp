#include "hafi/campaign.hpp"

#include <mutex>
#include <unordered_map>

#include "mate/faultspace.hpp"
#include "obs/trace.hpp"
#include "sim/trace.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace ripple::hafi {
namespace {

std::string_view outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Benign: return "benign";
    case Outcome::Latent: return "latent";
    case Outcome::Sdc: return "SDC";
  }
  return "?";
}

/// Default shard size: aim for enough shards that the fan-out load-balances
/// well past 8 workers, but keep shards large enough that the per-shard
/// bookkeeping (hook calls, checkpoint artifacts) stays negligible. The size
/// depends only on the point count — never on the thread count or the DUT
/// engine — so shard boundaries (and therefore checkpoint artifacts) are
/// stable across --threads values and interchangeable between engines.
/// Generous shards are aligned up to the 63-lane batch width so the default
/// plan of a large campaign packs full bit-parallel passes; small campaigns
/// keep fine-grained shards for thread-level parallelism (a half-empty pass
/// still beats 63 scalar boots there).
std::size_t auto_shard_size(std::size_t num_points) {
  constexpr std::size_t kTargetShards = 64;
  constexpr std::size_t kMaxShardSize = 504; // 8 full 63-lane passes
  std::size_t size = (num_points + kTargetShards - 1) / kTargetShards;
  if (size >= kExperimentLanes / 2) {
    size = (size + kExperimentLanes - 1) / kExperimentLanes * kExperimentLanes;
  }
  return std::clamp<std::size_t>(size, 1, kMaxShardSize);
}

/// Golden-run reference shared read-only by all shard workers.
struct GoldenRun {
  std::string observable;
  std::string state;
  /// mode != Baseline: benign[fault row][cycle] per mate::benign_matrix,
  /// plus the flop -> fault-row mapping.
  std::vector<std::vector<bool>> benign;
  std::unordered_map<FlopId, std::size_t> fault_index;
};

} // namespace

std::string_view mode_name(CampaignMode mode) {
  switch (mode) {
    case CampaignMode::Baseline: return "baseline";
    case CampaignMode::Pruned: return "pruned";
    case CampaignMode::Validate: return "validate";
  }
  return "?";
}

std::string_view dut_engine_name(DutEngine engine) {
  switch (engine) {
    case DutEngine::Scalar: return "scalar";
    case DutEngine::BitParallel: return "bitpar";
  }
  return "?";
}

Campaign::Campaign(DutFactory factory, CampaignConfig config,
                   const mate::MateSet* mates)
    : factory_(std::move(factory)), config_(config), mates_(mates) {
  RIPPLE_CHECK(config_.run_cycles > 0, "campaign needs at least one cycle");
  RIPPLE_CHECK(config_.mode == CampaignMode::Baseline || mates_ != nullptr,
               "campaign mode '", mode_name(config_.mode),
               "' needs a MATE set");
}

const CampaignPlan& Campaign::plan() {
  if (plan_.has_value()) return *plan_;

  // Boot one DUT to size the fault space (flops x cycles).
  const std::unique_ptr<Dut> dut = factory_();
  const netlist::Netlist& n = dut->netlist();

  CampaignPlan plan;
  const std::size_t space = n.num_flops() * config_.run_cycles;
  if (config_.sample == 0 || config_.sample >= space) {
    plan.points.reserve(space);
    for (FlopId f : n.all_flops()) {
      for (std::size_t c = 0; c < config_.run_cycles; ++c) {
        plan.points.push_back(InjectionPoint{f, c});
      }
    }
  } else {
    Rng rng(config_.seed);
    plan.points.reserve(config_.sample);
    for (std::size_t i = 0; i < config_.sample; ++i) {
      const std::uint64_t flat = rng.next_below(space);
      plan.points.push_back(InjectionPoint{
          FlopId{static_cast<FlopId::value_type>(flat / config_.run_cycles)},
          flat % config_.run_cycles});
    }
  }
  plan.shard_size = config_.shard_size != 0 ? config_.shard_size
                                            : auto_shard_size(
                                                  plan.points.size());
  plan_ = std::move(plan);
  return *plan_;
}

void Campaign::use_plan(CampaignPlan plan) {
  RIPPLE_CHECK(plan.shard_size > 0, "campaign plan needs a shard size");
  plan_ = std::move(plan);
}

void Campaign::set_batch_factory(BatchDutFactory factory) {
  batch_factory_ = std::move(factory);
}

CampaignResult Campaign::run(const ShardHooks& hooks) {
  return run_impl(hooks);
}

CampaignResult Campaign::run_impl(const ShardHooks& hooks) {
  const CampaignPlan& plan = this->plan();
  const bool pruning = config_.mode != CampaignMode::Baseline;

  // --- golden run -----------------------------------------------------------
  auto golden_dut = factory_();
  const netlist::Netlist& n = golden_dut->netlist();

  // Record the golden trace when pruning: the per-cycle MATE evaluation is
  // exactly what the FPGA fabric would compute online.
  sim::Trace golden_trace(n);
  for (std::size_t c = 0; c < config_.run_cycles; ++c) {
    golden_dut->step(pruning ? &golden_trace : nullptr);
  }

  GoldenRun golden;
  golden.observable = golden_dut->observable();
  golden.state = golden_dut->architectural_state();
  if (pruning) {
    golden.benign = mate::benign_matrix(*mates_, golden_trace);
    for (std::size_t i = 0; i < mates_->faulty_wires.size(); ++i) {
      const netlist::Wire& w = n.wire(mates_->faulty_wires[i]);
      RIPPLE_CHECK(w.driver_kind == netlist::DriverKind::Flop,
                   "campaign MATE sets must target flop outputs");
      golden.fault_index.emplace(w.driver_flop, i);
    }
  }
  golden_dut.reset();

  // --- shard fan-out --------------------------------------------------------
  const std::size_t num_shards = plan.num_shards();
  std::vector<ShardResult> shards(num_shards);
  std::vector<bool> resumed(num_shards, false);
  std::vector<double> shard_seconds(num_shards, 0.0);

  // Per-shard engine utilization, reported through ShardProgress. Indexed by
  // shard, so workers write without synchronization.
  struct ShardLaneStats {
    std::size_t dut_passes = 0;
    std::size_t lane_slots = 0;
    std::size_t lanes_retired_early = 0;
    std::uint64_t lane_cycles_saved = 0;
  };
  std::vector<ShardLaneStats> lane_stats(num_shards);

  const bool use_batch = config_.dut_engine == DutEngine::BitParallel &&
                         batch_factory_ != nullptr;

  // Resume pass: collect previously persisted shards before spinning up
  // workers. A stale artifact (points that no longer match the plan) is
  // discarded, not trusted.
  std::vector<std::size_t> pending;
  pending.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (hooks.load) {
      if (std::optional<ShardResult> loaded = hooks.load(s)) {
        const std::span<const InjectionPoint> points = plan.shard(s);
        const bool matches =
            loaded->shard == s && loaded->experiments.size() == points.size() &&
            std::equal(points.begin(), points.end(),
                       loaded->experiments.begin(),
                       [](const InjectionPoint& p, const Experiment& e) {
                         return p == e.point;
                       });
        if (matches) {
          shards[s] = std::move(*loaded);
          resumed[s] = true;
          continue;
        }
      }
    }
    pending.push_back(s);
  }

  const auto is_pruned = [&](const InjectionPoint& point) {
    if (!pruning) return false;
    const auto it = golden.fault_index.find(point.flop);
    return it != golden.fault_index.end() &&
           golden.benign[it->second][point.cycle];
  };

  const auto execute_scalar = [&](Experiment& exp) {
    auto dut = factory_();
    const InjectionPoint& point = exp.point;
    for (std::size_t c = 0; c < point.cycle; ++c) dut->step();
    // Flip the flop's state at the start of the injection cycle, i.e. the
    // SEU corrupts the value the flop carries *into* this cycle.
    dut->simulator().flip_flop(point.flop);
    for (std::size_t c = point.cycle; c < config_.run_cycles; ++c) {
      dut->step();
    }
    exp.executed = true;

    if (dut->observable() != golden.observable) {
      exp.outcome = Outcome::Sdc;
    } else if (dut->architectural_state() != golden.state) {
      exp.outcome = Outcome::Latent;
    } else {
      exp.outcome = Outcome::Benign;
    }
  };

  std::mutex hook_mutex; // serializes store/progress hook invocations
  std::size_t shards_done = 0;

  const auto emit_progress = [&](std::size_t s) {
    // Caller holds hook_mutex.
    ++shards_done;
    if (!hooks.progress) return;
    ShardProgress p;
    p.shard = s;
    p.shards_done = shards_done;
    p.num_shards = num_shards;
    for (const Experiment& e : shards[s].experiments) {
      p.executed += e.executed ? 1 : 0;
    }
    p.seconds = shard_seconds[s];
    p.resumed = resumed[s];
    p.dut_passes = lane_stats[s].dut_passes;
    p.lane_slots = lane_stats[s].lane_slots;
    p.lanes_retired_early = lane_stats[s].lanes_retired_early;
    p.lane_cycles_saved = lane_stats[s].lane_cycles_saved;
    hooks.progress(p);
  };

  {
    std::lock_guard lock(hook_mutex);
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (resumed[s]) emit_progress(s);
    }
  }

  const auto execute_shard = [&](std::size_t pending_index) {
    const std::size_t s = pending[pending_index];
    obs::Span shard_span("hafi", "shard");
    if (shard_span.active()) shard_span.set_detail(strprintf("shard %zu", s));
    Stopwatch watch;
    ShardResult& result = shards[s];
    result.shard = static_cast<std::uint32_t>(s);
    const std::span<const InjectionPoint> points = plan.shard(s);

    // Pruning decisions first; then the executed subset, packed 63 at a
    // time into batch passes (or run one by one on the scalar oracle).
    result.experiments.reserve(points.size());
    std::vector<std::size_t> exec;
    exec.reserve(points.size());
    for (const InjectionPoint& point : points) {
      Experiment exp;
      exp.point = point;
      exp.pruned = is_pruned(point);
      if (!exp.pruned || config_.mode == CampaignMode::Validate) {
        exec.push_back(result.experiments.size());
      }
      result.experiments.push_back(exp);
    }

    ShardLaneStats& stats = lane_stats[s];
    if (use_batch && !exec.empty()) {
      const auto batch_dut = batch_factory_();
      std::vector<InjectionPoint> group;
      group.reserve(kExperimentLanes);
      for (std::size_t g = 0; g < exec.size(); g += kExperimentLanes) {
        const std::size_t end = std::min(exec.size(), g + kExperimentLanes);
        group.clear();
        for (std::size_t i = g; i < end; ++i) {
          group.push_back(result.experiments[exec[i]].point);
        }
        BatchRunStats pass;
        obs::Span pass_span("hafi", "dut_pass");
        if (pass_span.active()) {
          pass_span.set_detail(strprintf("%zu lanes", group.size()));
        }
        const std::vector<Outcome> outcomes =
            batch_dut->run(group, config_.run_cycles, &pass);
        for (std::size_t i = g; i < end; ++i) {
          Experiment& exp = result.experiments[exec[i]];
          exp.executed = true;
          exp.outcome = outcomes[i - g];
        }
        ++stats.dut_passes;
        stats.lane_slots += kExperimentLanes;
        stats.lanes_retired_early += pass.lanes_retired_early;
        stats.lane_cycles_saved += pass.lane_cycles_saved;
      }
    } else {
      obs::Span pass_span("hafi", "dut_pass", "scalar");
      for (const std::size_t i : exec) {
        execute_scalar(result.experiments[i]);
      }
      stats.dut_passes = exec.size();
      stats.lane_slots = exec.size();
    }
    shard_seconds[s] = watch.seconds();

    std::lock_guard lock(hook_mutex);
    if (hooks.store) hooks.store(result);
    emit_progress(s);
  };

  if (!pending.empty()) {
    if (hooks.execute) {
      // Host-provided executor (e.g. the serve layer's fair scheduler).
      hooks.execute(pending.size(), execute_shard);
    } else {
      // One shard per scheduling step (grain 1): shard sizes already
      // amortize the claim cost, and shard wall times can be skewed by
      // pruning.
      ThreadPool pool(config_.threads);
      pool.parallel_for_index(pending.size(), execute_shard, 1);
    }
  }

  // --- deterministic merge --------------------------------------------------
  // Shard-index order, independent of completion order, thread count and
  // resume pattern: the result is byte-identical for any --threads value.
  CampaignResult result;
  result.total = plan.points.size();
  result.experiments.reserve(plan.points.size());
  std::vector<SoundnessViolation> violations;
  for (std::size_t s = 0; s < num_shards; ++s) {
    for (const Experiment& exp : shards[s].experiments) {
      if (exp.pruned) ++result.pruned;
      if (exp.executed) {
        ++result.executed;
        switch (exp.outcome) {
          case Outcome::Benign: ++result.benign; break;
          case Outcome::Latent: ++result.latent; break;
          case Outcome::Sdc: ++result.sdc; break;
        }
        if (exp.pruned) {
          if (exp.outcome == Outcome::Benign) {
            ++result.pruned_confirmed;
          } else {
            violations.push_back(SoundnessViolation{s, exp.point,
                                                    exp.outcome});
          }
        }
      }
      result.experiments.push_back(exp);
    }
  }

  if (!violations.empty()) {
    std::string report = strprintf(
        "MATE soundness violated: %zu pruned injection(s) executed to a "
        "non-benign outcome under validate mode",
        violations.size());
    std::size_t current_shard = violations.front().shard + 1; // force header
    for (const SoundnessViolation& v : violations) {
      if (v.shard != current_shard) {
        current_shard = v.shard;
        report += strprintf("\n  shard %zu [points %zu..%zu):",
                            v.shard, plan.shard_begin(v.shard),
                            plan.shard_end(v.shard));
      }
      report += strprintf("\n    flop %u, cycle %llu -> %.*s",
                          v.point.flop.value(),
                          static_cast<unsigned long long>(v.point.cycle),
                          static_cast<int>(outcome_name(v.outcome).size()),
                          outcome_name(v.outcome).data());
    }
    throw SoundnessError(std::move(report), std::move(violations));
  }
  return result;
}

} // namespace ripple::hafi
