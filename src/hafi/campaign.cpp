#include "hafi/campaign.hpp"

#include <unordered_map>

#include "mate/faultspace.hpp"
#include "sim/trace.hpp"
#include "util/assert.hpp"

namespace ripple::hafi {

Campaign::Campaign(DutFactory factory, CampaignConfig config)
    : factory_(std::move(factory)), config_(config) {
  RIPPLE_CHECK(config_.run_cycles > 0, "campaign needs at least one cycle");
}

std::vector<InjectionPoint> Campaign::injection_points(
    const netlist::Netlist& n) const {
  std::vector<InjectionPoint> points;
  const std::size_t space = n.num_flops() * config_.run_cycles;
  if (config_.sample == 0 || config_.sample >= space) {
    points.reserve(space);
    for (FlopId f : n.all_flops()) {
      for (std::size_t c = 0; c < config_.run_cycles; ++c) {
        points.push_back(InjectionPoint{f, c});
      }
    }
    return points;
  }
  Rng rng(config_.seed);
  points.reserve(config_.sample);
  for (std::size_t i = 0; i < config_.sample; ++i) {
    const std::uint64_t flat = rng.next_below(space);
    points.push_back(InjectionPoint{
        FlopId{static_cast<FlopId::value_type>(flat / config_.run_cycles)},
        flat % config_.run_cycles});
  }
  return points;
}

CampaignResult Campaign::run(const mate::MateSet* mates) {
  // --- golden run -----------------------------------------------------------
  auto golden = factory_();
  const netlist::Netlist& n = golden->netlist();

  // Record the golden trace when pruning: the per-cycle MATE evaluation is
  // exactly what the FPGA fabric would compute online.
  sim::Trace golden_trace(n);
  for (std::size_t c = 0; c < config_.run_cycles; ++c) {
    golden->step(mates != nullptr ? &golden_trace : nullptr);
  }
  const std::string golden_obs = golden->observable();
  const std::string golden_state = golden->architectural_state();

  // Per-cycle MATE evaluation over the golden trace — exactly what the FPGA
  // fabric would compute online while the workload runs.
  std::vector<std::vector<bool>> benign; // [fault index][cycle]
  std::unordered_map<FlopId, std::size_t> fault_index;
  if (mates != nullptr) {
    benign = mate::benign_matrix(*mates, golden_trace);
    for (std::size_t i = 0; i < mates->faulty_wires.size(); ++i) {
      const netlist::Wire& w = n.wire(mates->faulty_wires[i]);
      RIPPLE_CHECK(w.driver_kind == netlist::DriverKind::Flop,
                   "campaign MATE sets must target flop outputs");
      fault_index.emplace(w.driver_flop, i);
    }
  }

  // --- experiments -----------------------------------------------------------
  CampaignResult result;
  const std::vector<InjectionPoint> points = injection_points(n);
  result.total = points.size();

  for (const InjectionPoint& point : points) {
    Experiment exp;
    exp.point = point;

    if (mates != nullptr) {
      const auto it = fault_index.find(point.flop);
      if (it != fault_index.end() && benign[it->second][point.cycle]) {
        exp.pruned = true;
        ++result.pruned;
      }
    }

    if (!exp.pruned || config_.validate_pruned) {
      auto dut = factory_();
      for (std::size_t c = 0; c < point.cycle; ++c) dut->step();
      // Flip the flop's state at the start of the injection cycle, i.e. the
      // SEU corrupts the value the flop carries *into* this cycle.
      dut->simulator().flip_flop(point.flop);
      for (std::size_t c = point.cycle; c < config_.run_cycles; ++c) {
        dut->step();
      }
      exp.executed = true;
      ++result.executed;

      if (dut->observable() != golden_obs) {
        exp.outcome = Outcome::Sdc;
        ++result.sdc;
      } else if (dut->architectural_state() != golden_state) {
        exp.outcome = Outcome::Latent;
        ++result.latent;
      } else {
        exp.outcome = Outcome::Benign;
        ++result.benign;
      }
      if (exp.pruned && exp.outcome == Outcome::Benign) {
        ++result.pruned_confirmed;
      }
    }

    result.experiments.push_back(exp);
  }
  return result;
}

} // namespace ripple::hafi
