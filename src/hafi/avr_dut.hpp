// Dut adapter for the AVR core + its memory/I/O environment.
#pragma once

#include <array>
#include <vector>

#include "cores/avr/system.hpp"
#include "hafi/batch_dut.hpp"
#include "hafi/dut.hpp"

namespace ripple::hafi {

class AvrDut final : public Dut {
public:
  AvrDut(const cores::avr::AvrCore& core, const cores::avr::Program& program)
      : system_(core, program) {}

  [[nodiscard]] const netlist::Netlist& netlist() const override {
    return system_.core().netlist;
  }
  [[nodiscard]] sim::Simulator& simulator() override {
    return system_.simulator();
  }
  void step(sim::Trace* trace = nullptr) override { system_.step(trace); }
  [[nodiscard]] std::string observable() const override;
  [[nodiscard]] std::string architectural_state() const override;

  [[nodiscard]] cores::avr::AvrSystem& system() { return system_; }

private:
  cores::avr::AvrSystem system_;
};

/// Factory capturing core and program by reference (both must outlive the
/// campaign).
[[nodiscard]] DutFactory make_avr_factory(const cores::avr::AvrCore& core,
                                          const cores::avr::Program& program);

/// 64-lane batch counterpart of AvrDut: one BatchSimulator pass carries the
/// golden run in lane 0 and up to 63 injection experiments in lanes 1..63.
/// Instruction memory is read-only and shared; data memory is vectorized per
/// lane. The per-cycle environment service mirrors AvrSystem::step exactly,
/// with the I/O log folded into an incremental per-lane compare against the
/// golden lane's event of the same cycle.
class BatchAvrDut final : public BatchDut {
public:
  BatchAvrDut(const cores::avr::AvrCore& core,
              const cores::avr::Program& program);

  [[nodiscard]] const netlist::Netlist& netlist() const override {
    return core_->netlist;
  }
  [[nodiscard]] std::vector<Outcome> run(std::span<const InjectionPoint> points,
                                         std::size_t run_cycles,
                                         BatchRunStats* stats) override;

private:
  static constexpr std::size_t kDmemBytes = 256;

  const cores::avr::AvrCore* core_;
  std::vector<std::uint16_t> imem_; // shared across lanes (read-only)
  std::vector<std::uint8_t> dmem_;  // lane-major: [lane * kDmemBytes + addr]
  sim::BatchSimulator sim_;
  BatchLaneState lanes_;
  // Per-lane staging for drive_bus / commit (index = lane).
  std::array<std::uint64_t, sim::kBatchLanes> instr_{};
  std::array<std::uint64_t, sim::kBatchLanes> rdata_{};
  std::array<std::uint64_t, sim::kBatchLanes> daddr_{};
};

/// Batch factory capturing core and program by reference (both must outlive
/// the campaign).
[[nodiscard]] BatchDutFactory make_avr_batch_factory(
    const cores::avr::AvrCore& core, const cores::avr::Program& program);

} // namespace ripple::hafi
