// Dut adapter for the AVR core + its memory/I/O environment.
#pragma once

#include "cores/avr/system.hpp"
#include "hafi/dut.hpp"

namespace ripple::hafi {

class AvrDut final : public Dut {
public:
  AvrDut(const cores::avr::AvrCore& core, const cores::avr::Program& program)
      : system_(core, program) {}

  [[nodiscard]] const netlist::Netlist& netlist() const override {
    return system_.core().netlist;
  }
  [[nodiscard]] sim::Simulator& simulator() override {
    return system_.simulator();
  }
  void step(sim::Trace* trace = nullptr) override { system_.step(trace); }
  [[nodiscard]] std::string observable() const override;
  [[nodiscard]] std::string architectural_state() const override;

  [[nodiscard]] cores::avr::AvrSystem& system() { return system_; }

private:
  cores::avr::AvrSystem system_;
};

/// Factory capturing core and program by reference (both must outlive the
/// campaign).
[[nodiscard]] DutFactory make_avr_factory(const cores::avr::AvrCore& core,
                                          const cores::avr::Program& program);

} // namespace ripple::hafi
