// Execution traces: per-cycle snapshots of every wire value.
//
// This is the artifact the paper records with a netlist simulator (as a VCD
// file) and later replays for MATE selection and fault-space quantification.
// A Trace carries the wire names so it can be written to / read from VCD
// independently of the netlist object.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "util/bitvec.hpp"

namespace ripple::sim {

class Trace {
public:
  Trace() = default;

  /// Create an empty trace whose wire layout matches `n` (index = WireId).
  explicit Trace(const netlist::Netlist& n);

  [[nodiscard]] std::size_t num_wires() const { return wire_names_.size(); }
  [[nodiscard]] std::size_t num_cycles() const { return snapshots_.size(); }
  [[nodiscard]] const std::string& wire_name(std::size_t i) const {
    return wire_names_[i];
  }

  /// Record the settled wire values of the current cycle.
  void append(const BitVec& values);

  [[nodiscard]] bool value(std::size_t cycle, WireId w) const {
    RIPPLE_ASSERT(cycle < snapshots_.size());
    return snapshots_[cycle].get(w.index());
  }

  [[nodiscard]] const BitVec& cycle_values(std::size_t cycle) const {
    RIPPLE_ASSERT(cycle < snapshots_.size());
    return snapshots_[cycle];
  }

private:
  friend Trace make_trace_for_names(std::vector<std::string> names);
  std::vector<std::string> wire_names_;
  std::vector<BitVec> snapshots_;
};

/// Internal factory used by the VCD parser.
[[nodiscard]] Trace make_trace_for_names(std::vector<std::string> names);

/// Reorder a trace (e.g. parsed from a foreign VCD) so that wire index i
/// corresponds to WireId i of `n`. Wires of `n` missing from the trace are an
/// error; extra trace wires are dropped.
[[nodiscard]] Trace align_trace(const Trace& trace, const netlist::Netlist& n);

/// Run `sim` for `cycles` cycles with a per-cycle driver callback and record
/// a trace. `drive(sim, cycle)` is called before evaluation; it may call
/// eval() itself (memory harnesses do).
template <typename DriveFn>
Trace record_trace(Simulator& sim, std::size_t cycles, DriveFn&& drive) {
  Trace trace(sim.netlist());
  for (std::size_t c = 0; c < cycles; ++c) {
    drive(sim, c);
    sim.eval();
    trace.append(sim.values());
    sim.latch();
  }
  return trace;
}

} // namespace ripple::sim
