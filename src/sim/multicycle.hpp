// Multi-cycle fault-masking oracle (the paper's Section 6.2 outlook:
// "MATEs for faults that are masked only within more than one clock cycle").
//
// An SEU in flop f at cycle t is *masked within k cycles* iff, replaying the
// golden trace's inputs, the faulty run produces identical primary outputs
// in cycles t .. t+j-1 and an identical flop state at the start of cycle
// t+j, for some j <= k. j = 1 coincides with the paper's (and
// sim::MaskingOracle's) one-cycle definition.
//
// The oracle quantifies the headroom beyond intra-cycle MATEs: faults in
// registers that are overwritten a few cycles later (the register-file case
// of Section 6.3) converge at j > 1.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ripple::sim {

class MultiCycleOracle {
public:
  explicit MultiCycleOracle(const netlist::Netlist& n);

  /// Returns the smallest j in [1, k] such that the fault has converged
  /// (outputs matched throughout, state equal at start of cycle t+j), or 0
  /// when the fault is still live after k cycles or the trace ends first.
  ///
  /// `golden` must be a trace of this netlist (settled values per cycle,
  /// inputs included), `t` the injection cycle.
  [[nodiscard]] unsigned masked_within(FlopId f, const Trace& golden,
                                       std::size_t t, unsigned k);

private:
  /// Load the faulty run's flop state from the golden trace row at cycle t.
  void load_state_from(const Trace& golden, std::size_t t);

  const netlist::Netlist* netlist_;
  Simulator sim_;
};

} // namespace ripple::sim
