#include "sim/transposed.hpp"

#include <algorithm>

namespace ripple::sim {
namespace detail {

void transpose64(std::uint64_t x[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (std::size_t j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (std::size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (x[k] ^ (x[k + j] >> j)) & m;
      x[k] ^= t;
      x[k + j] ^= t << j;
    }
  }
}

} // namespace detail

using detail::transpose64;

TransposedTrace::TransposedTrace(const Trace& trace)
    : num_wires_(trace.num_wires()),
      num_cycles_(trace.num_cycles()),
      num_blocks_((trace.num_cycles() + 63) / 64),
      bits_(trace.num_wires() * ((trace.num_cycles() + 63) / 64), 0) {
  const std::size_t row_words = (num_wires_ + 63) / 64;
  std::uint64_t tmp[64];
  for (std::size_t block = 0; block < num_blocks_; ++block) {
    const std::size_t base_cycle = block * 64;
    const std::size_t cycles_here = std::min<std::size_t>(
        64, num_cycles_ - base_cycle);
    for (std::size_t j = 0; j < row_words; ++j) {
      // Gather the block's 64 row words for wire columns [64j, 64j+64) in
      // reverse cycle order; transpose64 then yields, in tmp[63 - i], wire
      // (64j + i)'s cycle bits for this block (bit c = cycle base_cycle+c).
      for (std::size_t k = 0; k < 64; ++k) {
        const std::size_t rev = 63 - k;
        tmp[k] = rev < cycles_here
                     ? trace.cycle_values(base_cycle + rev).words()[j]
                     : 0;
      }
      transpose64(tmp);
      const std::size_t wires_here = std::min<std::size_t>(
          64, num_wires_ - j * 64);
      for (std::size_t i = 0; i < wires_here; ++i) {
        bits_[(j * 64 + i) * num_blocks_ + block] = tmp[63 - i];
      }
    }
  }
}

TransposedTrace TransposedTrace::from_words(std::size_t num_wires,
                                            std::size_t num_cycles,
                                            std::vector<std::uint64_t> words) {
  const std::size_t blocks = (num_cycles + 63) / 64;
  RIPPLE_CHECK(words.size() == num_wires * blocks,
               "transposed-trace word count mismatch: ", words.size(),
               " for ", num_wires, " wires x ", blocks, " blocks");
  TransposedTrace t;
  t.num_wires_ = num_wires;
  t.num_cycles_ = num_cycles;
  t.num_blocks_ = blocks;
  t.bits_ = std::move(words);
  // Clear any stray bits past num_cycles so equality/fingerprints of the
  // backing words stay canonical.
  if (num_cycles % 64 != 0 && blocks > 0) {
    const std::uint64_t tail = ~std::uint64_t{0} >> (64 - num_cycles % 64);
    for (std::size_t w = 0; w < num_wires; ++w) {
      t.bits_[w * blocks + blocks - 1] &= tail;
    }
  }
  return t;
}

} // namespace ripple::sim
