// Streaming chunked traces: bounded-memory trace recording for
// million-cycle workloads.
//
// record_trace materializes the whole trace (cycles x wires) before any
// consumer sees a bit, so both memory and latency scale with program length.
// The streaming path instead cuts the cycle axis into fixed-size chunks
// (kDefaultChunkCycles, always a multiple of the 64-cycle transpose block)
// and hands each finished chunk — already transposed into wire-major
// cycle-packed form — to a TraceSink while the simulator keeps producing the
// next one. Only O(chunk x wires) trace bits are ever resident:
//
//   simulator ──rows──> ChunkedTraceRecorder ──chunks──> AsyncTraceSink
//                         (64-row block buffer,             (worker thread,
//                          per-block transpose)              bounded queue)
//                                                               │
//                                                      mate::EvalAccumulator
//
// Chunk boundaries are 64-aligned, so the per-block arithmetic of the
// bit-parallel engines is unchanged and streaming results stay byte-identical
// to the whole-trace engines. All resident trace bytes are tracked by the
// trace_memory counters, which is what the pipeline's `trace_bytes_peak`
// stage counter and the stream_smoke memory bound are measured from.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/transposed.hpp"
#include "util/assert.hpp"
#include "util/bitvec.hpp"

namespace ripple::sim {

/// Default chunk size: 64Ki cycles = 1024 transpose blocks. Large enough to
/// amortize per-chunk overhead, small enough that two resident chunks of a
/// ~2k-wire core stay around 30 MB.
inline constexpr std::size_t kDefaultChunkCycles = 64 * 1024;

// --- resident trace memory accounting --------------------------------------

/// Global byte counters for resident trace storage (chunk buffers, queued
/// chunks, recorder block buffers). Thread-safe; the streaming machinery
/// calls add/sub around every allocation it owns, so current() bounds the
/// trace bytes live at any instant and peak() is the high-water mark since
/// the last reset().
namespace trace_memory {
void add(std::size_t bytes);
void sub(std::size_t bytes);
[[nodiscard]] std::size_t current();
[[nodiscard]] std::size_t peak();
/// Reset the high-water mark to the current residency (not to zero).
void reset_peak();
} // namespace trace_memory

// --- chunk views ------------------------------------------------------------

/// Borrowed wire-major view of a contiguous 64-aligned cycle range. Unifies
/// owned chunks produced by the recorder (stride == num_blocks) and zero-copy
/// slices of a whole in-memory TransposedTrace (stride == the whole trace's
/// block count). The word layout per wire is identical to
/// TransposedTrace::wire_stream.
struct TransposedSlice {
  std::size_t num_wires = 0;
  std::size_t num_cycles = 0; // cycles covered by this slice
  std::size_t num_blocks = 0; // ceil(num_cycles / 64)
  std::size_t stride = 0;     // words per wire in the backing store
  const std::uint64_t* words = nullptr; // wire 0's first block word

  [[nodiscard]] const std::uint64_t* wire_words(std::size_t wire) const {
    RIPPLE_ASSERT(wire < num_wires);
    return words + wire * stride;
  }

  /// Mask of the cycles that exist in block `block` of the slice: all-ones
  /// except for the final block when num_cycles is not a multiple of 64.
  [[nodiscard]] std::uint64_t block_mask(std::size_t block) const {
    RIPPLE_ASSERT(block < num_blocks);
    const std::size_t rem = num_cycles % 64;
    if (block + 1 < num_blocks || rem == 0) return ~std::uint64_t{0};
    return ~std::uint64_t{0} >> (64 - rem);
  }
};

/// The whole trace as a single slice.
[[nodiscard]] TransposedSlice full_slice(const TransposedTrace& t);

/// Cycles [64 * block_begin, 64 * block_begin + cycles) of `t` as a borrowed
/// slice (no copy; `t` must outlive the slice).
[[nodiscard]] TransposedSlice cycle_slice(const TransposedTrace& t,
                                          std::size_t block_begin,
                                          std::size_t cycles);

/// One finished chunk flowing through the pipeline. Cheap to move; `owned`
/// keeps recorder-produced storage alive (and its bytes accounted) for
/// exactly as long as any copy of the chunk exists. Borrowed chunks sliced
/// from a caller-owned TransposedTrace leave `owned` null.
struct TraceChunk {
  std::size_t index = 0;      // chunk number within the stream
  std::size_t base_cycle = 0; // absolute cycle of the chunk's first row
  TransposedSlice slice;
  std::shared_ptr<const TransposedTrace> owned;
};

/// Wrap an owned chunk trace into a TraceChunk whose backing bytes are
/// tracked by trace_memory until the last copy of the chunk is destroyed.
[[nodiscard]] TraceChunk make_owned_chunk(std::size_t index,
                                          std::size_t base_cycle,
                                          TransposedTrace&& chunk);

// --- sink / source contracts ------------------------------------------------

/// Consumer of finished chunks. Chunks arrive strictly in stream order
/// (chunk k before k+1, base_cycle strictly increasing); every chunk except
/// the last covers a multiple of 64 cycles. on_chunk may run on a different
/// thread than the producer when an AsyncTraceSink sits in between, but calls
/// are never concurrent with each other.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void on_chunk(TraceChunk chunk) = 0;
};

/// Consumer of per-cycle wire-value rows (the simulator-facing half of the
/// recorder; also what the core systems' run_stream feeds).
class RowSink {
public:
  virtual ~RowSink() = default;
  virtual void append_row(const BitVec& values) = 0;
};

/// A replayable chunk stream: stream() delivers every chunk in order, and may
/// be called more than once (rank_mates_stream makes two passes). Replays
/// are byte-identical — the source either re-simulates deterministically or
/// replays cached chunks.
class TraceSource {
public:
  virtual ~TraceSource() = default;
  [[nodiscard]] virtual std::size_t num_wires() const = 0;
  [[nodiscard]] virtual std::size_t num_cycles() const = 0;
  [[nodiscard]] virtual std::size_t chunk_cycles() const = 0;
  virtual void stream(TraceSink& sink) = 0;
};

// --- producer machinery ------------------------------------------------------

/// Row -> chunk adapter: buffers 64 rows at a time, transposes each full
/// block straight into the chunk's wire-major storage (so only one 64-row
/// block buffer plus the chunk being filled are resident), and emits a
/// TraceChunk every chunk_cycles rows. The final partial chunk is flushed by
/// finish().
///
/// `first_cycle` (chunk-aligned) and `total_cycles` describe the absolute
/// cycle range [first_cycle, total_cycles) this recorder will see, so chunk
/// indices are absolute and the last chunk's storage is sized exactly.
class ChunkedTraceRecorder final : public RowSink {
public:
  ChunkedTraceRecorder(std::size_t num_wires, std::size_t total_cycles,
                       std::size_t chunk_cycles, TraceSink& sink,
                       std::size_t first_cycle = 0);
  ChunkedTraceRecorder(const ChunkedTraceRecorder&) = delete;
  ChunkedTraceRecorder& operator=(const ChunkedTraceRecorder&) = delete;
  ~ChunkedTraceRecorder() override;

  void append_row(const BitVec& values) override;

  /// Flush the trailing partial chunk. Must be called exactly once, after
  /// all total_cycles - first_cycle rows were appended.
  void finish();

  [[nodiscard]] std::size_t cycles_recorded() const { return cycle_; }

private:
  void flush_block();
  void begin_chunk();
  void emit_chunk();

  std::size_t num_wires_;
  std::size_t total_cycles_;
  std::size_t chunk_cycles_;
  TraceSink* sink_;
  std::size_t first_cycle_;
  std::size_t row_words_;

  std::size_t cycle_ = 0;          // rows appended so far (relative)
  std::size_t chunk_base_ = 0;     // absolute first cycle of current chunk
  std::size_t chunk_len_ = 0;      // cycles the current chunk will hold
  std::size_t chunk_blocks_ = 0;   // words per wire in the current chunk
  std::size_t block_fill_ = 0;     // rows buffered for the current block
  bool finished_ = false;

  std::vector<std::uint64_t> rows_;        // 64 x row_words_ block buffer
  std::vector<std::uint64_t> chunk_words_; // wire-major chunk storage
};

/// Forwards chunks to `inner` on a dedicated worker thread through a bounded
/// queue, so the producer (simulator) fills chunk k+1 while the consumer
/// (evaluation) digests chunk k. on_chunk blocks when the queue is full —
/// at most `max_queue` chunks wait in flight, bounding resident memory.
/// Exceptions thrown by the consumer are rethrown from drain() (and from the
/// next on_chunk call, so a failing producer loop stops early).
class AsyncTraceSink final : public TraceSink {
public:
  explicit AsyncTraceSink(TraceSink& inner, std::size_t max_queue = 1);
  AsyncTraceSink(const AsyncTraceSink&) = delete;
  AsyncTraceSink& operator=(const AsyncTraceSink&) = delete;
  ~AsyncTraceSink() override;

  void on_chunk(TraceChunk chunk) override;

  /// Wait until every queued chunk has been consumed; rethrows the first
  /// consumer exception, if any.
  void drain();

  /// Wall-clock seconds the worker spent inside inner.on_chunk (consumer
  /// busy time; the overlap-efficiency numerator of bench/eval_throughput).
  [[nodiscard]] double busy_seconds() const;

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A whole in-memory TransposedTrace replayed as borrowed chunk slices
/// (no copies): adapts the memoized whole-trace path and the equivalence
/// tests onto the streaming engines.
class TransposedTraceSource final : public TraceSource {
public:
  /// `trace` must outlive the source. chunk_cycles must be a positive
  /// multiple of 64.
  TransposedTraceSource(const TransposedTrace& trace,
                        std::size_t chunk_cycles = kDefaultChunkCycles);

  [[nodiscard]] std::size_t num_wires() const override;
  [[nodiscard]] std::size_t num_cycles() const override;
  [[nodiscard]] std::size_t chunk_cycles() const override {
    return chunk_cycles_;
  }
  void stream(TraceSink& sink) override;

private:
  const TransposedTrace* trace_;
  std::size_t chunk_cycles_;
};

/// Chunked counterpart of record_trace: run `sim` for `cycles` cycles and
/// emit finished TransposedTrace chunks of `chunk_cycles` cycles each to
/// `sink` instead of materializing a whole Trace. `drive(sim, cycle)` is
/// called before evaluation, exactly like record_trace.
template <typename DriveFn>
void record_trace_chunked(Simulator& sim, std::size_t cycles,
                          std::size_t chunk_cycles, TraceSink& sink,
                          DriveFn&& drive) {
  ChunkedTraceRecorder recorder(sim.netlist().num_wires(), cycles,
                                chunk_cycles, sink);
  for (std::size_t c = 0; c < cycles; ++c) {
    drive(sim, c);
    sim.eval();
    recorder.append_row(sim.values());
    sim.latch();
  }
  recorder.finish();
}

} // namespace ripple::sim
