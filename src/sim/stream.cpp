#include "sim/stream.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

namespace ripple::sim {

// --- resident trace memory accounting --------------------------------------

namespace trace_memory {
namespace {
std::atomic<std::size_t> g_current{0};
std::atomic<std::size_t> g_peak{0};
} // namespace

void add(std::size_t bytes) {
  const std::size_t now = g_current.fetch_add(bytes) + bytes;
  std::size_t peak = g_peak.load();
  while (now > peak && !g_peak.compare_exchange_weak(peak, now)) {
  }
}

void sub(std::size_t bytes) { g_current.fetch_sub(bytes); }

std::size_t current() { return g_current.load(); }

std::size_t peak() { return g_peak.load(); }

void reset_peak() { g_peak.store(g_current.load()); }

} // namespace trace_memory

// --- chunk views ------------------------------------------------------------

TransposedSlice full_slice(const TransposedTrace& t) {
  TransposedSlice s;
  s.num_wires = t.num_wires();
  s.num_cycles = t.num_cycles();
  s.num_blocks = t.num_blocks();
  s.stride = t.num_blocks();
  s.words = t.words().data();
  return s;
}

TransposedSlice cycle_slice(const TransposedTrace& t, std::size_t block_begin,
                            std::size_t cycles) {
  RIPPLE_ASSERT(block_begin * 64 + cycles <= t.num_cycles(),
                "slice past end of trace");
  TransposedSlice s;
  s.num_wires = t.num_wires();
  s.num_cycles = cycles;
  s.num_blocks = (cycles + 63) / 64;
  s.stride = t.num_blocks();
  s.words = t.words().data() + block_begin;
  return s;
}

TraceChunk make_owned_chunk(std::size_t index, std::size_t base_cycle,
                            TransposedTrace&& chunk) {
  auto* owned = new TransposedTrace(std::move(chunk));
  const std::size_t bytes = owned->words().size() * sizeof(std::uint64_t);
  trace_memory::add(bytes);
  TraceChunk c;
  c.index = index;
  c.base_cycle = base_cycle;
  c.owned = std::shared_ptr<const TransposedTrace>(
      owned, [bytes](const TransposedTrace* p) {
        trace_memory::sub(bytes);
        delete p;
      });
  c.slice = full_slice(*c.owned);
  return c;
}

// --- ChunkedTraceRecorder ----------------------------------------------------

ChunkedTraceRecorder::ChunkedTraceRecorder(std::size_t num_wires,
                                           std::size_t total_cycles,
                                           std::size_t chunk_cycles,
                                           TraceSink& sink,
                                           std::size_t first_cycle)
    : num_wires_(num_wires),
      total_cycles_(total_cycles),
      chunk_cycles_(chunk_cycles),
      sink_(&sink),
      first_cycle_(first_cycle),
      row_words_((num_wires + 63) / 64) {
  RIPPLE_CHECK(chunk_cycles_ > 0 && chunk_cycles_ % 64 == 0,
               "chunk size must be a positive multiple of 64 cycles, got ",
               chunk_cycles_);
  RIPPLE_CHECK(first_cycle_ % chunk_cycles_ == 0,
               "first_cycle must be chunk-aligned");
  RIPPLE_CHECK(first_cycle_ <= total_cycles_,
               "first_cycle past total_cycles");
  rows_.assign(64 * row_words_, 0);
  trace_memory::add(rows_.size() * sizeof(std::uint64_t));
  chunk_base_ = first_cycle_;
  if (chunk_base_ < total_cycles_) begin_chunk();
}

ChunkedTraceRecorder::~ChunkedTraceRecorder() {
  trace_memory::sub(rows_.size() * sizeof(std::uint64_t));
  // Abandoned mid-chunk (exception unwind): release the chunk accounting.
  if (!chunk_words_.empty()) {
    trace_memory::sub(chunk_words_.size() * sizeof(std::uint64_t));
  }
}

void ChunkedTraceRecorder::begin_chunk() {
  chunk_len_ = std::min(chunk_cycles_, total_cycles_ - chunk_base_);
  chunk_blocks_ = (chunk_len_ + 63) / 64;
  chunk_words_.assign(num_wires_ * chunk_blocks_, 0);
  trace_memory::add(chunk_words_.size() * sizeof(std::uint64_t));
  block_fill_ = 0;
}

void ChunkedTraceRecorder::flush_block() {
  // Same gather/transpose/scatter as the whole-trace TransposedTrace
  // constructor, but the destination is the current chunk's storage.
  const std::size_t flushed = (first_cycle_ + cycle_) - chunk_base_;
  const std::size_t block = (flushed - block_fill_) / 64;
  std::uint64_t tmp[64];
  for (std::size_t j = 0; j < row_words_; ++j) {
    for (std::size_t k = 0; k < 64; ++k) {
      const std::size_t rev = 63 - k;
      tmp[k] = rev < block_fill_ ? rows_[rev * row_words_ + j] : 0;
    }
    detail::transpose64(tmp);
    const std::size_t wires_here = std::min<std::size_t>(
        64, num_wires_ - j * 64);
    for (std::size_t i = 0; i < wires_here; ++i) {
      chunk_words_[(j * 64 + i) * chunk_blocks_ + block] = tmp[63 - i];
    }
  }
  block_fill_ = 0;
}

void ChunkedTraceRecorder::emit_chunk() {
  const std::size_t bytes = chunk_words_.size() * sizeof(std::uint64_t);
  TransposedTrace t = TransposedTrace::from_words(num_wires_, chunk_len_,
                                                  std::move(chunk_words_));
  chunk_words_.clear();
  // Accounting moves from the recorder to the emitted chunk's owner.
  trace_memory::sub(bytes);
  sink_->on_chunk(make_owned_chunk(chunk_base_ / chunk_cycles_, chunk_base_,
                                   std::move(t)));
}

void ChunkedTraceRecorder::append_row(const BitVec& values) {
  RIPPLE_ASSERT(!finished_, "append_row after finish()");
  RIPPLE_CHECK(first_cycle_ + cycle_ < total_cycles_,
               "more rows than total_cycles");
  RIPPLE_ASSERT(values.words().size() == row_words_,
                "row width does not match num_wires");
  std::copy(values.words().begin(), values.words().end(),
            rows_.begin() + static_cast<std::ptrdiff_t>(
                                block_fill_ * row_words_));
  ++block_fill_;
  ++cycle_;
  if (block_fill_ == 64) flush_block();
  const std::size_t filled = (first_cycle_ + cycle_) - chunk_base_;
  if (filled == chunk_len_) {
    if (block_fill_ > 0) flush_block();
    emit_chunk();
    chunk_base_ += chunk_len_;
    if (chunk_base_ < total_cycles_) begin_chunk();
  }
}

void ChunkedTraceRecorder::finish() {
  RIPPLE_ASSERT(!finished_, "finish() called twice");
  RIPPLE_CHECK(first_cycle_ + cycle_ == total_cycles_,
               "finish() after ", cycle_, " rows, expected ",
               total_cycles_ - first_cycle_);
  finished_ = true;
}

// --- AsyncTraceSink ----------------------------------------------------------

struct AsyncTraceSink::Impl {
  TraceSink* inner;
  std::size_t max_queue;

  std::mutex mutex;
  std::condition_variable cv; // producer, consumer and drain all wait here
  std::deque<TraceChunk> queue;
  bool stop = false;
  bool busy = false;
  std::exception_ptr error;
  double busy_seconds = 0.0;
  std::thread worker;
  /// Queue depth observed at each enqueue (consumer backlog); resolved once
  /// so the producer hot path pays two relaxed atomic adds per chunk.
  obs::Histogram* queue_depth_hist = nullptr;

  void worker_loop() {
    std::unique_lock lock(mutex);
    while (true) {
      cv.wait(lock, [this] { return stop || !queue.empty(); });
      if (queue.empty()) {
        if (stop) return;
        continue;
      }
      TraceChunk chunk = std::move(queue.front());
      queue.pop_front();
      busy = true;
      cv.notify_all(); // a queue slot freed up
      if (error != nullptr) {
        // A previous chunk failed: drop the rest so the producer unblocks.
        busy = false;
        cv.notify_all();
        continue;
      }
      lock.unlock();
      Stopwatch watch;
      std::exception_ptr thrown;
      {
        obs::Span span("stream", "chunk_consume");
        if (span.active()) {
          span.set_detail(strprintf("chunk %zu", chunk.index));
        }
        try {
          inner->on_chunk(std::move(chunk));
        } catch (...) {
          thrown = std::current_exception();
        }
      }
      const double seconds = watch.seconds();
      lock.lock();
      busy_seconds += seconds;
      if (thrown != nullptr && error == nullptr) error = thrown;
      busy = false;
      cv.notify_all();
    }
  }
};

AsyncTraceSink::AsyncTraceSink(TraceSink& inner, std::size_t max_queue)
    : impl_(std::make_unique<Impl>()) {
  impl_->inner = &inner;
  impl_->max_queue = std::max<std::size_t>(1, max_queue);
  constexpr double kDepthBounds[] = {1.0, 2.0, 3.0, 4.0, 8.0, 16.0};
  impl_->queue_depth_hist =
      &obs::MetricRegistry::global().histogram("chunk_queue_depth",
                                               kDepthBounds);
  impl_->worker = std::thread([this] { impl_->worker_loop(); });
}

AsyncTraceSink::~AsyncTraceSink() {
  {
    std::lock_guard lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->worker.join();
}

void AsyncTraceSink::on_chunk(TraceChunk chunk) {
  std::unique_lock lock(impl_->mutex);
  // The chunk the worker is consuming counts against the queue bound:
  // with max_queue = 1 at most one finished chunk is alive downstream
  // (in the queue or being consumed) while the producer fills the next,
  // keeping resident trace memory at two chunks.
  impl_->cv.wait(lock, [this] {
    return impl_->queue.size() + (impl_->busy ? 1 : 0) < impl_->max_queue ||
           impl_->error != nullptr;
  });
  if (impl_->error != nullptr) std::rethrow_exception(impl_->error);
  impl_->queue.push_back(std::move(chunk));
  impl_->queue_depth_hist->record(
      static_cast<double>(impl_->queue.size() + (impl_->busy ? 1 : 0)));
  impl_->cv.notify_all();
}

void AsyncTraceSink::drain() {
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait(lock,
                 [this] { return impl_->queue.empty() && !impl_->busy; });
  if (impl_->error != nullptr) std::rethrow_exception(impl_->error);
}

double AsyncTraceSink::busy_seconds() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->busy_seconds;
}

// --- TransposedTraceSource ---------------------------------------------------

TransposedTraceSource::TransposedTraceSource(const TransposedTrace& trace,
                                             std::size_t chunk_cycles)
    : trace_(&trace), chunk_cycles_(chunk_cycles) {
  RIPPLE_CHECK(chunk_cycles_ > 0 && chunk_cycles_ % 64 == 0,
               "chunk size must be a positive multiple of 64 cycles, got ",
               chunk_cycles_);
}

std::size_t TransposedTraceSource::num_wires() const {
  return trace_->num_wires();
}

std::size_t TransposedTraceSource::num_cycles() const {
  return trace_->num_cycles();
}

void TransposedTraceSource::stream(TraceSink& sink) {
  const std::size_t cycles = trace_->num_cycles();
  for (std::size_t base = 0, index = 0; base < cycles;
       base += chunk_cycles_, ++index) {
    const std::size_t len = std::min(chunk_cycles_, cycles - base);
    TraceChunk c;
    c.index = index;
    c.base_cycle = base;
    c.slice = cycle_slice(*trace_, base / 64, len);
    sink.on_chunk(std::move(c));
  }
}

} // namespace ripple::sim
