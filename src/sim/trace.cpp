#include "sim/trace.hpp"

#include <string_view>
#include <unordered_map>

namespace ripple::sim {

Trace::Trace(const netlist::Netlist& n) {
  wire_names_.reserve(n.num_wires());
  for (WireId w : n.all_wires()) {
    wire_names_.push_back(n.wire(w).name);
  }
}

void Trace::append(const BitVec& values) {
  RIPPLE_ASSERT(values.size() == wire_names_.size(),
                "snapshot size mismatch: ", values.size(), " vs ",
                wire_names_.size());
  snapshots_.push_back(values);
}

Trace make_trace_for_names(std::vector<std::string> names) {
  Trace t;
  t.wire_names_ = std::move(names);
  return t;
}

Trace align_trace(const Trace& trace, const netlist::Netlist& n) {
  std::vector<std::size_t> source_index(n.num_wires());
  std::unordered_map<std::string_view, std::size_t> by_name;
  for (std::size_t i = 0; i < trace.num_wires(); ++i) {
    by_name.emplace(trace.wire_name(i), i);
  }
  for (WireId w : n.all_wires()) {
    const auto it = by_name.find(n.wire(w).name);
    RIPPLE_CHECK(it != by_name.end(), "trace is missing wire '",
                 n.wire(w).name, "'");
    source_index[w.index()] = it->second;
  }

  Trace out(n);
  for (std::size_t c = 0; c < trace.num_cycles(); ++c) {
    const BitVec& src = trace.cycle_values(c);
    BitVec row(n.num_wires());
    for (std::size_t i = 0; i < source_index.size(); ++i) {
      row.set(i, src.get(source_index[i]));
    }
    out.append(row);
  }
  return out;
}

} // namespace ripple::sim
