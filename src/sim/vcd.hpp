// VCD (IEEE 1364 value change dump) writer and reader.
//
// One VCD timestamp per clock cycle: the dump at time t holds the settled
// wire values of cycle t (flop outputs = state of cycle t). This is the trace
// format the paper exchanges between the netlist simulator and the MATE
// tooling.
//
// The writer emits scalar (1-bit) variables only — our netlists are bit-level.
// The reader additionally accepts `b<digits>` vector changes of width 1 and
// 'x'/'z' values (mapped to 0), so traces from other simulators load too.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "sim/trace.hpp"

namespace ripple::sim {

void write_vcd(const Trace& trace, std::ostream& os,
               std::string_view module_name = "top");
[[nodiscard]] std::string to_vcd(const Trace& trace,
                                 std::string_view module_name = "top");

/// Parse a VCD dump into a Trace. Signal identity is by wire name; scopes are
/// flattened with '.' separators and the top scope name is dropped.
[[nodiscard]] Trace parse_vcd(std::string_view text);

} // namespace ripple::sim
