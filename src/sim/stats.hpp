// Netlist statistics: the numbers a synthesis report would show (cell
// counts, area, combinational depth, fanout distribution). Used by the
// core-report tool and the evaluation write-up.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "netlist/netlist.hpp"

namespace ripple::sim {

using netlist::Kind;
using netlist::Netlist;
using netlist::Wire;

struct NetlistStats {
  std::string name;
  std::size_t wires = 0;
  std::size_t gates = 0;
  std::size_t flops = 0;
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  double area_um2 = 0.0;
  std::uint32_t comb_depth = 0; // levelized gate levels
  double avg_fanout = 0.0;      // over driven wires with at least one reader
  std::size_t max_fanout = 0;
  std::map<Kind, std::size_t> by_kind;
};

[[nodiscard]] NetlistStats compute_stats(const netlist::Netlist& n);

/// Human-readable synthesis-style report.
void print_stats(const NetlistStats& stats, std::ostream& os);

} // namespace ripple::sim
