// Exact one-cycle fault-masking oracle.
//
// Ground truth for the paper's benign-fault definition: an SEU in flop f at
// cycle t is *masked within one cycle* iff flipping f's state bit and
// re-settling the combinational logic leaves every flop D input and every
// primary output unchanged (N(f(i)) == N(i), Section 3).
//
// MATEs are sound but incomplete approximations of this predicate; the test
// suite checks soundness (MATE triggers => oracle says masked) and the
// ablation bench A3 measures completeness (what fraction of oracle-masked
// faults the MATE set catches).
//
// The oracle re-evaluates only the fault cone of the flipped flop (levelized,
// precomputed per flop), so a full flops x cycles sweep stays tractable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/levelize.hpp"
#include "util/bitvec.hpp"

namespace ripple::sim {

class MaskingOracle {
public:
  explicit MaskingOracle(const netlist::Netlist& n);

  /// Scratch space reusable across masked() calls (one per thread).
  class Workspace {
  public:
    explicit Workspace(const MaskingOracle& oracle)
        : overlay_(oracle.netlist_->num_wires()),
          touched_(oracle.netlist_->num_wires(), 0) {}

  private:
    friend class MaskingOracle;
    std::vector<std::uint8_t> overlay_;
    std::vector<std::uint8_t> touched_;
    std::vector<std::uint32_t> touched_list_;
  };

  /// `values` must be the settled wire values of the cycle under test
  /// (Simulator::values() after eval(), or Trace::cycle_values()).
  [[nodiscard]] bool masked(FlopId f, const BitVec& values,
                            Workspace& ws) const;

  /// Convenience without explicit workspace (allocates one internally).
  [[nodiscard]] bool masked(FlopId f, const BitVec& values) const {
    Workspace ws(*this);
    return masked(f, values, ws);
  }

  /// Multi-bit variant: is the simultaneous flip of all flops in `group`
  /// masked within one cycle? (Union cone re-evaluation.)
  [[nodiscard]] bool masked_group(std::span<const FlopId> group,
                                  const BitVec& values, Workspace& ws) const;
  [[nodiscard]] bool masked_group(std::span<const FlopId> group,
                                  const BitVec& values) const {
    Workspace ws(*this);
    return masked_group(group, values, ws);
  }

  /// Size of the combinational fault cone (#gates) of a flop's Q wire.
  [[nodiscard]] std::size_t cone_size(FlopId f) const {
    return cones_[f.index()].gates.size();
  }

private:
  struct Cone {
    std::vector<GateId> gates;     // levelized order, restricted to the cone
    std::vector<WireId> observers; // cone wires feeding flops or POs (incl. q)
  };

  const netlist::Netlist* netlist_;
  std::vector<Cone> cones_;               // indexed by FlopId
  std::vector<std::uint32_t> order_pos_;  // gate -> levelized position
};

} // namespace ripple::sim
