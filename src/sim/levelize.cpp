#include "sim/levelize.hpp"

#include <algorithm>

namespace ripple::sim {

using netlist::DriverKind;
using netlist::Netlist;

Levelization levelize(const Netlist& n) {
  n.check();

  Levelization out;
  out.order.reserve(n.num_gates());
  out.gate_level.assign(n.num_gates(), 0);

  // Kahn's algorithm over gates. A gate depends on the driver gates of its
  // input wires; PI- and flop-driven wires are free.
  std::vector<std::uint32_t> pending(n.num_gates(), 0);
  for (GateId g : n.all_gates()) {
    std::uint32_t deps = 0;
    for (WireId in : n.gate(g).inputs) {
      if (n.wire(in).driver_kind == DriverKind::Gate) ++deps;
    }
    pending[g.index()] = deps;
  }

  std::vector<GateId> ready;
  for (GateId g : n.all_gates()) {
    if (pending[g.index()] == 0) ready.push_back(g);
  }

  while (!ready.empty()) {
    const GateId g = ready.back();
    ready.pop_back();
    out.order.push_back(g);

    std::uint32_t level = 0;
    for (WireId in : n.gate(g).inputs) {
      const netlist::Wire& w = n.wire(in);
      if (w.driver_kind == DriverKind::Gate) {
        level = std::max(level, out.gate_level[w.driver_gate.index()] + 1);
      }
    }
    out.gate_level[g.index()] = level;
    out.depth = std::max(out.depth, level + 1);

    const WireId y = n.gate(g).output;
    for (GateId reader : n.wire(y).gate_fanout) {
      RIPPLE_ASSERT(pending[reader.index()] > 0);
      if (--pending[reader.index()] == 0) ready.push_back(reader);
    }
  }

  if (out.order.size() != n.num_gates()) {
    // Some gate never became ready -> combinational cycle. Name a wire on it.
    for (GateId g : n.all_gates()) {
      if (pending[g.index()] > 0) {
        throw Error("combinational cycle through wire '" +
                    n.wire(n.gate(g).output).name + "'");
      }
    }
    RIPPLE_UNREACHABLE("cycle detected but no pending gate found");
  }
  return out;
}

} // namespace ripple::sim
