#include "sim/vcd.hpp"

#include <cctype>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/strings.hpp"

namespace ripple::sim {
namespace {

// VCD identifier codes use the printable ASCII range '!'..'~' (94 symbols).
std::string id_code(std::size_t index) {
  std::string code;
  do {
    code += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return code;
}

} // namespace

void write_vcd(const Trace& trace, std::ostream& os,
               std::string_view module_name) {
  os << "$date\n  (ripple trace)\n$end\n";
  os << "$version\n  ripple vcd writer\n$end\n";
  os << "$timescale 1ns $end\n";
  os << "$scope module " << module_name << " $end\n";
  for (std::size_t i = 0; i < trace.num_wires(); ++i) {
    os << "$var wire 1 " << id_code(i) << ' ' << trace.wire_name(i)
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  for (std::size_t cycle = 0; cycle < trace.num_cycles(); ++cycle) {
    os << '#' << cycle << '\n';
    if (cycle == 0) os << "$dumpvars\n";
    const BitVec& now = trace.cycle_values(cycle);
    for (std::size_t i = 0; i < trace.num_wires(); ++i) {
      const bool v = now.get(i);
      if (cycle == 0 || v != trace.cycle_values(cycle - 1).get(i)) {
        os << (v ? '1' : '0') << id_code(i) << '\n';
      }
    }
    if (cycle == 0) os << "$end\n";
  }
}

std::string to_vcd(const Trace& trace, std::string_view module_name) {
  std::ostringstream os;
  write_vcd(trace, os, module_name);
  return os.str();
}

Trace parse_vcd(std::string_view text) {
  // --- header: collect variable definitions -------------------------------
  std::vector<std::string> names;
  std::unordered_map<std::string, std::size_t> index_by_code;
  std::vector<std::string> scope_stack;

  std::size_t pos = 0;
  const auto next_token = [&]() -> std::string_view {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    const std::size_t start = pos;
    while (pos < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    return text.substr(start, pos - start);
  };
  const auto skip_to_end_keyword = [&] {
    while (true) {
      const std::string_view tok = next_token();
      RIPPLE_CHECK(!tok.empty(), "unterminated VCD section");
      if (tok == "$end") return;
    }
  };

  bool in_definitions = true;
  while (in_definitions) {
    const std::string_view tok = next_token();
    RIPPLE_CHECK(!tok.empty(), "VCD ended before $enddefinitions");
    if (tok == "$scope") {
      next_token(); // scope kind (module/...)
      scope_stack.emplace_back(next_token());
      skip_to_end_keyword();
    } else if (tok == "$upscope") {
      RIPPLE_CHECK(!scope_stack.empty(), "unbalanced $upscope");
      scope_stack.pop_back();
      skip_to_end_keyword();
    } else if (tok == "$var") {
      next_token(); // var type
      const std::string_view width = next_token();
      RIPPLE_CHECK(width == "1", "only 1-bit VCD variables supported, got '",
                   std::string(width), "'");
      const std::string code(next_token());
      std::string name(next_token());
      // Optional bit-range token like "[3]" glued or separate; the writer
      // never emits one, but accept "name [3]" by merging.
      std::string_view maybe_range = next_token();
      if (maybe_range != "$end") {
        if (!maybe_range.empty() && maybe_range.front() == '[') {
          name += std::string(maybe_range);
          const std::string_view end_tok = next_token();
          RIPPLE_CHECK(end_tok == "$end", "malformed $var");
        } else {
          RIPPLE_CHECK(false, "malformed $var near '", name, "'");
        }
      }
      // Flatten sub-scopes (below the top module) into the name.
      std::string full;
      for (std::size_t i = 1; i < scope_stack.size(); ++i) {
        full += scope_stack[i] + ".";
      }
      full += name;
      if (!index_by_code.contains(code)) {
        index_by_code.emplace(code, names.size());
        names.push_back(full);
      }
    } else if (tok == "$enddefinitions") {
      skip_to_end_keyword();
      in_definitions = false;
    } else if (tok[0] == '$') {
      skip_to_end_keyword(); // $date, $version, $timescale, $comment, ...
    } else {
      RIPPLE_CHECK(false, "unexpected token '", std::string(tok),
                   "' in VCD header");
    }
  }

  // --- value changes -------------------------------------------------------
  Trace trace = make_trace_for_names(names);
  BitVec current(names.size());
  bool have_timestamp = false;

  const auto set_by_code = [&](std::string_view code, bool v) {
    const auto it = index_by_code.find(std::string(code));
    RIPPLE_CHECK(it != index_by_code.end(), "VCD change for undeclared id '",
                 std::string(code), "'");
    current.set(it->second, v);
  };

  while (true) {
    const std::string_view tok = next_token();
    if (tok.empty()) break;
    if (tok[0] == '#') {
      if (have_timestamp) trace.append(current);
      have_timestamp = true;
    } else if (tok == "$dumpvars" || tok == "$dumpall" || tok == "$dumpon" ||
               tok == "$dumpoff") {
      // Changes inside the dump block are handled like normal changes; the
      // closing $end token is skipped below.
    } else if (tok == "$end") {
      // end of a dump block
    } else if (tok[0] == '0' || tok[0] == '1' || tok[0] == 'x' ||
               tok[0] == 'X' || tok[0] == 'z' || tok[0] == 'Z') {
      RIPPLE_CHECK(tok.size() >= 2, "malformed scalar change '",
                   std::string(tok), "'");
      set_by_code(tok.substr(1), tok[0] == '1');
    } else if (tok[0] == 'b' || tok[0] == 'B') {
      const std::string_view value = tok.substr(1);
      RIPPLE_CHECK(value.size() == 1, "vector VCD changes unsupported");
      const std::string_view code = next_token();
      set_by_code(code, value[0] == '1');
    } else {
      RIPPLE_CHECK(false, "unexpected token '", std::string(tok),
                   "' in VCD body");
    }
  }
  if (have_timestamp) trace.append(current);

  return trace;
}

} // namespace ripple::sim
