#include "sim/stats.hpp"

#include <ostream>

#include "sim/levelize.hpp"
#include "util/strings.hpp"

namespace ripple::sim {

using netlist::Kind;
using netlist::Netlist;
using netlist::Wire;

NetlistStats compute_stats(const netlist::Netlist& n) {
  NetlistStats s;
  s.name = n.name();
  s.wires = n.num_wires();
  s.gates = n.num_gates();
  s.flops = n.num_flops();
  s.primary_inputs = n.primary_inputs().size();
  s.primary_outputs = n.primary_outputs().size();
  s.area_um2 = n.total_area();
  s.comb_depth = sim::levelize(n).depth;

  for (const auto& [kind, count] : n.kind_histogram()) {
    s.by_kind[kind] = count;
  }

  std::size_t readers_total = 0;
  std::size_t driven = 0;
  for (WireId w : n.all_wires()) {
    const Wire& wire = n.wire(w);
    const std::size_t readers =
        wire.gate_fanout.size() + wire.flop_fanout.size();
    if (readers == 0) continue;
    ++driven;
    readers_total += readers;
    s.max_fanout = std::max(s.max_fanout, readers);
  }
  s.avg_fanout = driven == 0 ? 0.0
                             : static_cast<double>(readers_total) /
                                   static_cast<double>(driven);
  return s;
}

void print_stats(const NetlistStats& s, std::ostream& os) {
  os << "module " << s.name << "\n"
     << strprintf("  wires   %6zu   inputs %zu, outputs %zu\n", s.wires,
                  s.primary_inputs, s.primary_outputs)
     << strprintf("  gates   %6zu   flops %zu\n", s.gates, s.flops)
     << strprintf("  area    %8.1f um^2 (library units)\n", s.area_um2)
     << strprintf("  depth   %6u combinational levels\n", s.comb_depth)
     << strprintf("  fanout  %8.2f avg, %zu max\n", s.avg_fanout,
                  s.max_fanout)
     << "  cells:\n";
  for (const auto& [kind, count] : s.by_kind) {
    os << strprintf("    %-10s %6zu\n",
                    std::string(cell::name(kind)).c_str(), count);
  }
}

} // namespace ripple::sim
