// 64-lane bit-parallel gate-level simulator (classic parallel-fault
// simulation).
//
// Where Simulator keeps one bool per wire, BatchSimulator keeps one uint64_t
// per wire: bit i of every word belongs to *lane* i, an independent
// experiment sharing the same netlist. One levelized pass through the
// combinational logic therefore evaluates 64 concurrent runs — the campaign
// engine packs one golden run plus up to 63 fault experiments into a word,
// so a single gate-level pass retires a whole batch of injection points.
//
// The per-cycle protocol mirrors Simulator exactly (eval is idempotent,
// latch is the rising clock edge); fault injection generalizes flip_flop to
// a lane mask, and state_divergence() reports — via one XOR-vs-golden-lane
// sweep over the flop words — which lanes have drifted from the golden lane.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/levelize.hpp"
#include "sim/simulator.hpp"

namespace ripple::sim {

/// Experiments evaluated per word; lane i = bit i of every wire word.
inline constexpr std::size_t kBatchLanes = 64;

/// Bit i = lane i.
using LaneMask = std::uint64_t;

class BatchSimulator {
public:
  explicit BatchSimulator(const netlist::Netlist& n);

  [[nodiscard]] const netlist::Netlist& netlist() const { return *netlist_; }

  // --- per-cycle protocol --------------------------------------------------

  /// Drive a primary input with per-lane values (bit i = lane i's value).
  void set_input(WireId w, std::uint64_t lanes);

  void eval();
  void latch();

  void step() {
    eval();
    latch();
  }

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

  /// Reset all flops of every lane to their init values and clear the cycle
  /// counter. Inputs keep their last driven values.
  void reset();

  // --- observation ---------------------------------------------------------

  /// The wire's word: bit i = lane i's value (valid after eval()).
  [[nodiscard]] std::uint64_t value(WireId w) const {
    RIPPLE_ASSERT(w.index() < values_.size());
    return values_[w.index()];
  }

  /// Read a bus as seen by one lane (little-endian, like Simulator).
  [[nodiscard]] std::uint64_t read_bus(const Bus& bus, unsigned lane) const;

  /// Drive a bus with per-lane values: lane_values[i] is lane i's bus value.
  /// Transposes the 64 values into one word per bus wire.
  void drive_bus(const Bus& bus,
                 std::span<const std::uint64_t> lane_values);

  /// Drive every lane of a bus with the same value.
  void drive_bus_broadcast(const Bus& bus, std::uint64_t v);

  // --- fault injection -----------------------------------------------------

  /// Flip the state bit of one flop in every lane of `lanes` (per-lane SEU
  /// injection mask). Takes effect at the next eval().
  void flip_flop(FlopId f, LaneMask lanes);

  // --- divergence detection ------------------------------------------------

  /// Lanes whose flop state differs from `golden_lane`'s in at least one
  /// flop: one XOR against the broadcast golden bit per flop word, OR-folded
  /// into a lane mask. Bit `golden_lane` of the result is always 0.
  [[nodiscard]] LaneMask state_divergence(unsigned golden_lane) const;

private:
  const netlist::Netlist* netlist_;
  Levelization level_;
  std::vector<std::uint64_t> values_; // one word per wire
  std::vector<std::uint64_t> state_;  // one word per flop
  std::uint64_t cycle_ = 0;
};

} // namespace ripple::sim
