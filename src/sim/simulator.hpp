// Cycle-accurate two-phase gate-level simulator.
//
// Phase 1 (eval): propagate primary inputs and flop state through the
// levelized combinational logic until all wires are settled.
// Phase 2 (latch): capture every flop's D value into its state; this is the
// rising clock edge and advances the cycle counter.
//
// eval() is idempotent and may be called repeatedly within one cycle — the
// memory harnesses rely on this to model combinational-read memories outside
// the netlist (set address outputs -> eval -> feed read data back -> eval).
//
// Fault injection: flip_flop() flips one bit of the *state*, exactly the SEU
// of the paper's fault model. After a flip, call eval() to propagate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/levelize.hpp"
#include "util/bitvec.hpp"

namespace ripple::sim {

/// A little-endian group of wires treated as one value (bit 0 = LSB).
using Bus = std::vector<WireId>;

class Simulator {
public:
  explicit Simulator(const netlist::Netlist& n);

  [[nodiscard]] const netlist::Netlist& netlist() const { return *netlist_; }

  // --- per-cycle protocol --------------------------------------------------

  void set_input(WireId w, bool v);
  void eval();
  void latch();

  /// Convenience for circuits without external-memory feedback.
  void step() {
    eval();
    latch();
  }

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

  /// Reset all flops to their init values and clear the cycle counter.
  /// Inputs keep their last driven values.
  void reset();

  // --- observation ---------------------------------------------------------

  [[nodiscard]] bool value(WireId w) const {
    RIPPLE_ASSERT(w.index() < values_.size());
    return values_.get(w.index());
  }

  [[nodiscard]] std::uint64_t read_bus(const Bus& bus) const;
  void drive_bus(const Bus& bus, std::uint64_t v);

  /// Snapshot of every wire value (valid after eval()).
  [[nodiscard]] const BitVec& values() const { return values_; }

  /// Current flop state, one bit per flop in FlopId order.
  [[nodiscard]] BitVec flop_state() const;
  void set_flop_state(const BitVec& state);

  // --- fault injection ------------------------------------------------------

  /// Flip the state bit of one flop (an SEU). Call eval() afterwards.
  void flip_flop(FlopId f);

private:
  const netlist::Netlist* netlist_;
  Levelization level_;
  BitVec values_;            // per-wire settled values
  std::vector<bool> state_;  // per-flop current state
  std::uint64_t cycle_ = 0;
};

} // namespace ripple::sim
