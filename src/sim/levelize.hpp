// Topological ordering ("levelization") of the combinational gates of a
// netlist. Sources are primary inputs and flop Q outputs; a valid synchronous
// circuit has no combinational cycle. The order is reused by the simulator,
// the exact-masking oracle and the MATE search.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace ripple::sim {

struct Levelization {
  /// Gates in evaluation order (every gate appears after its input drivers).
  std::vector<GateId> order;
  /// level[gate] = 1 + max level of driving gates (sources have level 0).
  std::vector<std::uint32_t> gate_level;
  /// Maximum gate level + 1 (combinational depth of the circuit).
  std::uint32_t depth = 0;
};

/// Compute the order. Throws ripple::Error when the netlist contains a
/// combinational cycle (the message names a wire on the cycle).
[[nodiscard]] Levelization levelize(const netlist::Netlist& n);

} // namespace ripple::sim
