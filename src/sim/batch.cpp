#include "sim/batch.hpp"

#include "cell/library.hpp"

namespace ripple::sim {

using netlist::DriverKind;
using netlist::Netlist;

namespace {

/// Word-wide evaluation of one combinational cell: every expression below is
/// the cell's library truth function lifted to bitwise ops, so all 64 lanes
/// evaluate in one pass. Pin order matches cell::Info::pins (Mux2 is S,A,B).
/// batch_sim_test cross-checks every kind against the truth tables.
std::uint64_t eval_word(cell::Kind kind, const std::uint64_t* in) {
  using cell::Kind;
  switch (kind) {
    case Kind::Tie0: return 0;
    case Kind::Tie1: return ~std::uint64_t{0};
    case Kind::Buf: return in[0];
    case Kind::Inv: return ~in[0];
    case Kind::And2: return in[0] & in[1];
    case Kind::And3: return in[0] & in[1] & in[2];
    case Kind::And4: return in[0] & in[1] & in[2] & in[3];
    case Kind::Nand2: return ~(in[0] & in[1]);
    case Kind::Nand3: return ~(in[0] & in[1] & in[2]);
    case Kind::Nand4: return ~(in[0] & in[1] & in[2] & in[3]);
    case Kind::Or2: return in[0] | in[1];
    case Kind::Or3: return in[0] | in[1] | in[2];
    case Kind::Or4: return in[0] | in[1] | in[2] | in[3];
    case Kind::Nor2: return ~(in[0] | in[1]);
    case Kind::Nor3: return ~(in[0] | in[1] | in[2]);
    case Kind::Nor4: return ~(in[0] | in[1] | in[2] | in[3]);
    case Kind::Xor2: return in[0] ^ in[1];
    case Kind::Xnor2: return ~(in[0] ^ in[1]);
    case Kind::Mux2: return (in[0] & in[2]) | (~in[0] & in[1]);
    case Kind::Aoi21: return ~((in[0] & in[1]) | in[2]);
    case Kind::Aoi22: return ~((in[0] & in[1]) | (in[2] & in[3]));
    case Kind::Oai21: return ~((in[0] | in[1]) & in[2]);
    case Kind::Oai22: return ~((in[0] | in[1]) & (in[2] | in[3]));
    case Kind::Dff: break;
  }
  RIPPLE_UNREACHABLE("non-combinational cell in gate table");
}

} // namespace

BatchSimulator::BatchSimulator(const Netlist& n)
    : netlist_(&n), level_(levelize(n)), values_(n.num_wires(), 0) {
  state_.resize(n.num_flops(), 0);
  reset();
}

void BatchSimulator::reset() {
  for (FlopId f : netlist_->all_flops()) {
    state_[f.index()] = netlist_->flop(f).init ? ~std::uint64_t{0} : 0;
  }
  cycle_ = 0;
  eval();
}

void BatchSimulator::set_input(WireId w, std::uint64_t lanes) {
  RIPPLE_ASSERT(netlist_->wire(w).driver_kind == DriverKind::PrimaryInput,
                "set_input on non-input wire '", netlist_->wire(w).name, "'");
  values_[w.index()] = lanes;
}

void BatchSimulator::eval() {
  // Flop state drives Q wires.
  for (FlopId f : netlist_->all_flops()) {
    values_[netlist_->flop(f).q.index()] = state_[f.index()];
  }
  // Levelized single pass settles all combinational wires, 64 lanes at once.
  std::uint64_t in[cell::kMaxInputs];
  for (GateId g : level_.order) {
    const netlist::Gate& gate = netlist_->gate(g);
    const std::size_t n = gate.inputs.size();
    for (std::size_t p = 0; p < n; ++p) {
      in[p] = values_[gate.inputs[p].index()];
    }
    values_[gate.output.index()] = eval_word(gate.kind, in);
  }
}

void BatchSimulator::latch() {
  for (FlopId f : netlist_->all_flops()) {
    state_[f.index()] = values_[netlist_->flop(f).d.index()];
  }
  ++cycle_;
}

std::uint64_t BatchSimulator::read_bus(const Bus& bus, unsigned lane) const {
  RIPPLE_ASSERT(bus.size() <= 64 && lane < kBatchLanes);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    v |= ((values_[bus[i].index()] >> lane) & 1u) << i;
  }
  return v;
}

void BatchSimulator::drive_bus(const Bus& bus,
                               std::span<const std::uint64_t> lane_values) {
  RIPPLE_ASSERT(bus.size() <= 64 && lane_values.size() == kBatchLanes);
  for (std::size_t i = 0; i < bus.size(); ++i) {
    std::uint64_t word = 0;
    for (std::size_t lane = 0; lane < kBatchLanes; ++lane) {
      word |= ((lane_values[lane] >> i) & 1u) << lane;
    }
    set_input(bus[i], word);
  }
}

void BatchSimulator::drive_bus_broadcast(const Bus& bus, std::uint64_t v) {
  RIPPLE_ASSERT(bus.size() <= 64);
  for (std::size_t i = 0; i < bus.size(); ++i) {
    set_input(bus[i], ((v >> i) & 1u) ? ~std::uint64_t{0} : 0);
  }
}

void BatchSimulator::flip_flop(FlopId f, LaneMask lanes) {
  RIPPLE_ASSERT(f.index() < state_.size());
  state_[f.index()] ^= lanes;
}

LaneMask BatchSimulator::state_divergence(unsigned golden_lane) const {
  RIPPLE_ASSERT(golden_lane < kBatchLanes);
  LaneMask diverged = 0;
  for (const std::uint64_t s : state_) {
    // Broadcast the golden lane's bit to all 64 lanes, then XOR: a set bit
    // marks a lane disagreeing with golden on this flop.
    const std::uint64_t golden =
        static_cast<std::uint64_t>(0) - ((s >> golden_lane) & 1u);
    diverged |= s ^ golden;
  }
  return diverged;
}

} // namespace ripple::sim
