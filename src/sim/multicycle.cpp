#include "sim/multicycle.hpp"

namespace ripple::sim {

using netlist::Netlist;

MultiCycleOracle::MultiCycleOracle(const Netlist& n)
    : netlist_(&n), sim_(n) {}

void MultiCycleOracle::load_state_from(const Trace& golden, std::size_t t) {
  BitVec state(netlist_->num_flops());
  const BitVec& row = golden.cycle_values(t);
  for (FlopId f : netlist_->all_flops()) {
    state.set(f.index(), row.get(netlist_->flop(f).q.index()));
  }
  sim_.set_flop_state(state);
}

unsigned MultiCycleOracle::masked_within(FlopId f, const Trace& golden,
                                         std::size_t t, unsigned k) {
  RIPPLE_CHECK(t < golden.num_cycles(), "injection cycle beyond trace");

  load_state_from(golden, t);
  sim_.flip_flop(f);

  for (unsigned j = 0; j < k; ++j) {
    const std::size_t cycle = t + j;
    if (cycle >= golden.num_cycles()) return 0; // can't prove convergence
    const BitVec& row = golden.cycle_values(cycle);

    // Replay the recorded environment.
    for (WireId in : netlist_->primary_inputs()) {
      sim_.set_input(in, row.get(in.index()));
    }
    sim_.eval();

    // Outputs must match the golden run while the fault is live.
    for (WireId out : netlist_->primary_outputs()) {
      if (sim_.value(out) != row.get(out.index())) return 0;
    }
    sim_.latch();

    // Converged when the next-cycle state equals the golden state.
    if (cycle + 1 < golden.num_cycles()) {
      const BitVec& next = golden.cycle_values(cycle + 1);
      bool equal = true;
      const BitVec state = sim_.flop_state();
      for (FlopId g : netlist_->all_flops()) {
        if (state.get(g.index()) !=
            next.get(netlist_->flop(g).q.index())) {
          equal = false;
          break;
        }
      }
      if (equal) return j + 1;
    }
  }
  return 0;
}

} // namespace ripple::sim
