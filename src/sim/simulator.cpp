#include "sim/simulator.hpp"

namespace ripple::sim {

using netlist::DriverKind;
using netlist::Netlist;

Simulator::Simulator(const Netlist& n)
    : netlist_(&n), level_(levelize(n)), values_(n.num_wires()) {
  state_.resize(n.num_flops());
  reset();
}

void Simulator::reset() {
  for (FlopId f : netlist_->all_flops()) {
    state_[f.index()] = netlist_->flop(f).init;
  }
  cycle_ = 0;
  eval();
}

void Simulator::set_input(WireId w, bool v) {
  RIPPLE_ASSERT(netlist_->wire(w).driver_kind == DriverKind::PrimaryInput,
                "set_input on non-input wire '", netlist_->wire(w).name, "'");
  values_.set(w.index(), v);
}

void Simulator::eval() {
  // Flop state drives Q wires.
  for (FlopId f : netlist_->all_flops()) {
    values_.set(netlist_->flop(f).q.index(), state_[f.index()]);
  }
  // Levelized single pass settles all combinational wires.
  const cell::Library& lib = cell::Library::instance();
  for (GateId g : level_.order) {
    const netlist::Gate& gate = netlist_->gate(g);
    std::uint32_t packed = 0;
    for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
      packed |= static_cast<std::uint32_t>(
                    values_.get(gate.inputs[p].index()))
                << p;
    }
    values_.set(gate.output.index(), lib.eval(gate.kind, packed));
  }
}

void Simulator::latch() {
  for (FlopId f : netlist_->all_flops()) {
    state_[f.index()] = values_.get(netlist_->flop(f).d.index());
  }
  ++cycle_;
}

std::uint64_t Simulator::read_bus(const Bus& bus) const {
  RIPPLE_ASSERT(bus.size() <= 64);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    v |= static_cast<std::uint64_t>(value(bus[i])) << i;
  }
  return v;
}

void Simulator::drive_bus(const Bus& bus, std::uint64_t v) {
  RIPPLE_ASSERT(bus.size() <= 64);
  for (std::size_t i = 0; i < bus.size(); ++i) {
    set_input(bus[i], (v >> i) & 1u);
  }
}

BitVec Simulator::flop_state() const {
  BitVec s(state_.size());
  for (std::size_t i = 0; i < state_.size(); ++i) s.set(i, state_[i]);
  return s;
}

void Simulator::set_flop_state(const BitVec& state) {
  RIPPLE_ASSERT(state.size() == state_.size());
  for (std::size_t i = 0; i < state_.size(); ++i) state_[i] = state.get(i);
}

void Simulator::flip_flop(FlopId f) {
  RIPPLE_ASSERT(f.index() < state_.size());
  state_[f.index()] = !state_[f.index()];
}

} // namespace ripple::sim
