#include "sim/oracle.hpp"

#include <algorithm>

namespace ripple::sim {

using netlist::Netlist;

MaskingOracle::MaskingOracle(const Netlist& n) : netlist_(&n) {
  const Levelization level = levelize(n);

  // Position of every gate in the global levelized order, to sort cone gates
  // (kept for merging group cones later).
  order_pos_.assign(n.num_gates(), 0);
  std::vector<std::uint32_t>& order_pos = order_pos_;
  for (std::size_t i = 0; i < level.order.size(); ++i) {
    order_pos[level.order[i].index()] = static_cast<std::uint32_t>(i);
  }

  cones_.resize(n.num_flops());
  std::vector<std::uint8_t> wire_in_cone(n.num_wires());
  std::vector<std::uint8_t> gate_in_cone(n.num_gates());

  for (FlopId f : n.all_flops()) {
    Cone& cone = cones_[f.index()];
    std::fill(wire_in_cone.begin(), wire_in_cone.end(), 0);
    std::fill(gate_in_cone.begin(), gate_in_cone.end(), 0);

    const WireId q = n.flop(f).q;
    std::vector<WireId> frontier = {q};
    wire_in_cone[q.index()] = 1;

    while (!frontier.empty()) {
      const WireId w = frontier.back();
      frontier.pop_back();
      for (GateId g : n.wire(w).gate_fanout) {
        if (gate_in_cone[g.index()]) continue;
        gate_in_cone[g.index()] = 1;
        cone.gates.push_back(g);
        const WireId y = n.gate(g).output;
        if (!wire_in_cone[y.index()]) {
          wire_in_cone[y.index()] = 1;
          frontier.push_back(y);
        }
      }
    }

    std::sort(cone.gates.begin(), cone.gates.end(),
              [&](GateId a, GateId b) {
                return order_pos[a.index()] < order_pos[b.index()];
              });

    for (WireId w : n.all_wires()) {
      if (!wire_in_cone[w.index()]) continue;
      const netlist::Wire& wire = n.wire(w);
      if (wire.is_primary_output || !wire.flop_fanout.empty()) {
        cone.observers.push_back(w);
      }
    }
  }
}

bool MaskingOracle::masked(FlopId f, const BitVec& values,
                           Workspace& ws) const {
  RIPPLE_ASSERT(values.size() == netlist_->num_wires(),
                "value snapshot size mismatch");
  const Cone& cone = cones_[f.index()];
  const Netlist& n = *netlist_;

  // Reset workspace from the previous query.
  for (std::uint32_t idx : ws.touched_list_) ws.touched_[idx] = 0;
  ws.touched_list_.clear();

  const auto read = [&](WireId w) -> bool {
    return ws.touched_[w.index()] ? (ws.overlay_[w.index()] != 0)
                                  : values.get(w.index());
  };
  const auto write = [&](WireId w, bool v) {
    if (!ws.touched_[w.index()]) {
      ws.touched_[w.index()] = 1;
      ws.touched_list_.push_back(static_cast<std::uint32_t>(w.index()));
    }
    ws.overlay_[w.index()] = v ? 1 : 0;
  };

  const WireId q = n.flop(f).q;
  write(q, !values.get(q.index()));

  const cell::Library& lib = cell::Library::instance();
  for (GateId g : cone.gates) {
    const netlist::Gate& gate = n.gate(g);
    std::uint32_t packed = 0;
    for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
      packed |= static_cast<std::uint32_t>(read(gate.inputs[p])) << p;
    }
    write(gate.output, lib.eval(gate.kind, packed));
  }

  for (WireId o : cone.observers) {
    if (read(o) != values.get(o.index())) return false;
  }
  return true;
}

bool MaskingOracle::masked_group(std::span<const FlopId> group,
                                 const BitVec& values, Workspace& ws) const {
  RIPPLE_CHECK(!group.empty(), "empty fault group");
  if (group.size() == 1) return masked(group[0], values, ws);
  const Netlist& n = *netlist_;

  for (std::uint32_t idx : ws.touched_list_) ws.touched_[idx] = 0;
  ws.touched_list_.clear();

  const auto read = [&](WireId w) -> bool {
    return ws.touched_[w.index()] ? (ws.overlay_[w.index()] != 0)
                                  : values.get(w.index());
  };
  const auto write = [&](WireId w, bool v) {
    if (!ws.touched_[w.index()]) {
      ws.touched_[w.index()] = 1;
      ws.touched_list_.push_back(static_cast<std::uint32_t>(w.index()));
    }
    ws.overlay_[w.index()] = v ? 1 : 0;
  };

  for (FlopId f : group) {
    const WireId q = n.flop(f).q;
    write(q, !values.get(q.index()));
  }

  // Merge the precomputed cones (gates deduplicated, re-sorted by the global
  // levelized position) and the observer sets.
  std::vector<GateId> gates;
  std::vector<WireId> observers;
  for (FlopId f : group) {
    const Cone& cone = cones_[f.index()];
    gates.insert(gates.end(), cone.gates.begin(), cone.gates.end());
    observers.insert(observers.end(), cone.observers.begin(),
                     cone.observers.end());
  }
  std::sort(gates.begin(), gates.end(), [&](GateId a, GateId b) {
    return order_pos_[a.index()] < order_pos_[b.index()];
  });
  gates.erase(std::unique(gates.begin(), gates.end()), gates.end());
  std::sort(observers.begin(), observers.end());
  observers.erase(std::unique(observers.begin(), observers.end()),
                  observers.end());

  const cell::Library& lib = cell::Library::instance();
  for (GateId g : gates) {
    const netlist::Gate& gate = n.gate(g);
    std::uint32_t packed = 0;
    for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
      packed |= static_cast<std::uint32_t>(read(gate.inputs[p])) << p;
    }
    write(gate.output, lib.eval(gate.kind, packed));
  }

  for (WireId o : observers) {
    if (read(o) != values.get(o.index())) return false;
  }
  return true;
}

} // namespace ripple::sim
