// Column-major ("transposed") traces for bit-parallel MATE evaluation.
//
// A Trace stores one wire-value BitVec per cycle (row-major: the natural
// output order of the simulator). The bit-parallel evaluation engine wants
// the opposite layout: per wire, one cycle-packed bitstream, so that 64
// cycles of a literal test collapse into a single XOR+AND on machine words.
// A TransposedTrace is built once from a Trace (64x64 bit-matrix block
// transpose) and is reusable across evaluate_mates and rank_mates runs on
// the same trace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/trace.hpp"
#include "util/assert.hpp"

namespace ripple::sim {

namespace detail {
/// In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3, widened to 64
/// bits). With the rows loaded in reverse order, the result rows come out in
/// reverse order too, which the caller undoes when scattering into the wire
/// streams. Shared between the whole-trace TransposedTrace constructor and
/// the chunked recorder (sim/stream.hpp).
void transpose64(std::uint64_t x[64]);
} // namespace detail

class TransposedTrace {
public:
  TransposedTrace() = default;
  explicit TransposedTrace(const Trace& trace);

  [[nodiscard]] std::size_t num_wires() const { return num_wires_; }
  [[nodiscard]] std::size_t num_cycles() const { return num_cycles_; }

  /// Number of 64-cycle blocks = words per wire stream.
  [[nodiscard]] std::size_t num_blocks() const { return num_blocks_; }

  /// Wire `wire`'s cycle stream: bit c of word b is the wire's value in
  /// cycle 64*b + c. Bits past num_cycles() in the last word are zero.
  [[nodiscard]] std::span<const std::uint64_t> wire_stream(
      std::size_t wire) const {
    RIPPLE_ASSERT(wire < num_wires_, "wire ", wire, " out of range ",
                  num_wires_);
    return {bits_.data() + wire * num_blocks_, num_blocks_};
  }

  /// Mask of the cycles that exist in block `block`: all-ones except for
  /// the final block of a trace whose length is not a multiple of 64.
  [[nodiscard]] std::uint64_t block_mask(std::size_t block) const {
    RIPPLE_ASSERT(block < num_blocks_);
    const std::size_t rem = num_cycles_ % 64;
    if (block + 1 < num_blocks_ || rem == 0) return ~std::uint64_t{0};
    return ~std::uint64_t{0} >> (64 - rem);
  }

  /// Single-bit probe (tests / debugging; hot paths read wire_stream()).
  [[nodiscard]] bool value(std::size_t cycle, WireId w) const {
    RIPPLE_ASSERT(cycle < num_cycles_);
    const std::span<const std::uint64_t> s = wire_stream(w.index());
    return (s[cycle >> 6] >> (cycle & 63)) & 1u;
  }

  /// Raw backing words, wire-major (serialization).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return bits_;
  }

  /// Rebuild from serialized words (artifact deserialization). `words` must
  /// hold num_wires * ceil(num_cycles / 64) entries.
  [[nodiscard]] static TransposedTrace from_words(
      std::size_t num_wires, std::size_t num_cycles,
      std::vector<std::uint64_t> words);

private:
  std::size_t num_wires_ = 0;
  std::size_t num_cycles_ = 0;
  std::size_t num_blocks_ = 0;
  std::vector<std::uint64_t> bits_; // wire-major, num_blocks_ words per wire
};

} // namespace ripple::sim
