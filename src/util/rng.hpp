// Deterministic pseudo-random number generation.
//
// All randomized components (random-netlist generator, campaign sampling,
// property tests) take an explicit seed so every run is reproducible; we use
// splitmix64/xoshiro256** rather than std::mt19937 to guarantee identical
// streams across standard libraries.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace ripple {

/// xoshiro256** seeded via splitmix64. Small, fast, reproducible.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t next_below(std::uint64_t bound) {
    RIPPLE_ASSERT(bound > 0);
    // Rejection-free is fine for our non-cryptographic uses; the bias for
    // bound << 2^64 is negligible, but keep a single rejection round to stay
    // exactly uniform for tests that count outcomes.
    while (true) {
      const std::uint64_t x = next_u64();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (0 - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  bool next_bool() { return (next_u64() >> 63) != 0; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

} // namespace ripple
