// Little binary writer/reader pair for pipeline artifacts.
//
// All multi-byte integers are stored little-endian and fixed-width, so the
// byte stream doubles as the canonical form for content hashing: two values
// serialize identically iff the serializer writes identical fields. The
// reader validates every access against the buffer bounds and throws
// ripple::Error on truncated or trailing data, which the artifact cache
// treats as a miss.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace ripple {

class ByteWriter {
public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void u64_vec(std::span<const std::uint64_t> v) {
    u64(v.size());
    for (std::uint64_t x : v) u64(x);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  [[nodiscard]] bool b() { return u8() != 0; }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  [[nodiscard]] std::vector<std::uint8_t> blob(std::uint64_t n) {
    need(n);
    std::vector<std::uint8_t> v(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  [[nodiscard]] std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t n = u64();
    need(n * 8);
    std::vector<std::uint64_t> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
    return v;
  }

  /// A size field about to drive a reserve/resize; bounded by the remaining
  /// bytes so corrupt input cannot trigger huge allocations.
  [[nodiscard]] std::size_t count(std::size_t min_bytes_per_item = 1) {
    const std::uint64_t n = u64();
    RIPPLE_CHECK(n * min_bytes_per_item <= remaining(),
                 "artifact count field exceeds payload size");
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

  void expect_done() const {
    RIPPLE_CHECK(done(), "trailing bytes in artifact payload");
  }

private:
  void need(std::uint64_t n) const {
    RIPPLE_CHECK(n <= remaining(), "artifact payload truncated");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

} // namespace ripple
