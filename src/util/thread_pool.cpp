#include "util/thread_pool.hpp"

#include "util/assert.hpp"

namespace ripple {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Dynamic chunking: one atomic counter, each worker claims indices until
  // exhausted. Chunk size 1 is fine -- work items (one MATE search per wire)
  // are large compared to the atomic increment.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto remaining = std::make_shared<std::atomic<std::size_t>>(n);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error_ptr = std::make_shared<std::exception_ptr>();
  auto done_mutex = std::make_shared<std::mutex>();
  auto done_cv = std::make_shared<std::condition_variable>();

  auto body = [=, &fn] {
    while (true) {
      const std::size_t i = next->fetch_add(1);
      if (i >= n) break;
      try {
        if (!first_error->load(std::memory_order_relaxed)) fn(i);
      } catch (...) {
        bool expected = false;
        if (first_error->compare_exchange_strong(expected, true)) {
          *error_ptr = std::current_exception();
        }
      }
      if (remaining->fetch_sub(1) == 1) {
        std::lock_guard lock(*done_mutex);
        done_cv->notify_all();
      }
    }
  };

  const std::size_t jobs = std::min(n, workers_.size());
  {
    std::lock_guard lock(mutex_);
    RIPPLE_ASSERT(!stopping_);
    for (std::size_t i = 0; i < jobs; ++i) queue_.push(body);
  }
  cv_.notify_all();

  // The calling thread participates too, so a pool is usable even with
  // a single worker under heavy nesting.
  body();

  std::unique_lock lock(*done_mutex);
  done_cv->wait(lock, [&] { return remaining->load() == 0; });

  if (*error_ptr) std::rethrow_exception(*error_ptr);
}

} // namespace ripple
