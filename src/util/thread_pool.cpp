#include "util/thread_pool.hpp"

#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace ripple {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

namespace {

/// Shared state of one parallel_for_index call; a single heap allocation
/// instead of one std::function per index. Workers may still observe the
/// claim counter after the caller finished waiting, so the state is kept
/// alive by shared_ptr until the last enqueued job returns.
struct ForLoopState {
  std::size_t n = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* fn = nullptr; // valid while remaining > 0
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  /// Claim and run batches until the index space is exhausted.
  void drain() {
    while (true) {
      const std::size_t begin = next.fetch_add(grain);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + grain);
      obs::Span span("pool", "batch");
      for (std::size_t i = begin; i < end; ++i) {
        try {
          if (!failed.load(std::memory_order_relaxed)) (*fn)(i);
        } catch (...) {
          bool expected = false;
          if (failed.compare_exchange_strong(expected, true)) {
            error = std::current_exception();
          }
        }
      }
      if (remaining.fetch_sub(end - begin) == end - begin) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

} // namespace

void ThreadPool::parallel_for_index(std::size_t n,
                                    const std::function<void(std::size_t)>& fn,
                                    std::size_t grain) {
  if (n == 0) return;

  const std::size_t participants = workers_.size() + 1; // pool + caller
  if (grain == 0) {
    // A few batches per participant: large enough that scheduling (one
    // atomic fetch_add per batch) is noise even for per-index work in the
    // tens of nanoseconds, small enough that skewed item costs (MATE search
    // cones differ by orders of magnitude) still rebalance.
    grain = std::max<std::size_t>(1, n / (participants * 8));
  }

  auto state = std::make_shared<ForLoopState>();
  state->n = n;
  state->grain = grain;
  state->fn = &fn;
  state->remaining.store(n);

  const std::size_t jobs =
      std::min((n + grain - 1) / grain, workers_.size());
  {
    std::lock_guard lock(mutex_);
    RIPPLE_ASSERT(!stopping_);
    for (std::size_t i = 0; i < jobs; ++i) {
      queue_.push([state] { state->drain(); });
    }
  }
  cv_.notify_all();

  // The calling thread participates too, so a pool is usable even with
  // a single worker under heavy nesting.
  state->drain();

  std::unique_lock lock(state->done_mutex);
  state->done_cv.wait(lock, [&] { return state->remaining.load() == 0; });

  if (state->error) std::rethrow_exception(state->error);
}

} // namespace ripple
