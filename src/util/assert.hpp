// Assertion and error-handling primitives used across the RIPPLE libraries.
//
// Two families:
//   RIPPLE_ASSERT(cond, msg...)  -- internal invariant; violation is a bug in
//                                   this library. Throws ripple::InternalError
//                                   so tests can observe violations portably.
//   RIPPLE_CHECK(cond, msg...)   -- validation of caller-supplied data (bad
//                                   netlist, malformed assembly, ...). Throws
//                                   ripple::Error with a formatted message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ripple {

/// Base class for all errors raised by RIPPLE on invalid user input.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an internal invariant of the library is violated (a bug).
class InternalError : public std::logic_error {
public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

template <typename... Parts>
std::string concat_message(const char* prefix, const char* file, int line,
                           const char* cond, const Parts&... parts) {
  std::ostringstream os;
  os << prefix << " at " << file << ':' << line << ": (" << cond << ")";
  if constexpr (sizeof...(parts) > 0) {
    os << " -- ";
    (os << ... << parts);
  }
  return os.str();
}

} // namespace detail
} // namespace ripple

#define RIPPLE_ASSERT(cond, ...)                                               \
  do {                                                                         \
    if (!(cond)) {                                                             \
      throw ::ripple::InternalError(::ripple::detail::concat_message(          \
          "internal error", __FILE__, __LINE__, #cond __VA_OPT__(, )           \
              __VA_ARGS__));                                                   \
    }                                                                          \
  } while (0)

#define RIPPLE_CHECK(cond, ...)                                                \
  do {                                                                         \
    if (!(cond)) {                                                             \
      throw ::ripple::Error(::ripple::detail::concat_message(                  \
          "invalid input", __FILE__, __LINE__, #cond __VA_OPT__(, )            \
              __VA_ARGS__));                                                   \
    }                                                                          \
  } while (0)

#define RIPPLE_UNREACHABLE(msg)                                                \
  throw ::ripple::InternalError(::ripple::detail::concat_message(              \
      "unreachable", __FILE__, __LINE__, "false", msg))
