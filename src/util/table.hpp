// ASCII table rendering for the benchmark harnesses.
//
// Every bench binary reproduces one table/figure of the paper; TablePrinter
// renders the same row/column layout the paper uses, plus a CSV mode so
// results can be diffed or plotted.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ripple {

class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator row.
  void add_separator();

  /// Render with aligned columns (first column left, others right).
  void print(std::ostream& os) const;

  /// Render as CSV (separators skipped).
  void print_csv(std::ostream& os) const;

private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

/// Format helpers used by the benches.
std::string fmt_percent(double fraction, int decimals = 2);
std::string fmt_count(std::size_t n);       // 24 536 style thousands grouping
std::string fmt_sci(double v);              // 3e+07 style
std::string fmt_mean_sd(double mean, double sd, int decimals = 1);

} // namespace ripple
