// Content hashing for the artifact cache (FNV-1a, 64 bit).
//
// Cache keys are derived by hashing the serialized form of pipeline inputs
// (netlist fingerprint, fault set, search parameters). FNV-1a is not
// cryptographic — it only has to make accidental collisions between distinct
// parameter sets vanishingly unlikely, and it keeps the repo dependency-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace ripple {

class Hasher {
public:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
  }

  void update_bytes(std::span<const std::uint8_t> bytes) {
    update(bytes.data(), bytes.size());
  }

  /// Hash a trivially copyable value by its object representation. Only use
  /// with fixed-width integer/float types — padding would leak indeterminate
  /// bytes into the key.
  template <typename T>
  void update_value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    update(&v, sizeof(v));
  }

  /// Length-prefixed, so ("ab","c") and ("a","bc") hash differently.
  void update_string(std::string_view s) {
    update_value(static_cast<std::uint64_t>(s.size()));
    update(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t digest() const { return state_; }

private:
  std::uint64_t state_ = kOffset;
};

[[nodiscard]] inline std::uint64_t hash_bytes(
    std::span<const std::uint8_t> bytes) {
  Hasher h;
  h.update_bytes(bytes);
  return h.digest();
}

/// Fixed-width lower-case hex form used for cache file names.
[[nodiscard]] inline std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

} // namespace ripple
