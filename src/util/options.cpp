#include "util/options.hpp"

#include <cstdio>
#include <iostream>

#include "util/strings.hpp"

namespace ripple {

OptionParser::OptionParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void OptionParser::add_flag(std::string name, std::string help, bool* out) {
  Option o;
  o.name = std::move(name);
  o.help = std::move(help);
  o.kind = ValueKind::Flag;
  o.flag_out = out;
  options_.push_back(std::move(o));
}

void OptionParser::add_value(std::string name, std::string help,
                             std::string* out) {
  Option o;
  o.name = std::move(name);
  o.help = std::move(help);
  o.kind = ValueKind::String;
  o.string_out = out;
  options_.push_back(std::move(o));
}

void OptionParser::add_value(std::string name, std::string help,
                             std::size_t* out) {
  Option o;
  o.name = std::move(name);
  o.help = std::move(help);
  o.kind = ValueKind::Size;
  o.size_out = out;
  options_.push_back(std::move(o));
}

void OptionParser::add_value(std::string name, std::string help,
                             unsigned* out) {
  Option o;
  o.name = std::move(name);
  o.help = std::move(help);
  o.kind = ValueKind::Unsigned;
  o.unsigned_out = out;
  options_.push_back(std::move(o));
}

void OptionParser::set_positional(std::string name, std::string help,
                                  std::vector<std::string>* out) {
  positional_name_ = std::move(name);
  positional_help_ = std::move(help);
  positional_out_ = out;
}

bool OptionParser::apply(Option& opt, std::string_view value) {
  switch (opt.kind) {
    case ValueKind::Flag:
      *opt.flag_out = true;
      return true;
    case ValueKind::String:
      *opt.string_out = std::string(value);
      return true;
    case ValueKind::Size:
    case ValueKind::Unsigned: {
      const auto parsed = parse_int(value);
      if (!parsed || *parsed < 0) {
        std::cerr << program_ << ": --" << opt.name
                  << " expects a non-negative integer, got '" << value
                  << "'\n";
        return false;
      }
      if (opt.kind == ValueKind::Size) {
        *opt.size_out = static_cast<std::size_t>(*parsed);
      } else {
        *opt.unsigned_out = static_cast<unsigned>(*parsed);
      }
      return true;
    }
  }
  return false;
}

OptionParser::Result OptionParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return Result::Help;
    }
    if (!arg.starts_with("--")) {
      if (positional_out_ == nullptr) {
        std::cerr << program_ << ": unexpected argument '" << arg
                  << "' (see --help)\n";
        return Result::Error;
      }
      positional_out_->emplace_back(arg);
      continue;
    }

    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? body : body.substr(0, eq);

    Option* match = nullptr;
    for (Option& o : options_) {
      if (o.name == name) {
        match = &o;
        break;
      }
    }
    if (match == nullptr) {
      std::cerr << program_ << ": unknown option '--" << name
                << "' (see --help)\n";
      return Result::Error;
    }

    std::string_view value;
    if (eq != std::string_view::npos) {
      if (match->kind == ValueKind::Flag) {
        std::cerr << program_ << ": --" << match->name
                  << " does not take a value\n";
        return Result::Error;
      }
      value = body.substr(eq + 1);
    } else if (match->kind != ValueKind::Flag) {
      if (i + 1 >= argc) {
        std::cerr << program_ << ": --" << match->name << " needs a value\n";
        return Result::Error;
      }
      value = argv[++i];
    }
    if (!apply(*match, value)) return Result::Error;
  }
  return Result::Ok;
}

void OptionParser::print_usage(std::ostream& os) const {
  os << "usage: " << program_ << " [options]";
  if (positional_out_ != nullptr) os << " [" << positional_name_ << "...]";
  os << "\n";
  if (!description_.empty()) os << "\n" << description_ << "\n";
  os << "\noptions:\n";
  for (const Option& o : options_) {
    std::string left = "  --" + o.name;
    if (o.kind != ValueKind::Flag) left += "=<value>";
    os << left;
    if (left.size() < 26) os << std::string(26 - left.size(), ' ');
    else os << "\n" << std::string(26, ' ');
    os << o.help << "\n";
  }
  if (positional_out_ != nullptr && !positional_help_.empty()) {
    os << "\n" << positional_name_ << ": " << positional_help_ << "\n";
  }
  os << "  --help                  show this help\n";
}

} // namespace ripple
