// Minimal command-line option parser shared by the bench and example
// binaries (replaces the ad-hoc `want_csv` argv scan).
//
// Supports long options only ("--name", "--name=value", "--name value"),
// a built-in "--help", and free positional arguments. Each binary registers
// the handful of flags it understands; the pipeline layer contributes the
// shared set (--csv, --cache-dir, --threads, --depth, --no-cache,
// --report=json) on top.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ripple {

class OptionParser {
public:
  enum class Result {
    Ok,    // all arguments consumed
    Help,  // --help given; usage printed to stdout
    Error, // unknown/malformed argument; message printed to stderr
  };

  OptionParser(std::string program, std::string description);

  /// Boolean switch: present -> true.
  void add_flag(std::string name, std::string help, bool* out);

  /// Valued options; "--name=V" and "--name V" both work.
  void add_value(std::string name, std::string help, std::string* out);
  void add_value(std::string name, std::string help, std::size_t* out);
  void add_value(std::string name, std::string help, unsigned* out);

  /// Collect non-option arguments (in order). Without this, positional
  /// arguments are an error.
  void set_positional(std::string name, std::string help,
                      std::vector<std::string>* out);

  [[nodiscard]] Result parse(int argc, char** argv);

  void print_usage(std::ostream& os) const;

private:
  enum class ValueKind { Flag, String, Size, Unsigned };

  struct Option {
    std::string name; // without the leading "--"
    std::string help;
    ValueKind kind = ValueKind::Flag;
    bool* flag_out = nullptr;
    std::string* string_out = nullptr;
    std::size_t* size_out = nullptr;
    unsigned* unsigned_out = nullptr;
  };

  [[nodiscard]] bool apply(Option& opt, std::string_view value);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::string positional_name_;
  std::string positional_help_;
  std::vector<std::string>* positional_out_ = nullptr;
};

} // namespace ripple
