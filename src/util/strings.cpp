#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ripple {

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;

  bool negative = false;
  if (s.front() == '-' || s.front() == '+') {
    negative = s.front() == '-';
    s.remove_prefix(1);
    if (s.empty()) return std::nullopt;
  }

  int base = 10;
  if (starts_with(s, "0x") || starts_with(s, "0X")) {
    base = 16;
    s.remove_prefix(2);
  } else if (starts_with(s, "0b") || starts_with(s, "0B")) {
    base = 2;
    s.remove_prefix(2);
  } else if (s.front() == '$') {
    base = 16;
    s.remove_prefix(1);
  } else if (s.front() == '%') {
    base = 2;
    s.remove_prefix(1);
  }
  if (s.empty()) return std::nullopt;

  std::int64_t value = 0;
  for (char c : s) {
    if (c == '_') continue; // digit separator, assembler convenience
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F')
      digit = c - 'A' + 10;
    else
      return std::nullopt;
    if (digit >= base) return std::nullopt;
    value = value * base + digit;
  }
  return negative ? -value : value;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (len < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(len), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  const auto tail = [&](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$' || c == '.';
  };
  if (!head(s.front())) return false;
  for (char c : s.substr(1)) {
    if (!tail(c)) return false;
  }
  return true;
}

} // namespace ripple
