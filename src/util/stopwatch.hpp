// Wall-clock stopwatch for the run-time rows of the benchmark tables.
#pragma once

#include <chrono>
#include <cstddef>

namespace ripple {

class Stopwatch {
public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

} // namespace ripple
