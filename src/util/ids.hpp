// Strongly typed integer identifiers.
//
// Netlists index wires, gates and flops by dense integers. Using a distinct
// type per entity prevents accidentally indexing a gate table with a wire id.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace ripple {

/// A dense, strongly typed index. `Tag` is a phantom type; `Id<WireTag>` and
/// `Id<GateTag>` do not convert into each other.
template <typename Tag>
class Id {
public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid =
      std::numeric_limits<value_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  constexpr auto operator<=>(const Id&) const = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << Tag::prefix() << "<invalid>";
    return os << Tag::prefix() << id.value();
  }

private:
  value_type value_ = kInvalid;
};

struct WireTag {
  static constexpr const char* prefix() { return "w"; }
};
struct GateTag {
  static constexpr const char* prefix() { return "g"; }
};
struct FlopTag {
  static constexpr const char* prefix() { return "ff"; }
};
struct MateTag {
  static constexpr const char* prefix() { return "m"; }
};

using WireId = Id<WireTag>;
using GateId = Id<GateTag>;
using FlopId = Id<FlopTag>;
using MateId = Id<MateTag>;

} // namespace ripple

namespace std {
template <typename Tag>
struct hash<ripple::Id<Tag>> {
  size_t operator()(ripple::Id<Tag> id) const noexcept {
    return std::hash<typename ripple::Id<Tag>::value_type>{}(id.value());
  }
};
} // namespace std
