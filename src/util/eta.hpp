// Shared ETA estimation (next to stopwatch.hpp, split out so timing-only
// users don't pull it in). Used by the campaign shard narration and by the
// daemon's live Stats responses.
#pragma once

#include <cstddef>

namespace ripple {

/// ETA estimation over a stream of equally shaped work units (e.g. campaign
/// shards): feed per-unit wall times, ask for the projected remaining time.
/// Units served from a cache/checkpoint should not be fed — they would
/// drag the average toward zero.
class EtaTracker {
public:
  void add(double seconds) {
    ++units_;
    total_seconds_ += seconds;
  }

  [[nodiscard]] std::size_t units() const { return units_; }
  [[nodiscard]] double total_seconds() const { return total_seconds_; }

  /// Projected seconds for `remaining` more units; 0 before the first add()
  /// (no basis for an estimate yet).
  [[nodiscard]] double eta_seconds(std::size_t remaining) const {
    if (units_ == 0) return 0.0;
    return total_seconds_ / static_cast<double>(units_) *
           static_cast<double>(remaining);
  }

private:
  std::size_t units_ = 0;
  double total_seconds_ = 0.0;
};

} // namespace ripple
