#include "util/table.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace ripple {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RIPPLE_CHECK(!headers_.empty(), "a table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  RIPPLE_CHECK(cells.size() == headers_.size(), "row has ", cells.size(),
               " cells, table has ", headers_.size(), " columns");
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::add_separator() { rows_.push_back(Row{true, {}}); }

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      const std::size_t pad = widths[c] - cells[c].size();
      if (c == 0) {
        os << cells[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cells[c];
      }
    }
    os << " |\n";
  };

  const auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+" : "-+") << std::string(widths[c] + 1, '-');
    }
    os << "-+\n";
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      print_rule();
    } else {
      print_cells(row.cells);
    }
  }
  print_rule();
}

void TablePrinter::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    if (!row.separator) emit(row.cells);
  }
}

std::string fmt_percent(double fraction, int decimals) {
  return strprintf("%.*f %%", decimals, fraction * 100.0);
}

std::string fmt_count(std::size_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  const std::size_t len = digits.size();
  for (std::size_t i = 0; i < len; ++i) {
    if (i != 0 && (len - i) % 3 == 0) out += ' ';
    out += digits[i];
  }
  return out;
}

std::string fmt_sci(double v) {
  if (v == 0) return "0";
  const int exp = static_cast<int>(std::floor(std::log10(std::fabs(v))));
  const double mant = v / std::pow(10.0, exp);
  return strprintf("%.0f*10^%d", mant, exp);
}

std::string fmt_mean_sd(double mean, double sd, int decimals) {
  return strprintf("%.*f +- %.*f", decimals, mean, decimals, sd);
}

} // namespace ripple
