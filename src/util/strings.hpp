// Small string utilities shared by the netlist/assembler parsers and the
// table printers. Kept deliberately allocation-light: parsers work on
// string_views into the source text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ripple {

/// Strip leading and trailing whitespace (space, tab, CR, LF).
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are kept.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// Split on runs of whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a signed integer with optional 0x/0b prefix or '$hex'/'%bin' (as
/// used in assembler sources). Returns nullopt on malformed input.
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view s);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Lower-case ASCII copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// True if `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_$.]*
[[nodiscard]] bool is_identifier(std::string_view s);

} // namespace ripple
