// A minimal fixed-size thread pool.
//
// The MATE search is embarrassingly parallel over faulty wires (the paper
// parallelized the same axis with multiprocessing); parallel_for_index is the
// only primitive it needs. Work is claimed in chunks off a shared atomic
// counter (dynamic scheduling), so per-index overhead stays negligible even
// for fine-grained loops while skewed item costs still balance across
// workers. Exceptions thrown by work items are captured and rethrown on the
// caller's thread (first one wins).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ripple {

class ThreadPool {
public:
  /// `threads == 0` selects hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Run `fn(i)` for every i in [0, n), distributing work over the pool.
  /// Blocks until all iterations finished. Rethrows the first exception.
  /// `grain` is the number of indices claimed per scheduling step; 0 picks
  /// a batch size from n and the worker count (n/threads split into a few
  /// waves so uneven item costs can still rebalance).
  void parallel_for_index(std::size_t n,
                          const std::function<void(std::size_t)>& fn,
                          std::size_t grain = 0);

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

} // namespace ripple
