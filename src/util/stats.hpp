// Tiny descriptive-statistics helpers for the evaluation tables
// (average/median cone sizes, mean +- sd of MATE input counts, ...).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace ripple {

template <typename T>
double mean(const std::vector<T>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const T& x : v) sum += static_cast<double>(x);
  return sum / static_cast<double>(v.size());
}

/// Population standard deviation.
template <typename T>
double stddev(const std::vector<T>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (const T& x : v) {
    const double d = static_cast<double>(x) - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(v.size()));
}

/// Median; averages the two middle elements for even sizes. Copies the input
/// (callers keep their data; sizes here are a few hundred elements).
template <typename T>
double median(std::vector<T> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double hi = static_cast<double>(v[mid]);
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   v.end());
  return (static_cast<double>(v[mid - 1]) + hi) / 2.0;
}

} // namespace ripple
