#include "util/socket.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace ripple {
namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  RIPPLE_CHECK(path.size() < sizeof(addr.sun_path),
               "unix socket path too long (", path.size(), " bytes): ", path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

[[noreturn]] void throw_errno(const char* what, const std::string& detail) {
  throw Error(strprintf("%s failed (%s): %s", what, detail.c_str(),
                        std::strerror(errno)));
}

} // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket Socket::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket", path);
  Socket s(fd);
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect", path);
  }
  return s;
}

void Socket::send_all(std::span<const std::uint8_t> data) {
  RIPPLE_CHECK(valid(), "send on a closed socket");
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send", strprintf("fd %d", fd_));
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_all(std::span<std::uint8_t> data) {
  RIPPLE_CHECK(valid(), "recv on a closed socket");
  std::size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::recv(fd_, data.data() + got, data.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv", strprintf("fd %d", fd_));
    }
    if (n == 0) {
      if (got == 0) return false; // clean EOF on a message boundary
      throw Error(strprintf("connection closed mid-message (%zu of %zu bytes)",
                            got, data.size()));
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixListener::UnixListener(std::string path, int backlog)
    : path_(std::move(path)) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket", path_);
  // A previous daemon's stale socket file would fail the bind; binding is
  // the ownership claim, so removing it first is safe.
  ::unlink(path_.c_str());
  const sockaddr_un addr = make_addr(path_);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("bind", path_);
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    ::unlink(path_.c_str());
    throw_errno("listen", path_);
  }
  fd_ = fd;
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

Socket UnixListener::accept() {
  while (!closing_.load(std::memory_order_acquire)) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // close() shut the socket down (accept fails with EINVAL) — or a real
    // error hit; either way report shutdown rather than throwing from the
    // daemon's accept loop.
    break;
  }
  return Socket();
}

void UnixListener::close() noexcept {
  // shutdown() unblocks a concurrent accept() on Linux; the fd itself is
  // only closed by the destructor (after the accepting thread is joined),
  // so accept() never operates on a closed/reused descriptor.
  closing_.store(true, std::memory_order_release);
  ::shutdown(fd_, SHUT_RDWR);
}

} // namespace ripple
