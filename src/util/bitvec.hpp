// A compact dynamic bit vector used for per-cycle wire-value snapshots.
//
// std::vector<bool> would work functionally but offers no word-level access;
// traces store one BitVec per cycle and the simulator copies them wholesale,
// so word-granular storage and popcount matter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace ripple {

class BitVec {
public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool value = false)
      : nbits_(nbits),
        words_((nbits + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    trim();
  }

  [[nodiscard]] std::size_t size() const { return nbits_; }
  [[nodiscard]] bool empty() const { return nbits_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const {
    RIPPLE_ASSERT(i < nbits_, "bit index ", i, " out of range ", nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i, bool v) {
    RIPPLE_ASSERT(i < nbits_, "bit index ", i, " out of range ", nbits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void flip(std::size_t i) {
    RIPPLE_ASSERT(i < nbits_, "bit index ", i, " out of range ", nbits_);
    words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
  }

  void clear_all() {
    for (auto& w : words_) w = 0;
  }

  void resize(std::size_t nbits, bool value = false) {
    const std::size_t old_bits = nbits_;
    nbits_ = nbits;
    words_.resize((nbits + 63) / 64, value ? ~std::uint64_t{0} : 0);
    if (value && nbits > old_bits && old_bits % 64 != 0) {
      // Fill the tail of the previously-last word.
      words_[old_bits >> 6] |= ~std::uint64_t{0} << (old_bits & 63);
    }
    trim();
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  /// Bitwise OR with another vector of the same size.
  BitVec& operator|=(const BitVec& o) {
    RIPPLE_ASSERT(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  BitVec& operator&=(const BitVec& o) {
    RIPPLE_ASSERT(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  BitVec& operator^=(const BitVec& o) {
    RIPPLE_ASSERT(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
  }

  /// this &= ~o (clear every bit set in `o`).
  BitVec& and_not(const BitVec& o) {
    RIPPLE_ASSERT(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  /// popcount(*this & o) without materializing the intersection.
  [[nodiscard]] std::size_t popcount_and(const BitVec& o) const {
    RIPPLE_ASSERT(nbits_ == o.nbits_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      n += static_cast<std::size_t>(
          __builtin_popcountll(words_[i] & o.words_[i]));
    }
    return n;
  }

  /// popcount(*this | o) without materializing the union.
  [[nodiscard]] std::size_t popcount_or(const BitVec& o) const {
    RIPPLE_ASSERT(nbits_ == o.nbits_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      n += static_cast<std::size_t>(
          __builtin_popcountll(words_[i] | o.words_[i]));
    }
    return n;
  }

  /// OR `o` into this vector; returns the number of bits newly set (the
  /// marginal gain of `o` over the current contents).
  std::size_t or_count(const BitVec& o) {
    RIPPLE_ASSERT(nbits_ == o.nbits_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t added = o.words_[i] & ~words_[i];
      n += static_cast<std::size_t>(__builtin_popcountll(added));
      words_[i] |= added;
    }
    return n;
  }

  /// True iff every set bit of this vector is also set in `o`.
  [[nodiscard]] bool is_subset_of(const BitVec& o) const {
    RIPPLE_ASSERT(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~o.words_[i]) != 0) return false;
    }
    return true;
  }

  bool operator==(const BitVec& o) const = default;

  /// Index of the first bit that differs from `o`, or size() if equal.
  [[nodiscard]] std::size_t first_difference(const BitVec& o) const {
    RIPPLE_ASSERT(nbits_ == o.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t d = words_[i] ^ o.words_[i];
      if (d != 0) {
        const std::size_t bit = i * 64 +
            static_cast<std::size_t>(__builtin_ctzll(d));
        return bit < nbits_ ? bit : nbits_;
      }
    }
    return nbits_;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

  /// Word-level bulk load (artifact deserialization): adopt `words` as the
  /// backing store of an `nbits`-wide vector. Bits past `nbits` are cleared.
  static BitVec from_words(std::size_t nbits, std::vector<std::uint64_t> words) {
    RIPPLE_ASSERT(words.size() == (nbits + 63) / 64,
                  "word count mismatch: ", words.size(), " for ", nbits,
                  " bits");
    BitVec v;
    v.nbits_ = nbits;
    v.words_ = std::move(words);
    v.trim();
    return v;
  }

private:
  void trim() {
    if (nbits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (~std::uint64_t{0}) >> (64 - nbits_ % 64);
    }
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

} // namespace ripple
