// Minimal RAII wrappers over AF_UNIX stream sockets for the campaign
// service. Blocking I/O only — the daemon uses one thread per connection,
// so nothing here needs readiness notification. All helpers throw
// ripple::Error on system-call failure; orderly peer shutdown is reported
// as a clean `false` from recv_all, never an exception.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ripple {

/// A connected stream socket (one endpoint). Move-only; closes on
/// destruction.
class Socket {
public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  /// Connect to a Unix-domain socket at `path`; throws on failure.
  [[nodiscard]] static Socket connect_unix(const std::string& path);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Write the whole span (MSG_NOSIGNAL — a vanished peer surfaces as an
  /// Error, not SIGPIPE).
  void send_all(std::span<const std::uint8_t> data);

  /// Read exactly `data.size()` bytes. Returns false when the peer closed
  /// the connection cleanly before the first byte; throws on a mid-message
  /// EOF or any error.
  [[nodiscard]] bool recv_all(std::span<std::uint8_t> data);

  /// Shut down both directions (unblocks a peer's pending recv); the fd
  /// stays open until destruction.
  void shutdown_both() noexcept;

  void close() noexcept;

private:
  int fd_ = -1;
};

/// A listening Unix-domain socket. Binds at construction (unlinking any
/// stale socket file first), unlinks the path on destruction.
class UnixListener {
public:
  explicit UnixListener(std::string path, int backlog = 16);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Block until a client connects. Returns an invalid Socket when the
  /// listener was closed (the daemon's shutdown path); throws on error.
  [[nodiscard]] Socket accept();

  /// Shut the listener down: a blocked (or future) accept() returns an
  /// invalid Socket. Safe to call from any thread while another is blocked
  /// in accept(); the fd itself stays open until destruction, so the
  /// accepting thread never races a close.
  void close() noexcept;

  [[nodiscard]] const std::string& path() const { return path_; }

private:
  std::string path_;
  int fd_ = -1; // written only at construction/destruction
  std::atomic<bool> closing_{false};
};

} // namespace ripple
