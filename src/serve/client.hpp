// Client side of the campaign service: connect, submit one request, then
// pull decoded events until the terminal Result/Error message.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "pipeline/request.hpp"
#include "serve/protocol.hpp"
#include "util/socket.hpp"

namespace ripple::serve {

class ServeClient {
public:
  /// Connect to a rippled daemon's Unix socket; throws on failure.
  [[nodiscard]] static ServeClient connect(const std::string& socket_path);

  struct Accepted {
    std::uint64_t checksum = 0;
    /// True when the daemon deduped this submission onto an execution that
    /// was already in flight.
    bool attached = false;
  };

  /// Submit one request and wait for the daemon's Accepted answer.
  [[nodiscard]] Accepted submit(const pipeline::CampaignRequest& request);

  /// Next daemon event, in order. Returns std::nullopt if the daemon
  /// vanished without a terminal message. Stop after kResult/kError.
  [[nodiscard]] std::optional<Message> next();

  /// Ask the daemon for a live ServiceStats snapshot (`ripple-client
  /// --stats`). Must be the first request on this connection — a session
  /// serves either one Submit or one StatsRequest.
  [[nodiscard]] ServiceStats stats();

private:
  explicit ServeClient(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
};

} // namespace ripple::serve
