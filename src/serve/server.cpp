#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "pipeline/artifact.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/protocol.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace ripple::serve {

struct Server::Session {
  explicit Session(Socket s) : socket(std::move(s)) {}
  Socket socket;
};

/// EventSink over a session's socket. Writes are already serialized per
/// execution (broadcast holds the execution lock), and a session attaches
/// to exactly one execution, so no extra locking is needed here. Any send
/// failure marks the sink dead; the execution drops it and keeps running.
class Server::SocketSink final : public EventSink {
public:
  explicit SocketSink(std::shared_ptr<Session> session)
      : session_(std::move(session)) {}

  bool deliver(const Frame& frame) override {
    try {
      send_frame(session_->socket, frame);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }

private:
  std::shared_ptr<Session> session_;
};

/// StageObserver bridging one execution's pipeline events onto the wire:
/// every attached client sees the stages (and warnings like the bitpar
/// fallback) the way a local ProgressObserver would.
class Server::BroadcastObserver final : public pipeline::StageObserver {
public:
  explicit BroadcastObserver(std::shared_ptr<Execution> execution)
      : execution_(std::move(execution)) {}

  void stage_begin(std::string_view stage, std::string_view detail) override {
    execution_->broadcast(make_stage_begin_frame(stage, detail));
  }
  void stage_end(const pipeline::StageStats& stats) override {
    execution_->broadcast(make_stage_end_frame(stats));
  }
  void progress(std::string_view message) override {
    execution_->broadcast(make_log_frame(message));
  }
  void campaign_progress(const pipeline::CampaignProgress& p) override {
    // Record first so a Stats snapshot taken between the two calls already
    // sees the tick, then narrate it to the attached clients.
    execution_->update_progress(p);
    execution_->broadcast(
        make_log_frame(pipeline::format_campaign_progress(p)));
  }

private:
  std::shared_ptr<Execution> execution_;
};

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(std::make_shared<pipeline::ArtifactCache>(config_.cache_dir,
                                             !config_.cache_dir.empty())),
      report_(std::make_shared<pipeline::JsonReportObserver>()),
      scheduler_(config_.threads) {}

Server::~Server() { stop(); }

void Server::start() {
  RIPPLE_CHECK(listener_ == nullptr, "server already started");
  listener_ = std::make_unique<UnixListener>(config_.socket_path);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  stopping_ = true;
  if (listener_) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard lock(mutex_);
    for (const auto& session : sessions_) session->socket.shutdown_both();
  }
  // Session threads can still spawn executor threads while we join, so
  // drain until the list stays empty.
  while (true) {
    std::vector<std::thread> threads;
    {
      std::lock_guard lock(mutex_);
      threads.swap(threads_);
    }
    if (threads.empty()) break;
    for (std::thread& t : threads) t.join();
  }
  {
    std::lock_guard lock(mutex_);
    sessions_.clear();
  }
}

void Server::accept_loop() {
  while (!stopping_) {
    Socket socket = listener_->accept();
    if (!socket.valid()) break; // listener closed: shutdown
    auto session = std::make_shared<Session>(std::move(socket));
    std::lock_guard lock(mutex_);
    ++sessions_accepted_;
    sessions_.push_back(session);
    threads_.emplace_back([this, session] { handle_session(session); });
  }
}

void Server::handle_session(const std::shared_ptr<Session>& session) {
  std::shared_ptr<Execution> execution;
  std::shared_ptr<SocketSink> sink;
  try {
    auto frame = recv_frame(session->socket);
    if (frame.has_value() && frame->type == MsgType::kStatsRequest) {
      ByteReader r(frame->payload);
      const std::uint32_t version = r.u32();
      RIPPLE_CHECK(version == kProtocolVersion,
                   "client speaks protocol version ", version,
                   ", this daemon expects ", kProtocolVersion);
      r.expect_done();
      send_frame(session->socket, make_stats_frame(service_stats()));
    } else if (frame.has_value()) {
      pipeline::CampaignRequest request = decode_submit(*frame);
      // The daemon always checkpoints: an identical re-submission after a
      // restart replays finished shards instead of re-executing them.
      request.resume = true;

      const auto submission = registry_.submit(request);
      execution = submission.execution;
      // Spawn the executor before answering: if the client vanishes mid
      // handshake the campaign still runs to completion (checkpointing its
      // shards) and the registry entry is guaranteed to be erased — an
      // execution must never wait on this session's socket.
      if (submission.is_new) {
        ++executions_started_;
        std::lock_guard lock(mutex_);
        threads_.emplace_back([this, execution] { execute(execution); });
      }
      send_frame(session->socket, make_accepted_frame(execution->checksum(),
                                                      !submission.is_new));
      sink = std::make_shared<SocketSink>(session);
      execution->attach(sink);
      // Block until the client disconnects (or stop() shuts the socket).
      // Clients send nothing after Submit; stray frames are ignored.
      while (recv_frame(session->socket).has_value()) {
      }
    }
  } catch (const std::exception& e) {
    try {
      send_frame(session->socket, make_error_frame(e.what()));
    } catch (const std::exception&) {
    }
  }
  // A disconnect detaches only this session's sink — a shared execution
  // keeps running for the other clients (or, with none left, to finish its
  // checkpoints).
  if (execution != nullptr && sink != nullptr) execution->detach(sink);
  std::lock_guard lock(mutex_);
  sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), session),
                  sessions_.end());
}

void Server::execute(const std::shared_ptr<Execution>& execution) {
  const pipeline::CampaignRequest& request = execution->request();
  try {
    // A private pipeline per execution (stage state and observers are
    // execution-local) over the shared, thread-safe artifact cache.
    pipeline::PipelineConfig pipeline_config;
    pipeline_config.cache_dir = config_.cache_dir;
    pipeline_config.use_cache = cache_->enabled();
    pipeline_config.threads = config_.threads;
    pipeline_config.shard_executor =
        [this](std::size_t n, const std::function<void(std::size_t)>& task) {
          scheduler_.run(n, task);
        };
    pipeline::CampaignPipeline pipeline(pipeline_config, cache_);
    pipeline.add_observer(std::make_shared<BroadcastObserver>(execution));
    pipeline.add_observer(report_);
    // Local narration too: each concurrent execution gets its own observer
    // labeled with the short request checksum, and every line is a single
    // atomic write, so interleaved campaigns stay readable on stderr.
    pipeline.add_observer(std::make_shared<pipeline::ProgressObserver>(
        stderr, strprintf("%08llx", static_cast<unsigned long long>(
                                        execution->checksum() >> 32))));

    execution->broadcast(make_log_frame(
        strprintf("[rippled] executing %s (checksum %016llx)",
                  pipeline::request_summary(request).c_str(),
                  static_cast<unsigned long long>(execution->checksum()))));

    const hafi::CampaignResult result = pipeline.run(request);
    ByteWriter w;
    pipeline::write_campaign_result(w, result);
    execution->finish(make_result_frame(execution->checksum(), w.bytes()));
  } catch (const std::exception& e) {
    execution->finish(make_error_frame(e.what()));
  }
  registry_.erase(execution->checksum());
}

ServiceStats Server::service_stats() const {
  ServiceStats s;
  {
    std::lock_guard lock(mutex_);
    s.sessions = sessions_accepted_;
  }
  const ExecutionRegistry::Counters counters = registry_.counters();
  s.submissions = counters.submitted;
  s.deduped = counters.deduped;
  s.executions = executions_started_;
  s.in_flight = registry_.in_flight();

  const FairScheduler::Stats sched = scheduler_.stats();
  s.scheduler_threads = sched.threads;
  s.scheduler_streams = sched.streams;
  s.scheduler_queued = sched.queued;

  s.cache_enabled = cache_->enabled();
  const pipeline::ArtifactCache::Stats cs = cache_->stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  s.cache_stores = cs.stores;

  auto executions = registry_.snapshot();
  std::sort(executions.begin(), executions.end(),
            [](const auto& a, const auto& b) {
              return a->checksum() < b->checksum();
            });
  s.campaigns.reserve(executions.size());
  for (const auto& execution : executions) {
    const pipeline::CampaignProgress p = execution->progress();
    CampaignStats c;
    c.checksum = execution->checksum();
    c.summary = pipeline::request_summary(execution->request());
    c.shards_done = p.shards_done;
    c.num_shards = p.num_shards;
    c.executed = p.executed_total;
    c.inj_per_sec = p.inj_per_sec;
    c.eta_seconds = p.eta_seconds;
    c.finished = execution->finished();
    c.clients = execution->num_sinks();
    s.campaigns.push_back(std::move(c));
  }
  return s;
}

Server::Stats Server::stats() const {
  Stats s;
  {
    std::lock_guard lock(mutex_);
    s.sessions = sessions_accepted_;
  }
  const ExecutionRegistry::Counters c = registry_.counters();
  s.submissions = c.submitted;
  s.deduped = c.deduped;
  s.executions = executions_started_;
  return s;
}

} // namespace ripple::serve
