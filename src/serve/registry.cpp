#include "serve/registry.hpp"

#include <algorithm>

namespace ripple::serve {

Execution::Execution(std::uint64_t checksum,
                     pipeline::CampaignRequest request)
    : checksum_(checksum), request_(std::move(request)) {}

void Execution::attach(const std::shared_ptr<EventSink>& sink) {
  std::lock_guard lock(mutex_);
  // Replay under the lock so no broadcast can interleave with the history:
  // the sink sees every frame exactly once, in order.
  for (const Frame& frame : history_) {
    if (!sink->deliver(frame)) return; // died during replay; don't keep it
  }
  if (!finished_) sinks_.push_back(sink);
}

void Execution::detach(const std::shared_ptr<EventSink>& sink) {
  std::lock_guard lock(mutex_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void Execution::broadcast(const Frame& frame) {
  std::lock_guard lock(mutex_);
  history_.push_back(frame);
  std::erase_if(sinks_, [&](const std::shared_ptr<EventSink>& sink) {
    return !sink->deliver(frame);
  });
}

void Execution::finish(const Frame& frame) {
  std::lock_guard lock(mutex_);
  history_.push_back(frame);
  for (const auto& sink : sinks_) (void)sink->deliver(frame);
  sinks_.clear();
  finished_ = true;
}

bool Execution::finished() const {
  std::lock_guard lock(mutex_);
  return finished_;
}

std::size_t Execution::num_sinks() const {
  std::lock_guard lock(mutex_);
  return sinks_.size();
}

void Execution::update_progress(const pipeline::CampaignProgress& p) {
  std::lock_guard lock(mutex_);
  progress_ = p;
}

pipeline::CampaignProgress Execution::progress() const {
  std::lock_guard lock(mutex_);
  return progress_;
}

ExecutionRegistry::Submission ExecutionRegistry::submit(
    const pipeline::CampaignRequest& request) {
  const std::uint64_t checksum = pipeline::request_checksum(request);
  std::lock_guard lock(mutex_);
  ++counters_.submitted;
  if (auto it = executions_.find(checksum); it != executions_.end()) {
    ++counters_.deduped;
    return {it->second, /*is_new=*/false};
  }
  auto execution = std::make_shared<Execution>(checksum, request);
  executions_.emplace(checksum, execution);
  return {std::move(execution), /*is_new=*/true};
}

void ExecutionRegistry::erase(std::uint64_t checksum) {
  std::lock_guard lock(mutex_);
  executions_.erase(checksum);
}

ExecutionRegistry::Counters ExecutionRegistry::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::size_t ExecutionRegistry::in_flight() const {
  std::lock_guard lock(mutex_);
  return executions_.size();
}

std::vector<std::shared_ptr<Execution>> ExecutionRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<std::shared_ptr<Execution>> out;
  out.reserve(executions_.size());
  for (const auto& [checksum, execution] : executions_) {
    out.push_back(execution);
  }
  return out;
}

} // namespace ripple::serve
