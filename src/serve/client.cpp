#include "serve/client.hpp"

#include "util/assert.hpp"

namespace ripple::serve {

ServeClient ServeClient::connect(const std::string& socket_path) {
  return ServeClient(Socket::connect_unix(socket_path));
}

ServeClient::Accepted ServeClient::submit(
    const pipeline::CampaignRequest& request) {
  send_frame(socket_, make_submit_frame(request));
  auto frame = recv_frame(socket_);
  RIPPLE_CHECK(frame.has_value(), "daemon closed the connection on submit");
  if (frame->type == MsgType::kError) {
    throw Error("daemon rejected the request: " +
                decode_message(*frame).text);
  }
  RIPPLE_CHECK(frame->type == MsgType::kAccepted,
               "expected Accepted, got frame type ",
               static_cast<int>(frame->type));
  const Message m = decode_message(*frame);
  return {m.checksum, m.attached};
}

std::optional<Message> ServeClient::next() {
  auto frame = recv_frame(socket_);
  if (!frame.has_value()) return std::nullopt;
  return decode_message(*frame);
}

ServiceStats ServeClient::stats() {
  send_frame(socket_, make_stats_request_frame());
  auto frame = recv_frame(socket_);
  RIPPLE_CHECK(frame.has_value(),
               "daemon closed the connection on a stats request");
  if (frame->type == MsgType::kError) {
    throw Error("daemon rejected the stats request: " +
                decode_message(*frame).text);
  }
  RIPPLE_CHECK(frame->type == MsgType::kStats,
               "expected Stats, got frame type ",
               static_cast<int>(frame->type));
  return decode_message(*frame).service_stats;
}

} // namespace ripple::serve
