// Fair shard scheduler: one shared worker pool multiplexing the shard
// fan-out of every in-flight campaign execution.
//
// Each execution calls run(n, task) — the hafi::ShardExecutor signature —
// which registers a *stream* of n shard indices and blocks until all are
// done. Workers pick the next index round-robin across the active streams,
// so a freshly submitted small campaign starts making progress immediately
// instead of queueing behind thousands of shards of an earlier one. Shard
// execution order never affects results (hafi merges shard results by
// index), so fairness is purely a latency policy.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <list>
#include <mutex>
#include <thread>
#include <vector>

namespace ripple::serve {

class FairScheduler {
public:
  /// `threads` workers; 0 = hardware concurrency.
  explicit FairScheduler(std::size_t threads = 0);
  ~FairScheduler();

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Run task(0..n-1) on the shared pool; blocks until every index
  /// finished. Rethrows the first task exception (remaining unclaimed
  /// indices of that stream are abandoned). Callable concurrently from any
  /// number of executions; matches hafi::ShardExecutor.
  void run(std::size_t n, const std::function<void(std::size_t)>& task);

  [[nodiscard]] std::size_t threads() const { return workers_.size(); }

  /// Point-in-time load snapshot for the daemon's Stats response.
  struct Stats {
    std::size_t threads = 0; // pool size
    std::size_t streams = 0; // executions currently blocked in run()
    std::size_t queued = 0;  // unclaimed shard indices across all streams
  };
  [[nodiscard]] Stats stats() const;

private:
  struct Stream {
    const std::function<void(std::size_t)>* task = nullptr;
    std::size_t total = 0;
    std::size_t next = 0;      // next index to claim
    std::size_t remaining = 0; // claimed-but-unfinished + unclaimed
    std::exception_ptr error;
    std::condition_variable done_cv;
  };

  void worker();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  /// Active streams in claim order; claiming an index splices the stream to
  /// the back, which is what makes the discipline round-robin. std::list
  /// for stable node addresses across splices.
  std::list<Stream> streams_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

} // namespace ripple::serve
