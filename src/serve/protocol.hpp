// Wire protocol of the campaign service (rippled <-> ripple-client).
//
// Transport: a Unix-domain stream socket carrying length-prefixed frames
//
//   [u32 payload length, little-endian][u8 message type][payload bytes]
//
// The payload is the canonical ByteWriter encoding of the message body, so
// the protocol inherits the artifact serializer's versioning and bounds
// checking. A session is: client sends one Submit, daemon answers Accepted,
// then streams Log/StageBegin/StageEnd events until a terminal Result or
// ServeError frame. The client may disconnect at any point; the daemon
// detaches the session without disturbing the (possibly shared) execution.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/observer.hpp"
#include "pipeline/request.hpp"
#include "util/socket.hpp"

namespace ripple::serve {

/// Bump on any frame-layout change; Accepted echoes it so clients can
/// detect a daemon from another release. Version 2 added the StatsRequest /
/// Stats frame pair (live service introspection).
inline constexpr std::uint32_t kProtocolVersion = 2;

/// Frames too large to be real protect the reader from garbage length
/// prefixes (a full campaign result over the AVR core is ~100 KiB).
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class MsgType : std::uint8_t {
  kSubmit = 1,     // client->daemon: protocol version + CampaignRequest
  kAccepted = 2,   // daemon->client: checksum + attached-to-in-flight flag
  kLog = 3,        // daemon->client: free-form progress line
  kStageBegin = 4, // daemon->client: stage + detail
  kStageEnd = 5,   // daemon->client: full StageStats record
  kResult = 6,     // daemon->client: terminal, serialized CampaignResult
  kError = 7,      // daemon->client: terminal, error text
  kStatsRequest = 8, // client->daemon: protocol version, ask for live stats
  kStats = 9,        // daemon->client: terminal, ServiceStats snapshot
};

/// Live progress of one in-flight (or recently finished) execution, as
/// reported in a Stats response. Progress fields mirror
/// pipeline::CampaignProgress and are zero until the campaign stage starts.
struct CampaignStats {
  std::uint64_t checksum = 0;   // request identity
  std::string summary;          // request summary line (core, mode, ...)
  std::uint64_t shards_done = 0;
  std::uint64_t num_shards = 0;
  std::uint64_t executed = 0;   // injections executed so far
  double inj_per_sec = 0.0;     // last finished shard's throughput
  double eta_seconds = 0.0;     // EtaTracker projection at the last shard
  bool finished = false;        // terminal frame already broadcast
  std::uint64_t clients = 0;    // sessions currently attached
};

/// Daemon-wide snapshot answering a StatsRequest: service totals, fair
/// scheduler load, artifact-cache totals and one CampaignStats per tracked
/// execution (sorted by checksum). Taken from counters only — it never
/// blocks or perturbs running executions.
struct ServiceStats {
  std::uint64_t sessions = 0;    // client sessions accepted since start
  std::uint64_t submissions = 0; // Submit frames handled
  std::uint64_t deduped = 0;     // submissions attached to an in-flight run
  std::uint64_t executions = 0;  // pipeline executions started
  std::uint64_t in_flight = 0;   // executions not yet finished
  std::uint64_t scheduler_threads = 0;
  std::uint64_t scheduler_streams = 0;
  std::uint64_t scheduler_queued = 0; // unclaimed shard indices
  bool cache_enabled = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stores = 0;
  std::vector<CampaignStats> campaigns;
};

/// A decoded daemon->client message (the union of all event payloads; the
/// `type` selects which fields are meaningful).
struct Message {
  MsgType type = MsgType::kLog;
  std::uint64_t checksum = 0;        // kAccepted, kResult
  std::uint32_t protocol_version = 0; // kAccepted
  bool attached = false;             // kAccepted: joined an in-flight run
  std::string text;                  // kLog, kError
  std::string stage;                 // kStageBegin
  std::string detail;                // kStageBegin
  pipeline::StageStats stats;        // kStageEnd
  /// kResult: the canonical write_campaign_result() bytes — kept encoded so
  /// byte-identity across clients/runs is checkable without re-serializing.
  std::vector<std::uint8_t> result_bytes;
  ServiceStats service_stats;        // kStats
};

/// StageStats body used by kStageEnd frames (and nothing else — stage
/// records never enter the artifact cache).
void write_stage_stats(ByteWriter& w, const pipeline::StageStats& stats);
[[nodiscard]] pipeline::StageStats read_stage_stats(ByteReader& r);

// --- frame I/O ------------------------------------------------------------

/// One encoded frame (type + payload, pre-serialization of the length
/// prefix). The daemon records these in an execution's event history, so
/// late-attaching clients replay the exact bytes earlier ones received.
struct Frame {
  MsgType type = MsgType::kLog;
  std::vector<std::uint8_t> payload;
};

/// Send one [len][type][payload] frame.
void send_frame(Socket& socket, const Frame& frame);

/// Receive one frame; returns std::nullopt on clean peer EOF at a frame
/// boundary, throws on truncation, oversized lengths or socket errors.
[[nodiscard]] std::optional<Frame> recv_frame(Socket& socket);

// --- frame builders -------------------------------------------------------

[[nodiscard]] Frame make_submit_frame(const pipeline::CampaignRequest& r);
[[nodiscard]] Frame make_accepted_frame(std::uint64_t checksum, bool attached);
[[nodiscard]] Frame make_log_frame(std::string_view text);
[[nodiscard]] Frame make_stage_begin_frame(std::string_view stage,
                                           std::string_view detail);
[[nodiscard]] Frame make_stage_end_frame(const pipeline::StageStats& stats);
/// Terminal frame carrying the canonical write_campaign_result() bytes
/// inline (kMaxFrameBytes bounds the result size).
[[nodiscard]] Frame make_result_frame(std::uint64_t checksum,
                                      std::span<const std::uint8_t> bytes);
[[nodiscard]] Frame make_error_frame(std::string_view text);
[[nodiscard]] Frame make_stats_request_frame();
[[nodiscard]] Frame make_stats_frame(const ServiceStats& stats);

/// Decode a daemon->client frame into a Message.
[[nodiscard]] Message decode_message(const Frame& frame);

/// Decode a client->daemon Submit frame (validates the protocol version).
[[nodiscard]] pipeline::CampaignRequest decode_submit(const Frame& frame);

} // namespace ripple::serve
