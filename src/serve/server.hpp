// The campaign service: a resident daemon multiplexing concurrent campaign
// requests over one shared artifact cache and one fair worker pool.
//
// Architecture (one box per thread kind):
//
//   accept loop ──> session thread (per connection)
//                     │  reads the Submit, dedupes via ExecutionRegistry,
//                     │  answers Accepted, attaches a SocketSink, then
//                     │  blocks reading — EOF means the client left.
//                     └─> executor thread (per *new* execution only)
//                           builds a private CampaignPipeline over the
//                           shared cache, observers broadcast every stage
//                           event to all attached clients, shards fan out
//                           through the shared FairScheduler, terminal
//                           Result/Error finishes the execution.
//
// Requests with equal checksums share one executor: the second client
// attaches to the first's execution, replays its event history and gets the
// same result bytes. `resume` is forced on, so a re-submission after the
// daemon restarts replays shard checkpoints from the cache instead of
// re-running them.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/cache.hpp"
#include "pipeline/observer.hpp"
#include "serve/registry.hpp"
#include "serve/scheduler.hpp"
#include "util/socket.hpp"

namespace ripple::serve {

struct ServerConfig {
  std::string socket_path;
  /// Shared artifact cache directory; empty disables caching (and with it
  /// shard checkpointing — restart-resume needs a cache).
  std::filesystem::path cache_dir;
  /// Shared worker-pool size (0 = hardware concurrency). Also the MATE
  /// search thread count of each execution's pipeline.
  std::size_t threads = 0;
};

class Server {
public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and start accepting connections.
  void start();

  /// Stop accepting, disconnect every session, and join all threads
  /// (running executions are allowed to finish — their shards checkpoint,
  /// so an aborted daemon resumes cheaply anyway). Idempotent.
  void stop();

  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] const pipeline::ArtifactCache& cache() const { return *cache_; }

  /// Server-wide stage/counter collector feeding the daemon's
  /// `--report=json` envelope; every execution's stage records land here.
  [[nodiscard]] std::shared_ptr<pipeline::JsonReportObserver> report() const {
    return report_;
  }

  struct Stats {
    std::size_t sessions = 0;    // connections accepted
    std::size_t submissions = 0; // Submit frames handled
    std::size_t deduped = 0;     // submissions attached to in-flight runs
    std::size_t executions = 0;  // campaign runs actually started
  };
  [[nodiscard]] Stats stats() const;

  /// Full live snapshot answering a client StatsRequest: service totals,
  /// scheduler load, cache totals, per-campaign progress. Reads counters and
  /// per-execution progress records only — never blocks an execution.
  [[nodiscard]] ServiceStats service_stats() const;

private:
  struct Session;
  class SocketSink;
  class BroadcastObserver;

  void accept_loop();
  void handle_session(const std::shared_ptr<Session>& session);
  void execute(const std::shared_ptr<Execution>& execution);

  ServerConfig config_;
  std::shared_ptr<pipeline::ArtifactCache> cache_;
  std::shared_ptr<pipeline::JsonReportObserver> report_;
  FairScheduler scheduler_;
  ExecutionRegistry registry_;

  std::unique_ptr<UnixListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_; // guards sessions_/threads_ + session counter
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> threads_; // session + executor threads
  std::size_t sessions_accepted_ = 0;
  std::atomic<std::size_t> executions_started_{0};
};

} // namespace ripple::serve
