// In-flight execution registry: the daemon's dedup and fan-out layer.
//
// Each distinct request checksum maps to at most one Execution. A client
// submitting a request whose checksum is already in flight *attaches* to
// the existing Execution instead of starting a second one — the checksum is
// computed over exactly the result-affecting fields (request.hpp), so both
// clients are guaranteed the same bytes. Every daemon->client event is
// recorded in the execution's history and replayed to late attachers, so an
// attaching client sees the full stage timeline, not just the tail.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pipeline/request.hpp"
#include "serve/protocol.hpp"

namespace ripple::serve {

/// Where execution events go (one per attached client session). deliver()
/// returns false when the sink is dead (client gone); the execution drops
/// it and keeps running.
class EventSink {
public:
  virtual ~EventSink() = default;
  [[nodiscard]] virtual bool deliver(const Frame& frame) = 0;
};

/// One in-flight (or just-finished) campaign run shared by every client
/// whose request hashed to `checksum`.
class Execution {
public:
  Execution(std::uint64_t checksum, pipeline::CampaignRequest request);

  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }
  [[nodiscard]] const pipeline::CampaignRequest& request() const {
    return request_;
  }

  /// Attach a client sink: replays the recorded history (and the terminal
  /// frame, when the run already finished) into it, then keeps it for
  /// future broadcasts.
  void attach(const std::shared_ptr<EventSink>& sink);
  void detach(const std::shared_ptr<EventSink>& sink);

  /// Record `frame` in the history and deliver it to every live sink.
  void broadcast(const Frame& frame);

  /// Record the terminal frame (kResult or kError), deliver it, and mark
  /// the execution finished; subsequent attaches replay it immediately.
  void finish(const Frame& frame);

  [[nodiscard]] bool finished() const;
  [[nodiscard]] std::size_t num_sinks() const;

  /// Latest campaign shard-progress tick (fed by the daemon's pipeline
  /// observer); the Stats response reads it without touching the pipeline.
  void update_progress(const pipeline::CampaignProgress& p);
  [[nodiscard]] pipeline::CampaignProgress progress() const;

private:
  const std::uint64_t checksum_;
  const pipeline::CampaignRequest request_;

  mutable std::mutex mutex_;
  std::vector<Frame> history_;
  std::vector<std::shared_ptr<EventSink>> sinks_;
  bool finished_ = false;
  pipeline::CampaignProgress progress_;
};

/// Checksum -> Execution map plus the service counters the report envelope
/// exposes.
class ExecutionRegistry {
public:
  struct Submission {
    std::shared_ptr<Execution> execution;
    bool is_new = false; // false: deduped onto an in-flight run
  };

  /// Find-or-create the execution for `request`. `is_new` tells the caller
  /// whether it must actually run the campaign.
  [[nodiscard]] Submission submit(const pipeline::CampaignRequest& request);

  /// Drop a finished execution so a later identical submission starts a
  /// fresh run (which then replays shard checkpoints from the cache).
  void erase(std::uint64_t checksum);

  struct Counters {
    std::size_t submitted = 0; // total submissions
    std::size_t deduped = 0;   // submissions attached to an in-flight run
  };
  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::size_t in_flight() const;

  /// All tracked executions, for the Stats response. The shared_ptrs keep
  /// each execution alive while the caller reads its progress lock-free of
  /// the registry map.
  [[nodiscard]] std::vector<std::shared_ptr<Execution>> snapshot() const;

private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Execution>> executions_;
  Counters counters_;
};

} // namespace ripple::serve
