#include "serve/scheduler.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace ripple::serve {

FairScheduler::FairScheduler(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
}

FairScheduler::~FairScheduler() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void FairScheduler::run(std::size_t n,
                        const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  std::unique_lock lock(mutex_);
  auto it = streams_.emplace(streams_.end());
  it->task = &task;
  it->total = n;
  it->next = 0;
  it->remaining = n;
  work_cv_.notify_all();
  it->done_cv.wait(lock, [&] { return it->remaining == 0; });
  const std::exception_ptr error = it->error;
  streams_.erase(it);
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

FairScheduler::Stats FairScheduler::stats() const {
  Stats s;
  s.threads = workers_.size();
  std::lock_guard lock(mutex_);
  s.streams = streams_.size();
  for (const Stream& stream : streams_) s.queued += stream.total - stream.next;
  return s;
}

void FairScheduler::worker() {
  std::unique_lock lock(mutex_);
  while (true) {
    if (stopping_) return;
    Stream* stream = nullptr;
    for (auto it = streams_.begin(); it != streams_.end(); ++it) {
      if (it->next < it->total) {
        stream = &*it;
        // Rotate the claimed stream to the back: the next claim goes to a
        // different execution when one is waiting.
        streams_.splice(streams_.end(), streams_, it);
        break;
      }
    }
    if (stream == nullptr) {
      work_cv_.wait(lock);
      continue;
    }
    const std::size_t index = stream->next++;
    const auto* task = stream->task;
    lock.unlock();

    std::exception_ptr error;
    try {
      obs::Span span("sched", "slice");
      if (span.active()) span.set_detail(strprintf("index %zu", index));
      (*task)(index);
    } catch (...) {
      error = std::current_exception();
    }

    lock.lock();
    --stream->remaining;
    if (error) {
      if (!stream->error) stream->error = error;
      // Abandon this stream's unclaimed indices; in-flight ones drain.
      stream->remaining -= stream->total - stream->next;
      stream->next = stream->total;
    }
    if (stream->remaining == 0) stream->done_cv.notify_all();
  }
}

} // namespace ripple::serve
