#include "serve/protocol.hpp"

#include "util/assert.hpp"

namespace ripple::serve {

void write_stage_stats(ByteWriter& w, const pipeline::StageStats& stats) {
  w.str(stats.stage);
  w.str(stats.detail);
  w.f64(stats.seconds);
  w.u64(stats.threads);
  w.f64(stats.utilization);
  w.b(stats.cacheable);
  w.b(stats.cache_hit);
  w.u64(stats.counters.size());
  for (const auto& [name, value] : stats.counters) {
    w.str(name);
    w.f64(value);
  }
}

pipeline::StageStats read_stage_stats(ByteReader& r) {
  pipeline::StageStats stats;
  stats.stage = r.str();
  stats.detail = r.str();
  stats.seconds = r.f64();
  stats.threads = static_cast<std::size_t>(r.u64());
  stats.utilization = r.f64();
  stats.cacheable = r.b();
  stats.cache_hit = r.b();
  const std::size_t n = r.count();
  stats.counters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string name = r.str();
    const double value = r.f64();
    stats.counters.emplace_back(std::move(name), value);
  }
  return stats;
}

void send_frame(Socket& socket, const Frame& frame) {
  RIPPLE_CHECK(frame.payload.size() <= kMaxFrameBytes,
               "frame payload too large: ", frame.payload.size(), " bytes");
  ByteWriter header;
  header.u32(static_cast<std::uint32_t>(frame.payload.size()));
  header.u8(static_cast<std::uint8_t>(frame.type));
  socket.send_all(header.bytes());
  socket.send_all(frame.payload);
}

std::optional<Frame> recv_frame(Socket& socket) {
  std::uint8_t header[5];
  if (!socket.recv_all(header)) return std::nullopt;
  ByteReader r(header);
  const std::uint32_t len = r.u32();
  const std::uint8_t type = r.u8();
  RIPPLE_CHECK(len <= kMaxFrameBytes, "frame length ", len,
               " exceeds the protocol maximum");
  RIPPLE_CHECK(type >= static_cast<std::uint8_t>(MsgType::kSubmit) &&
                   type <= static_cast<std::uint8_t>(MsgType::kStats),
               "unknown frame type ", type);
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(len);
  if (len > 0) {
    RIPPLE_CHECK(socket.recv_all(frame.payload),
                 "connection closed inside a frame");
  }
  return frame;
}

Frame make_submit_frame(const pipeline::CampaignRequest& request) {
  ByteWriter w;
  w.u32(kProtocolVersion);
  pipeline::write_request(w, request);
  return {MsgType::kSubmit, w.take()};
}

Frame make_accepted_frame(std::uint64_t checksum, bool attached) {
  ByteWriter w;
  w.u32(kProtocolVersion);
  w.u64(checksum);
  w.b(attached);
  return {MsgType::kAccepted, w.take()};
}

Frame make_log_frame(std::string_view text) {
  ByteWriter w;
  w.str(text);
  return {MsgType::kLog, w.take()};
}

Frame make_stage_begin_frame(std::string_view stage, std::string_view detail) {
  ByteWriter w;
  w.str(stage);
  w.str(detail);
  return {MsgType::kStageBegin, w.take()};
}

Frame make_stage_end_frame(const pipeline::StageStats& stats) {
  ByteWriter w;
  write_stage_stats(w, stats);
  return {MsgType::kStageEnd, w.take()};
}

Frame make_result_frame(std::uint64_t checksum,
                        std::span<const std::uint8_t> bytes) {
  ByteWriter w;
  w.u64(checksum);
  w.u64(bytes.size());
  for (std::uint8_t byte : bytes) w.u8(byte);
  return {MsgType::kResult, w.take()};
}

Frame make_error_frame(std::string_view text) {
  ByteWriter w;
  w.str(text);
  return {MsgType::kError, w.take()};
}

Frame make_stats_request_frame() {
  ByteWriter w;
  w.u32(kProtocolVersion);
  return {MsgType::kStatsRequest, w.take()};
}

namespace {

void write_service_stats(ByteWriter& w, const ServiceStats& s) {
  w.u64(s.sessions);
  w.u64(s.submissions);
  w.u64(s.deduped);
  w.u64(s.executions);
  w.u64(s.in_flight);
  w.u64(s.scheduler_threads);
  w.u64(s.scheduler_streams);
  w.u64(s.scheduler_queued);
  w.b(s.cache_enabled);
  w.u64(s.cache_hits);
  w.u64(s.cache_misses);
  w.u64(s.cache_stores);
  w.u64(s.campaigns.size());
  for (const CampaignStats& c : s.campaigns) {
    w.u64(c.checksum);
    w.str(c.summary);
    w.u64(c.shards_done);
    w.u64(c.num_shards);
    w.u64(c.executed);
    w.f64(c.inj_per_sec);
    w.f64(c.eta_seconds);
    w.b(c.finished);
    w.u64(c.clients);
  }
}

ServiceStats read_service_stats(ByteReader& r) {
  ServiceStats s;
  s.sessions = r.u64();
  s.submissions = r.u64();
  s.deduped = r.u64();
  s.executions = r.u64();
  s.in_flight = r.u64();
  s.scheduler_threads = r.u64();
  s.scheduler_streams = r.u64();
  s.scheduler_queued = r.u64();
  s.cache_enabled = r.b();
  s.cache_hits = r.u64();
  s.cache_misses = r.u64();
  s.cache_stores = r.u64();
  const std::size_t n = r.count();
  s.campaigns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    CampaignStats c;
    c.checksum = r.u64();
    c.summary = r.str();
    c.shards_done = r.u64();
    c.num_shards = r.u64();
    c.executed = r.u64();
    c.inj_per_sec = r.f64();
    c.eta_seconds = r.f64();
    c.finished = r.b();
    c.clients = r.u64();
    s.campaigns.push_back(std::move(c));
  }
  return s;
}

} // namespace

Frame make_stats_frame(const ServiceStats& stats) {
  ByteWriter w;
  w.u32(kProtocolVersion);
  write_service_stats(w, stats);
  return {MsgType::kStats, w.take()};
}

Message decode_message(const Frame& frame) {
  Message m;
  m.type = frame.type;
  ByteReader r(frame.payload);
  switch (frame.type) {
    case MsgType::kAccepted:
      m.protocol_version = r.u32();
      RIPPLE_CHECK(m.protocol_version == kProtocolVersion,
                   "daemon speaks protocol version ", m.protocol_version,
                   ", this client expects ", kProtocolVersion);
      m.checksum = r.u64();
      m.attached = r.b();
      break;
    case MsgType::kLog:
    case MsgType::kError: m.text = r.str(); break;
    case MsgType::kStageBegin:
      m.stage = r.str();
      m.detail = r.str();
      break;
    case MsgType::kStageEnd: m.stats = read_stage_stats(r); break;
    case MsgType::kResult: {
      m.checksum = r.u64();
      const std::uint64_t body = r.u64();
      m.result_bytes = r.blob(body);
      break;
    }
    case MsgType::kStats:
      m.protocol_version = r.u32();
      RIPPLE_CHECK(m.protocol_version == kProtocolVersion,
                   "daemon speaks protocol version ", m.protocol_version,
                   ", this client expects ", kProtocolVersion);
      m.service_stats = read_service_stats(r);
      break;
    case MsgType::kSubmit:
    case MsgType::kStatsRequest:
      throw Error("unexpected client frame from the daemon");
  }
  r.expect_done();
  return m;
}

pipeline::CampaignRequest decode_submit(const Frame& frame) {
  RIPPLE_CHECK(frame.type == MsgType::kSubmit,
               "expected a Submit frame, got type ",
               static_cast<int>(frame.type));
  ByteReader r(frame.payload);
  const std::uint32_t version = r.u32();
  RIPPLE_CHECK(version == kProtocolVersion, "client speaks protocol version ",
               version, ", this daemon expects ", kProtocolVersion);
  pipeline::CampaignRequest request = pipeline::read_request(r);
  r.expect_done();
  return request;
}

} // namespace ripple::serve
