#include "cell/library.hpp"

#include <vector>

namespace ripple::cell {
namespace {

// Build a truth table from a lambda over packed inputs.
template <typename Fn>
constexpr std::uint16_t make_truth(unsigned num_inputs, Fn fn) {
  std::uint16_t t = 0;
  for (std::uint32_t i = 0; i < (1u << num_inputs); ++i) {
    if (fn(i)) t |= static_cast<std::uint16_t>(1u << i);
  }
  return t;
}

constexpr bool bit(std::uint32_t v, unsigned i) { return (v >> i) & 1u; }

constexpr std::array<std::string_view, kMaxInputs> pins_abcd = {"A", "B", "C",
                                                                "D"};
constexpr std::array<std::string_view, kMaxInputs> pins_mux = {"S", "A", "B",
                                                               ""};
constexpr std::array<std::string_view, kMaxInputs> pins_dff = {"D", "", "",
                                                               ""};

} // namespace

Library::Library() {
  const auto def = [&](Kind k, std::string_view name, unsigned n,
                       std::uint16_t truth,
                       const std::array<std::string_view, kMaxInputs>& pins,
                       double area) {
    infos_[static_cast<std::size_t>(k)] =
        Info{k, name, static_cast<std::uint8_t>(n), truth, pins, area};
  };

  // Areas follow the relative sizing of the NanGate 15nm OCL (X1 drive).
  def(Kind::Tie0, "TIELO", 0, make_truth(0, [](auto) { return false; }),
      pins_abcd, 0.098);
  def(Kind::Tie1, "TIEHI", 0, make_truth(0, [](auto) { return true; }),
      pins_abcd, 0.098);
  def(Kind::Buf, "BUF_X1", 1, make_truth(1, [](auto i) { return bit(i, 0); }),
      pins_abcd, 0.196);
  def(Kind::Inv, "INV_X1", 1, make_truth(1, [](auto i) { return !bit(i, 0); }),
      pins_abcd, 0.147);

  def(Kind::And2, "AND2_X1", 2,
      make_truth(2, [](auto i) { return bit(i, 0) && bit(i, 1); }), pins_abcd,
      0.245);
  def(Kind::And3, "AND3_X1", 3,
      make_truth(3, [](auto i) { return bit(i, 0) && bit(i, 1) && bit(i, 2); }),
      pins_abcd, 0.294);
  def(Kind::And4, "AND4_X1", 4,
      make_truth(4,
                 [](auto i) {
                   return bit(i, 0) && bit(i, 1) && bit(i, 2) && bit(i, 3);
                 }),
      pins_abcd, 0.343);
  def(Kind::Nand2, "NAND2_X1", 2,
      make_truth(2, [](auto i) { return !(bit(i, 0) && bit(i, 1)); }),
      pins_abcd, 0.196);
  def(Kind::Nand3, "NAND3_X1", 3,
      make_truth(3,
                 [](auto i) { return !(bit(i, 0) && bit(i, 1) && bit(i, 2)); }),
      pins_abcd, 0.245);
  def(Kind::Nand4, "NAND4_X1", 4,
      make_truth(4,
                 [](auto i) {
                   return !(bit(i, 0) && bit(i, 1) && bit(i, 2) && bit(i, 3));
                 }),
      pins_abcd, 0.294);

  def(Kind::Or2, "OR2_X1", 2,
      make_truth(2, [](auto i) { return bit(i, 0) || bit(i, 1); }), pins_abcd,
      0.245);
  def(Kind::Or3, "OR3_X1", 3,
      make_truth(3, [](auto i) { return bit(i, 0) || bit(i, 1) || bit(i, 2); }),
      pins_abcd, 0.294);
  def(Kind::Or4, "OR4_X1", 4,
      make_truth(4,
                 [](auto i) {
                   return bit(i, 0) || bit(i, 1) || bit(i, 2) || bit(i, 3);
                 }),
      pins_abcd, 0.343);
  def(Kind::Nor2, "NOR2_X1", 2,
      make_truth(2, [](auto i) { return !(bit(i, 0) || bit(i, 1)); }),
      pins_abcd, 0.196);
  def(Kind::Nor3, "NOR3_X1", 3,
      make_truth(3,
                 [](auto i) { return !(bit(i, 0) || bit(i, 1) || bit(i, 2)); }),
      pins_abcd, 0.245);
  def(Kind::Nor4, "NOR4_X1", 4,
      make_truth(4,
                 [](auto i) {
                   return !(bit(i, 0) || bit(i, 1) || bit(i, 2) || bit(i, 3));
                 }),
      pins_abcd, 0.294);

  def(Kind::Xor2, "XOR2_X1", 2,
      make_truth(2, [](auto i) { return bit(i, 0) != bit(i, 1); }), pins_abcd,
      0.343);
  def(Kind::Xnor2, "XNOR2_X1", 2,
      make_truth(2, [](auto i) { return bit(i, 0) == bit(i, 1); }), pins_abcd,
      0.343);

  def(Kind::Mux2, "MUX2_X1", 3,
      make_truth(3, [](auto i) { return bit(i, 0) ? bit(i, 2) : bit(i, 1); }),
      pins_mux, 0.392);

  def(Kind::Aoi21, "AOI21_X1", 3,
      make_truth(3,
                 [](auto i) { return !((bit(i, 0) && bit(i, 1)) || bit(i, 2)); }),
      pins_abcd, 0.245);
  def(Kind::Aoi22, "AOI22_X1", 4,
      make_truth(4,
                 [](auto i) {
                   return !((bit(i, 0) && bit(i, 1)) ||
                            (bit(i, 2) && bit(i, 3)));
                 }),
      pins_abcd, 0.294);
  def(Kind::Oai21, "OAI21_X1", 3,
      make_truth(3,
                 [](auto i) { return !((bit(i, 0) || bit(i, 1)) && bit(i, 2)); }),
      pins_abcd, 0.245);
  def(Kind::Oai22, "OAI22_X1", 4,
      make_truth(4,
                 [](auto i) {
                   return !((bit(i, 0) || bit(i, 1)) &&
                            (bit(i, 2) || bit(i, 3)));
                 }),
      pins_abcd, 0.294);

  def(Kind::Dff, "DFF_X1", 1, 0x2 /* Q := D */, pins_dff, 0.784);
}

const Library& Library::instance() {
  static const Library lib;
  return lib;
}

const Info& Library::info(Kind k) const {
  const auto idx = static_cast<std::size_t>(k);
  RIPPLE_ASSERT(idx < kKindCount, "bad cell kind ", idx);
  return infos_[idx];
}

std::optional<Kind> Library::find(std::string_view name) const {
  for (const Info& ci : infos_) {
    if (ci.name == name) return ci.kind;
  }
  return std::nullopt;
}

std::span<const Kind> Library::combinational_kinds() const {
  static const std::vector<Kind> kinds = [] {
    std::vector<Kind> v;
    for (std::size_t i = 0; i < kKindCount; ++i) {
      const Kind k = static_cast<Kind>(i);
      if (k != Kind::Dff) v.push_back(k);
    }
    return v;
  }();
  return kinds;
}

} // namespace ripple::cell
