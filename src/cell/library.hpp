// The standard-cell library.
//
// Mirrors the combinational subset of the 15nm NanGate Open Cell Library the
// paper synthesized against: inverters/buffers, 2-4 input {N}AND/{N}OR,
// XOR/XNOR, a 2:1 mux, AOI/OAI complex gates, constant ties, plus a single
// positive-edge D flip-flop. Every combinational cell has exactly one output;
// its logic function is stored as a truth table (<= 4 inputs -> 16 bits),
// which is all the MATE analysis ever needs to know about a cell.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "util/assert.hpp"

namespace ripple::cell {

enum class Kind : std::uint8_t {
  Tie0,
  Tie1,
  Buf,
  Inv,
  And2,
  And3,
  And4,
  Nand2,
  Nand3,
  Nand4,
  Or2,
  Or3,
  Or4,
  Nor2,
  Nor3,
  Nor4,
  Xor2,
  Xnor2,
  Mux2, // out = S ? B : A   (pins S, A, B)
  Aoi21, // out = !((A & B) | C)
  Aoi22, // out = !((A & B) | (C & D))
  Oai21, // out = !((A | B) & C)
  Oai22, // out = !((A | B) & (C | D))
  Dff,  // positive-edge D flip-flop (pins D -> Q); handled by the netlist's
        // flop table, never instantiated as a combinational gate
};

inline constexpr std::size_t kKindCount = static_cast<std::size_t>(Kind::Dff) + 1;
inline constexpr std::size_t kMaxInputs = 4;

/// Static description of one library cell.
struct Info {
  Kind kind;
  std::string_view name;      // library cell name, e.g. "AOI21_X1"
  std::uint8_t num_inputs;    // 0 for ties
  std::uint16_t truth;        // bit i = output under input assignment i
                              // (pin j contributes bit j of i)
  std::array<std::string_view, kMaxInputs> pins; // pin names, A/B/C/D or S/A/B
  double area_um2;            // cell area, used by netlist statistics
};

/// Library-wide queries. The library is immutable and global: cells are
/// identified by Kind everywhere; names only matter for netlist (de)serialization.
class Library {
public:
  /// The one global library instance.
  static const Library& instance();

  [[nodiscard]] const Info& info(Kind k) const;

  /// Lookup by cell name (exact match), nullopt if unknown.
  [[nodiscard]] std::optional<Kind> find(std::string_view name) const;

  /// Evaluate a combinational cell: bit j of `inputs` is the value of pin j.
  [[nodiscard]] bool eval(Kind k, std::uint32_t inputs) const {
    const Info& ci = info(k);
    RIPPLE_ASSERT(k != Kind::Dff, "DFF is not combinational");
    RIPPLE_ASSERT((inputs >> ci.num_inputs) == 0, "stray input bits");
    return (ci.truth >> inputs) & 1u;
  }

  [[nodiscard]] bool eval(Kind k, std::span<const bool> inputs) const {
    std::uint32_t packed = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      packed |= static_cast<std::uint32_t>(inputs[i]) << i;
    }
    const Info& ci = info(k);
    RIPPLE_ASSERT(inputs.size() == ci.num_inputs, "pin count mismatch for ",
                  ci.name);
    return eval(k, packed);
  }

  /// All combinational kinds (everything except Dff).
  [[nodiscard]] std::span<const Kind> combinational_kinds() const;

private:
  Library();
  std::array<Info, kKindCount> infos_;
};

/// Convenience free functions.
[[nodiscard]] inline const Info& info(Kind k) {
  return Library::instance().info(k);
}
[[nodiscard]] inline bool eval(Kind k, std::uint32_t inputs) {
  return Library::instance().eval(k, inputs);
}
[[nodiscard]] inline std::string_view name(Kind k) { return info(k).name; }
[[nodiscard]] inline std::size_t num_inputs(Kind k) {
  return info(k).num_inputs;
}

} // namespace ripple::cell
