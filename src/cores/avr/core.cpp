#include "cores/avr/core.hpp"

#include "rtl/components.hpp"
#include "rtl/optimize.hpp"
#include "rtl/ports.hpp"

namespace ripple::cores::avr {

using rtl::Bus;
using rtl::Module;

namespace {

/// Elaborate the unoptimized core netlist.
///
/// Pipeline structure (2 stages, operand capture):
///   IF/ID: fetch `instr`, read both register-file ports with the *incoming*
///          instruction's register fields, forward the EX result on a write/
///          read match, and latch the operands into the EX-stage buffers
///          opa/opb together with the instruction register ir.
///   EX:    decode ir, compute the ALU result from opa/opb, write back,
///          update flags, resolve branches.
/// The operand stage buffers are what make mov/ld-style MATEs possible (the
/// paper's Section 4 example: an operation that selects only one operand
/// proves every fault in the other operand benign).
netlist::Netlist elaborate() {
  Module m("avr_core");

  // --- ports ---------------------------------------------------------------
  const Bus instr = m.input_bus("instr", kInstrBits);
  const Bus dmem_rdata = m.input_bus("dmem_rdata", kDataBits);

  // --- architectural state ---------------------------------------------------
  rtl::RegFile rf = rtl::make_regfile(m, std::string(kRegfilePrefix), 32,
                                      kDataBits);
  const Bus pc = m.state("pc", kPcBits, 0);
  const Bus ir = m.state("ir", kInstrBits, 0);
  const Bus opa = m.state("opa", kDataBits, 0); // EX operand A stage buffer
  const Bus opb = m.state("opb", kDataBits, 0); // EX operand B stage buffer
  const WireId valid = m.state1("ex_valid", false);
  const WireId flag_c = m.state1("sreg_c", false);
  const WireId flag_z = m.state1("sreg_z", false);
  const WireId flag_n = m.state1("sreg_n", false);
  const WireId flag_v = m.state1("sreg_v", false);

  // --- decode (of the EX-stage instruction register) -------------------------
  const Bus op6 = Module::slice(ir, 10, 6);
  const Bus op4 = Module::slice(ir, 12, 4);
  const auto eq6 = [&](unsigned v) { return m.equals_const(op6, v); };
  const auto eq4 = [&](unsigned v) { return m.equals_const(op4, v); };

  const WireId is_add = eq6(0b000011);
  const WireId is_adc = eq6(0b000111);
  const WireId is_sub = eq6(0b000110);
  const WireId is_sbc = eq6(0b000010);
  const WireId is_and = eq6(0b001000);
  const WireId is_eor = eq6(0b001001);
  const WireId is_or = eq6(0b001010);
  const WireId is_mov = eq6(0b001011);
  const WireId is_cp = eq6(0b000101);
  const WireId is_cpc = eq6(0b000001);

  const WireId is_cpi = eq4(0b0011);
  const WireId is_sbci = eq4(0b0100);
  const WireId is_subi = eq4(0b0101);
  const WireId is_ori = eq4(0b0110);
  const WireId is_andi = eq4(0b0111);
  const WireId is_ldi = eq4(0b1110);
  const WireId is_rjmp = eq4(0b1100);

  const Bus op7 = Module::slice(ir, 9, 7);
  const Bus fn4 = Module::slice(ir, 0, 4);
  const WireId oneop_base = m.equals_const(op7, 0b1001010);
  const WireId is_com = m.and2(oneop_base, m.equals_const(fn4, 0b0000));
  const WireId is_inc = m.and2(oneop_base, m.equals_const(fn4, 0b0011));
  const WireId is_dec = m.and2(oneop_base, m.equals_const(fn4, 0b1010));
  const WireId is_lsr = m.and2(oneop_base, m.equals_const(fn4, 0b0110));
  const WireId is_ror = m.and2(oneop_base, m.equals_const(fn4, 0b0111));

  const WireId is_ldx = m.and2(m.equals_const(op7, 0b1001000),
                               m.equals_const(fn4, 0b1100));
  const WireId is_stx = m.and2(m.equals_const(op7, 0b1001001),
                               m.equals_const(fn4, 0b1100));

  const WireId is_brbs = eq6(0b111100);
  const WireId is_brbc = eq6(0b111101);
  const WireId is_out = m.equals_const(Module::slice(ir, 11, 5), 0b10111);

  const WireId is_imm =
      m.or_all({is_cpi, is_sbci, is_subi, is_ori, is_andi, is_ldi});
  const WireId is_oneop = m.or_all({is_com, is_inc, is_dec, is_lsr, is_ror});

  // --- IF-stage register-file read (incoming instruction) -------------------
  // The read addresses come from the *fetched* word so the operands can be
  // captured into the opa/opb stage buffers at the clock edge. Immediate ops
  // address r16..r31 = {instr[7:4], 1}; the same applies to the EX-side
  // write address below (computed from ir).
  const WireId if_is_imm = [&] {
    // opcode[15:12] of the incoming word selects the immediate format:
    // 0011 CPI, 0100 SBCI, 0101 SUBI, 0110 ORI, 0111 ANDI, 1110 LDI.
    const Bus if_op4 = Module::slice(instr, 12, 4);
    return m.or_all({m.equals_const(if_op4, 0b0011),
                     m.equals_const(if_op4, 0b0100),
                     m.equals_const(if_op4, 0b0101),
                     m.equals_const(if_op4, 0b0110),
                     m.equals_const(if_op4, 0b0111),
                     m.equals_const(if_op4, 0b1110)});
  }();
  const Bus if_a_addr =
      m.mux_bus(if_is_imm, Module::slice(instr, 4, 5),
                Module::concat(Module::slice(instr, 4, 4), {m.one()}));
  const Bus if_b_addr = Module::concat(Module::slice(instr, 0, 4),
                                       {Module::slice(instr, 9, 1)[0]});

  const Bus rf_a = rtl::regfile_read(m, rf, if_a_addr);
  const Bus rf_b = rtl::regfile_read(m, rf, if_b_addr);

  // EX-side destination address (write-back and forwarding source).
  const Bus rd_field = Module::slice(ir, 4, 5);
  const Bus rd_imm = Module::concat(Module::slice(ir, 4, 4), {m.one()});
  const Bus a_addr = m.mux_bus(is_imm, rd_field, rd_imm);

  // --- ALU (EX stage, operands from the stage buffers) ----------------------
  const Bus imm_k = Module::concat(Module::slice(ir, 0, 4),
                                   Module::slice(ir, 8, 4));
  const Bus reg_a = opa;
  const Bus op_b = m.mux_bus(is_imm, opb, imm_k);
  const WireId is_incdec = m.or2(is_inc, is_dec);
  const Bus op_b2 = m.mux_bus(is_incdec, op_b, m.constant_bus(kDataBits, 1));

  const WireId sub_op = m.or_all(
      {is_sub, is_sbc, is_cp, is_cpc, is_subi, is_sbci, is_cpi, is_dec});
  const WireId use_carry = m.or_all({is_adc, is_sbc, is_cpc, is_sbci});
  // cin: add: C if carry-using else 0; sub: !C if carry-using else 1.
  const WireId cin = m.mux(sub_op, m.and2(use_carry, flag_c),
                           m.mux(use_carry, m.one(), m.not_(flag_c)));
  const Bus b_adj = m.xor_bus(op_b2, Module::splat(sub_op, kDataBits));
  const rtl::AddResult adder = m.add(reg_a, b_adj, cin);

  const WireId shift_in = m.mux(is_ror, m.zero(), flag_c);
  const Bus shift_res = m.shift_right_const(reg_a, 1, shift_in);

  const WireId use_adder = m.or_all({is_add, is_adc, is_sub, is_sbc, is_cp,
                                     is_cpc, is_subi, is_sbci, is_cpi, is_inc,
                                     is_dec});
  const WireId use_shift = m.or2(is_lsr, is_ror);
  const WireId and_grp = m.or2(is_and, is_andi);
  const WireId or_grp = m.or2(is_or, is_ori);

  // Result selection, structured by operand usage: the top mux separates the
  // pass-through leg (MOV/LDI, operand B only) from everything that reads
  // operand A, and the second level separates the deep adder from the
  // shallow logic/shift tree (0 and, 1 or, 2 eor, 3 com, 4 shift). This way
  // a single select wire isolates the whole A-operand data path.
  const WireId use_rega = m.or_all(
      {use_adder, and_grp, or_grp, is_eor, is_com, use_shift});
  const Bus logic_sel = {m.or2(or_grp, is_com), m.or2(is_eor, is_com),
                         use_shift};
  const std::vector<Bus> logic_legs = {
      m.and_bus(reg_a, op_b),
      m.or_bus(reg_a, op_b),
      m.xor_bus(reg_a, op_b),
      m.not_bus(reg_a),
      shift_res,
  };
  const Bus rega_res =
      m.mux_bus(use_adder, m.mux_tree(logic_sel, logic_legs), adder.sum);
  const Bus alu_res = m.mux_bus(use_rega, op_b, rega_res);

  const Bus wb_result = m.mux_bus(is_ldx, alu_res, dmem_rdata);

  // --- flags -------------------------------------------------------------------
  const WireId res_zero = m.is_zero(alu_res);
  const WireId z_chain = m.or_all({is_cpc, is_sbc, is_sbci});
  const WireId z_val = m.mux(z_chain, res_zero, m.and2(res_zero, flag_z));
  // C: adder ops: carry (add) / !carry = borrow (sub); shifts: old LSB;
  // COM: 1. INC/DEC leave C alone (excluded via c_we below).
  const WireId c_adder = m.xor2(adder.carry, sub_op);
  const WireId c_val = m.mux(use_shift, m.mux(is_com, c_adder, m.one()),
                             reg_a[0]);
  const WireId n_val = alu_res[kDataBits - 1];
  const WireId v_val = m.mux(
      use_adder, m.mux(use_shift, m.zero(), m.xor2(n_val, c_val)),
      adder.overflow);

  const WireId sets_flags = m.or_all(
      {is_add, is_adc, is_sub, is_sbc, is_and, is_eor, is_or, is_cp, is_cpc,
       is_cpi, is_sbci, is_subi, is_ori, is_andi, is_oneop});
  const WireId flag_we = m.and2(valid, sets_flags);
  // C is untouched by INC/DEC and by the logic group (AND/OR/EOR and their
  // immediate forms); COM does set C (to 1).
  const WireId c_we = m.and2(
      flag_we,
      m.not_(m.or_all({is_incdec, and_grp, or_grp, is_eor})));

  // Flag-input isolation (operand isolation on the flag data path): the
  // values only matter while the write enable is high, and gating them here
  // concentrates the masking capability of all flag logic into one literal.
  m.next_en(flag_c, c_we, m.and2(c_val, c_we));
  m.next_en(flag_z, flag_we, m.and2(z_val, flag_we));
  m.next_en(flag_n, flag_we, m.and2(n_val, flag_we));
  m.next_en(flag_v, flag_we, m.and2(v_val, flag_we));

  // --- register writeback --------------------------------------------------------
  const WireId writes_reg = m.or_all(
      {is_add, is_adc, is_sub, is_sbc, is_and, is_eor, is_or, is_mov, is_sbci,
       is_subi, is_ori, is_andi, is_ldi, is_oneop, is_ldx});
  const WireId wen = m.and2(valid, writes_reg);
  rtl::regfile_write(m, rf, a_addr, wen, wb_result);

  // --- operand capture with EX->IF forwarding --------------------------------
  // The IF-stage read happens while EX is still writing back; on a write/read
  // address match the EX result is captured instead of the stale value.
  const WireId fwd_a = m.and2(wen, m.equals(a_addr, if_a_addr));
  const WireId fwd_b = m.and2(wen, m.equals(a_addr, if_b_addr));
  m.next(opa, m.mux_bus(fwd_a, rf_a, wb_result));
  m.next(opb, m.mux_bus(fwd_b, rf_b, wb_result));

  // --- branches / next PC -----------------------------------------------------
  const WireId flag_sel =
      m.mux_tree1(Module::slice(ir, 0, 2),
                  std::vector<WireId>{flag_c, flag_z, flag_n, flag_v});
  const WireId taken = m.and2(
      valid, m.or_all({is_rjmp, m.and2(is_brbs, flag_sel),
                       m.and2(is_brbc, m.not_(flag_sel))}));

  const Bus k_rjmp = Module::slice(ir, 0, kPcBits); // 12-bit offset
  const Bus k_br = m.sign_extend(Module::slice(ir, 3, 7), kPcBits);
  const Bus k = m.mux_bus(is_rjmp, k_br, k_rjmp);
  const Bus target = m.add(pc, k).sum;
  const Bus pc_inc = m.add(pc, m.constant_bus(kPcBits, 1)).sum;
  const Bus pc_next = m.mux_bus(taken, pc_inc, target);

  m.next(pc, pc_next);
  m.next(ir, instr);
  m.next(valid, m.not_(taken));

  // --- output ports -----------------------------------------------------------
  // Bus payloads are qualified by their strobes, as on a real bus interface:
  // externally, dmem_wdata/io_data carry meaning only while the strobe is
  // high, so they are driven low otherwise. (This also matters for the fault
  // model: an ungated bus would make every register-read fault "externally
  // visible" even in cycles where no bus transaction happens.)
  const WireId mem_strobe = m.and2(valid, m.or2(is_ldx, is_stx));
  const WireId st_strobe = m.and2(valid, is_stx);
  const WireId out_strobe = m.and2(valid, is_out);
  // dmem_wdata and io_data both carry the A operand and are each sampled
  // only under their own strobe, so one shared gated copy drives both.
  const WireId bus_out_en = m.or2(st_strobe, out_strobe);
  const Bus reg_a_out =
      m.and_bus(reg_a, Module::splat(bus_out_en, kDataBits));

  rtl::name_output_bus(m, pc, "imem_addr");
  rtl::name_output_bus(m, m.and_bus(rf.regs[26], Module::splat(mem_strobe,
                                                               kDataBits)),
                       "dmem_addr");
  rtl::name_output_bus(m, reg_a_out, "dmem_wdata");
  rtl::name_output(m, st_strobe, "dmem_we");
  const Bus io_addr = Module::concat(Module::slice(ir, 0, 4),
                                     Module::slice(ir, 9, 2));
  rtl::name_output_bus(m, m.and_bus(io_addr, Module::splat(out_strobe, 6)),
                       "io_addr");
  rtl::name_output_bus(m, reg_a_out, "io_data");
  rtl::name_output(m, out_strobe, "io_we");

  return m.take();
}

} // namespace

AvrPorts resolve_avr_ports(const netlist::Netlist& n) {
  AvrPorts p;
  p.instr = rtl::find_bus(n, "instr", kInstrBits);
  p.dmem_rdata = rtl::find_bus(n, "dmem_rdata", kDataBits);
  p.imem_addr = rtl::find_bus(n, "imem_addr", kPcBits);
  p.dmem_addr = rtl::find_bus(n, "dmem_addr", kDataBits);
  p.dmem_wdata = rtl::find_bus(n, "dmem_wdata", kDataBits);
  p.dmem_we = rtl::find_wire_checked(n, "dmem_we");
  p.io_addr = rtl::find_bus(n, "io_addr", 6);
  p.io_data = rtl::find_bus(n, "io_data", kDataBits);
  p.io_we = rtl::find_wire_checked(n, "io_we");
  return p;
}

AvrCore build_avr_core(bool optimized) {
  netlist::Netlist n = elaborate();
  if (optimized) {
    n = rtl::optimize(n).netlist;
  }
  AvrPorts ports = resolve_avr_ports(n);
  AvrCore core{std::move(n), std::move(ports)};
  return core;
}

} // namespace ripple::cores::avr
