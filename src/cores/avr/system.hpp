// Execution harness: the AVR core netlist plus external instruction/data
// memory and the I/O port log. Plays the role of the paper's netlist
// simulation testbench and produces the wire-level traces for MATE work.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cores/avr/assembler.hpp"
#include "cores/avr/core.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ripple::sim {
class RowSink;
} // namespace ripple::sim

namespace ripple::cores::avr {

struct IoEvent {
  std::uint64_t cycle;
  std::uint8_t addr;
  std::uint8_t data;
  bool operator==(const IoEvent&) const = default;
};

class AvrSystem {
public:
  /// `core` must outlive the system.
  AvrSystem(const AvrCore& core, const Program& program);

  /// Simulate one clock cycle: settle, feed memories, settle, commit stores
  /// and I/O, clock. When `trace` is given, the settled wire values of the
  /// cycle are appended first.
  void step(sim::Trace* trace = nullptr);

  /// Run for `cycles` cycles and record the wire-level trace.
  [[nodiscard]] sim::Trace run_trace(std::size_t cycles);

  /// Run for `cycles` cycles, pushing each cycle's settled wire values into
  /// `sink` (the streaming trace path: a ChunkedTraceRecorder keeps only one
  /// chunk resident instead of the whole trace).
  void run_stream(std::size_t cycles, sim::RowSink& sink);

  /// Run without tracing (faster; used by fault-injection campaigns).
  void run(std::size_t cycles);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] const AvrCore& core() const { return *core_; }

  [[nodiscard]] const std::vector<IoEvent>& io_log() const { return io_log_; }
  [[nodiscard]] const std::array<std::uint8_t, 256>& dmem() const {
    return dmem_;
  }
  [[nodiscard]] std::array<std::uint8_t, 256>& dmem() { return dmem_; }

  /// Current program counter (the next fetch address); settles the
  /// combinational logic first.
  [[nodiscard]] std::uint16_t pc();

private:
  void step_into(sim::Trace* trace, sim::RowSink* sink);

  const AvrCore* core_;
  std::vector<std::uint16_t> imem_;
  std::array<std::uint8_t, 256> dmem_{};
  std::vector<IoEvent> io_log_;
  sim::Simulator sim_;
};

} // namespace ripple::cores::avr
