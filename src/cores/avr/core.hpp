// Gate-level AVR-subset core: 8-bit data path, 32x8 register file, two-stage
// fetch/execute pipeline, C/Z/N/V status flags — the architecture class of
// the paper's first evaluation target.
//
// Memories are external (system-model Section 2 keeps the fault space to the
// CPU): the core exposes an instruction-fetch port and a combinational-read
// data port served by the AvrSystem harness. The X pointer's low byte (r26)
// addresses 256 bytes of data memory; OUT drives the I/O port that serves as
// the architecturally visible output.
#pragma once

#include <string_view>

#include "netlist/netlist.hpp"
#include "rtl/module.hpp"

namespace ripple::cores::avr {

inline constexpr std::size_t kPcBits = 12;
inline constexpr std::size_t kDataBits = 8;
inline constexpr std::size_t kInstrBits = 16;
/// Register-file flop-name prefix; defines the "FF w/o RF" fault set.
inline constexpr std::string_view kRegfilePrefix = "rf";

struct AvrPorts {
  // inputs
  rtl::Bus instr;      // fetched instruction word
  rtl::Bus dmem_rdata; // data-memory combinational read value
  // outputs
  rtl::Bus imem_addr;  // program counter (word address)
  rtl::Bus dmem_addr;  // data address (r26)
  rtl::Bus dmem_wdata; // store value
  WireId dmem_we;      // store strobe
  rtl::Bus io_addr;    // OUT port number
  rtl::Bus io_data;    // OUT value
  WireId io_we;        // OUT strobe
};

struct AvrCore {
  netlist::Netlist netlist;
  AvrPorts ports;
};

/// Elaborate the core. With `optimized` the netlist is passed through
/// rtl::optimize(), mirroring the paper's area-optimized synthesis.
[[nodiscard]] AvrCore build_avr_core(bool optimized = true);

/// Resolve the port buses against a core netlist (used after deserializing a
/// netlist from Verilog).
[[nodiscard]] AvrPorts resolve_avr_ports(const netlist::Netlist& n);

} // namespace ripple::cores::avr
