// The two evaluation workloads of the paper for the AVR core: an iterative
// Fibonacci computation and a 1-D convolution. Both loop forever so a trace
// of any length (the paper records 8500 cycles) exercises them continuously,
// and both report results through the OUT port so fault-injection campaigns
// have an architectural observable.
#pragma once

#include <string_view>

#include "cores/avr/assembler.hpp"

namespace ripple::cores::avr {

/// 16-bit Fibonacci in registers; emits fib(20) on ports 0/1 each round.
[[nodiscard]] std::string_view fib_source();

/// Convolution of x[8] (in data memory) with h[4], 8-bit shift-add multiply;
/// emits each y[n] on port 2.
[[nodiscard]] std::string_view conv_source();

[[nodiscard]] Program fib_program();
[[nodiscard]] Program conv_program();

} // namespace ripple::cores::avr
