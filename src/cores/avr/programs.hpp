// Evaluation workloads for the AVR core. The paper's two short kernels
// (iterative Fibonacci, 1-D convolution) are joined by three long-running
// workloads for million-cycle streaming traces (bubble sort over the whole
// data memory, a CRC-32 loop, and a timer-driven event counter). All loop
// forever so a trace of any length exercises them continuously, and all
// report results through the OUT port so fault-injection campaigns have an
// architectural observable.
#pragma once

#include <string_view>
#include <vector>

#include "cores/avr/assembler.hpp"

namespace ripple::cores::avr {

/// 16-bit Fibonacci in registers; emits fib(20) on ports 0/1 each round.
[[nodiscard]] std::string_view fib_source();

/// Convolution of x[8] (in data memory) with h[4], 8-bit shift-add multiply;
/// emits each y[n] on port 2.
[[nodiscard]] std::string_view conv_source();

/// Bubble sort over the full 256-byte data memory (~650k cycles per round);
/// emits the sorted extremes each round.
[[nodiscard]] std::string_view sort_source();

/// CRC-32 (poly 0xEDB88320, LSB-first) over the 256-byte stream 0,1,...,255
/// (~20k cycles per block); emits the final CRC on ports 0..3.
[[nodiscard]] std::string_view crc_source();

/// Timer-driven event counter. The core subset has no interrupt hardware,
/// so the timer interrupt is emulated by a polled countdown: the main loop
/// mixes a working register and every 181 iterations the "ISR" fires, bumps
/// the tick counter and reports it.
[[nodiscard]] std::string_view irq_source();

[[nodiscard]] Program fib_program();
[[nodiscard]] Program conv_program();
[[nodiscard]] Program sort_program();
[[nodiscard]] Program crc_program();
[[nodiscard]] Program irq_program();

/// All workload names, in presentation order: "fib", "conv", "sort", "crc",
/// "irq". Shared spelling with the MSP430 registry and the pipeline's
/// workload lookup.
[[nodiscard]] const std::vector<std::string_view>& workload_names();

/// Source / assembled program by registry name; fails on unknown names.
[[nodiscard]] std::string_view workload_source(std::string_view name);
[[nodiscard]] Program workload_program(std::string_view name);

} // namespace ripple::cores::avr
