// AVR instruction subset: mnemonics, real AVR encodings, encode/decode.
//
// The subset covers what the evaluation workloads (fib, conv) and the
// 2-stage core need: register-register ALU, 8-bit immediates, X-indirect
// load/store, single-register ops, relative jump, SREG-conditional branches
// and the OUT port write used as the architectural observable.
//
// All instructions are one 16-bit word; encodings follow the AVR instruction
// set manual, so binaries disassemble meaningfully in standard tools.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ripple::cores::avr {

enum class Mnemonic : std::uint8_t {
  Nop,
  // register-register (Rd, Rr)
  Add,
  Adc,
  Sub,
  Sbc,
  And,
  Eor,
  Or,
  Mov,
  Cp,
  Cpc,
  // register-immediate (Rd in r16..r31, K 8-bit)
  Cpi,
  Sbci,
  Subi,
  Ori,
  Andi,
  Ldi,
  // single register
  Com,
  Inc,
  Dec,
  Lsr,
  Ror,
  // memory via X (r26)
  LdX, // LD Rd, X
  StX, // ST X, Rr
  // control flow
  Rjmp,
  Brbs, // branch if SREG bit set   (BRCS/BREQ/BRMI/BRVS)
  Brbc, // branch if SREG bit clear (BRCC/BRNE/BRPL/BRVC)
  // I/O
  Out,
};

/// SREG bit indices used by branches (subset: C, Z, N, V).
enum SregBit : std::uint8_t { kC = 0, kZ = 1, kN = 2, kV = 3 };

struct Instruction {
  Mnemonic mnemonic = Mnemonic::Nop;
  std::uint8_t rd = 0;     // destination register (0..31)
  std::uint8_t rr = 0;     // source register (0..31)
  std::uint8_t imm = 0;    // 8-bit immediate (imm ops) / 6-bit port (OUT)
  std::int16_t offset = 0; // signed word offset (RJMP: 12 bit, BRxx: 7 bit)
  std::uint8_t sreg_bit = kC; // BRBS/BRBC flag selector

  bool operator==(const Instruction&) const = default;
};

/// Encode to the 16-bit instruction word. Throws ripple::Error on operand
/// range violations (e.g. LDI with Rd < 16).
[[nodiscard]] std::uint16_t encode(const Instruction& insn);

/// Decode a word. Unknown encodings decode to nullopt (the core executes
/// them as NOP; the disassembler prints ".word").
[[nodiscard]] std::optional<Instruction> decode(std::uint16_t word);

/// Mnemonic spelling as used by assembler and disassembler ("add", "brbs").
[[nodiscard]] std::string_view mnemonic_name(Mnemonic m);

/// One-line disassembly, e.g. "add r16, r17".
[[nodiscard]] std::string disassemble(std::uint16_t word);

} // namespace ripple::cores::avr
