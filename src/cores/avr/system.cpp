#include "cores/avr/system.hpp"

#include "sim/stream.hpp"

namespace ripple::cores::avr {

AvrSystem::AvrSystem(const AvrCore& core, const Program& program)
    : core_(&core), imem_(program.words), sim_(core.netlist) {}

void AvrSystem::step(sim::Trace* trace) { step_into(trace, nullptr); }

void AvrSystem::step_into(sim::Trace* trace, sim::RowSink* sink) {
  const AvrPorts& p = core_->ports;

  // Settle register-driven outputs (fetch and data addresses depend only on
  // flop state, so one pre-pass pins them down).
  sim_.eval();
  const std::uint64_t pc = sim_.read_bus(p.imem_addr);
  sim_.drive_bus(p.instr, pc < imem_.size() ? imem_[pc] : 0 /* NOP */);
  const std::uint64_t daddr = sim_.read_bus(p.dmem_addr);
  sim_.drive_bus(p.dmem_rdata, dmem_[daddr]);
  sim_.eval();

  if (trace != nullptr) trace->append(sim_.values());
  if (sink != nullptr) sink->append_row(sim_.values());

  if (sim_.value(p.dmem_we)) {
    dmem_[daddr] = static_cast<std::uint8_t>(sim_.read_bus(p.dmem_wdata));
  }
  if (sim_.value(p.io_we)) {
    io_log_.push_back(IoEvent{
        sim_.cycle(), static_cast<std::uint8_t>(sim_.read_bus(p.io_addr)),
        static_cast<std::uint8_t>(sim_.read_bus(p.io_data))});
  }
  sim_.latch();
}

sim::Trace AvrSystem::run_trace(std::size_t cycles) {
  sim::Trace trace(core_->netlist);
  for (std::size_t c = 0; c < cycles; ++c) step(&trace);
  return trace;
}

void AvrSystem::run_stream(std::size_t cycles, sim::RowSink& sink) {
  for (std::size_t c = 0; c < cycles; ++c) step_into(nullptr, &sink);
}

void AvrSystem::run(std::size_t cycles) {
  for (std::size_t c = 0; c < cycles; ++c) step();
}

std::uint16_t AvrSystem::pc() {
  sim_.eval();
  return static_cast<std::uint16_t>(sim_.read_bus(core_->ports.imem_addr));
}

} // namespace ripple::cores::avr
