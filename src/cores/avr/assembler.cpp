#include "cores/avr/assembler.hpp"

#include <map>
#include <string>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace ripple::cores::avr {
namespace {

struct Statement {
  int line;
  std::string mnemonic; // lower-case
  std::vector<std::string> operands;
  std::size_t address; // word address (pass 1)
};

struct BranchAlias {
  std::string_view name;
  Mnemonic mnemonic; // Brbs or Brbc
  std::uint8_t bit;
};

constexpr BranchAlias kBranchAliases[] = {
    {"brcs", Mnemonic::Brbs, kC}, {"brlo", Mnemonic::Brbs, kC},
    {"breq", Mnemonic::Brbs, kZ}, {"brmi", Mnemonic::Brbs, kN},
    {"brvs", Mnemonic::Brbs, kV}, {"brcc", Mnemonic::Brbc, kC},
    {"brsh", Mnemonic::Brbc, kC}, {"brne", Mnemonic::Brbc, kZ},
    {"brpl", Mnemonic::Brbc, kN}, {"brvc", Mnemonic::Brbc, kV},
};

class Assembler {
public:
  Program run(std::string_view source) {
    pass1(source);
    return pass2();
  }

private:
  [[noreturn]] void fail(int line, const std::string& msg) const {
    throw Error("avr asm, line " + std::to_string(line) + ": " + msg);
  }

  void pass1(std::string_view source) {
    std::size_t lc = 0; // location counter, word address
    int line_no = 0;
    for (std::string_view raw : split(source, '\n')) {
      ++line_no;
      std::string_view line = raw;
      if (const auto pos = line.find(';'); pos != std::string_view::npos) {
        line = line.substr(0, pos);
      }
      if (const auto pos = line.find("//"); pos != std::string_view::npos) {
        line = line.substr(0, pos);
      }
      line = trim(line);
      if (line.empty()) continue;

      // Leading labels (possibly several on one line).
      while (true) {
        const auto colon = line.find(':');
        if (colon == std::string_view::npos) break;
        const std::string_view label = trim(line.substr(0, colon));
        if (!is_identifier(label)) {
          fail(line_no, "bad label '" + std::string(label) + "'");
        }
        if (symbols_.contains(std::string(label))) {
          fail(line_no, "duplicate symbol '" + std::string(label) + "'");
        }
        symbols_[std::string(label)] = static_cast<std::int64_t>(lc);
        line = trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;

      // Split mnemonic from operand list.
      const auto space = line.find_first_of(" \t");
      std::string mnemonic =
          to_lower(space == std::string_view::npos ? line
                                                   : line.substr(0, space));
      std::vector<std::string> operands;
      if (space != std::string_view::npos) {
        for (std::string_view op : split(line.substr(space + 1), ',')) {
          operands.emplace_back(trim(op));
        }
      }

      if (mnemonic == ".org") {
        if (operands.size() != 1) fail(line_no, ".org needs one operand");
        const auto v = parse_int(operands[0]);
        if (!v || *v < 0) fail(line_no, "bad .org operand");
        lc = static_cast<std::size_t>(*v);
        continue;
      }
      if (mnemonic == ".equ") {
        if (operands.size() != 2) fail(line_no, ".equ needs name, value");
        const auto v = parse_int(operands[1]);
        if (!v) fail(line_no, "bad .equ value");
        symbols_[operands[0]] = *v;
        continue;
      }

      statements_.push_back(Statement{line_no, std::move(mnemonic),
                                      std::move(operands), lc});
      ++lc;
    }
  }

  std::int64_t eval(const Statement& s, const std::string& expr) const {
    if (const auto v = parse_int(expr)) return *v;
    if (!expr.empty() && (expr[0] == '-' || expr[0] == '+')) {
      const std::int64_t v = eval(s, expr.substr(1));
      return expr[0] == '-' ? -v : v;
    }
    const auto it = symbols_.find(expr);
    if (it == symbols_.end()) {
      fail(s.line, "undefined symbol '" + expr + "'");
    }
    return it->second;
  }

  std::uint8_t reg(const Statement& s, const std::string& op) const {
    const std::string low = to_lower(op);
    if (low.size() >= 2 && low[0] == 'r') {
      const auto v = parse_int(low.substr(1));
      if (v && *v >= 0 && *v < 32) return static_cast<std::uint8_t>(*v);
    }
    fail(s.line, "expected register, got '" + op + "'");
  }

  std::uint8_t imm8(const Statement& s, const std::string& op) const {
    const std::int64_t v = eval(s, op);
    if (v < -128 || v > 255) {
      fail(s.line, "immediate out of 8-bit range: " + op);
    }
    return static_cast<std::uint8_t>(v & 0xff);
  }

  std::int16_t rel(const Statement& s, const std::string& op) const {
    const std::int64_t target = eval(s, op);
    const std::int64_t off =
        target - (static_cast<std::int64_t>(s.address) + 1);
    return static_cast<std::int16_t>(off);
  }

  void want_operands(const Statement& s, std::size_t n) const {
    if (s.operands.size() != n) {
      fail(s.line, s.mnemonic + " expects " + std::to_string(n) +
                       " operand(s), got " + std::to_string(s.operands.size()));
    }
  }

  Program pass2() {
    Program prog;
    for (const Statement& s : statements_) {
      Instruction insn;
      const std::string& m = s.mnemonic;

      static const std::map<std::string_view, Mnemonic> rr_ops = {
          {"add", Mnemonic::Add}, {"adc", Mnemonic::Adc},
          {"sub", Mnemonic::Sub}, {"sbc", Mnemonic::Sbc},
          {"and", Mnemonic::And}, {"eor", Mnemonic::Eor},
          {"or", Mnemonic::Or},   {"mov", Mnemonic::Mov},
          {"cp", Mnemonic::Cp},   {"cpc", Mnemonic::Cpc},
      };
      static const std::map<std::string_view, Mnemonic> imm_ops = {
          {"cpi", Mnemonic::Cpi},   {"sbci", Mnemonic::Sbci},
          {"subi", Mnemonic::Subi}, {"ori", Mnemonic::Ori},
          {"andi", Mnemonic::Andi}, {"ldi", Mnemonic::Ldi},
      };
      static const std::map<std::string_view, Mnemonic> one_ops = {
          {"com", Mnemonic::Com}, {"inc", Mnemonic::Inc},
          {"dec", Mnemonic::Dec}, {"lsr", Mnemonic::Lsr},
          {"ror", Mnemonic::Ror},
      };

      if (m == "nop") {
        want_operands(s, 0);
        insn.mnemonic = Mnemonic::Nop;
      } else if (const auto it = rr_ops.find(m); it != rr_ops.end()) {
        want_operands(s, 2);
        insn.mnemonic = it->second;
        insn.rd = reg(s, s.operands[0]);
        insn.rr = reg(s, s.operands[1]);
      } else if (const auto it2 = imm_ops.find(m); it2 != imm_ops.end()) {
        want_operands(s, 2);
        insn.mnemonic = it2->second;
        insn.rd = reg(s, s.operands[0]);
        insn.imm = imm8(s, s.operands[1]);
      } else if (const auto it3 = one_ops.find(m); it3 != one_ops.end()) {
        want_operands(s, 1);
        insn.mnemonic = it3->second;
        insn.rd = reg(s, s.operands[0]);
      } else if (m == "lsl") {
        // lsl Rd == add Rd, Rd (canonical AVR alias)
        want_operands(s, 1);
        insn.mnemonic = Mnemonic::Add;
        insn.rd = insn.rr = reg(s, s.operands[0]);
      } else if (m == "rol") {
        // rol Rd == adc Rd, Rd
        want_operands(s, 1);
        insn.mnemonic = Mnemonic::Adc;
        insn.rd = insn.rr = reg(s, s.operands[0]);
      } else if (m == "tst") {
        // tst Rd == and Rd, Rd
        want_operands(s, 1);
        insn.mnemonic = Mnemonic::And;
        insn.rd = insn.rr = reg(s, s.operands[0]);
      } else if (m == "clr") {
        // clr Rd == eor Rd, Rd
        want_operands(s, 1);
        insn.mnemonic = Mnemonic::Eor;
        insn.rd = insn.rr = reg(s, s.operands[0]);
      } else if (m == "ld") {
        want_operands(s, 2);
        if (to_lower(s.operands[1]) != "x") {
          fail(s.line, "only 'ld Rd, X' is supported");
        }
        insn.mnemonic = Mnemonic::LdX;
        insn.rd = reg(s, s.operands[0]);
      } else if (m == "st") {
        want_operands(s, 2);
        if (to_lower(s.operands[0]) != "x") {
          fail(s.line, "only 'st X, Rr' is supported");
        }
        insn.mnemonic = Mnemonic::StX;
        insn.rr = reg(s, s.operands[1]);
      } else if (m == "rjmp") {
        want_operands(s, 1);
        insn.mnemonic = Mnemonic::Rjmp;
        insn.offset = rel(s, s.operands[0]);
      } else if (m == "brbs" || m == "brbc") {
        want_operands(s, 2);
        insn.mnemonic = m == "brbs" ? Mnemonic::Brbs : Mnemonic::Brbc;
        const std::int64_t bit = eval(s, s.operands[0]);
        if (bit < 0 || bit > 3) fail(s.line, "SREG bit outside subset (0..3)");
        insn.sreg_bit = static_cast<std::uint8_t>(bit);
        insn.offset = rel(s, s.operands[1]);
      } else if (m == "out") {
        want_operands(s, 2);
        insn.mnemonic = Mnemonic::Out;
        const std::int64_t port = eval(s, s.operands[0]);
        if (port < 0 || port > 63) fail(s.line, "port out of range");
        insn.imm = static_cast<std::uint8_t>(port);
        insn.rr = reg(s, s.operands[1]);
      } else {
        bool matched = false;
        for (const BranchAlias& alias : kBranchAliases) {
          if (m == alias.name) {
            want_operands(s, 1);
            insn.mnemonic = alias.mnemonic;
            insn.sreg_bit = alias.bit;
            insn.offset = rel(s, s.operands[0]);
            matched = true;
            break;
          }
        }
        if (!matched) fail(s.line, "unknown mnemonic '" + m + "'");
      }

      if (prog.words.size() <= s.address) {
        prog.words.resize(s.address + 1, 0);
      }
      try {
        prog.words[s.address] = encode(insn);
      } catch (const Error& e) {
        fail(s.line, e.what());
      }
    }
    return prog;
  }

  std::map<std::string, std::int64_t> symbols_;
  std::vector<Statement> statements_;
};

} // namespace

Program assemble(std::string_view source) { return Assembler().run(source); }

} // namespace ripple::cores::avr
