#include "cores/avr/isa.hpp"

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace ripple::cores::avr {
namespace {

/// Pack a register-register ALU operation: oooo oord dddd rrrr.
std::uint16_t pack_rr(std::uint16_t opcode6, std::uint8_t rd,
                      std::uint8_t rr) {
  RIPPLE_CHECK(rd < 32 && rr < 32, "AVR register out of range");
  return static_cast<std::uint16_t>((opcode6 << 10) |
                                    ((rr & 0x10u) << 5) | (rd << 4) |
                                    (rr & 0x0fu));
}

/// Pack a register-immediate operation: oooo KKKK dddd KKKK (Rd = r16..r31).
std::uint16_t pack_imm(std::uint16_t opcode4, std::uint8_t rd,
                       std::uint8_t imm) {
  RIPPLE_CHECK(rd >= 16 && rd < 32, "immediate ops require r16..r31, got r",
               int(rd));
  return static_cast<std::uint16_t>((opcode4 << 12) |
                                    ((imm & 0xf0u) << 4) |
                                    ((rd - 16) << 4) | (imm & 0x0fu));
}

/// Pack a single-register operation: 1001 010d dddd ffff.
std::uint16_t pack_one(std::uint8_t rd, std::uint16_t fn4) {
  RIPPLE_CHECK(rd < 32, "AVR register out of range");
  return static_cast<std::uint16_t>(0x9400u | (rd << 4) | fn4);
}

} // namespace

std::uint16_t encode(const Instruction& insn) {
  switch (insn.mnemonic) {
    case Mnemonic::Nop:
      return 0x0000;
    case Mnemonic::Add:
      return pack_rr(0b000011, insn.rd, insn.rr);
    case Mnemonic::Adc:
      return pack_rr(0b000111, insn.rd, insn.rr);
    case Mnemonic::Sub:
      return pack_rr(0b000110, insn.rd, insn.rr);
    case Mnemonic::Sbc:
      return pack_rr(0b000010, insn.rd, insn.rr);
    case Mnemonic::And:
      return pack_rr(0b001000, insn.rd, insn.rr);
    case Mnemonic::Eor:
      return pack_rr(0b001001, insn.rd, insn.rr);
    case Mnemonic::Or:
      return pack_rr(0b001010, insn.rd, insn.rr);
    case Mnemonic::Mov:
      return pack_rr(0b001011, insn.rd, insn.rr);
    case Mnemonic::Cp:
      return pack_rr(0b000101, insn.rd, insn.rr);
    case Mnemonic::Cpc:
      return pack_rr(0b000001, insn.rd, insn.rr);
    case Mnemonic::Cpi:
      return pack_imm(0b0011, insn.rd, insn.imm);
    case Mnemonic::Sbci:
      return pack_imm(0b0100, insn.rd, insn.imm);
    case Mnemonic::Subi:
      return pack_imm(0b0101, insn.rd, insn.imm);
    case Mnemonic::Ori:
      return pack_imm(0b0110, insn.rd, insn.imm);
    case Mnemonic::Andi:
      return pack_imm(0b0111, insn.rd, insn.imm);
    case Mnemonic::Ldi:
      return pack_imm(0b1110, insn.rd, insn.imm);
    case Mnemonic::Com:
      return pack_one(insn.rd, 0b0000);
    case Mnemonic::Inc:
      return pack_one(insn.rd, 0b0011);
    case Mnemonic::Dec:
      return pack_one(insn.rd, 0b1010);
    case Mnemonic::Lsr:
      return pack_one(insn.rd, 0b0110);
    case Mnemonic::Ror:
      return pack_one(insn.rd, 0b0111);
    case Mnemonic::LdX:
      RIPPLE_CHECK(insn.rd < 32, "AVR register out of range");
      return static_cast<std::uint16_t>(0x900cu | (insn.rd << 4));
    case Mnemonic::StX:
      RIPPLE_CHECK(insn.rr < 32, "AVR register out of range");
      return static_cast<std::uint16_t>(0x920cu | (insn.rr << 4));
    case Mnemonic::Rjmp:
      RIPPLE_CHECK(insn.offset >= -2048 && insn.offset < 2048,
                   "RJMP offset out of range: ", insn.offset);
      return static_cast<std::uint16_t>(0xc000u |
                                        (static_cast<std::uint16_t>(
                                             insn.offset) &
                                         0x0fffu));
    case Mnemonic::Brbs:
    case Mnemonic::Brbc: {
      RIPPLE_CHECK(insn.offset >= -64 && insn.offset < 64,
                   "branch offset out of range: ", insn.offset);
      RIPPLE_CHECK(insn.sreg_bit < 4, "SREG bit out of subset");
      const std::uint16_t base =
          insn.mnemonic == Mnemonic::Brbs ? 0xf000u : 0xf400u;
      return static_cast<std::uint16_t>(
          base |
          ((static_cast<std::uint16_t>(insn.offset) & 0x7fu) << 3) |
          insn.sreg_bit);
    }
    case Mnemonic::Out:
      RIPPLE_CHECK(insn.rr < 32 && insn.imm < 64, "OUT operand out of range");
      return static_cast<std::uint16_t>(0xb800u | ((insn.imm & 0x30u) << 5) |
                                        (insn.rr << 4) | (insn.imm & 0x0fu));
  }
  RIPPLE_UNREACHABLE("unhandled mnemonic");
}

std::optional<Instruction> decode(std::uint16_t w) {
  Instruction insn;
  const auto rr_fields = [&] {
    insn.rd = static_cast<std::uint8_t>((w >> 4) & 0x1f);
    insn.rr = static_cast<std::uint8_t>(((w >> 5) & 0x10) | (w & 0x0f));
  };
  const auto imm_fields = [&] {
    insn.rd = static_cast<std::uint8_t>(16 + ((w >> 4) & 0x0f));
    insn.imm = static_cast<std::uint8_t>(((w >> 4) & 0xf0) | (w & 0x0f));
  };

  if (w == 0x0000) {
    insn.mnemonic = Mnemonic::Nop;
    return insn;
  }

  switch (w >> 10) {
    case 0b000011: insn.mnemonic = Mnemonic::Add; rr_fields(); return insn;
    case 0b000111: insn.mnemonic = Mnemonic::Adc; rr_fields(); return insn;
    case 0b000110: insn.mnemonic = Mnemonic::Sub; rr_fields(); return insn;
    case 0b000010: insn.mnemonic = Mnemonic::Sbc; rr_fields(); return insn;
    case 0b001000: insn.mnemonic = Mnemonic::And; rr_fields(); return insn;
    case 0b001001: insn.mnemonic = Mnemonic::Eor; rr_fields(); return insn;
    case 0b001010: insn.mnemonic = Mnemonic::Or; rr_fields(); return insn;
    case 0b001011: insn.mnemonic = Mnemonic::Mov; rr_fields(); return insn;
    case 0b000101: insn.mnemonic = Mnemonic::Cp; rr_fields(); return insn;
    case 0b000001: insn.mnemonic = Mnemonic::Cpc; rr_fields(); return insn;
    default: break;
  }

  switch (w >> 12) {
    case 0b0011: insn.mnemonic = Mnemonic::Cpi; imm_fields(); return insn;
    case 0b0100: insn.mnemonic = Mnemonic::Sbci; imm_fields(); return insn;
    case 0b0101: insn.mnemonic = Mnemonic::Subi; imm_fields(); return insn;
    case 0b0110: insn.mnemonic = Mnemonic::Ori; imm_fields(); return insn;
    case 0b0111: insn.mnemonic = Mnemonic::Andi; imm_fields(); return insn;
    case 0b1110: insn.mnemonic = Mnemonic::Ldi; imm_fields(); return insn;
    case 0b1100: {
      insn.mnemonic = Mnemonic::Rjmp;
      std::int16_t k = static_cast<std::int16_t>(w & 0x0fff);
      if (k & 0x0800) k -= 0x1000;
      insn.offset = k;
      return insn;
    }
    default: break;
  }

  if ((w & 0xfe0f) == 0x900c) {
    insn.mnemonic = Mnemonic::LdX;
    insn.rd = static_cast<std::uint8_t>((w >> 4) & 0x1f);
    return insn;
  }
  if ((w & 0xfe0f) == 0x920c) {
    insn.mnemonic = Mnemonic::StX;
    insn.rr = static_cast<std::uint8_t>((w >> 4) & 0x1f);
    return insn;
  }

  if ((w & 0xfe00) == 0x9400) {
    insn.rd = static_cast<std::uint8_t>((w >> 4) & 0x1f);
    switch (w & 0x000f) {
      case 0b0000: insn.mnemonic = Mnemonic::Com; return insn;
      case 0b0011: insn.mnemonic = Mnemonic::Inc; return insn;
      case 0b1010: insn.mnemonic = Mnemonic::Dec; return insn;
      case 0b0110: insn.mnemonic = Mnemonic::Lsr; return insn;
      case 0b0111: insn.mnemonic = Mnemonic::Ror; return insn;
      default: return std::nullopt;
    }
  }

  if ((w & 0xf800) == 0xf000 || (w & 0xf800) == 0xf800) {
    const std::uint8_t bit = static_cast<std::uint8_t>(w & 0x7);
    if (bit >= 4) return std::nullopt; // S/H/T/I outside the subset
    insn.mnemonic = (w & 0x0400) ? Mnemonic::Brbc : Mnemonic::Brbs;
    insn.sreg_bit = bit;
    std::int16_t k = static_cast<std::int16_t>((w >> 3) & 0x7f);
    if (k & 0x40) k -= 0x80;
    insn.offset = k;
    return insn;
  }

  if ((w & 0xf800) == 0xb800) {
    insn.mnemonic = Mnemonic::Out;
    insn.rr = static_cast<std::uint8_t>((w >> 4) & 0x1f);
    insn.imm = static_cast<std::uint8_t>(((w >> 5) & 0x30) | (w & 0x0f));
    return insn;
  }

  return std::nullopt;
}

std::string_view mnemonic_name(Mnemonic m) {
  switch (m) {
    case Mnemonic::Nop: return "nop";
    case Mnemonic::Add: return "add";
    case Mnemonic::Adc: return "adc";
    case Mnemonic::Sub: return "sub";
    case Mnemonic::Sbc: return "sbc";
    case Mnemonic::And: return "and";
    case Mnemonic::Eor: return "eor";
    case Mnemonic::Or: return "or";
    case Mnemonic::Mov: return "mov";
    case Mnemonic::Cp: return "cp";
    case Mnemonic::Cpc: return "cpc";
    case Mnemonic::Cpi: return "cpi";
    case Mnemonic::Sbci: return "sbci";
    case Mnemonic::Subi: return "subi";
    case Mnemonic::Ori: return "ori";
    case Mnemonic::Andi: return "andi";
    case Mnemonic::Ldi: return "ldi";
    case Mnemonic::Com: return "com";
    case Mnemonic::Inc: return "inc";
    case Mnemonic::Dec: return "dec";
    case Mnemonic::Lsr: return "lsr";
    case Mnemonic::Ror: return "ror";
    case Mnemonic::LdX: return "ld";
    case Mnemonic::StX: return "st";
    case Mnemonic::Rjmp: return "rjmp";
    case Mnemonic::Brbs: return "brbs";
    case Mnemonic::Brbc: return "brbc";
    case Mnemonic::Out: return "out";
  }
  RIPPLE_UNREACHABLE("unhandled mnemonic");
}

std::string disassemble(std::uint16_t word) {
  const auto insn = decode(word);
  if (!insn) return strprintf(".word 0x%04x", word);
  const Instruction& i = *insn;
  switch (i.mnemonic) {
    case Mnemonic::Nop:
      return "nop";
    case Mnemonic::Add:
    case Mnemonic::Adc:
    case Mnemonic::Sub:
    case Mnemonic::Sbc:
    case Mnemonic::And:
    case Mnemonic::Eor:
    case Mnemonic::Or:
    case Mnemonic::Mov:
    case Mnemonic::Cp:
    case Mnemonic::Cpc:
      return strprintf("%s r%d, r%d",
                       std::string(mnemonic_name(i.mnemonic)).c_str(), i.rd,
                       i.rr);
    case Mnemonic::Cpi:
    case Mnemonic::Sbci:
    case Mnemonic::Subi:
    case Mnemonic::Ori:
    case Mnemonic::Andi:
    case Mnemonic::Ldi:
      return strprintf("%s r%d, 0x%02x",
                       std::string(mnemonic_name(i.mnemonic)).c_str(), i.rd,
                       i.imm);
    case Mnemonic::Com:
    case Mnemonic::Inc:
    case Mnemonic::Dec:
    case Mnemonic::Lsr:
    case Mnemonic::Ror:
      return strprintf("%s r%d",
                       std::string(mnemonic_name(i.mnemonic)).c_str(), i.rd);
    case Mnemonic::LdX:
      return strprintf("ld r%d, X", i.rd);
    case Mnemonic::StX:
      return strprintf("st X, r%d", i.rr);
    case Mnemonic::Rjmp:
      return strprintf("rjmp .%+d", i.offset);
    case Mnemonic::Brbs: {
      static const char* names[4] = {"brcs", "breq", "brmi", "brvs"};
      return strprintf("%s .%+d", names[i.sreg_bit], i.offset);
    }
    case Mnemonic::Brbc: {
      static const char* names[4] = {"brcc", "brne", "brpl", "brvc"};
      return strprintf("%s .%+d", names[i.sreg_bit], i.offset);
    }
    case Mnemonic::Out:
      return strprintf("out 0x%02x, r%d", i.imm, i.rr);
  }
  RIPPLE_UNREACHABLE("unhandled mnemonic");
}

} // namespace ripple::cores::avr
