// Two-pass AVR-subset assembler.
//
// Grammar (one statement per line, ';' or '//' starts a comment):
//   label:                 -- word-address label
//   .org <expr>            -- set the location counter (word address)
//   .equ <name>, <expr>    -- define a symbol
//   <mnemonic> <operands>  -- one 16-bit instruction
//
// Operands: registers r0..r31, X (for ld/st), immediate expressions
// (decimal, 0x.., 0b.., defined symbols), label references in branches.
// Branch aliases: breq/brne (Z), brcs/brcc (C), brmi/brpl (N), brvs/brvc (V).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cores/avr/isa.hpp"

namespace ripple::cores::avr {

struct Program {
  /// Instruction memory image, index = word address.
  std::vector<std::uint16_t> words;
};

/// Assemble or throw ripple::Error with a line-numbered message.
[[nodiscard]] Program assemble(std::string_view source);

} // namespace ripple::cores::avr
