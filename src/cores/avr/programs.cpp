#include "cores/avr/programs.hpp"

#include "util/assert.hpp"

namespace ripple::cores::avr {

std::string_view fib_source() {
  return R"(
; fib: 16-bit iterative Fibonacci, repeated forever.
; r16:r17 = a, r18:r19 = b, r20:r21 = tmp, r22 = loop counter
start:
    ldi r16, 0          ; a = 0
    ldi r17, 0
    ldi r18, 1          ; b = 1
    ldi r19, 0
    ldi r22, 20         ; iterations
loop:
    mov r20, r16        ; tmp = a
    mov r21, r17
    add r20, r18        ; tmp += b
    adc r21, r19
    mov r16, r18        ; a = b
    mov r17, r19
    mov r18, r20        ; b = tmp
    mov r19, r21
    dec r22
    brne loop
    out 0x00, r16       ; emit fib(20) & 0xff
    out 0x01, r17       ; emit fib(20) >> 8
    rjmp start
)";
}

std::string_view conv_source() {
  return R"(
; conv: y[n] = sum_k x[n+k] * h[k]  for n = 0..4, k = 0..3
; x[8] and h[4] live in data memory; products are 8-bit (wraparound),
; multiplication is a software shift-add loop (the core has no multiplier).
.equ XBASE, 0x10
.equ HBASE, 0x30
.equ YBASE, 0x40
start:
    ; x[i] = 3 + 7*i
    ldi r26, XBASE
    ldi r16, 3
    ldi r17, 8
fillx:
    st X, r16
    subi r16, -7        ; r16 += 7
    inc r26
    dec r17
    brne fillx
    ; h = {1, 2, 3, 1}
    ldi r26, HBASE
    ldi r16, 1
    st X, r16
    inc r26
    ldi r16, 2
    st X, r16
    inc r26
    ldi r16, 3
    st X, r16
    inc r26
    ldi r16, 1
    st X, r16
    ; outer loop over n (r20)
    ldi r20, 0
convn:
    ldi r24, 0          ; acc
    ldi r21, 0          ; k
convk:
    mov r26, r20        ; load x[n+k]
    add r26, r21
    subi r26, -XBASE
    ld r18, X
    mov r26, r21        ; load h[k]
    subi r26, -HBASE
    ld r19, X
    ldi r25, 0          ; 8x8 shift-add multiply: r25 = r18 * r19 (mod 256)
    ldi r22, 8
mul1:
    lsr r19
    brcc mul2
    add r25, r18
mul2:
    lsl r18
    dec r22
    brne mul1
    add r24, r25        ; acc += product
    inc r21
    cpi r21, 4
    brne convk
    mov r26, r20        ; y[n] = acc
    subi r26, -YBASE
    st X, r24
    out 0x02, r24
    inc r20
    cpi r20, 5
    brne convn
    rjmp start
)";
}

std::string_view sort_source() {
  return R"(
; sort: bubble sort over the full 256-byte data memory, repeated forever.
; Filled descending (x[i] = 255 - i), sorted ascending, ~650k cycles/round.
start:
    ldi r26, 0          ; x[i] = 255 - i for all 256 bytes
    ldi r16, 255
    ldi r17, 0          ; counts 256 iterations (wraps)
fill:
    st X, r16
    dec r16
    inc r26
    dec r17
    brne fill
    ldi r20, 255        ; bubble passes
pass:
    ldi r26, 0
    ldi r21, 255        ; comparisons per pass
inner:
    ld r18, X           ; a = x[i]
    inc r26
    ld r19, X           ; b = x[i+1]
    cp r19, r18         ; carry set iff b < a
    brcc noswap
    st X, r18           ; swap: x[i+1] = a
    dec r26
    st X, r19           ; x[i] = b
    inc r26
noswap:
    dec r21
    brne inner
    dec r20
    brne pass
    ldi r26, 0          ; emit the sorted extremes
    ld r16, X
    out 0x00, r16
    ldi r26, 255
    ld r16, X
    out 0x01, r16
    rjmp start
)";
}

std::string_view crc_source() {
  return R"(
; crc: CRC-32 (poly 0xEDB88320, LSB-first) over the byte stream 0,1,...,255,
; repeated forever; emits the final CRC on ports 0..3 each block.
; crc = r16 (LSB) .. r19 (MSB); poly bytes held in r20..r23.
start:
    ldi r20, 0x20
    ldi r21, 0x83
    ldi r22, 0xB8
    ldi r23, 0xED
    ldi r16, 0xFF       ; crc = 0xFFFFFFFF
    ldi r17, 0xFF
    ldi r18, 0xFF
    ldi r19, 0xFF
    ldi r24, 0          ; message byte counter
byteloop:
    eor r16, r24        ; crc ^= byte
    ldi r25, 8
bitloop:
    lsr r19             ; crc >>= 1 (carry = old bit 0)
    ror r18
    ror r17
    ror r16
    brcc nopoly
    eor r16, r20        ; crc ^= 0xEDB88320
    eor r17, r21
    eor r18, r22
    eor r19, r23
nopoly:
    dec r25
    brne bitloop
    inc r24
    brne byteloop       ; 256 message bytes per block
    com r16             ; final inversion: crc = ~crc
    com r17
    com r18
    com r19
    out 0x00, r16
    out 0x01, r17
    out 0x02, r18
    out 0x03, r19
    rjmp start
)";
}

std::string_view irq_source() {
  return R"(
; irq: timer-driven event counter. The core subset has no interrupt
; hardware, so the timer interrupt is emulated by a polled countdown: the
; main loop mixes a working register; every 181 iterations the "ISR" fires,
; bumps the tick counter and reports it.
start:
    ldi r16, 1          ; work accumulator
    ldi r17, 0
    ldi r24, 0          ; tick counter
    ldi r20, 181        ; timer reload
main:
    add r16, r17        ; work = mix(work)
    mov r18, r16
    lsl r18
    eor r17, r18
    inc r16
    dec r20
    brne main
isr:                    ; the "timer interrupt"
    inc r24
    out 0x00, r24       ; tick count
    out 0x01, r16       ; sampled work state
    ldi r20, 181
    rjmp main
)";
}

Program fib_program() { return assemble(fib_source()); }
Program conv_program() { return assemble(conv_source()); }
Program sort_program() { return assemble(sort_source()); }
Program crc_program() { return assemble(crc_source()); }
Program irq_program() { return assemble(irq_source()); }

const std::vector<std::string_view>& workload_names() {
  static const std::vector<std::string_view> names = {"fib", "conv", "sort",
                                                      "crc", "irq"};
  return names;
}

std::string_view workload_source(std::string_view name) {
  if (name == "fib") return fib_source();
  if (name == "conv") return conv_source();
  if (name == "sort") return sort_source();
  if (name == "crc") return crc_source();
  if (name == "irq") return irq_source();
  RIPPLE_CHECK(false, "unknown AVR workload '", std::string(name), "'");
  return {};
}

Program workload_program(std::string_view name) {
  return assemble(workload_source(name));
}

} // namespace ripple::cores::avr
