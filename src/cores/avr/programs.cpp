#include "cores/avr/programs.hpp"

namespace ripple::cores::avr {

std::string_view fib_source() {
  return R"(
; fib: 16-bit iterative Fibonacci, repeated forever.
; r16:r17 = a, r18:r19 = b, r20:r21 = tmp, r22 = loop counter
start:
    ldi r16, 0          ; a = 0
    ldi r17, 0
    ldi r18, 1          ; b = 1
    ldi r19, 0
    ldi r22, 20         ; iterations
loop:
    mov r20, r16        ; tmp = a
    mov r21, r17
    add r20, r18        ; tmp += b
    adc r21, r19
    mov r16, r18        ; a = b
    mov r17, r19
    mov r18, r20        ; b = tmp
    mov r19, r21
    dec r22
    brne loop
    out 0x00, r16       ; emit fib(20) & 0xff
    out 0x01, r17       ; emit fib(20) >> 8
    rjmp start
)";
}

std::string_view conv_source() {
  return R"(
; conv: y[n] = sum_k x[n+k] * h[k]  for n = 0..4, k = 0..3
; x[8] and h[4] live in data memory; products are 8-bit (wraparound),
; multiplication is a software shift-add loop (the core has no multiplier).
.equ XBASE, 0x10
.equ HBASE, 0x30
.equ YBASE, 0x40
start:
    ; x[i] = 3 + 7*i
    ldi r26, XBASE
    ldi r16, 3
    ldi r17, 8
fillx:
    st X, r16
    subi r16, -7        ; r16 += 7
    inc r26
    dec r17
    brne fillx
    ; h = {1, 2, 3, 1}
    ldi r26, HBASE
    ldi r16, 1
    st X, r16
    inc r26
    ldi r16, 2
    st X, r16
    inc r26
    ldi r16, 3
    st X, r16
    inc r26
    ldi r16, 1
    st X, r16
    ; outer loop over n (r20)
    ldi r20, 0
convn:
    ldi r24, 0          ; acc
    ldi r21, 0          ; k
convk:
    mov r26, r20        ; load x[n+k]
    add r26, r21
    subi r26, -XBASE
    ld r18, X
    mov r26, r21        ; load h[k]
    subi r26, -HBASE
    ld r19, X
    ldi r25, 0          ; 8x8 shift-add multiply: r25 = r18 * r19 (mod 256)
    ldi r22, 8
mul1:
    lsr r19
    brcc mul2
    add r25, r18
mul2:
    lsl r18
    dec r22
    brne mul1
    add r24, r25        ; acc += product
    inc r21
    cpi r21, 4
    brne convk
    mov r26, r20        ; y[n] = acc
    subi r26, -YBASE
    st X, r24
    out 0x02, r24
    inc r20
    cpi r20, 5
    brne convn
    rjmp start
)";
}

Program fib_program() { return assemble(fib_source()); }
Program conv_program() { return assemble(conv_source()); }

} // namespace ripple::cores::avr
