#include "cores/msp430/system.hpp"

#include <algorithm>

#include "sim/stream.hpp"

namespace ripple::cores::msp430 {

Msp430System::Msp430System(const Msp430Core& core, const Image& image)
    : core_(&core), memory_(1u << 15, 0), sim_(core.netlist) {
  RIPPLE_CHECK(image.words.size() <= memory_.size(),
               "program image larger than memory");
  std::copy(image.words.begin(), image.words.end(), memory_.begin());
}

void Msp430System::step(sim::Trace* trace) { step_into(trace, nullptr); }

void Msp430System::step_into(sim::Trace* trace, sim::RowSink* sink) {
  const Msp430Ports& p = core_->ports;

  // Addresses depend only on flop state; settle, serve the word, resettle.
  sim_.eval();
  const std::uint16_t addr =
      static_cast<std::uint16_t>(sim_.read_bus(p.mem_addr));
  sim_.drive_bus(p.mem_rdata, memory_[(addr >> 1) & 0x7fff]);
  sim_.eval();

  if (trace != nullptr) trace->append(sim_.values());
  if (sink != nullptr) sink->append_row(sim_.values());

  if (sim_.value(p.mem_we)) {
    const std::uint16_t wdata =
        static_cast<std::uint16_t>(sim_.read_bus(p.mem_wdata));
    if (addr >= kIoBase) {
      io_log_.push_back(IoEvent{sim_.cycle(), addr, wdata});
    } else {
      memory_[(addr >> 1) & 0x7fff] = wdata;
    }
  }
  sim_.latch();
}

sim::Trace Msp430System::run_trace(std::size_t cycles) {
  sim::Trace trace(core_->netlist);
  for (std::size_t c = 0; c < cycles; ++c) step(&trace);
  return trace;
}

void Msp430System::run_stream(std::size_t cycles, sim::RowSink& sink) {
  for (std::size_t c = 0; c < cycles; ++c) step_into(nullptr, &sink);
}

void Msp430System::run(std::size_t cycles) {
  for (std::size_t c = 0; c < cycles; ++c) step();
}

std::uint16_t Msp430System::mem_addr() {
  sim_.eval();
  return static_cast<std::uint16_t>(sim_.read_bus(core_->ports.mem_addr));
}

} // namespace ripple::cores::msp430
