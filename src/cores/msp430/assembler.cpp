#include "cores/msp430/assembler.hpp"

#include <map>
#include <string>

#include "util/strings.hpp"

namespace ripple::cores::msp430 {
namespace {

struct Statement {
  int line;
  std::string mnemonic;
  std::vector<std::string> operands;
  std::size_t address; // byte address
  bool is_word_directive = false;
};

class Assembler {
public:
  Image run(std::string_view source) {
    pass1(source);
    return pass2();
  }

private:
  [[noreturn]] void fail(int line, const std::string& msg) const {
    throw Error("msp430 asm, line " + std::to_string(line) + ": " + msg);
  }

  std::int64_t eval(int line, const std::string& expr) const {
    if (const auto v = parse_int(expr)) return *v;
    if (!expr.empty() && (expr[0] == '-' || expr[0] == '+')) {
      const std::int64_t v = eval(line, expr.substr(1));
      return expr[0] == '-' ? -v : v;
    }
    // name+const / name-const for array addressing
    const auto plus = expr.find_last_of("+-");
    if (plus != std::string::npos && plus > 0) {
      const std::int64_t lhs = eval(line, expr.substr(0, plus));
      const std::int64_t rhs = eval(line, expr.substr(plus + 1));
      return expr[plus] == '+' ? lhs + rhs : lhs - rhs;
    }
    const auto it = symbols_.find(expr);
    if (it == symbols_.end()) {
      // During pass 1 forward label references are fine: the value never
      // affects instruction length, so size with 0 and resolve in pass 2.
      if (!resolving_) return 0;
      fail(line, "undefined symbol '" + expr + "'");
    }
    return it->second;
  }

  std::uint8_t parse_reg(int line, std::string_view text) const {
    const std::string low = to_lower(trim(text));
    if (low == "pc") return 0;
    if (low == "sp") return 1;
    if (low.size() >= 2 && low[0] == 'r') {
      if (const auto v = parse_int(low.substr(1));
          v && *v >= 0 && *v <= 15) {
        return static_cast<std::uint8_t>(*v);
      }
    }
    fail(line, "expected register, got '" + std::string(text) + "'");
  }

  /// Parse one source operand.
  Operand parse_src(int line, const std::string& text) const {
    Operand op;
    const std::string_view t = trim(text);
    RIPPLE_CHECK(!t.empty(), "empty operand");
    if (t[0] == '#') {
      op.mode = SrcMode::Immediate;
      op.reg = 0;
      op.ext = static_cast<std::uint16_t>(eval(line, std::string(t.substr(1))));
      return op;
    }
    if (t[0] == '&') {
      op.mode = SrcMode::Absolute;
      op.reg = 2;
      op.ext = static_cast<std::uint16_t>(eval(line, std::string(t.substr(1))));
      return op;
    }
    if (t[0] == '@') {
      std::string_view rest = t.substr(1);
      if (!rest.empty() && rest.back() == '+') {
        op.mode = SrcMode::AutoInc;
        rest.remove_suffix(1);
      } else {
        op.mode = SrcMode::Indirect;
      }
      op.reg = parse_reg(line, rest);
      return op;
    }
    if (t.back() == ')') {
      const auto open = t.find('(');
      if (open == std::string_view::npos) fail(line, "malformed operand");
      op.mode = SrcMode::Indexed;
      op.ext = static_cast<std::uint16_t>(
          eval(line, std::string(t.substr(0, open))));
      op.reg = parse_reg(line, t.substr(open + 1, t.size() - open - 2));
      return op;
    }
    op.mode = SrcMode::Reg;
    op.reg = parse_reg(line, t);
    return op;
  }

  void parse_dst(int line, const std::string& text, Instruction& insn) const {
    const std::string_view t = trim(text);
    RIPPLE_CHECK(!t.empty(), "empty operand");
    if (t[0] == '&') {
      insn.dst_mode = DstMode::Absolute;
      insn.dst_reg = 2;
      insn.dst_ext =
          static_cast<std::uint16_t>(eval(line, std::string(t.substr(1))));
      return;
    }
    if (t.back() == ')') {
      const auto open = t.find('(');
      if (open == std::string_view::npos) fail(line, "malformed operand");
      insn.dst_mode = DstMode::Indexed;
      insn.dst_ext = static_cast<std::uint16_t>(
          eval(line, std::string(t.substr(0, open))));
      insn.dst_reg = parse_reg(line, t.substr(open + 1, t.size() - open - 2));
      return;
    }
    insn.dst_mode = DstMode::Reg;
    insn.dst_reg = parse_reg(line, t);
  }

  /// Build the instruction for sizing (pass 1) and encoding (pass 2).
  /// In pass 1 label operands may be unresolved; expressions then evaluate
  /// as 0, which never changes instruction length.
  Instruction build(const Statement& s, bool resolve) const {
    resolving_ = resolve;
    static const std::map<std::string_view, Op1> fmt1 = {
        {"mov", Op1::Mov},   {"add", Op1::Add}, {"addc", Op1::Addc},
        {"subc", Op1::Subc}, {"sub", Op1::Sub}, {"cmp", Op1::Cmp},
        {"bit", Op1::Bit},   {"bic", Op1::Bic}, {"bis", Op1::Bis},
        {"xor", Op1::Xor},   {"and", Op1::And},
    };
    static const std::map<std::string_view, Op2> fmt2 = {
        {"rrc", Op2::Rrc},
        {"swpb", Op2::Swpb},
        {"rra", Op2::Rra},
        {"sxt", Op2::Sxt},
    };
    static const std::map<std::string_view, Cond> jumps = {
        {"jne", Cond::Jne}, {"jnz", Cond::Jne}, {"jeq", Cond::Jeq},
        {"jz", Cond::Jeq},  {"jnc", Cond::Jnc}, {"jlo", Cond::Jnc},
        {"jc", Cond::Jc},   {"jhs", Cond::Jc},  {"jn", Cond::Jn},
        {"jge", Cond::Jge}, {"jl", Cond::Jl},   {"jmp", Cond::Jmp},
    };

    Instruction insn;
    const std::string& m = s.mnemonic;

    if (m == "nop") {
      want(s, 0);
      insn.format = Instruction::Format::One;
      insn.op1 = Op1::Mov;
      insn.src = {SrcMode::Reg, 3, 0};
      insn.dst_mode = DstMode::Reg;
      insn.dst_reg = 3;
      return insn;
    }
    if (m == "br") {
      want(s, 1);
      insn.format = Instruction::Format::One;
      insn.op1 = Op1::Mov;
      insn.src = parse_src(s.line, s.operands[0]);
      insn.dst_mode = DstMode::Reg;
      insn.dst_reg = 0;
      return insn;
    }
    if (m == "clr") {
      want(s, 1);
      insn.format = Instruction::Format::One;
      insn.op1 = Op1::Mov;
      insn.src = {SrcMode::Immediate, 0, 0};
      parse_dst(s.line, s.operands[0], insn);
      return insn;
    }
    if (const auto it = fmt1.find(m); it != fmt1.end()) {
      want(s, 2);
      insn.format = Instruction::Format::One;
      insn.op1 = it->second;
      insn.src = parse_src(s.line, s.operands[0]);
      parse_dst(s.line, s.operands[1], insn);
      return insn;
    }
    if (const auto it = fmt2.find(m); it != fmt2.end()) {
      want(s, 1);
      insn.format = Instruction::Format::Two;
      insn.op2 = it->second;
      insn.reg2 = parse_reg(s.line, s.operands[0]);
      return insn;
    }
    if (const auto it = jumps.find(m); it != jumps.end()) {
      want(s, 1);
      insn.format = Instruction::Format::Jump;
      insn.cond = it->second;
      if (resolve) {
        const std::int64_t target = eval(s.line, s.operands[0]);
        const std::int64_t delta =
            target - (static_cast<std::int64_t>(s.address) + 2);
        if (delta % 2 != 0) fail(s.line, "odd jump distance");
        insn.offset = static_cast<std::int16_t>(delta / 2);
      }
      return insn;
    }
    fail(s.line, "unknown mnemonic '" + m + "'");
  }

  void want(const Statement& s, std::size_t n) const {
    if (s.operands.size() != n) {
      fail(s.line, s.mnemonic + " expects " + std::to_string(n) +
                       " operand(s), got " +
                       std::to_string(s.operands.size()));
    }
  }

  void pass1(std::string_view source) {
    std::size_t lc = 0; // byte address
    int line_no = 0;
    std::vector<std::pair<std::string, int>> pending_labels;

    for (std::string_view raw : split(source, '\n')) {
      ++line_no;
      std::string_view line = raw;
      if (const auto pos = line.find(';'); pos != std::string_view::npos) {
        line = line.substr(0, pos);
      }
      if (const auto pos = line.find("//"); pos != std::string_view::npos) {
        line = line.substr(0, pos);
      }
      line = trim(line);
      if (line.empty()) continue;

      while (true) {
        const auto colon = line.find(':');
        if (colon == std::string_view::npos) break;
        const std::string_view label = trim(line.substr(0, colon));
        if (!is_identifier(label)) {
          fail(line_no, "bad label '" + std::string(label) + "'");
        }
        if (symbols_.contains(std::string(label))) {
          fail(line_no, "duplicate symbol '" + std::string(label) + "'");
        }
        symbols_[std::string(label)] = static_cast<std::int64_t>(lc);
        line = trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;

      const auto space = line.find_first_of(" \t");
      std::string mnemonic = to_lower(
          space == std::string_view::npos ? line : line.substr(0, space));
      std::vector<std::string> operands;
      if (space != std::string_view::npos) {
        for (std::string_view op : split(line.substr(space + 1), ',')) {
          operands.emplace_back(trim(op));
        }
      }

      if (mnemonic == ".org") {
        if (operands.size() != 1) fail(line_no, ".org needs one operand");
        const std::int64_t v = eval(line_no, operands[0]);
        if (v < 0 || v % 2 != 0) fail(line_no, "bad .org (odd or negative)");
        lc = static_cast<std::size_t>(v);
        continue;
      }
      if (mnemonic == ".equ") {
        if (operands.size() != 2) fail(line_no, ".equ needs name, value");
        symbols_[operands[0]] = eval(line_no, operands[1]);
        continue;
      }

      Statement s{line_no, std::move(mnemonic), std::move(operands), lc,
                  false};
      if (s.mnemonic == ".word") {
        s.is_word_directive = true;
        lc += 2 * s.operands.size();
      } else {
        lc += 2 * encoded_length(build(s, /*resolve=*/false));
      }
      statements_.push_back(std::move(s));
    }
  }

  Image pass2() {
    resolving_ = true;
    Image image;
    const auto emit = [&](std::size_t byte_addr, std::uint16_t word) {
      const std::size_t idx = byte_addr / 2;
      if (image.words.size() <= idx) image.words.resize(idx + 1, 0);
      image.words[idx] = word;
    };
    for (const Statement& s : statements_) {
      if (s.is_word_directive) {
        for (std::size_t i = 0; i < s.operands.size(); ++i) {
          emit(s.address + 2 * i,
               static_cast<std::uint16_t>(eval(s.line, s.operands[i])));
        }
        continue;
      }
      try {
        const auto words = encode(build(s, /*resolve=*/true));
        for (std::size_t i = 0; i < words.size(); ++i) {
          emit(s.address + 2 * i, words[i]);
        }
      } catch (const Error& e) {
        fail(s.line, e.what());
      }
    }
    return image;
  }

  std::map<std::string, std::int64_t> symbols_;
  std::vector<Statement> statements_;
  mutable bool resolving_ = true; // .org/.equ/.word always resolve
};

} // namespace

Image assemble(std::string_view source) { return Assembler().run(source); }

} // namespace ripple::cores::msp430
