#include "cores/msp430/programs.hpp"

namespace ripple::cores::msp430 {

std::string_view fib_source() {
  return R"(
; fib: 16-bit iterative Fibonacci, repeated forever.
; r4 = a, r5 = b, r6 = tmp, r7 = loop counter
.equ OUT0, 0xff00
start:
    mov #0, r4
    mov #1, r5
    mov #20, r7
loop:
    mov r4, r6          ; tmp = a
    add r5, r6          ; tmp += b
    mov r5, r4          ; a = b
    mov r6, r5          ; b = tmp
    sub #1, r7
    jne loop
    mov r4, &OUT0       ; emit fib(20)
    jmp start
)";
}

std::string_view conv_source() {
  return R"(
; conv: y[n] = sum_k x[n+k] * h[k]  for n = 0..4, k = 0..3 (16-bit values)
; x[8] at XB, h[4] at HB, y[5] at YB; software shift-add multiply.
.equ XB,   0x200
.equ HB,   0x220
.equ YB,   0x240
.equ OUT2, 0xff04
start:
    ; x[i] = 3 + 7*i
    mov #XB, r4
    mov #3, r5
    mov #8, r6
fillx:
    mov r5, 0(r4)
    add #7, r5
    add #2, r4
    sub #1, r6
    jne fillx
    ; h = {1, 2, 3, 1}
    mov #HB, r4
    mov #1, 0(r4)
    mov #2, 2(r4)
    mov #3, 4(r4)
    mov #1, 6(r4)
    ; outer loop over n (r7)
    mov #0, r7
convn:
    mov #0, r8          ; acc
    mov #0, r9          ; k
convk:
    mov r7, r10         ; x[n+k]
    add r9, r10
    add r10, r10        ; byte offset
    add #XB, r10
    mov @r10, r11
    mov r9, r10         ; h[k]
    add r10, r10
    add #HB, r10
    mov @r10, r12
    mov #0, r13         ; r13 = r11 * r12 (shift-add; r12 > 0 and small)
mul1:
    bit #1, r12
    jeq mul2
    add r11, r13
mul2:
    add r11, r11
    rra r12
    jne mul1
    add r13, r8         ; acc += product
    add #1, r9
    cmp #4, r9
    jne convk
    mov r7, r10         ; y[n] = acc
    add r10, r10
    add #YB, r10
    mov r8, 0(r10)
    mov r8, &OUT2       ; emit y[n]
    add #1, r7
    cmp #5, r7
    jne convn
    jmp start
)";
}

Image fib_image() { return assemble(fib_source()); }
Image conv_image() { return assemble(conv_source()); }

} // namespace ripple::cores::msp430
