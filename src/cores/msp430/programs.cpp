#include "cores/msp430/programs.hpp"

#include "util/assert.hpp"

namespace ripple::cores::msp430 {

std::string_view fib_source() {
  return R"(
; fib: 16-bit iterative Fibonacci, repeated forever.
; r4 = a, r5 = b, r6 = tmp, r7 = loop counter
.equ OUT0, 0xff00
start:
    mov #0, r4
    mov #1, r5
    mov #20, r7
loop:
    mov r4, r6          ; tmp = a
    add r5, r6          ; tmp += b
    mov r5, r4          ; a = b
    mov r6, r5          ; b = tmp
    sub #1, r7
    jne loop
    mov r4, &OUT0       ; emit fib(20)
    jmp start
)";
}

std::string_view conv_source() {
  return R"(
; conv: y[n] = sum_k x[n+k] * h[k]  for n = 0..4, k = 0..3 (16-bit values)
; x[8] at XB, h[4] at HB, y[5] at YB; software shift-add multiply.
.equ XB,   0x200
.equ HB,   0x220
.equ YB,   0x240
.equ OUT2, 0xff04
start:
    ; x[i] = 3 + 7*i
    mov #XB, r4
    mov #3, r5
    mov #8, r6
fillx:
    mov r5, 0(r4)
    add #7, r5
    add #2, r4
    sub #1, r6
    jne fillx
    ; h = {1, 2, 3, 1}
    mov #HB, r4
    mov #1, 0(r4)
    mov #2, 2(r4)
    mov #3, 4(r4)
    mov #1, 6(r4)
    ; outer loop over n (r7)
    mov #0, r7
convn:
    mov #0, r8          ; acc
    mov #0, r9          ; k
convk:
    mov r7, r10         ; x[n+k]
    add r9, r10
    add r10, r10        ; byte offset
    add #XB, r10
    mov @r10, r11
    mov r9, r10         ; h[k]
    add r10, r10
    add #HB, r10
    mov @r10, r12
    mov #0, r13         ; r13 = r11 * r12 (shift-add; r12 > 0 and small)
mul1:
    bit #1, r12
    jeq mul2
    add r11, r13
mul2:
    add r11, r11
    rra r12
    jne mul1
    add r13, r8         ; acc += product
    add #1, r9
    cmp #4, r9
    jne convk
    mov r7, r10         ; y[n] = acc
    add r10, r10
    add #YB, r10
    mov r8, 0(r10)
    mov r8, &OUT2       ; emit y[n]
    add #1, r7
    cmp #5, r7
    jne convn
    jmp start
)";
}

std::string_view sort_source() {
  return R"(
; sort: bubble sort over a 128-word array, repeated forever.
; Filled descending (x[i] = 128 - i), sorted ascending, ~150k cycles/round.
.equ XB,   0x200
.equ OUT0, 0xff00
.equ OUT2, 0xff04
start:
    mov #XB, r4         ; x[i] = 128 - i
    mov #128, r5
    mov #128, r6
fill:
    mov r5, 0(r4)
    sub #1, r5
    add #2, r4
    sub #1, r6
    jne fill
    mov #127, r6        ; bubble passes
pass:
    mov #XB, r4
    mov #127, r7        ; comparisons per pass
inner:
    mov @r4, r8         ; a = x[i]
    mov 2(r4), r9       ; b = x[i+1]
    cmp r8, r9          ; carry set iff b >= a (unsigned)
    jhs noswap
    mov r9, 0(r4)       ; swap
    mov r8, 2(r4)
noswap:
    add #2, r4
    sub #1, r7
    jne inner
    sub #1, r6
    jne pass
    mov #XB, r4         ; emit the sorted extremes
    mov @r4, &OUT0
    mov 254(r4), &OUT2
    jmp start
)";
}

std::string_view crc_source() {
  return R"(
; crc: CRC-32 (poly 0xEDB88320, LSB-first) over the byte stream 0,1,...,255,
; repeated forever; emits the final CRC low/high words each block.
; crc = r5:r4 (r4 = low word). Logic ops set C = !Z on this core, so
; `bit #0, r3` clears carry ahead of the 32-bit rrc shift.
.equ OUT0, 0xff00
.equ OUT2, 0xff04
start:
    mov #0xffff, r4     ; crc = 0xFFFFFFFF
    mov #0xffff, r5
    mov #0, r8          ; message byte counter
byteloop:
    mov r8, r9
    and #0xff, r9
    xor r9, r4          ; crc ^= byte
    mov #8, r10
bitloop:
    bit #0, r3          ; clear carry (0 & anything -> Z=1 -> C=0)
    rrc r5              ; crc >>= 1 (carry = old bit 0)
    rrc r4
    jnc nopoly
    xor #0x8320, r4     ; crc ^= 0xEDB88320
    xor #0xEDB8, r5
nopoly:
    sub #1, r10
    jne bitloop
    add #1, r8
    cmp #256, r8
    jne byteloop        ; 256 message bytes per block
    xor #0xffff, r4     ; final inversion: crc = ~crc
    xor #0xffff, r5
    mov r4, &OUT0
    mov r5, &OUT2
    jmp start
)";
}

std::string_view irq_source() {
  return R"(
; irq: timer-driven event counter. The core subset has no interrupt
; hardware, so the timer interrupt is emulated by a polled countdown: the
; main loop mixes a working register; every 181 iterations the "ISR" fires,
; bumps the tick counter and reports it.
.equ OUT0, 0xff00
.equ OUT2, 0xff04
start:
    mov #1, r4          ; work accumulator
    mov #0, r7          ; tick counter
    mov #181, r6        ; timer reload
main:
    add r4, r4          ; work = mix(work)
    xor r6, r4
    add #1, r4
    sub #1, r6
    jne main
isr:                    ; the "timer interrupt"
    add #1, r7
    mov r7, &OUT0       ; tick count
    mov r4, &OUT2       ; sampled work state
    mov #181, r6
    jmp main
)";
}

Image fib_image() { return assemble(fib_source()); }
Image conv_image() { return assemble(conv_source()); }
Image sort_image() { return assemble(sort_source()); }
Image crc_image() { return assemble(crc_source()); }
Image irq_image() { return assemble(irq_source()); }

const std::vector<std::string_view>& workload_names() {
  static const std::vector<std::string_view> names = {"fib", "conv", "sort",
                                                      "crc", "irq"};
  return names;
}

std::string_view workload_source(std::string_view name) {
  if (name == "fib") return fib_source();
  if (name == "conv") return conv_source();
  if (name == "sort") return sort_source();
  if (name == "crc") return crc_source();
  if (name == "irq") return irq_source();
  RIPPLE_CHECK(false, "unknown MSP430 workload '", std::string(name), "'");
  return {};
}

Image workload_image(std::string_view name) {
  return assemble(workload_source(name));
}

} // namespace ripple::cores::msp430
