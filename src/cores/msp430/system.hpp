// Execution harness for the MSP430 core: unified word memory plus the
// memory-mapped output port at kIoBase and up.
#pragma once

#include <cstdint>
#include <vector>

#include "cores/msp430/assembler.hpp"
#include "cores/msp430/core.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ripple::sim {
class RowSink;
} // namespace ripple::sim

namespace ripple::cores::msp430 {

struct IoEvent {
  std::uint64_t cycle;
  std::uint16_t addr;
  std::uint16_t data;
  bool operator==(const IoEvent&) const = default;
};

class Msp430System {
public:
  /// `core` must outlive the system. The program image is copied into the
  /// start of memory.
  Msp430System(const Msp430Core& core, const Image& image);

  /// Simulate one clock cycle (settle, feed memory, settle, commit, clock).
  void step(sim::Trace* trace = nullptr);

  [[nodiscard]] sim::Trace run_trace(std::size_t cycles);

  /// Run for `cycles` cycles, pushing each cycle's settled wire values into
  /// `sink` (the streaming trace path).
  void run_stream(std::size_t cycles, sim::RowSink& sink);

  void run(std::size_t cycles);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const Msp430Core& core() const { return *core_; }
  [[nodiscard]] const std::vector<IoEvent>& io_log() const { return io_log_; }

  /// Word-addressable memory (index = byte address / 2).
  [[nodiscard]] const std::vector<std::uint16_t>& memory() const {
    return memory_;
  }
  [[nodiscard]] std::vector<std::uint16_t>& memory() { return memory_; }

  /// Current fetch/access address; settles combinational logic first.
  [[nodiscard]] std::uint16_t mem_addr();

private:
  void step_into(sim::Trace* trace, sim::RowSink* sink);

  const Msp430Core* core_;
  std::vector<std::uint16_t> memory_; // 32k words = 64 KiB
  std::vector<IoEvent> io_log_;
  sim::Simulator sim_;
};

} // namespace ripple::cores::msp430
