// Gate-level MSP430-subset core: 16-bit data path, multi-cycle FSM
// (fetch / decode / operand fetch / execute / write-back), 14 x 16-bit
// register file (R1, R3..R15; PC and SR are dedicated flops) — the
// architecture class of the paper's second evaluation target.
//
// The core exposes one unified von-Neumann memory port (word-wide,
// combinational read) served by the Msp430System harness; stores to
// addresses >= 0xff00 are treated as the output port.
#pragma once

#include <string_view>

#include "netlist/netlist.hpp"
#include "rtl/module.hpp"

namespace ripple::cores::msp430 {

inline constexpr std::size_t kWordBits = 16;
/// Register-file flop-name prefix; defines the "FF w/o RF" fault set.
inline constexpr std::string_view kRegfilePrefix = "rf";
/// Stores at or above this address are I/O, not memory.
inline constexpr std::uint16_t kIoBase = 0xff00;

/// FSM state encoding (3-bit state register).
enum State : unsigned {
  kFetch = 0,
  kDecode = 1,
  kSrcExt = 2,
  kSrcRead = 3,
  kDstExt = 4,
  kDstRead = 5,
  kExec = 6,
  kDstWrite = 7,
};

struct Msp430Ports {
  rtl::Bus mem_rdata; // input: combinational word read
  rtl::Bus mem_addr;  // output (byte address, bit 0 always 0)
  rtl::Bus mem_wdata; // output
  WireId mem_we;      // output
};

struct Msp430Core {
  netlist::Netlist netlist;
  Msp430Ports ports;
};

[[nodiscard]] Msp430Core build_msp430_core(bool optimized = true);
[[nodiscard]] Msp430Ports resolve_msp430_ports(const netlist::Netlist& n);

} // namespace ripple::cores::msp430
