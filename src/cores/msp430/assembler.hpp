// Two-pass MSP430-subset assembler.
//
// Grammar (one statement per line, ';' or '//' starts a comment):
//   label:                    -- byte-address label (kept word-aligned)
//   .org <expr>               -- set the location counter (byte address)
//   .word <expr>[, <expr>...] -- literal data words
//   .equ <name>, <expr>       -- define a symbol
//   <mnemonic> <operands>
//
// Operand syntax: rN (r1, r3..r15), #expr (immediate), expr(rN) (indexed),
// @rN, @rN+, &expr (absolute), pc (as a mov destination). Jump targets are
// labels or absolute byte addresses. `nop` expands to `mov r3, r3`,
// `br #x` to `mov #x, pc`, `clr rN` to `mov #0, rN`.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cores/msp430/isa.hpp"

namespace ripple::cores::msp430 {

struct Image {
  /// Memory image, index = byte address / 2.
  std::vector<std::uint16_t> words;
};

[[nodiscard]] Image assemble(std::string_view source);

} // namespace ripple::cores::msp430
