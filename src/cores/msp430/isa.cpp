#include "cores/msp430/isa.hpp"

#include "util/strings.hpp"

namespace ripple::cores::msp430 {
namespace {

constexpr std::uint8_t kPcReg = 0;
constexpr std::uint8_t kSrReg = 2;

struct SrcBits {
  std::uint8_t as;
  std::uint8_t reg;
  bool has_ext;
};

SrcBits src_bits(const Operand& src) {
  switch (src.mode) {
    case SrcMode::Reg:
      return {0b00, src.reg, false};
    case SrcMode::Indexed:
      return {0b01, src.reg, true};
    case SrcMode::Absolute:
      return {0b01, kSrReg, true};
    case SrcMode::Indirect:
      return {0b10, src.reg, false};
    case SrcMode::AutoInc:
      return {0b11, src.reg, false};
    case SrcMode::Immediate:
      return {0b11, kPcReg, true};
  }
  RIPPLE_UNREACHABLE("bad source mode");
}

void check_gp_reg(std::uint8_t reg, const char* what) {
  RIPPLE_CHECK(reg <= 15, "register out of range");
  RIPPLE_CHECK(reg != kPcReg && reg != kSrReg, what,
               " must be a general-purpose register (not PC/SR)");
}

} // namespace

std::vector<std::uint16_t> encode(const Instruction& insn) {
  std::vector<std::uint16_t> words;
  switch (insn.format) {
    case Instruction::Format::One: {
      if (insn.src.mode == SrcMode::Reg || insn.src.mode == SrcMode::Indexed ||
          insn.src.mode == SrcMode::Indirect ||
          insn.src.mode == SrcMode::AutoInc) {
        check_gp_reg(insn.src.reg, "source");
      }
      const SrcBits src = src_bits(insn.src);
      std::uint8_t ad = 0;
      std::uint8_t dreg = insn.dst_reg;
      bool dst_ext = false;
      switch (insn.dst_mode) {
        case DstMode::Reg:
          // R0 as plain destination = absolute branch (mov #addr, pc).
          RIPPLE_CHECK(dreg != kSrReg, "SR is not a writable destination");
          break;
        case DstMode::Indexed:
          check_gp_reg(dreg, "destination base");
          ad = 1;
          dst_ext = true;
          break;
        case DstMode::Absolute:
          ad = 1;
          dreg = kSrReg;
          dst_ext = true;
          break;
      }
      words.push_back(static_cast<std::uint16_t>(
          (static_cast<std::uint16_t>(insn.op1) << 12) | (src.reg << 8) |
          (ad << 7) | (src.as << 4) | dreg));
      if (src.has_ext) words.push_back(insn.src.ext);
      if (dst_ext) words.push_back(insn.dst_ext);
      return words;
    }
    case Instruction::Format::Two: {
      check_gp_reg(insn.reg2, "operand");
      words.push_back(static_cast<std::uint16_t>(
          0x1000u | (static_cast<std::uint16_t>(insn.op2) << 7) | insn.reg2));
      return words;
    }
    case Instruction::Format::Jump: {
      RIPPLE_CHECK(insn.offset >= -512 && insn.offset < 512,
                   "jump offset out of range: ", insn.offset);
      words.push_back(static_cast<std::uint16_t>(
          0x2000u | (static_cast<std::uint16_t>(insn.cond) << 10) |
          (static_cast<std::uint16_t>(insn.offset) & 0x3ff)));
      return words;
    }
  }
  RIPPLE_UNREACHABLE("bad format");
}

std::size_t encoded_length(const Instruction& insn) {
  switch (insn.format) {
    case Instruction::Format::One: {
      std::size_t len = 1;
      if (insn.src.mode == SrcMode::Indexed ||
          insn.src.mode == SrcMode::Absolute ||
          insn.src.mode == SrcMode::Immediate) {
        ++len;
      }
      if (insn.dst_mode != DstMode::Reg) ++len;
      return len;
    }
    case Instruction::Format::Two:
    case Instruction::Format::Jump:
      return 1;
  }
  RIPPLE_UNREACHABLE("bad format");
}

std::optional<Instruction> decode(const std::vector<std::uint16_t>& words,
                                  std::size_t pos) {
  if (pos >= words.size()) return std::nullopt;
  const std::uint16_t w = words[pos];
  std::size_t next_ext = pos + 1;
  const auto take_ext = [&]() -> std::optional<std::uint16_t> {
    if (next_ext >= words.size()) return std::nullopt;
    return words[next_ext++];
  };

  Instruction insn;
  const std::uint16_t top4 = w >> 12;

  if ((w & 0xfc00) == 0x1000) {
    const std::uint16_t op = (w >> 7) & 0x7;
    if (op > 3) return std::nullopt;        // PUSH/CALL/RETI outside subset
    if ((w & 0x0070) != 0) return std::nullopt; // B/W or non-register mode
    insn.format = Instruction::Format::Two;
    insn.op2 = static_cast<Op2>(op);
    insn.reg2 = static_cast<std::uint8_t>(w & 0xf);
    if (insn.reg2 == kPcReg || insn.reg2 == kSrReg) return std::nullopt;
    return insn;
  }

  if ((w & 0xe000) == 0x2000) {
    insn.format = Instruction::Format::Jump;
    insn.cond = static_cast<Cond>((w >> 10) & 0x7);
    std::int16_t off = static_cast<std::int16_t>(w & 0x3ff);
    if (off & 0x200) off -= 0x400;
    insn.offset = off;
    return insn;
  }

  if (top4 >= 0x4 && top4 != 0xa) {
    insn.format = Instruction::Format::One;
    insn.op1 = static_cast<Op1>(top4);
    if (w & 0x0040) return std::nullopt; // byte mode outside subset
    const std::uint8_t sreg = (w >> 8) & 0xf;
    const std::uint8_t as = (w >> 4) & 0x3;
    const std::uint8_t ad = (w >> 7) & 0x1;
    const std::uint8_t dreg = w & 0xf;

    switch (as) {
      case 0b00:
        if (sreg == kPcReg || sreg == kSrReg) return std::nullopt;
        insn.src = {SrcMode::Reg, sreg, 0};
        break;
      case 0b01: {
        const auto ext = take_ext();
        if (!ext) return std::nullopt;
        if (sreg == kSrReg) {
          insn.src = {SrcMode::Absolute, kSrReg, *ext};
        } else if (sreg == kPcReg) {
          return std::nullopt; // symbolic mode outside subset
        } else {
          insn.src = {SrcMode::Indexed, sreg, *ext};
        }
        break;
      }
      case 0b10:
        if (sreg == kPcReg || sreg == kSrReg) return std::nullopt;
        insn.src = {SrcMode::Indirect, sreg, 0};
        break;
      case 0b11:
        if (sreg == kPcReg) {
          const auto ext = take_ext();
          if (!ext) return std::nullopt;
          insn.src = {SrcMode::Immediate, kPcReg, *ext};
        } else if (sreg == kSrReg) {
          return std::nullopt; // constant generator outside subset
        } else {
          insn.src = {SrcMode::AutoInc, sreg, 0};
        }
        break;
    }

    if (ad == 0) {
      if (dreg == kSrReg) return std::nullopt;
      insn.dst_mode = DstMode::Reg;
      insn.dst_reg = dreg;
    } else {
      const auto ext = take_ext();
      if (!ext) return std::nullopt;
      if (dreg == kSrReg) {
        insn.dst_mode = DstMode::Absolute;
        insn.dst_reg = kSrReg;
      } else if (dreg == kPcReg) {
        return std::nullopt;
      } else {
        insn.dst_mode = DstMode::Indexed;
        insn.dst_reg = dreg;
      }
      insn.dst_ext = *ext;
    }
    return insn;
  }

  return std::nullopt;
}

std::string_view op1_name(Op1 op) {
  switch (op) {
    case Op1::Mov: return "mov";
    case Op1::Add: return "add";
    case Op1::Addc: return "addc";
    case Op1::Subc: return "subc";
    case Op1::Sub: return "sub";
    case Op1::Cmp: return "cmp";
    case Op1::Bit: return "bit";
    case Op1::Bic: return "bic";
    case Op1::Bis: return "bis";
    case Op1::Xor: return "xor";
    case Op1::And: return "and";
  }
  RIPPLE_UNREACHABLE("bad op1");
}

std::string_view op2_name(Op2 op) {
  switch (op) {
    case Op2::Rrc: return "rrc";
    case Op2::Swpb: return "swpb";
    case Op2::Rra: return "rra";
    case Op2::Sxt: return "sxt";
  }
  RIPPLE_UNREACHABLE("bad op2");
}

std::string_view cond_name(Cond c) {
  switch (c) {
    case Cond::Jne: return "jne";
    case Cond::Jeq: return "jeq";
    case Cond::Jnc: return "jnc";
    case Cond::Jc: return "jc";
    case Cond::Jn: return "jn";
    case Cond::Jge: return "jge";
    case Cond::Jl: return "jl";
    case Cond::Jmp: return "jmp";
  }
  RIPPLE_UNREACHABLE("bad cond");
}

std::string disassemble(const std::vector<std::uint16_t>& words,
                        std::size_t pos) {
  const auto insn = decode(words, pos);
  if (!insn) {
    return pos < words.size() ? strprintf(".word 0x%04x", words[pos])
                              : std::string(".word ???");
  }
  const auto src_str = [&](const Operand& o) -> std::string {
    switch (o.mode) {
      case SrcMode::Reg: return strprintf("r%d", o.reg);
      case SrcMode::Indexed: return strprintf("%d(r%d)", o.ext, o.reg);
      case SrcMode::Absolute: return strprintf("&0x%04x", o.ext);
      case SrcMode::Indirect: return strprintf("@r%d", o.reg);
      case SrcMode::AutoInc: return strprintf("@r%d+", o.reg);
      case SrcMode::Immediate: return strprintf("#0x%04x", o.ext);
    }
    return "?";
  };
  switch (insn->format) {
    case Instruction::Format::One: {
      std::string dst;
      switch (insn->dst_mode) {
        case DstMode::Reg:
          dst = insn->dst_reg == 0 ? "pc" : strprintf("r%d", insn->dst_reg);
          break;
        case DstMode::Indexed:
          dst = strprintf("%d(r%d)", insn->dst_ext, insn->dst_reg);
          break;
        case DstMode::Absolute:
          dst = strprintf("&0x%04x", insn->dst_ext);
          break;
      }
      return std::string(op1_name(insn->op1)) + " " + src_str(insn->src) +
             ", " + dst;
    }
    case Instruction::Format::Two:
      return strprintf("%s r%d", std::string(op2_name(insn->op2)).c_str(),
                       insn->reg2);
    case Instruction::Format::Jump:
      return strprintf("%s .%+d", std::string(cond_name(insn->cond)).c_str(),
                       insn->offset);
  }
  RIPPLE_UNREACHABLE("bad format");
}

} // namespace ripple::cores::msp430
