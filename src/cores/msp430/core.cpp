#include "cores/msp430/core.hpp"

#include "rtl/components.hpp"
#include "rtl/optimize.hpp"
#include "rtl/ports.hpp"

namespace ripple::cores::msp430 {

using rtl::Bus;
using rtl::Module;

namespace {

/// Register number -> register-file index: R1 -> 0, R3..R15 -> 1..13.
/// (R0/R2 never reach the register file; control guards all accesses.)
Bus rf_index(Module& m, const Bus& r) {
  const Bus minus2 = m.add(r, m.constant_bus(4, 0b1110)).sum; // r - 2 mod 16
  return m.mux_bus(m.equals_const(r, 1), minus2, m.constant_bus(4, 0));
}

netlist::Netlist elaborate() {
  Module m("msp430_core");

  // --- ports -----------------------------------------------------------------
  const Bus mem_rdata = m.input_bus("mem_rdata", kWordBits);

  // --- state -----------------------------------------------------------------
  rtl::RegFile rf =
      rtl::make_regfile(m, std::string(kRegfilePrefix), 14, kWordBits);
  const Bus pc = m.state("pc", kWordBits, 0);
  const Bus ir = m.state("ir", kWordBits, 0);
  const Bus st = m.state("fsm", 3, kFetch);
  const Bus src_val = m.state("src_val", kWordBits, 0);
  const Bus dst_val = m.state("dst_val", kWordBits, 0);
  const Bus addr = m.state("addr", kWordBits, 0);
  const WireId flag_c = m.state1("sr_c", false);
  const WireId flag_z = m.state1("sr_z", false);
  const WireId flag_n = m.state1("sr_n", false);
  const WireId flag_v = m.state1("sr_v", false);

  // --- FSM state decode --------------------------------------------------------
  const WireId in_fetch = m.equals_const(st, kFetch);
  const WireId in_decode = m.equals_const(st, kDecode);
  const WireId in_src_ext = m.equals_const(st, kSrcExt);
  const WireId in_src_read = m.equals_const(st, kSrcRead);
  const WireId in_dst_ext = m.equals_const(st, kDstExt);
  const WireId in_dst_read = m.equals_const(st, kDstRead);
  const WireId in_exec = m.equals_const(st, kExec);
  const WireId in_dst_write = m.equals_const(st, kDstWrite);

  // --- instruction decode --------------------------------------------------------
  const Bus op4 = Module::slice(ir, 12, 4);
  const auto eq4 = [&](unsigned v) { return m.equals_const(op4, v); };
  const WireId is_fmt2 = m.equals_const(Module::slice(ir, 10, 6), 0b000100);
  const WireId is_jump = m.equals_const(Module::slice(ir, 13, 3), 0b001);

  const WireId is_mov = eq4(0x4);
  const WireId is_add = eq4(0x5);
  const WireId is_addc = eq4(0x6);
  const WireId is_subc = eq4(0x7);
  const WireId is_sub = eq4(0x8);
  const WireId is_cmp = eq4(0x9);
  const WireId is_bit = eq4(0xb);
  const WireId is_bic = eq4(0xc);
  const WireId is_bis = eq4(0xd);
  const WireId is_xor = eq4(0xe);
  const WireId is_and = eq4(0xf);
  (void)is_mov;

  const Bus s_field = Module::slice(ir, 8, 4);
  const Bus as_field = Module::slice(ir, 4, 2);
  const WireId ad = Module::slice(ir, 7, 1)[0];
  const Bus d_field = Module::slice(ir, 0, 4);
  const Bus op2_field = Module::slice(ir, 7, 2);

  const WireId s_is_pc = m.equals_const(s_field, 0);
  const WireId s_is_sr = m.equals_const(s_field, 2);
  const WireId d_is_pc = m.equals_const(d_field, 0);
  const WireId d_is_sr = m.equals_const(d_field, 2);
  (void)d_is_sr;

  const WireId as_reg = m.equals_const(as_field, 0b00);
  const WireId as_idx = m.equals_const(as_field, 0b01);
  const WireId as_ind = m.equals_const(as_field, 0b10);
  const WireId as_inc = m.equals_const(as_field, 0b11);
  const WireId src_is_imm = m.and2(as_inc, s_is_pc);

  // --- register-file read ports ---------------------------------------------------
  const Bus rs_idx = rf_index(m, s_field);
  const Bus rd_idx = rf_index(m, d_field);
  const Bus rs_val = rtl::regfile_read(m, rf, rs_idx);
  const Bus rd_val = rtl::regfile_read(m, rf, rd_idx);

  // --- ALU --------------------------------------------------------------------------
  const Bus dst_op = m.mux_bus(ad, rd_val, dst_val);

  const WireId sub_like = m.or_all({is_subc, is_sub, is_cmp});
  const WireId use_carry = m.or2(is_addc, is_subc);
  const WireId use_adder =
      m.or_all({is_add, is_addc, is_sub, is_subc, is_cmp});
  const WireId cin = m.mux(sub_like, m.and2(use_carry, flag_c),
                           m.mux(use_carry, m.one(), flag_c));
  const Bus b_adj = m.xor_bus(src_val, Module::splat(sub_like, kWordBits));
  const rtl::AddResult adder = m.add(dst_op, b_adj, cin);

  // Format II operates on src_val (the register value latched in DECODE).
  const Bus rrc_res = m.shift_right_const(src_val, 1, flag_c);
  const Bus swpb_res = Module::concat(Module::slice(src_val, 8, 8),
                                      Module::slice(src_val, 0, 8));
  const Bus rra_res =
      m.shift_right_const(src_val, 1, src_val[kWordBits - 1]);
  const Bus sxt_res = Module::concat(
      Module::slice(src_val, 0, 8), Module::splat(src_val[7], 8));

  const WireId f2_rrc = m.and2(is_fmt2, m.equals_const(op2_field, 0b00));
  const WireId f2_swpb = m.and2(is_fmt2, m.equals_const(op2_field, 0b01));
  const WireId f2_rra = m.and2(is_fmt2, m.equals_const(op2_field, 0b10));
  const WireId f2_sxt = m.and2(is_fmt2, m.equals_const(op2_field, 0b11));

  // Result selection: the (deep) adder leg gets the top mux level so its
  // output reaches the execute-stage isolation gate in one hop; the shallow
  // legs go through a balanced tree over a binary-encoded op index
  // (0 mov, 1 and/bit, 2 bic, 3 bis, 4 xor, 5 rrc, 6 swpb, 7 rra, 8 sxt).
  const WireId and_grp = m.or2(is_and, is_bit);
  const Bus res_sel = {
      m.or_all({and_grp, is_bis, f2_rrc, f2_rra}),
      m.or_all({is_bic, is_bis, f2_swpb, f2_rra}),
      m.or_all({is_xor, f2_rrc, f2_swpb, f2_rra}),
      f2_sxt,
  };
  const std::vector<Bus> res_legs = {
      src_val, // MOV
      m.and_bus(dst_op, src_val),
      m.and_bus(dst_op, m.not_bus(src_val)),
      m.or_bus(dst_op, src_val),
      m.xor_bus(dst_op, src_val),
      rrc_res,
      swpb_res,
      rra_res,
      sxt_res,
  };
  const Bus result =
      m.mux_bus(use_adder, m.mux_tree(res_sel, res_legs), adder.sum);
  // Operand isolation: every consumer of the ALU result (PC, register file,
  // src_val staging, store data) is active only in EXEC, so the result bus is
  // gated once here instead of relying on each consumer's own enable.
  const Bus result_g = m.and_bus(result, Module::splat(in_exec, kWordBits));

  // --- flags ------------------------------------------------------------------------
  const WireId res_zero = m.is_zero(result);
  const WireId n_val = result[kWordBits - 1];
  // MSP430 carry: adder carry for add/sub (no-borrow semantics), !Z for the
  // logic ops (AND/BIT/XOR/SXT), shifted-out bit for RRA/RRC.
  const WireId fmt1_c = m.mux(use_adder, m.not_(res_zero), adder.carry);
  const WireId op2_is_sxt = m.equals_const(op2_field, 0b11);
  const WireId fmt2_c = m.mux(op2_is_sxt, src_val[0], m.not_(res_zero));
  const WireId c_val = m.mux(is_fmt2, fmt1_c, fmt2_c);
  // V: signed overflow for add/sub; "both operands negative" for XOR;
  // cleared by the other flag-setting ops.
  const WireId xor_v =
      m.and2(src_val[kWordBits - 1], dst_op[kWordBits - 1]);
  const WireId fmt1_v =
      m.mux(use_adder, m.mux(is_xor, m.zero(), xor_v), adder.overflow);
  const WireId v_val = m.mux(is_fmt2, fmt1_v, m.zero());

  const WireId op2_is_swpb = m.equals_const(op2_field, 0b01);
  const WireId fmt1_sets =
      m.or_all({use_adder, is_and, is_bit, is_xor});
  const WireId sets_flags =
      m.mux(is_fmt2, fmt1_sets, m.not_(op2_is_swpb));
  const WireId flag_we = m.and2(in_exec, sets_flags);
  // Flag-input isolation, same rationale as result_g: the values only matter
  // while flag_we (which implies in_exec) is high. Gating with the pure FSM
  // wire keeps the isolation signal outside every datapath fault cone.
  m.next_en(flag_c, flag_we, m.and2(c_val, in_exec));
  m.next_en(flag_z, flag_we, m.and2(res_zero, in_exec));
  m.next_en(flag_n, flag_we, m.and2(n_val, in_exec));
  m.next_en(flag_v, flag_we, m.and2(v_val, in_exec));

  // --- jump condition ------------------------------------------------------------------
  const Bus cond = Module::slice(ir, 10, 3);
  const WireId nxv = m.xor2(flag_n, flag_v);
  const std::vector<WireId> cond_options = {
      m.not_(flag_z), flag_z,      m.not_(flag_c), flag_c,
      flag_n,         m.not_(nxv), nxv,            m.one()};
  const WireId cond_true = m.mux_tree1(cond, cond_options);
  const WireId take_jump = m.and_all({in_decode, is_jump, cond_true});

  // --- PC ---------------------------------------------------------------------------------
  const Bus pc_plus2 = m.add(pc, m.constant_bus(kWordBits, 2)).sum;
  const Bus joff = m.sign_extend(Module::slice(ir, 0, 10), kWordBits - 1);
  const Bus jump_target = m.add(pc, Module::concat({m.zero()}, joff)).sum;

  const WireId fmt1_writes = m.and2(m.not_(is_cmp), m.not_(is_bit));
  const WireId writes_reg_exec =
      m.and2(in_exec, m.mux(is_fmt2, m.and2(fmt1_writes, m.not_(ad)),
                            m.one()));
  const WireId exec_wr_pc =
      m.and_all({writes_reg_exec, d_is_pc, m.not_(is_fmt2)});

  Bus pc_next = pc_plus2;
  pc_next = m.mux_bus(in_decode, pc_next, jump_target);
  pc_next = m.mux_bus(in_exec, pc_next, result_g);
  const WireId pc_en = m.or_all(
      {in_fetch, take_jump, in_src_ext, in_dst_ext,
       m.and2(in_src_read, src_is_imm), exec_wr_pc});
  m.next_en(pc, pc_en, pc_next);

  // --- IR ----------------------------------------------------------------------------------
  m.next_en(ir, in_fetch, mem_rdata);

  // --- operand/address registers -------------------------------------------------------------
  // src_val: register value in DECODE, memory word in SRC_READ, and the ALU
  // result on the way to DST_WRITE.
  Bus src_next = m.mux_bus(is_fmt2, rs_val, rd_val);
  src_next = m.mux_bus(in_src_read, src_next, mem_rdata);
  src_next = m.mux_bus(in_exec, src_next, result_g);
  const WireId src_en = m.or_all(
      {in_decode, in_src_read,
       m.and_all({in_exec, fmt1_writes, ad, m.not_(is_fmt2)})});
  // Isolation: src_val only latches in these states (pure FSM signal).
  const WireId src_states = m.or_all({in_decode, in_src_read, in_exec});
  m.next_en(src_val, src_en,
            m.and_bus(src_next, Module::splat(src_states, kWordBits)));

  m.next_en(dst_val, in_dst_read, mem_rdata);

  // addr: @Rn/@Rn+ base in DECODE (PC for immediates), base+ext in the EXT
  // states (absolute uses base 0). One shared adder serves both EXT states.
  const Bus base_s = m.mux_bus(s_is_sr, rs_val, m.constant_bus(kWordBits, 0));
  const Bus base_d = m.mux_bus(d_is_sr, rd_val, m.constant_bus(kWordBits, 0));
  const Bus ext_base = m.mux_bus(in_dst_ext, base_s, base_d);
  const Bus ext_sum = m.add(ext_base, mem_rdata).sum;
  Bus addr_next = m.mux_bus(s_is_pc, rs_val, pc);
  addr_next = m.mux_bus(m.or2(in_src_ext, in_dst_ext), addr_next, ext_sum);
  const WireId addr_en = m.or_all(
      {m.and_all({in_decode, m.or2(as_ind, as_inc), m.not_(is_fmt2),
                  m.not_(is_jump)}),
       in_src_ext, in_dst_ext});
  const WireId addr_states = m.or_all({in_decode, in_src_ext, in_dst_ext});
  m.next_en(addr, addr_en,
            m.and_bus(addr_next, Module::splat(addr_states, kWordBits)));

  // --- register-file write (one port, two producers in disjoint states) ----------------
  // Isolation on the write path: the auto-increment value is only consumed
  // in SRC_READ and the write address only in the two writing states, so
  // both are gated with pure FSM signals.
  const Bus rs_gated =
      m.and_bus(rs_val, Module::splat(in_src_read, kWordBits));
  const Bus rs_plus2 = m.add(rs_gated, m.constant_bus(kWordBits, 2)).sum;
  const WireId inc_write =
      m.and_all({in_src_read, as_inc, m.not_(s_is_pc), m.not_(is_fmt2)});
  const WireId exec_write = m.and2(writes_reg_exec, m.not_(exec_wr_pc));
  const WireId wen = m.or2(inc_write, exec_write);
  const WireId wr_states = m.or2(in_src_read, in_exec);
  const Bus waddr =
      m.and_bus(m.mux_bus(inc_write, rd_idx, rs_idx),
                Module::splat(wr_states, 4));
  const Bus wdata = m.mux_bus(inc_write, result_g, rs_plus2);
  rtl::regfile_write(m, rf, waddr, wen, wdata);

  // --- FSM next state -------------------------------------------------------------------
  const auto state_const = [&](unsigned s) { return m.constant_bus(3, s); };
  Bus decode_next = m.mux_bus(ad, state_const(kExec), state_const(kDstExt));
  decode_next = m.mux_bus(as_idx, decode_next, state_const(kSrcExt));
  decode_next = m.mux_bus(m.or2(as_ind, as_inc), decode_next,
                          state_const(kSrcRead));
  decode_next = m.mux_bus(is_fmt2, decode_next, state_const(kExec));
  decode_next = m.mux_bus(is_jump, decode_next, state_const(kFetch));

  const Bus after_src =
      m.mux_bus(ad, state_const(kExec), state_const(kDstExt));
  const Bus after_exec = m.mux_bus(
      m.and_all({fmt1_writes, ad, m.not_(is_fmt2)}), state_const(kFetch),
      state_const(kDstWrite));

  const std::vector<Bus> state_options = {
      state_const(kDecode), // from FETCH
      decode_next,          // from DECODE
      state_const(kSrcRead),
      after_src,            // from SRC_READ
      state_const(kDstRead),
      state_const(kExec),   // from DST_READ
      after_exec,           // from EXEC
      state_const(kFetch),  // from DST_WRITE
  };
  m.next(st, m.mux_tree(st, state_options));

  // --- memory port -----------------------------------------------------------------------
  const WireId addr_is_pc = m.or_all({in_fetch, in_src_ext, in_dst_ext});
  const Bus mem_addr_raw = m.mux_bus(addr_is_pc, addr, pc);
  const WireId rd_strobe = m.or_all(
      {in_fetch, in_src_ext, in_dst_ext, in_src_read, in_dst_read});
  const WireId mem_strobe = m.or2(rd_strobe, in_dst_write);
  rtl::name_output_bus(
      m, m.and_bus(mem_addr_raw, Module::splat(mem_strobe, kWordBits)),
      "mem_addr");
  rtl::name_output_bus(
      m, m.and_bus(src_val, Module::splat(in_dst_write, kWordBits)),
      "mem_wdata");
  rtl::name_output(m, in_dst_write, "mem_we");

  return m.take();
}

} // namespace

Msp430Ports resolve_msp430_ports(const netlist::Netlist& n) {
  Msp430Ports p;
  p.mem_rdata = rtl::find_bus(n, "mem_rdata", kWordBits);
  p.mem_addr = rtl::find_bus(n, "mem_addr", kWordBits);
  p.mem_wdata = rtl::find_bus(n, "mem_wdata", kWordBits);
  p.mem_we = rtl::find_wire_checked(n, "mem_we");
  return p;
}

Msp430Core build_msp430_core(bool optimized) {
  netlist::Netlist n = elaborate();
  if (optimized) {
    n = rtl::optimize(n).netlist;
  }
  Msp430Ports ports = resolve_msp430_ports(n);
  return Msp430Core{std::move(n), std::move(ports)};
}

} // namespace ripple::cores::msp430
