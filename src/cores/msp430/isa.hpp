// MSP430 instruction subset: real Format I / Format II / jump encodings.
//
// Subset: word mode (.W) only; Format II limited to register operands;
// no constant generators (immediates always use the @PC+ extension word);
// R0 = PC and R2 = SR are not general-purpose operands (R0 is legal as a
// move destination — an absolute branch — and as the implicit @PC+ source).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace ripple::cores::msp430 {

/// Format I opcodes (bits 15:12).
enum class Op1 : std::uint8_t {
  Mov = 0x4,
  Add = 0x5,
  Addc = 0x6,
  Subc = 0x7,
  Sub = 0x8,
  Cmp = 0x9,
  Bit = 0xb,
  Bic = 0xc,
  Bis = 0xd,
  Xor = 0xe,
  And = 0xf,
};

/// Format II opcodes (bits 9:7 under the 000100 prefix).
enum class Op2 : std::uint8_t {
  Rrc = 0,
  Swpb = 1,
  Rra = 2,
  Sxt = 3,
};

/// Jump conditions (bits 12:10 under the 001 prefix).
enum class Cond : std::uint8_t {
  Jne = 0,
  Jeq = 1,
  Jnc = 2,
  Jc = 3,
  Jn = 4,
  Jge = 5,
  Jl = 6,
  Jmp = 7,
};

/// Source addressing mode (As plus register special cases).
enum class SrcMode : std::uint8_t {
  Reg,       // Rn            As=00
  Indexed,   // X(Rn)         As=01 + ext word
  Absolute,  // &ADDR         As=01, reg=SR + ext word
  Indirect,  // @Rn           As=10
  AutoInc,   // @Rn+          As=11
  Immediate, // #N            As=11, reg=PC + ext word
};

enum class DstMode : std::uint8_t {
  Reg,      // Rn             Ad=0
  Indexed,  // X(Rn)          Ad=1 + ext word
  Absolute, // &ADDR          Ad=1, reg=SR + ext word
};

struct Operand {
  SrcMode mode = SrcMode::Reg;
  std::uint8_t reg = 3;
  std::uint16_t ext = 0; // immediate / index / absolute address

  bool operator==(const Operand&) const = default;
};

struct Instruction {
  enum class Format : std::uint8_t { One, Two, Jump } format = Format::Jump;
  // Format I
  Op1 op1 = Op1::Mov;
  Operand src;
  DstMode dst_mode = DstMode::Reg;
  std::uint8_t dst_reg = 3;
  std::uint16_t dst_ext = 0;
  // Format II (register operand only)
  Op2 op2 = Op2::Rra;
  std::uint8_t reg2 = 3;
  // Jump
  Cond cond = Cond::Jmp;
  std::int16_t offset = 0; // word offset, PC-relative after fetch

  bool operator==(const Instruction&) const = default;
};

/// Encode into 1-3 words (instruction word [+ src ext] [+ dst ext]).
[[nodiscard]] std::vector<std::uint16_t> encode(const Instruction& insn);

/// Number of words the instruction occupies.
[[nodiscard]] std::size_t encoded_length(const Instruction& insn);

/// Decode the instruction at words[pos]; consumes extension words. Returns
/// nullopt for encodings outside the subset.
[[nodiscard]] std::optional<Instruction> decode(
    const std::vector<std::uint16_t>& words, std::size_t pos);

[[nodiscard]] std::string_view op1_name(Op1 op);
[[nodiscard]] std::string_view op2_name(Op2 op);
[[nodiscard]] std::string_view cond_name(Cond c);

/// One-line disassembly of the instruction at words[pos].
[[nodiscard]] std::string disassemble(const std::vector<std::uint16_t>& words,
                                      std::size_t pos);

} // namespace ripple::cores::msp430
