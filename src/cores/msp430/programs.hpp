// Evaluation workloads for the MSP430 core: 16-bit variants of the AVR
// ones. The paper's two short kernels (iterative Fibonacci, 1-D convolution
// with software shift-add multiply) are joined by three long-running
// workloads for million-cycle streaming traces (bubble sort over a 128-word
// array, a CRC-32 loop, and a timer-driven event counter). All loop forever
// and report results through the memory-mapped output port.
#pragma once

#include <string_view>
#include <vector>

#include "cores/msp430/assembler.hpp"

namespace ripple::cores::msp430 {

[[nodiscard]] std::string_view fib_source();
[[nodiscard]] std::string_view conv_source();

/// Bubble sort over a 128-word array (~150k cycles per round); emits the
/// sorted extremes each round.
[[nodiscard]] std::string_view sort_source();

/// CRC-32 (poly 0xEDB88320, LSB-first) over the 256-byte stream 0..255
/// (~20k cycles per block); emits the final CRC low/high words.
[[nodiscard]] std::string_view crc_source();

/// Timer-driven event counter; the timer interrupt is emulated by a polled
/// countdown (the core subset has no interrupt hardware).
[[nodiscard]] std::string_view irq_source();

[[nodiscard]] Image fib_image();
[[nodiscard]] Image conv_image();
[[nodiscard]] Image sort_image();
[[nodiscard]] Image crc_image();
[[nodiscard]] Image irq_image();

/// All workload names, in presentation order: "fib", "conv", "sort", "crc",
/// "irq". Shared spelling with the AVR registry and the pipeline's workload
/// lookup.
[[nodiscard]] const std::vector<std::string_view>& workload_names();

/// Source / assembled image by registry name; fails on unknown names.
[[nodiscard]] std::string_view workload_source(std::string_view name);
[[nodiscard]] Image workload_image(std::string_view name);

} // namespace ripple::cores::msp430
