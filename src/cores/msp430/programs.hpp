// The two evaluation workloads of the paper for the MSP430 core (16-bit
// variants of the AVR ones): iterative Fibonacci and a 1-D convolution with
// software shift-add multiply. Both loop forever and report results through
// the memory-mapped output port.
#pragma once

#include <string_view>

#include "cores/msp430/assembler.hpp"

namespace ripple::cores::msp430 {

[[nodiscard]] std::string_view fib_source();
[[nodiscard]] std::string_view conv_source();

[[nodiscard]] Image fib_image();
[[nodiscard]] Image conv_image();

} // namespace ripple::cores::msp430
