#include "rtl/components.hpp"

namespace ripple::rtl {

RegFile make_regfile(Module& m, std::string name, std::size_t count,
                     std::size_t width) {
  RegFile rf;
  rf.name = name;
  rf.regs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    rf.regs.push_back(m.state(name + std::to_string(i), width, 0));
  }
  return rf;
}

Bus regfile_read(Module& m, const RegFile& rf, const Bus& addr) {
  return m.mux_tree(addr, rf.regs);
}

void regfile_write(Module& m, const RegFile& rf, const Bus& waddr, WireId wen,
                   const Bus& wdata) {
  // Operand isolation: the write bus is gated with the write enable before
  // it fans out to every register's hold mux. Functionally neutral (the
  // ungated value only ever matters when wen is high), and standard practice
  // in power-aware synthesis; it also concentrates the fault-masking
  // capability of the whole write path into the single wen literal.
  const Bus wdata_g = m.and_bus(wdata, Module::splat(wen, wdata.size()));
  const Bus sel = m.decode(waddr, rf.regs.size());
  for (std::size_t i = 0; i < rf.regs.size(); ++i) {
    m.next_en(rf.regs[i], m.and2(wen, sel[i]), wdata_g);
  }
}

Counter make_counter(Module& m, const std::string& name, std::size_t width,
                     std::uint64_t step) {
  Counter c;
  c.q = m.state(name, width, 0);
  c.plus_step = m.add(c.q, m.constant_bus(width, step)).sum;
  return c;
}

} // namespace ripple::rtl
