// Reusable RTL building blocks shared by the CPU cores.
#pragma once

#include <string>
#include <vector>

#include "rtl/module.hpp"

namespace ripple::rtl {

/// A register file of `count` registers, `width` bits each. The flops are
/// named "<name><i>[b]" so register-file flip-flops can be identified later —
/// the evaluation's "FF w/o RF" fault set is defined by this prefix.
struct RegFile {
  std::string name;
  std::vector<Bus> regs;
};

/// Create the storage (flops only; writes are wired up by regfile_write).
[[nodiscard]] RegFile make_regfile(Module& m, std::string name,
                                   std::size_t count, std::size_t width);

/// Combinational read port: a mux tree over all registers.
[[nodiscard]] Bus regfile_read(Module& m, const RegFile& rf, const Bus& addr);

/// Single write port; must be called exactly once per register file (it
/// connects every register's next-state function).
void regfile_write(Module& m, const RegFile& rf, const Bus& waddr, WireId wen,
                   const Bus& wdata);

/// An up-counter register: q' = en ? q + step : q. Returns the Q bus.
struct Counter {
  Bus q;
  Bus plus_step; // combinational q + step, reusable by the surrounding logic
};
[[nodiscard]] Counter make_counter(Module& m, const std::string& name,
                                   std::size_t width, std::uint64_t step);

} // namespace ripple::rtl
