// RTL construction DSL.
//
// Module wraps a netlist under construction and offers word-level operators
// (buses, adders, comparators, mux trees, decoders, register files). It plays
// the role of the RTL-to-gates synthesis flow of the paper's setup: the CPU
// cores are described against this API and elaborate directly into
// technology-mapped library cells; rtl::optimize() then cleans the result the
// way an area-optimizing synthesis run would.
//
// Conventions:
//   * A Bus is a little-endian vector of wires (bit 0 = LSB).
//   * All operator methods create fresh internal wires named "n<k>"; ports
//     and state keep their user names ("pc[3]", "sreg_z", ...).
//   * State is created with state()/state1() and closed with next(); take()
//     verifies that every flop got its next-state function.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace ripple::rtl {

using Bus = std::vector<WireId>;

struct AddResult {
  Bus sum;
  WireId carry;    // carry out of the MSB
  WireId overflow; // signed overflow (carry into MSB XOR carry out)
};

class Module {
public:
  explicit Module(std::string name) : netlist_(std::move(name)) {}

  /// Finalize: check that all state is connected, run the integrity check,
  /// and move the netlist out. The Module must not be used afterwards.
  [[nodiscard]] netlist::Netlist take();

  [[nodiscard]] const netlist::Netlist& peek() const { return netlist_; }
  /// Escape hatch for helpers that need named gate outputs (rtl/ports.hpp).
  [[nodiscard]] netlist::Netlist& peek_mutable() { return netlist_; }

  // --- ports ---------------------------------------------------------------

  WireId input(std::string_view name);
  Bus input_bus(std::string_view name, std::size_t width);
  void output(WireId w);
  void output_bus(const Bus& bus);

  // --- constants -----------------------------------------------------------

  WireId zero();
  WireId one();
  WireId constant(bool v) { return v ? one() : zero(); }
  Bus constant_bus(std::size_t width, std::uint64_t value);

  // --- single-bit gates ----------------------------------------------------

  WireId gate(cell::Kind kind, std::span<const WireId> inputs);
  WireId gate(cell::Kind kind, std::initializer_list<WireId> inputs) {
    return gate(kind, std::span<const WireId>(inputs.begin(), inputs.size()));
  }

  WireId not_(WireId a) { return gate(cell::Kind::Inv, {a}); }
  WireId buf(WireId a) { return gate(cell::Kind::Buf, {a}); }
  WireId and2(WireId a, WireId b) { return gate(cell::Kind::And2, {a, b}); }
  WireId or2(WireId a, WireId b) { return gate(cell::Kind::Or2, {a, b}); }
  WireId nand2(WireId a, WireId b) { return gate(cell::Kind::Nand2, {a, b}); }
  WireId nor2(WireId a, WireId b) { return gate(cell::Kind::Nor2, {a, b}); }
  WireId xor2(WireId a, WireId b) { return gate(cell::Kind::Xor2, {a, b}); }
  WireId xnor2(WireId a, WireId b) { return gate(cell::Kind::Xnor2, {a, b}); }

  /// 2:1 mux — returns if0 when s == 0, if1 when s == 1.
  WireId mux(WireId s, WireId if0, WireId if1) {
    return gate(cell::Kind::Mux2, {s, if0, if1});
  }

  /// Balanced AND/OR reduction trees using the 2-4 input library cells.
  WireId and_all(std::span<const WireId> xs);
  WireId and_all(std::initializer_list<WireId> xs) {
    return and_all(std::span<const WireId>(xs.begin(), xs.size()));
  }
  WireId or_all(std::span<const WireId> xs);
  WireId or_all(std::initializer_list<WireId> xs) {
    return or_all(std::span<const WireId>(xs.begin(), xs.size()));
  }

  // --- bus operators ---------------------------------------------------------

  Bus not_bus(const Bus& a);
  Bus and_bus(const Bus& a, const Bus& b);
  Bus or_bus(const Bus& a, const Bus& b);
  Bus xor_bus(const Bus& a, const Bus& b);
  Bus mux_bus(WireId s, const Bus& if0, const Bus& if1);

  /// Add: sum = a + b + cin. Uses a Kogge-Stone parallel-prefix carry tree
  /// with alternating-polarity AOI21/OAI21 levels — one gate level per
  /// prefix stage, the structure a timing-driven synthesis run produces.
  /// Total depth: 3 + ceil(log2(n)) gate levels.
  AddResult add(const Bus& a, const Bus& b, WireId cin);
  AddResult add(const Bus& a, const Bus& b) { return add(a, b, zero()); }

  /// Ripple-carry variant (area-minimal, depth 2n); kept for the adder-
  /// architecture ablation and as a differential reference in tests.
  AddResult add_ripple(const Bus& a, const Bus& b, WireId cin);
  AddResult add_ripple(const Bus& a, const Bus& b) {
    return add_ripple(a, b, zero());
  }

  /// sub == 0: a + b; sub == 1: a - b = a + ~b + 1. The returned carry is the
  /// adder carry-out (for subtraction: 1 = no borrow, AVR/MSP430 "C" must be
  /// derived per architecture).
  AddResult add_sub(const Bus& a, const Bus& b, WireId sub);

  /// a == b (single wire).
  WireId equals(const Bus& a, const Bus& b);
  /// a == constant.
  WireId equals_const(const Bus& a, std::uint64_t value);

  WireId reduce_or(const Bus& a) { return or_all(a); }
  WireId reduce_and(const Bus& a) { return and_all(a); }
  /// 1 iff all bits of a are zero.
  WireId is_zero(const Bus& a) { return not_(or_all(a)); }

  /// Select one of `options` by binary index `sel` (LSB-first); options.size()
  /// need not be a power of two (out-of-range selects return options.back()).
  Bus mux_tree(const Bus& sel, std::span<const Bus> options);
  WireId mux_tree1(const Bus& sel, std::span<const WireId> options);

  /// One-hot decoder: out[i] = (sel == i), for i in [0, count).
  Bus decode(const Bus& sel, std::size_t count);

  /// Shift by a constant amount, filling with `fill` (defaults to 0).
  Bus shift_left_const(const Bus& a, std::size_t amount);
  Bus shift_right_const(const Bus& a, std::size_t amount, WireId fill);
  Bus shift_right_const(const Bus& a, std::size_t amount) {
    return shift_right_const(a, amount, zero());
  }

  /// Slice/concat helpers (pure wiring, no gates).
  static Bus slice(const Bus& a, std::size_t lo, std::size_t width);
  static Bus concat(const Bus& lo, const Bus& hi);
  /// Replicate one wire.
  static Bus splat(WireId w, std::size_t width) { return Bus(width, w); }

  /// Sign/zero extension to `width` (>= a.size()).
  Bus zero_extend(const Bus& a, std::size_t width);
  Bus sign_extend(const Bus& a, std::size_t width);

  // --- state -----------------------------------------------------------------

  /// A register of `width` flops named "<name>[i]"; returns the Q bus.
  Bus state(std::string_view name, std::size_t width, std::uint64_t init = 0);
  WireId state1(std::string_view name, bool init = false);

  /// Connect the next-state function of a state bus created by state().
  void next(const Bus& q, const Bus& d);
  void next(WireId q, WireId d);

  /// Guarded update: state keeps its value unless `en` is 1.
  void next_en(const Bus& q, WireId en, const Bus& d) {
    next(q, mux_bus(en, q, d));
  }
  void next_en(WireId q, WireId en, WireId d) { next(q, mux(en, q, d)); }

private:
  std::string fresh_name() { return "n" + std::to_string(counter_++); }

  netlist::Netlist netlist_;
  std::size_t counter_ = 0;
  WireId zero_;
  WireId one_;
};

} // namespace ripple::rtl
