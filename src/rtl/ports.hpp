// Port plumbing helpers: give circuit outputs stable, resolvable names so
// harnesses can rebind buses after optimization or (de)serialization.
#pragma once

#include <string_view>

#include "rtl/module.hpp"

namespace ripple::rtl {

/// Look up "name[0]<suffix>" .. "name[width-1]<suffix>"; throws if any bit
/// is missing. Pass suffix "__q" to resolve the Q wires of a state bus.
[[nodiscard]] Bus find_bus(const netlist::Netlist& n, std::string_view name,
                           std::size_t width, std::string_view suffix = "");

/// Look up a single wire; throws if missing.
[[nodiscard]] WireId find_wire_checked(const netlist::Netlist& n,
                                       std::string_view name);

/// Buffer each bit into a wire named "name[i]" and mark it a primary output.
Bus name_output_bus(Module& m, const Bus& bus, std::string_view name);

/// Buffer one wire into "name" and mark it a primary output.
WireId name_output(Module& m, WireId w, std::string_view name);

} // namespace ripple::rtl
