#include "rtl/optimize.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "sim/levelize.hpp"

namespace ripple::rtl {
namespace {

using cell::Kind;
using netlist::DriverKind;
using netlist::Netlist;

/// A wire value in the rewritten space: a real wire, or a constant.
struct Value {
  enum class Tag { Wire, Const0, Const1 } tag = Tag::Wire;
  WireId wire;

  static Value of(WireId w) { return {Tag::Wire, w}; }
  static Value constant(bool v) {
    return {v ? Tag::Const1 : Tag::Const0, WireId{}};
  }
  [[nodiscard]] bool is_const() const { return tag != Tag::Wire; }
  [[nodiscard]] bool const_value() const { return tag == Tag::Const1; }

  bool operator==(const Value&) const = default;
  auto operator<=>(const Value&) const = default;
};

/// Rewritten definition of a surviving gate output.
struct Def {
  Kind kind;
  std::vector<WireId> inputs;
  bool operator<(const Def& o) const {
    if (kind != o.kind) return kind < o.kind;
    return inputs < o.inputs;
  }
};

/// Truth table over up to 4 variables.
struct Func {
  std::uint16_t truth = 0;
  std::uint8_t arity = 0;
};

bool func_bit(const Func& f, std::uint32_t assignment) {
  return (f.truth >> assignment) & 1u;
}

/// Is the function independent of variable v?
bool independent_of(const Func& f, unsigned v) {
  for (std::uint32_t a = 0; a < (1u << f.arity); ++a) {
    if (((a >> v) & 1u) == 0 &&
        func_bit(f, a) != func_bit(f, a | (1u << v))) {
      return false;
    }
  }
  return true;
}

/// Remove variable v (assumed non-essential) from f.
Func drop_var(const Func& f, unsigned v) {
  Func out;
  out.arity = static_cast<std::uint8_t>(f.arity - 1);
  for (std::uint32_t a = 0; a < (1u << out.arity); ++a) {
    const std::uint32_t low = a & ((1u << v) - 1);
    const std::uint32_t high = (a >> v) << (v + 1);
    if (func_bit(f, high | low)) {
      out.truth |= static_cast<std::uint16_t>(1u << a);
    }
  }
  return out;
}

/// All permutations of {0..n-1} for n <= 4.
const std::vector<std::vector<std::uint8_t>>& permutations(std::size_t n) {
  static const auto tables = [] {
    std::vector<std::vector<std::vector<std::uint8_t>>> all(5);
    for (std::size_t n = 0; n <= 4; ++n) {
      std::vector<std::uint8_t> perm(n);
      for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint8_t>(i);
      do {
        all[n].push_back(perm);
      } while (std::next_permutation(perm.begin(), perm.end()));
    }
    return all;
  }();
  return tables[n];
}

/// Try to express `f(vars)` as a single library cell. On success returns the
/// cell kind plus, for each cell pin p, the index of the variable wired to it.
struct CellMatch {
  Kind kind;
  std::vector<std::uint8_t> pin_to_var;
};

std::optional<CellMatch> match_cell(const Func& f) {
  const cell::Library& lib = cell::Library::instance();
  for (Kind k : lib.combinational_kinds()) {
    const cell::Info& ci = lib.info(k);
    if (ci.num_inputs != f.arity) continue;
    for (const auto& perm : permutations(f.arity)) {
      // pin p is wired to var perm[p]; check all assignments agree.
      bool ok = true;
      for (std::uint32_t a = 0; a < (1u << f.arity) && ok; ++a) {
        std::uint32_t pins = 0;
        for (unsigned p = 0; p < f.arity; ++p) {
          pins |= ((a >> perm[p]) & 1u) << p;
        }
        ok = (((ci.truth >> pins) & 1u) != 0) == func_bit(f, a);
      }
      if (ok) return CellMatch{k, perm};
    }
  }
  return std::nullopt;
}

class Optimizer {
public:
  explicit Optimizer(const Netlist& in) : in_(in) {}

  OptimizeResult run() {
    in_.check();
    stats_.gates_in = in_.num_gates();
    values_.assign(in_.num_wires(), Value{});

    // Sources map to themselves.
    for (WireId w : in_.all_wires()) {
      values_[w.index()] = Value::of(w);
    }

    const sim::Levelization level = sim::levelize(in_);
    for (GateId g : level.order) rewrite_gate(g);

    return rebuild();
  }

private:
  Value value_of(WireId w) const { return values_[w.index()]; }

  void rewrite_gate(GateId g) {
    const netlist::Gate& gate = in_.gate(g);
    const cell::Info& ci = cell::info(gate.kind);

    std::vector<Value> ins(gate.inputs.size());
    for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
      ins[p] = value_of(gate.inputs[p]);
    }

    // Partially evaluate: substitute constants, dedup repeated wires, drop
    // non-essential variables.
    Func f{ci.truth, ci.num_inputs};
    std::vector<WireId> vars; // distinct non-const inputs, first-seen order

    // 1. Constants: repeatedly fix the lowest constant variable.
    {
      std::vector<Value> live = ins;
      for (std::size_t p = 0; p < live.size();) {
        if (live[p].is_const()) {
          Func out;
          out.arity = static_cast<std::uint8_t>(f.arity - 1);
          const unsigned v = static_cast<unsigned>(p);
          const bool c = live[p].const_value();
          for (std::uint32_t a = 0; a < (1u << out.arity); ++a) {
            const std::uint32_t low = a & ((1u << v) - 1);
            const std::uint32_t high = (a >> v) << (v + 1);
            const std::uint32_t full =
                high | low | (static_cast<std::uint32_t>(c) << v);
            if (func_bit(f, full)) {
              out.truth |= static_cast<std::uint16_t>(1u << a);
            }
          }
          f = out;
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(p));
        } else {
          ++p;
        }
      }
      // 2. Dedup repeated wires: merge var j into var i (i < j).
      for (std::size_t i = 0; i < live.size(); ++i) {
        for (std::size_t j = i + 1; j < live.size();) {
          if (live[j].wire == live[i].wire) {
            Func out;
            out.arity = static_cast<std::uint8_t>(f.arity - 1);
            for (std::uint32_t a = 0; a < (1u << out.arity); ++a) {
              const unsigned v = static_cast<unsigned>(j);
              const std::uint32_t low = a & ((1u << v) - 1);
              const std::uint32_t high = (a >> v) << (v + 1);
              const std::uint32_t dup =
                  ((a >> i) & 1u) << v; // var j := var i
              if (func_bit(f, high | low | dup)) {
                out.truth |= static_cast<std::uint16_t>(1u << a);
              }
            }
            f = out;
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(j));
          } else {
            ++j;
          }
        }
      }
      // 3. Drop non-essential variables.
      for (std::size_t v = 0; v < live.size();) {
        if (f.arity > 0 && independent_of(f, static_cast<unsigned>(v))) {
          f = drop_var(f, static_cast<unsigned>(v));
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(v));
        } else {
          ++v;
        }
      }
      vars.reserve(live.size());
      for (const Value& v : live) vars.push_back(v.wire);
    }

    const WireId out = gate.output;

    // Constant result?
    if (f.arity == 0) {
      values_[out.index()] = Value::constant(f.truth & 1u);
      ++stats_.folded_const;
      return;
    }
    // Identity?
    if (f.arity == 1 && f.truth == 0b10) {
      values_[out.index()] = Value::of(vars[0]);
      ++stats_.aliased;
      return;
    }
    // Inverter chains: INV(INV(x)) -> x.
    if (f.arity == 1 && f.truth == 0b01) {
      const auto it = defs_.find(vars[0]);
      if (it != defs_.end() && it->second.kind == Kind::Inv) {
        values_[out.index()] = Value::of(it->second.inputs[0]);
        ++stats_.aliased;
        return;
      }
    }

    // Map the reduced function back onto a library cell.
    Def def;
    if (const auto m = match_cell(f)) {
      def.kind = m->kind;
      def.inputs.resize(f.arity);
      for (unsigned p = 0; p < f.arity; ++p) {
        def.inputs[p] = vars[m->pin_to_var[p]];
      }
      if (def.kind != gate.kind) ++stats_.remapped;
    } else {
      // No single-cell realization (e.g. a & !s). Keep the original cell and
      // re-materialize the folded constants as tie wires during rebuild.
      def.kind = gate.kind;
      def.inputs.resize(ins.size());
      for (std::size_t p = 0; p < ins.size(); ++p) {
        def.inputs[p] = ins[p].is_const()
                            ? (ins[p].const_value() ? kTie1Marker : kTie0Marker)
                            : ins[p].wire;
      }
    }

    // Structural hashing: symmetric cells hash with sorted inputs.
    Def key = def;
    if (is_symmetric(def.kind)) {
      std::sort(key.inputs.begin(), key.inputs.end());
    }
    const auto [it, inserted] = cse_.try_emplace(key, out);
    if (!inserted) {
      values_[out.index()] = Value::of(it->second);
      ++stats_.cse_merged;
      return;
    }

    defs_.emplace(out, std::move(def));
    values_[out.index()] = Value::of(out);
  }

  static bool is_symmetric(Kind k) {
    switch (k) {
      case Kind::And2:
      case Kind::And3:
      case Kind::And4:
      case Kind::Nand2:
      case Kind::Nand3:
      case Kind::Nand4:
      case Kind::Or2:
      case Kind::Or3:
      case Kind::Or4:
      case Kind::Nor2:
      case Kind::Nor3:
      case Kind::Nor4:
      case Kind::Xor2:
      case Kind::Xnor2:
        return true;
      default:
        return false;
    }
  }

  OptimizeResult rebuild() {
    Netlist out(in_.name());

    std::vector<WireId> map(in_.num_wires(), WireId{});
    const auto mapped = [&](WireId old) {
      RIPPLE_ASSERT(map[old.index()].valid(), "wire '", in_.wire(old).name,
                    "' used before defined in rebuild");
      return map[old.index()];
    };

    for (WireId w : in_.primary_inputs()) {
      map[w.index()] = out.add_input(in_.wire(w).name);
    }
    std::vector<FlopId> new_flops(in_.num_flops());
    for (FlopId fl : in_.all_flops()) {
      const netlist::Flop& flop = in_.flop(fl);
      const WireId q = out.add_wire(in_.wire(flop.q).name);
      new_flops[fl.index()] = out.adopt_flop(flop.name, flop.init, q);
      map[flop.q.index()] = q;
    }

    WireId tie0, tie1;
    const auto tie = [&](bool v) {
      WireId& cache = v ? tie1 : tie0;
      if (!cache.valid()) {
        cache = out.add_gate_new(v ? Kind::Tie1 : Kind::Tie0, {},
                                 v ? "opt_tie1" : "opt_tie0");
      }
      return cache;
    };

    // Liveness: walk back from flop Ds and POs through surviving defs.
    std::vector<std::uint8_t> live(in_.num_wires(), 0);
    std::vector<WireId> stack;
    const auto mark = [&](Value v) {
      if (!v.is_const() && !live[v.wire.index()]) {
        live[v.wire.index()] = 1;
        stack.push_back(v.wire);
      }
    };
    for (FlopId fl : in_.all_flops()) mark(value_of(in_.flop(fl).d));
    for (WireId w : in_.primary_outputs()) mark(value_of(w));
    while (!stack.empty()) {
      const WireId w = stack.back();
      stack.pop_back();
      const auto it = defs_.find(w);
      if (it == defs_.end()) continue; // PI or flop Q
      for (WireId in : it->second.inputs) {
        if (in == kTie0Marker || in == kTie1Marker) continue;
        if (!live[in.index()]) {
          live[in.index()] = 1;
          stack.push_back(in);
        }
      }
    }

    // Emit surviving gates in dependency order (original levelized order is
    // a valid order for the rewritten defs too, since rewrites only ever
    // reference earlier wires).
    const sim::Levelization level = sim::levelize(in_);
    std::size_t emitted = 0;
    for (GateId g : level.order) {
      const WireId w = in_.gate(g).output;
      const auto it = defs_.find(w);
      if (it == defs_.end() || !live[w.index()]) continue;
      const Def& def = it->second;
      std::vector<WireId> ins(def.inputs.size());
      for (std::size_t p = 0; p < def.inputs.size(); ++p) {
        if (def.inputs[p] == kTie0Marker) {
          ins[p] = tie(false);
        } else if (def.inputs[p] == kTie1Marker) {
          ins[p] = tie(true);
        } else {
          ins[p] = mapped(def.inputs[p]);
        }
      }
      map[w.index()] = out.add_gate_new(def.kind, ins, in_.wire(w).name);
      ++emitted;
    }
    stats_.dead_removed = defs_.size() - emitted;

    // Materialize a Value as a wire of the new netlist, optionally forcing a
    // specific wire name (needed for primary outputs).
    const auto materialize = [&](Value v) -> WireId {
      if (v.is_const()) return tie(v.const_value());
      return mapped(v.wire);
    };

    for (FlopId fl : in_.all_flops()) {
      out.connect_flop(new_flops[fl.index()],
                       materialize(value_of(in_.flop(fl).d)));
    }
    for (WireId w : in_.primary_outputs()) {
      const Value v = value_of(w);
      WireId nw;
      if (!v.is_const() && v.wire == w) {
        nw = mapped(w); // port wire survived under its own name
      } else {
        // The port's driver was folded away; keep the port name via a buffer
        // (or tie) wire of the original name.
        if (v.is_const()) {
          nw = out.add_gate_new(v.const_value() ? Kind::Tie1 : Kind::Tie0, {},
                                in_.wire(w).name);
        } else {
          const WireId src = mapped(v.wire);
          nw = out.add_gate_new(Kind::Buf, {src}, in_.wire(w).name);
        }
      }
      out.mark_output(nw);
    }

    out.check();
    stats_.gates_out = out.num_gates();
    return OptimizeResult{std::move(out), stats_};
  }

  // Sentinel wire ids used in Def::inputs for re-materialized constants.
  static constexpr WireId kTie0Marker{WireId::kInvalid - 1};
  static constexpr WireId kTie1Marker{WireId::kInvalid - 2};

  const Netlist& in_;
  OptimizeStats stats_;
  std::vector<Value> values_;
  std::map<WireId, Def> defs_;
  std::map<Def, WireId> cse_;
};

} // namespace

OptimizeResult optimize(const netlist::Netlist& in) {
  return Optimizer(in).run();
}

} // namespace ripple::rtl
