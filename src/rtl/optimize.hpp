// Structural netlist optimization.
//
// The RTL DSL elaborates naively (constants for unused mux legs, buffers,
// duplicated subexpressions). This pass performs what an area-optimizing
// synthesis run would, keeping the netlist a plain library-cell graph:
//
//   * constant folding      (TIE0/TIE1 propagated through truth tables)
//   * buffer/alias collapse (BUF, INV-of-INV, gates degenerating to a wire)
//   * input deduplication   (AND2(a,a) -> a, XOR2(a,a) -> 0, ...)
//   * cell re-mapping       (AND3(a,b,1) -> AND2(a,b), AOI21 with C=0 ->
//                            NAND2, ...) by truth-table matching
//   * common-subexpression elimination (structural hashing; symmetric cells
//     match under input permutation)
//   * dead-gate elimination (logic not reaching any output or flop D input)
//
// Ports, flops (names, init values) and primary-output wire names are
// preserved exactly; internal wires keep their original names where the
// driving gate survives.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace ripple::rtl {

struct OptimizeStats {
  std::size_t gates_in = 0;
  std::size_t gates_out = 0;
  std::size_t folded_const = 0; // outputs that became compile-time constants
  std::size_t aliased = 0;      // outputs replaced by an existing wire
  std::size_t remapped = 0;     // gates rewritten to a smaller cell
  std::size_t cse_merged = 0;   // duplicates merged by structural hashing
  std::size_t dead_removed = 0; // live-but-unreachable gates dropped
};

struct OptimizeResult {
  netlist::Netlist netlist;
  OptimizeStats stats;
};

[[nodiscard]] OptimizeResult optimize(const netlist::Netlist& in);

} // namespace ripple::rtl
