#include "rtl/ports.hpp"

#include <string>

namespace ripple::rtl {

Bus find_bus(const netlist::Netlist& n, std::string_view name,
             std::size_t width, std::string_view suffix) {
  Bus bus(width);
  for (std::size_t i = 0; i < width; ++i) {
    const std::string bit = std::string(name) + "[" + std::to_string(i) +
                            "]" + std::string(suffix);
    const auto w = n.find_wire(bit);
    RIPPLE_CHECK(w.has_value(), "netlist has no wire '", bit, "'");
    bus[i] = *w;
  }
  return bus;
}

WireId find_wire_checked(const netlist::Netlist& n, std::string_view name) {
  const auto w = n.find_wire(name);
  RIPPLE_CHECK(w.has_value(), "netlist has no wire '", std::string(name), "'");
  return *w;
}

Bus name_output_bus(Module& m, const Bus& bus, std::string_view name) {
  Bus out(bus.size());
  for (std::size_t i = 0; i < bus.size(); ++i) {
    // add_gate_new gives the buffer output the canonical port-bit name.
    out[i] = m.peek_mutable().add_gate_new(
        cell::Kind::Buf, {bus[i]},
        std::string(name) + "[" + std::to_string(i) + "]");
    m.output(out[i]);
  }
  return out;
}

WireId name_output(Module& m, WireId w, std::string_view name) {
  const WireId out = m.peek_mutable().add_gate_new(cell::Kind::Buf, {w}, name);
  m.output(out);
  return out;
}

} // namespace ripple::rtl
