#include "rtl/module.hpp"

#include <algorithm>

namespace ripple::rtl {

using cell::Kind;

netlist::Netlist Module::take() {
  netlist_.check();
  return std::move(netlist_);
}

WireId Module::input(std::string_view name) { return netlist_.add_input(name); }

Bus Module::input_bus(std::string_view name, std::size_t width) {
  Bus bus(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus[i] = netlist_.add_input(std::string(name) + "[" + std::to_string(i) +
                                "]");
  }
  return bus;
}

void Module::output(WireId w) { netlist_.mark_output(w); }

void Module::output_bus(const Bus& bus) {
  for (WireId w : bus) netlist_.mark_output(w);
}

WireId Module::zero() {
  if (!zero_.valid()) {
    zero_ = netlist_.add_gate_new(Kind::Tie0, {}, "const0");
  }
  return zero_;
}

WireId Module::one() {
  if (!one_.valid()) {
    one_ = netlist_.add_gate_new(Kind::Tie1, {}, "const1");
  }
  return one_;
}

Bus Module::constant_bus(std::size_t width, std::uint64_t value) {
  RIPPLE_CHECK(width <= 64);
  Bus bus(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus[i] = constant((value >> i) & 1u);
  }
  return bus;
}

WireId Module::gate(Kind kind, std::span<const WireId> inputs) {
  return netlist_.add_gate_new(kind, inputs, fresh_name());
}

WireId Module::and_all(std::span<const WireId> xs) {
  RIPPLE_CHECK(!xs.empty(), "and_all of nothing");
  std::vector<WireId> level(xs.begin(), xs.end());
  while (level.size() > 1) {
    std::vector<WireId> nxt;
    std::size_t i = 0;
    while (i < level.size()) {
      const std::size_t rest = level.size() - i;
      if (rest >= 4 && level.size() > 4) {
        nxt.push_back(gate(Kind::And4,
                           {level[i], level[i + 1], level[i + 2],
                            level[i + 3]}));
        i += 4;
      } else if (rest == 4) {
        nxt.push_back(
            gate(Kind::And4,
                 {level[i], level[i + 1], level[i + 2], level[i + 3]}));
        i += 4;
      } else if (rest == 3) {
        nxt.push_back(gate(Kind::And3, {level[i], level[i + 1], level[i + 2]}));
        i += 3;
      } else if (rest == 2) {
        nxt.push_back(gate(Kind::And2, {level[i], level[i + 1]}));
        i += 2;
      } else {
        nxt.push_back(level[i]);
        i += 1;
      }
    }
    level = std::move(nxt);
  }
  return level[0];
}

WireId Module::or_all(std::span<const WireId> xs) {
  RIPPLE_CHECK(!xs.empty(), "or_all of nothing");
  std::vector<WireId> level(xs.begin(), xs.end());
  while (level.size() > 1) {
    std::vector<WireId> nxt;
    std::size_t i = 0;
    while (i < level.size()) {
      const std::size_t rest = level.size() - i;
      if (rest >= 4) {
        nxt.push_back(
            gate(Kind::Or4,
                 {level[i], level[i + 1], level[i + 2], level[i + 3]}));
        i += 4;
      } else if (rest == 3) {
        nxt.push_back(gate(Kind::Or3, {level[i], level[i + 1], level[i + 2]}));
        i += 3;
      } else if (rest == 2) {
        nxt.push_back(gate(Kind::Or2, {level[i], level[i + 1]}));
        i += 2;
      } else {
        nxt.push_back(level[i]);
        i += 1;
      }
    }
    level = std::move(nxt);
  }
  return level[0];
}

Bus Module::not_bus(const Bus& a) {
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = not_(a[i]);
  return out;
}

Bus Module::and_bus(const Bus& a, const Bus& b) {
  RIPPLE_CHECK(a.size() == b.size());
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = and2(a[i], b[i]);
  return out;
}

Bus Module::or_bus(const Bus& a, const Bus& b) {
  RIPPLE_CHECK(a.size() == b.size());
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = or2(a[i], b[i]);
  return out;
}

Bus Module::xor_bus(const Bus& a, const Bus& b) {
  RIPPLE_CHECK(a.size() == b.size());
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = xor2(a[i], b[i]);
  return out;
}

Bus Module::mux_bus(WireId s, const Bus& if0, const Bus& if1) {
  RIPPLE_CHECK(if0.size() == if1.size());
  Bus out(if0.size());
  for (std::size_t i = 0; i < if0.size(); ++i) out[i] = mux(s, if0[i], if1[i]);
  return out;
}

AddResult Module::add(const Bus& a, const Bus& b, WireId cin) {
  RIPPLE_CHECK(a.size() == b.size() && !a.empty());
  const std::size_t n = a.size();

  // Generate/propagate per bit (true polarity).
  Bus p(n);
  Bus g(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = xor2(a[i], b[i]);
    g[i] = and2(a[i], b[i]);
  }

  // Kogge-Stone prefix tree. Polarity alternates per level so every combine
  // is a single complex gate:
  //   true  inputs:  G' = AOI21(Ph, Gl, Gh) = !(Gh | Ph&Gl), P' = NAND(Ph,Pl)
  //   compl inputs:  G  = OAI21(Ph',Gl',Gh') =  Gh | Ph&Gl,  P  = NOR(Ph',Pl')
  // Nodes outside a level's combine range pass through an inverter, keeping
  // the whole level at a uniform polarity.
  Bus gp = g;
  Bus pp = p;
  bool complemented = false;
  for (std::size_t dist = 1; dist < n; dist *= 2) {
    Bus gn(n);
    Bus pn(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= dist) {
        const std::size_t j = i - dist;
        if (!complemented) {
          gn[i] = gate(Kind::Aoi21, {pp[i], gp[j], gp[i]});
          pn[i] = nand2(pp[i], pp[j]);
        } else {
          gn[i] = gate(Kind::Oai21, {pp[i], gp[j], gp[i]});
          pn[i] = nor2(pp[i], pp[j]);
        }
      } else {
        gn[i] = not_(gp[i]);
        pn[i] = not_(pp[i]);
      }
    }
    gp = std::move(gn);
    pp = std::move(pn);
    complemented = !complemented;
  }

  // Fold the carry-in: carry INTO bit i+1 is G[0..i] | (P[0..i] & cin).
  // Produce the complement of every carry (one gate) and absorb the extra
  // inversion into the sum XNOR.
  AddResult r;
  r.sum.resize(n);
  r.sum[0] = xor2(p[0], cin);
  const WireId cin_n = not_(cin);
  Bus carry_n(n + 1); // carry_n[i] = !carry-into-bit-i, defined for i >= 1
  for (std::size_t i = 1; i <= n; ++i) {
    if (!complemented) {
      carry_n[i] = gate(Kind::Aoi21, {pp[i - 1], cin, gp[i - 1]});
    } else {
      // G | P&cin = !(G' & (P' | !cin)) -> complement = AND-OR-invert dual.
      carry_n[i] = not_(gate(Kind::Oai21, {pp[i - 1], cin_n, gp[i - 1]}));
    }
    if (i < n) r.sum[i] = xnor2(p[i], carry_n[i]);
  }
  r.carry = not_(carry_n[n]);
  r.overflow = xor2(carry_n[n - 1].valid() ? carry_n[n - 1] : cin_n,
                    carry_n[n]);
  return r;
}

AddResult Module::add_ripple(const Bus& a, const Bus& b, WireId cin) {
  RIPPLE_CHECK(a.size() == b.size() && !a.empty());
  AddResult r;
  r.sum.resize(a.size());
  WireId carry = cin;
  WireId carry_into_msb = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Full adder from library cells: sum = a ^ b ^ c,
    // carry = (a & b) | (c & (a ^ b)) = !AOI22(a, b, c, a^b).
    const WireId axb = xor2(a[i], b[i]);
    r.sum[i] = xor2(axb, carry);
    if (i + 1 == a.size()) carry_into_msb = carry;
    const WireId aoi = gate(Kind::Aoi22, {a[i], b[i], carry, axb});
    carry = not_(aoi);
  }
  r.carry = carry;
  r.overflow = xor2(carry_into_msb, carry);
  return r;
}

AddResult Module::add_sub(const Bus& a, const Bus& b, WireId sub) {
  Bus b_adj(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) b_adj[i] = xor2(b[i], sub);
  return add(a, b_adj, sub);
}

WireId Module::equals(const Bus& a, const Bus& b) {
  RIPPLE_CHECK(a.size() == b.size() && !a.empty());
  std::vector<WireId> eq(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) eq[i] = xnor2(a[i], b[i]);
  return and_all(eq);
}

WireId Module::equals_const(const Bus& a, std::uint64_t value) {
  RIPPLE_CHECK(!a.empty() && a.size() <= 64);
  std::vector<WireId> lits(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    lits[i] = ((value >> i) & 1u) ? a[i] : not_(a[i]);
  }
  return and_all(lits);
}

Bus Module::mux_tree(const Bus& sel, std::span<const Bus> options) {
  RIPPLE_CHECK(!options.empty());
  const std::size_t width = options[0].size();
  for (const Bus& o : options) RIPPLE_CHECK(o.size() == width);

  std::vector<Bus> level(options.begin(), options.end());
  for (std::size_t s = 0; s < sel.size() && level.size() > 1; ++s) {
    std::vector<Bus> nxt;
    for (std::size_t i = 0; i < level.size(); i += 2) {
      if (i + 1 < level.size()) {
        nxt.push_back(mux_bus(sel[s], level[i], level[i + 1]));
      } else {
        nxt.push_back(level[i]);
      }
    }
    level = std::move(nxt);
  }
  RIPPLE_CHECK(level.size() == 1, "mux_tree: select bus too narrow for ",
               options.size(), " options");
  return level[0];
}

WireId Module::mux_tree1(const Bus& sel, std::span<const WireId> options) {
  std::vector<Bus> buses;
  buses.reserve(options.size());
  for (WireId w : options) buses.push_back(Bus{w});
  return mux_tree(sel, buses)[0];
}

Bus Module::decode(const Bus& sel, std::size_t count) {
  Bus out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = equals_const(sel, i);
  }
  return out;
}

Bus Module::shift_left_const(const Bus& a, std::size_t amount) {
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = i < amount ? zero() : a[i - amount];
  }
  return out;
}

Bus Module::shift_right_const(const Bus& a, std::size_t amount, WireId fill) {
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = i + amount < a.size() ? a[i + amount] : fill;
  }
  return out;
}

Bus Module::slice(const Bus& a, std::size_t lo, std::size_t width) {
  RIPPLE_CHECK(lo + width <= a.size(), "slice out of range");
  return Bus(a.begin() + static_cast<std::ptrdiff_t>(lo),
             a.begin() + static_cast<std::ptrdiff_t>(lo + width));
}

Bus Module::concat(const Bus& lo, const Bus& hi) {
  Bus out = lo;
  out.insert(out.end(), hi.begin(), hi.end());
  return out;
}

Bus Module::zero_extend(const Bus& a, std::size_t width) {
  RIPPLE_CHECK(width >= a.size());
  Bus out = a;
  while (out.size() < width) out.push_back(zero());
  return out;
}

Bus Module::sign_extend(const Bus& a, std::size_t width) {
  RIPPLE_CHECK(width >= a.size() && !a.empty());
  Bus out = a;
  while (out.size() < width) out.push_back(a.back());
  return out;
}

Bus Module::state(std::string_view name, std::size_t width,
                  std::uint64_t init) {
  RIPPLE_CHECK(width <= 64);
  Bus bus(width);
  for (std::size_t i = 0; i < width; ++i) {
    const FlopId f =
        netlist_.add_flop(std::string(name) + "[" + std::to_string(i) + "]",
                          (init >> i) & 1u);
    bus[i] = netlist_.flop(f).q;
  }
  return bus;
}

WireId Module::state1(std::string_view name, bool init) {
  const FlopId f = netlist_.add_flop(name, init);
  return netlist_.flop(f).q;
}

void Module::next(const Bus& q, const Bus& d) {
  RIPPLE_CHECK(q.size() == d.size());
  for (std::size_t i = 0; i < q.size(); ++i) next(q[i], d[i]);
}

void Module::next(WireId q, WireId d) {
  const netlist::Wire& wire = netlist_.wire(q);
  RIPPLE_CHECK(wire.driver_kind == netlist::DriverKind::Flop,
               "next() target '", wire.name, "' is not a state wire");
  netlist_.connect_flop(wire.driver_flop, d);
}

} // namespace ripple::rtl
