#include "mate/stream.hpp"

#include <algorithm>
#include <array>
#include <thread>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace ripple::mate {
namespace {

/// Worker count for a block range, mirroring the whole-trace engine's
/// heuristic so scheduling (not results — those are merge-order independent
/// integers) matches its behavior.
constexpr std::size_t kMinBlocksPerWorker = 8;

std::size_t block_workers(std::size_t threads, std::size_t blocks) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min({threads == 0 ? hw : threads,
                   (blocks + kMinBlocksPerWorker - 1) / kMinBlocksPerWorker,
                   blocks});
}

} // namespace

/// Literal streams as (wire index, invert mask) — indices, not pointers,
/// because the backing words change with every chunk.
struct EvalAccumulator::Plan {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> literals;
  BitVec mask;
};

EvalAccumulator::EvalAccumulator(const MateSet& set, std::size_t threads)
    : set_(&set), threads_(threads) {
  std::unordered_map<WireId, std::size_t> fault_index;
  fault_index.reserve(set.faulty_wires.size());
  for (std::size_t i = 0; i < set.faulty_wires.size(); ++i) {
    fault_index.emplace(set.faulty_wires[i], i);
  }
  plans_.resize(set.mates.size());
  for (std::size_t m = 0; m < set.mates.size(); ++m) {
    Plan& plan = plans_[m];
    plan.mask = BitVec(set.faulty_wires.size());
    for (WireId w : set.mates[m].masked_wires) {
      const auto it = fault_index.find(w);
      RIPPLE_ASSERT(it != fault_index.end(),
                    "MATE masks a wire outside the faulty set");
      plan.mask.set(it->second, true);
    }
    plan.literals.reserve(set.mates[m].cube.size());
    for (const Literal& l : set.mates[m].cube.literals()) {
      plan.literals.emplace_back(
          static_cast<std::uint32_t>(l.wire.index()),
          l.value ? 0 : ~std::uint64_t{0});
    }
  }
  triggers_.assign(set.mates.size(), 0);
}

EvalAccumulator::~EvalAccumulator() = default;

void EvalAccumulator::consume(const sim::TransposedSlice& slice,
                              std::size_t base_cycle) {
  RIPPLE_CHECK(base_cycle == cycles_,
               "streamed chunks must arrive in cycle order without gaps");
  RIPPLE_CHECK(cycles_ % 64 == 0,
               "only the final chunk may end off a 64-cycle block");
  RIPPLE_CHECK(slice.num_cycles > 0, "empty trace chunk");

  const std::size_t blocks = slice.num_blocks;

  struct Partial {
    std::vector<std::size_t> triggers;
    std::size_t masked_faults = 0;
  };

  // Same kernel as evaluate_mates_bitpar::run_blocks, reading literal
  // streams through the slice instead of whole-trace pointers.
  const auto run_blocks = [&](std::size_t begin, std::size_t end,
                              Partial& out) {
    out.triggers.assign(plans_.size(), 0);
    std::array<BitVec, 64> acc; // per-cycle masked union, reused per block
    for (std::size_t b = begin; b < end; ++b) {
      const std::uint64_t valid = slice.block_mask(b);
      std::uint64_t used = 0; // cycles of this block with >= 1 trigger
      for (std::size_t m = 0; m < plans_.size(); ++m) {
        const Plan& plan = plans_[m];
        std::uint64_t trig = valid;
        for (const auto& [wire, invert] : plan.literals) {
          trig &= slice.wire_words(wire)[b] ^ invert;
          if (trig == 0) break;
        }
        if (trig == 0) continue;
        out.triggers[m] +=
            static_cast<std::size_t>(__builtin_popcountll(trig));
        for (std::uint64_t w = trig; w != 0; w &= w - 1) {
          const unsigned c = static_cast<unsigned>(__builtin_ctzll(w));
          if ((used >> c) & 1u) {
            acc[c] |= plan.mask;
          } else {
            acc[c] = plan.mask; // copy-assign reuses capacity
            used |= std::uint64_t{1} << c;
          }
        }
      }
      for (std::uint64_t w = used; w != 0; w &= w - 1) {
        const unsigned c = static_cast<unsigned>(__builtin_ctzll(w));
        out.masked_faults += acc[c].popcount();
      }
    }
  };

  const std::size_t workers = block_workers(threads_, blocks);
  std::vector<Partial> partials(std::max<std::size_t>(workers, 1));
  if (workers <= 1) {
    run_blocks(0, blocks, partials[0]);
  } else {
    ThreadPool pool(workers);
    pool.parallel_for_index(
        workers,
        [&](std::size_t chunk) {
          const std::size_t begin = chunk * blocks / workers;
          const std::size_t end = (chunk + 1) * blocks / workers;
          run_blocks(begin, end, partials[chunk]);
        },
        /*grain=*/1);
  }

  for (const Partial& p : partials) {
    if (p.triggers.empty()) continue;
    masked_faults_ += p.masked_faults;
    for (std::size_t m = 0; m < triggers_.size(); ++m) {
      triggers_[m] += p.triggers[m];
    }
  }
  cycles_ += slice.num_cycles;
}

EvalResult EvalAccumulator::finish() {
  EvalResult result;
  result.num_cycles = cycles_;
  result.num_faulty_wires = set_->faulty_wires.size();
  result.masked_faults = masked_faults_;
  result.per_mate.resize(set_->mates.size());
  for (std::size_t m = 0; m < set_->mates.size(); ++m) {
    result.per_mate[m].triggers = triggers_[m];
    result.per_mate[m].masked_total =
        triggers_[m] * set_->mates[m].masked_wires.size();
  }
  detail::finalize_eval(*set_, result);
  return result;
}

RankAccumulator::RankAccumulator(const MateSet& set, std::size_t threads)
    : volumes_(set, threads) {}

RankAccumulator::~RankAccumulator() = default;

void RankAccumulator::consume_volumes(const sim::TransposedSlice& slice,
                                      std::size_t base_cycle) {
  RIPPLE_CHECK(!gains_begun_, "consume_volumes after begin_gains");
  volumes_.consume(slice, base_cycle);
}

void RankAccumulator::begin_gains() {
  RIPPLE_CHECK(!gains_begun_, "begin_gains called twice");
  gains_begun_ = true;
  eval_ = volumes_.finish();
  rank_of_ = detail::visit_rank(*volumes_.set_, eval_);
  masks_ = detail::mate_masks(*volumes_.set_);
  hits_.assign(volumes_.set_->mates.size(), 0);
}

void RankAccumulator::consume_gains(const sim::TransposedSlice& slice,
                                    std::size_t base_cycle) {
  RIPPLE_CHECK(gains_begun_, "consume_gains before begin_gains");
  RIPPLE_CHECK(base_cycle == gain_cycles_,
               "streamed chunks must arrive in cycle order without gaps");
  RIPPLE_CHECK(gain_cycles_ % 64 == 0,
               "only the final chunk may end off a 64-cycle block");

  const std::vector<EvalAccumulator::Plan>& plans = volumes_.plans_;
  const std::size_t blocks = slice.num_blocks;

  // Per block: re-derive the trigger words (same AND-tree as pass 1), build
  // the 64 per-cycle trigger lists locally, then credit marginal gains in
  // global visit order. MATE loop outermost keeps each list ascending by
  // MATE index before the rank_of sort, exactly like the whole-trace
  // engines (rank_of is a strict total order, so the sorted order — and
  // therefore every credit — is identical).
  const auto run_blocks = [&](std::size_t begin, std::size_t end,
                              std::vector<std::size_t>& hits) {
    hits.assign(plans.size(), 0);
    std::array<std::vector<std::uint32_t>, 64> triggered;
    BitVec masked(masks_.empty() ? 0 : masks_[0].size());
    for (std::size_t b = begin; b < end; ++b) {
      const std::uint64_t valid = slice.block_mask(b);
      std::uint64_t used = 0;
      for (std::size_t m = 0; m < plans.size(); ++m) {
        std::uint64_t trig = valid;
        for (const auto& [wire, invert] : plans[m].literals) {
          trig &= slice.wire_words(wire)[b] ^ invert;
          if (trig == 0) break;
        }
        for (std::uint64_t w = trig; w != 0; w &= w - 1) {
          const unsigned c = static_cast<unsigned>(__builtin_ctzll(w));
          triggered[c].push_back(static_cast<std::uint32_t>(m));
          used |= std::uint64_t{1} << c;
        }
      }
      for (std::uint64_t w = used; w != 0; w &= w - 1) {
        const unsigned c = static_cast<unsigned>(__builtin_ctzll(w));
        std::vector<std::uint32_t>& list = triggered[c];
        std::sort(list.begin(), list.end(),
                  [&](std::uint32_t a, std::uint32_t bb) {
                    return rank_of_[a] < rank_of_[bb];
                  });
        masked.clear_all();
        for (std::uint32_t m : list) {
          hits[m] += masked.or_count(masks_[m]);
        }
        list.clear();
      }
    }
  };

  const std::size_t workers = block_workers(volumes_.threads_, blocks);
  std::vector<std::vector<std::size_t>> partials(
      std::max<std::size_t>(workers, 1));
  if (workers <= 1) {
    run_blocks(0, blocks, partials[0]);
  } else {
    ThreadPool pool(workers);
    pool.parallel_for_index(
        workers,
        [&](std::size_t chunk) {
          const std::size_t begin = chunk * blocks / workers;
          const std::size_t end = (chunk + 1) * blocks / workers;
          run_blocks(begin, end, partials[chunk]);
        },
        /*grain=*/1);
  }
  for (const std::vector<std::size_t>& p : partials) {
    for (std::size_t m = 0; m < p.size(); ++m) hits_[m] += p[m];
  }
  gain_cycles_ += slice.num_cycles;
}

SelectionResult RankAccumulator::finish() {
  RIPPLE_CHECK(gains_begun_, "finish before begin_gains");
  RIPPLE_CHECK(gain_cycles_ == eval_.num_cycles,
               "gain pass covered a different cycle count than volume pass");
  SelectionResult out;
  out.hits = hits_;
  out.ranking = detail::ranking_from_hits(hits_);
  return out;
}

namespace {

/// TraceSink feeding an EvalAccumulator (or one of the RankAccumulator
/// passes, via the function pointer-ish Fn).
template <typename Fn>
class FnSink final : public sim::TraceSink {
public:
  explicit FnSink(Fn fn) : fn_(std::move(fn)) {}
  void on_chunk(sim::TraceChunk chunk) override {
    fn_(chunk.slice, chunk.base_cycle);
  }

private:
  Fn fn_;
};

template <typename Fn>
void stream_through(sim::TraceSource& source, bool overlap, Fn fn) {
  FnSink<Fn> sink(std::move(fn));
  if (overlap) {
    sim::AsyncTraceSink async(sink);
    source.stream(async);
    async.drain();
  } else {
    source.stream(sink);
  }
}

} // namespace

EvalResult evaluate_mates_stream(const MateSet& set, sim::TraceSource& source,
                                 std::size_t threads, bool overlap) {
  EvalAccumulator acc(set, threads);
  stream_through(source, overlap,
                 [&](const sim::TransposedSlice& slice, std::size_t base) {
                   acc.consume(slice, base);
                 });
  RIPPLE_CHECK(acc.cycles_consumed() == source.num_cycles(),
               "trace source delivered a different cycle count than declared");
  return acc.finish();
}

SelectionResult rank_mates_stream(const MateSet& set, sim::TraceSource& source,
                                  std::size_t threads, bool overlap) {
  RankAccumulator acc(set, threads);
  stream_through(source, overlap,
                 [&](const sim::TransposedSlice& slice, std::size_t base) {
                   acc.consume_volumes(slice, base);
                 });
  acc.begin_gains();
  stream_through(source, overlap,
                 [&](const sim::TransposedSlice& slice, std::size_t base) {
                   acc.consume_gains(slice, base);
                 });
  return acc.finish();
}

} // namespace ripple::mate
