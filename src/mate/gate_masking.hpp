// Fault-masking capabilities of library cells (Section 4, step 1).
//
// For every cell type and every non-empty set S of *faulty* input pins we
// compute the gate-masking terms GM(cell, S): all maximal partial assignments
// (prime cubes) of the remaining pins under which the cell output is
// independent of the pins in S. When such a cube holds, a fault confined to S
// cannot pass this gate — the output equals the fault-free output no matter
// what values the faulty pins take.
//
// Examples reproduced from the paper:
//   GM(AND2, {A}) = { (B=0) }              -- an AND masks when a side is 0
//   GM(OR2,  {A}) = { (B=1) }
//   GM(XOR2, {A}) = {}                     -- XOR never masks
//   GM(MUX2, {S}) = { (A=0 & B=0), (A=1 & B=1) }
#pragma once

#include <vector>

#include "cell/library.hpp"
#include "mate/cube.hpp"

namespace ripple::mate {

/// Analysis results for the whole library, computed once and cached.
class GateMaskingTable {
public:
  static const GateMaskingTable& instance();

  /// Masking cubes for `kind` with faulty-pin set `faulty_mask` (bit i set =>
  /// pin i faulty). Empty vector means this gate cannot stop such a fault.
  [[nodiscard]] const std::vector<PinCube>& terms(cell::Kind kind,
                                                  std::uint8_t faulty_mask)
      const;

  /// True if the cell has at least one masking cube for the faulty set.
  [[nodiscard]] bool can_mask(cell::Kind kind, std::uint8_t faulty_mask) const {
    return !terms(kind, faulty_mask).empty();
  }

private:
  GateMaskingTable();

  // Indexed [kind][faulty_mask]; masks run over 1 .. 2^num_inputs - 1.
  std::vector<std::vector<std::vector<PinCube>>> table_;
};

/// Direct computation (exposed for tests): prime masking cubes of one cell
/// for one faulty-pin set.
[[nodiscard]] std::vector<PinCube> compute_masking_cubes(
    cell::Kind kind, std::uint8_t faulty_mask);

} // namespace ripple::mate
