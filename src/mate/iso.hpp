// Cone-isomorphism fingerprints for the MATE search (dedup stage).
//
// Register files and pipeline registers yield hundreds of structurally
// identical fault cones per core: the same gates in the same shape, just
// instantiated over different wires. The search result for such a cone is a
// pure function of its structure, so one representative search per class is
// enough — every other member's MATE cubes follow by renaming border wires.
//
// The canonical encoding walks the cone in a deterministic breadth-first
// order seeded by the fault origins (wire discovery order and, per wire, its
// `gate_fanout` list in netlist order — exactly the order the path
// enumerator walks), then records per-wire observability and fanout shape
// and per-gate kind and pin bindings. A pin bound to a cone wire is encoded
// by that wire's canonical number; a pin bound to a border wire by its rank
// in the sorted border-wire list. Two cones with equal encodings therefore
// run the identical search modulo the border-rank -> wire-id translation,
// and because that correspondence is monotone in wire ids, every cube
// comparison the search performs is preserved (see DESIGN.md §13 for the
// full soundness argument).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mate/cone.hpp"
#include "mate/cube.hpp"
#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace ripple::mate {

/// Canonical structural encoding of a fault cone. Grouping compares the full
/// encoding (exact — a digest collision can never merge distinct classes);
/// the FNV-1a digest is only the hash-bucket key.
struct ConeSignature {
  std::vector<std::uint32_t> encoding;
  std::uint64_t digest = 0;
  std::size_t cone_gates = 0;

  bool operator==(const ConeSignature& o) const {
    return encoding == o.encoding;
  }
};

[[nodiscard]] ConeSignature fingerprint_cone(const netlist::Netlist& n,
                                             const FaultCone& cone);

/// One isomorphism class over a faulty-wire list.
struct IsoClass {
  /// Indices into the faulty-wire list, ascending; members[0] is the
  /// representative whose search result the others inherit.
  std::vector<std::size_t> members;
  /// Cone size of every member (scheduling weight: largest first).
  std::size_t cone_gates = 0;
};

struct IsoGrouping {
  std::vector<IsoClass> classes;
  /// Per faulty-wire index: that wire's border wires, sorted ascending — the
  /// rank correspondence remap_cube() translates cubes along.
  std::vector<std::vector<WireId>> borders;
  /// Sum of per-wire fingerprinting wall times (worker-busy seconds).
  double busy_seconds = 0.0;
};

/// Fingerprint every wire's single-origin cone in parallel over `pool` and
/// group equal encodings into isomorphism classes (first-discovery order).
/// The canonical walk is origin-seeded, so no levelization is needed: the
/// pre-pass runs in one traversal per wire, border collection fused in.
[[nodiscard]] IsoGrouping group_isomorphic_cones(const netlist::Netlist& n,
                                                 std::span<const WireId> wires,
                                                 ThreadPool& pool);

/// Translate a cube over the `from` border wires onto the corresponding
/// `to` border wires: each literal's wire is replaced by the wire of equal
/// rank. Both lists must be sorted ascending and equally long (guaranteed
/// for cones with equal signatures). The rank map is monotone in wire ids,
/// so cube ordering and equality are preserved across the translation.
[[nodiscard]] Cube remap_cube(const Cube& cube, std::span<const WireId> from,
                              std::span<const WireId> to);

} // namespace ripple::mate
