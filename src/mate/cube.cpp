#include "mate/cube.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace ripple::mate {

std::size_t Cube::hash() const {
  Hasher h;
  for (const Literal& l : lits_) {
    h.update_value(l.wire.value());
    h.update_value(static_cast<std::uint8_t>(l.value ? 1 : 0));
  }
  return static_cast<std::size_t>(h.digest());
}

Cube::Cube(std::vector<Literal> literals) : lits_(std::move(literals)) {
  std::sort(lits_.begin(), lits_.end());
  for (std::size_t i = 1; i < lits_.size(); ++i) {
    RIPPLE_CHECK(lits_[i].wire != lits_[i - 1].wire || lits_[i] == lits_[i - 1],
                 "contradictory cube literals on one wire");
  }
  lits_.erase(std::unique(lits_.begin(), lits_.end()), lits_.end());
}

std::optional<Cube> Cube::conjoin(const Cube& o) const {
  std::vector<Literal> merged;
  merged.reserve(lits_.size() + o.lits_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < lits_.size() && j < o.lits_.size()) {
    if (lits_[i].wire == o.lits_[j].wire) {
      if (lits_[i].value != o.lits_[j].value) return std::nullopt;
      merged.push_back(lits_[i]);
      ++i;
      ++j;
    } else if (lits_[i].wire < o.lits_[j].wire) {
      merged.push_back(lits_[i++]);
    } else {
      merged.push_back(o.lits_[j++]);
    }
  }
  merged.insert(merged.end(), lits_.begin() + static_cast<std::ptrdiff_t>(i),
                lits_.end());
  merged.insert(merged.end(), o.lits_.begin() + static_cast<std::ptrdiff_t>(j),
                o.lits_.end());
  Cube out;
  out.lits_ = std::move(merged); // already sorted and duplicate-free
  return out;
}

bool Cube::implies(const Cube& o) const {
  // this => o iff every literal of o appears in this.
  return std::includes(lits_.begin(), lits_.end(), o.lits_.begin(),
                       o.lits_.end());
}

std::string Cube::to_string(const netlist::Netlist& n) const {
  if (lits_.empty()) return "(true)";
  std::string out = "(";
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    if (i) out += " & ";
    if (!lits_[i].value) out += "!";
    out += n.wire(lits_[i].wire).name;
  }
  return out + ")";
}

} // namespace ripple::mate
