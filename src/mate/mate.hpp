// The MATE itself (Definition, Section 3): a conjunction over border wires
// that, when true in the current circuit state, proves one or more faults
// benign within the running clock cycle.
#pragma once

#include <string>
#include <vector>

#include "mate/cube.hpp"

namespace ripple::mate {

struct Mate {
  Cube cube;
  /// Faulty wires this MATE proves benign while it holds. One MATE often
  /// covers several faults (Section 4, step 3): e.g. a mov-style operand
  /// select masks every bit of the unused operand.
  std::vector<WireId> masked_wires;

  [[nodiscard]] std::size_t num_inputs() const { return cube.size(); }

  bool operator==(const Mate&) const = default;
};

/// A MATE set plus the faulty-wire universe it was computed against.
struct MateSet {
  std::vector<Mate> mates;
  std::vector<WireId> faulty_wires;

  bool operator==(const MateSet&) const = default;
};

} // namespace ripple::mate
