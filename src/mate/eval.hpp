// MATE evaluation over an execution trace (Section 5.3).
//
// Replays a recorded trace and, per cycle, determines which MATEs trigger and
// which faults they prove benign. This is both the offline fault-space
// quantification of the paper's evaluation and — applied cycle-by-cycle in
// the simulator — the online pruning a HAFI platform would perform.
#pragma once

#include <cstddef>
#include <vector>

#include "mate/mate.hpp"
#include "sim/trace.hpp"

namespace ripple::mate {

struct MateTraceStats {
  std::size_t triggers = 0;       // cycles in which the cube held
  std::size_t masked_total = 0;   // sum over cycles of faults masked
};

struct EvalResult {
  std::size_t num_cycles = 0;
  std::size_t num_faulty_wires = 0;

  /// |fault space| = faulty wires x cycles.
  [[nodiscard]] std::size_t fault_space() const {
    return num_cycles * num_faulty_wires;
  }

  /// Fault-space points proven benign (per cycle: |union of masked wires over
  /// all triggered MATEs|).
  std::size_t masked_faults = 0;

  [[nodiscard]] double masked_fraction() const {
    return fault_space() == 0
               ? 0.0
               : static_cast<double>(masked_faults) /
                     static_cast<double>(fault_space());
  }

  /// Number of MATEs that triggered at least once.
  std::size_t effective_mates = 0;

  /// Mean and standard deviation of the input (literal) count of effective
  /// MATEs — the paper's "Avg. #inputs" row, i.e. the FPGA cost driver.
  double avg_inputs = 0.0;
  double sd_inputs = 0.0;

  std::vector<MateTraceStats> per_mate; // indexed like MateSet::mates

  /// Per cycle, the indices of triggered MATEs (in MateSet order). Retained
  /// for the selection pass; empty when `keep_trigger_lists` was false.
  std::vector<std::vector<std::uint32_t>> triggered_by_cycle;
};

[[nodiscard]] EvalResult evaluate_mates(const MateSet& set,
                                        const sim::Trace& trace,
                                        bool keep_trigger_lists = false);

} // namespace ripple::mate
