// MATE evaluation over an execution trace (Section 5.3).
//
// Replays a recorded trace and, per cycle, determines which MATEs trigger and
// which faults they prove benign. This is both the offline fault-space
// quantification of the paper's evaluation and — applied cycle-by-cycle in
// the simulator — the online pruning a HAFI platform would perform.
//
// Two engines produce identical results:
//   * Scalar      -- the literal-by-literal reference oracle: per cycle, per
//                    MATE, per literal (O(cycles x mates x literals) bit ops);
//   * BitParallel -- 64 cycles per machine word over a sim::TransposedTrace:
//                    a MATE's trigger stream for a 64-cycle block is the AND
//                    over its literals of (wire_stream ^ invert_mask), after
//                    which trigger counts are popcounts and the per-cycle
//                    masked-fault unions are word-wide ORs, fanned out over
//                    the ThreadPool in 64-cycle blocks.
#pragma once

#include <cstddef>
#include <vector>

#include "mate/mate.hpp"
#include "sim/trace.hpp"
#include "sim/transposed.hpp"

namespace ripple::mate {

/// Which evaluate/rank implementation to run. All three return identical
/// results (enforced by eval_bitpar_test, eval_stream_test and the
/// eval_bench_smoke ctest target):
///   * Scalar      -- the reference oracle (per cycle, per MATE, per literal);
///   * BitParallel -- whole-trace word-parallel engine over a
///                    sim::TransposedTrace;
///   * Streaming   -- the bit-parallel kernel applied chunk-by-chunk through
///                    an EvalAccumulator (mate/stream.hpp), so only
///                    O(chunk x wires) trace bits are resident and evaluation
///                    overlaps simulation. The pipeline default.
enum class EvalEngine { Scalar, BitParallel, Streaming };

/// "scalar" / "bitpar" / "stream" (the --eval-engine spelling).
[[nodiscard]] const char* eval_engine_name(EvalEngine engine);

struct MateTraceStats {
  std::size_t triggers = 0;       // cycles in which the cube held
  std::size_t masked_total = 0;   // sum over cycles of faults masked

  bool operator==(const MateTraceStats&) const = default;
};

struct EvalResult {
  std::size_t num_cycles = 0;
  std::size_t num_faulty_wires = 0;

  /// |fault space| = faulty wires x cycles.
  [[nodiscard]] std::size_t fault_space() const {
    return num_cycles * num_faulty_wires;
  }

  /// Fault-space points proven benign (per cycle: |union of masked wires over
  /// all triggered MATEs|).
  std::size_t masked_faults = 0;

  [[nodiscard]] double masked_fraction() const {
    return fault_space() == 0
               ? 0.0
               : static_cast<double>(masked_faults) /
                     static_cast<double>(fault_space());
  }

  /// Number of MATEs that triggered at least once.
  std::size_t effective_mates = 0;

  /// Mean and standard deviation of the input (literal) count of effective
  /// MATEs — the paper's "Avg. #inputs" row, i.e. the FPGA cost driver.
  double avg_inputs = 0.0;
  double sd_inputs = 0.0;

  std::vector<MateTraceStats> per_mate; // indexed like MateSet::mates

  /// Per cycle, the indices of triggered MATEs (in MateSet order). Retained
  /// for the selection pass; empty when `keep_trigger_lists` was false.
  std::vector<std::vector<std::uint32_t>> triggered_by_cycle;

  bool operator==(const EvalResult&) const = default;
};

/// Evaluate with the chosen engine. The BitParallel engine transposes the
/// trace internally; when evaluating several MATE sets against the same
/// trace, build one sim::TransposedTrace and call evaluate_mates_bitpar
/// directly (the campaign pipeline does this). `threads` only affects the
/// BitParallel engine (0 = hardware concurrency).
[[nodiscard]] EvalResult evaluate_mates(
    const MateSet& set, const sim::Trace& trace,
    bool keep_trigger_lists = false,
    EvalEngine engine = EvalEngine::BitParallel, std::size_t threads = 0);

/// The scalar reference oracle (the pre-word-parallel implementation).
[[nodiscard]] EvalResult evaluate_mates_scalar(const MateSet& set,
                                               const sim::Trace& trace,
                                               bool keep_trigger_lists = false);

/// The bit-parallel engine over a prebuilt transposed trace; 64 cycles per
/// word, blocks fanned out across `threads` workers.
[[nodiscard]] EvalResult evaluate_mates_bitpar(
    const MateSet& set, const sim::TransposedTrace& trace,
    bool keep_trigger_lists = false, std::size_t threads = 0);

namespace detail {
/// Derived tail (effective_mates, avg/sd inputs) shared by every engine:
/// identical arithmetic on identical integer counters keeps the engines
/// byte-for-byte equivalent, doubles included.
void finalize_eval(const MateSet& set, EvalResult& result);
} // namespace detail

} // namespace ripple::mate
