// Greedy top-N MATE selection (Section 4, step 3).
//
// Replays a trace; per cycle, MATEs are visited in descending order of their
// whole-trace masking volume and each MATE is credited with the faults it
// masks that no earlier MATE of the same cycle already masked (its marginal
// gain). The top-N MATEs by accumulated credit form the subset synthesized
// into the HAFI platform.
#pragma once

#include <cstddef>
#include <vector>

#include "mate/eval.hpp"
#include "mate/mate.hpp"
#include "sim/trace.hpp"

namespace ripple::mate {

struct SelectionResult {
  /// MATE indices sorted by accumulated hit counter, best first.
  std::vector<std::size_t> ranking;
  /// hit[i] = marginal-gain counter of MATE i (MateSet order).
  std::vector<std::size_t> hits;
};

[[nodiscard]] SelectionResult rank_mates(const MateSet& set,
                                         const sim::Trace& trace);

/// The top-N subset of `set` according to a ranking (N is clamped to the set
/// size). Faulty-wire universe is preserved.
[[nodiscard]] MateSet top_n(const MateSet& set, const SelectionResult& sel,
                            std::size_t n);

} // namespace ripple::mate
