// Greedy top-N MATE selection (Section 4, step 3).
//
// Replays a trace; per cycle, MATEs are visited in descending order of their
// whole-trace masking volume and each MATE is credited with the faults it
// masks that no earlier MATE of the same cycle already masked (its marginal
// gain). The top-N MATEs by accumulated credit form the subset synthesized
// into the HAFI platform.
//
// Like evaluate_mates, ranking comes in two equivalent engines: the scalar
// reference oracle and the bit-parallel one, whose pass 1 is the word-wide
// trigger evaluation and whose pass 2 computes marginal gains with word-level
// BitVec ops (or_count), fanned out across cycles on the ThreadPool.
#pragma once

#include <cstddef>
#include <vector>

#include "mate/eval.hpp"
#include "mate/mate.hpp"
#include "sim/trace.hpp"
#include "sim/transposed.hpp"

namespace ripple::mate {

struct SelectionResult {
  /// MATE indices sorted by accumulated hit counter, best first.
  std::vector<std::size_t> ranking;
  /// hit[i] = marginal-gain counter of MATE i (MateSet order).
  std::vector<std::size_t> hits;

  bool operator==(const SelectionResult&) const = default;
};

/// Rank with the chosen engine (identical results either way). `threads`
/// only affects the BitParallel engine (0 = hardware concurrency).
[[nodiscard]] SelectionResult rank_mates(
    const MateSet& set, const sim::Trace& trace,
    EvalEngine engine = EvalEngine::BitParallel, std::size_t threads = 0);

/// The scalar reference oracle.
[[nodiscard]] SelectionResult rank_mates_scalar(const MateSet& set,
                                                const sim::Trace& trace);

/// The bit-parallel engine over a prebuilt transposed trace (reusable
/// across evaluate and select runs on the same trace).
[[nodiscard]] SelectionResult rank_mates_bitpar(
    const MateSet& set, const sim::TransposedTrace& trace,
    std::size_t threads = 0);

/// The top-N subset of `set` according to a ranking (N is clamped to the set
/// size). Faulty-wire universe is preserved.
[[nodiscard]] MateSet top_n(const MateSet& set, const SelectionResult& sel,
                            std::size_t n);

namespace detail {
// Shared between the whole-trace engines and the streaming RankAccumulator
// (mate/stream.hpp); identical inputs must produce identical orderings for
// the engines to stay byte-equivalent.

/// Global visit order: most-masking MATE first, MATE index as tie-break.
/// Returns rank_of[mate] = position.
[[nodiscard]] std::vector<std::size_t> visit_rank(const MateSet& set,
                                                  const EvalResult& eval);

/// Dense masked-wire bitsets, one per MATE, over the faulty-wire universe.
[[nodiscard]] std::vector<BitVec> mate_masks(const MateSet& set);

/// Ranking sorted by hits desc, MATE index asc.
[[nodiscard]] std::vector<std::size_t> ranking_from_hits(
    const std::vector<std::size_t>& hits);
} // namespace detail

} // namespace ripple::mate
