#include "mate/select.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace ripple::mate {

SelectionResult rank_mates(const MateSet& set, const sim::Trace& trace) {
  // Pass 1: whole-trace masking volume per MATE + per-cycle trigger lists.
  const EvalResult eval = evaluate_mates(set, trace, /*keep_trigger_lists=*/
                                         true);

  // Global visit order: most-masking MATE first (the paper's "beginning from
  // the MATE that masks the most faults").
  std::vector<std::size_t> global_order(set.mates.size());
  for (std::size_t i = 0; i < global_order.size(); ++i) global_order[i] = i;
  std::sort(global_order.begin(), global_order.end(),
            [&](std::size_t a, std::size_t b) {
              if (eval.per_mate[a].masked_total !=
                  eval.per_mate[b].masked_total) {
                return eval.per_mate[a].masked_total >
                       eval.per_mate[b].masked_total;
              }
              return a < b;
            });
  std::vector<std::size_t> rank_of(set.mates.size());
  for (std::size_t i = 0; i < global_order.size(); ++i) {
    rank_of[global_order[i]] = i;
  }

  std::unordered_map<WireId, std::size_t> fault_index;
  for (std::size_t i = 0; i < set.faulty_wires.size(); ++i) {
    fault_index.emplace(set.faulty_wires[i], i);
  }

  // Pass 2: per-cycle marginal gains.
  SelectionResult out;
  out.hits.assign(set.mates.size(), 0);
  BitVec masked(set.faulty_wires.size());
  std::vector<std::uint32_t> triggered;
  for (std::size_t cycle = 0; cycle < trace.num_cycles(); ++cycle) {
    triggered = eval.triggered_by_cycle[cycle];
    if (triggered.empty()) continue;
    std::sort(triggered.begin(), triggered.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return rank_of[a] < rank_of[b];
              });
    masked.clear_all();
    for (std::uint32_t m : triggered) {
      std::size_t gained = 0;
      for (WireId w : set.mates[m].masked_wires) {
        const std::size_t idx = fault_index.at(w);
        if (!masked.get(idx)) {
          masked.set(idx, true);
          ++gained;
        }
      }
      out.hits[m] += gained;
    }
  }

  out.ranking.resize(set.mates.size());
  for (std::size_t i = 0; i < out.ranking.size(); ++i) out.ranking[i] = i;
  std::sort(out.ranking.begin(), out.ranking.end(),
            [&](std::size_t a, std::size_t b) {
              if (out.hits[a] != out.hits[b]) return out.hits[a] > out.hits[b];
              return a < b;
            });
  return out;
}

MateSet top_n(const MateSet& set, const SelectionResult& sel, std::size_t n) {
  RIPPLE_ASSERT(sel.ranking.size() == set.mates.size(),
                "selection does not belong to this MATE set");
  MateSet out;
  out.faulty_wires = set.faulty_wires;
  const std::size_t count = std::min(n, sel.ranking.size());
  out.mates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.mates.push_back(set.mates[sel.ranking[i]]);
  }
  return out;
}

} // namespace ripple::mate
