#include "mate/select.hpp"

#include "mate/stream.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace ripple::mate {
namespace detail {

/// Global visit order: most-masking MATE first (the paper's "beginning from
/// the MATE that masks the most faults"). Returns rank_of[mate] = position.
std::vector<std::size_t> visit_rank(const MateSet& set,
                                    const EvalResult& eval) {
  std::vector<std::size_t> global_order(set.mates.size());
  for (std::size_t i = 0; i < global_order.size(); ++i) global_order[i] = i;
  std::sort(global_order.begin(), global_order.end(),
            [&](std::size_t a, std::size_t b) {
              if (eval.per_mate[a].masked_total !=
                  eval.per_mate[b].masked_total) {
                return eval.per_mate[a].masked_total >
                       eval.per_mate[b].masked_total;
              }
              return a < b;
            });
  std::vector<std::size_t> rank_of(set.mates.size());
  for (std::size_t i = 0; i < global_order.size(); ++i) {
    rank_of[global_order[i]] = i;
  }
  return rank_of;
}

/// Dense masked-wire bitsets, one per MATE, over the faulty-wire universe.
std::vector<BitVec> mate_masks(const MateSet& set) {
  std::unordered_map<WireId, std::size_t> fault_index;
  fault_index.reserve(set.faulty_wires.size());
  for (std::size_t i = 0; i < set.faulty_wires.size(); ++i) {
    fault_index.emplace(set.faulty_wires[i], i);
  }
  std::vector<BitVec> masks(set.mates.size());
  for (std::size_t m = 0; m < set.mates.size(); ++m) {
    masks[m] = BitVec(set.faulty_wires.size());
    for (WireId w : set.mates[m].masked_wires) {
      const auto it = fault_index.find(w);
      RIPPLE_ASSERT(it != fault_index.end(),
                    "MATE masks a wire outside the faulty set");
      masks[m].set(it->second, true);
    }
  }
  return masks;
}

std::vector<std::size_t> ranking_from_hits(
    const std::vector<std::size_t>& hits) {
  std::vector<std::size_t> ranking(hits.size());
  for (std::size_t i = 0; i < ranking.size(); ++i) ranking[i] = i;
  std::sort(ranking.begin(), ranking.end(),
            [&](std::size_t a, std::size_t b) {
              if (hits[a] != hits[b]) return hits[a] > hits[b];
              return a < b;
            });
  return ranking;
}

} // namespace detail

using detail::mate_masks;
using detail::ranking_from_hits;
using detail::visit_rank;

SelectionResult rank_mates_scalar(const MateSet& set,
                                  const sim::Trace& trace) {
  // Pass 1: whole-trace masking volume per MATE + per-cycle trigger lists.
  // The result is owned, so pass 2 sorts the trigger lists in place instead
  // of copying each cycle's list before sorting it.
  EvalResult eval =
      evaluate_mates_scalar(set, trace, /*keep_trigger_lists=*/true);
  const std::vector<std::size_t> rank_of = visit_rank(set, eval);

  std::unordered_map<WireId, std::size_t> fault_index;
  for (std::size_t i = 0; i < set.faulty_wires.size(); ++i) {
    fault_index.emplace(set.faulty_wires[i], i);
  }

  // Pass 2: per-cycle marginal gains.
  SelectionResult out;
  out.hits.assign(set.mates.size(), 0);
  BitVec masked(set.faulty_wires.size());
  for (std::size_t cycle = 0; cycle < trace.num_cycles(); ++cycle) {
    std::vector<std::uint32_t>& triggered = eval.triggered_by_cycle[cycle];
    if (triggered.empty()) continue;
    std::sort(triggered.begin(), triggered.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return rank_of[a] < rank_of[b];
              });
    masked.clear_all();
    for (std::uint32_t m : triggered) {
      std::size_t gained = 0;
      for (WireId w : set.mates[m].masked_wires) {
        const std::size_t idx = fault_index.at(w);
        if (!masked.get(idx)) {
          masked.set(idx, true);
          ++gained;
        }
      }
      out.hits[m] += gained;
    }
  }

  out.ranking = ranking_from_hits(out.hits);
  return out;
}

SelectionResult rank_mates_bitpar(const MateSet& set,
                                  const sim::TransposedTrace& trace,
                                  std::size_t threads) {
  // Pass 1: word-parallel trigger evaluation (64 cycles per word).
  EvalResult eval =
      evaluate_mates_bitpar(set, trace, /*keep_trigger_lists=*/true, threads);
  const std::vector<std::size_t> rank_of = visit_rank(set, eval);
  const std::vector<BitVec> masks = mate_masks(set);

  // Pass 2: per-cycle marginal gains. Cycles are independent (the masked
  // union restarts every cycle), so chunks of cycles fan out across the
  // pool; per-chunk hit counters merge in chunk order for determinism.
  // The gain of a MATE is or_count: one word-level OR+popcount pass over
  // the dense masked set instead of a per-wire get/set loop.
  const std::size_t num_cycles = trace.num_cycles();
  const auto run_cycles = [&](std::size_t begin, std::size_t end,
                              std::vector<std::size_t>& hits) {
    hits.assign(set.mates.size(), 0);
    BitVec masked(set.faulty_wires.size());
    for (std::size_t cycle = begin; cycle < end; ++cycle) {
      std::vector<std::uint32_t>& triggered = eval.triggered_by_cycle[cycle];
      if (triggered.empty()) continue;
      std::sort(triggered.begin(), triggered.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return rank_of[a] < rank_of[b];
                });
      masked.clear_all();
      for (std::uint32_t m : triggered) {
        hits[m] += masked.or_count(masks[m]);
      }
    }
  };

  constexpr std::size_t kMinCyclesPerWorker = 512;
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  const std::size_t workers =
      std::min({threads == 0 ? hw : threads,
                (num_cycles + kMinCyclesPerWorker - 1) / kMinCyclesPerWorker,
                std::max<std::size_t>(num_cycles, 1)});

  SelectionResult out;
  std::vector<std::vector<std::size_t>> partials(
      std::max<std::size_t>(workers, 1));
  if (workers <= 1) {
    run_cycles(0, num_cycles, partials[0]);
  } else {
    ThreadPool pool(workers);
    pool.parallel_for_index(
        workers,
        [&](std::size_t chunk) {
          const std::size_t begin = chunk * num_cycles / workers;
          const std::size_t end = (chunk + 1) * num_cycles / workers;
          run_cycles(begin, end, partials[chunk]);
        },
        /*grain=*/1);
  }

  out.hits.assign(set.mates.size(), 0);
  for (const std::vector<std::size_t>& p : partials) {
    for (std::size_t m = 0; m < p.size(); ++m) out.hits[m] += p[m];
  }
  out.ranking = ranking_from_hits(out.hits);
  return out;
}

SelectionResult rank_mates(const MateSet& set, const sim::Trace& trace,
                           EvalEngine engine, std::size_t threads) {
  if (engine == EvalEngine::Scalar) return rank_mates_scalar(set, trace);
  const sim::TransposedTrace tt(trace);
  if (engine == EvalEngine::Streaming) {
    sim::TransposedTraceSource source(tt);
    return rank_mates_stream(set, source, threads, /*overlap=*/false);
  }
  return rank_mates_bitpar(set, tt, threads);
}

MateSet top_n(const MateSet& set, const SelectionResult& sel, std::size_t n) {
  RIPPLE_ASSERT(sel.ranking.size() == set.mates.size(),
                "selection does not belong to this MATE set");
  MateSet out;
  out.faulty_wires = set.faulty_wires;
  const std::size_t count = std::min(n, sel.ranking.size());
  out.mates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.mates.push_back(set.mates[sel.ranking[i]]);
  }
  return out;
}

} // namespace ripple::mate
