#include "mate/search.hpp"

#include <algorithm>
#include <map>

#include "mate/gate_masking.hpp"
#include "sim/levelize.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace ripple::mate {
namespace {

/// Search state for a single faulty wire.
class WireSearch {
public:
  WireSearch(const netlist::Netlist& n, const SearchParams& params,
             const std::vector<std::uint32_t>& topo)
      : n_(n), params_(params), topo_(topo) {}

  /// Runs the per-wire pipeline; fills `outcome` and returns found MATEs.
  std::vector<Cube> run(WireId wire, WireOutcome& outcome) {
    const WireId group[1] = {wire};
    return run_group(std::span<const WireId>(group, 1), outcome);
  }

  /// Same pipeline for a multi-bit fault group (union cone, paths from every
  /// origin, a candidate must block all of them).
  std::vector<Cube> run_group(std::span<const WireId> group,
                              WireOutcome& outcome) {
    outcome.wire = group[0];

    const FaultCone cone = compute_cone(n_, group, topo_);
    outcome.cone_gates = cone.gates.size();
    outcome.border_wires = cone.border_wires.size();

    PathEnumParams pp;
    pp.max_depth = params_.path_depth;
    pp.max_paths = params_.max_paths_per_wire;
    const PathEnumResult pr = enumerate_paths(n_, cone, pp);
    outcome.num_paths = pr.paths.size();
    if (!pr.complete) {
      outcome.status = WireStatus::PathBudget;
      return {};
    }
    if (pr.paths.empty()) {
      // The fault dies inside the cone without ever reaching an observer
      // (dangling logic): trivially benign in every cycle -> the constant-
      // true MATE masks it.
      outcome.status = WireStatus::Found;
      outcome.mates_found = 1;
      return {Cube{}};
    }
    num_paths_ = pr.paths.size();

    if (!collect_terms(cone, pr)) {
      outcome.status = WireStatus::Unmaskable;
      return {};
    }

    // Order terms by coverage (most-blocking first) for effective pruning.
    order_.resize(terms_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(),
              [&](std::size_t a, std::size_t b) {
                const std::size_t ca = terms_[a].blocks.popcount();
                const std::size_t cb = terms_[b].blocks.popcount();
                if (ca != cb) return ca > cb;
                return terms_[a].cube < terms_[b].cube;
              });

    // Suffix coverage: union of blocks of order_[i..]; prunes branches that
    // can no longer reach full coverage.
    suffix_.assign(order_.size() + 1, BitVec(num_paths_));
    for (std::size_t i = order_.size(); i-- > 0;) {
      suffix_[i] = suffix_[i + 1];
      suffix_[i] |= terms_[order_[i]].blocks;
    }
    full_ = BitVec(num_paths_, true);
    if (!(suffix_[0] == full_)) {
      // Even all terms together cannot block every path.
      outcome.status = WireStatus::Unmaskable;
      return {};
    }

    found_.clear();
    found_sets_.clear();
    candidates_ = 0;
    chosen_.clear();
    // Per-depth coverage scratch (depth = chosen_.size()): dfs copies the
    // parent's coverage into slot depth+1 instead of heap-allocating a
    // BitVec per node. Slot 0 is the empty initial coverage.
    cov_stack_.assign(params_.max_terms + 1, BitVec(num_paths_));
    dfs(0, Cube{});

    outcome.candidates_tried = candidates_;
    outcome.mates_found = found_.size();
    outcome.status = found_.empty() ? WireStatus::NoMate : WireStatus::Found;
    return std::move(found_);
  }

private:
  struct Term {
    Cube cube;
    BitVec blocks; // over paths
  };

  /// Collect instantiated gate-masking terms for every (gate, entry wire)
  /// pair on some path. A path's fault enters each of its gates through a
  /// known wire (the previous gate's output, or the faulty origin); only the
  /// pins bound to that wire are treated as faulty for the gate-masking
  /// lookup. This per-entry semantics is sound — any taint chain from the
  /// origin to an observer is an enumerated path, and blocking each path at
  /// its entry pin breaks every such chain — and is far less conservative
  /// than distrusting every cone pin at once: reconvergent cones would
  /// otherwise saturate gates ("all pins faulty") and lose all masking
  /// capability.
  ///
  /// Returns false when a path has no maskable gate at all (early abort,
  /// paper Section 4: such a wire is unmaskable within the depth horizon).
  bool collect_terms(const FaultCone& cone, const PathEnumResult& pr) {
    std::map<Cube, std::size_t> term_index;
    std::map<std::pair<GateId, WireId>, std::vector<std::size_t>> terms_of;

    const GateMaskingTable& gm = GateMaskingTable::instance();
    const auto collect = [&](GateId g, WireId entry)
        -> const std::vector<std::size_t>& {
      const auto key = std::make_pair(g, entry);
      const auto found = terms_of.find(key);
      if (found != terms_of.end()) return found->second;
      auto& slot = terms_of[key];

      const netlist::Gate& gate = n_.gate(g);
      std::uint8_t faulty_mask = 0;
      for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
        if (gate.inputs[pin] == entry) {
          faulty_mask |= static_cast<std::uint8_t>(1u << pin);
        }
      }
      RIPPLE_ASSERT(faulty_mask != 0, "path gate does not read its entry");
      for (const PinCube& pc : gm.terms(gate.kind, faulty_mask)) {
        // Instantiate over border wires; a cube relying on a mistrusted
        // (cone) wire cannot be evaluated on golden values.
        bool usable = true;
        std::vector<Literal> lits;
        for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
          if (!(pc.care & (1u << pin))) continue;
          const WireId in = gate.inputs[pin];
          if (cone.contains_wire(in)) {
            usable = false;
            break;
          }
          lits.push_back(Literal{in, ((pc.value >> pin) & 1u) != 0});
        }
        if (!usable) continue;
        Cube cube{std::move(lits)};
        const auto [it, inserted] =
            term_index.try_emplace(std::move(cube), terms_.size());
        if (inserted) {
          terms_.push_back(Term{it->first, BitVec(num_paths_)});
        }
        slot.push_back(it->second);
      }
      return slot;
    };

    for (std::size_t pi = 0; pi < pr.paths.size(); ++pi) {
      const Path& p = pr.paths[pi];
      bool maskable = false;
      WireId entry = p.origin;
      for (GateId g : p.gates) {
        for (std::size_t t : collect(g, entry)) {
          terms_[t].blocks.set(pi, true);
          maskable = true;
        }
        entry = n_.gate(g).output;
      }
      if (!maskable && !p.gates.empty()) return false;
      if (p.gates.empty()) return false; // origin itself is observable
    }
    return true;
  }

  /// Depth-first enumeration of term combinations in `order_` index order.
  /// `conj` is the conjunction of the chosen terms; the union of their
  /// blocked paths lives in cov_stack_[chosen_.size()] (per-depth scratch,
  /// no per-node heap allocation).
  void dfs(std::size_t from, const Cube& conj) {
    if (budget_exhausted()) return;
    const std::size_t depth = chosen_.size();
    const BitVec& covered = cov_stack_[depth];
    for (std::size_t i = from; i < order_.size(); ++i) {
      if (budget_exhausted()) return;
      if (chosen_.size() >= params_.max_terms) return;
      if (found_.size() >= params_.max_mates_per_wire) return;

      // Prune: remaining terms (including i) can no longer complete
      // coverage. full_ is all-ones over the paths, so coverage completion
      // is a popcount of the un-materialized union.
      if (covered.popcount_or(suffix_[i]) != num_paths_) return;

      const Term& t = terms_[order_[i]];

      // Useless term: adds no newly blocked path.
      if (t.blocks.is_subset_of(covered)) continue;

      const std::optional<Cube> next = conj.conjoin(t.cube);
      ++candidates_;
      if (!next) continue; // contradictory literals

      chosen_.push_back(order_[i]);
      BitVec& next_cov = cov_stack_[depth + 1];
      next_cov = covered; // copy-assign reuses the slot's capacity
      next_cov |= t.blocks;

      if (next_cov == full_) {
        record(*next);
      } else {
        dfs(i + 1, *next);
      }
      chosen_.pop_back();
    }
  }

  bool budget_exhausted() const {
    return candidates_ >= params_.max_candidates_per_wire;
  }

  void record(const Cube& cube) {
    // Skip supersets of an already-recorded term set (minimality): those add
    // literals without masking more.
    std::vector<std::size_t> set = chosen_;
    std::sort(set.begin(), set.end());
    for (const auto& prev : found_sets_) {
      if (std::includes(set.begin(), set.end(), prev.begin(), prev.end())) {
        return;
      }
    }
    found_sets_.push_back(std::move(set));
    found_.push_back(cube);
  }

  const netlist::Netlist& n_;
  const SearchParams& params_;
  const std::vector<std::uint32_t>& topo_;

  std::size_t num_paths_ = 0;
  std::vector<Term> terms_;
  std::vector<std::size_t> order_;
  std::vector<BitVec> suffix_;
  BitVec full_;
  std::vector<BitVec> cov_stack_; // per-depth dfs coverage scratch

  std::vector<Cube> found_;
  std::vector<std::vector<std::size_t>> found_sets_;
  std::vector<std::size_t> chosen_;
  std::size_t candidates_ = 0;
};

} // namespace

std::vector<std::size_t> SearchResult::cone_sizes() const {
  std::vector<std::size_t> v;
  v.reserve(outcomes.size());
  for (const WireOutcome& o : outcomes) v.push_back(o.cone_gates);
  return v;
}

std::vector<WireId> all_flop_wires(const netlist::Netlist& n) {
  std::vector<WireId> out;
  out.reserve(n.num_flops());
  for (FlopId f : n.all_flops()) out.push_back(n.flop(f).q);
  return out;
}

std::vector<WireId> flop_wires_excluding_prefix(const netlist::Netlist& n,
                                                std::string_view prefix) {
  std::vector<WireId> out;
  for (FlopId f : n.all_flops()) {
    if (!starts_with(n.flop(f).name, prefix)) out.push_back(n.flop(f).q);
  }
  return out;
}

SearchResult find_mates(const netlist::Netlist& n,
                        const std::vector<WireId>& faulty_wires,
                        const SearchParams& params) {
  RIPPLE_CHECK(params.max_terms >= 1, "max_terms must be at least 1");
  n.check();

  Stopwatch watch;
  const sim::Levelization level = sim::levelize(n);
  std::vector<std::uint32_t> topo(n.num_gates());
  for (std::size_t i = 0; i < level.order.size(); ++i) {
    topo[level.order[i].index()] = static_cast<std::uint32_t>(i);
  }

  SearchResult result;
  result.outcomes.resize(faulty_wires.size());
  std::vector<std::vector<Cube>> cubes_per_wire(faulty_wires.size());

  ThreadPool pool(params.threads);
  pool.parallel_for_index(faulty_wires.size(), [&](std::size_t i) {
    Stopwatch wire_watch;
    WireSearch search(n, params, topo);
    cubes_per_wire[i] = search.run(faulty_wires[i], result.outcomes[i]);
    result.outcomes[i].seconds = wire_watch.seconds();
  });

  // Merge identical cubes across wires: one MATE can prove several faults
  // benign (Section 4, step 3).
  std::map<Cube, std::size_t> by_cube;
  for (std::size_t i = 0; i < faulty_wires.size(); ++i) {
    const WireOutcome& o = result.outcomes[i];
    result.total_candidates += o.candidates_tried;
    result.total_mates += o.mates_found;
    if (o.status == WireStatus::Unmaskable) ++result.unmaskable_wires;
    for (const Cube& c : cubes_per_wire[i]) {
      const auto [it, inserted] =
          by_cube.try_emplace(c, result.set.mates.size());
      if (inserted) {
        result.set.mates.push_back(Mate{c, {}});
      }
      result.set.mates[it->second].masked_wires.push_back(faulty_wires[i]);
    }
  }
  result.set.faulty_wires = faulty_wires;
  result.seconds = watch.seconds();
  result.threads_used = pool.thread_count();
  return result;
}

GroupOutcome find_group_mates(const netlist::Netlist& n,
                              std::span<const WireId> group,
                              const SearchParams& params) {
  RIPPLE_CHECK(!group.empty(), "empty fault group");
  n.check();
  const sim::Levelization level = sim::levelize(n);
  std::vector<std::uint32_t> topo(n.num_gates());
  for (std::size_t i = 0; i < level.order.size(); ++i) {
    topo[level.order[i].index()] = static_cast<std::uint32_t>(i);
  }
  WireSearch search(n, params, topo);
  WireOutcome outcome;
  GroupOutcome out;
  out.wires.assign(group.begin(), group.end());
  out.mates = search.run_group(group, outcome);
  out.status = outcome.status;
  out.cone_gates = outcome.cone_gates;
  out.num_paths = outcome.num_paths;
  out.candidates_tried = outcome.candidates_tried;
  return out;
}

} // namespace ripple::mate

