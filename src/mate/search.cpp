#include "mate/search.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "mate/gate_masking.hpp"
#include "mate/iso.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace ripple::mate {
namespace {

/// Search state for a single faulty wire. Reusable across wires: run_group
/// resets the per-wire state but keeps the term/BitVec scratch capacity, so
/// a pool worker constructs one of these, not one per wire.
class WireSearch {
public:
  WireSearch(const netlist::Netlist& n, const SearchParams& params,
             const std::vector<std::uint32_t>& topo)
      : n_(n), params_(params), topo_(topo) {}

  /// Runs the per-wire pipeline; fills `outcome` and returns found MATEs.
  std::vector<Cube> run(WireId wire, WireOutcome& outcome) {
    const WireId group[1] = {wire};
    return run_group(std::span<const WireId>(group, 1), outcome);
  }

  /// Same pipeline for a multi-bit fault group (union cone, paths from every
  /// origin, a candidate must block all of them).
  std::vector<Cube> run_group(std::span<const WireId> group,
                              WireOutcome& outcome) {
    outcome.wire = group[0];

    const FaultCone cone = compute_cone(n_, group, topo_);
    outcome.cone_gates = cone.gates.size();
    outcome.border_wires = cone.border_wires.size();

    PathEnumParams pp;
    pp.max_depth = params_.path_depth;
    pp.max_paths = params_.max_paths_per_wire;
    const PathEnumResult pr = enumerate_paths(n_, cone, pp);
    outcome.num_paths = pr.paths.size();
    if (!pr.complete) {
      outcome.status = WireStatus::PathBudget;
      return {};
    }
    if (pr.paths.empty()) {
      // The fault dies inside the cone without ever reaching an observer
      // (dangling logic): trivially benign in every cycle -> the constant-
      // true MATE masks it.
      outcome.status = WireStatus::Found;
      outcome.mates_found = 1;
      return {Cube{}};
    }
    num_paths_ = pr.paths.size();

    terms_.clear();
    if (!collect_terms(cone, pr)) {
      outcome.status = WireStatus::Unmaskable;
      return {};
    }

    // Order terms by coverage (most-blocking first) for effective pruning.
    order_.resize(terms_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(),
              [&](std::size_t a, std::size_t b) {
                const std::size_t ca = terms_[a].blocks.popcount();
                const std::size_t cb = terms_[b].blocks.popcount();
                if (ca != cb) return ca > cb;
                return terms_[a].cube < terms_[b].cube;
              });

    // Suffix coverage: union of blocks of order_[i..]; prunes branches that
    // can no longer reach full coverage.
    suffix_.assign(order_.size() + 1, BitVec(num_paths_));
    for (std::size_t i = order_.size(); i-- > 0;) {
      suffix_[i] = suffix_[i + 1];
      suffix_[i] |= terms_[order_[i]].blocks;
    }
    full_ = BitVec(num_paths_, true);
    if (!(suffix_[0] == full_)) {
      // Even all terms together cannot block every path.
      outcome.status = WireStatus::Unmaskable;
      return {};
    }

    recorder_.clear();
    candidates_ = 0;
    chosen_.clear();
    // Per-depth coverage scratch (depth = chosen_.size()): dfs copies the
    // parent's coverage into slot depth+1 instead of heap-allocating a
    // BitVec per node. Slot 0 is the empty initial coverage.
    cov_stack_.assign(params_.max_terms + 1, BitVec(num_paths_));
    dfs(0, Cube{});

    outcome.candidates_tried = candidates_;
    outcome.mates_found = recorder_.size();
    outcome.status =
        recorder_.size() == 0 ? WireStatus::NoMate : WireStatus::Found;
    return recorder_.take_cubes();
  }

private:
  struct Term {
    Cube cube;
    BitVec blocks; // over paths
  };

  /// Collect instantiated gate-masking terms for every (gate, entry wire)
  /// pair on some path. A path's fault enters each of its gates through a
  /// known wire (the previous gate's output, or the faulty origin); only the
  /// pins bound to that wire are treated as faulty for the gate-masking
  /// lookup. This per-entry semantics is sound — any taint chain from the
  /// origin to an observer is an enumerated path, and blocking each path at
  /// its entry pin breaks every such chain — and is far less conservative
  /// than distrusting every cone pin at once: reconvergent cones would
  /// otherwise saturate gates ("all pins faulty") and lose all masking
  /// capability.
  ///
  /// Term indices are assigned in first-encounter order, so the hashed maps
  /// here yield the exact term list the old ordered-map version produced.
  ///
  /// Returns false when a path has no maskable gate at all (early abort,
  /// paper Section 4: such a wire is unmaskable within the depth horizon).
  bool collect_terms(const FaultCone& cone, const PathEnumResult& pr) {
    term_index_.clear();
    terms_of_.clear();

    const GateMaskingTable& gm = GateMaskingTable::instance();
    const auto collect = [&](GateId g, WireId entry)
        -> const std::vector<std::size_t>& {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(g.value()) << 32) | entry.value();
      const auto found = terms_of_.find(key);
      if (found != terms_of_.end()) return found->second;
      auto& slot = terms_of_[key];

      const netlist::Gate& gate = n_.gate(g);
      std::uint8_t faulty_mask = 0;
      for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
        if (gate.inputs[pin] == entry) {
          faulty_mask |= static_cast<std::uint8_t>(1u << pin);
        }
      }
      RIPPLE_ASSERT(faulty_mask != 0, "path gate does not read its entry");
      for (const PinCube& pc : gm.terms(gate.kind, faulty_mask)) {
        // Instantiate over border wires; a cube relying on a mistrusted
        // (cone) wire cannot be evaluated on golden values.
        bool usable = true;
        std::vector<Literal> lits;
        for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
          if (!(pc.care & (1u << pin))) continue;
          const WireId in = gate.inputs[pin];
          if (cone.contains_wire(in)) {
            usable = false;
            break;
          }
          lits.push_back(Literal{in, ((pc.value >> pin) & 1u) != 0});
        }
        if (!usable) continue;
        Cube cube{std::move(lits)};
        const auto [it, inserted] =
            term_index_.try_emplace(std::move(cube), terms_.size());
        if (inserted) {
          terms_.push_back(Term{it->first, BitVec(num_paths_)});
        }
        slot.push_back(it->second);
      }
      return slot;
    };

    for (std::size_t pi = 0; pi < pr.paths.size(); ++pi) {
      const Path& p = pr.paths[pi];
      bool maskable = false;
      WireId entry = p.origin;
      for (GateId g : p.gates) {
        for (std::size_t t : collect(g, entry)) {
          terms_[t].blocks.set(pi, true);
          maskable = true;
        }
        entry = n_.gate(g).output;
      }
      if (!maskable && !p.gates.empty()) return false;
      if (p.gates.empty()) return false; // origin itself is observable
    }
    return true;
  }

  /// Depth-first enumeration of term combinations in `order_` index order.
  /// `conj` is the conjunction of the chosen terms; the union of their
  /// blocked paths lives in cov_stack_[chosen_.size()] (per-depth scratch,
  /// no per-node heap allocation).
  void dfs(std::size_t from, const Cube& conj) {
    if (budget_exhausted()) return;
    const std::size_t depth = chosen_.size();
    const BitVec& covered = cov_stack_[depth];
    for (std::size_t i = from; i < order_.size(); ++i) {
      if (budget_exhausted()) return;
      if (chosen_.size() >= params_.max_terms) return;
      if (recorder_.size() >= params_.max_mates_per_wire) return;

      // Prune: remaining terms (including i) can no longer complete
      // coverage. full_ is all-ones over the paths, so coverage completion
      // is a popcount of the un-materialized union.
      if (covered.popcount_or(suffix_[i]) != num_paths_) return;

      const Term& t = terms_[order_[i]];

      // Useless term: adds no newly blocked path.
      if (t.blocks.is_subset_of(covered)) continue;

      const std::optional<Cube> next = conj.conjoin(t.cube);
      ++candidates_;
      if (!next) continue; // contradictory literals

      chosen_.push_back(order_[i]);
      BitVec& next_cov = cov_stack_[depth + 1];
      next_cov = covered; // copy-assign reuses the slot's capacity
      next_cov |= t.blocks;

      if (next_cov == full_) {
        record(*next);
      } else {
        dfs(i + 1, *next);
      }
      chosen_.pop_back();
    }
  }

  bool budget_exhausted() const {
    return candidates_ >= params_.max_candidates_per_wire;
  }

  void record(const Cube& cube) {
    std::vector<std::size_t> set = chosen_;
    std::sort(set.begin(), set.end());
    recorder_.add(std::move(set), cube);
  }

  const netlist::Netlist& n_;
  const SearchParams& params_;
  const std::vector<std::uint32_t>& topo_;

  std::size_t num_paths_ = 0;
  std::vector<Term> terms_;
  // collect_terms scratch: cube -> index into terms_, and the term list per
  // (gate << 32 | entry wire) pair. Node-based maps, so the references the
  // collect lambda hands out stay valid across later insertions.
  std::unordered_map<Cube, std::size_t> term_index_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> terms_of_;
  std::vector<std::size_t> order_;
  std::vector<BitVec> suffix_;
  BitVec full_;
  std::vector<BitVec> cov_stack_; // per-depth dfs coverage scratch

  MinimalCubeRecorder recorder_;
  std::vector<std::size_t> chosen_;
  std::size_t candidates_ = 0;
};

/// Hands out idle WireSearch instances so each pool worker keeps one warm
/// (term/BitVec scratch) instead of constructing per wire. The pool has no
/// worker ids, so this is a mutex-guarded free list; the lock is taken twice
/// per wire, negligible against a search.
class SearcherPool {
public:
  SearcherPool(const netlist::Netlist& n, const SearchParams& params,
               const std::vector<std::uint32_t>& topo)
      : n_(n), params_(params), topo_(topo) {}

  std::unique_ptr<WireSearch> acquire() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<WireSearch> s = std::move(idle_.back());
        idle_.pop_back();
        return s;
      }
    }
    return std::make_unique<WireSearch>(n_, params_, topo_);
  }

  void release(std::unique_ptr<WireSearch> s) {
    const std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(s));
  }

private:
  const netlist::Netlist& n_;
  const SearchParams& params_;
  const std::vector<std::uint32_t>& topo_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<WireSearch>> idle_;
};

} // namespace

bool MinimalCubeRecorder::add(std::vector<std::size_t> term_set,
                              const Cube& cube) {
  // Reject supersets (and duplicates) of anything already kept.
  for (const std::vector<std::size_t>& prev : sets_) {
    if (std::includes(term_set.begin(), term_set.end(), prev.begin(),
                      prev.end())) {
      return false;
    }
  }
  // Evict kept sets that the new one subsumes.
  std::size_t out = 0;
  for (std::size_t k = 0; k < sets_.size(); ++k) {
    if (std::includes(sets_[k].begin(), sets_[k].end(), term_set.begin(),
                      term_set.end())) {
      continue;
    }
    if (out != k) {
      sets_[out] = std::move(sets_[k]);
      cubes_[out] = std::move(cubes_[k]);
    }
    ++out;
  }
  sets_.resize(out);
  cubes_.resize(out);
  sets_.push_back(std::move(term_set));
  cubes_.push_back(cube);
  return true;
}

std::vector<Cube> MinimalCubeRecorder::take_cubes() {
  sets_.clear();
  return std::move(cubes_);
}

std::vector<std::size_t> SearchResult::cone_sizes() const {
  std::vector<std::size_t> v;
  v.reserve(outcomes.size());
  for (const WireOutcome& o : outcomes) v.push_back(o.cone_gates);
  return v;
}

std::vector<WireId> all_flop_wires(const netlist::Netlist& n) {
  std::vector<WireId> out;
  out.reserve(n.num_flops());
  for (FlopId f : n.all_flops()) out.push_back(n.flop(f).q);
  return out;
}

std::vector<WireId> flop_wires_excluding_prefix(const netlist::Netlist& n,
                                                std::string_view prefix) {
  std::vector<WireId> out;
  for (FlopId f : n.all_flops()) {
    if (!starts_with(n.flop(f).name, prefix)) out.push_back(n.flop(f).q);
  }
  return out;
}

SearchResult find_mates(const netlist::Netlist& n,
                        const std::vector<WireId>& faulty_wires,
                        const SearchParams& params) {
  RIPPLE_CHECK(params.max_terms >= 1, "max_terms must be at least 1");
  n.check();

  Stopwatch watch;
  const std::vector<std::uint32_t> topo = topo_positions(n);

  SearchResult result;
  result.outcomes.resize(faulty_wires.size());
  std::vector<std::vector<Cube>> cubes_per_wire(faulty_wires.size());
  // Wire index -> isomorphism class (dedup mode only): lets the cross-wire
  // merge below reuse one class member's resolved mate indices for the next.
  // same_as_rep marks members whose remapped cube list is provably the
  // representative's own (identity remap on every used border rank); their
  // cubes are never materialized at all.
  std::vector<std::size_t> class_of;
  std::vector<std::uint8_t> same_as_rep;

  ThreadPool pool(params.threads);
  SearcherPool searchers(n, params, topo);
  const auto search_wire = [&](std::size_t i) {
    Stopwatch wire_watch;
    std::unique_ptr<WireSearch> search = searchers.acquire();
    cubes_per_wire[i] = search->run(faulty_wires[i], result.outcomes[i]);
    searchers.release(std::move(search));
    result.outcomes[i].seconds = wire_watch.seconds();
  };

  if (params.dedup) {
    const IsoGrouping grouping =
        group_isomorphic_cones(n, faulty_wires, pool);
    result.dedup_classes = grouping.classes.size();
    result.busy_seconds += grouping.busy_seconds;
    class_of.resize(faulty_wires.size());
    for (std::size_t c = 0; c < grouping.classes.size(); ++c) {
      for (std::size_t m : grouping.classes[c].members) class_of[m] = c;
    }
    same_as_rep.assign(faulty_wires.size(), 0);

    // Largest cone first: a few big unique cones dominate wall time, so
    // they must start before the swarm of small register-file classes, not
    // after them (tail latency). grain=1 keeps the schedule order intact.
    std::vector<std::size_t> schedule(grouping.classes.size());
    for (std::size_t i = 0; i < schedule.size(); ++i) schedule[i] = i;
    std::sort(schedule.begin(), schedule.end(),
              [&](std::size_t a, std::size_t b) {
                const std::size_t ga = grouping.classes[a].cone_gates;
                const std::size_t gb = grouping.classes[b].cone_gates;
                if (ga != gb) return ga > gb;
                return a < b;
              });

    pool.parallel_for_index(
        schedule.size(),
        [&](std::size_t si) {
          const IsoClass& cls = grouping.classes[schedule[si]];
          const std::size_t rep = cls.members[0];
          search_wire(rep);

          // Border ranks the representative's literals actually touch: a
          // member whose border wires agree with the rep's on every used
          // rank gets the identity remap, so its cube list IS the rep's —
          // no cube is materialized and the merge reuses the rep's mate
          // indices verbatim.
          const std::vector<WireId>& rep_borders = grouping.borders[rep];
          std::vector<std::uint32_t> used_ranks;
          for (const Cube& c : cubes_per_wire[rep]) {
            for (const Literal& l : c.literals()) {
              const auto it = std::lower_bound(rep_borders.begin(),
                                               rep_borders.end(), l.wire);
              used_ranks.push_back(
                  static_cast<std::uint32_t>(it - rep_borders.begin()));
            }
          }
          std::sort(used_ranks.begin(), used_ranks.end());
          used_ranks.erase(
              std::unique(used_ranks.begin(), used_ranks.end()),
              used_ranks.end());

          // Members inherit the representative's outcome (identical by
          // isomorphism) and its cubes, translated over the rank-preserving
          // border correspondence.
          for (std::size_t k = 1; k < cls.members.size(); ++k) {
            const std::size_t m = cls.members[k];
            Stopwatch member_watch;
            WireOutcome& o = result.outcomes[m];
            o = result.outcomes[rep];
            o.wire = faulty_wires[m];
            const std::vector<WireId>& mem_borders = grouping.borders[m];
            const bool identity = std::all_of(
                used_ranks.begin(), used_ranks.end(), [&](std::uint32_t r) {
                  return mem_borders[r] == rep_borders[r];
                });
            if (identity) {
              same_as_rep[m] = 1;
            } else {
              cubes_per_wire[m].reserve(cubes_per_wire[rep].size());
              for (const Cube& c : cubes_per_wire[rep]) {
                cubes_per_wire[m].push_back(
                    remap_cube(c, rep_borders, mem_borders));
              }
            }
            o.seconds = member_watch.seconds();
          }
        },
        /*grain=*/1);
  } else {
    pool.parallel_for_index(faulty_wires.size(), search_wire);
  }

  for (const WireOutcome& o : result.outcomes) {
    result.busy_seconds += o.seconds;
  }

  // Merge identical cubes across wires: one MATE can prove several faults
  // benign (Section 4, step 3). Mate indices are assigned in first-seen
  // order, so the hashed index produces the exact ordered-map output.
  //
  // Dedup fast path: isomorphic siblings usually carry literally identical
  // cube lists (masking terms live on shared control wires — write enables,
  // address decodes — not on the per-bit wires the remap renames), so the
  // first-processed member's resolved mate indices are memoized per class
  // and reused whenever a later member's list compares equal. The reused
  // indices are exactly what the hash probes would return, so the output is
  // unchanged.
  struct ClassMergeMemo {
    const std::vector<Cube>* cubes = nullptr;
    std::vector<std::size_t> mate_ids;
  };
  std::vector<ClassMergeMemo> memo(result.dedup_classes);
  std::unordered_map<Cube, std::size_t> by_cube;
  by_cube.reserve(faulty_wires.size());
  std::vector<std::size_t> ids_scratch;
  for (std::size_t i = 0; i < faulty_wires.size(); ++i) {
    const WireOutcome& o = result.outcomes[i];
    result.total_candidates += o.candidates_tried;
    result.total_mates += o.mates_found;
    if (o.status == WireStatus::Unmaskable) ++result.unmaskable_wires;

    ClassMergeMemo* m = class_of.empty() ? nullptr : &memo[class_of[i]];
    if (m != nullptr && m->cubes != nullptr &&
        (same_as_rep[i] != 0 || *m->cubes == cubes_per_wire[i])) {
      for (std::size_t id : m->mate_ids) {
        result.set.mates[id].masked_wires.push_back(faulty_wires[i]);
      }
      continue;
    }
    ids_scratch.clear();
    for (const Cube& c : cubes_per_wire[i]) {
      const auto [it, inserted] =
          by_cube.try_emplace(c, result.set.mates.size());
      if (inserted) {
        result.set.mates.push_back(Mate{c, {}});
      }
      result.set.mates[it->second].masked_wires.push_back(faulty_wires[i]);
      ids_scratch.push_back(it->second);
    }
    // Only the class's first-merged member (the representative: members are
    // ascending and the rep is members[0]) seeds the memo, so the memo and
    // the same_as_rep flags always refer to the same cube list.
    if (m != nullptr && m->cubes == nullptr) {
      m->cubes = &cubes_per_wire[i];
      m->mate_ids = ids_scratch;
    }
  }
  result.set.faulty_wires = faulty_wires;
  result.seconds = watch.seconds();
  result.threads_used = pool.thread_count();
  return result;
}

GroupOutcome find_group_mates(const netlist::Netlist& n,
                              std::span<const WireId> group,
                              const SearchParams& params) {
  return find_group_mates(n, group, params, topo_positions(n));
}

GroupOutcome find_group_mates(const netlist::Netlist& n,
                              std::span<const WireId> group,
                              const SearchParams& params,
                              const std::vector<std::uint32_t>& topo) {
  RIPPLE_CHECK(!group.empty(), "empty fault group");
  n.check();
  WireSearch search(n, params, topo);
  WireOutcome outcome;
  GroupOutcome out;
  out.wires.assign(group.begin(), group.end());
  out.mates = search.run_group(group, outcome);
  out.status = outcome.status;
  out.cone_gates = outcome.cone_gates;
  out.num_paths = outcome.num_paths;
  out.candidates_tried = outcome.candidates_tried;
  return out;
}

} // namespace ripple::mate
