#include "mate/gate_masking.hpp"

#include <algorithm>

namespace ripple::mate {
namespace {

/// Does assigning the free pins per (care, value) make the output independent
/// of the faulty pins? Free pins outside `care` range over all values too —
/// a cube is masking only if *every* completion masks, which keeps cubes
/// maximal-and-sound.
bool cube_masks(const cell::Info& ci, std::uint8_t faulty_mask, PinCube cube) {
  const std::uint32_t n = ci.num_inputs;
  const std::uint32_t free_mask =
      static_cast<std::uint32_t>(~faulty_mask) & ((1u << n) - 1);

  // Enumerate assignments of the unconstrained free pins.
  const std::uint32_t wild_mask = free_mask & ~cube.care;
  for (std::uint32_t wild = 0;; wild = (wild - wild_mask) & wild_mask) {
    const std::uint32_t base = (cube.value & cube.care) | wild;
    // The output must be constant over all faulty-pin combinations.
    bool first = true;
    bool expected = false;
    for (std::uint32_t fault = 0;;
         fault = (fault - faulty_mask) & faulty_mask) {
      const bool out = ((ci.truth >> (base | fault)) & 1u) != 0;
      if (first) {
        expected = out;
        first = false;
      } else if (out != expected) {
        return false;
      }
      if (fault == faulty_mask) break;
    }
    if (wild == wild_mask) break;
  }
  return true;
}

} // namespace

std::vector<PinCube> compute_masking_cubes(cell::Kind kind,
                                           std::uint8_t faulty_mask) {
  const cell::Info& ci = cell::info(kind);
  RIPPLE_CHECK(kind != cell::Kind::Dff, "DFF has no combinational masking");
  const std::uint32_t n = ci.num_inputs;
  RIPPLE_CHECK(faulty_mask != 0 && (faulty_mask >> n) == 0,
               "bad faulty-pin mask");

  const std::uint8_t free_mask =
      static_cast<std::uint8_t>(~faulty_mask & ((1u << n) - 1));

  // Enumerate all cubes over the free pins: choose care ⊆ free, value ⊆ care.
  std::vector<PinCube> masking;
  for (std::uint32_t care = 0;; care = (care - free_mask) & free_mask) {
    for (std::uint32_t value = 0;; value = (value - care) & care) {
      const PinCube cube{static_cast<std::uint8_t>(care),
                         static_cast<std::uint8_t>(value)};
      if (cube_masks(ci, faulty_mask, cube)) masking.push_back(cube);
      if (value == care) break;
    }
    if (care == free_mask) break;
  }

  // Keep prime cubes only: drop any cube that another (more general) cube
  // subsumes. Cube A subsumes B if A.care ⊆ B.care and values agree on A.care.
  std::vector<PinCube> prime;
  for (const PinCube& c : masking) {
    const bool subsumed = std::any_of(
        masking.begin(), masking.end(), [&](const PinCube& o) {
          return !(o == c) && (o.care & ~c.care) == 0 &&
                 (c.value & o.care) == o.value;
        });
    if (!subsumed) prime.push_back(c);
  }
  // Deterministic order: fewer literals first, then lexicographic.
  std::sort(prime.begin(), prime.end(), [](const PinCube& a, const PinCube& b) {
    if (a.num_literals() != b.num_literals()) {
      return a.num_literals() < b.num_literals();
    }
    if (a.care != b.care) return a.care < b.care;
    return a.value < b.value;
  });
  return prime;
}

GateMaskingTable::GateMaskingTable() {
  table_.resize(cell::kKindCount);
  for (cell::Kind kind : cell::Library::instance().combinational_kinds()) {
    const cell::Info& ci = cell::info(kind);
    if (ci.num_inputs == 0) continue;
    auto& per_mask = table_[static_cast<std::size_t>(kind)];
    per_mask.resize(1u << ci.num_inputs);
    for (std::uint32_t m = 1; m < (1u << ci.num_inputs); ++m) {
      per_mask[m] = compute_masking_cubes(kind, static_cast<std::uint8_t>(m));
    }
  }
}

const GateMaskingTable& GateMaskingTable::instance() {
  static const GateMaskingTable table;
  return table;
}

const std::vector<PinCube>& GateMaskingTable::terms(
    cell::Kind kind, std::uint8_t faulty_mask) const {
  static const std::vector<PinCube> empty;
  const auto& per_mask = table_[static_cast<std::size_t>(kind)];
  if (faulty_mask == 0 || faulty_mask >= per_mask.size()) return empty;
  return per_mask[faulty_mask];
}

} // namespace ripple::mate
