// Streaming MATE evaluation over chunked transposed traces (the bounded-
// memory engine behind EvalEngine::Streaming).
//
// The whole-trace bit-parallel engines (mate/eval.cpp, mate/select.cpp) need
// the full sim::TransposedTrace resident — O(cycles x wires) bits — which
// caps the workloads they can score. The streaming engine consumes the same
// word-parallel kernel chunk-by-chunk from a sim::TraceSource: only one
// chunk of trace bits is resident at a time, and with a sim::AsyncTraceSink
// in front the simulator produces chunk k+1 while the accumulator scores
// chunk k.
//
// Equivalence contract: chunk boundaries are 64-cycle aligned (enforced by
// the recorder), so each chunk's block masks and per-block words are exactly
// the corresponding span of the whole-trace transpose. All merged state is
// integer counters (commutative, exact), and the derived doubles go through
// the same detail::finalize_eval tail — the streaming results are therefore
// byte-for-byte identical to evaluate_mates_bitpar / rank_mates_bitpar and
// to the scalar oracle (eval_stream_test asserts this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mate/eval.hpp"
#include "mate/mate.hpp"
#include "mate/select.hpp"
#include "sim/stream.hpp"

namespace ripple::mate {

/// Incremental evaluate_mates over in-order 64-aligned trace chunks.
///
///   EvalAccumulator acc(set);
///   for each chunk: acc.consume(chunk.slice, chunk.base_cycle);
///   EvalResult r = acc.finish();
///
/// Chunks must arrive in cycle order with no gaps; every chunk except the
/// last must cover a multiple of 64 cycles. Trigger lists are never kept
/// (they are whole-trace state — use evaluate_mates_bitpar for those).
class EvalAccumulator {
 public:
  explicit EvalAccumulator(const MateSet& set, std::size_t threads = 0);
  ~EvalAccumulator();

  EvalAccumulator(const EvalAccumulator&) = delete;
  EvalAccumulator& operator=(const EvalAccumulator&) = delete;

  /// Score one chunk. `base_cycle` must equal cycles_consumed() (in-order,
  /// gap-free streaming).
  void consume(const sim::TransposedSlice& slice, std::size_t base_cycle);

  [[nodiscard]] std::size_t cycles_consumed() const { return cycles_; }

  /// Finalize counters into an EvalResult. The accumulator is spent after
  /// this call.
  [[nodiscard]] EvalResult finish();

 private:
  struct Plan; // literal (wire, invert) pairs + dense masked bitset

  const MateSet* set_;
  std::size_t threads_;
  std::vector<Plan> plans_;
  std::vector<std::size_t> triggers_; // per MATE
  std::size_t masked_faults_ = 0;
  std::size_t cycles_ = 0;

  friend class RankAccumulator;
};

/// Incremental rank_mates over a replayable trace stream. Ranking needs two
/// passes over the trace (whole-trace masking volumes first, then per-cycle
/// marginal gains in global visit order), so the trace is streamed twice:
///
///   RankAccumulator acc(set);
///   for each chunk: acc.consume_volumes(slice, base);   // pass 1
///   acc.begin_gains();
///   for each chunk: acc.consume_gains(slice, base);     // pass 2
///   SelectionResult r = acc.finish();
///
/// Unlike rank_mates_bitpar, no whole-trace trigger lists are materialized:
/// pass 2 re-derives each block's trigger words from the chunk (cheap — the
/// same AND-tree as pass 1) and builds only 64 cycles of trigger lists at a
/// time, keeping memory O(chunk x wires).
class RankAccumulator {
 public:
  explicit RankAccumulator(const MateSet& set, std::size_t threads = 0);
  ~RankAccumulator();

  RankAccumulator(const RankAccumulator&) = delete;
  RankAccumulator& operator=(const RankAccumulator&) = delete;

  void consume_volumes(const sim::TransposedSlice& slice,
                       std::size_t base_cycle);

  /// Freeze pass-1 volumes into the global visit order. Must be called once,
  /// between the last consume_volumes and the first consume_gains.
  void begin_gains();

  void consume_gains(const sim::TransposedSlice& slice,
                     std::size_t base_cycle);

  [[nodiscard]] SelectionResult finish();

 private:
  EvalAccumulator volumes_;
  EvalResult eval_;                  // valid after begin_gains()
  std::vector<std::size_t> rank_of_; // valid after begin_gains()
  std::vector<BitVec> masks_;        // valid after begin_gains()
  std::vector<std::size_t> hits_;    // per MATE marginal-gain credit
  std::size_t gain_cycles_ = 0;
  bool gains_begun_ = false;
};

/// Stream `source` once through an EvalAccumulator. With `overlap`, chunks
/// are scored on a sim::AsyncTraceSink worker thread while the source
/// produces the next one; without it, scoring runs inline on the caller.
/// Identical results either way.
[[nodiscard]] EvalResult evaluate_mates_stream(const MateSet& set,
                                               sim::TraceSource& source,
                                               std::size_t threads = 0,
                                               bool overlap = true);

/// Stream `source` twice (volumes, then gains) through a RankAccumulator.
/// Requires source.replayable().
[[nodiscard]] SelectionResult rank_mates_stream(const MateSet& set,
                                                sim::TraceSource& source,
                                                std::size_t threads = 0,
                                                bool overlap = true);

} // namespace ripple::mate
