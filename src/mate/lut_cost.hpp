// FPGA LUT-cost model for MATE sets (Section 6.1).
//
// A MATE is a single AND of (possibly negated) wires: a k-input LUT absorbs
// up to k literals; wider conjunctions cascade, each further LUT adding
// (k - 1) fresh literals (one input carries the partial result).
#pragma once

#include <cstddef>

#include "mate/mate.hpp"

namespace ripple::mate {

struct LutCostModel {
  /// LUT input width of the target FPGA family (6 for Virtex-6, the paper's
  /// reference platform).
  std::size_t lut_inputs = 6;
};

/// LUTs needed to realize one MATE.
[[nodiscard]] std::size_t mate_luts(const Mate& mate,
                                    const LutCostModel& model = {});

/// LUTs for a whole set (per-MATE cost summed; trigger outputs are collected
/// by the injection control unit, which is accounted separately).
[[nodiscard]] std::size_t set_luts(const MateSet& set,
                                   const LutCostModel& model = {});

/// Reference points from the literature, for the Section 6.1 comparison.
struct HafiPlatformCosts {
  std::size_t controller_luts_low = 1500;  // [9]  Entrena et al.
  std::size_t controller_luts_high = 6000; // [19] FLINT
  std::size_t virtex6_lx240t_luts = 150720;
};

} // namespace ripple::mate
