// Heuristic MATE search (Section 4).
//
// Pipeline per possibly-faulty wire:
//   1. fault cone + border wires                      (cone.hpp)
//   2. fault-propagation paths up to a depth budget   (paths.hpp)
//   3. collect gate-masking terms over border wires   (gate_masking.hpp)
//   4. enumerate conjunctions of up to `max_terms` terms as MATE candidates,
//      bounded by `max_candidates_per_wire`; a candidate that blocks every
//      path is a MATE
//   5. merge identical cubes across wires (one MATE may mask many faults)
//
// The search parallelizes over faulty wires, as the paper's prototype did.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mate/mate.hpp"
#include "mate/paths.hpp"
#include "netlist/netlist.hpp"

namespace ripple::mate {

struct SearchParams {
  /// Heuristic parameter 1: path depth. The paper uses 8 on Design-Compiler
  /// netlists whose 15nm library has richer (higher-fanin) cells; our
  /// primitive-cell netlists need ~1.5x the gate count for the same logical
  /// depth, so the calibrated default is 14 (the depth ablation bench sweeps
  /// this parameter).
  unsigned path_depth = 14;
  /// Heuristic parameter 2: maximum gate-masking terms per MATE (paper: 4).
  unsigned max_terms = 4;
  /// Heuristic parameter 3: candidate budget per faulty wire (paper: 100000).
  std::size_t max_candidates_per_wire = 100000;
  /// Implementation bounds (documented deviations; see DESIGN.md).
  std::size_t max_paths_per_wire = 50000;
  std::size_t max_mates_per_wire = 256;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Exploit cone isomorphism (mate/iso.hpp): fingerprint every faulty
  /// wire's cone, run the search once per structural class and remap the
  /// representative's cubes onto the members over the border-wire
  /// correspondence. Byte-identical to the per-wire oracle, which stays
  /// reachable via `--search-dedup=off`; like `threads`, this flag is not
  /// part of any cache key.
  bool dedup = true;
};

enum class WireStatus {
  Found,           // at least one MATE found
  NoMate,          // enumeration finished / budget exhausted without success
  Unmaskable,      // a propagation path exists on which no gate can mask
  PathBudget,      // path enumeration overflowed max_paths_per_wire
};

struct WireOutcome {
  WireId wire;
  WireStatus status = WireStatus::NoMate;
  std::size_t cone_gates = 0;
  std::size_t border_wires = 0;
  std::size_t num_paths = 0;
  std::size_t candidates_tried = 0;
  std::size_t mates_found = 0;
  /// Wall time spent on this wire: the full search for class
  /// representatives (and every wire with dedup off), just the cube remap
  /// for other class members.
  double seconds = 0.0;
};

struct SearchResult {
  MateSet set;
  std::vector<WireOutcome> outcomes;

  // Aggregates for Table 1.
  std::size_t total_candidates = 0;
  std::size_t total_mates = 0; // pre-merge: sum over wires of mates_found
  std::size_t unmaskable_wires = 0;
  double seconds = 0.0;
  /// Worker threads the search ran with (pool size; informational only, not
  /// part of any cache key — thread count does not change the result).
  std::size_t threads_used = 0;
  /// Isomorphism classes the dedup stage searched (0 when dedup was off).
  /// Informational only, like threads_used: the MATE output is identical
  /// either way.
  std::size_t dedup_classes = 0;
  /// Worker-busy seconds (cone fingerprinting + per-wire search + remap);
  /// the numerator of the pipeline's search_utilization stat.
  double busy_seconds = 0.0;

  [[nodiscard]] std::vector<std::size_t> cone_sizes() const;
};

/// Run the search for the given set of possibly-faulty wires (the fault model
/// of the evaluation uses flop Q outputs; any wire works, e.g. the primary
/// inputs of the Figure-1 example).
[[nodiscard]] SearchResult find_mates(const netlist::Netlist& n,
                                      const std::vector<WireId>& faulty_wires,
                                      const SearchParams& params = {});

/// Multi-bit upsets (Section 6.2 outlook): search MATEs for a *group* of
/// wires assumed to flip simultaneously (e.g. an MBU pair). A group MATE
/// blocks every propagation path of every group member, so when it holds the
/// whole multi-bit fault is benign within the cycle.
struct GroupOutcome {
  std::vector<WireId> wires;
  WireStatus status = WireStatus::NoMate;
  std::size_t cone_gates = 0;
  std::size_t num_paths = 0;
  std::size_t candidates_tried = 0;
  std::vector<Cube> mates;
};
[[nodiscard]] GroupOutcome find_group_mates(const netlist::Netlist& n,
                                            std::span<const WireId> group,
                                            const SearchParams& params = {});
/// Same, with precomputed topo positions (mate::topo_positions) so sweeps
/// over many groups — the MBU ablations — don't re-levelize per call.
[[nodiscard]] GroupOutcome find_group_mates(
    const netlist::Netlist& n, std::span<const WireId> group,
    const SearchParams& params,
    const std::vector<std::uint32_t>& topo_positions);

/// Bookkeeping behind the per-wire DFS's record(): keeps the found MATEs
/// minimal in *both* directions. A new term set is rejected when it is a
/// superset of a kept one, and kept sets that are supersets of the new one
/// are dropped — so the max_mates_per_wire budget only ever holds minimal
/// MATEs (the DFS can reach a superset combination before its subset).
class MinimalCubeRecorder {
public:
  void clear() {
    sets_.clear();
    cubes_.clear();
  }
  /// `term_set` must be sorted ascending. Returns true when the cube was
  /// kept (possibly evicting previously kept supersets).
  bool add(std::vector<std::size_t> term_set, const Cube& cube);
  [[nodiscard]] std::size_t size() const { return cubes_.size(); }
  /// Surviving cubes in recording order; leaves the recorder empty.
  [[nodiscard]] std::vector<Cube> take_cubes();

private:
  std::vector<std::vector<std::size_t>> sets_;
  std::vector<Cube> cubes_;
};

/// Faulty-wire helpers for the evaluation's two fault sets.
[[nodiscard]] std::vector<WireId> all_flop_wires(const netlist::Netlist& n);
[[nodiscard]] std::vector<WireId> flop_wires_excluding_prefix(
    const netlist::Netlist& n, std::string_view regfile_prefix);

} // namespace ripple::mate
