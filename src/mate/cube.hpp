// Cubes: conjunctions of boolean literals.
//
// Two flavours are used by the MATE machinery:
//   * PinCube  -- over the input pins of a single library cell (<= 4 pins),
//                 the result of the gate-masking analysis;
//   * Cube     -- over netlist wires, the instantiated form ("border wires
//                 f=0 and h=1"), which is what a MATE ultimately is.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/assert.hpp"
#include "util/bitvec.hpp"

namespace ripple::mate {

/// A conjunction over cell input pins: pin i is constrained iff bit i of
/// `care` is set; its required value is bit i of `value` (value bits outside
/// care are zero).
struct PinCube {
  std::uint8_t care = 0;
  std::uint8_t value = 0;

  [[nodiscard]] std::size_t num_literals() const {
    return static_cast<std::size_t>(__builtin_popcount(care));
  }

  /// Does a full pin assignment satisfy this cube?
  [[nodiscard]] bool matches(std::uint32_t assignment) const {
    return (assignment & care) == value;
  }

  bool operator==(const PinCube&) const = default;
};

/// One wire literal: wire == value.
struct Literal {
  WireId wire;
  bool value = false;

  bool operator==(const Literal&) const = default;
  auto operator<=>(const Literal&) const = default;
};

/// A conjunction of wire literals, kept sorted by wire id and free of
/// duplicates. An empty cube is the constant true.
class Cube {
public:
  Cube() = default;
  explicit Cube(std::vector<Literal> literals);

  [[nodiscard]] const std::vector<Literal>& literals() const { return lits_; }
  [[nodiscard]] std::size_t size() const { return lits_.size(); }
  [[nodiscard]] bool empty() const { return lits_.empty(); }

  /// Conjoin with another cube; nullopt if they conflict (x and !x).
  [[nodiscard]] std::optional<Cube> conjoin(const Cube& o) const;

  /// True if this cube's constraints are a superset of `o`'s (this => o).
  [[nodiscard]] bool implies(const Cube& o) const;

  /// Evaluate against a wire-value snapshot (Simulator::values() or a trace
  /// row): true iff every literal holds.
  [[nodiscard]] bool eval(const BitVec& values) const {
    for (const Literal& l : lits_) {
      if (values.get(l.wire.index()) != l.value) return false;
    }
    return true;
  }

  /// Human-readable form, e.g. "(!f & h)".
  [[nodiscard]] std::string to_string(const netlist::Netlist& n) const;

  /// FNV-1a over the literal list; backs std::hash<Cube> for the hashed
  /// term/merge indices of the MATE search.
  [[nodiscard]] std::size_t hash() const;

  bool operator==(const Cube&) const = default;
  auto operator<=>(const Cube&) const = default;

private:
  std::vector<Literal> lits_;
};

} // namespace ripple::mate

template <>
struct std::hash<ripple::mate::Cube> {
  std::size_t operator()(const ripple::mate::Cube& c) const noexcept {
    return c.hash();
  }
};
