#include "mate/lut_cost.hpp"

#include "util/assert.hpp"

namespace ripple::mate {

std::size_t mate_luts(const Mate& mate, const LutCostModel& model) {
  RIPPLE_CHECK(model.lut_inputs >= 2, "LUTs need at least two inputs");
  const std::size_t n = mate.num_inputs();
  if (n <= 1) return n; // constant-true MATEs cost nothing
  if (n <= model.lut_inputs) return 1;
  // First LUT eats lut_inputs literals, each cascade LUT eats lut_inputs - 1.
  const std::size_t rest = n - model.lut_inputs;
  const std::size_t per_stage = model.lut_inputs - 1;
  return 1 + (rest + per_stage - 1) / per_stage;
}

std::size_t set_luts(const MateSet& set, const LutCostModel& model) {
  std::size_t total = 0;
  for (const Mate& m : set.mates) total += mate_luts(m, model);
  return total;
}

} // namespace ripple::mate
