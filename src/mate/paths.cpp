#include "mate/paths.hpp"

namespace ripple::mate {
namespace {

class Enumerator {
public:
  Enumerator(const netlist::Netlist& n, const FaultCone& cone,
             const PathEnumParams& params)
      : n_(n), params_(params) {
    (void)cone;
  }

  PathEnumResult run(std::span<const WireId> origins) {
    for (WireId origin : origins) {
      origin_ = origin;
      const netlist::Wire& w = n_.wire(origin);
      if (w.is_primary_output || !w.flop_fanout.empty()) {
        result_.origin_observable = true;
        // Record the empty closed path: it has no gates, so no candidate
        // can block it and the wire is correctly classified unmaskable.
        result_.paths.push_back(Path{origin, {}, false});
      }
      visit(origin);
      if (!result_.complete) break;
    }
    return std::move(result_);
  }

private:
  /// Extend the current gate stack through every fanout gate of `wire`.
  void visit(WireId wire) {
    if (!result_.complete) return;
    for (GateId g : n_.wire(wire).gate_fanout) {
      stack_.push_back(g);
      const WireId y = n_.gate(g).output;
      const netlist::Wire& yw = n_.wire(y);
      const bool observed = yw.is_primary_output || !yw.flop_fanout.empty();
      if (observed) emit(/*open=*/false);
      if (stack_.size() >= params_.max_depth) {
        // Horizon reached. If the fault can still travel on (more gates, or
        // it just reached an observer and continues), record an open path so
        // the prefix must be masked.
        if (!yw.gate_fanout.empty()) emit(/*open=*/true);
      } else {
        visit(y);
      }
      stack_.pop_back();
      if (!result_.complete) return;
    }
  }

  void emit(bool open) {
    if (result_.paths.size() >= params_.max_paths) {
      result_.complete = false;
      return;
    }
    result_.paths.push_back(Path{origin_, stack_, open});
  }

  const netlist::Netlist& n_;
  const PathEnumParams& params_;
  WireId origin_;
  std::vector<GateId> stack_;
  PathEnumResult result_;
};

} // namespace

PathEnumResult enumerate_paths(const netlist::Netlist& n,
                               const FaultCone& cone,
                               const PathEnumParams& params) {
  RIPPLE_CHECK(params.max_depth >= 1, "path depth must be at least 1");
  return Enumerator(n, cone, params).run(cone.origins);
}

} // namespace ripple::mate
