// Machine-readable exports of MATE search and evaluation results, so
// downstream tooling (campaign planners, plotting scripts) can consume them
// without linking the library: JSON for structure, CSV for spreadsheets.
#pragma once

#include <iosfwd>

#include "mate/eval.hpp"
#include "mate/search.hpp"

namespace ripple::mate {

/// JSON document with the per-wire outcomes, the merged MATE set (cube
/// literals by wire name) and the aggregate statistics of a search.
void write_search_json(const netlist::Netlist& n, const SearchResult& result,
                       std::ostream& os);

/// CSV with one row per MATE: id, #inputs, #masked wires, cube text, plus —
/// when an evaluation is supplied — trigger count and masked-fault volume.
void write_mate_csv(const netlist::Netlist& n, const MateSet& set,
                    const EvalResult* eval, std::ostream& os);

/// JSON escape helper (exposed for tests).
[[nodiscard]] std::string json_escape(std::string_view s);

} // namespace ripple::mate
