// Fault-propagation path enumeration (Section 4, step 2).
//
// A path is the ordered list of cone gates a wrong value travels through. A
// path is *closed* when it reaches an observable wire (primary output or flop
// D input) and *open* when it is cut off by the depth horizon — open paths
// must be masked within their recorded prefix for the analysis to stay sound.
#pragma once

#include <cstddef>
#include <vector>

#include "mate/cone.hpp"

namespace ripple::mate {

struct PathEnumParams {
  /// Heuristic parameter 1 of the paper: how many gates deep to follow the
  /// fault (the evaluation uses 8).
  unsigned max_depth = 8;
  /// Implementation safety valve; wires whose cone explodes past this are
  /// treated like unmaskable wires.
  std::size_t max_paths = 50000;
};

struct Path {
  /// Which fault origin this propagation starts from (multi-bit groups
  /// enumerate paths per origin).
  WireId origin;
  std::vector<GateId> gates;
  bool open = false;
};

struct PathEnumResult {
  std::vector<Path> paths;
  /// False when max_paths was hit and enumeration gave up.
  bool complete = true;
  /// True when some faulty origin wire itself is observable (=> unmaskable:
  /// the empty path cannot contain a masking gate).
  bool origin_observable = false;
};

[[nodiscard]] PathEnumResult enumerate_paths(const netlist::Netlist& n,
                                             const FaultCone& cone,
                                             const PathEnumParams& params);

} // namespace ripple::mate
