#include "mate/report.hpp"

#include <ostream>

#include "util/strings.hpp"

namespace ripple::mate {
namespace {

const char* status_name(WireStatus s) {
  switch (s) {
    case WireStatus::Found: return "found";
    case WireStatus::NoMate: return "no-mate";
    case WireStatus::Unmaskable: return "unmaskable";
    case WireStatus::PathBudget: return "path-budget";
  }
  return "?";
}

} // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_search_json(const netlist::Netlist& n, const SearchResult& result,
                       std::ostream& os) {
  os << "{\n  \"module\": \"" << json_escape(n.name()) << "\",\n";
  os << "  \"totals\": {\"mates\": " << result.total_mates
     << ", \"merged_mates\": " << result.set.mates.size()
     << ", \"candidates\": " << result.total_candidates
     << ", \"unmaskable_wires\": " << result.unmaskable_wires
     << ", \"seconds\": " << result.seconds << "},\n";

  os << "  \"wires\": [\n";
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const WireOutcome& o = result.outcomes[i];
    os << "    {\"wire\": \"" << json_escape(n.wire(o.wire).name)
       << "\", \"status\": \"" << status_name(o.status)
       << "\", \"cone_gates\": " << o.cone_gates
       << ", \"paths\": " << o.num_paths
       << ", \"candidates\": " << o.candidates_tried
       << ", \"mates\": " << o.mates_found << "}"
       << (i + 1 < result.outcomes.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"mates\": [\n";
  for (std::size_t m = 0; m < result.set.mates.size(); ++m) {
    const Mate& mate = result.set.mates[m];
    os << "    {\"literals\": [";
    const auto& lits = mate.cube.literals();
    for (std::size_t l = 0; l < lits.size(); ++l) {
      os << (l ? ", " : "") << "{\"wire\": \""
         << json_escape(n.wire(lits[l].wire).name) << "\", \"value\": "
         << (lits[l].value ? "true" : "false") << "}";
    }
    os << "], \"masks\": [";
    for (std::size_t w = 0; w < mate.masked_wires.size(); ++w) {
      os << (w ? ", " : "") << "\""
         << json_escape(n.wire(mate.masked_wires[w]).name) << "\"";
    }
    os << "]}" << (m + 1 < result.set.mates.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void write_mate_csv(const netlist::Netlist& n, const MateSet& set,
                    const EvalResult* eval, std::ostream& os) {
  os << "mate,inputs,masked_wires,cube";
  if (eval != nullptr) os << ",triggers,masked_total";
  os << "\n";
  for (std::size_t m = 0; m < set.mates.size(); ++m) {
    const Mate& mate = set.mates[m];
    std::string cube = mate.cube.to_string(n);
    // CSV-quote the cube (it contains no quotes itself).
    os << m << ',' << mate.num_inputs() << ',' << mate.masked_wires.size()
       << ",\"" << cube << "\"";
    if (eval != nullptr) {
      os << ',' << eval->per_mate[m].triggers << ','
         << eval->per_mate[m].masked_total;
    }
    os << "\n";
  }
}

} // namespace ripple::mate
