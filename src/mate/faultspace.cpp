#include "mate/faultspace.hpp"

#include <unordered_map>

#include "util/strings.hpp"

namespace ripple::mate {

std::vector<std::vector<bool>> benign_matrix(const MateSet& set,
                                             const sim::Trace& trace) {
  std::unordered_map<WireId, std::size_t> fault_index;
  for (std::size_t i = 0; i < set.faulty_wires.size(); ++i) {
    fault_index.emplace(set.faulty_wires[i], i);
  }
  std::vector<std::vector<bool>> benign(
      set.faulty_wires.size(),
      std::vector<bool>(trace.num_cycles(), false));
  for (std::size_t c = 0; c < trace.num_cycles(); ++c) {
    const BitVec& values = trace.cycle_values(c);
    for (const Mate& m : set.mates) {
      if (!m.cube.eval(values)) continue;
      for (WireId w : m.masked_wires) {
        benign[fault_index.at(w)][c] = true;
      }
    }
  }
  return benign;
}

std::string render_fault_grid(const netlist::Netlist& n, const MateSet& set,
                              const sim::Trace& trace) {
  const auto benign = benign_matrix(set, trace);

  std::size_t name_width = 5;
  for (WireId w : set.faulty_wires) {
    name_width = std::max(name_width, n.wire(w).name.size());
  }

  std::string out = strprintf("%-*s  cycle ->\n", static_cast<int>(name_width),
                              "wire");
  for (std::size_t i = 0; i < set.faulty_wires.size(); ++i) {
    out += strprintf("%-*s  ", static_cast<int>(name_width),
                     n.wire(set.faulty_wires[i]).name.c_str());
    for (std::size_t c = 0; c < trace.num_cycles(); ++c) {
      out += benign[i][c] ? 'o' : '*';
      out += ' ';
    }
    out += '\n';
  }
  out += strprintf("(%s = possibly effective, %s = benign within one cycle)\n",
                   "*", "o");
  return out;
}

} // namespace ripple::mate
