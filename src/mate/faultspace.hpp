// Fault-space rendering and accounting helpers (Figure 1b).
#pragma once

#include <string>
#include <vector>

#include "mate/eval.hpp"
#include "mate/mate.hpp"
#include "netlist/netlist.hpp"
#include "sim/trace.hpp"

namespace ripple::mate {

/// Render the (wires x cycles) fault space as the paper's Figure 1b grid:
/// '*' = possibly effective, 'o' = proven benign by a triggered MATE.
/// Rows follow `set.faulty_wires`.
[[nodiscard]] std::string render_fault_grid(const netlist::Netlist& n,
                                            const MateSet& set,
                                            const sim::Trace& trace);

/// Per-(wire, cycle) benign matrix: benign[w][c] with w indexing
/// set.faulty_wires.
[[nodiscard]] std::vector<std::vector<bool>> benign_matrix(
    const MateSet& set, const sim::Trace& trace);

} // namespace ripple::mate
