// The running example of the paper's Figure 1: a five-input combinational
// circuit whose input d has the fault cone {d, g, k, l} with border wires
// {c, f, h} and the MATE (!f & h), whose inputs a/b are masked by (!b)/(!a),
// and whose inputs c/e are unmaskable because of a path through the
// XNOR gate C. Used by tests and by the fig1 bench.
#pragma once

#include "netlist/netlist.hpp"

namespace ripple::mate {

struct Figure1Circuit {
  netlist::Netlist netlist;
  // primary inputs (the example's faulty wires)
  WireId a, b, c, d, e;
  // internal wires
  WireId f; // NAND(a, b)   -- gate A
  WireId g; // XOR(c, d)    -- gate B
  WireId h; // INV(e)       -- gate F
  // outputs
  WireId k; // AND(g, f)    -- gate D
  WireId l; // OR(g, h)     -- gate E
  WireId m; // XNOR(e, c)   -- gate C (maskless path for c and e)
};

[[nodiscard]] Figure1Circuit build_figure1_circuit();

} // namespace ripple::mate
