// Fault-cone analysis (Section 3).
//
// The fault cone of a wire w is everything a wrong value of w can reach
// within the current clock cycle: all gates transitively driven by w and the
// wires they produce. Signals entering cone gates from outside are *border
// wires* — the only signals that can stop ("mask") the fault, and the only
// wires a border MATE may mention.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace ripple::mate {

struct FaultCone {
  /// Fault origin(s); one wire for the paper's SEU model, several for the
  /// multi-bit upsets of Section 6.2.
  std::vector<WireId> origins;
  /// Convenience for the single-origin case.
  [[nodiscard]] WireId origin() const {
    RIPPLE_ASSERT(origins.size() == 1);
    return origins[0];
  }

  /// Wires that can carry the fault (origin included), sorted by id.
  std::vector<WireId> wires;
  /// Gates with at least one cone input, sorted in topological order.
  std::vector<GateId> gates;
  /// Inputs of cone gates that are not cone wires, sorted by id, unique.
  std::vector<WireId> border_wires;
  /// Cone wires that are externally observable: primary outputs or flop D
  /// inputs. If the origin itself is an observer the fault can never be
  /// masked combinationally.
  std::vector<WireId> observers;

  [[nodiscard]] bool contains_wire(WireId w) const;
  [[nodiscard]] bool contains_gate(GateId g) const;
};

/// GateId -> position in a levelized order of the netlist (sim::levelize);
/// the form every compute_cone / search entry point wants. Compute it once
/// per netlist and pass it to the overloads below when sweeping many cones.
[[nodiscard]] std::vector<std::uint32_t> topo_positions(
    const netlist::Netlist& n);

/// Compute the (union) cone of one or more fault origins. `topo_positions`
/// must map GateId -> position in a levelized order of the netlist
/// (sim::levelize), so cone gates come out topologically sorted.
[[nodiscard]] FaultCone compute_cone(
    const netlist::Netlist& n, std::span<const WireId> origins,
    const std::vector<std::uint32_t>& topo_positions);

/// Convenience overloads; the single-origin forms levelize internally when
/// needed (fine for one-off use; the search precomputes the positions once).
[[nodiscard]] FaultCone compute_cone(
    const netlist::Netlist& n, WireId origin,
    const std::vector<std::uint32_t>& topo_positions);
[[nodiscard]] FaultCone compute_cone(const netlist::Netlist& n,
                                     WireId origin);
[[nodiscard]] FaultCone compute_cone(const netlist::Netlist& n,
                                     std::span<const WireId> origins);

} // namespace ripple::mate
