#include "mate/iso.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/hash.hpp"
#include "util/stopwatch.hpp"

namespace ripple::mate {
namespace {

/// Border rank of `w` in the sorted border-wire list.
std::uint32_t border_rank(std::span<const WireId> borders, WireId w) {
  const auto it = std::lower_bound(borders.begin(), borders.end(), w);
  RIPPLE_ASSERT(it != borders.end() && *it == w, "wire not on the border");
  return static_cast<std::uint32_t>(it - borders.begin());
}

/// Dense id -> canonical-number map over the whole netlist id space,
/// invalidated in O(1) by bumping a generation stamp. Fingerprinting is
/// lookup-bound, and hashed maps were the dominant cost of the grouping
/// pre-pass; two flat arrays per id universe make each probe one indexed
/// load.
class IdNumberer {
public:
  void reset(std::size_t universe) {
    if (num_.size() < universe) {
      num_.resize(universe);
      stamp_.resize(universe, 0);
    }
    ++gen_;
  }

  /// Assigns `number` to `id` unless already numbered this generation.
  bool try_number(std::uint32_t id, std::uint32_t number) {
    if (stamp_[id] == gen_) return false;
    stamp_[id] = gen_;
    num_[id] = number;
    return true;
  }

  [[nodiscard]] bool has(std::uint32_t id) const { return stamp_[id] == gen_; }
  [[nodiscard]] std::uint32_t at(std::uint32_t id) const {
    RIPPLE_ASSERT(has(id), "id not numbered");
    return num_[id];
  }

private:
  std::vector<std::uint32_t> num_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t gen_ = 0;
};

/// Per-worker scratch for fingerprinting: the numbering arrays plus the
/// discovery-order lists, all reused across cones.
struct FingerprintScratch {
  IdNumberer wire_num;
  IdNumberer gate_num;
  IdNumberer border_seen;
  std::vector<WireId> wire_order;
  std::vector<GateId> gate_order;
};

/// Canonical numbering: wires in breadth-first discovery order from the
/// origins, gates at first encounter while walking each wire's gate_fanout
/// in netlist order. Origins are never outputs of cone gates (the netlist
/// is combinationally acyclic), so the traversal is well-defined and reaches
/// every cone wire and gate — every fanout gate of a cone wire is a cone
/// gate by definition.
void canonical_walk(const netlist::Netlist& n, std::span<const WireId> origins,
                    FingerprintScratch& scratch) {
  IdNumberer& wire_num = scratch.wire_num;
  IdNumberer& gate_num = scratch.gate_num;
  wire_num.reset(n.num_wires());
  gate_num.reset(n.num_gates());
  std::vector<WireId>& wire_order = scratch.wire_order;
  std::vector<GateId>& gate_order = scratch.gate_order;
  wire_order.clear();
  gate_order.clear();

  for (WireId o : origins) {
    if (wire_num.try_number(o.value(),
                            static_cast<std::uint32_t>(wire_order.size()))) {
      wire_order.push_back(o);
    }
  }
  for (std::size_t head = 0; head < wire_order.size(); ++head) {
    for (GateId g : n.wire(wire_order[head]).gate_fanout) {
      if (!gate_num.try_number(
              g.value(), static_cast<std::uint32_t>(gate_order.size()))) {
        continue;
      }
      gate_order.push_back(g);
      const WireId y = n.gate(g).output;
      if (wire_num.try_number(
              y.value(), static_cast<std::uint32_t>(wire_order.size()))) {
        wire_order.push_back(y);
      }
    }
  }
}

/// Encodes the walked cone against the (sorted) border-wire list.
ConeSignature encode_walk(const netlist::Netlist& n,
                          std::size_t num_origins,
                          std::span<const WireId> borders,
                          const FingerprintScratch& scratch) {
  const IdNumberer& wire_num = scratch.wire_num;
  const IdNumberer& gate_num = scratch.gate_num;
  const std::vector<WireId>& wire_order = scratch.wire_order;
  const std::vector<GateId>& gate_order = scratch.gate_order;

  ConeSignature sig;
  sig.cone_gates = gate_order.size();
  auto& enc = sig.encoding;
  enc.reserve(4 + wire_order.size() * 3 + gate_order.size() * 6);
  enc.push_back(static_cast<std::uint32_t>(num_origins));
  enc.push_back(static_cast<std::uint32_t>(wire_order.size()));
  enc.push_back(static_cast<std::uint32_t>(gate_order.size()));
  enc.push_back(static_cast<std::uint32_t>(borders.size()));

  // Per cone wire: is it observed (primary output / flop D), and its fanout
  // gate sequence — the exact order the path enumerator visits.
  for (WireId w : wire_order) {
    const netlist::Wire& wire = n.wire(w);
    const bool observed = wire.is_primary_output || !wire.flop_fanout.empty();
    enc.push_back(observed ? 1u : 0u);
    enc.push_back(static_cast<std::uint32_t>(wire.gate_fanout.size()));
    for (GateId g : wire.gate_fanout) enc.push_back(gate_num.at(g.value()));
  }

  // Per cone gate: cell kind and pin bindings. Cone pins carry the wire's
  // canonical number (even tokens), border pins their sorted rank (odd
  // tokens) — the two spaces can never alias.
  for (GateId g : gate_order) {
    const netlist::Gate& gate = n.gate(g);
    enc.push_back(static_cast<std::uint32_t>(gate.kind));
    enc.push_back(static_cast<std::uint32_t>(gate.inputs.size()));
    for (WireId in : gate.inputs) {
      if (wire_num.has(in.value())) {
        enc.push_back(2u * wire_num.at(in.value()));
      } else {
        enc.push_back(2u * border_rank(borders, in) + 1u);
      }
    }
    enc.push_back(wire_num.at(gate.output.value()));
  }

  Hasher h;
  h.update(enc.data(), enc.size() * sizeof(std::uint32_t));
  sig.digest = h.digest();
  return sig;
}

/// One-pass fingerprint of a single-origin cone: walk, collect the sorted
/// border-wire list, encode. Skips compute_cone entirely (no levelization,
/// no topo-sorted gate list, no FaultCone allocation) — the grouping
/// pre-pass is fingerprint-bound, so this is its hot path.
ConeSignature fingerprint_origin(const netlist::Netlist& n, WireId origin,
                                 FingerprintScratch& scratch,
                                 std::vector<WireId>& borders) {
  const WireId origins[1] = {origin};
  canonical_walk(n, origins, scratch);

  borders.clear();
  scratch.border_seen.reset(n.num_wires());
  for (GateId g : scratch.gate_order) {
    for (WireId in : n.gate(g).inputs) {
      if (!scratch.wire_num.has(in.value()) &&
          scratch.border_seen.try_number(in.value(), 0)) {
        borders.push_back(in);
      }
    }
  }
  std::sort(borders.begin(), borders.end());

  return encode_walk(n, 1, borders, scratch);
}

/// Mutex-guarded free list of fingerprint scratches (the ThreadPool exposes
/// no worker ids); the lock is taken twice per cone, negligible against the
/// encoding walk.
class ScratchPool {
public:
  std::unique_ptr<FingerprintScratch> acquire() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<FingerprintScratch> s = std::move(idle_.back());
        idle_.pop_back();
        return s;
      }
    }
    return std::make_unique<FingerprintScratch>();
  }

  void release(std::unique_ptr<FingerprintScratch> s) {
    const std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(s));
  }

private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<FingerprintScratch>> idle_;
};

} // namespace

ConeSignature fingerprint_cone(const netlist::Netlist& n,
                               const FaultCone& cone) {
  FingerprintScratch scratch;
  canonical_walk(n, cone.origins, scratch);
  RIPPLE_ASSERT(scratch.wire_order.size() == cone.wires.size() &&
                    scratch.gate_order.size() == cone.gates.size(),
                "cone traversal did not reach the whole cone");
  return encode_walk(n, cone.origins.size(), cone.border_wires, scratch);
}

IsoGrouping group_isomorphic_cones(const netlist::Netlist& n,
                                   std::span<const WireId> wires,
                                   ThreadPool& pool) {
  IsoGrouping g;
  g.borders.resize(wires.size());
  std::vector<ConeSignature> sigs(wires.size());
  std::vector<double> seconds(wires.size(), 0.0);

  ScratchPool scratches;
  pool.parallel_for_index(wires.size(), [&](std::size_t i) {
    Stopwatch watch;
    std::unique_ptr<FingerprintScratch> scratch = scratches.acquire();
    sigs[i] = fingerprint_origin(n, wires[i], *scratch, g.borders[i]);
    scratches.release(std::move(scratch));
    seconds[i] = watch.seconds();
  });

  // Group by digest bucket, confirm with full-encoding equality. Classes
  // come out in first-discovery order, members ascending.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_digest;
  by_digest.reserve(wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i) {
    std::vector<std::size_t>& bucket = by_digest[sigs[i].digest];
    std::size_t cls = static_cast<std::size_t>(-1);
    for (std::size_t c : bucket) {
      if (sigs[g.classes[c].members[0]] == sigs[i]) {
        cls = c;
        break;
      }
    }
    if (cls == static_cast<std::size_t>(-1)) {
      cls = g.classes.size();
      g.classes.push_back(IsoClass{{}, sigs[i].cone_gates});
      bucket.push_back(cls);
    }
    g.classes[cls].members.push_back(i);
  }
  for (double s : seconds) g.busy_seconds += s;
  return g;
}

Cube remap_cube(const Cube& cube, std::span<const WireId> from,
                std::span<const WireId> to) {
  RIPPLE_ASSERT(from.size() == to.size(), "border lists differ in size");
  std::vector<Literal> lits;
  lits.reserve(cube.size());
  for (const Literal& l : cube.literals()) {
    lits.push_back(Literal{to[border_rank(from, l.wire)], l.value});
  }
  return Cube{std::move(lits)};
}

} // namespace ripple::mate
