#include "mate/eval.hpp"

#include <cmath>
#include <unordered_map>

#include "util/stats.hpp"

namespace ripple::mate {

EvalResult evaluate_mates(const MateSet& set, const sim::Trace& trace,
                          bool keep_trigger_lists) {
  EvalResult result;
  result.num_cycles = trace.num_cycles();
  result.num_faulty_wires = set.faulty_wires.size();
  result.per_mate.resize(set.mates.size());

  // Faulty wire -> dense index for the per-cycle union bitset.
  std::unordered_map<WireId, std::size_t> fault_index;
  fault_index.reserve(set.faulty_wires.size());
  for (std::size_t i = 0; i < set.faulty_wires.size(); ++i) {
    fault_index.emplace(set.faulty_wires[i], i);
  }

  // Pre-resolve each MATE's masked wires to dense indices.
  std::vector<std::vector<std::uint32_t>> masked_idx(set.mates.size());
  for (std::size_t m = 0; m < set.mates.size(); ++m) {
    for (WireId w : set.mates[m].masked_wires) {
      const auto it = fault_index.find(w);
      RIPPLE_ASSERT(it != fault_index.end(),
                    "MATE masks a wire outside the faulty set");
      masked_idx[m].push_back(static_cast<std::uint32_t>(it->second));
    }
  }

  if (keep_trigger_lists) {
    result.triggered_by_cycle.resize(trace.num_cycles());
  }

  BitVec masked(set.faulty_wires.size());
  for (std::size_t cycle = 0; cycle < trace.num_cycles(); ++cycle) {
    const BitVec& values = trace.cycle_values(cycle);
    masked.clear_all();
    for (std::size_t m = 0; m < set.mates.size(); ++m) {
      if (!set.mates[m].cube.eval(values)) continue;
      MateTraceStats& stats = result.per_mate[m];
      ++stats.triggers;
      stats.masked_total += masked_idx[m].size();
      for (std::uint32_t idx : masked_idx[m]) masked.set(idx, true);
      if (keep_trigger_lists) {
        result.triggered_by_cycle[cycle].push_back(
            static_cast<std::uint32_t>(m));
      }
    }
    result.masked_faults += masked.popcount();
  }

  std::vector<double> input_counts;
  for (std::size_t m = 0; m < set.mates.size(); ++m) {
    if (result.per_mate[m].triggers > 0) {
      ++result.effective_mates;
      input_counts.push_back(
          static_cast<double>(set.mates[m].num_inputs()));
    }
  }
  result.avg_inputs = mean(input_counts);
  result.sd_inputs = stddev(input_counts);
  return result;
}

} // namespace ripple::mate
