#include "mate/eval.hpp"

#include "mate/stream.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace ripple::mate {
namespace {

/// Faulty wire -> dense index for the per-cycle union bitset.
std::unordered_map<WireId, std::size_t> build_fault_index(const MateSet& set) {
  std::unordered_map<WireId, std::size_t> fault_index;
  fault_index.reserve(set.faulty_wires.size());
  for (std::size_t i = 0; i < set.faulty_wires.size(); ++i) {
    fault_index.emplace(set.faulty_wires[i], i);
  }
  return fault_index;
}

} // namespace

namespace detail {

void finalize_eval(const MateSet& set, EvalResult& result) {
  std::vector<double> input_counts;
  for (std::size_t m = 0; m < set.mates.size(); ++m) {
    if (result.per_mate[m].triggers > 0) {
      ++result.effective_mates;
      input_counts.push_back(
          static_cast<double>(set.mates[m].num_inputs()));
    }
  }
  result.avg_inputs = mean(input_counts);
  result.sd_inputs = stddev(input_counts);
}

} // namespace detail

using detail::finalize_eval;

const char* eval_engine_name(EvalEngine engine) {
  switch (engine) {
    case EvalEngine::Scalar: return "scalar";
    case EvalEngine::BitParallel: return "bitpar";
    case EvalEngine::Streaming: return "stream";
  }
  return "?";
}

EvalResult evaluate_mates_scalar(const MateSet& set, const sim::Trace& trace,
                                 bool keep_trigger_lists) {
  EvalResult result;
  result.num_cycles = trace.num_cycles();
  result.num_faulty_wires = set.faulty_wires.size();
  result.per_mate.resize(set.mates.size());

  const std::unordered_map<WireId, std::size_t> fault_index =
      build_fault_index(set);

  // Pre-resolve each MATE's masked wires to dense indices.
  std::vector<std::vector<std::uint32_t>> masked_idx(set.mates.size());
  for (std::size_t m = 0; m < set.mates.size(); ++m) {
    for (WireId w : set.mates[m].masked_wires) {
      const auto it = fault_index.find(w);
      RIPPLE_ASSERT(it != fault_index.end(),
                    "MATE masks a wire outside the faulty set");
      masked_idx[m].push_back(static_cast<std::uint32_t>(it->second));
    }
  }

  if (keep_trigger_lists) {
    result.triggered_by_cycle.resize(trace.num_cycles());
  }

  BitVec masked(set.faulty_wires.size());
  for (std::size_t cycle = 0; cycle < trace.num_cycles(); ++cycle) {
    const BitVec& values = trace.cycle_values(cycle);
    masked.clear_all();
    for (std::size_t m = 0; m < set.mates.size(); ++m) {
      if (!set.mates[m].cube.eval(values)) continue;
      MateTraceStats& stats = result.per_mate[m];
      ++stats.triggers;
      stats.masked_total += masked_idx[m].size();
      for (std::uint32_t idx : masked_idx[m]) masked.set(idx, true);
      if (keep_trigger_lists) {
        result.triggered_by_cycle[cycle].push_back(
            static_cast<std::uint32_t>(m));
      }
    }
    result.masked_faults += masked.popcount();
  }

  finalize_eval(set, result);
  return result;
}

EvalResult evaluate_mates_bitpar(const MateSet& set,
                                 const sim::TransposedTrace& trace,
                                 bool keep_trigger_lists,
                                 std::size_t threads) {
  EvalResult result;
  result.num_cycles = trace.num_cycles();
  result.num_faulty_wires = set.faulty_wires.size();
  result.per_mate.resize(set.mates.size());
  if (keep_trigger_lists) {
    result.triggered_by_cycle.resize(trace.num_cycles());
  }

  const std::unordered_map<WireId, std::size_t> fault_index =
      build_fault_index(set);

  // Per MATE: the literal streams (wire stream pointer + invert mask so a
  // 0-literal becomes XOR ~0) and the masked-fault bitset over the dense
  // faulty-wire indices.
  struct MatePlan {
    std::vector<std::pair<const std::uint64_t*, std::uint64_t>> literals;
    BitVec mask;
  };
  std::vector<MatePlan> plans(set.mates.size());
  for (std::size_t m = 0; m < set.mates.size(); ++m) {
    MatePlan& plan = plans[m];
    plan.mask = BitVec(set.faulty_wires.size());
    for (WireId w : set.mates[m].masked_wires) {
      const auto it = fault_index.find(w);
      RIPPLE_ASSERT(it != fault_index.end(),
                    "MATE masks a wire outside the faulty set");
      plan.mask.set(it->second, true);
    }
    plan.literals.reserve(set.mates[m].cube.size());
    for (const Literal& l : set.mates[m].cube.literals()) {
      plan.literals.emplace_back(
          trace.wire_stream(l.wire.index()).data(),
          l.value ? 0 : ~std::uint64_t{0});
    }
  }

  const std::size_t blocks = trace.num_blocks();

  // One chunk of contiguous 64-cycle blocks per worker; partial trigger
  // counts merge in chunk order, so the result is independent of scheduling.
  struct Partial {
    std::vector<std::size_t> triggers;
    std::size_t masked_faults = 0;
  };

  const auto run_blocks = [&](std::size_t begin, std::size_t end,
                              Partial& out) {
    out.triggers.assign(set.mates.size(), 0);
    std::array<BitVec, 64> acc; // per-cycle masked union, reused per block
    for (std::size_t b = begin; b < end; ++b) {
      const std::size_t base_cycle = b * 64;
      const std::uint64_t valid = trace.block_mask(b);
      std::uint64_t used = 0; // cycles of this block with >= 1 trigger
      for (std::size_t m = 0; m < plans.size(); ++m) {
        const MatePlan& plan = plans[m];
        std::uint64_t trig = valid;
        for (const auto& [stream, invert] : plan.literals) {
          trig &= stream[b] ^ invert;
          if (trig == 0) break;
        }
        if (trig == 0) continue;
        out.triggers[m] +=
            static_cast<std::size_t>(__builtin_popcountll(trig));
        for (std::uint64_t w = trig; w != 0; w &= w - 1) {
          const unsigned c =
              static_cast<unsigned>(__builtin_ctzll(w));
          if ((used >> c) & 1u) {
            acc[c] |= plan.mask;
          } else {
            acc[c] = plan.mask; // copy-assign reuses capacity
            used |= std::uint64_t{1} << c;
          }
          if (keep_trigger_lists) {
            // MATE loop is outermost, so each per-cycle list stays sorted
            // ascending by MATE index, exactly like the scalar engine's.
            result.triggered_by_cycle[base_cycle + c].push_back(
                static_cast<std::uint32_t>(m));
          }
        }
      }
      for (std::uint64_t w = used; w != 0; w &= w - 1) {
        const unsigned c = static_cast<unsigned>(__builtin_ctzll(w));
        out.masked_faults += acc[c].popcount();
      }
    }
  };

  // Worker count: enough blocks per worker to amortize scheduling; a short
  // trace runs inline without spinning up the pool.
  constexpr std::size_t kMinBlocksPerWorker = 8;
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  const std::size_t workers =
      std::min({threads == 0 ? hw : threads,
                (blocks + kMinBlocksPerWorker - 1) / kMinBlocksPerWorker,
                blocks});

  std::vector<Partial> partials(std::max<std::size_t>(workers, 1));
  if (workers <= 1) {
    run_blocks(0, blocks, partials[0]);
  } else {
    ThreadPool pool(workers);
    pool.parallel_for_index(
        workers,
        [&](std::size_t chunk) {
          const std::size_t begin = chunk * blocks / workers;
          const std::size_t end = (chunk + 1) * blocks / workers;
          run_blocks(begin, end, partials[chunk]);
        },
        /*grain=*/1);
  }

  for (const Partial& p : partials) {
    if (p.triggers.empty()) continue; // untouched chunk (blocks == 0)
    result.masked_faults += p.masked_faults;
    for (std::size_t m = 0; m < set.mates.size(); ++m) {
      result.per_mate[m].triggers += p.triggers[m];
    }
  }
  for (std::size_t m = 0; m < set.mates.size(); ++m) {
    result.per_mate[m].masked_total =
        result.per_mate[m].triggers * set.mates[m].masked_wires.size();
  }

  finalize_eval(set, result);
  return result;
}

EvalResult evaluate_mates(const MateSet& set, const sim::Trace& trace,
                          bool keep_trigger_lists, EvalEngine engine,
                          std::size_t threads) {
  if (engine == EvalEngine::Scalar) {
    return evaluate_mates_scalar(set, trace, keep_trigger_lists);
  }
  const sim::TransposedTrace tt(trace);
  if (engine == EvalEngine::Streaming && !keep_trigger_lists) {
    // Chunked replay of the in-memory trace through the accumulator; the
    // streaming engine never materializes whole-trace trigger lists, so
    // keep_trigger_lists falls through to the whole-trace engine below.
    sim::TransposedTraceSource source(tt);
    return evaluate_mates_stream(set, source, threads, /*overlap=*/false);
  }
  return evaluate_mates_bitpar(set, tt, keep_trigger_lists, threads);
}

} // namespace ripple::mate
