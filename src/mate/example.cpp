#include "mate/example.hpp"

namespace ripple::mate {

Figure1Circuit build_figure1_circuit() {
  using cell::Kind;
  Figure1Circuit fig;
  netlist::Netlist& n = fig.netlist;
  n.set_name("figure1");

  fig.a = n.add_input("a");
  fig.b = n.add_input("b");
  fig.c = n.add_input("c");
  fig.d = n.add_input("d");
  fig.e = n.add_input("e");

  fig.f = n.add_gate_new(Kind::Nand2, {fig.a, fig.b}, "f"); // gate A
  fig.g = n.add_gate_new(Kind::Xor2, {fig.c, fig.d}, "g");  // gate B
  fig.h = n.add_gate_new(Kind::Inv, {fig.e}, "h");          // gate F
  fig.k = n.add_gate_new(Kind::And2, {fig.g, fig.f}, "k");  // gate D
  fig.l = n.add_gate_new(Kind::Or2, {fig.g, fig.h}, "l");   // gate E
  fig.m = n.add_gate_new(Kind::Xnor2, {fig.e, fig.c}, "m"); // gate C

  n.mark_output(fig.k);
  n.mark_output(fig.l);
  n.mark_output(fig.m);
  n.check();
  return fig;
}

} // namespace ripple::mate
