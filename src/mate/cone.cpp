#include "mate/cone.hpp"

#include <algorithm>

#include "sim/levelize.hpp"

namespace ripple::mate {

bool FaultCone::contains_wire(WireId w) const {
  return std::binary_search(wires.begin(), wires.end(), w);
}

bool FaultCone::contains_gate(GateId g) const {
  return std::find(gates.begin(), gates.end(), g) != gates.end();
}

FaultCone compute_cone(const netlist::Netlist& n,
                       std::span<const WireId> origins,
                       const std::vector<std::uint32_t>& topo_positions) {
  RIPPLE_CHECK(!origins.empty(), "a fault cone needs at least one origin");
  FaultCone cone;
  cone.origins.assign(origins.begin(), origins.end());

  std::vector<std::uint8_t> wire_in(n.num_wires(), 0);
  std::vector<std::uint8_t> gate_in(n.num_gates(), 0);

  std::vector<WireId> frontier;
  for (WireId origin : origins) {
    if (wire_in[origin.index()]) continue;
    wire_in[origin.index()] = 1;
    cone.wires.push_back(origin);
    frontier.push_back(origin);
  }

  while (!frontier.empty()) {
    const WireId w = frontier.back();
    frontier.pop_back();
    for (GateId g : n.wire(w).gate_fanout) {
      if (gate_in[g.index()]) continue;
      gate_in[g.index()] = 1;
      cone.gates.push_back(g);
      const WireId y = n.gate(g).output;
      if (!wire_in[y.index()]) {
        wire_in[y.index()] = 1;
        cone.wires.push_back(y);
        frontier.push_back(y);
      }
    }
  }

  std::sort(cone.wires.begin(), cone.wires.end());
  std::sort(cone.gates.begin(), cone.gates.end(), [&](GateId a, GateId b) {
    return topo_positions[a.index()] < topo_positions[b.index()];
  });

  for (GateId g : cone.gates) {
    for (WireId in : n.gate(g).inputs) {
      if (!wire_in[in.index()]) cone.border_wires.push_back(in);
    }
  }
  std::sort(cone.border_wires.begin(), cone.border_wires.end());
  cone.border_wires.erase(
      std::unique(cone.border_wires.begin(), cone.border_wires.end()),
      cone.border_wires.end());

  for (WireId w : cone.wires) {
    const netlist::Wire& wire = n.wire(w);
    if (wire.is_primary_output || !wire.flop_fanout.empty()) {
      cone.observers.push_back(w);
    }
  }
  return cone;
}

FaultCone compute_cone(const netlist::Netlist& n, WireId origin,
                       const std::vector<std::uint32_t>& topo_positions) {
  const WireId origins[1] = {origin};
  return compute_cone(n, std::span<const WireId>(origins, 1), topo_positions);
}

std::vector<std::uint32_t> topo_positions(const netlist::Netlist& n) {
  const sim::Levelization level = sim::levelize(n);
  std::vector<std::uint32_t> pos(n.num_gates());
  for (std::size_t i = 0; i < level.order.size(); ++i) {
    pos[level.order[i].index()] = static_cast<std::uint32_t>(i);
  }
  return pos;
}

FaultCone compute_cone(const netlist::Netlist& n,
                       std::span<const WireId> origins) {
  return compute_cone(n, origins, topo_positions(n));
}

FaultCone compute_cone(const netlist::Netlist& n, WireId origin) {
  const WireId origins[1] = {origin};
  return compute_cone(n, std::span<const WireId>(origins, 1));
}

} // namespace ripple::mate
