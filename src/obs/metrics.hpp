// Unified metrics for the observability layer (DESIGN.md §15).
//
// Three primitives, all safe to update from any thread:
//   * CounterSet      -- an ordered name -> value list; the common currency
//                        of StageStats counters, the --report=json envelope
//                        and the serve-protocol StageEnd frames (replaces
//                        the ad-hoc vector<pair<string,double>> plumbing).
//                        NOT thread-safe itself; it is plain data owned by
//                        whoever builds the record.
//   * Histogram       -- fixed-bucket latency/ratio histogram with lock-free
//                        recording and p50/p90/p99 snapshots.
//   * MetricRegistry  -- named counters/gauges/histograms with get-or-create
//                        registration; the process-global() instance collects
//                        cross-layer metrics (shard latency, lane
//                        utilization, chunk queue depth, cache hit ratio)
//                        that JsonReportObserver folds into report v2.
//
// The registry never invalidates references: metric objects live as long as
// the registry, so hot paths resolve a Histogram& once and record through it
// with two relaxed atomic adds.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ripple::obs {

/// Ordered (name, value) counter list. Preserves insertion order (reports
/// print counters in the order stages emitted them); set()/add() upsert by
/// name. Lookup is linear — counter sets are small by construction.
class CounterSet {
public:
  using Entry = std::pair<std::string, double>;
  using iterator = std::vector<Entry>::iterator;
  using const_iterator = std::vector<Entry>::const_iterator;

  CounterSet() = default;
  CounterSet(std::initializer_list<Entry> entries) : entries_(entries) {}

  /// Upsert: overwrite an existing name in place (keeping its position) or
  /// append a new entry.
  void set(std::string_view name, double value);
  /// Upsert-accumulate: add `delta` to an existing name or append it.
  void add(std::string_view name, double delta);

  /// Pointer to the value for `name`, nullptr when absent.
  [[nodiscard]] const double* find(std::string_view name) const;
  [[nodiscard]] double value_or(std::string_view name,
                                double fallback = 0.0) const;

  /// Append without the upsert scan (callers that know the name is new).
  void emplace_back(std::string name, double value) {
    entries_.emplace_back(std::move(name), value);
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void reserve(std::size_t n) { entries_.reserve(n); }
  void clear() { entries_.clear(); }

  [[nodiscard]] Entry& operator[](std::size_t i) { return entries_[i]; }
  [[nodiscard]] const Entry& operator[](std::size_t i) const {
    return entries_[i];
  }

  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  friend bool operator==(const CounterSet&, const CounterSet&) = default;

private:
  std::vector<Entry> entries_;
};

/// Monotonic counter; add() is a relaxed atomic read-modify-write.
class Counter {
public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void add(double delta = 1.0);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
  const std::string name_;
  std::atomic<double> value_{0.0};
};

/// Last-write-wins gauge (e.g. cache_hit_ratio).
class Gauge {
public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
  const std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over non-negative values. `bounds` are ascending
/// bucket upper limits; values above the last bound land in an implicit
/// overflow bucket. record() is two relaxed atomic adds — safe from any
/// thread, no locking on the hot path.
class Histogram {
public:
  Histogram(std::string name, std::span<const double> bounds);

  void record(double value);

  struct Snapshot {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> bounds;          // ascending upper limits
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)

    /// Quantile estimate by linear interpolation inside the hit bucket;
    /// the overflow bucket clamps to the last finite bound, so
    /// quantile(p) is monotone in p by construction. 0 when empty.
    [[nodiscard]] double quantile(double p) const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  void reset();

private:
  const std::string name_;
  const std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named-metric registry: get-or-create by name under a mutex (hot paths
/// resolve once, then update lock-free through the returned reference —
/// references stay valid for the registry's lifetime; reset() zeroes values
/// without invalidating them).
class MetricRegistry {
public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// `bounds` apply only when the histogram is first created; a later call
  /// with the same name returns the existing instance unchanged.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> bounds);

  /// All counters then all gauges, each group in registration order.
  [[nodiscard]] CounterSet counters() const;
  /// Snapshots of every histogram, sorted by name (deterministic reports).
  [[nodiscard]] std::vector<Histogram::Snapshot> histograms() const;

  /// Zero every metric's value. Registered objects survive (references
  /// held by hot paths stay valid); intended for tests and between-run
  /// isolation, not for concurrent use with recording.
  void reset();

  /// The process-wide registry deep layers (campaign shards, stream sinks,
  /// cache accounting) record into.
  [[nodiscard]] static MetricRegistry& global();

private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

} // namespace ripple::obs
