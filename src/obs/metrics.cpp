#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>

namespace ripple::obs {
namespace {

/// fetch_add for atomic<double> via CAS (atomic<double>::fetch_add is
/// C++20-library-optional; this compiles everywhere and the loop is
/// contention-free in practice — one writer per metric per event).
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

} // namespace

void CounterSet::set(std::string_view name, double value) {
  for (Entry& e : entries_) {
    if (e.first == name) {
      e.second = value;
      return;
    }
  }
  entries_.emplace_back(std::string(name), value);
}

void CounterSet::add(std::string_view name, double delta) {
  for (Entry& e : entries_) {
    if (e.first == name) {
      e.second += delta;
      return;
    }
  }
  entries_.emplace_back(std::string(name), delta);
}

const double* CounterSet::find(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.first == name) return &e.second;
  }
  return nullptr;
}

double CounterSet::value_or(std::string_view name, double fallback) const {
  const double* value = find(name);
  return value != nullptr ? *value : fallback;
}

void Counter::add(double delta) { atomic_add(value_, delta); }

Histogram::Histogram(std::string name, std::span<const double> bounds)
    : name_(std::move(name)),
      bounds_(bounds.begin(), bounds.end()),
      buckets_(new std::atomic<std::uint64_t>[bounds.size() + 1]) {
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i) {
    // Misordered bounds would silently skew quantiles; fail loudly instead.
    if (bounds_[i] >= bounds_[i + 1]) {
      std::abort();
    }
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::record(double value) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.name = name_;
  s.bounds = bounds_;
  s.buckets.resize(bounds_.size() + 1);
  // Buckets are read individually relaxed; a snapshot taken concurrently
  // with recording is approximate (sound for reporting, never torn).
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double p) const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (cumulative + in_bucket < target && i + 1 < buckets.size()) {
      cumulative += in_bucket;
      continue;
    }
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    // The overflow bucket has no finite width: clamp to the last bound so
    // quantiles stay monotone and never invent values beyond the range the
    // histogram can resolve.
    const double upper = i < bounds.size() ? bounds[i] : lower;
    const double fraction =
        in_bucket > 0.0
            ? std::clamp((target - cumulative) / in_bucket, 0.0, 1.0)
            : 1.0;
    return lower + (upper - lower) * fraction;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  for (const auto& c : counters_) {
    if (c->name() == name) return *c;
  }
  counters_.push_back(std::make_unique<Counter>(std::string(name)));
  return *counters_.back();
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  for (const auto& g : gauges_) {
    if (g->name() == name) return *g;
  }
  gauges_.push_back(std::make_unique<Gauge>(std::string(name)));
  return *gauges_.back();
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::span<const double> bounds) {
  std::lock_guard lock(mutex_);
  for (const auto& h : histograms_) {
    if (h->name() == name) return *h;
  }
  histograms_.push_back(
      std::make_unique<Histogram>(std::string(name), bounds));
  return *histograms_.back();
}

CounterSet MetricRegistry::counters() const {
  std::lock_guard lock(mutex_);
  CounterSet set;
  set.reserve(counters_.size() + gauges_.size());
  for (const auto& c : counters_) set.emplace_back(c->name(), c->value());
  for (const auto& g : gauges_) set.emplace_back(g->name(), g->value());
  return set;
}

std::vector<Histogram::Snapshot> MetricRegistry::histograms() const {
  std::vector<Histogram::Snapshot> snapshots;
  {
    std::lock_guard lock(mutex_);
    snapshots.reserve(histograms_.size());
    for (const auto& h : histograms_) snapshots.push_back(h->snapshot());
  }
  std::sort(snapshots.begin(), snapshots.end(),
            [](const Histogram::Snapshot& a, const Histogram::Snapshot& b) {
              return a.name < b.name;
            });
  return snapshots;
}

void MetricRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& c : counters_) c->reset();
  for (const auto& g : gauges_) g->reset();
  for (const auto& h : histograms_) h->reset();
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

} // namespace ripple::obs
