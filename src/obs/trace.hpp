// Low-overhead span tracing (DESIGN.md §15).
//
// A TraceRecorder collects timed spans into per-thread ring buffers; RAII
// Span scopes emit them from every layer (pipeline stages, ThreadPool
// batches, campaign shards and DUT passes, streaming trace chunks, daemon
// scheduler slices). The recorder is installed process-globally; when none
// is installed, constructing a Span costs one relaxed atomic load and a
// branch — observability off is (near) free, and recording never feeds back
// into results (spans only read the clock).
//
// Export is the Chrome trace-event JSON format ("X" complete events), which
// chrome://tracing and ui.perfetto.dev open directly.
//
// Threading contract: record() takes only the calling thread's buffer
// mutex, so concurrent recording from any number of threads is race-free
// (TSan-provable — obs_smoke runs under -DRIPPLE_SANITIZE). The recorder
// must outlive every thread that may still be inside a Span: uninstall via
// install(nullptr) and join workers before destroying it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace ripple::obs {

class TraceRecorder {
public:
  struct Event {
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    const char* cat = "";   // layer: "pipeline", "hafi", "stream", ...
    const char* name = "";  // static span name: "stage:campaign", "shard"
    std::string detail;     // dynamic label ("shard 3"), may be empty
    std::uint32_t tid = 0;  // recorder-local sequential thread id
  };

  /// `events_per_thread` bounds each thread's ring; the oldest events are
  /// overwritten on overflow (dropped() reports how many).
  explicit TraceRecorder(std::size_t events_per_thread = std::size_t{1} << 16);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The installed recorder, or nullptr when tracing is off. Inline so a
  /// disabled Span compiles down to this load plus a branch.
  [[nodiscard]] static TraceRecorder* current() {
    return current_.load(std::memory_order_acquire);
  }
  /// Install `recorder` process-wide (nullptr turns tracing off). Not a
  /// synchronization point: install before spawning traced work, uninstall
  /// after joining it.
  static void install(TraceRecorder* recorder);

  /// Nanoseconds since this recorder was constructed (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Append one complete span to the calling thread's ring buffer.
  void record(const char* cat, const char* name, std::string detail,
              std::uint64_t start_ns, std::uint64_t end_ns);

  /// All recorded events, merged across threads and sorted by
  /// (start_ns, tid). Intended for export and tests, not hot paths.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Events lost to ring overflow across all threads.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds).
  void write_chrome_json(std::ostream& os) const;

private:
  struct ThreadBuffer;

  [[nodiscard]] ThreadBuffer& local_buffer();

  inline static std::atomic<TraceRecorder*> current_{nullptr};
  inline static std::atomic<std::uint64_t> next_recorder_id_{1};

  const std::uint64_t id_;
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_; // guards buffers_ registration and snapshot
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 1;
};

/// RAII span: times the enclosing scope and records it on destruction.
/// With no recorder installed the constructor is a load + branch and the
/// destructor a branch — guard any extra labeling work with active():
///
///   obs::Span span("hafi", "shard");
///   if (span.active()) span.set_detail(strprintf("shard %zu", s));
class Span {
public:
  Span(const char* cat, const char* name)
      : recorder_(TraceRecorder::current()) {
    if (recorder_ == nullptr) return;
    cat_ = cat;
    name_ = name;
    start_ns_ = recorder_->now_ns();
  }
  Span(const char* cat, const char* name, std::string detail)
      : Span(cat, name) {
    if (recorder_ != nullptr) detail_ = std::move(detail);
  }

  ~Span() {
    // Re-check the installation so a span that straddles an uninstall is
    // dropped instead of writing into a recorder being torn down.
    if (recorder_ != nullptr && TraceRecorder::current() == recorder_) {
      recorder_->record(cat_, name_, std::move(detail_), start_ns_,
                        recorder_->now_ns());
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] bool active() const { return recorder_ != nullptr; }
  void set_detail(std::string detail) {
    if (recorder_ != nullptr) detail_ = std::move(detail);
  }

private:
  TraceRecorder* recorder_;
  const char* cat_ = "";
  const char* name_ = "";
  std::string detail_;
  std::uint64_t start_ns_ = 0;
};

} // namespace ripple::obs
