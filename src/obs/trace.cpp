#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace ripple::obs {
namespace {

/// Minimal JSON string escaper (quotes, backslashes, control characters).
/// Local on purpose: obs sits below every other library and must not link
/// against mate/util helpers.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with sub-ns-derived precision for the ts/dur fields.
std::string microseconds(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

/// Per-thread cache of the buffer registered with a specific recorder.
/// Keyed by the recorder's unique id (never reused), so a stale cache from
/// a destroyed recorder can never be revived by address reuse.
struct TlsCache {
  std::uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local TlsCache t_cache;

} // namespace

struct TraceRecorder::ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> ring;
  std::size_t capacity = 0;
  std::size_t next = 0;          // overwrite cursor once the ring is full
  std::uint64_t written = 0;     // total events offered (>= ring.size())
  std::uint32_t tid = 0;
};

TraceRecorder::TraceRecorder(std::size_t events_per_thread)
    : id_(next_recorder_id_.fetch_add(1, std::memory_order_relaxed)),
      capacity_(std::max<std::size_t>(1, events_per_thread)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() {
  // Leaving a destroyed recorder installed would hand out dangling pointers.
  TraceRecorder* self = this;
  current_.compare_exchange_strong(self, nullptr);
}

void TraceRecorder::install(TraceRecorder* recorder) {
  current_.store(recorder, std::memory_order_release);
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  if (t_cache.recorder_id == id_) {
    return *static_cast<ThreadBuffer*>(t_cache.buffer);
  }
  std::lock_guard lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer& buffer = *buffers_.back();
  buffer.capacity = capacity_;
  buffer.tid = next_tid_++;
  t_cache = {id_, &buffer};
  return buffer;
}

void TraceRecorder::record(const char* cat, const char* name,
                           std::string detail, std::uint64_t start_ns,
                           std::uint64_t end_ns) {
  ThreadBuffer& buffer = local_buffer();
  Event event;
  event.start_ns = start_ns;
  event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  event.cat = cat;
  event.name = name;
  event.detail = std::move(detail);
  event.tid = buffer.tid;
  // The buffer belongs to this thread; the mutex only synchronizes with
  // snapshot() readers, so recording is contention-free.
  std::lock_guard lock(buffer.mutex);
  if (buffer.ring.size() < buffer.capacity) {
    buffer.ring.push_back(std::move(event));
  } else {
    buffer.ring[buffer.next] = std::move(event);
    buffer.next = (buffer.next + 1) % buffer.capacity;
  }
  ++buffer.written;
}

std::vector<TraceRecorder::Event> TraceRecorder::snapshot() const {
  std::vector<Event> events;
  {
    std::lock_guard lock(mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->ring.begin(), buffer->ring.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.dur_ns > b.dur_ns; // enclosing span first
            });
  return events;
}

std::uint64_t TraceRecorder::dropped() const {
  std::uint64_t dropped = 0;
  std::lock_guard lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard buffer_lock(buffer->mutex);
    if (buffer->written > buffer->ring.size()) {
      dropped += buffer->written - buffer->ring.size();
    }
  }
  return dropped;
}

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  const std::vector<Event> events = snapshot();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const Event& e : events) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << microseconds(e.start_ns)
       << ", \"dur\": " << microseconds(e.dur_ns) << ", \"cat\": \""
       << json_escape(e.cat) << "\", \"name\": \"" << json_escape(e.name)
       << "\"";
    if (!e.detail.empty()) {
      os << ", \"args\": {\"detail\": \"" << json_escape(e.detail) << "\"}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

} // namespace ripple::obs
