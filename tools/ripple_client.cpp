// ripple-client — submit one campaign request to a rippled daemon and
// stream its progress.
//
// The request is pure data (core/workload names, campaign config, MATE
// derivation); the daemon resolves it through its CoreRegistry and streams
// back the same stage events a local run would produce, so --report=json
// works here exactly like in the benches. With --result-out=FILE the
// terminal result's canonical bytes are written out verbatim — two clients
// of one deduped execution (or a client and a standalone run) can be
// compared byte for byte.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "pipeline/artifact.hpp"
#include "pipeline/observer.hpp"
#include "pipeline/options.hpp"
#include "serve/client.hpp"
#include "util/options.hpp"

namespace {

ripple::hafi::CampaignMode parse_mode(const std::string& mode) {
  if (mode.empty() || mode == "baseline")
    return ripple::hafi::CampaignMode::Baseline;
  if (mode == "pruned") return ripple::hafi::CampaignMode::Pruned;
  if (mode == "validate") return ripple::hafi::CampaignMode::Validate;
  throw ripple::Error("unknown --mode '" + mode +
                      "' (expected baseline, pruned or validate)");
}

} // namespace

int main(int argc, char** argv) {
  using namespace ripple;

  std::string socket_path;
  std::string core = "avr";
  std::string workload;
  std::string mode;
  std::string result_out;
  std::string report;
  std::size_t top_n = 0;
  std::size_t depth = 0;
  std::size_t select_cycles = 0;
  pipeline::CampaignOptions campaign_opts;

  OptionParser parser(
      "ripple-client",
      "Submit a campaign request to a rippled daemon and stream its "
      "progress. Identical concurrent requests share one execution.");
  parser.add_value("socket", "rippled Unix-domain socket path", &socket_path);
  parser.add_value("core", "core name registered in the daemon (avr, msp430)",
                   &core);
  parser.add_value("workload", "workload name (default: the core's default)",
                   &workload);
  parser.add_value("mode", "campaign mode: baseline (default), pruned or "
                   "validate", &mode);
  parser.add_value("top-n", "keep only the top-N MATEs of the greedy "
                   "selection (0 = full set)", &top_n);
  parser.add_value("depth", "MATE search depth override (0 = default)",
                   &depth);
  parser.add_value("select-cycles", "selection trace length (0 = "
                   "--run-cycles)", &select_cycles);
  parser.add_value("result-out", "write the result's canonical bytes to FILE",
                   &result_out);
  parser.add_value("report", "json or json:FILE — emit the shared report "
                   "envelope", &report);
  pipeline::register_campaign_options(parser, campaign_opts);
  switch (parser.parse(argc, argv)) {
    case OptionParser::Result::Ok: break;
    case OptionParser::Result::Help: return 0;
    case OptionParser::Result::Error: return 2;
  }
  if (socket_path.empty()) {
    std::fprintf(stderr,
                 "ripple-client: --socket=PATH is required\nsee --help\n");
    return 2;
  }

  int exit_code = 0;
  try {
    pipeline::CampaignRequest request;
    request.core = core;
    request.workload = workload;
    hafi::CampaignConfig config;
    config.mode = parse_mode(mode);
    if (config.mode == hafi::CampaignMode::Pruned &&
        campaign_opts.validate_pruned) {
      config.mode = hafi::CampaignMode::Validate;
    }
    request.config = campaign_opts.apply(config);
    request.top_n = static_cast<std::uint32_t>(top_n);
    request.search_depth = static_cast<std::uint32_t>(depth);
    request.select_cycles = select_cycles;
    request.resume = campaign_opts.resume; // daemon forces this on anyway

    serve::ServeClient client = serve::ServeClient::connect(socket_path);
    const auto accepted = client.submit(request);
    std::fprintf(stderr, "[ripple-client] accepted, checksum %016llx%s\n",
                 static_cast<unsigned long long>(accepted.checksum),
                 accepted.attached ? " (attached to an in-flight execution)"
                                   : "");

    pipeline::ProgressObserver progress;
    pipeline::JsonReportObserver report_observer;
    bool done = false;
    while (!done) {
      auto message = client.next();
      if (!message.has_value()) {
        std::fprintf(stderr,
                     "ripple-client: daemon vanished before the result\n");
        return 1;
      }
      switch (message->type) {
        case serve::MsgType::kLog: progress.progress(message->text); break;
        case serve::MsgType::kStageBegin:
          progress.stage_begin(message->stage, message->detail);
          break;
        case serve::MsgType::kStageEnd:
          progress.stage_end(message->stats);
          report_observer.stage_end(message->stats);
          break;
        case serve::MsgType::kResult: {
          ByteReader r(message->result_bytes);
          const hafi::CampaignResult result =
              pipeline::read_campaign_result(r);
          r.expect_done();
          std::printf(
              "total %zu  pruned %zu  executed %zu  benign %zu  latent %zu  "
              "sdc %zu\n",
              result.total, result.pruned, result.executed, result.benign,
              result.latent, result.sdc);
          if (!result_out.empty()) {
            std::ofstream out(result_out, std::ios::binary);
            RIPPLE_CHECK(static_cast<bool>(out),
                         "cannot write result file ", result_out);
            out.write(
                reinterpret_cast<const char*>(message->result_bytes.data()),
                static_cast<std::streamsize>(message->result_bytes.size()));
          }
          done = true;
          break;
        }
        case serve::MsgType::kError:
          std::fprintf(stderr, "ripple-client: daemon error: %s\n",
                       message->text.c_str());
          exit_code = 1;
          done = true;
          break;
        default: break;
      }
    }

    if (report == "json" || report.rfind("json:", 0) == 0) {
      const std::string file =
          report.size() > 5 ? report.substr(5) : std::string();
      if (file.empty()) {
        report_observer.write(std::cerr, "ripple-client");
      } else {
        std::ofstream out(file);
        RIPPLE_CHECK(static_cast<bool>(out), "cannot write report file ",
                     file);
        report_observer.write(out, "ripple-client");
      }
    } else if (!report.empty()) {
      std::fprintf(stderr, "ripple-client: unknown --report '%s'\n",
                   report.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ripple-client: %s\n", e.what());
    return 1;
  }
  return exit_code;
}
