// ripple-client — submit one campaign request to a rippled daemon and
// stream its progress.
//
// The request is pure data (core/workload names, campaign config, MATE
// derivation); the daemon resolves it through its CoreRegistry and streams
// back the same stage events a local run would produce, so --report=json
// works here exactly like in the benches. With --result-out=FILE the
// terminal result's canonical bytes are written out verbatim — two clients
// of one deduped execution (or a client and a standalone run) can be
// compared byte for byte. --stats skips submission entirely and prints a
// live snapshot of the daemon (per-campaign progress, scheduler load, cache
// totals) without disturbing running executions.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "obs/trace.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/observer.hpp"
#include "pipeline/options.hpp"
#include "serve/client.hpp"
#include "util/options.hpp"
#include "util/strings.hpp"

namespace {

/// Map a daemon stage name onto a static string for the synthetic client
/// spans (--trace-out): span names must outlive the recorder, and the stage
/// vocabulary is closed.
const char* stage_span_name(const std::string& stage) {
  if (stage == "setup") return "stage:setup";
  if (stage == "record_trace") return "stage:record_trace";
  if (stage == "find_mates") return "stage:find_mates";
  if (stage == "evaluate") return "stage:evaluate";
  if (stage == "select") return "stage:select";
  if (stage == "campaign") return "stage:campaign";
  return "stage:other";
}

void print_service_stats(const ripple::serve::ServiceStats& s) {
  std::printf("sessions %llu  submissions %llu  deduped %llu  "
              "executions %llu  in-flight %llu\n",
              static_cast<unsigned long long>(s.sessions),
              static_cast<unsigned long long>(s.submissions),
              static_cast<unsigned long long>(s.deduped),
              static_cast<unsigned long long>(s.executions),
              static_cast<unsigned long long>(s.in_flight));
  std::printf("scheduler: %llu threads, %llu streams, %llu queued shards\n",
              static_cast<unsigned long long>(s.scheduler_threads),
              static_cast<unsigned long long>(s.scheduler_streams),
              static_cast<unsigned long long>(s.scheduler_queued));
  if (s.cache_enabled) {
    std::printf("cache: %llu hits, %llu misses, %llu stores\n",
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.cache_misses),
                static_cast<unsigned long long>(s.cache_stores));
  } else {
    std::printf("cache: disabled\n");
  }
  for (const auto& c : s.campaigns) {
    std::string line = ripple::strprintf(
        "campaign %016llx: %s — ",
        static_cast<unsigned long long>(c.checksum), c.summary.c_str());
    if (c.num_shards > 0) {
      line += ripple::strprintf(
          "%llu/%llu shards, %llu injections",
          static_cast<unsigned long long>(c.shards_done),
          static_cast<unsigned long long>(c.num_shards),
          static_cast<unsigned long long>(c.executed));
      if (c.inj_per_sec > 0.0) {
        line += ripple::strprintf(", %.0f inj/s, ETA %.1f s", c.inj_per_sec,
                                  c.eta_seconds);
      }
    } else {
      line += "before the campaign stage";
    }
    if (c.finished) line += " (finished)";
    line += ripple::strprintf(", %llu client%s",
                              static_cast<unsigned long long>(c.clients),
                              c.clients == 1 ? "" : "s");
    std::printf("%s\n", line.c_str());
  }
}

ripple::hafi::CampaignMode parse_mode(const std::string& mode) {
  if (mode.empty() || mode == "baseline")
    return ripple::hafi::CampaignMode::Baseline;
  if (mode == "pruned") return ripple::hafi::CampaignMode::Pruned;
  if (mode == "validate") return ripple::hafi::CampaignMode::Validate;
  throw ripple::Error("unknown --mode '" + mode +
                      "' (expected baseline, pruned or validate)");
}

} // namespace

int main(int argc, char** argv) {
  using namespace ripple;

  std::string socket_path;
  std::string core = "avr";
  std::string workload;
  std::string mode;
  std::string result_out;
  std::string report;
  std::string trace_out;
  bool stats = false;
  std::size_t top_n = 0;
  std::size_t depth = 0;
  std::size_t select_cycles = 0;
  pipeline::CampaignOptions campaign_opts;

  OptionParser parser(
      "ripple-client",
      "Submit a campaign request to a rippled daemon and stream its "
      "progress. Identical concurrent requests share one execution.");
  parser.add_value("socket", "rippled Unix-domain socket path", &socket_path);
  parser.add_value("core", "core name registered in the daemon (avr, msp430)",
                   &core);
  parser.add_value("workload", "workload name (default: the core's default)",
                   &workload);
  parser.add_value("mode", "campaign mode: baseline (default), pruned or "
                   "validate", &mode);
  parser.add_value("top-n", "keep only the top-N MATEs of the greedy "
                   "selection (0 = full set)", &top_n);
  parser.add_value("depth", "MATE search depth override (0 = default)",
                   &depth);
  parser.add_value("select-cycles", "selection trace length (0 = "
                   "--run-cycles)", &select_cycles);
  parser.add_value("result-out", "write the result's canonical bytes to FILE",
                   &result_out);
  parser.add_value("report", "json or json:FILE — emit the shared report "
                   "envelope", &report);
  parser.add_value("trace-out", "export the streamed stage timeline as "
                   "Chrome trace-event JSON to FILE", &trace_out);
  parser.add_flag("stats", "print a live stats snapshot of the daemon "
                  "instead of submitting a request", &stats);
  pipeline::register_campaign_options(parser, campaign_opts);
  switch (parser.parse(argc, argv)) {
    case OptionParser::Result::Ok: break;
    case OptionParser::Result::Help: return 0;
    case OptionParser::Result::Error: return 2;
  }
  if (socket_path.empty()) {
    std::fprintf(stderr,
                 "ripple-client: --socket=PATH is required\nsee --help\n");
    return 2;
  }

  if (stats) {
    try {
      serve::ServeClient client = serve::ServeClient::connect(socket_path);
      print_service_stats(client.stats());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ripple-client: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  int exit_code = 0;
  try {
    pipeline::CampaignRequest request;
    request.core = core;
    request.workload = workload;
    hafi::CampaignConfig config;
    config.mode = parse_mode(mode);
    if (config.mode == hafi::CampaignMode::Pruned &&
        campaign_opts.validate_pruned) {
      config.mode = hafi::CampaignMode::Validate;
    }
    request.config = campaign_opts.apply(config);
    request.top_n = static_cast<std::uint32_t>(top_n);
    request.search_depth = static_cast<std::uint32_t>(depth);
    request.select_cycles = select_cycles;
    request.resume = campaign_opts.resume; // daemon forces this on anyway

    serve::ServeClient client = serve::ServeClient::connect(socket_path);
    const auto accepted = client.submit(request);
    std::fprintf(stderr, "[ripple-client] accepted, checksum %016llx%s\n",
                 static_cast<unsigned long long>(accepted.checksum),
                 accepted.attached ? " (attached to an in-flight execution)"
                                   : "");

    pipeline::ProgressObserver progress;
    pipeline::JsonReportObserver report_observer;
    // --trace-out: synthesize one span per streamed StageEnd, anchored so
    // it *ends* at arrival time — the daemon's wire frames carry durations,
    // not timestamps, so the timeline is exact in widths and approximate in
    // gaps (network/replay latency).
    std::unique_ptr<obs::TraceRecorder> recorder;
    if (!trace_out.empty()) recorder = std::make_unique<obs::TraceRecorder>();
    bool done = false;
    while (!done) {
      auto message = client.next();
      if (!message.has_value()) {
        std::fprintf(stderr,
                     "ripple-client: daemon vanished before the result\n");
        return 1;
      }
      switch (message->type) {
        case serve::MsgType::kLog: progress.progress(message->text); break;
        case serve::MsgType::kStageBegin:
          progress.stage_begin(message->stage, message->detail);
          break;
        case serve::MsgType::kStageEnd:
          progress.stage_end(message->stats);
          report_observer.stage_end(message->stats);
          if (recorder != nullptr) {
            const std::uint64_t end = recorder->now_ns();
            const auto dur =
                static_cast<std::uint64_t>(message->stats.seconds * 1e9);
            recorder->record("pipeline", stage_span_name(message->stats.stage),
                             message->stats.detail,
                             end > dur ? end - dur : 0, end);
          }
          break;
        case serve::MsgType::kResult: {
          ByteReader r(message->result_bytes);
          const hafi::CampaignResult result =
              pipeline::read_campaign_result(r);
          r.expect_done();
          std::printf(
              "total %zu  pruned %zu  executed %zu  benign %zu  latent %zu  "
              "sdc %zu\n",
              result.total, result.pruned, result.executed, result.benign,
              result.latent, result.sdc);
          if (!result_out.empty()) {
            std::ofstream out(result_out, std::ios::binary);
            RIPPLE_CHECK(static_cast<bool>(out),
                         "cannot write result file ", result_out);
            out.write(
                reinterpret_cast<const char*>(message->result_bytes.data()),
                static_cast<std::streamsize>(message->result_bytes.size()));
          }
          done = true;
          break;
        }
        case serve::MsgType::kError:
          std::fprintf(stderr, "ripple-client: daemon error: %s\n",
                       message->text.c_str());
          exit_code = 1;
          done = true;
          break;
        default: break;
      }
    }

    if (recorder != nullptr) {
      std::ofstream out(trace_out);
      RIPPLE_CHECK(static_cast<bool>(out), "cannot write trace file ",
                   trace_out);
      recorder->write_chrome_json(out);
    }

    if (report == "json" || report.rfind("json:", 0) == 0) {
      const std::string file =
          report.size() > 5 ? report.substr(5) : std::string();
      if (file.empty()) {
        report_observer.write(std::cerr, "ripple-client");
      } else {
        std::ofstream out(file);
        RIPPLE_CHECK(static_cast<bool>(out), "cannot write report file ",
                     file);
        report_observer.write(out, "ripple-client");
      }
    } else if (!report.empty()) {
      std::fprintf(stderr, "ripple-client: unknown --report '%s'\n",
                   report.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ripple-client: %s\n", e.what());
    return 1;
  }
  return exit_code;
}
