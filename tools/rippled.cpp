// rippled — the resident campaign service daemon.
//
// Listens on a Unix-domain socket for serialized CampaignRequests
// (submitted by ripple-client or anything speaking the protocol of
// src/serve/protocol.hpp), multiplexes concurrent campaigns over one shared
// artifact cache and one fair worker pool, dedupes identical in-flight
// requests onto a single execution, and streams per-stage progress back to
// every attached client. SIGINT/SIGTERM shut it down cleanly; with
// --report=json the service totals and every executed stage are emitted as
// the shared report envelope on exit.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include "obs/trace.hpp"
#include "pipeline/options.hpp"
#include "serve/server.hpp"
#include "util/options.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop = true; }

} // namespace

int main(int argc, char** argv) {
  using namespace ripple;

  std::string socket_path;
  pipeline::PipelineOptions opts;
  OptionParser parser(
      "rippled",
      "Campaign service daemon: accepts serialized campaign requests over a "
      "Unix socket, shares one artifact cache and worker pool across "
      "concurrent clients, and dedupes identical in-flight requests.");
  parser.add_value("socket", "Unix-domain socket path to listen on",
                   &socket_path);
  pipeline::register_pipeline_options(parser, opts);
  switch (parser.parse(argc, argv)) {
    case OptionParser::Result::Ok: break;
    case OptionParser::Result::Help: return 0;
    case OptionParser::Result::Error: return 2;
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "rippled: --socket=PATH is required\nsee --help\n");
    return 2;
  }

  serve::ServerConfig config;
  config.socket_path = socket_path;
  try {
    // Reuse the shared flag set's cache-dir resolution ($RIPPLE_CACHE_DIR
    // fallback, --no-cache).
    const pipeline::PipelineConfig pipeline_config = opts.config();
    config.cache_dir =
        pipeline_config.use_cache ? pipeline_config.cache_dir : "";
    config.threads = opts.threads;
  } catch (const Error& e) {
    std::fprintf(stderr, "rippled: %s\nsee --help\n", e.what());
    return 2;
  }

  // Span recording across every execution the daemon runs; exported once at
  // shutdown. Off (default) the spans cost one branch each.
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!opts.trace_out.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>();
    obs::TraceRecorder::install(recorder.get());
  }

  serve::Server server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rippled: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "[rippled] listening on %s (cache: %s)\n",
               socket_path.c_str(),
               config.cache_dir.empty() ? "disabled"
                                        : config.cache_dir.c_str());

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "[rippled] shutting down\n");
  server.stop();

  if (recorder != nullptr) {
    std::ofstream out(opts.trace_out);
    if (!out) {
      std::fprintf(stderr, "rippled: cannot write trace file '%s'\n",
                   opts.trace_out.c_str());
      return 1;
    }
    recorder->write_chrome_json(out);
  }

  const serve::Server::Stats stats = server.stats();
  std::fprintf(stderr,
               "[rippled] served %zu sessions, %zu submissions "
               "(%zu deduped), %zu executions\n",
               stats.sessions, stats.submissions, stats.deduped,
               stats.executions);

  if (opts.report_json()) {
    auto report = server.report();
    report->set_counter("service_sessions",
                        static_cast<double>(stats.sessions));
    report->set_counter("service_submissions",
                        static_cast<double>(stats.submissions));
    report->set_counter("service_deduped",
                        static_cast<double>(stats.deduped));
    report->set_counter("service_executions",
                        static_cast<double>(stats.executions));
    const std::string file = opts.report_file();
    if (file.empty()) {
      report->write(std::cerr, "rippled", server.cache());
    } else {
      std::ofstream out(file);
      if (!out) {
        std::fprintf(stderr, "rippled: cannot write report file '%s'\n",
                     file.c_str());
        return 1;
      }
      report->write(out, "rippled", server.cache());
    }
  }
  return 0;
}
