#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "mate/example.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/options.hpp"
#include "pipeline/pipeline.hpp"
#include "util/options.hpp"

namespace ripple::pipeline {
namespace {

/// Unique temp cache dir per test, removed on destruction.
struct TempDir {
  std::filesystem::path path;

  TempDir() {
    const auto base = std::filesystem::temp_directory_path();
    for (int i = 0;; ++i) {
      auto candidate =
          base / ("ripple_cache_test_" + std::to_string(::getpid()) + "_" +
                  std::to_string(i));
      if (std::filesystem::create_directories(candidate)) {
        path = std::move(candidate);
        return;
      }
    }
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST(ArtifactCache, StoreThenLoad) {
  TempDir tmp;
  ArtifactCache cache(tmp.path, true);
  const CacheKey key{"find_mates", 0x1234};
  const std::vector<std::uint8_t> payload = {10, 20, 30};

  EXPECT_FALSE(cache.load(key).has_value());
  cache.store(key, payload);
  const auto back = cache.load(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ArtifactCache, DisabledCacheNeverHitsOrCounts) {
  TempDir tmp;
  ArtifactCache cache(tmp.path, false);
  const CacheKey key{"find_mates", 7};
  cache.store(key, std::vector<std::uint8_t>{1});
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().stores, 0u);
}

TEST(ArtifactCache, CorruptFileDegradesToMiss) {
  TempDir tmp;
  ArtifactCache cache(tmp.path, true);
  const CacheKey key{"trace", 42};
  cache.store(key, std::vector<std::uint8_t>{1, 2, 3});

  {
    std::ofstream f(cache.path_for(key), std::ios::binary | std::ios::trunc);
    f << "not an artifact";
  }
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ArtifactCache, KeysAreIndependent) {
  TempDir tmp;
  ArtifactCache cache(tmp.path, true);
  cache.store({"find_mates", 1}, std::vector<std::uint8_t>{1});
  EXPECT_FALSE(cache.load({"find_mates", 2}).has_value());
  EXPECT_FALSE(cache.load({"select", 1}).has_value());
  EXPECT_TRUE(cache.load({"find_mates", 1}).has_value());
}

// The cache-key contract of the find_mates stage: identical inputs hit,
// any SearchParams delta (here: path_depth) misses.
TEST(Pipeline, FindMatesCacheHitAndParamMiss) {
  TempDir tmp;
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  const std::uint64_t fp = fingerprint(fig.netlist);
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.d};

  PipelineConfig config;
  config.cache_dir = tmp.path;
  CampaignPipeline pipe(config);

  mate::SearchParams params;
  params.threads = 1;
  const mate::SearchResult first =
      pipe.find_mates(fig.netlist, fp, faulty, params);
  EXPECT_EQ(pipe.cache().stats().hits, 0u);
  EXPECT_EQ(pipe.cache().stats().stores, 1u);

  const mate::SearchResult second =
      pipe.find_mates(fig.netlist, fp, faulty, params);
  EXPECT_EQ(pipe.cache().stats().hits, 1u);

  // Cached result is byte-identical, timing included.
  ByteWriter w1, w2;
  write_search_result(w1, first);
  write_search_result(w2, second);
  EXPECT_EQ(w1.bytes(), w2.bytes());

  // A changed heuristic parameter is a different experiment: miss.
  params.path_depth += 1;
  (void)pipe.find_mates(fig.netlist, fp, faulty, params);
  EXPECT_EQ(pipe.cache().stats().hits, 1u);
  EXPECT_EQ(pipe.cache().stats().stores, 2u);

  // The thread count is excluded from the key: it changes wall time, never
  // results.
  params.path_depth -= 1;
  params.threads = 2;
  (void)pipe.find_mates(fig.netlist, fp, faulty, params);
  EXPECT_EQ(pipe.cache().stats().hits, 2u);
}

TEST(Pipeline, ObserverSeesCacheHitFlag) {
  struct Recorder : StageObserver {
    std::vector<StageStats> stages;
    void stage_end(const StageStats& stats) override {
      stages.push_back(stats);
    }
  };

  TempDir tmp;
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  const std::uint64_t fp = fingerprint(fig.netlist);
  const std::vector<WireId> faulty = {fig.d};

  PipelineConfig config;
  config.cache_dir = tmp.path;
  CampaignPipeline pipe(config);
  Recorder rec;
  pipe.add_observer(&rec);

  mate::SearchParams params;
  params.threads = 1;
  (void)pipe.find_mates(fig.netlist, fp, faulty, params);
  (void)pipe.find_mates(fig.netlist, fp, faulty, params);

  ASSERT_EQ(rec.stages.size(), 2u);
  EXPECT_EQ(rec.stages[0].stage, "find_mates");
  EXPECT_TRUE(rec.stages[0].cacheable);
  EXPECT_FALSE(rec.stages[0].cache_hit);
  EXPECT_TRUE(rec.stages[1].cache_hit);
  EXPECT_GE(rec.stages[0].seconds, 0.0);
}

TEST(PipelineOptions, ParsesSharedFlags) {
  OptionParser parser("prog", "test");
  PipelineOptions opts;
  register_pipeline_options(parser, opts);

  const char* argv[] = {"prog",          "--csv",       "--cache-dir=/tmp/c",
                        "--threads", "3", "--depth=9",   "--no-cache",
                        "--report=json:out.json"};
  EXPECT_EQ(parser.parse(8, const_cast<char**>(argv)),
            OptionParser::Result::Ok);
  EXPECT_TRUE(opts.csv);
  EXPECT_TRUE(opts.no_cache);
  EXPECT_EQ(opts.cache_dir, "/tmp/c");
  EXPECT_EQ(opts.threads, 3u);
  EXPECT_EQ(opts.depth, 9u);
  EXPECT_TRUE(opts.report_json());
  EXPECT_EQ(opts.report_file(), "out.json");

  const PipelineConfig config = opts.config();
  EXPECT_EQ(config.cache_dir, "/tmp/c");
  EXPECT_FALSE(config.use_cache); // --no-cache wins over --cache-dir
  EXPECT_EQ(config.threads, 3u);

  const mate::SearchParams params = opts.search_params();
  EXPECT_EQ(params.path_depth, 9u);
  EXPECT_EQ(params.threads, 3u);
}

TEST(PipelineOptions, DepthZeroKeepsDefault) {
  OptionParser parser("prog", "test");
  PipelineOptions opts;
  register_pipeline_options(parser, opts);
  const char* argv[] = {"prog"};
  EXPECT_EQ(parser.parse(1, const_cast<char**>(argv)),
            OptionParser::Result::Ok);
  EXPECT_EQ(opts.search_params().path_depth, mate::SearchParams{}.path_depth);
  EXPECT_FALSE(opts.report_json());
}

TEST(PipelineOptions, RejectsUnknownFlag) {
  OptionParser parser("prog", "test");
  PipelineOptions opts;
  register_pipeline_options(parser, opts);
  const char* argv[] = {"prog", "--frobnicate"};
  EXPECT_EQ(parser.parse(2, const_cast<char**>(argv)),
            OptionParser::Result::Error);
}

} // namespace
} // namespace ripple::pipeline
