#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <fstream>

#include <unistd.h>

#include "mate/example.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/options.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/stream.hpp"
#include "sim/transposed.hpp"
#include "util/options.hpp"

namespace ripple::pipeline {
namespace {

/// Unique temp cache dir per test, removed on destruction.
struct TempDir {
  std::filesystem::path path;

  TempDir() {
    const auto base = std::filesystem::temp_directory_path();
    for (int i = 0;; ++i) {
      auto candidate =
          base / ("ripple_cache_test_" + std::to_string(::getpid()) + "_" +
                  std::to_string(i));
      if (std::filesystem::create_directories(candidate)) {
        path = std::move(candidate);
        return;
      }
    }
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST(ArtifactCache, StoreThenLoad) {
  TempDir tmp;
  ArtifactCache cache(tmp.path, true);
  const CacheKey key{"find_mates", 0x1234};
  const std::vector<std::uint8_t> payload = {10, 20, 30};

  EXPECT_FALSE(cache.load(key).has_value());
  cache.store(key, payload);
  const auto back = cache.load(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ArtifactCache, DisabledCacheNeverHitsOrCounts) {
  TempDir tmp;
  ArtifactCache cache(tmp.path, false);
  const CacheKey key{"find_mates", 7};
  cache.store(key, std::vector<std::uint8_t>{1});
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().stores, 0u);
}

TEST(ArtifactCache, CorruptFileDegradesToMiss) {
  TempDir tmp;
  ArtifactCache cache(tmp.path, true);
  const CacheKey key{"trace", 42};
  cache.store(key, std::vector<std::uint8_t>{1, 2, 3});

  {
    std::ofstream f(cache.path_for(key), std::ios::binary | std::ios::trunc);
    f << "not an artifact";
  }
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ArtifactCache, KeysAreIndependent) {
  TempDir tmp;
  ArtifactCache cache(tmp.path, true);
  cache.store({"find_mates", 1}, std::vector<std::uint8_t>{1});
  EXPECT_FALSE(cache.load({"find_mates", 2}).has_value());
  EXPECT_FALSE(cache.load({"select", 1}).has_value());
  EXPECT_TRUE(cache.load({"find_mates", 1}).has_value());
}

// The cache-key contract of the find_mates stage: identical inputs hit,
// any SearchParams delta (here: path_depth) misses.
TEST(Pipeline, FindMatesCacheHitAndParamMiss) {
  TempDir tmp;
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  const std::uint64_t fp = fingerprint(fig.netlist);
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.d};

  PipelineConfig config;
  config.cache_dir = tmp.path;
  CampaignPipeline pipe(config);

  mate::SearchParams params;
  params.threads = 1;
  const mate::SearchResult first =
      pipe.find_mates(fig.netlist, fp, faulty, params);
  EXPECT_EQ(pipe.cache().stats().hits, 0u);
  EXPECT_EQ(pipe.cache().stats().stores, 1u);

  const mate::SearchResult second =
      pipe.find_mates(fig.netlist, fp, faulty, params);
  EXPECT_EQ(pipe.cache().stats().hits, 1u);

  // Cached result is byte-identical, timing included.
  ByteWriter w1, w2;
  write_search_result(w1, first);
  write_search_result(w2, second);
  EXPECT_EQ(w1.bytes(), w2.bytes());

  // A changed heuristic parameter is a different experiment: miss.
  params.path_depth += 1;
  (void)pipe.find_mates(fig.netlist, fp, faulty, params);
  EXPECT_EQ(pipe.cache().stats().hits, 1u);
  EXPECT_EQ(pipe.cache().stats().stores, 2u);

  // The thread count is excluded from the key: it changes wall time, never
  // results.
  params.path_depth -= 1;
  params.threads = 2;
  (void)pipe.find_mates(fig.netlist, fp, faulty, params);
  EXPECT_EQ(pipe.cache().stats().hits, 2u);
}

TEST(Pipeline, ObserverSeesCacheHitFlag) {
  struct Recorder : StageObserver {
    std::vector<StageStats> stages;
    void stage_end(const StageStats& stats) override {
      stages.push_back(stats);
    }
  };

  TempDir tmp;
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  const std::uint64_t fp = fingerprint(fig.netlist);
  const std::vector<WireId> faulty = {fig.d};

  PipelineConfig config;
  config.cache_dir = tmp.path;
  CampaignPipeline pipe(config);
  const auto rec_owner = std::make_shared<Recorder>();
  Recorder& rec = *rec_owner;
  pipe.add_observer(rec_owner);

  mate::SearchParams params;
  params.threads = 1;
  (void)pipe.find_mates(fig.netlist, fp, faulty, params);
  (void)pipe.find_mates(fig.netlist, fp, faulty, params);

  ASSERT_EQ(rec.stages.size(), 2u);
  EXPECT_EQ(rec.stages[0].stage, "find_mates");
  EXPECT_TRUE(rec.stages[0].cacheable);
  EXPECT_FALSE(rec.stages[0].cache_hit);
  EXPECT_TRUE(rec.stages[1].cache_hit);
  EXPECT_GE(rec.stages[0].seconds, 0.0);
}

// The per-chunk cache-key contract of the streaming record_trace stage:
// chunk keys exclude the total cycle count, so extending a run's tail
// replays the cached prefix chunks and only the new trailing chunks
// simulate; a partial tail chunk is keyed by its own length.
TEST(Pipeline, ChunkedStreamTailExtensionReusesPrefixChunks) {
  struct Recorder : StageObserver {
    std::vector<StageStats> stages;
    void stage_end(const StageStats& stats) override {
      stages.push_back(stats);
    }
  };
  struct CountSink final : sim::TraceSink {
    std::size_t chunks = 0;
    void on_chunk(sim::TraceChunk) override { ++chunks; }
  };
  const auto counter = [](const StageStats& s, const char* name) {
    for (const auto& [key, value] : s.counters) {
      if (key == name) return value;
    }
    return -1.0;
  };

  TempDir tmp;
  PipelineConfig config;
  config.cache_dir = tmp.path;
  config.trace_chunk_cycles = 128;
  CampaignPipeline pipe(config);
  const auto rec_owner = std::make_shared<Recorder>();
  Recorder& rec = *rec_owner;
  pipe.add_observer(rec_owner);

  // 256 cycles = 2 chunks, cold cache: both simulate and are stored.
  const auto s1 = pipe.trace_stream(CoreKind::Avr, "fib", 256);
  CountSink first;
  s1->stream(first);
  EXPECT_EQ(first.chunks, 2u);
  ASSERT_EQ(rec.stages.size(), 1u);
  EXPECT_EQ(rec.stages[0].stage, "record_trace");
  EXPECT_EQ(counter(rec.stages[0], "chunk_misses"), 2.0);
  EXPECT_EQ(counter(rec.stages[0], "chunk_hits"), 0.0);
  EXPECT_FALSE(rec.stages[0].cache_hit);

  // Replay (rank_mates_stream's second pass): both chunks hit.
  CountSink replay;
  s1->stream(replay);
  ASSERT_EQ(rec.stages.size(), 2u);
  EXPECT_EQ(counter(rec.stages[1], "chunk_hits"), 2.0);
  EXPECT_EQ(counter(rec.stages[1], "chunk_misses"), 0.0);
  EXPECT_TRUE(rec.stages[1].cache_hit);

  // Tail extension to 384 cycles: prefix chunks hit, only the new tail
  // chunk simulates. The stream identity still changes with the length.
  const auto s2 = pipe.trace_stream(CoreKind::Avr, "fib", 384);
  EXPECT_NE(s1->fingerprint(), s2->fingerprint());
  CountSink extended;
  s2->stream(extended);
  EXPECT_EQ(extended.chunks, 3u);
  ASSERT_EQ(rec.stages.size(), 3u);
  EXPECT_EQ(counter(rec.stages[2], "chunk_hits"), 2.0);
  EXPECT_EQ(counter(rec.stages[2], "chunk_misses"), 1.0);

  // Shortening to 192 cycles cuts the second chunk to 64 cycles: the full
  // first chunk hits, but the shorter tail is its own key (a cached
  // 128-cycle chunk must never stand in for a 64-cycle one).
  const auto s3 = pipe.trace_stream(CoreKind::Avr, "fib", 192);
  CountSink shortened;
  s3->stream(shortened);
  EXPECT_EQ(shortened.chunks, 2u);
  ASSERT_EQ(rec.stages.size(), 4u);
  EXPECT_EQ(counter(rec.stages[3], "chunk_hits"), 1.0);
  EXPECT_EQ(counter(rec.stages[3], "chunk_misses"), 1.0);
}

// The streamed chunks carry exactly the bits of the whole-trace recording:
// every chunk equals the corresponding cycle range of the record_trace +
// TransposedTrace path, word for word.
TEST(Pipeline, ChunkedStreamMatchesWholeTraceRecording) {
  TempDir tmp;
  PipelineConfig config;
  config.cache_dir = tmp.path;
  config.trace_chunk_cycles = 128;
  CampaignPipeline pipe(config);

  CoreSetupSpec spec;
  spec.kind = CoreKind::Avr;
  spec.trace_cycles = 300; // 2 full chunks + a 44-cycle partial tail
  const CoreSetup setup = pipe.setup(spec);
  const sim::TransposedTrace tt(setup.fib_trace);

  const auto stream = pipe.trace_stream(CoreKind::Avr, "fib", 300);
  EXPECT_EQ(stream->num_wires(), setup.netlist.num_wires());
  EXPECT_EQ(stream->num_cycles(), 300u);
  struct Collect final : sim::TraceSink {
    std::vector<sim::TraceChunk> chunks;
    void on_chunk(sim::TraceChunk c) override {
      chunks.push_back(std::move(c));
    }
  } collect;
  stream->stream(collect);
  ASSERT_EQ(collect.chunks.size(), 3u);
  for (const sim::TraceChunk& c : collect.chunks) {
    const sim::TransposedSlice ref =
        sim::cycle_slice(tt, c.base_cycle / 64, c.slice.num_cycles);
    ASSERT_EQ(c.slice.num_blocks, ref.num_blocks);
    for (std::size_t w = 0; w < tt.num_wires(); ++w) {
      for (std::size_t b = 0; b < ref.num_blocks; ++b) {
        ASSERT_EQ(c.slice.wire_words(w)[b], ref.wire_words(w)[b])
            << "chunk " << c.index << " wire " << w << " block " << b;
      }
    }
  }
}

TEST(PipelineOptions, ParsesSharedFlags) {
  OptionParser parser("prog", "test");
  PipelineOptions opts;
  register_pipeline_options(parser, opts);

  const char* argv[] = {"prog",          "--csv",       "--cache-dir=/tmp/c",
                        "--threads", "3", "--depth=9",   "--no-cache",
                        "--report=json:out.json"};
  EXPECT_EQ(parser.parse(8, const_cast<char**>(argv)),
            OptionParser::Result::Ok);
  EXPECT_TRUE(opts.csv);
  EXPECT_TRUE(opts.no_cache);
  EXPECT_EQ(opts.cache_dir, "/tmp/c");
  EXPECT_EQ(opts.threads, 3u);
  EXPECT_EQ(opts.depth, 9u);
  EXPECT_TRUE(opts.report_json());
  EXPECT_EQ(opts.report_file(), "out.json");

  const PipelineConfig config = opts.config();
  EXPECT_EQ(config.cache_dir, "/tmp/c");
  EXPECT_FALSE(config.use_cache); // --no-cache wins over --cache-dir
  EXPECT_EQ(config.threads, 3u);

  const mate::SearchParams params = opts.search_params();
  EXPECT_EQ(params.path_depth, 9u);
  EXPECT_EQ(params.threads, 3u);
}

TEST(PipelineOptions, DepthZeroKeepsDefault) {
  OptionParser parser("prog", "test");
  PipelineOptions opts;
  register_pipeline_options(parser, opts);
  const char* argv[] = {"prog"};
  EXPECT_EQ(parser.parse(1, const_cast<char**>(argv)),
            OptionParser::Result::Ok);
  EXPECT_EQ(opts.search_params().path_depth, mate::SearchParams{}.path_depth);
  EXPECT_FALSE(opts.report_json());
}

TEST(PipelineOptions, RejectsUnknownFlag) {
  OptionParser parser("prog", "test");
  PipelineOptions opts;
  register_pipeline_options(parser, opts);
  const char* argv[] = {"prog", "--frobnicate"};
  EXPECT_EQ(parser.parse(2, const_cast<char**>(argv)),
            OptionParser::Result::Error);
}

} // namespace
} // namespace ripple::pipeline
