#include <gtest/gtest.h>

#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "cores/avr/system.hpp"
#include "hafi/instrument.hpp"
#include "mate/example.hpp"
#include "mate/search.hpp"
#include "mate/select.hpp"
#include "netlist/random.hpp"
#include "netlist/verilog.hpp"
#include "sim/simulator.hpp"

namespace ripple::hafi {
namespace {

/// Drive the instrumented netlist and the software cube evaluation with the
/// same stimuli; every trigger output must equal its cube's verdict.
void expect_triggers_match(const netlist::Netlist& original,
                           const mate::MateSet& set, std::uint64_t seed,
                           int cycles) {
  const InstrumentedNetlist inst = instrument_with_mates(original, set);
  sim::Simulator hw(inst.netlist);
  sim::Simulator sw(original);

  Rng rng(seed);
  for (int c = 0; c < cycles; ++c) {
    for (WireId w : original.primary_inputs()) {
      const bool v = rng.next_bool();
      sw.set_input(w, v);
      // Input ids are identical in the instrumented copy.
      hw.set_input(w, v);
    }
    sw.eval();
    hw.eval();

    bool any = false;
    for (std::size_t m = 0; m < set.mates.size(); ++m) {
      const bool software = set.mates[m].cube.eval(sw.values());
      const bool hardware = hw.value(inst.triggers[m]);
      EXPECT_EQ(hardware, software) << "MATE " << m << " cycle " << c;
      any = any || software;
    }
    EXPECT_EQ(hw.value(inst.any_trigger), any) << "cycle " << c;

    sw.latch();
    hw.latch();
  }
}

TEST(Instrument, Figure1TriggersMatchSoftware) {
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  const mate::SearchResult r = mate::find_mates(
      fig.netlist, {fig.a, fig.b, fig.c, fig.d, fig.e}, {});
  ASSERT_FALSE(r.set.mates.empty());
  expect_triggers_match(fig.netlist, r.set, 17, 64);
}

TEST(Instrument, PreservesOriginalBehaviour) {
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  const mate::SearchResult r = mate::find_mates(fig.netlist, {fig.d}, {});
  const InstrumentedNetlist inst = instrument_with_mates(fig.netlist, r.set);

  sim::Simulator a(fig.netlist);
  sim::Simulator b(inst.netlist);
  Rng rng(3);
  for (int c = 0; c < 32; ++c) {
    for (WireId w : fig.netlist.primary_inputs()) {
      const bool v = rng.next_bool();
      a.set_input(w, v);
      b.set_input(w, v);
    }
    a.eval();
    b.eval();
    for (WireId w : fig.netlist.primary_outputs()) {
      EXPECT_EQ(a.value(w), b.value(w));
    }
    a.latch();
    b.latch();
  }
}

TEST(Instrument, ConstantTrueMateBecomesTieHigh) {
  // A dangling fault yields the empty (constant-true) MATE.
  netlist::Netlist n;
  const WireId in = n.add_input("in");
  const FlopId f = n.add_flop("f", false);
  n.connect_flop(f, in);
  n.add_gate_new(netlist::Kind::Inv, {n.flop(f).q}, "unused");
  n.mark_output(in);
  const mate::SearchResult r = mate::find_mates(n, {n.flop(f).q}, {});
  ASSERT_EQ(r.set.mates.size(), 1u);
  ASSERT_TRUE(r.set.mates[0].cube.empty());

  const InstrumentedNetlist inst = instrument_with_mates(n, r.set);
  sim::Simulator sim(inst.netlist);
  sim.eval();
  EXPECT_TRUE(sim.value(inst.triggers[0]));
  EXPECT_TRUE(sim.value(inst.any_trigger));
}

TEST(Instrument, EmptySetYieldsConstantFalseAny) {
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  mate::MateSet empty;
  const InstrumentedNetlist inst = instrument_with_mates(fig.netlist, empty);
  sim::Simulator sim(inst.netlist);
  sim.eval();
  EXPECT_FALSE(sim.value(inst.any_trigger));
  EXPECT_TRUE(inst.triggers.empty());
}

TEST(Instrument, InstrumentedNetlistRoundTripsThroughVerilog) {
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  const mate::SearchResult r = mate::find_mates(
      fig.netlist, {fig.a, fig.b, fig.d}, {});
  const InstrumentedNetlist inst = instrument_with_mates(fig.netlist, r.set);
  const netlist::Netlist parsed =
      netlist::parse_verilog(netlist::to_verilog(inst.netlist));
  EXPECT_EQ(parsed.num_gates(), inst.netlist.num_gates());
  EXPECT_TRUE(parsed.find_wire("mate_any").has_value());
}

TEST(Instrument, HardwareCostMatchesLutArgument) {
  // Top-50 MATEs on the AVR: the added checker logic must stay tiny
  // relative to the emulated design (Section 6.1).
  const cores::avr::AvrCore core = cores::avr::build_avr_core(true);
  const mate::SearchResult r =
      mate::find_mates(core.netlist, mate::all_flop_wires(core.netlist), {});
  static const cores::avr::Program prog = cores::avr::fib_program();
  cores::avr::AvrSystem sys(core, prog);
  const sim::Trace trace = sys.run_trace(1000);
  const mate::SelectionResult sel = mate::rank_mates(r.set, trace);
  const mate::MateSet top50 = mate::top_n(r.set, sel, 50);

  const InstrumentedNetlist inst = instrument_with_mates(core.netlist, top50);
  EXPECT_LE(inst.added_gates, 50u * 8u)
      << "a MATE averages < 6 literals -> a handful of cells each";
  EXPECT_LT(static_cast<double>(inst.added_gates),
            0.25 * static_cast<double>(core.netlist.num_gates()));
  expect_triggers_match(core.netlist, top50, 99, 16);
}

// Property: instrumentation is exact on random circuits.
class InstrumentFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InstrumentFuzz, TriggersExactOnRandomCircuits) {
  Rng rng(GetParam() + 500);
  netlist::RandomCircuitSpec spec;
  spec.num_gates = 60;
  spec.num_flops = 8;
  const netlist::Netlist n = random_circuit(spec, rng);
  const mate::SearchResult r =
      mate::find_mates(n, mate::all_flop_wires(n), {});
  if (r.set.mates.empty()) GTEST_SKIP() << "no MATEs on this circuit";
  expect_triggers_match(n, r.set, GetParam() * 7 + 1, 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InstrumentFuzz,
                         ::testing::Range<std::uint64_t>(0, 10));

} // namespace
} // namespace ripple::hafi
