#include <gtest/gtest.h>

#include "cores/avr/core.hpp"
#include "cores/avr/programs.hpp"
#include "cores/avr/system.hpp"
#include "netlist/random.hpp"
#include "sim/multicycle.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"

namespace ripple::sim {
namespace {

using netlist::Kind;
using netlist::Netlist;

Trace random_trace(const Netlist& n, std::uint64_t seed, std::size_t cycles) {
  Simulator sim(n);
  Rng rng(seed);
  return record_trace(sim, cycles, [&](Simulator& s, std::size_t) {
    for (WireId w : n.primary_inputs()) s.set_input(w, rng.next_bool());
  });
}

TEST(MultiCycleOracle, GatedRegisterMasksAtCycleOne) {
  // q loads `in` every cycle and is observed only while en: with en low at
  // the injection cycle, the fault dies immediately (j = 1).
  Netlist n;
  const WireId in = n.add_input("in");
  const WireId en = n.add_input("en");
  const FlopId q = n.add_flop("q", false);
  n.connect_flop(q, in);
  n.mark_output(n.add_gate_new(Kind::And2, {n.flop(q).q, en}, "obs"));

  Simulator sim(n);
  sim.set_input(en, false);
  sim.set_input(in, true);
  Trace trace = record_trace(sim, 6, [](Simulator&, std::size_t) {});

  MultiCycleOracle oracle(n);
  EXPECT_EQ(oracle.masked_within(q, trace, 1, 4), 1u);
}

TEST(MultiCycleOracle, ShiftChainConvergesAfterChainLength) {
  // A 3-stage shift register fed by an input and never observed except at
  // the end... observe only stage 3 ANDed with 0 -> fault washes out after
  // it shifts past the last stage.
  Netlist n;
  const WireId in = n.add_input("in");
  const FlopId s0 = n.add_flop("s0", false);
  const FlopId s1 = n.add_flop("s1", false);
  const FlopId s2 = n.add_flop("s2", false);
  n.connect_flop(s0, in);
  n.connect_flop(s1, n.flop(s0).q);
  n.connect_flop(s2, n.flop(s1).q);
  const WireId zero = n.add_gate_new(Kind::Tie0, {}, "z");
  n.mark_output(n.add_gate_new(Kind::And2, {n.flop(s2).q, zero}, "obs"));

  Simulator sim(n);
  sim.set_input(in, false);
  Trace trace = record_trace(sim, 10, [](Simulator&, std::size_t) {});

  MultiCycleOracle oracle(n);
  // A fault in s0 must shift through s1 and s2: converged after 3 cycles.
  EXPECT_EQ(oracle.masked_within(s0, trace, 2, 8), 3u);
  EXPECT_EQ(oracle.masked_within(s1, trace, 2, 8), 2u);
  EXPECT_EQ(oracle.masked_within(s2, trace, 2, 8), 1u);
  // With too small a budget the fault is not (yet) provably masked.
  EXPECT_EQ(oracle.masked_within(s0, trace, 2, 2), 0u);
}

TEST(MultiCycleOracle, ObservedFaultNeverMasks) {
  Netlist n;
  const WireId in = n.add_input("in");
  const FlopId q = n.add_flop("q", false);
  n.connect_flop(q, in);
  n.mark_output(n.flop(q).q);
  Simulator sim(n);
  sim.set_input(in, false);
  Trace trace = record_trace(sim, 6, [](Simulator&, std::size_t) {});
  MultiCycleOracle oracle(n);
  EXPECT_EQ(oracle.masked_within(q, trace, 1, 4), 0u);
}

TEST(MultiCycleOracle, TraceEndIsConservative) {
  Netlist n;
  const WireId in = n.add_input("in");
  const FlopId q = n.add_flop("q", false);
  n.connect_flop(q, in);
  const WireId zero = n.add_gate_new(Kind::Tie0, {}, "z");
  n.mark_output(zero);
  Simulator sim(n);
  sim.set_input(in, false);
  Trace trace = record_trace(sim, 3, [](Simulator&, std::size_t) {});
  MultiCycleOracle oracle(n);
  // Injection in the last cycle: no next-state row to compare against.
  EXPECT_EQ(oracle.masked_within(q, trace, 2, 4), 0u);
}

// Property: k = 1 of the multi-cycle oracle agrees with the one-cycle cone
// oracle on random circuits.
class MultiCycleAgrees : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiCycleAgrees, KEqualsOneMatchesConeOracle) {
  Rng rng(GetParam() + 40);
  netlist::RandomCircuitSpec spec;
  spec.num_gates = 50;
  spec.num_flops = 8;
  const Netlist n = random_circuit(spec, rng);
  const Trace trace = random_trace(n, GetParam() * 3 + 1, 20);

  MaskingOracle one(n);
  MaskingOracle::Workspace ws(one);
  MultiCycleOracle multi(n);

  for (std::size_t t = 0; t + 2 < trace.num_cycles(); t += 3) {
    for (FlopId f : n.all_flops()) {
      const bool cone = one.masked(f, trace.cycle_values(t), ws);
      const bool k1 = multi.masked_within(f, trace, t, 1) == 1;
      EXPECT_EQ(cone, k1) << "flop " << n.flop(f).name << " cycle " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiCycleAgrees,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(MultiCycleOracle, MonotoneInKOnAvr) {
  const cores::avr::AvrCore core = cores::avr::build_avr_core(true);
  static const cores::avr::Program prog = cores::avr::fib_program();
  cores::avr::AvrSystem sys(core, prog);
  const Trace trace = sys.run_trace(200);
  MultiCycleOracle oracle(core.netlist);

  std::size_t masked1 = 0;
  std::size_t masked4 = 0;
  for (std::size_t t = 10; t < 60; t += 5) {
    for (FlopId f : core.netlist.all_flops()) {
      const unsigned j4 = oracle.masked_within(f, trace, t, 4);
      const unsigned j1 = oracle.masked_within(f, trace, t, 1);
      if (j1 != 0) {
        ++masked1;
        EXPECT_EQ(j4, 1u) << "k=4 must find the same 1-cycle convergence";
      }
      if (j4 != 0) ++masked4;
    }
  }
  EXPECT_GT(masked4, masked1) << "larger budgets must mask at least as much";
}

} // namespace
} // namespace ripple::sim
