#include <gtest/gtest.h>

#include <set>

#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ripple {
namespace {

TEST(BitVec, SetGetFlip) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_FALSE(v.get(0));
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, InitialValueTrue) {
  BitVec v(70, true);
  EXPECT_EQ(v.popcount(), 70u);
  EXPECT_TRUE(v.get(69));
}

TEST(BitVec, EqualityIgnoresTailBits) {
  BitVec a(3);
  BitVec b(3, true);
  b.set(0, false);
  b.set(1, false);
  b.set(2, false);
  EXPECT_EQ(a, b);
}

TEST(BitVec, OrAndXor) {
  BitVec a(100);
  BitVec b(100);
  a.set(1, true);
  a.set(70, true);
  b.set(70, true);
  b.set(99, true);
  BitVec o = a;
  o |= b;
  EXPECT_EQ(o.popcount(), 3u);
  BitVec n = a;
  n &= b;
  EXPECT_EQ(n.popcount(), 1u);
  EXPECT_TRUE(n.get(70));
  BitVec x = a;
  x ^= b;
  EXPECT_EQ(x.popcount(), 2u);
}

TEST(BitVec, FirstDifference) {
  BitVec a(200);
  BitVec b(200);
  EXPECT_EQ(a.first_difference(b), 200u);
  b.set(131, true);
  EXPECT_EQ(a.first_difference(b), 131u);
}

TEST(BitVec, ResizeGrowWithValue) {
  BitVec v(10);
  v.resize(80, true);
  EXPECT_FALSE(v.get(9));
  EXPECT_TRUE(v.get(10));
  EXPECT_TRUE(v.get(79));
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u) << "all values should appear in 1000 draws";
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  ab c \t\n"), "ab c");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  add\tr1,  r2 ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "add");
  EXPECT_EQ(parts[2], "r2");
}

TEST(Strings, ParseIntBases) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int("0x1f").value(), 31);
  EXPECT_EQ(parse_int("0b101").value(), 5);
  EXPECT_EQ(parse_int("$ff").value(), 255);
  EXPECT_EQ(parse_int("%110").value(), 6);
  EXPECT_EQ(parse_int("1_000").value(), 1000);
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("0x").has_value());
  EXPECT_FALSE(parse_int("12z").has_value());
  EXPECT_FALSE(parse_int("0b2").has_value());
}

TEST(Strings, Identifier) {
  EXPECT_TRUE(is_identifier("abc_1"));
  EXPECT_TRUE(is_identifier("_x"));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a b"));
}

TEST(Stats, MeanMedianStddev) {
  const std::vector<int> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  const std::vector<int> odd = {5, 1, 9};
  EXPECT_DOUBLE_EQ(median(odd), 5.0);
  EXPECT_NEAR(stddev(v), 1.118, 1e-3);
  EXPECT_DOUBLE_EQ(mean(std::vector<int>{}), 0.0);
}

TEST(Table, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_separator();
  t.add_row({"b", "1234"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1234"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
}

TEST(Table, CsvSkipsSeparators) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_separator();
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowArityChecked) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableFormat, Percent) { EXPECT_EQ(fmt_percent(0.0715), "7.15 %"); }

TEST(TableFormat, CountGrouping) {
  EXPECT_EQ(fmt_count(24536), "24 536");
  EXPECT_EQ(fmt_count(123), "123");
  EXPECT_EQ(fmt_count(1234567), "1 234 567");
}

TEST(TableFormat, Sci) { EXPECT_EQ(fmt_sci(3.2e7), "3*10^7"); }

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for_index(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_index(
                   10,
                   [&](std::size_t i) {
                     if (i == 5) throw Error("boom");
                   }),
               Error);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for_index(0, [&](std::size_t) { FAIL(); });
}

TEST(Assert, CheckThrowsErrorWithMessage) {
  try {
    RIPPLE_CHECK(false, "context ", 42);
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Assert, AssertThrowsInternalError) {
  EXPECT_THROW(RIPPLE_ASSERT(1 == 2), InternalError);
}

} // namespace
} // namespace ripple
