#include <gtest/gtest.h>

#include "netlist/random.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"

namespace ripple::sim {
namespace {

using netlist::Kind;
using netlist::Netlist;

/// Brute-force reference: flip the flop in a copy of the simulator, settle,
/// compare every flop D and primary output.
bool reference_masked(const Netlist& n, Simulator& sim, FlopId f) {
  sim.eval();
  const BitVec before = sim.values();
  sim.flip_flop(f);
  sim.eval();
  const BitVec after = sim.values();
  sim.flip_flop(f); // restore
  sim.eval();
  for (FlopId g : n.all_flops()) {
    const WireId d = n.flop(g).d;
    if (before.get(d.index()) != after.get(d.index())) return false;
  }
  for (WireId w : n.primary_outputs()) {
    if (before.get(w.index()) != after.get(w.index())) return false;
  }
  return true;
}

TEST(Oracle, GatedFlopMaskedWhenGateCloses) {
  // q feeds an AND2 whose other input g gates it; the AND feeds flop t.
  // When g == 0 a fault in q is masked; when g == 1 it propagates.
  Netlist n;
  const WireId g = n.add_input("g");
  const FlopId q = n.add_flop("q", false);
  const FlopId t = n.add_flop("t", false);
  const WireId a = n.add_gate_new(Kind::And2, {n.flop(q).q, g}, "a");
  n.connect_flop(t, a);
  n.connect_flop(q, n.add_gate_new(Kind::Buf, {g}, "qd"));
  n.mark_output(n.flop(t).q);
  Simulator sim(n);
  MaskingOracle oracle(n);

  sim.set_input(g, false);
  sim.eval();
  EXPECT_TRUE(oracle.masked(q, sim.values()));

  sim.set_input(g, true);
  sim.eval();
  EXPECT_FALSE(oracle.masked(q, sim.values()));
}

TEST(Oracle, HoldRegisterNeverMasked) {
  Netlist n;
  const FlopId f = n.add_flop("hold", false);
  n.connect_flop(f, n.flop(f).q); // D = Q
  n.mark_output(n.flop(f).q);
  Simulator sim(n);
  sim.eval();
  MaskingOracle oracle(n);
  EXPECT_FALSE(oracle.masked(f, sim.values()));
}

TEST(Oracle, OverwrittenUnobservedFlopAlwaysMasked) {
  // Flop q drives nothing; its next value comes from an input.
  Netlist n;
  const WireId in = n.add_input("in");
  const FlopId q = n.add_flop("q", false);
  n.connect_flop(q, in);
  n.mark_output(in);
  Simulator sim(n);
  sim.set_input(in, true);
  sim.eval();
  MaskingOracle oracle(n);
  EXPECT_TRUE(oracle.masked(q, sim.values()));
  EXPECT_EQ(oracle.cone_size(q), 0u);
}

TEST(Oracle, PrimaryOutputFlopNeverMasked) {
  Netlist n;
  const WireId in = n.add_input("in");
  const FlopId q = n.add_flop("q", false);
  n.connect_flop(q, in);
  n.mark_output(n.flop(q).q);
  Simulator sim(n);
  sim.eval();
  MaskingOracle oracle(n);
  EXPECT_FALSE(oracle.masked(q, sim.values()));
}

TEST(Oracle, XorConeNeverMasks) {
  Netlist n;
  const WireId in = n.add_input("in");
  const FlopId q = n.add_flop("q", false);
  const FlopId t = n.add_flop("t", false);
  n.connect_flop(t, n.add_gate_new(Kind::Xor2, {n.flop(q).q, in}, "x"));
  n.connect_flop(q, in);
  n.mark_output(n.flop(t).q);
  Simulator sim(n);
  MaskingOracle oracle(n);
  for (bool v : {false, true}) {
    sim.set_input(in, v);
    sim.eval();
    EXPECT_FALSE(oracle.masked(q, sim.values()));
  }
}

// Property: the cone-restricted oracle agrees with whole-circuit
// resimulation on random circuits and random states.
class OracleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleFuzz, AgreesWithFullResimulation) {
  Rng rng(GetParam() + 1000);
  netlist::RandomCircuitSpec spec;
  spec.num_gates = 60;
  spec.num_flops = 8;
  spec.num_inputs = 5;
  const Netlist n = random_circuit(spec, rng);
  Simulator sim(n);
  MaskingOracle oracle(n);
  MaskingOracle::Workspace ws(oracle);

  for (int cycle = 0; cycle < 30; ++cycle) {
    for (WireId w : n.primary_inputs()) sim.set_input(w, rng.next_bool());
    sim.eval();
    const BitVec values = sim.values();
    for (FlopId f : n.all_flops()) {
      EXPECT_EQ(oracle.masked(f, values, ws), reference_masked(n, sim, f))
          << "flop " << n.flop(f).name << " cycle " << cycle;
    }
    sim.latch();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleFuzz,
                         ::testing::Range<std::uint64_t>(0, 15));

} // namespace
} // namespace ripple::sim
