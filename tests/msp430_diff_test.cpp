// Differential fuzzing of the gate-level MSP430 core against an independent
// ISA-level reference emulator: random Format-I/II/jump mixes over all
// addressing modes must produce identical output-port writes and memory.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cores/msp430/core.hpp"
#include "cores/msp430/isa.hpp"
#include "cores/msp430/system.hpp"
#include "util/rng.hpp"

namespace ripple::cores::msp430 {
namespace {

class Msp430Ref {
public:
  explicit Msp430Ref(std::vector<std::uint16_t> image)
      : mem_(1u << 15, 0) {
    std::copy(image.begin(), image.end(), mem_.begin());
  }

  struct Out {
    std::uint16_t addr;
    std::uint16_t data;
    bool operator==(const Out&) const = default;
  };

  void run(std::size_t max_instructions) {
    for (std::size_t n = 0; n < max_instructions; ++n) {
      const std::uint16_t insn_pc = pc_;
      const std::uint16_t word = fetch();
      // Decode needs a window of words for the extension fetches; feed it
      // the raw memory starting at the instruction.
      std::vector<std::uint16_t> window = {word, peek(pc_), peek(pc_ + 2)};
      const auto insn = decode(window, 0);
      if (!insn) continue; // executes as whatever the core does... excluded
                           // by construction: the generator only emits
                           // subset encodings.
      if (execute(*insn, insn_pc)) return;
    }
  }

  [[nodiscard]] const std::vector<Out>& outputs() const { return out_; }
  [[nodiscard]] const std::vector<std::uint16_t>& memory() const {
    return mem_;
  }

private:
  std::uint16_t peek(std::uint16_t byte_addr) const {
    return mem_[(byte_addr >> 1) & 0x7fff];
  }
  std::uint16_t fetch() {
    const std::uint16_t w = peek(pc_);
    pc_ += 2;
    return w;
  }
  void store(std::uint16_t byte_addr, std::uint16_t value) {
    if (byte_addr >= kIoBase) {
      out_.push_back(Out{byte_addr, value});
    } else {
      mem_[(byte_addr >> 1) & 0x7fff] = value;
    }
  }
  std::uint16_t& reg(std::uint8_t r) { return regs_[r]; }

  /// Returns true on the jmp-to-self halt.
  bool execute(const Instruction& i, std::uint16_t insn_pc) {
    if (i.format == Instruction::Format::Jump) {
      const bool nxv = flag_n_ != flag_v_;
      bool take = false;
      switch (i.cond) {
        case Cond::Jne: take = !flag_z_; break;
        case Cond::Jeq: take = flag_z_; break;
        case Cond::Jnc: take = !flag_c_; break;
        case Cond::Jc: take = flag_c_; break;
        case Cond::Jn: take = flag_n_; break;
        case Cond::Jge: take = !nxv; break;
        case Cond::Jl: take = nxv; break;
        case Cond::Jmp: take = true; break;
      }
      if (i.cond == Cond::Jmp && i.offset == -1) return true; // halt
      if (take) {
        pc_ = static_cast<std::uint16_t>(insn_pc + 2 + 2 * i.offset);
      }
      return false;
    }

    if (i.format == Instruction::Format::Two) {
      const std::uint16_t v = reg(i.reg2);
      std::uint16_t r = 0;
      switch (i.op2) {
        case Op2::Rrc:
          r = static_cast<std::uint16_t>((v >> 1) | (flag_c_ ? 0x8000 : 0));
          flag_c_ = v & 1;
          set_nz(r);
          flag_v_ = false;
          break;
        case Op2::Rra:
          r = static_cast<std::uint16_t>((v >> 1) | (v & 0x8000));
          flag_c_ = v & 1;
          set_nz(r);
          flag_v_ = false;
          break;
        case Op2::Swpb:
          r = static_cast<std::uint16_t>((v >> 8) | (v << 8));
          break; // no flags
        case Op2::Sxt:
          r = static_cast<std::uint16_t>(
              static_cast<std::int16_t>(static_cast<std::int8_t>(v & 0xff)));
          set_nz(r);
          flag_c_ = r != 0;
          flag_v_ = false;
          break;
      }
      reg(i.reg2) = r;
      return false;
    }

    // Format I: fetch source operand.
    std::uint16_t src = 0;
    switch (i.src.mode) {
      case SrcMode::Reg: src = reg(i.src.reg); break;
      case SrcMode::Immediate: src = fetch(); break;
      case SrcMode::Absolute: src = peek(fetch()); break;
      case SrcMode::Indexed: {
        const std::uint16_t x = fetch();
        src = peek(static_cast<std::uint16_t>(reg(i.src.reg) + x));
        break;
      }
      case SrcMode::Indirect: src = peek(reg(i.src.reg)); break;
      case SrcMode::AutoInc:
        src = peek(reg(i.src.reg));
        reg(i.src.reg) += 2;
        break;
    }

    // Destination operand (address for memory destinations).
    std::uint16_t dst_addr = 0;
    std::uint16_t dst = 0;
    const bool mem_dst = i.dst_mode != DstMode::Reg;
    if (i.dst_mode == DstMode::Indexed) {
      dst_addr = static_cast<std::uint16_t>(reg(i.dst_reg) + fetch());
      dst = peek(dst_addr);
    } else if (i.dst_mode == DstMode::Absolute) {
      dst_addr = fetch();
      dst = peek(dst_addr);
    } else {
      dst = reg(i.dst_reg);
    }

    std::uint16_t r = 0;
    bool writes = true;
    bool sets_flags = true;
    switch (i.op1) {
      case Op1::Mov:
        r = src;
        sets_flags = false;
        break;
      case Op1::Add:
      case Op1::Addc: {
        const unsigned cin = (i.op1 == Op1::Addc && flag_c_) ? 1 : 0;
        const unsigned sum = static_cast<unsigned>(dst) + src + cin;
        r = static_cast<std::uint16_t>(sum);
        flag_c_ = sum > 0xffff;
        flag_v_ = ((dst ^ r) & (src ^ r) & 0x8000) != 0;
        set_nz(r);
        break;
      }
      case Op1::Sub:
      case Op1::Subc:
      case Op1::Cmp: {
        // dst + ~src + {1 | C}
        const unsigned cin =
            i.op1 == Op1::Subc ? (flag_c_ ? 1u : 0u) : 1u;
        const unsigned sum = static_cast<unsigned>(dst) +
                             static_cast<std::uint16_t>(~src) + cin;
        r = static_cast<std::uint16_t>(sum);
        flag_c_ = sum > 0xffff;
        flag_v_ = ((dst ^ src) & (dst ^ r) & 0x8000) != 0;
        set_nz(r);
        writes = i.op1 != Op1::Cmp;
        break;
      }
      case Op1::Bit:
      case Op1::And:
        r = dst & src;
        set_nz(r);
        flag_c_ = r != 0;
        flag_v_ = false;
        writes = i.op1 == Op1::And;
        break;
      case Op1::Bic:
        r = dst & static_cast<std::uint16_t>(~src);
        sets_flags = false;
        break;
      case Op1::Bis:
        r = static_cast<std::uint16_t>(dst | src);
        sets_flags = false;
        break;
      case Op1::Xor:
        r = dst ^ src;
        set_nz(r);
        flag_c_ = r != 0;
        flag_v_ = (dst & src & 0x8000) != 0;
        break;
    }
    (void)sets_flags;

    if (writes) {
      if (mem_dst) {
        store(dst_addr, r);
      } else if (i.dst_reg == 0) {
        pc_ = r;
      } else {
        reg(i.dst_reg) = r;
      }
    }
    return false;
  }

  void set_nz(std::uint16_t r) {
    flag_z_ = r == 0;
    flag_n_ = (r & 0x8000) != 0;
  }

  std::vector<std::uint16_t> mem_;
  std::array<std::uint16_t, 16> regs_{};
  std::uint16_t pc_ = 0;
  bool flag_c_ = false, flag_z_ = false, flag_n_ = false, flag_v_ = false;
  std::vector<Out> out_;
};

/// Generate a random, terminating program exercising all addressing modes.
Image random_image(Rng& rng, std::size_t length) {
  std::vector<Instruction> insns;
  const auto gp = [&] {
    return static_cast<std::uint8_t>(4 + rng.next_below(9)); // r4..r12
  };
  const auto imm16 = [&] { return static_cast<std::uint16_t>(rng.next_u64()); };

  // Seed the data registers and the r13 pointer (kept inside 0x300..0x3ff).
  for (std::uint8_t r = 4; r <= 12; ++r) {
    Instruction i;
    i.format = Instruction::Format::One;
    i.op1 = Op1::Mov;
    i.src = {SrcMode::Immediate, 0, imm16()};
    i.dst_mode = DstMode::Reg;
    i.dst_reg = r;
    insns.push_back(i);
  }
  {
    Instruction i;
    i.format = Instruction::Format::One;
    i.op1 = Op1::Mov;
    i.src = {SrcMode::Immediate, 0, 0x0300};
    i.dst_mode = DstMode::Reg;
    i.dst_reg = 13;
    insns.push_back(i);
  }

  const auto random_src = [&]() -> Operand {
    switch (rng.next_below(6)) {
      case 0: return {SrcMode::Reg, gp(), 0};
      case 1: return {SrcMode::Immediate, 0, imm16()};
      case 2: return {SrcMode::Indirect, 13, 0};
      case 3: return {SrcMode::AutoInc, 13, 0};
      case 4:
        return {SrcMode::Indexed, 13,
                static_cast<std::uint16_t>(2 * rng.next_below(8))};
      default:
        return {SrcMode::Absolute, 2,
                static_cast<std::uint16_t>(0x320 + 2 * rng.next_below(8))};
    }
  };

  for (std::size_t n = 0; n < length; ++n) {
    Instruction i;
    const unsigned pick = static_cast<unsigned>(rng.next_below(12));
    if (pick < 8) {
      static const Op1 ops[11] = {Op1::Mov, Op1::Add, Op1::Addc, Op1::Subc,
                                  Op1::Sub, Op1::Cmp, Op1::Bit,  Op1::Bic,
                                  Op1::Bis, Op1::Xor, Op1::And};
      i.format = Instruction::Format::One;
      i.op1 = ops[rng.next_below(11)];
      i.src = random_src();
      switch (rng.next_below(3)) {
        case 0:
          i.dst_mode = DstMode::Reg;
          i.dst_reg = gp();
          break;
        case 1:
          i.dst_mode = DstMode::Indexed;
          i.dst_reg = 13;
          i.dst_ext = static_cast<std::uint16_t>(2 * rng.next_below(8));
          break;
        default:
          i.dst_mode = DstMode::Absolute;
          i.dst_reg = 2;
          i.dst_ext = static_cast<std::uint16_t>(0x320 + 2 * rng.next_below(8));
          break;
      }
    } else if (pick < 10) {
      i.format = Instruction::Format::Two;
      static const Op2 ops[4] = {Op2::Rrc, Op2::Swpb, Op2::Rra, Op2::Sxt};
      i.op2 = ops[rng.next_below(4)];
      i.reg2 = gp();
    } else {
      i.format = Instruction::Format::Jump;
      static const Cond conds[8] = {Cond::Jne, Cond::Jeq, Cond::Jnc,
                                    Cond::Jc,  Cond::Jn,  Cond::Jge,
                                    Cond::Jl,  Cond::Jmp};
      i.cond = conds[rng.next_below(8)];
      i.offset = 0; // fixed up below: skip 1..2 instructions forward
      i.dst_reg = static_cast<std::uint8_t>(1 + rng.next_below(2)); // marker
      insns.push_back(i);
      continue;
    }
    insns.push_back(i);
  }
  // Tail: publish the registers, then halt.
  for (std::uint8_t r = 4; r <= 12; ++r) {
    Instruction i;
    i.format = Instruction::Format::One;
    i.op1 = Op1::Mov;
    i.src = {SrcMode::Reg, r, 0};
    i.dst_mode = DstMode::Absolute;
    i.dst_reg = 2;
    i.dst_ext = static_cast<std::uint16_t>(kIoBase + 2 * r);
    insns.push_back(i);
  }
  {
    Instruction halt;
    halt.format = Instruction::Format::Jump;
    halt.cond = Cond::Jmp;
    halt.offset = -1;
    insns.push_back(halt);
  }

  // Lay out and fix up jump offsets (they skip `dst_reg` instructions).
  std::vector<std::size_t> word_addr(insns.size() + 1);
  std::size_t addr = 0;
  for (std::size_t n = 0; n < insns.size(); ++n) {
    word_addr[n] = addr;
    addr += encoded_length(insns[n]);
  }
  word_addr[insns.size()] = addr;

  Image image;
  for (std::size_t n = 0; n < insns.size(); ++n) {
    Instruction i = insns[n];
    if (i.format == Instruction::Format::Jump && i.offset == 0 &&
        i.dst_reg != 0) {
      const std::size_t skip = std::min<std::size_t>(i.dst_reg,
                                                     insns.size() - 1 - n);
      const std::size_t target = word_addr[n + 1 + skip];
      i.offset = static_cast<std::int16_t>(
          (static_cast<std::ptrdiff_t>(target) -
           static_cast<std::ptrdiff_t>(word_addr[n] + 1)));
      i.dst_reg = 3;
    }
    for (std::uint16_t w : encode(i)) image.words.push_back(w);
  }
  return image;
}

class Msp430Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Msp430Differential, CoreMatchesReferenceModel) {
  Rng rng(GetParam() * 977 + 5);
  const Image image = random_image(rng, 45);

  static const Msp430Core& core = []() -> const Msp430Core& {
    static const Msp430Core c = build_msp430_core(true);
    return c;
  }();

  Msp430System sys(core, image);
  sys.run(9 * image.words.size() + 60);

  Msp430Ref ref(image.words);
  ref.run(4 * image.words.size());

  ASSERT_EQ(sys.io_log().size(), ref.outputs().size())
      << "seed " << GetParam();
  for (std::size_t i = 0; i < ref.outputs().size(); ++i) {
    EXPECT_EQ(sys.io_log()[i].addr, ref.outputs()[i].addr) << "event " << i;
    EXPECT_EQ(sys.io_log()[i].data, ref.outputs()[i].data)
        << "event " << i << " seed " << GetParam();
  }
  for (std::size_t w = 0x300 / 2; w < 0x400 / 2; ++w) {
    EXPECT_EQ(sys.memory()[w], ref.memory()[w]) << "mem word " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Msp430Differential,
                         ::testing::Range<std::uint64_t>(0, 40));

} // namespace
} // namespace ripple::cores::msp430
