// Observability end-to-end smoke (CI target `obs_smoke`, also run under
// -DRIPPLE_SANITIZE): a small AVR campaign plus a streamed evaluation with
// a TraceRecorder installed must
//   * produce a well-formed Chrome trace-event JSON with spans from at
//     least four layers (pipeline stage, campaign shard, stream chunk,
//     scheduler slice),
//   * emit a version-2 report envelope whose histograms section carries the
//     campaign's shard_seconds distribution, and
//   * leave the campaign result byte-identical to an untraced run —
//     observability must never feed back into results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "mate/eval.hpp"
#include "mate/mate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/observer.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/request.hpp"
#include "serve/scheduler.hpp"
#include "util/serialize.hpp"

namespace ripple::pipeline {
namespace {

#if defined(RIPPLE_SANITIZED)
constexpr std::size_t kStreamCycles = 16 * 1024; // scaled, still 4 chunks
#else
constexpr std::size_t kStreamCycles = 64 * 1024; // 16 chunks
#endif
constexpr std::size_t kChunkCycles = 4 * 1024;

struct TempDir {
  std::filesystem::path path;

  TempDir() {
    const auto base = std::filesystem::temp_directory_path();
    for (int i = 0;; ++i) {
      auto candidate =
          base / ("ripple_obs_smoke_" + std::to_string(::getpid()) + "_" +
                  std::to_string(i));
      if (std::filesystem::create_directories(candidate)) {
        path = std::move(candidate);
        return;
      }
    }
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

CampaignRequest small_request() {
  CampaignRequest request;
  request.core = "avr";
  request.config.run_cycles = 200;
  request.config.sample = 24;
  request.config.seed = 7;
  request.config.threads = 2;
  request.config.shard_size = 6; // 4 shards
  return request;
}

/// One traced campaign + streamed evaluation over a fresh cache; returns
/// the campaign result's canonical bytes.
std::vector<std::uint8_t> run_workload(
    const std::filesystem::path& cache, serve::FairScheduler& scheduler,
    const std::shared_ptr<JsonReportObserver>& report) {
  PipelineConfig config;
  config.cache_dir = cache;
  config.threads = 2;
  config.trace_chunk_cycles = kChunkCycles;
  config.shard_executor = [&scheduler](
                              std::size_t n,
                              const std::function<void(std::size_t)>& task) {
    scheduler.run(n, task);
  };
  CampaignPipeline pipe(config);
  if (report != nullptr) pipe.add_observer(report);

  // Streamed evaluation: exercises the chunked trace pipeline (stream
  // chunks, async consumer) alongside the campaign.
  const auto stream = pipe.trace_stream(CoreKind::Avr, "crc", kStreamCycles);
  mate::MateSet set;
  set.faulty_wires = {WireId{5}, WireId{9}};
  mate::Mate m;
  std::vector<mate::Literal> lits = {{WireId{10}, true}};
  m.cube = mate::Cube(std::move(lits));
  m.masked_wires = {WireId{5}};
  set.mates.push_back(std::move(m));
  const mate::EvalResult eval =
      pipe.evaluate_stream(set, *stream, stream->fingerprint(), "AVR crc");
  EXPECT_EQ(eval.num_cycles, kStreamCycles);

  const hafi::CampaignResult result = pipe.run(small_request());
  EXPECT_GT(result.executed, 0u);
  ByteWriter w;
  write_campaign_result(w, result);
  return w.take();
}

TEST(ObsSmoke, TracedCampaignExportsSpansFromEveryLayerByteIdentically) {
  serve::FairScheduler scheduler(2);

  // Reference run, tracing off: Span construction must take the nullptr
  // branch throughout.
  ASSERT_EQ(obs::TraceRecorder::current(), nullptr);
  TempDir cache_off;
  const std::vector<std::uint8_t> untraced =
      run_workload(cache_off.path, scheduler, nullptr);

  // Traced run over a fresh cache (same work, nothing replayed).
  obs::TraceRecorder recorder;
  obs::TraceRecorder::install(&recorder);
  const auto report = std::make_shared<JsonReportObserver>();
  TempDir cache_on;
  const std::vector<std::uint8_t> traced =
      run_workload(cache_on.path, scheduler, report);
  obs::TraceRecorder::install(nullptr);

  // Perturbation-free: byte-identical result with tracing on.
  EXPECT_EQ(traced, untraced);

  // Spans from >= 4 layers, identified by category.
  const auto events = recorder.snapshot();
  ASSERT_FALSE(events.empty());
  std::set<std::string> cats;
  std::set<std::string> names;
  for (const auto& e : events) {
    cats.insert(e.cat);
    names.insert(e.name);
  }
  EXPECT_TRUE(cats.count("pipeline")) << "pipeline stage spans missing";
  EXPECT_TRUE(cats.count("hafi")) << "campaign shard spans missing";
  EXPECT_TRUE(cats.count("stream")) << "stream chunk spans missing";
  EXPECT_TRUE(cats.count("sched")) << "scheduler slice spans missing";
  EXPECT_TRUE(names.count("stage:campaign"));
  EXPECT_TRUE(names.count("shard"));
  EXPECT_TRUE(names.count("chunk"));
  EXPECT_TRUE(names.count("slice"));

  // The exported Chrome trace is structurally valid and carries the spans.
  std::ostringstream trace_os;
  recorder.write_chrome_json(trace_os);
  const std::string trace_json = trace_os.str();
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace_json.find("stage:campaign"), std::string::npos);
  EXPECT_EQ(std::count(trace_json.begin(), trace_json.end(), '{'),
            std::count(trace_json.begin(), trace_json.end(), '}'));
  EXPECT_EQ(std::count(trace_json.begin(), trace_json.end(), '['),
            std::count(trace_json.begin(), trace_json.end(), ']'));

  // The v2 report envelope carries the campaign's histograms.
  std::ostringstream report_os;
  report->write(report_os, "obs_smoke");
  const std::string report_json = report_os.str();
  EXPECT_NE(report_json.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(report_json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(report_json.find("\"shard_seconds\""), std::string::npos);
  EXPECT_NE(report_json.find("\"chunk_queue_depth\""), std::string::npos);
  EXPECT_EQ(std::count(report_json.begin(), report_json.end(), '{'),
            std::count(report_json.begin(), report_json.end(), '}'));
}

} // namespace
} // namespace ripple::pipeline
