// Shared test utility: ISA-level AVR reference emulator and random-program
// generator used by the differential tests (and debug tools).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cores/avr/assembler.hpp"
#include "cores/avr/isa.hpp"
#include "util/rng.hpp"

namespace ripple::cores::avr {

/// Architectural reference model of the implemented subset.
class AvrRef {
public:
  explicit AvrRef(std::vector<std::uint16_t> imem) : imem_(std::move(imem)) {}

  struct Out {
    std::uint8_t addr;
    std::uint8_t data;
    bool operator==(const Out&) const = default;
  };

  /// Execute a single instruction; returns false once halted/out of range.
  bool step_one() {
    if (halted_ || pc_ >= imem_.size()) return false;
    const std::uint16_t word = imem_[pc_];
    const auto insn = decode(word);
    const std::uint16_t insn_pc = pc_++;
    if (insn && execute(*insn, insn_pc)) halted_ = true;
    return !halted_;
  }

  [[nodiscard]] std::uint8_t reg(int r) const {
    return reg_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] std::uint16_t pc() const { return pc_; }
  [[nodiscard]] bool flag_c() const { return flag_c_; }
  [[nodiscard]] bool flag_z() const { return flag_z_; }
  [[nodiscard]] bool flag_n() const { return flag_n_; }
  [[nodiscard]] bool flag_v() const { return flag_v_; }

  void run(std::size_t max_instructions) {
    for (std::size_t i = 0; i < max_instructions; ++i) {
      if (pc_ >= imem_.size()) return;
      const std::uint16_t word = imem_[pc_];
      const auto insn = decode(word);
      const std::uint16_t insn_pc = pc_++;
      if (!insn) continue; // NOP semantics
      if (execute(*insn, insn_pc)) return; // self-loop: halted
    }
  }

  [[nodiscard]] const std::vector<Out>& outputs() const { return out_; }
  [[nodiscard]] const std::array<std::uint8_t, 256>& dmem() const {
    return dmem_;
  }

private:
  /// Returns true when the program entered a tight self-loop (halt).
  bool execute(const Instruction& i, std::uint16_t insn_pc) {
    const auto set_nz = [&](std::uint8_t r) {
      flag_z_ = r == 0;
      flag_n_ = (r & 0x80) != 0;
    };
    const auto add_common = [&](std::uint8_t a, std::uint8_t b, bool cin) {
      const unsigned sum = static_cast<unsigned>(a) + b + (cin ? 1 : 0);
      const std::uint8_t r = static_cast<std::uint8_t>(sum);
      flag_c_ = sum > 0xff;
      flag_v_ = ((a ^ r) & (b ^ r) & 0x80) != 0;
      set_nz(r);
      return r;
    };
    const auto sub_common = [&](std::uint8_t a, std::uint8_t b, bool borrow,
                                bool chain_z) {
      const unsigned need = static_cast<unsigned>(b) + (borrow ? 1 : 0);
      const std::uint8_t r = static_cast<std::uint8_t>(a - need);
      flag_c_ = need > a;
      flag_v_ = ((a ^ b) & (a ^ r) & 0x80) != 0;
      flag_n_ = (r & 0x80) != 0;
      flag_z_ = chain_z ? (flag_z_ && r == 0) : (r == 0);
      return r;
    };

    switch (i.mnemonic) {
      case Mnemonic::Nop:
        break;
      case Mnemonic::Add:
        reg_[i.rd] = add_common(reg_[i.rd], reg_[i.rr], false);
        break;
      case Mnemonic::Adc:
        reg_[i.rd] = add_common(reg_[i.rd], reg_[i.rr], flag_c_);
        break;
      case Mnemonic::Sub:
        reg_[i.rd] = sub_common(reg_[i.rd], reg_[i.rr], false, false);
        break;
      case Mnemonic::Sbc:
        reg_[i.rd] = sub_common(reg_[i.rd], reg_[i.rr], flag_c_, true);
        break;
      case Mnemonic::Cp:
        sub_common(reg_[i.rd], reg_[i.rr], false, false);
        break;
      case Mnemonic::Cpc:
        sub_common(reg_[i.rd], reg_[i.rr], flag_c_, true);
        break;
      case Mnemonic::Cpi:
        sub_common(reg_[i.rd], i.imm, false, false);
        break;
      case Mnemonic::Subi:
        reg_[i.rd] = sub_common(reg_[i.rd], i.imm, false, false);
        break;
      case Mnemonic::Sbci:
        reg_[i.rd] = sub_common(reg_[i.rd], i.imm, flag_c_, true);
        break;
      case Mnemonic::And:
      case Mnemonic::Andi: {
        const std::uint8_t b =
            i.mnemonic == Mnemonic::And ? reg_[i.rr] : i.imm;
        reg_[i.rd] &= b;
        flag_v_ = false;
        set_nz(reg_[i.rd]);
        break;
      }
      case Mnemonic::Or:
      case Mnemonic::Ori: {
        const std::uint8_t b =
            i.mnemonic == Mnemonic::Or ? reg_[i.rr] : i.imm;
        reg_[i.rd] |= b;
        flag_v_ = false;
        set_nz(reg_[i.rd]);
        break;
      }
      case Mnemonic::Eor:
        reg_[i.rd] ^= reg_[i.rr];
        flag_v_ = false;
        set_nz(reg_[i.rd]);
        break;
      case Mnemonic::Mov:
        reg_[i.rd] = reg_[i.rr];
        break;
      case Mnemonic::Ldi:
        reg_[i.rd] = i.imm;
        break;
      case Mnemonic::Com:
        reg_[i.rd] = static_cast<std::uint8_t>(~reg_[i.rd]);
        flag_c_ = true;
        flag_v_ = false;
        set_nz(reg_[i.rd]);
        break;
      case Mnemonic::Inc:
        flag_v_ = reg_[i.rd] == 0x7f;
        ++reg_[i.rd];
        set_nz(reg_[i.rd]);
        break;
      case Mnemonic::Dec:
        flag_v_ = reg_[i.rd] == 0x80;
        --reg_[i.rd];
        set_nz(reg_[i.rd]);
        break;
      case Mnemonic::Lsr:
        flag_c_ = reg_[i.rd] & 1;
        reg_[i.rd] >>= 1;
        flag_n_ = false;
        flag_z_ = reg_[i.rd] == 0;
        flag_v_ = flag_c_;
        break;
      case Mnemonic::Ror: {
        const bool old_c = flag_c_;
        flag_c_ = reg_[i.rd] & 1;
        reg_[i.rd] = static_cast<std::uint8_t>(
            (reg_[i.rd] >> 1) | (old_c ? 0x80 : 0));
        set_nz(reg_[i.rd]);
        flag_v_ = flag_n_ != flag_c_;
        break;
      }
      case Mnemonic::LdX:
        reg_[i.rd] = dmem_[reg_[26]];
        break;
      case Mnemonic::StX:
        dmem_[reg_[26]] = reg_[i.rr];
        break;
      case Mnemonic::Out:
        out_.push_back(Out{i.imm, reg_[i.rr]});
        break;
      case Mnemonic::Rjmp:
        if (i.offset == -1) return true; // rjmp . == halt
        pc_ = static_cast<std::uint16_t>(insn_pc + 1 + i.offset);
        break;
      case Mnemonic::Brbs:
      case Mnemonic::Brbc: {
        const bool flags[4] = {flag_c_, flag_z_, flag_n_, flag_v_};
        const bool set = flags[i.sreg_bit];
        if (set == (i.mnemonic == Mnemonic::Brbs)) {
          pc_ = static_cast<std::uint16_t>(insn_pc + 1 + i.offset);
        }
        break;
      }
    }
    return false;
  }

  std::vector<std::uint16_t> imem_;
  std::array<std::uint8_t, 32> reg_{};
  std::array<std::uint8_t, 256> dmem_{};
  std::uint16_t pc_ = 0;
  bool flag_c_ = false, flag_z_ = false, flag_n_ = false, flag_v_ = false;
  std::vector<Out> out_;
  bool halted_ = false;
};

/// Generate a random, terminating program of the implemented subset.
Program random_program(Rng& rng, std::size_t length) {
  Program p;
  const auto gp = [&] { return static_cast<std::uint8_t>(rng.next_below(26)); };
  const auto hi = [&] {
    return static_cast<std::uint8_t>(16 + rng.next_below(10)); // r16..r25
  };
  const auto imm = [&] { return static_cast<std::uint8_t>(rng.next_u64()); };

  // Seed registers and the X pointer with definite values.
  for (std::uint8_t r = 16; r < 26; ++r) {
    p.words.push_back(encode({Mnemonic::Ldi, r, 0, imm(), 0, 0}));
  }
  p.words.push_back(encode({Mnemonic::Ldi, 26, 0, 0x40, 0, 0}));

  for (std::size_t i = 0; i < length; ++i) {
    Instruction insn;
    switch (rng.next_below(16)) {
      case 0: insn = {Mnemonic::Add, gp(), gp(), 0, 0, 0}; break;
      case 1: insn = {Mnemonic::Adc, gp(), gp(), 0, 0, 0}; break;
      case 2: insn = {Mnemonic::Sub, gp(), gp(), 0, 0, 0}; break;
      case 3: insn = {Mnemonic::Sbc, gp(), gp(), 0, 0, 0}; break;
      case 4: insn = {Mnemonic::And, gp(), gp(), 0, 0, 0}; break;
      case 5: insn = {Mnemonic::Eor, gp(), gp(), 0, 0, 0}; break;
      case 6: insn = {Mnemonic::Or, gp(), gp(), 0, 0, 0}; break;
      case 7: insn = {Mnemonic::Mov, gp(), gp(), 0, 0, 0}; break;
      case 8: insn = {Mnemonic::Subi, hi(), 0, imm(), 0, 0}; break;
      case 9: insn = {Mnemonic::Andi, hi(), 0, imm(), 0, 0}; break;
      case 10: {
        static const Mnemonic one[5] = {Mnemonic::Com, Mnemonic::Inc,
                                        Mnemonic::Dec, Mnemonic::Lsr,
                                        Mnemonic::Ror};
        insn = {one[rng.next_below(5)], gp(), 0, 0, 0, 0};
        break;
      }
      case 11: insn = {Mnemonic::Cp, gp(), gp(), 0, 0, 0}; break;
      case 12: insn = {Mnemonic::LdX, gp(), 0, 0, 0, 0}; break;
      case 13:
        // Keep X inside dmem and step it around occasionally.
        if (rng.next_bool()) {
          insn = {Mnemonic::StX, 0, gp(), 0, 0, 0};
        } else {
          insn = {Mnemonic::Subi, 26, 0,
                  static_cast<std::uint8_t>(rng.next_below(7) - 3), 0, 0};
        }
        break;
      case 14:
        insn = {Mnemonic::Out, 0,
                static_cast<std::uint8_t>(rng.next_below(26)),
                static_cast<std::uint8_t>(rng.next_below(64)), 0, 0};
        break;
      case 15: {
        // Forward branch skipping 1..3 instructions (always in range).
        const Mnemonic br =
            rng.next_bool() ? Mnemonic::Brbs : Mnemonic::Brbc;
        insn = {br, 0, 0, 0,
                static_cast<std::int16_t>(1 + rng.next_below(3)),
                static_cast<std::uint8_t>(rng.next_below(4))};
        break;
      }
    }
    p.words.push_back(encode(insn));
  }
  // Emit a checksum of the visible registers, then halt.
  for (std::uint8_t r = 16; r < 26; ++r) {
    p.words.push_back(
        encode({Mnemonic::Out, 0, r, static_cast<std::uint8_t>(r), 0, 0}));
  }
  p.words.push_back(encode({Mnemonic::Rjmp, 0, 0, 0, -1, 0}));
  return p;
}


} // namespace ripple::cores::avr
