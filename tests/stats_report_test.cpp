#include <gtest/gtest.h>

#include <sstream>

#include "mate/example.hpp"
#include "mate/report.hpp"
#include "mate/search.hpp"
#include "netlist/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace ripple {
namespace {

TEST(NetlistStats, CountsSmallCircuit) {
  netlist::Netlist n("counts");
  const WireId a = n.add_input("a");
  const WireId b = n.add_input("b");
  const WireId x = n.add_gate_new(netlist::Kind::And2, {a, b}, "x");
  const WireId y = n.add_gate_new(netlist::Kind::Inv, {x}, "y");
  const FlopId f = n.add_flop("r", false);
  n.connect_flop(f, y);
  n.mark_output(n.flop(f).q);

  const sim::NetlistStats s = sim::compute_stats(n);
  EXPECT_EQ(s.name, "counts");
  EXPECT_EQ(s.gates, 2u);
  EXPECT_EQ(s.flops, 1u);
  EXPECT_EQ(s.primary_inputs, 2u);
  EXPECT_EQ(s.primary_outputs, 1u);
  EXPECT_EQ(s.comb_depth, 2u);
  EXPECT_EQ(s.by_kind.at(netlist::Kind::And2), 1u);
  EXPECT_EQ(s.by_kind.at(netlist::Kind::Dff), 1u);
  EXPECT_GT(s.area_um2, 0.0);
  // a, b, x each have exactly one reader; y feeds the flop.
  EXPECT_DOUBLE_EQ(s.avg_fanout, 1.0);
  EXPECT_EQ(s.max_fanout, 1u);
}

TEST(NetlistStats, FanoutTracksHeavyWire) {
  netlist::Netlist n;
  const WireId a = n.add_input("a");
  for (int i = 0; i < 7; ++i) {
    n.mark_output(n.add_gate_new(netlist::Kind::Inv, {a},
                                 "o" + std::to_string(i)));
  }
  const sim::NetlistStats s = sim::compute_stats(n);
  EXPECT_EQ(s.max_fanout, 7u);
}

TEST(NetlistStats, PrintContainsEverything) {
  Rng rng(3);
  const netlist::Netlist n = netlist::random_circuit({}, rng);
  std::ostringstream os;
  sim::print_stats(sim::compute_stats(n), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("gates"), std::string::npos);
  EXPECT_NE(text.find("depth"), std::string::npos);
  EXPECT_NE(text.find("DFF_X1"), std::string::npos);
}

TEST(Report, JsonEscape) {
  EXPECT_EQ(mate::json_escape("plain"), "plain");
  EXPECT_EQ(mate::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(mate::json_escape("x\ny"), "x\\ny");
  EXPECT_EQ(mate::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Report, SearchJsonWellFormedish) {
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  const mate::SearchResult r = mate::find_mates(
      fig.netlist, {fig.a, fig.b, fig.c, fig.d, fig.e}, {});
  std::ostringstream os;
  write_search_json(fig.netlist, r, os);
  const std::string json = os.str();
  // Structural smoke checks (no JSON parser in the toolchain).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"module\": \"figure1\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"unmaskable\""), std::string::npos);
  EXPECT_NE(json.find("\"wire\": \"f\", \"value\": false"),
            std::string::npos)
      << "the paper's (!f & h) MATE must appear";
}

TEST(Report, MateCsvRowsMatchSet) {
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.d};
  const mate::SearchResult r = mate::find_mates(fig.netlist, faulty, {});

  sim::Simulator sim(fig.netlist);
  Rng rng(9);
  const sim::Trace trace =
      sim::record_trace(sim, 16, [&](sim::Simulator& s, std::size_t) {
        for (WireId w : fig.netlist.primary_inputs()) {
          s.set_input(w, rng.next_bool());
        }
      });
  const mate::EvalResult eval = evaluate_mates(r.set, trace);

  std::ostringstream os;
  write_mate_csv(fig.netlist, r.set, &eval, os);
  const std::string csv = os.str();
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, r.set.mates.size() + 1); // header + one row per MATE
  EXPECT_NE(csv.find("triggers"), std::string::npos);

  std::ostringstream os2;
  write_mate_csv(fig.netlist, r.set, nullptr, os2);
  EXPECT_EQ(os2.str().find("triggers"), std::string::npos);
}

} // namespace
} // namespace ripple
