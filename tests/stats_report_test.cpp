#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "mate/example.hpp"
#include "mate/report.hpp"
#include "mate/search.hpp"
#include "netlist/random.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/observer.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace ripple {
namespace {

TEST(NetlistStats, CountsSmallCircuit) {
  netlist::Netlist n("counts");
  const WireId a = n.add_input("a");
  const WireId b = n.add_input("b");
  const WireId x = n.add_gate_new(netlist::Kind::And2, {a, b}, "x");
  const WireId y = n.add_gate_new(netlist::Kind::Inv, {x}, "y");
  const FlopId f = n.add_flop("r", false);
  n.connect_flop(f, y);
  n.mark_output(n.flop(f).q);

  const sim::NetlistStats s = sim::compute_stats(n);
  EXPECT_EQ(s.name, "counts");
  EXPECT_EQ(s.gates, 2u);
  EXPECT_EQ(s.flops, 1u);
  EXPECT_EQ(s.primary_inputs, 2u);
  EXPECT_EQ(s.primary_outputs, 1u);
  EXPECT_EQ(s.comb_depth, 2u);
  EXPECT_EQ(s.by_kind.at(netlist::Kind::And2), 1u);
  EXPECT_EQ(s.by_kind.at(netlist::Kind::Dff), 1u);
  EXPECT_GT(s.area_um2, 0.0);
  // a, b, x each have exactly one reader; y feeds the flop.
  EXPECT_DOUBLE_EQ(s.avg_fanout, 1.0);
  EXPECT_EQ(s.max_fanout, 1u);
}

TEST(NetlistStats, FanoutTracksHeavyWire) {
  netlist::Netlist n;
  const WireId a = n.add_input("a");
  for (int i = 0; i < 7; ++i) {
    n.mark_output(n.add_gate_new(netlist::Kind::Inv, {a},
                                 "o" + std::to_string(i)));
  }
  const sim::NetlistStats s = sim::compute_stats(n);
  EXPECT_EQ(s.max_fanout, 7u);
}

TEST(NetlistStats, PrintContainsEverything) {
  Rng rng(3);
  const netlist::Netlist n = netlist::random_circuit({}, rng);
  std::ostringstream os;
  sim::print_stats(sim::compute_stats(n), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("gates"), std::string::npos);
  EXPECT_NE(text.find("depth"), std::string::npos);
  EXPECT_NE(text.find("DFF_X1"), std::string::npos);
}

TEST(Report, JsonEscape) {
  EXPECT_EQ(mate::json_escape("plain"), "plain");
  EXPECT_EQ(mate::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(mate::json_escape("x\ny"), "x\\ny");
  EXPECT_EQ(mate::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Report, SearchJsonWellFormedish) {
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  const mate::SearchResult r = mate::find_mates(
      fig.netlist, {fig.a, fig.b, fig.c, fig.d, fig.e}, {});
  std::ostringstream os;
  write_search_json(fig.netlist, r, os);
  const std::string json = os.str();
  // Structural smoke checks (no JSON parser in the toolchain).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"module\": \"figure1\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"unmaskable\""), std::string::npos);
  EXPECT_NE(json.find("\"wire\": \"f\", \"value\": false"),
            std::string::npos)
      << "the paper's (!f & h) MATE must appear";
}

TEST(Report, MateCsvRowsMatchSet) {
  const mate::Figure1Circuit fig = mate::build_figure1_circuit();
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.d};
  const mate::SearchResult r = mate::find_mates(fig.netlist, faulty, {});

  sim::Simulator sim(fig.netlist);
  Rng rng(9);
  const sim::Trace trace =
      sim::record_trace(sim, 16, [&](sim::Simulator& s, std::size_t) {
        for (WireId w : fig.netlist.primary_inputs()) {
          s.set_input(w, rng.next_bool());
        }
      });
  const mate::EvalResult eval = evaluate_mates(r.set, trace);

  std::ostringstream os;
  write_mate_csv(fig.netlist, r.set, &eval, os);
  const std::string csv = os.str();
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, r.set.mates.size() + 1); // header + one row per MATE
  EXPECT_NE(csv.find("triggers"), std::string::npos);

  std::ostringstream os2;
  write_mate_csv(fig.netlist, r.set, nullptr, os2);
  EXPECT_EQ(os2.str().find("triggers"), std::string::npos);
}

TEST(Metrics, CounterSetKeepsSetSemanticsAndOrder) {
  obs::CounterSet counters;
  counters.set("mates", 3.0);
  counters.set("candidates", 10.0);
  counters.set("mates", 5.0); // overwrite, not append
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "mates");
  EXPECT_DOUBLE_EQ(counters[0].second, 5.0);
  EXPECT_DOUBLE_EQ(counters.value_or("candidates", -1.0), 10.0);
  EXPECT_DOUBLE_EQ(counters.value_or("absent", -1.0), -1.0);

  // The StageStats call-site idioms: emplace_back + structured bindings.
  counters.emplace_back("extra", 1.0);
  double sum = 0.0;
  for (const auto& [name, value] : counters) sum += value;
  EXPECT_DOUBLE_EQ(sum, 16.0);
}

TEST(Metrics, HistogramQuantilesAreMonotone) {
  obs::MetricRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0, 4.0, 8.0};
  obs::Histogram& h = registry.histogram("latency", kBounds);
  for (int i = 0; i < 100; ++i) h.record(0.5 + i * 0.1); // spills overflow
  const auto snapshots = registry.histograms();
  ASSERT_EQ(snapshots.size(), 1u);
  const auto& s = snapshots[0];
  EXPECT_EQ(s.count, 100u);
  const double p50 = s.quantile(0.50);
  const double p90 = s.quantile(0.90);
  const double p99 = s.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Overflow bucket clamps to the last finite bound instead of inventing
  // an upper edge.
  EXPECT_LE(p99, 8.0);
}

TEST(Metrics, RegistryCountersAndGaugesFoldIntoCounterSet) {
  obs::MetricRegistry registry;
  registry.counter("requests").add(3.0);
  registry.gauge("queue_depth").set(7.0);
  const obs::CounterSet counters = registry.counters();
  EXPECT_DOUBLE_EQ(counters.value_or("requests", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(counters.value_or("queue_depth", -1.0), 7.0);
}

TEST(Report, V2EnvelopeKeepsV1FieldsAndAddsHistograms) {
  static_assert(pipeline::kReportVersion == 2);
  obs::MetricRegistry registry;
  constexpr double kBounds[] = {0.1, 1.0, 10.0};
  obs::Histogram& h = registry.histogram("shard_seconds", kBounds);
  for (int i = 1; i <= 10; ++i) h.record(0.05 * i);
  registry.counter("dedup_hits").add(4.0);

  pipeline::JsonReportObserver report;
  report.set_metric_registry(&registry);
  pipeline::StageStats stats;
  stats.stage = "campaign";
  stats.detail = "AVR";
  stats.seconds = 1.5;
  stats.threads = 2;
  stats.counters.set("executed", 100.0);
  report.stage_end(stats);
  report.set_counter("cache_hits", 2.0);

  std::ostringstream os;
  report.write(os, "stats_report_test");
  const std::string json = os.str();

  // v1 fields, unchanged shape.
  EXPECT_NE(json.find("\"tool\": \"stats_report_test\""), std::string::npos);
  EXPECT_NE(json.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"campaign\""), std::string::npos);
  EXPECT_NE(json.find("\"executed\": 100"), std::string::npos);
  EXPECT_NE(json.find("peak_rss_bytes"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\": 2"), std::string::npos);
  // Registry counters folded into counters{}.
  EXPECT_NE(json.find("\"dedup_hits\": 4"), std::string::npos);
  // v2: histograms with quantiles.
  const std::size_t hist_pos = json.find("\"histograms\"");
  ASSERT_NE(hist_pos, std::string::npos);
  EXPECT_NE(json.find("\"shard_seconds\": {\"count\": 10", hist_pos),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\":", hist_pos), std::string::npos);
  EXPECT_NE(json.find("\"p99\":", hist_pos), std::string::npos);
  // Balanced braces — structural well-formedness without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Report, HistogramsSectionAlwaysPresent) {
  pipeline::JsonReportObserver report;
  report.set_metric_registry(nullptr);
  std::ostringstream os;
  report.write(os, "t");
  EXPECT_NE(os.str().find("\"histograms\": {}"), std::string::npos);
}

/// Run a deterministic little span workload against an installed recorder.
void record_span_workload() {
  obs::Span outer("pipeline", "stage:evaluate", "outer");
  for (int i = 0; i < 3; ++i) {
    obs::Span inner("stream", "chunk");
    if (inner.active()) inner.set_detail("chunk " + std::to_string(i));
  }
  std::thread worker([] { obs::Span span("pool", "batch"); });
  worker.join();
}

TEST(Trace, ChromeExportIsWellFormedAndSpansNest) {
  obs::TraceRecorder recorder;
  obs::TraceRecorder::install(&recorder);
  record_span_workload();
  obs::TraceRecorder::install(nullptr);

  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(recorder.dropped(), 0u);

  // Per-thread stack discipline: spans on one tid either nest or are
  // disjoint, never partially overlap.
  for (const auto& a : events) {
    for (const auto& b : events) {
      if (a.tid != b.tid || a.start_ns > b.start_ns) continue;
      const std::uint64_t a_end = a.start_ns + a.dur_ns;
      const std::uint64_t b_end = b.start_ns + b.dur_ns;
      EXPECT_TRUE(b.start_ns >= a_end || b_end <= a_end)
          << a.name << " and " << b.name << " partially overlap";
    }
  }

  std::ostringstream os;
  recorder.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("stage:evaluate"), std::string::npos);
  EXPECT_NE(json.find("chunk 2"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Trace, SameWorkloadYieldsSameSpanShape) {
  // Two runs of the same (deterministic) workload must produce the same
  // multiset of (cat, name, detail) — the timeline's *shape* is a function
  // of the work, not the timing.
  auto shape = [] {
    obs::TraceRecorder recorder;
    obs::TraceRecorder::install(&recorder);
    record_span_workload();
    obs::TraceRecorder::install(nullptr);
    std::vector<std::string> out;
    for (const auto& e : recorder.snapshot()) {
      out.push_back(std::string(e.cat) + "/" + e.name + "/" + e.detail);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(shape(), shape());
}

TEST(Trace, NoRecorderMeansNoCostAndNoCrash) {
  ASSERT_EQ(obs::TraceRecorder::current(), nullptr);
  obs::Span span("pipeline", "stage:idle");
  EXPECT_FALSE(span.active());
  span.set_detail("ignored");
}

} // namespace
} // namespace ripple
