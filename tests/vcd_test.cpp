#include <gtest/gtest.h>

#include "netlist/random.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "sim/vcd.hpp"

namespace ripple::sim {
namespace {

using netlist::Kind;
using netlist::Netlist;

Trace sample_trace(const Netlist& n, std::uint64_t seed, std::size_t cycles) {
  Simulator sim(n);
  Rng rng(seed);
  return record_trace(sim, cycles, [&](Simulator& s, std::size_t) {
    for (WireId w : n.primary_inputs()) s.set_input(w, rng.next_bool());
  });
}

TEST(Vcd, WriterEmitsHeaderAndChanges) {
  Netlist n;
  const WireId a = n.add_input("a");
  n.mark_output(n.add_gate_new(Kind::Inv, {a}, "y"));
  Simulator sim(n);
  Trace t = record_trace(sim, 3, [&](Simulator& s, std::size_t c) {
    s.set_input(a, c % 2 == 1);
  });
  const std::string vcd = to_vcd(t, "dut");
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module dut"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#2"), std::string::npos);
}

TEST(Vcd, RoundTripExactValues) {
  Rng rng(11);
  netlist::RandomCircuitSpec spec;
  spec.num_gates = 50;
  spec.num_flops = 6;
  const Netlist n = random_circuit(spec, rng);
  const Trace original = sample_trace(n, 3, 40);
  const Trace parsed = parse_vcd(to_vcd(original));
  ASSERT_EQ(parsed.num_cycles(), original.num_cycles());
  ASSERT_EQ(parsed.num_wires(), original.num_wires());
  for (std::size_t c = 0; c < original.num_cycles(); ++c) {
    EXPECT_EQ(parsed.cycle_values(c), original.cycle_values(c)) << c;
  }
}

TEST(Vcd, RoundTripPreservesNames) {
  Netlist n;
  n.add_input("alpha");
  const WireId b = n.add_input("bus[7]");
  n.mark_output(n.add_gate_new(Kind::Buf, {b}, "y"));
  const Trace t = sample_trace(n, 1, 2);
  const Trace parsed = parse_vcd(to_vcd(t));
  EXPECT_EQ(parsed.wire_name(0), "alpha");
  EXPECT_EQ(parsed.wire_name(1), "bus[7]");
  // align back onto the netlist still works
  EXPECT_NO_THROW(align_trace(parsed, n));
}

TEST(Vcd, ParserAcceptsForeignConstructs) {
  const char* vcd = R"($date today $end
$version someone else $end
$timescale 1ps $end
$comment irrelevant $end
$scope module top $end
$var wire 1 ! clk $end
$var wire 1 " data $end
$upscope $end
$enddefinitions $end
#0
$dumpvars
0!
x"
$end
#1
1!
b1 "
#2
0!
)";
  const Trace t = parse_vcd(vcd);
  ASSERT_EQ(t.num_cycles(), 3u);
  ASSERT_EQ(t.num_wires(), 2u);
  EXPECT_FALSE(t.value(0, WireId{0}));
  EXPECT_FALSE(t.value(0, WireId{1})); // x -> 0
  EXPECT_TRUE(t.value(1, WireId{0}));
  EXPECT_TRUE(t.value(1, WireId{1})); // b1 form
  EXPECT_FALSE(t.value(2, WireId{0}));
  EXPECT_TRUE(t.value(2, WireId{1})); // held value
}

TEST(Vcd, ParserFlattensSubScopes) {
  const char* vcd = R"($scope module top $end
$scope module cpu $end
$var wire 1 ! pc0 $end
$upscope $end
$upscope $end
$enddefinitions $end
#0
1!
)";
  const Trace t = parse_vcd(vcd);
  ASSERT_EQ(t.num_wires(), 1u);
  EXPECT_EQ(t.wire_name(0), "cpu.pc0");
}

TEST(Vcd, ParserRejectsWideVariables) {
  const char* vcd = R"($scope module top $end
$var wire 8 ! bus $end
$upscope $end
$enddefinitions $end
)";
  EXPECT_THROW(parse_vcd(vcd), Error);
}

TEST(Vcd, ParserRejectsUndeclaredId) {
  const char* vcd = R"($scope module top $end
$var wire 1 ! a $end
$upscope $end
$enddefinitions $end
#0
1@
)";
  EXPECT_THROW(parse_vcd(vcd), Error);
}

TEST(Vcd, ManyWiresGetDistinctIdCodes) {
  Netlist n;
  std::vector<WireId> ins;
  for (int i = 0; i < 200; ++i) {
    ins.push_back(n.add_input("w" + std::to_string(i)));
  }
  n.mark_output(n.add_gate_new(Kind::Buf, {ins[0]}, "y"));
  const Trace t = sample_trace(n, 1, 3);
  const Trace parsed = parse_vcd(to_vcd(t));
  ASSERT_EQ(parsed.num_wires(), t.num_wires());
  for (std::size_t c = 0; c < t.num_cycles(); ++c) {
    EXPECT_EQ(parsed.cycle_values(c), t.cycle_values(c));
  }
}

} // namespace
} // namespace ripple::sim
