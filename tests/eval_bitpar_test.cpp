// Equivalence of the bit-parallel MATE evaluation engine with the scalar
// reference oracle: identical EvalResult / SelectionResult (via their
// operator==, which covers trigger counts, masked totals, the derived
// doubles, trigger lists and rankings) across randomized netlists, traces
// whose length is not a multiple of 64, empty and constant-true cubes, and
// any thread count.
#include <gtest/gtest.h>

#include <vector>

#include "mate/eval.hpp"
#include "mate/example.hpp"
#include "mate/search.hpp"
#include "mate/select.hpp"
#include "netlist/random.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "sim/transposed.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace ripple::mate {
namespace {

using netlist::Netlist;
using netlist::RandomCircuitSpec;

/// Randomly driven trace of `cycles` cycles.
sim::Trace random_trace(const Netlist& n, std::size_t cycles, Rng& rng) {
  sim::Simulator sim(n);
  const std::span<const WireId> ins = n.primary_inputs();
  return sim::record_trace(sim, cycles, [&](sim::Simulator& s, std::size_t) {
    for (const WireId w : ins) s.set_input(w, rng.next_bool());
  });
}

/// A synthetic MATE set over random wires of `n`: cubes of 0..4 literals
/// (0 = the constant-true cube), masked wires drawn from a random
/// faulty-wire universe. Exercises shapes the search never emits (empty
/// cubes, repeated wires across MATEs) on purpose.
MateSet random_mate_set(const Netlist& n, std::size_t num_mates, Rng& rng) {
  MateSet set;
  const std::size_t universe = std::min<std::size_t>(8, n.num_wires());
  for (std::size_t i = 0; i < universe; ++i) {
    set.faulty_wires.push_back(
        WireId{static_cast<std::uint32_t>(rng.next_below(n.num_wires()))});
  }
  for (std::size_t m = 0; m < num_mates; ++m) {
    Mate mate;
    std::vector<Literal> lits;
    const std::size_t num_lits = rng.next_below(5); // 0..4
    for (std::size_t l = 0; l < num_lits; ++l) {
      lits.push_back(
          {WireId{static_cast<std::uint32_t>(rng.next_below(n.num_wires()))},
           rng.next_bool()});
    }
    mate.cube = Cube(std::move(lits));
    const std::size_t num_masked = 1 + rng.next_below(3);
    for (std::size_t w = 0; w < num_masked; ++w) {
      mate.masked_wires.push_back(
          set.faulty_wires[rng.next_below(set.faulty_wires.size())]);
    }
    set.mates.push_back(std::move(mate));
  }
  return set;
}

void expect_engines_agree(const MateSet& set, const sim::Trace& trace) {
  const sim::TransposedTrace tt(trace);
  for (const bool keep : {false, true}) {
    const EvalResult scalar = evaluate_mates_scalar(set, trace, keep);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const EvalResult bitpar = evaluate_mates_bitpar(set, tt, keep, threads);
      EXPECT_EQ(scalar, bitpar)
          << "keep=" << keep << " threads=" << threads << " cycles="
          << trace.num_cycles() << " mates=" << set.mates.size();
    }
  }
  const SelectionResult scalar_sel = rank_mates_scalar(set, trace);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const SelectionResult bitpar_sel = rank_mates_bitpar(set, tt, threads);
    EXPECT_EQ(scalar_sel, bitpar_sel) << "threads=" << threads;
  }
  // The dispatching entry points run the same code paths.
  EXPECT_EQ(evaluate_mates(set, trace, true, EvalEngine::Scalar),
            evaluate_mates(set, trace, true, EvalEngine::BitParallel));
  EXPECT_EQ(rank_mates(set, trace, EvalEngine::Scalar),
            rank_mates(set, trace, EvalEngine::BitParallel));
}

TEST(TransposedTrace, MatchesTraceBitForBit) {
  Rng rng(11);
  const Netlist n = netlist::random_circuit({.num_inputs = 3, .num_flops = 5,
                                    .num_gates = 30},
                                   rng);
  // Lengths around the 64-cycle block boundary, including partial blocks.
  for (const std::size_t cycles : {1u, 7u, 63u, 64u, 65u, 130u, 257u}) {
    const sim::Trace trace = random_trace(n, cycles, rng);
    const sim::TransposedTrace tt(trace);
    ASSERT_EQ(tt.num_wires(), trace.num_wires());
    ASSERT_EQ(tt.num_cycles(), cycles);
    ASSERT_EQ(tt.num_blocks(), (cycles + 63) / 64);
    for (std::size_t c = 0; c < cycles; ++c) {
      for (std::size_t w = 0; w < trace.num_wires(); ++w) {
        ASSERT_EQ(tt.value(c, WireId{static_cast<std::uint32_t>(w)}),
                  trace.value(c, WireId{static_cast<std::uint32_t>(w)}))
            << "cycle " << c << " wire " << w << " of " << cycles;
      }
    }
  }
}

TEST(TransposedTrace, TailBitsPastEndAreZero) {
  Rng rng(12);
  const Netlist n = netlist::random_circuit({.num_inputs = 2, .num_flops = 3,
                                    .num_gates = 10},
                                   rng);
  const sim::Trace trace = random_trace(n, 70, rng);
  const sim::TransposedTrace tt(trace);
  const std::uint64_t mask = tt.block_mask(1);
  EXPECT_EQ(mask, (std::uint64_t{1} << 6) - 1); // 70 - 64 = 6 tail cycles
  EXPECT_EQ(tt.block_mask(0), ~std::uint64_t{0});
  for (std::size_t w = 0; w < tt.num_wires(); ++w) {
    EXPECT_EQ(tt.wire_stream(w)[1] & ~mask, 0u) << "wire " << w;
  }
}

TEST(TransposedTrace, EmptyTrace) {
  const sim::Trace trace;
  const sim::TransposedTrace tt(trace);
  EXPECT_EQ(tt.num_cycles(), 0u);
  EXPECT_EQ(tt.num_blocks(), 0u);
}

TEST(BitVecWordOps, MatchBitwiseDefinitions) {
  Rng rng(13);
  for (const std::size_t bits : {1u, 64u, 65u, 200u}) {
    BitVec a(bits), b(bits);
    for (std::size_t i = 0; i < bits; ++i) {
      if (rng.next_bool()) a.set(i, true);
      if (rng.next_bool()) b.set(i, true);
    }
    std::size_t expect_and = 0, expect_or = 0, expect_new = 0;
    bool subset = true;
    for (std::size_t i = 0; i < bits; ++i) {
      expect_and += a.get(i) && b.get(i) ? 1 : 0;
      expect_or += a.get(i) || b.get(i) ? 1 : 0;
      expect_new += !a.get(i) && b.get(i) ? 1 : 0;
      if (a.get(i) && !b.get(i)) subset = false;
    }
    EXPECT_EQ(a.popcount_and(b), expect_and);
    EXPECT_EQ(a.popcount_or(b), expect_or);
    EXPECT_EQ(a.is_subset_of(b), subset);

    BitVec or_acc = a;
    EXPECT_EQ(or_acc.or_count(b), expect_new); // newly set bits
    EXPECT_EQ(or_acc.popcount(), expect_or);   // and the OR result itself
    EXPECT_EQ(or_acc.or_count(b), 0u);         // second OR adds nothing

    BitVec diff = a;
    diff.and_not(b);
    for (std::size_t i = 0; i < bits; ++i) {
      EXPECT_EQ(diff.get(i), a.get(i) && !b.get(i));
    }
  }
}

TEST(EvalBitpar, RandomizedEquivalence) {
  Rng rng(42);
  for (std::size_t round = 0; round < 6; ++round) {
    const Netlist n = netlist::random_circuit({.num_inputs = 4, .num_flops = 6,
                                      .num_gates = 40},
                                     rng);
    // Cycle counts straddling the block boundary, never only multiples of 64.
    const std::size_t cycles = 1 + rng.next_below(200);
    const sim::Trace trace = random_trace(n, cycles, rng);
    const MateSet set = random_mate_set(n, 1 + rng.next_below(12), rng);
    expect_engines_agree(set, trace);
  }
}

TEST(EvalBitpar, ConstantTrueAndEmptySets) {
  Rng rng(7);
  const Netlist n = netlist::random_circuit({.num_inputs = 3, .num_flops = 4,
                                    .num_gates = 20},
                                   rng);
  const sim::Trace trace = random_trace(n, 130, rng);

  // Empty MATE set.
  MateSet empty;
  empty.faulty_wires = {WireId{0}, WireId{1}};
  expect_engines_agree(empty, trace);

  // A single constant-true MATE must trigger every cycle in both engines.
  MateSet constant = empty;
  Mate m;
  m.cube = Cube{};
  m.masked_wires = {WireId{0}};
  constant.mates.push_back(m);
  expect_engines_agree(constant, trace);
  const EvalResult eval =
      evaluate_mates_bitpar(constant, sim::TransposedTrace(trace));
  EXPECT_EQ(eval.per_mate[0].triggers, trace.num_cycles());
  EXPECT_EQ(eval.masked_faults, trace.num_cycles());
}

TEST(EvalBitpar, SearchedMatesOnFigure1) {
  const Figure1Circuit fig = build_figure1_circuit();
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.c, fig.d, fig.e};
  const SearchResult r = find_mates(fig.netlist, faulty, {});
  ASSERT_FALSE(r.set.mates.empty());
  Rng rng(99);
  for (const std::size_t cycles : {8u, 100u, 192u}) {
    expect_engines_agree(r.set, random_trace(fig.netlist, cycles, rng));
  }
}

TEST(EvalBitpar, SearchedMatesOnRandomCircuits) {
  Rng rng(123);
  for (std::size_t round = 0; round < 3; ++round) {
    const Netlist n = netlist::random_circuit({.num_inputs = 4, .num_flops = 8,
                                      .num_gates = 60, .allow_xor = false},
                                     rng);
    const std::vector<WireId> faulty = all_flop_wires(n);
    SearchParams params;
    params.path_depth = 8;
    params.max_candidates_per_wire = 2000;
    const SearchResult r = find_mates(n, faulty, params);
    const std::size_t cycles = 65 + rng.next_below(150);
    expect_engines_agree(r.set, random_trace(n, cycles, rng));
  }
}

} // namespace
} // namespace ripple::mate
