#include <gtest/gtest.h>

#include "netlist/random.hpp"
#include "netlist/verilog.hpp"
#include "sim/simulator.hpp"

namespace ripple::netlist {
namespace {

Netlist tiny() {
  Netlist n("tiny");
  const WireId a = n.add_input("a");
  const WireId b = n.add_input("b");
  const WireId x = n.add_gate_new(Kind::Xor2, {a, b}, "x");
  const FlopId f = n.add_flop("r0", true);
  n.connect_flop(f, x);
  const WireId y = n.add_gate_new(Kind::And2, {x, n.flop(f).q}, "y");
  n.mark_output(y);
  n.check();
  return n;
}

TEST(Verilog, WriteContainsStructure) {
  const std::string v = to_verilog(tiny());
  EXPECT_NE(v.find("module tiny"), std::string::npos);
  EXPECT_NE(v.find("input a;"), std::string::npos);
  EXPECT_NE(v.find("output y;"), std::string::npos);
  EXPECT_NE(v.find("XOR2_X1"), std::string::npos);
  EXPECT_NE(v.find("DFF_X1 #(.INIT(1'b1))"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, RoundTripStructure) {
  const Netlist original = tiny();
  const Netlist parsed = parse_verilog(to_verilog(original));
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_EQ(parsed.num_gates(), original.num_gates());
  EXPECT_EQ(parsed.num_flops(), original.num_flops());
  EXPECT_EQ(parsed.num_wires(), original.num_wires());
  EXPECT_EQ(parsed.primary_inputs().size(), original.primary_inputs().size());
  EXPECT_EQ(parsed.primary_outputs().size(),
            original.primary_outputs().size());
  EXPECT_TRUE(parsed.flop(FlopId{0}).init);
}

TEST(Verilog, RoundTripPreservesBehaviour) {
  Rng rng(77);
  RandomCircuitSpec spec;
  spec.num_gates = 60;
  spec.num_flops = 8;
  const Netlist original = random_circuit(spec, rng);
  const Netlist parsed = parse_verilog(to_verilog(original));

  sim::Simulator s1(original);
  sim::Simulator s2(parsed);
  Rng drv(5);
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (WireId w : original.primary_inputs()) {
      const bool v = drv.next_bool();
      s1.set_input(w, v);
      const auto w2 = parsed.find_wire(original.wire(w).name);
      s2.set_input(*w2, v);
    }
    s1.eval();
    s2.eval();
    for (WireId w : original.primary_outputs()) {
      const auto w2 = parsed.find_wire(original.wire(w).name);
      EXPECT_EQ(s1.value(w), s2.value(*w2)) << "cycle " << cycle;
    }
    s1.latch();
    s2.latch();
  }
}

TEST(Verilog, EscapedBusNamesRoundTrip) {
  Netlist n("bus");
  const WireId a = n.add_input("data[0]");
  const WireId y = n.add_gate_new(Kind::Inv, {a}, "out[3]");
  n.mark_output(y);
  const Netlist parsed = parse_verilog(to_verilog(n));
  EXPECT_TRUE(parsed.find_wire("data[0]").has_value());
  EXPECT_TRUE(parsed.find_wire("out[3]").has_value());
}

TEST(Verilog, ParserRejectsUnknownCell) {
  const char* src = R"(module m (a, y);
  input a;
  output y;
  MYSTERY_X1 g0 (.A(a), .Y(y));
endmodule)";
  EXPECT_THROW(parse_verilog(src), Error);
}

TEST(Verilog, ParserRejectsUndeclaredWire) {
  const char* src = R"(module m (a, y);
  input a;
  output y;
  INV_X1 g0 (.A(ghost), .Y(y));
endmodule)";
  EXPECT_THROW(parse_verilog(src), Error);
}

TEST(Verilog, ParserRejectsMissingPin) {
  const char* src = R"(module m (a, y);
  input a;
  output y;
  AND2_X1 g0 (.A(a), .Y(y));
endmodule)";
  EXPECT_THROW(parse_verilog(src), Error);
}

TEST(Verilog, ParserHandlesCommentsAndWhitespace) {
  const char* src = R"(
// leading comment
module m (a, y);
  input a;   // the input
  output y;
  INV_X1 g0 (.A(a), .Y(y));
endmodule
)";
  const Netlist n = parse_verilog(src);
  EXPECT_EQ(n.num_gates(), 1u);
}

TEST(Verilog, ParserRejectsTruncatedModule) {
  EXPECT_THROW(parse_verilog("module m (a);\n input a;"), Error);
}

} // namespace
} // namespace ripple::netlist
