// Equivalence of the streaming (chunked) MATE evaluation engine with the
// whole-trace engines: evaluate_mates_stream / rank_mates_stream must be
// byte-for-byte identical (EvalResult / SelectionResult operator==) to both
// the scalar oracle and the bit-parallel engine, across chunk sizes that do
// and do not divide the trace length, cycle counts straddling chunk edges,
// overlap on/off, any thread count, recorder-driven re-simulating sources,
// and manual accumulator feeding. Also covers the chunk producer machinery:
// ChunkedTraceRecorder output vs the whole-trace transpose, trace_memory
// accounting, and consumer-error propagation through AsyncTraceSink.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mate/eval.hpp"
#include "mate/example.hpp"
#include "mate/search.hpp"
#include "mate/select.hpp"
#include "mate/stream.hpp"
#include "netlist/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stream.hpp"
#include "sim/trace.hpp"
#include "sim/transposed.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ripple::mate {
namespace {

using netlist::Netlist;

/// Randomly driven trace of `cycles` cycles.
sim::Trace random_trace(const Netlist& n, std::size_t cycles, Rng& rng) {
  sim::Simulator sim(n);
  const std::span<const WireId> ins = n.primary_inputs();
  return sim::record_trace(sim, cycles, [&](sim::Simulator& s, std::size_t) {
    for (const WireId w : ins) s.set_input(w, rng.next_bool());
  });
}

/// Same synthetic MATE shapes as eval_bitpar_test: cubes of 0..4 literals
/// (0 = constant-true), masked wires from a small faulty-wire universe.
MateSet random_mate_set(const Netlist& n, std::size_t num_mates, Rng& rng) {
  MateSet set;
  const std::size_t universe = std::min<std::size_t>(8, n.num_wires());
  for (std::size_t i = 0; i < universe; ++i) {
    set.faulty_wires.push_back(
        WireId{static_cast<std::uint32_t>(rng.next_below(n.num_wires()))});
  }
  for (std::size_t m = 0; m < num_mates; ++m) {
    Mate mate;
    std::vector<Literal> lits;
    const std::size_t num_lits = rng.next_below(5); // 0..4
    for (std::size_t l = 0; l < num_lits; ++l) {
      const WireId wire{
          static_cast<std::uint32_t>(rng.next_below(n.num_wires()))};
      // One polarity per wire: Cube rejects contradictory literals.
      const bool dup = std::any_of(
          lits.begin(), lits.end(),
          [&](const Literal& lit) { return lit.wire == wire; });
      if (!dup) lits.push_back({wire, rng.next_bool()});
    }
    mate.cube = Cube(std::move(lits));
    const std::size_t num_masked = 1 + rng.next_below(3);
    for (std::size_t w = 0; w < num_masked; ++w) {
      mate.masked_wires.push_back(
          set.faulty_wires[rng.next_below(set.faulty_wires.size())]);
    }
    set.mates.push_back(std::move(mate));
  }
  return set;
}

/// Replayable source that re-simulates the netlist with a fixed input seed on
/// every stream() pass — the test stand-in for the pipeline's cached
/// re-simulating ChunkedTraceStream. Deterministic, so both rank passes see
/// identical chunks.
class ResimSource final : public sim::TraceSource {
public:
  ResimSource(const Netlist& n, std::size_t cycles, std::size_t chunk_cycles,
              std::uint64_t seed)
      : netlist_(&n), cycles_(cycles), chunk_cycles_(chunk_cycles),
        seed_(seed) {}

  [[nodiscard]] std::size_t num_wires() const override {
    return netlist_->num_wires();
  }
  [[nodiscard]] std::size_t num_cycles() const override { return cycles_; }
  [[nodiscard]] std::size_t chunk_cycles() const override {
    return chunk_cycles_;
  }

  void stream(sim::TraceSink& sink) override {
    Rng rng(seed_);
    sim::Simulator sim(*netlist_);
    const std::span<const WireId> ins = netlist_->primary_inputs();
    sim::record_trace_chunked(sim, cycles_, chunk_cycles_, sink,
                              [&](sim::Simulator& s, std::size_t) {
                                for (const WireId w : ins) {
                                  s.set_input(w, rng.next_bool());
                                }
                              });
  }

private:
  const Netlist* netlist_;
  std::size_t cycles_;
  std::size_t chunk_cycles_;
  std::uint64_t seed_;
};

/// Collects chunks (keeping owned storage alive) for offline inspection.
struct CollectSink final : sim::TraceSink {
  std::vector<sim::TraceChunk> chunks;
  void on_chunk(sim::TraceChunk chunk) override {
    chunks.push_back(std::move(chunk));
  }
};

/// Stream == scalar == bitpar for every chunk size / overlap / thread combo.
/// Chunk sizes include ones that do not divide the trace length (the final
/// chunk is then a partial, possibly non-multiple-of-64 tail).
void expect_stream_matches(const MateSet& set, const sim::Trace& trace) {
  const sim::TransposedTrace tt(trace);
  const EvalResult scalar = evaluate_mates_scalar(set, trace, false);
  const EvalResult bitpar = evaluate_mates_bitpar(set, tt, false);
  ASSERT_EQ(scalar, bitpar);
  const SelectionResult scalar_sel = rank_mates_scalar(set, trace);
  ASSERT_EQ(scalar_sel, rank_mates_bitpar(set, tt));

  for (const std::size_t chunk : {64u, 128u, 192u, 4096u}) {
    sim::TransposedTraceSource source(tt, chunk);
    for (const bool overlap : {false, true}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        EXPECT_EQ(scalar,
                  evaluate_mates_stream(set, source, threads, overlap))
            << "chunk=" << chunk << " overlap=" << overlap
            << " threads=" << threads << " cycles=" << trace.num_cycles();
        EXPECT_EQ(scalar_sel,
                  rank_mates_stream(set, source, threads, overlap))
            << "chunk=" << chunk << " overlap=" << overlap
            << " threads=" << threads << " cycles=" << trace.num_cycles();
      }
    }
  }
}

TEST(StreamChunks, RecorderMatchesWholeTraceTranspose) {
  Rng rng(21);
  const Netlist n = netlist::random_circuit({.num_inputs = 3, .num_flops = 5,
                                    .num_gates = 30},
                                   rng);
  // Trace lengths around chunk and block edges: full chunks only, partial
  // tail chunk, partial tail block inside the tail chunk.
  for (const std::size_t cycles : {64u, 128u, 150u, 257u, 300u}) {
    const std::size_t chunk_cycles = 128;
    const std::uint64_t seed = 1000 + cycles;

    // Whole-trace reference driven by the identical input sequence.
    Rng drive(seed);
    const sim::Trace trace = random_trace(n, cycles, drive);
    const sim::TransposedTrace tt(trace);

    ResimSource source(n, cycles, chunk_cycles, seed);
    CollectSink collect;
    source.stream(collect);

    const std::size_t expect_chunks =
        (cycles + chunk_cycles - 1) / chunk_cycles;
    ASSERT_EQ(collect.chunks.size(), expect_chunks) << "cycles=" << cycles;
    for (std::size_t ci = 0; ci < collect.chunks.size(); ++ci) {
      const sim::TraceChunk& c = collect.chunks[ci];
      EXPECT_EQ(c.index, ci);
      EXPECT_EQ(c.base_cycle, ci * chunk_cycles);
      ASSERT_NE(c.owned, nullptr);
      const std::size_t len =
          std::min(chunk_cycles, cycles - c.base_cycle);
      ASSERT_EQ(c.slice.num_cycles, len);
      ASSERT_EQ(c.slice.num_wires, n.num_wires());
      const sim::TransposedSlice ref =
          sim::cycle_slice(tt, c.base_cycle / 64, len);
      ASSERT_EQ(c.slice.num_blocks, ref.num_blocks);
      for (std::size_t w = 0; w < n.num_wires(); ++w) {
        const std::uint64_t* got = c.slice.wire_words(w);
        const std::uint64_t* want = ref.wire_words(w);
        for (std::size_t b = 0; b < ref.num_blocks; ++b) {
          ASSERT_EQ(got[b], want[b]) << "cycles=" << cycles << " chunk=" << ci
                                     << " wire=" << w << " block=" << b;
          ASSERT_EQ(c.slice.block_mask(b), ref.block_mask(b));
        }
      }
    }
  }
}

TEST(EvalStream, EquivalenceAcrossChunkSizesAndEdges) {
  Rng rng(42);
  const Netlist n = netlist::random_circuit({.num_inputs = 4, .num_flops = 6,
                                    .num_gates = 40},
                                   rng);
  // Cycle counts straddling the 64-cycle block edge and the chunk edges of
  // every chunk size used by expect_stream_matches (64/128/192/4096).
  for (const std::size_t cycles : {63u, 64u, 65u, 129u, 192u, 250u, 300u}) {
    const sim::Trace trace = random_trace(n, cycles, rng);
    const MateSet set = random_mate_set(n, 1 + rng.next_below(12), rng);
    expect_stream_matches(set, trace);
  }
}

TEST(EvalStream, SearchedMatesOnFigure1) {
  const Figure1Circuit fig = build_figure1_circuit();
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.c, fig.d, fig.e};
  const SearchResult r = find_mates(fig.netlist, faulty, {});
  ASSERT_FALSE(r.set.mates.empty());
  Rng rng(99);
  for (const std::size_t cycles : {100u, 192u}) {
    expect_stream_matches(r.set, random_trace(fig.netlist, cycles, rng));
  }
}

TEST(EvalStream, RecorderDrivenSourceMatchesWholeTrace) {
  Rng rng(77);
  const Netlist n = netlist::random_circuit({.num_inputs = 4, .num_flops = 6,
                                    .num_gates = 40},
                                   rng);
  const std::uint64_t seed = 4242;
  const std::size_t cycles = 300;
  Rng drive(seed);
  const sim::Trace trace = random_trace(n, cycles, drive);
  const MateSet set = random_mate_set(n, 8, rng);

  const EvalResult scalar = evaluate_mates_scalar(set, trace, false);
  const SelectionResult scalar_sel = rank_mates_scalar(set, trace);
  // Chunks come straight off a re-simulating recorder (owned storage), not
  // from slicing an in-memory transpose; 128 does not divide 300, so the
  // tail chunk is partial. Ranking replays the source for its second pass.
  ResimSource source(n, cycles, 128, seed);
  for (const bool overlap : {false, true}) {
    EXPECT_EQ(scalar, evaluate_mates_stream(set, source, 2, overlap))
        << "overlap=" << overlap;
    EXPECT_EQ(scalar_sel, rank_mates_stream(set, source, 2, overlap))
        << "overlap=" << overlap;
  }
}

TEST(EvalStream, ManualAccumulatorFeeding) {
  Rng rng(55);
  const Netlist n = netlist::random_circuit({.num_inputs = 3, .num_flops = 6,
                                    .num_gates = 35},
                                   rng);
  const sim::Trace trace = random_trace(n, 250, rng);
  const sim::TransposedTrace tt(trace);
  const MateSet set = random_mate_set(n, 6, rng);
  const EvalResult scalar = evaluate_mates_scalar(set, trace, false);
  const SelectionResult scalar_sel = rank_mates_scalar(set, trace);

  // Mixed chunk sizes in one stream (64 + 128 + 58-cycle tail): the contract
  // only requires 64-alignment of the chunk starts, not uniform sizing.
  {
    EvalAccumulator acc(set);
    acc.consume(sim::cycle_slice(tt, 0, 64), 0);
    EXPECT_EQ(acc.cycles_consumed(), 64u);
    acc.consume(sim::cycle_slice(tt, 1, 128), 64);
    acc.consume(sim::cycle_slice(tt, 3, 58), 192);
    EXPECT_EQ(acc.cycles_consumed(), 250u);
    EXPECT_EQ(acc.finish(), scalar);
  }
  {
    RankAccumulator acc(set);
    for (std::size_t base = 0; base < 250; base += 64) {
      const std::size_t len = std::min<std::size_t>(64, 250 - base);
      acc.consume_volumes(sim::cycle_slice(tt, base / 64, len), base);
    }
    acc.begin_gains();
    for (std::size_t base = 0; base < 250; base += 128) {
      const std::size_t len = std::min<std::size_t>(128, 250 - base);
      acc.consume_gains(sim::cycle_slice(tt, base / 64, len), base);
    }
    EXPECT_EQ(acc.finish(), scalar_sel);
  }
  // Out-of-order and gap-introducing chunks are rejected.
  {
    EvalAccumulator acc(set);
    acc.consume(sim::cycle_slice(tt, 0, 64), 0);
    EXPECT_THROW(acc.consume(sim::cycle_slice(tt, 2, 64), 128), Error);
    EXPECT_THROW(acc.consume(sim::cycle_slice(tt, 0, 64), 0), Error);
  }
}

TEST(EvalStream, DispatcherStreamingEngine) {
  Rng rng(31);
  const Netlist n = netlist::random_circuit({.num_inputs = 4, .num_flops = 6,
                                    .num_gates = 40},
                                   rng);
  const sim::Trace trace = random_trace(n, 200, rng);
  const MateSet set = random_mate_set(n, 10, rng);
  // keep_trigger_lists=false runs the true streaming path; =true falls back
  // to the bit-parallel engine (trigger lists are whole-trace state). Both
  // must match the scalar oracle.
  for (const bool keep : {false, true}) {
    EXPECT_EQ(evaluate_mates(set, trace, keep, EvalEngine::Scalar),
              evaluate_mates(set, trace, keep, EvalEngine::Streaming))
        << "keep=" << keep;
  }
  EXPECT_EQ(rank_mates(set, trace, EvalEngine::Scalar),
            rank_mates(set, trace, EvalEngine::Streaming));
}

TEST(TraceMemory, ChunkAccountingReturnsToBaseline) {
  Rng rng(61);
  const Netlist n = netlist::random_circuit({.num_inputs = 3, .num_flops = 5,
                                    .num_gates = 30},
                                   rng);
  const std::size_t chunk_cycles = 128;
  const std::size_t cycles = 640; // 5 full chunks
  const std::size_t wires = n.num_wires();
  const std::size_t row_words = (wires + 63) / 64;
  const std::size_t chunk_bytes = wires * (chunk_cycles / 64) * 8;
  const std::size_t rows_bytes = 64 * row_words * 8;

  const std::size_t baseline = sim::trace_memory::current();
  sim::trace_memory::reset_peak();
  {
    // Inline consumption that drops each chunk immediately: at most the
    // recorder's block buffer + the chunk being filled + the one emitted
    // chunk are ever resident.
    struct DropSink final : sim::TraceSink {
      std::size_t max_seen = 0;
      void on_chunk(sim::TraceChunk) override {
        max_seen = std::max(max_seen, sim::trace_memory::current());
      }
    } drop;
    ResimSource source(n, cycles, chunk_cycles, 7);
    source.stream(drop);
    EXPECT_GE(drop.max_seen, baseline + chunk_bytes);
  }
  EXPECT_EQ(sim::trace_memory::current(), baseline);
  EXPECT_GE(sim::trace_memory::peak(), baseline + chunk_bytes);
  EXPECT_LE(sim::trace_memory::peak(),
            baseline + 2 * chunk_bytes + rows_bytes);

  // The async pipeline admits at most one finished chunk downstream while
  // the producer fills the next: peak stays within two chunks + the block
  // buffer even with a consumer that holds its chunk for the whole call.
  sim::trace_memory::reset_peak();
  {
    struct HoldSink final : sim::TraceSink {
      std::size_t consumed = 0;
      void on_chunk(sim::TraceChunk chunk) override {
        const sim::TraceChunk held = std::move(chunk);
        (void)held;
        ++consumed;
      }
    } hold;
    ResimSource source(n, cycles, chunk_cycles, 7);
    {
      sim::AsyncTraceSink async(hold);
      source.stream(async);
      async.drain();
    }
    EXPECT_EQ(hold.consumed, cycles / chunk_cycles);
  }
  EXPECT_EQ(sim::trace_memory::current(), baseline);
  EXPECT_LE(sim::trace_memory::peak(),
            baseline + 2 * chunk_bytes + rows_bytes);
}

TEST(StreamChunks, AsyncSinkPropagatesConsumerError) {
  Rng rng(91);
  const Netlist n = netlist::random_circuit({.num_inputs = 2, .num_flops = 4,
                                    .num_gates = 15},
                                   rng);
  struct FailSink final : sim::TraceSink {
    std::size_t seen = 0;
    void on_chunk(sim::TraceChunk) override {
      if (++seen == 2) throw std::runtime_error("consumer failed");
    }
  } fail;
  ResimSource source(n, 640, 128, 3);
  const std::size_t baseline = sim::trace_memory::current();
  EXPECT_THROW(
      {
        sim::AsyncTraceSink async(fail);
        source.stream(async); // rethrows from on_chunk or drain below
        async.drain();
      },
      std::runtime_error);
  // Every chunk the producer managed to hand over was released.
  EXPECT_EQ(sim::trace_memory::current(), baseline);
}

} // namespace
} // namespace ripple::mate
