// Scalar-vs-bitpar campaign equivalence: the 64-lane batch engine must
// produce a byte-identical CampaignResult to the scalar oracle — across both
// cores, all three CampaignModes, any thread count, and through the
// kill/resume checkpoint path (checkpoints written by one engine replay
// under the other). Also pins down the lane-utilization accounting that
// feeds the --report=json counters.
#include <gtest/gtest.h>

#include <map>

#include "cores/avr/programs.hpp"
#include "cores/msp430/programs.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "hafi/msp430_dut.hpp"
#include "mate/search.hpp"
#include "pipeline/artifact.hpp"
#include "util/serialize.hpp"

namespace ripple::hafi {
namespace {

struct Target {
  DutFactory factory;
  BatchDutFactory batch_factory;
  const mate::MateSet* mates = nullptr;
};

const Target& avr_target() {
  static const Target t = [] {
    static const cores::avr::AvrCore core = cores::avr::build_avr_core(true);
    static const cores::avr::Program program = cores::avr::fib_program();
    static const mate::SearchResult search = [] {
      mate::SearchParams sp;
      sp.threads = 2;
      return mate::find_mates(core.netlist,
                              mate::all_flop_wires(core.netlist), sp);
    }();
    return Target{make_avr_factory(core, program),
                  make_avr_batch_factory(core, program), &search.set};
  }();
  return t;
}

const Target& msp430_target() {
  static const Target t = [] {
    static const cores::msp430::Msp430Core core =
        cores::msp430::build_msp430_core(true);
    static const cores::msp430::Image image = cores::msp430::fib_image();
    static const mate::SearchResult search = [] {
      // A slice of the fault space keeps the MATE search test-sized; the
      // campaign only consults the MATEs of the sliced flops.
      std::vector<WireId> faulty = mate::all_flop_wires(core.netlist);
      faulty.resize(std::min<std::size_t>(faulty.size(), 24));
      mate::SearchParams sp;
      sp.threads = 2;
      return mate::find_mates(core.netlist, faulty, sp);
    }();
    return Target{make_msp430_factory(core, image),
                  make_msp430_batch_factory(core, image), &search.set};
  }();
  return t;
}

CampaignConfig small_config(std::size_t sample, std::size_t run_cycles) {
  CampaignConfig cfg;
  cfg.run_cycles = run_cycles;
  cfg.sample = sample;
  cfg.seed = 3;
  cfg.threads = 2;
  cfg.shard_size = 8;
  return cfg;
}

std::vector<std::uint8_t> result_bytes(const CampaignResult& r) {
  ByteWriter w;
  pipeline::write_campaign_result(w, r);
  return w.take();
}

std::vector<std::uint8_t> run_bytes(const Target& t, CampaignConfig cfg,
                                    const Campaign::ShardHooks& hooks = {}) {
  const mate::MateSet* mates =
      cfg.mode != CampaignMode::Baseline ? t.mates : nullptr;
  Campaign campaign(t.factory, cfg, mates);
  campaign.set_batch_factory(t.batch_factory);
  return result_bytes(campaign.run(hooks));
}

void expect_engine_equivalence(const Target& t, const CampaignConfig& base) {
  for (const CampaignMode mode :
       {CampaignMode::Baseline, CampaignMode::Pruned,
        CampaignMode::Validate}) {
    CampaignConfig scalar_cfg = base;
    scalar_cfg.mode = mode;
    scalar_cfg.dut_engine = DutEngine::Scalar;
    const std::vector<std::uint8_t> reference = run_bytes(t, scalar_cfg);

    for (const std::size_t threads : {1u, 2u, 8u}) {
      CampaignConfig cfg = base;
      cfg.mode = mode;
      cfg.dut_engine = DutEngine::BitParallel;
      cfg.threads = threads;
      EXPECT_EQ(run_bytes(t, cfg), reference)
          << "engine divergence: mode=" << mode_name(mode)
          << " threads=" << threads;
    }
  }
}

TEST(CampaignBatch, AvrEnginesByteIdenticalAcrossModesAndThreads) {
  expect_engine_equivalence(avr_target(), small_config(48, 300));
}

TEST(CampaignBatch, Msp430EnginesByteIdenticalAcrossModesAndThreads) {
  expect_engine_equivalence(msp430_target(), small_config(32, 250));
}

TEST(CampaignBatch, ScalarCheckpointsReplayUnderBitparAfterKill) {
  // Simulated kill -9 while checkpointing under the *scalar* engine, then a
  // resumed *bitpar* campaign: the merged result must be byte-identical to
  // an uninterrupted scalar run — engines and checkpoints are
  // interchangeable in any combination.
  const Target& t = avr_target();
  CampaignConfig cfg = small_config(48, 300);
  cfg.threads = 1; // deterministic shard order for the kill

  CampaignConfig scalar_cfg = cfg;
  scalar_cfg.dut_engine = DutEngine::Scalar;
  const std::vector<std::uint8_t> expected = run_bytes(t, scalar_cfg);

  std::map<std::size_t, ShardResult> persisted;
  struct Killed {};
  {
    Campaign campaign(t.factory, scalar_cfg);
    Campaign::ShardHooks hooks;
    hooks.store = [&](const ShardResult& shard) {
      persisted.emplace(shard.shard, shard);
      if (persisted.size() >= 3) throw Killed{};
    };
    EXPECT_THROW((void)campaign.run(hooks), Killed);
  }
  ASSERT_GE(persisted.size(), 3u);

  Campaign campaign(t.factory, cfg); // bitpar (default engine)
  campaign.set_batch_factory(t.batch_factory);
  ASSERT_LT(persisted.size(), campaign.plan().num_shards());
  std::size_t resumed = 0;
  std::size_t executed_shards = 0;
  Campaign::ShardHooks hooks;
  hooks.load = [&](std::size_t index) -> std::optional<ShardResult> {
    const auto it = persisted.find(index);
    if (it == persisted.end()) return std::nullopt;
    return it->second;
  };
  hooks.progress = [&](const Campaign::ShardProgress& p) {
    (p.resumed ? resumed : executed_shards) += 1;
    if (p.resumed) {
      // Nothing ran for a resumed shard, so it reports no engine work.
      EXPECT_EQ(p.dut_passes, 0u);
      EXPECT_EQ(p.lane_slots, 0u);
    }
  };
  const CampaignResult result = campaign.run(hooks);
  EXPECT_EQ(resumed, persisted.size());
  EXPECT_EQ(executed_shards, campaign.plan().num_shards() - persisted.size());
  EXPECT_EQ(result_bytes(result), expected);
}

TEST(CampaignBatch, LaneUtilizationAccounting) {
  // Bitpar: a shard of E executed points runs ceil(E/63) passes of 63 lane
  // slots each. Scalar: one pass (= DUT boot) per executed experiment.
  const Target& t = avr_target();
  CampaignConfig cfg = small_config(48, 300);

  for (const DutEngine engine : {DutEngine::BitParallel, DutEngine::Scalar}) {
    cfg.dut_engine = engine;
    std::size_t executed = 0;
    std::size_t dut_passes = 0;
    std::size_t lane_slots = 0;
    std::size_t retired = 0;
    Campaign::ShardHooks hooks;
    hooks.progress = [&](const Campaign::ShardProgress& p) {
      executed += p.executed;
      dut_passes += p.dut_passes;
      lane_slots += p.lane_slots;
      retired += p.lanes_retired_early;
      if (engine == DutEngine::BitParallel) {
        EXPECT_EQ(p.lane_slots, p.dut_passes * kExperimentLanes);
      } else {
        EXPECT_EQ(p.dut_passes, p.executed);
        EXPECT_EQ(p.lane_slots, p.executed);
        EXPECT_EQ(p.lanes_retired_early, 0u);
        EXPECT_EQ(p.lane_cycles_saved, 0u);
      }
    };
    Campaign campaign(t.factory, cfg);
    campaign.set_batch_factory(t.batch_factory);
    const CampaignResult r = campaign.run(hooks);
    EXPECT_EQ(executed, r.executed);
    EXPECT_GE(lane_slots, executed);
    EXPECT_LE(retired, executed);
    if (engine == DutEngine::BitParallel) {
      // 8-point shards fit one pass each, so far fewer passes than
      // experiments.
      EXPECT_LT(dut_passes, r.executed);
    }
  }
}

TEST(CampaignBatch, BitparWithoutBatchFactoryFallsBackToScalar) {
  const Target& t = avr_target();
  CampaignConfig cfg = small_config(24, 200);

  CampaignConfig scalar_cfg = cfg;
  scalar_cfg.dut_engine = DutEngine::Scalar;
  Campaign scalar(t.factory, scalar_cfg);
  const std::vector<std::uint8_t> reference = result_bytes(scalar.run());

  Campaign fallback(t.factory, cfg); // BitParallel, but no batch factory
  std::size_t lane_slots = 0;
  std::size_t executed = 0;
  Campaign::ShardHooks hooks;
  hooks.progress = [&](const Campaign::ShardProgress& p) {
    lane_slots += p.lane_slots;
    executed += p.executed;
  };
  EXPECT_EQ(result_bytes(fallback.run(hooks)), reference);
  EXPECT_EQ(lane_slots, executed); // scalar accounting: one slot per boot
}

} // namespace
} // namespace ripple::hafi
