#include <gtest/gtest.h>

#include <algorithm>

#include "mate/example.hpp"
#include "mate/search.hpp"
#include "netlist/random.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"

namespace ripple::mate {
namespace {

using netlist::Kind;
using netlist::Netlist;

TEST(GroupMates, Figure1PairAB) {
  // The pair {a, b} flips together: neither (!b) nor (!a) is usable (both
  // wires are inside the joint cone), but the deeper (!g) at gate D still
  // blocks the single escape route through k.
  const Figure1Circuit fig = build_figure1_circuit();
  const WireId group[2] = {fig.a, fig.b};
  const GroupOutcome out = find_group_mates(fig.netlist, group, {});
  ASSERT_EQ(out.status, WireStatus::Found);
  ASSERT_EQ(out.mates.size(), 1u);
  EXPECT_EQ(out.mates[0], Cube({Literal{fig.g, false}}));
}

TEST(GroupMates, SingletonMatchesSingleWireSearch) {
  const Figure1Circuit fig = build_figure1_circuit();
  const WireId group[1] = {fig.d};
  const GroupOutcome g = find_group_mates(fig.netlist, group, {});
  const SearchResult s = find_mates(fig.netlist, {fig.d}, {});
  ASSERT_EQ(g.status, WireStatus::Found);
  ASSERT_EQ(g.mates.size(), 1u);
  EXPECT_EQ(g.mates[0], s.set.mates[0].cube);
}

TEST(GroupMates, UnmaskableMemberMakesGroupUnmaskable) {
  const Figure1Circuit fig = build_figure1_circuit();
  const WireId group[2] = {fig.d, fig.e};
  const GroupOutcome out = find_group_mates(fig.netlist, group, {});
  EXPECT_EQ(out.status, WireStatus::Unmaskable);
}

TEST(GroupOracle, PairOnGatedRegisters) {
  // Two registers, both gated by the same enable: the pair fault is masked
  // exactly when en == 0.
  Netlist n;
  const WireId en = n.add_input("en");
  const WireId in = n.add_input("in");
  const FlopId fa = n.add_flop("fa", false);
  const FlopId fb = n.add_flop("fb", false);
  const FlopId ta = n.add_flop("ta", false);
  const FlopId tb = n.add_flop("tb", false);
  n.connect_flop(ta, n.add_gate_new(Kind::And2, {n.flop(fa).q, en}, "ka"));
  n.connect_flop(tb, n.add_gate_new(Kind::And2, {n.flop(fb).q, en}, "kb"));
  n.connect_flop(fa, in);
  n.connect_flop(fb, in);
  n.mark_output(n.flop(ta).q);
  n.mark_output(n.flop(tb).q);

  sim::Simulator sim(n);
  sim::MaskingOracle oracle(n);
  const FlopId group[2] = {fa, fb};
  for (const bool e : {false, true}) {
    sim.set_input(en, e);
    sim.set_input(in, true);
    sim.eval();
    EXPECT_EQ(oracle.masked_group(group, sim.values()), !e);
  }

  const WireId wires[2] = {n.flop(fa).q, n.flop(fb).q};
  const GroupOutcome out = find_group_mates(n, wires, {});
  ASSERT_EQ(out.status, WireStatus::Found);
  EXPECT_EQ(out.mates[0], Cube({Literal{en, false}}));
}

/// Brute force reference for group masking: flip all, full re-evaluation.
bool reference_group_masked(const Netlist& n, sim::Simulator& sim,
                            std::span<const FlopId> group) {
  sim.eval();
  const BitVec before = sim.values();
  for (FlopId f : group) sim.flip_flop(f);
  sim.eval();
  const BitVec after = sim.values();
  for (FlopId f : group) sim.flip_flop(f);
  sim.eval();
  for (FlopId g : n.all_flops()) {
    const WireId d = n.flop(g).d;
    if (before.get(d.index()) != after.get(d.index())) return false;
  }
  for (WireId w : n.primary_outputs()) {
    if (before.get(w.index()) != after.get(w.index())) return false;
  }
  return true;
}

class GroupFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupFuzz, OracleAgreesWithFullResimulation) {
  Rng rng(GetParam() + 900);
  netlist::RandomCircuitSpec spec;
  spec.num_gates = 60;
  spec.num_flops = 10;
  const Netlist n = random_circuit(spec, rng);
  sim::Simulator sim(n);
  sim::MaskingOracle oracle(n);
  sim::MaskingOracle::Workspace ws(oracle);

  for (int cycle = 0; cycle < 15; ++cycle) {
    for (WireId w : n.primary_inputs()) sim.set_input(w, rng.next_bool());
    sim.eval();
    const BitVec values = sim.values();
    for (int draw = 0; draw < 12; ++draw) {
      FlopId group[2] = {
          FlopId{static_cast<FlopId::value_type>(rng.next_below(10))},
          FlopId{static_cast<FlopId::value_type>(rng.next_below(10))}};
      if (group[0] == group[1]) continue;
      EXPECT_EQ(oracle.masked_group(group, values, ws),
                reference_group_masked(n, sim, group))
          << "cycle " << cycle;
    }
    sim.latch();
  }
}

TEST_P(GroupFuzz, GroupMatesAreSound) {
  Rng rng(GetParam() * 31 + 7);
  netlist::RandomCircuitSpec spec;
  spec.num_gates = 60;
  spec.num_flops = 10;
  spec.allow_xor = (GetParam() % 2) == 0;
  const Netlist n = random_circuit(spec, rng);

  // Sample a handful of pairs and search group MATEs.
  struct PairMates {
    FlopId flops[2];
    std::vector<Cube> cubes;
  };
  std::vector<PairMates> pairs;
  for (int draw = 0; draw < 8; ++draw) {
    const auto a = static_cast<FlopId::value_type>(rng.next_below(10));
    const auto b = static_cast<FlopId::value_type>(rng.next_below(10));
    if (a == b) continue;
    const WireId wires[2] = {n.flop(FlopId{a}).q, n.flop(FlopId{b}).q};
    const GroupOutcome out = find_group_mates(n, wires, {});
    if (out.status == WireStatus::Found) {
      pairs.push_back(PairMates{{FlopId{a}, FlopId{b}}, out.mates});
    }
  }

  sim::Simulator sim(n);
  sim::MaskingOracle oracle(n);
  sim::MaskingOracle::Workspace ws(oracle);
  for (int cycle = 0; cycle < 30; ++cycle) {
    for (WireId w : n.primary_inputs()) sim.set_input(w, rng.next_bool());
    sim.eval();
    const BitVec values = sim.values();
    for (const PairMates& p : pairs) {
      for (const Cube& cube : p.cubes) {
        if (!cube.eval(values)) continue;
        EXPECT_TRUE(oracle.masked_group(p.flops, values, ws))
            << "pair MATE " << cube.to_string(n) << " cycle " << cycle;
      }
    }
    sim.latch();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupFuzz,
                         ::testing::Range<std::uint64_t>(0, 12));

} // namespace
} // namespace ripple::mate
