#include <gtest/gtest.h>

#include "mate/cube.hpp"

namespace ripple::mate {
namespace {

Literal lit(std::uint32_t w, bool v) { return Literal{WireId{w}, v}; }

TEST(PinCube, MatchesAssignments) {
  const PinCube c{0b011, 0b001}; // pin0 = 1, pin1 = 0
  EXPECT_TRUE(c.matches(0b001));
  EXPECT_TRUE(c.matches(0b101)); // pin2 unconstrained
  EXPECT_FALSE(c.matches(0b011));
  EXPECT_FALSE(c.matches(0b000));
  EXPECT_EQ(c.num_literals(), 2u);
}

TEST(Cube, NormalizesOrderAndDuplicates) {
  const Cube c({lit(5, true), lit(2, false), lit(5, true)});
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.literals()[0].wire, WireId{2});
  EXPECT_EQ(c.literals()[1].wire, WireId{5});
}

TEST(Cube, ContradictionRejected) {
  EXPECT_THROW(Cube({lit(1, true), lit(1, false)}), Error);
}

TEST(Cube, ConjoinMerges) {
  const Cube a({lit(1, true)});
  const Cube b({lit(2, false), lit(1, true)});
  const auto c = a.conjoin(b);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 2u);
}

TEST(Cube, ConjoinDetectsConflict) {
  const Cube a({lit(1, true)});
  const Cube b({lit(1, false)});
  EXPECT_FALSE(a.conjoin(b).has_value());
}

TEST(Cube, ConjoinWithTrueIsIdentity) {
  const Cube a({lit(3, true)});
  const auto c = a.conjoin(Cube{});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, a);
}

TEST(Cube, Implies) {
  const Cube big({lit(1, true), lit(2, false), lit(3, true)});
  const Cube small({lit(2, false)});
  EXPECT_TRUE(big.implies(small));
  EXPECT_FALSE(small.implies(big));
  EXPECT_TRUE(big.implies(Cube{}));
  EXPECT_TRUE(Cube{}.implies(Cube{}));
}

TEST(Cube, EvalAgainstValues) {
  BitVec values(8);
  values.set(1, true);
  const Cube c({lit(1, true), lit(2, false)});
  EXPECT_TRUE(c.eval(values));
  values.set(2, true);
  EXPECT_FALSE(c.eval(values));
  EXPECT_TRUE(Cube{}.eval(values)) << "empty cube is constant true";
}

TEST(Cube, ToStringNamesWires) {
  netlist::Netlist n;
  const WireId a = n.add_input("alpha");
  const WireId b = n.add_input("beta");
  const Cube c({Literal{a, false}, Literal{b, true}});
  EXPECT_EQ(c.to_string(n), "(!alpha & beta)");
  EXPECT_EQ(Cube{}.to_string(n), "(true)");
}

TEST(Cube, OrderingIsTotal) {
  const Cube a({lit(1, true)});
  const Cube b({lit(1, true), lit(2, true)});
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

} // namespace
} // namespace ripple::mate
