// The serializable CampaignRequest: versioned wire round-trip, the checksum
// contract (scheduling knobs excluded, result-affecting fields included,
// Baseline normalization), CoreRegistry name resolution, and the
// CampaignPipeline::run(request) entry point producing the same bytes as the
// hand-assembled CampaignSpec path it replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "cores/avr/programs.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/request.hpp"
#include "util/serialize.hpp"

namespace ripple::pipeline {
namespace {

CampaignRequest sample_request() {
  CampaignRequest request;
  request.core = "avr";
  request.workload = "fib";
  request.config.run_cycles = 321;
  request.config.sample = 48;
  request.config.seed = 9;
  request.config.mode = hafi::CampaignMode::Pruned;
  request.config.threads = 3;
  request.config.shard_size = 8;
  request.config.dut_engine = hafi::DutEngine::Scalar;
  request.top_n = 12;
  request.search_depth = 10;
  request.select_cycles = 777;
  request.resume = true;
  return request;
}

TEST(Request, WireRoundTripIsIdentity) {
  const CampaignRequest request = sample_request();
  ByteWriter w;
  write_request(w, request);
  const std::vector<std::uint8_t> bytes = w.take();

  ByteReader r(bytes);
  const CampaignRequest back = read_request(r);
  r.expect_done();
  EXPECT_EQ(back, request);

  // The encoding is canonical: re-encoding the decoded request reproduces
  // the original bytes (this is what makes the frame history replayable).
  ByteWriter w2;
  write_request(w2, back);
  EXPECT_EQ(w2.take(), bytes);
}

TEST(Request, ForeignVersionIsRejected) {
  ByteWriter w;
  w.u32(kRequestVersion + 1); // a future daemon's layout
  w.str("avr");
  const std::vector<std::uint8_t> bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW((void)read_request(r), Error);
}

TEST(Request, ChecksumIgnoresSchedulingKnobs) {
  const CampaignRequest request = sample_request();
  const std::uint64_t base = request_checksum(request);

  // threads / dut_engine / shard_size / resume never change the campaign
  // result, so two clients differing only there must share one execution.
  CampaignRequest knobs = request;
  knobs.config.threads = 16;
  knobs.config.dut_engine = hafi::DutEngine::BitParallel;
  knobs.config.shard_size = 64;
  knobs.resume = !request.resume;
  EXPECT_EQ(request_checksum(knobs), base);
}

TEST(Request, ChecksumCoversResultAffectingFields) {
  const CampaignRequest request = sample_request();
  const std::uint64_t base = request_checksum(request);

  const auto differs = [&base](CampaignRequest changed) {
    return request_checksum(changed) != base;
  };
  CampaignRequest c = request;
  c.core = "msp430";
  EXPECT_TRUE(differs(c));
  c = request;
  c.workload = "crc";
  EXPECT_TRUE(differs(c));
  c = request;
  c.config.run_cycles += 1;
  EXPECT_TRUE(differs(c));
  c = request;
  c.config.sample += 1;
  EXPECT_TRUE(differs(c));
  c = request;
  c.config.seed += 1;
  EXPECT_TRUE(differs(c));
  c = request;
  c.config.mode = hafi::CampaignMode::Validate;
  EXPECT_TRUE(differs(c));
  c = request;
  c.top_n += 1;
  EXPECT_TRUE(differs(c));
  c = request;
  c.search_depth += 1;
  EXPECT_TRUE(differs(c));
  c = request;
  c.select_cycles += 1;
  EXPECT_TRUE(differs(c));
}

TEST(Request, BaselineNormalizesMateDerivationAway) {
  // A baseline campaign never derives a MATE set, so top_n/search_depth/
  // select_cycles must not split the dedup key.
  CampaignRequest plain;
  plain.config.run_cycles = 200;
  plain.config.sample = 24;

  CampaignRequest decorated = plain;
  decorated.top_n = 7;
  decorated.search_depth = 12;
  decorated.select_cycles = 500;
  EXPECT_EQ(request_checksum(decorated), request_checksum(plain));

  // ...but in pruned mode those fields select the MATE set and must split.
  CampaignRequest pruned = plain;
  pruned.config.mode = hafi::CampaignMode::Pruned;
  CampaignRequest pruned_topn = pruned;
  pruned_topn.top_n = 7;
  EXPECT_NE(request_checksum(pruned_topn), request_checksum(pruned));
}

TEST(Request, SummaryMentionsCoreAndMode) {
  const std::string s = request_summary(sample_request());
  EXPECT_NE(s.find("avr"), std::string::npos);
  EXPECT_NE(s.find("pruned"), std::string::npos);
}

TEST(CoreRegistryTest, BuiltinsResolve) {
  CoreRegistry& reg = CoreRegistry::global();
  EXPECT_TRUE(reg.contains("avr"));
  EXPECT_TRUE(reg.contains("msp430"));
  EXPECT_FALSE(reg.contains("z80"));

  const CoreRuntime rt = reg.make("avr");
  ASSERT_NE(rt.netlist, nullptr);
  EXPECT_NE(rt.fingerprint, 0u);
  EXPECT_TRUE(static_cast<bool>(rt.factory));
  EXPECT_TRUE(static_cast<bool>(rt.batch_factory));
  EXPECT_TRUE(static_cast<bool>(rt.record_trace));
  EXPECT_EQ(rt.workload, "fib"); // empty workload resolves to the default

  const std::vector<std::string> names = reg.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "avr"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "msp430"), names.end());
}

TEST(CoreRegistryTest, UnknownCoreThrowsWithKnownNames) {
  try {
    (void)CoreRegistry::global().make("z80");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("z80"), std::string::npos);
    EXPECT_NE(what.find("avr"), std::string::npos); // lists registered names
  }
}

TEST(Request, RunMatchesHandAssembledSpec) {
  // The redesigned entry point — run(request) resolving everything through
  // the registry — must produce byte-identical results to the CampaignSpec
  // path callers used to assemble by hand.
  const auto cache_dir =
      std::filesystem::temp_directory_path() /
      ("ripple_request_run_" + std::to_string(::getpid()));
  std::filesystem::remove_all(cache_dir);
  std::filesystem::create_directories(cache_dir);

  CampaignRequest request;
  request.core = "avr";
  request.config.run_cycles = 200;
  request.config.sample = 24;
  request.config.seed = 5;
  request.config.threads = 2;
  request.config.shard_size = 6;

  PipelineConfig config;
  config.cache_dir = cache_dir;
  config.threads = 2;
  CampaignPipeline pipe(config);
  const hafi::CampaignResult from_request = pipe.run(request);

  const cores::avr::AvrCore core = cores::avr::build_avr_core(true);
  const cores::avr::Program program = cores::avr::fib_program();
  CampaignSpec spec;
  spec.factory = hafi::make_avr_factory(core, program);
  spec.batch_factory = hafi::make_avr_batch_factory(core, program);
  spec.config = request.config;
  spec.netlist_fingerprint = fingerprint(core.netlist);
  const hafi::CampaignResult from_spec =
      pipe.campaign(std::move(spec), "hand-assembled");

  ByteWriter wa, wb;
  write_campaign_result(wa, from_request);
  write_campaign_result(wb, from_spec);
  EXPECT_EQ(wa.take(), wb.take());

  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);
}

} // namespace
} // namespace ripple::pipeline
