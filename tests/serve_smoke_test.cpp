// End-to-end service smoke (the `serve_smoke` ctest target): spawn the real
// rippled daemon binary, drive it with real ripple-client processes over a
// temp Unix socket, and assert the service path is byte-identical to an
// in-process CampaignPipeline::run of the same request — including a
// concurrent two-client submission deduped onto one execution. Binary paths
// arrive via $RIPPLED_BIN / $RIPPLE_CLIENT_BIN (set by tests/CMakeLists.txt
// from the build's target files). Workload scaled down under RIPPLE_SANITIZED
// so the TSan build stays in the seconds range.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "pipeline/artifact.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/request.hpp"
#include "util/serialize.hpp"
#include "util/socket.hpp"

namespace ripple::serve {
namespace {

#if defined(RIPPLE_SANITIZED)
constexpr std::size_t kRunCycles = 100;
constexpr std::size_t kSample = 12;
constexpr std::size_t kShardSize = 4; // 3 shards
#else
constexpr std::size_t kRunCycles = 200;
constexpr std::size_t kSample = 24;
constexpr std::size_t kShardSize = 6; // 4 shards
#endif

struct TempDir {
  std::filesystem::path path;

  TempDir() {
    const auto base = std::filesystem::temp_directory_path();
    for (int i = 0;; ++i) {
      auto candidate = base / ("ripple_serve_smoke_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(i));
      if (std::filesystem::create_directories(candidate)) {
        path = std::move(candidate);
        return;
      }
    }
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

std::string required_env(const char* name) {
  const char* value = std::getenv(name);
  EXPECT_NE(value, nullptr) << name << " must point at the built binary "
                            << "(set by tests/CMakeLists.txt)";
  return value == nullptr ? std::string() : std::string(value);
}

pid_t spawn(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    ::_exit(127); // exec failed
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -WTERMSIG(status);
}

/// Block until the daemon's socket accepts connections (it binds on
/// startup, after loading nothing — this is fast, but TSan is not).
bool wait_for_socket(const std::string& path, int max_ms = 30000) {
  for (int waited = 0; waited < max_ms; waited += 50) {
    try {
      Socket probe = Socket::connect_unix(path);
      return true;
    } catch (const std::exception&) {
      ::usleep(50 * 1000);
    }
  }
  return false;
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "missing " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(ServeSmoke, RealDaemonMatchesInProcessRunByteForByte) {
  const std::string rippled = required_env("RIPPLED_BIN");
  const std::string client = required_env("RIPPLE_CLIENT_BIN");
  if (rippled.empty() || client.empty()) GTEST_SKIP();

  TempDir dir;
  const std::string socket = (dir.path / "d.sock").string();
  const std::string cache = (dir.path / "cache").string();
  const std::string result1 = (dir.path / "r1.bin").string();
  const std::string result2 = (dir.path / "r2.bin").string();
  const std::string result3 = (dir.path / "r3.bin").string();

  const pid_t daemon = spawn({rippled, "--socket=" + socket,
                              "--cache-dir=" + cache, "--threads=2"});
  ASSERT_GT(daemon, 0);
  ASSERT_TRUE(wait_for_socket(socket)) << "rippled never bound " << socket;

  const auto client_argv = [&](const std::string& out) {
    return std::vector<std::string>{
        client,
        "--socket=" + socket,
        "--run-cycles=" + std::to_string(kRunCycles),
        "--sample=" + std::to_string(kSample),
        "--shard-size=" + std::to_string(kShardSize),
        "--result-out=" + out,
    };
  };

  // One client end to end.
  EXPECT_EQ(wait_exit(spawn(client_argv(result1))), 0);

  // Two concurrent clients with the identical request: the daemon dedupes
  // them onto one execution (which itself replays the first run's shard
  // checkpoints) — both must exit cleanly with byte-identical results.
  const pid_t a = spawn(client_argv(result2));
  const pid_t b = spawn(client_argv(result3));
  EXPECT_EQ(wait_exit(a), 0);
  EXPECT_EQ(wait_exit(b), 0);

  ::kill(daemon, SIGTERM);
  EXPECT_EQ(wait_exit(daemon), 0);

  const std::vector<std::uint8_t> bytes1 = read_file(result1);
  ASSERT_FALSE(bytes1.empty());
  EXPECT_EQ(read_file(result2), bytes1);
  EXPECT_EQ(read_file(result3), bytes1);

  // The oracle: the same request executed in-process, no daemon involved.
  pipeline::CampaignRequest request;
  request.core = "avr";
  request.config.run_cycles = kRunCycles;
  request.config.sample = kSample;
  request.config.shard_size = kShardSize;
  pipeline::PipelineConfig config;
  config.cache_dir = dir.path / "refcache";
  config.threads = 2;
  pipeline::CampaignPipeline pipe(config);
  ByteWriter w;
  pipeline::write_campaign_result(w, pipe.run(request));
  EXPECT_EQ(bytes1, w.take());
}

} // namespace
} // namespace ripple::serve
