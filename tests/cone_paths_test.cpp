#include <gtest/gtest.h>

#include <algorithm>

#include "mate/cone.hpp"
#include "mate/example.hpp"
#include "mate/paths.hpp"
#include "netlist/random.hpp"

namespace ripple::mate {
namespace {

using netlist::Kind;
using netlist::Netlist;

TEST(FaultCone, Figure1ConeOfD) {
  const Figure1Circuit fig = build_figure1_circuit();
  const FaultCone cone = compute_cone(fig.netlist, fig.d);

  // Paper: cone wires {d, g, k, l}, border wires {c, f, h}.
  std::vector<WireId> wires = {fig.d, fig.g, fig.k, fig.l};
  std::sort(wires.begin(), wires.end());
  EXPECT_EQ(cone.wires, wires);

  std::vector<WireId> border = {fig.c, fig.f, fig.h};
  std::sort(border.begin(), border.end());
  EXPECT_EQ(cone.border_wires, border);

  EXPECT_EQ(cone.gates.size(), 3u); // B, D, E
  // Observers: outputs k and l.
  std::vector<WireId> obs = {fig.k, fig.l};
  std::sort(obs.begin(), obs.end());
  EXPECT_EQ(cone.observers, obs);

  EXPECT_TRUE(cone.contains_wire(fig.g));
  EXPECT_FALSE(cone.contains_wire(fig.f));
}

TEST(FaultCone, ConeGatesAreTopologicallySorted) {
  const Figure1Circuit fig = build_figure1_circuit();
  const FaultCone cone = compute_cone(fig.netlist, fig.d);
  // B (producing g) must precede D and E.
  const auto pos = [&](WireId out) {
    for (std::size_t i = 0; i < cone.gates.size(); ++i) {
      if (fig.netlist.gate(cone.gates[i]).output == out) return i;
    }
    return cone.gates.size();
  };
  EXPECT_LT(pos(fig.g), pos(fig.k));
  EXPECT_LT(pos(fig.g), pos(fig.l));
}

TEST(FaultCone, FlopDrivenConeStopsAtFlops) {
  Netlist n;
  const FlopId src = n.add_flop("src", false);
  const FlopId dst = n.add_flop("dst", false);
  const WireId q = n.flop(src).q;
  const WireId x = n.add_gate_new(Kind::Inv, {q}, "x");
  n.connect_flop(dst, x);
  n.connect_flop(src, n.flop(dst).q);
  const WireId y = n.add_gate_new(Kind::Buf, {n.flop(dst).q}, "y");
  n.mark_output(y);

  const FaultCone cone = compute_cone(n, q);
  // The cone must not cross dst's D pin into the next cycle.
  EXPECT_EQ(cone.gates.size(), 1u);
  EXPECT_EQ(cone.observers.size(), 1u);
  EXPECT_EQ(cone.observers[0], x);
}

TEST(Paths, Figure1PathsOfD) {
  const Figure1Circuit fig = build_figure1_circuit();
  const FaultCone cone = compute_cone(fig.netlist, fig.d);
  const PathEnumResult pr = enumerate_paths(fig.netlist, cone, {});
  EXPECT_TRUE(pr.complete);
  EXPECT_FALSE(pr.origin_observable);
  // Paper: two paths [B, D] and [B, E].
  ASSERT_EQ(pr.paths.size(), 2u);
  for (const Path& p : pr.paths) {
    ASSERT_EQ(p.gates.size(), 2u);
    EXPECT_FALSE(p.open);
    EXPECT_EQ(fig.netlist.gate(p.gates[0]).output, fig.g);
  }
}

TEST(Paths, ObservableOriginYieldsEmptyPath) {
  Netlist n;
  const FlopId f = n.add_flop("f", false);
  const WireId q = n.flop(f).q;
  n.connect_flop(f, q); // hold: Q feeds own D
  n.mark_output(q);
  const FaultCone cone = compute_cone(n, q);
  const PathEnumResult pr = enumerate_paths(n, cone, {});
  EXPECT_TRUE(pr.origin_observable);
  ASSERT_GE(pr.paths.size(), 1u);
  EXPECT_TRUE(pr.paths[0].gates.empty());
}

TEST(Paths, DepthHorizonMarksOpenPaths) {
  // A chain of 6 inverters; with max_depth 3 the fault is still alive at the
  // horizon, so exactly one open path of length 3 must be reported.
  Netlist n;
  const WireId a = n.add_input("a");
  WireId x = a;
  for (int i = 0; i < 6; ++i) {
    x = n.add_gate_new(Kind::Inv, {x}, "i" + std::to_string(i));
  }
  n.mark_output(x);
  const FaultCone cone = compute_cone(n, a);
  PathEnumParams params;
  params.max_depth = 3;
  const PathEnumResult pr = enumerate_paths(n, cone, params);
  ASSERT_EQ(pr.paths.size(), 1u);
  EXPECT_TRUE(pr.paths[0].open);
  EXPECT_EQ(pr.paths[0].gates.size(), 3u);
}

TEST(Paths, DeadEndProducesNoPath) {
  // Fault feeds logic that reaches neither an output nor a flop.
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId b = n.add_input("b");
  n.add_gate_new(Kind::And2, {a, b}, "dangling");
  n.mark_output(b);
  const FaultCone cone = compute_cone(n, a);
  const PathEnumResult pr = enumerate_paths(n, cone, {});
  EXPECT_TRUE(pr.complete);
  EXPECT_TRUE(pr.paths.empty());
}

TEST(Paths, BudgetOverflowReportsIncomplete) {
  // A 12-level butterfly: every level doubles the path count.
  Netlist n;
  const WireId a = n.add_input("a");
  std::vector<WireId> level = {a, a};
  for (int l = 0; l < 12; ++l) {
    std::vector<WireId> next;
    for (std::size_t i = 0; i < level.size() && next.size() < 2; ++i) {
      next.push_back(n.add_gate_new(
          Kind::Or2, {level[0], level[level.size() - 1]},
          "n" + std::to_string(l) + "_" + std::to_string(i)));
    }
    level = next;
  }
  n.mark_output(level[0]);
  const FaultCone cone = compute_cone(n, a);
  PathEnumParams params;
  params.max_depth = 16;
  params.max_paths = 100;
  const PathEnumResult pr = enumerate_paths(n, cone, params);
  EXPECT_FALSE(pr.complete);
}

TEST(Paths, CountedAgainstRandomCircuits) {
  // Sanity: every emitted closed path ends at an observer and every gate on
  // a path reads a cone wire.
  Rng rng(5);
  netlist::RandomCircuitSpec spec;
  spec.num_gates = 60;
  spec.num_flops = 8;
  const Netlist n = random_circuit(spec, rng);
  for (FlopId f : n.all_flops()) {
    const FaultCone cone = compute_cone(n, n.flop(f).q);
    const PathEnumResult pr = enumerate_paths(n, cone, {});
    if (!pr.complete) continue;
    for (const Path& p : pr.paths) {
      if (p.gates.empty()) continue;
      for (GateId g : p.gates) {
        const auto& gate = n.gate(g);
        const bool reads_cone =
            std::any_of(gate.inputs.begin(), gate.inputs.end(),
                        [&](WireId w) { return cone.contains_wire(w); });
        EXPECT_TRUE(reads_cone);
      }
      if (!p.open) {
        const WireId end = n.gate(p.gates.back()).output;
        const auto& w = n.wire(end);
        EXPECT_TRUE(w.is_primary_output || !w.flop_fanout.empty());
      }
    }
  }
}

} // namespace
} // namespace ripple::mate
