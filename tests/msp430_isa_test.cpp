#include <gtest/gtest.h>

#include "cores/msp430/assembler.hpp"
#include "cores/msp430/isa.hpp"
#include "cores/msp430/programs.hpp"
#include "util/assert.hpp"

namespace ripple::cores::msp430 {
namespace {

TEST(Msp430Isa, KnownEncodings) {
  // Reference words from the MSP430 family user's guide.
  Instruction i;
  i.format = Instruction::Format::One;
  i.op1 = Op1::Mov;
  i.src = {SrcMode::Reg, 4, 0};
  i.dst_mode = DstMode::Reg;
  i.dst_reg = 5;
  EXPECT_EQ(encode(i), (std::vector<std::uint16_t>{0x4405})); // mov r4, r5

  i.op1 = Op1::Add;
  i.src = {SrcMode::Immediate, 0, 0x1234};
  i.dst_mode = DstMode::Reg;
  i.dst_reg = 7;
  EXPECT_EQ(encode(i),
            (std::vector<std::uint16_t>{0x5037, 0x1234})); // add #0x1234, r7

  i.op1 = Op1::Mov;
  i.src = {SrcMode::AutoInc, 6, 0};
  i.dst_mode = DstMode::Reg;
  i.dst_reg = 8;
  EXPECT_EQ(encode(i), (std::vector<std::uint16_t>{0x4638})); // mov @r6+, r8

  i.src = {SrcMode::Indexed, 4, 6};
  i.dst_mode = DstMode::Indexed;
  i.dst_reg = 5;
  i.dst_ext = 8;
  EXPECT_EQ(encode(i), (std::vector<std::uint16_t>{0x4495, 6, 8}));

  i.src = {SrcMode::Absolute, 2, 0x0200};
  i.dst_mode = DstMode::Reg;
  i.dst_reg = 9;
  EXPECT_EQ(encode(i),
            (std::vector<std::uint16_t>{0x4219, 0x0200})); // mov &0x200, r9

  Instruction j;
  j.format = Instruction::Format::Jump;
  j.cond = Cond::Jne;
  j.offset = -4;
  EXPECT_EQ(encode(j), (std::vector<std::uint16_t>{0x23fc})); // jne $-6

  Instruction f2;
  f2.format = Instruction::Format::Two;
  f2.op2 = Op2::Rra;
  f2.reg2 = 12;
  EXPECT_EQ(encode(f2), (std::vector<std::uint16_t>{0x110c})); // rra r12
}

TEST(Msp430Isa, EncodeRejectsSpecialRegisters) {
  Instruction i;
  i.format = Instruction::Format::One;
  i.op1 = Op1::Add;
  i.src = {SrcMode::Reg, 0, 0}; // PC as register-mode source
  i.dst_mode = DstMode::Reg;
  i.dst_reg = 5;
  EXPECT_THROW(encode(i), Error);
  i.src = {SrcMode::Reg, 2, 0}; // SR
  EXPECT_THROW(encode(i), Error);
  i.src = {SrcMode::Reg, 4, 0};
  i.dst_reg = 2; // SR as destination
  EXPECT_THROW(encode(i), Error);

  Instruction f2;
  f2.format = Instruction::Format::Two;
  f2.op2 = Op2::Rra;
  f2.reg2 = 0;
  EXPECT_THROW(encode(f2), Error);
}

TEST(Msp430Isa, JumpOffsetRange) {
  Instruction j;
  j.format = Instruction::Format::Jump;
  j.cond = Cond::Jmp;
  j.offset = 511;
  EXPECT_NO_THROW(encode(j));
  j.offset = 512;
  EXPECT_THROW(encode(j), Error);
  j.offset = -512;
  EXPECT_NO_THROW(encode(j));
  j.offset = -513;
  EXPECT_THROW(encode(j), Error);
}

TEST(Msp430Isa, DecodeRejectsOutsideSubset) {
  EXPECT_FALSE(decode({0x1204}, 0).has_value()); // push r4
  EXPECT_FALSE(decode({0x4465}, 0).has_value()); // byte mode (mov.b)
  EXPECT_FALSE(decode({0x4037}, 0).has_value()); // immediate missing ext word
}

struct RtCase {
  Instruction insn;
};

Instruction fmt1(Op1 op, Operand src, DstMode dm, std::uint8_t dreg,
                 std::uint16_t dext = 0) {
  Instruction i;
  i.format = Instruction::Format::One;
  i.op1 = op;
  i.src = src;
  i.dst_mode = dm;
  i.dst_reg = dreg;
  i.dst_ext = dext;
  return i;
}

class Msp430RoundTrip : public ::testing::TestWithParam<Instruction> {};

TEST_P(Msp430RoundTrip, EncodeDecodeIdentity) {
  const Instruction in = GetParam();
  const auto words = encode(in);
  EXPECT_EQ(words.size(), encoded_length(in));
  const auto out = decode(words, 0);
  ASSERT_TRUE(out.has_value()) << disassemble(words, 0);
  EXPECT_EQ(*out, in) << disassemble(words, 0);
}

std::vector<Instruction> round_trip_cases() {
  std::vector<Instruction> cases;
  for (Op1 op : {Op1::Mov, Op1::Add, Op1::Addc, Op1::Subc, Op1::Sub,
                 Op1::Cmp, Op1::Bit, Op1::Bic, Op1::Bis, Op1::Xor,
                 Op1::And}) {
    cases.push_back(fmt1(op, {SrcMode::Reg, 4, 0}, DstMode::Reg, 5));
    cases.push_back(fmt1(op, {SrcMode::Immediate, 0, 0xbeef},
                         DstMode::Reg, 7));
    cases.push_back(fmt1(op, {SrcMode::Indexed, 6, 12},
                         DstMode::Indexed, 9, 4));
    cases.push_back(fmt1(op, {SrcMode::AutoInc, 11, 0},
                         DstMode::Absolute, 2, 0x220));
    cases.push_back(fmt1(op, {SrcMode::Indirect, 15, 0}, DstMode::Reg, 1));
    cases.push_back(fmt1(op, {SrcMode::Absolute, 2, 0xfffe},
                         DstMode::Reg, 3));
  }
  for (Op2 op : {Op2::Rrc, Op2::Swpb, Op2::Rra, Op2::Sxt}) {
    Instruction i;
    i.format = Instruction::Format::Two;
    i.op2 = op;
    i.reg2 = 13;
    cases.push_back(i);
  }
  for (Cond c : {Cond::Jne, Cond::Jeq, Cond::Jnc, Cond::Jc, Cond::Jn,
                 Cond::Jge, Cond::Jl, Cond::Jmp}) {
    Instruction i;
    i.format = Instruction::Format::Jump;
    i.cond = c;
    i.offset = static_cast<std::int16_t>(static_cast<int>(c) * 37 - 100);
    cases.push_back(i);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Subset, Msp430RoundTrip,
                         ::testing::ValuesIn(round_trip_cases()));

TEST(Msp430Asm, LabelsJumpsAndModes) {
  const Image img = assemble(R"(
.equ BUF, 0x200
start:
    mov #5, r4
loop:
    sub #1, r4
    jne loop
    mov r4, &BUF
    mov 2(r5), r6
    mov @r7+, r8
    jmp start
)");
  // mov #5, r4 = 2 words; sub #1, r4 = 2; jne = 1; mov r4,&BUF = 2;
  // mov 2(r5),r6 = 2; mov @r7+,r8 = 1; jmp = 1. Total 11 words.
  ASSERT_EQ(img.words.size(), 11u);
  const auto jne = decode(img.words, 4);
  ASSERT_TRUE(jne.has_value());
  // jne loop: from byte 8 (word 4) back to byte 4: offset = (4-10)/2 = -3.
  EXPECT_EQ(jne->offset, -3);
  const auto jmp = decode(img.words, 10);
  EXPECT_EQ(jmp->offset, (0 - (20 + 2)) / 2);
}

TEST(Msp430Asm, AliasesAndDirectives) {
  const Image img = assemble(R"(
.org 4
    nop
    br #0x10
    clr r9
.word 0xdead, 0xbeef
)");
  // .org 4 -> two zero words first.
  EXPECT_EQ(img.words[0], 0u);
  const auto nop = decode(img.words, 2);
  ASSERT_TRUE(nop.has_value());
  EXPECT_EQ(nop->op1, Op1::Mov); // mov r3, r3
  EXPECT_EQ(nop->src.reg, 3);
  EXPECT_EQ(nop->dst_reg, 3);
  const auto br = decode(img.words, 3);
  EXPECT_EQ(br->dst_reg, 0); // pc
  EXPECT_EQ(br->src.ext, 0x10);
  const auto clr = decode(img.words, 5);
  EXPECT_EQ(clr->src.mode, SrcMode::Immediate);
  EXPECT_EQ(clr->dst_reg, 9);
  EXPECT_EQ(img.words[7], 0xdead);
  EXPECT_EQ(img.words[8], 0xbeef);
}

TEST(Msp430Asm, SymbolArithmetic) {
  const Image img = assemble(R"(
.equ BASE, 0x200
    mov #BASE+4, r4
    mov #BASE-2, r5
)");
  EXPECT_EQ(img.words[1], 0x204);
  EXPECT_EQ(img.words[3], 0x1fe);
}

TEST(Msp430Asm, ForwardLabelInImmediate) {
  const Image img = assemble(R"(
    br #target
    nop
target:
    nop
)");
  EXPECT_EQ(img.words[1], 6u); // byte address of `target`
}

TEST(Msp430Asm, Errors) {
  EXPECT_THROW(assemble("bogus r1"), Error);
  EXPECT_THROW(assemble("mov r4"), Error);
  EXPECT_THROW(assemble("mov r0, r4"), Error);  // PC as reg-mode source
  EXPECT_THROW(assemble("mov r4, r2"), Error);  // SR destination
  EXPECT_THROW(assemble("jne nowhere"), Error);
  EXPECT_THROW(assemble(".org 3\n nop"), Error);
  EXPECT_THROW(assemble("x: nop\nx: nop"), Error);
}

TEST(Msp430Asm, WorkloadsAssemble) {
  EXPECT_GT(fib_image().words.size(), 10u);
  EXPECT_GT(conv_image().words.size(), 40u);
}

TEST(Msp430Isa, DisassembleSamples) {
  EXPECT_EQ(disassemble({0x4405}, 0), "mov r4, r5");
  EXPECT_EQ(disassemble({0x5037, 0x1234}, 0), "add #0x1234, r7");
  EXPECT_EQ(disassemble({0x110c}, 0), "rra r12");
  EXPECT_EQ(disassemble({0x3c02}, 0), "jmp .+2");
  EXPECT_EQ(disassemble({0x1204}, 0), ".word 0x1204");
}

} // namespace
} // namespace ripple::cores::msp430
