// Differential fuzzing of the gate-level AVR core against an independent
// ISA-level reference emulator: random instruction mixes (ALU, immediates,
// loads/stores, forward branches, port writes) must produce identical
// output sequences and identical data memory.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cores/avr/core.hpp"
#include "cores/avr/isa.hpp"
#include "cores/avr/system.hpp"

#include "avr_ref.hpp"
#include "util/rng.hpp"

namespace ripple::cores::avr {
namespace {

class AvrDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AvrDifferential, CoreMatchesReferenceModel) {
  Rng rng(GetParam() * 1337 + 11);
  const Program prog = random_program(rng, 60);

  static const AvrCore& core = []() -> const AvrCore& {
    static const AvrCore c = build_avr_core(true);
    return c;
  }();

  AvrSystem sys(core, prog);
  // Every instruction retires in one EX cycle; branches cost one bubble.
  sys.run(3 * prog.words.size() + 20);

  AvrRef ref(prog.words);
  ref.run(10 * prog.words.size());

  ASSERT_EQ(sys.io_log().size(), ref.outputs().size());
  for (std::size_t i = 0; i < ref.outputs().size(); ++i) {
    EXPECT_EQ(sys.io_log()[i].addr, ref.outputs()[i].addr) << "event " << i;
    EXPECT_EQ(sys.io_log()[i].data, ref.outputs()[i].data)
        << "event " << i << " of seed " << GetParam();
  }
  for (std::size_t a = 0; a < 256; ++a) {
    EXPECT_EQ(sys.dmem()[a], ref.dmem()[a]) << "dmem[" << a << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvrDifferential,
                         ::testing::Range<std::uint64_t>(0, 40));

} // namespace
} // namespace ripple::cores::avr
