#include <gtest/gtest.h>

#include <algorithm>

#include "mate/gate_masking.hpp"

namespace ripple::mate {
namespace {

using cell::Kind;

bool contains(const std::vector<PinCube>& cubes, PinCube c) {
  return std::find(cubes.begin(), cubes.end(), c) != cubes.end();
}

TEST(GateMasking, And2SideZeroMasks) {
  // Paper: GM(AND, {A}) = { B=0 }.
  const auto cubes = compute_masking_cubes(Kind::And2, 0b01);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0], (PinCube{0b10, 0b00}));
}

TEST(GateMasking, Or2SideOneMasks) {
  const auto cubes = compute_masking_cubes(Kind::Or2, 0b01);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0], (PinCube{0b10, 0b10}));
}

TEST(GateMasking, XorNeverMasks) {
  // Paper: "B is an XOR gate, it has no fault-masking capabilities".
  EXPECT_TRUE(compute_masking_cubes(Kind::Xor2, 0b01).empty());
  EXPECT_TRUE(compute_masking_cubes(Kind::Xor2, 0b10).empty());
  EXPECT_TRUE(compute_masking_cubes(Kind::Xnor2, 0b01).empty());
}

TEST(GateMasking, InverterAndBufferNeverMask) {
  EXPECT_TRUE(compute_masking_cubes(Kind::Inv, 0b1).empty());
  EXPECT_TRUE(compute_masking_cubes(Kind::Buf, 0b1).empty());
}

TEST(GateMasking, MuxFaultySelect) {
  // Paper: GM(MUX, {x}) = { (!a & !b), (a & b) } — equal data legs.
  // Our MUX2 pins: S=0, A=1, B=2.
  const auto cubes = compute_masking_cubes(Kind::Mux2, 0b001);
  ASSERT_EQ(cubes.size(), 2u);
  EXPECT_TRUE(contains(cubes, PinCube{0b110, 0b000}));
  EXPECT_TRUE(contains(cubes, PinCube{0b110, 0b110}));
}

TEST(GateMasking, MuxFaultyDataLeg) {
  // Fault on A is masked when S selects B.
  const auto cubes = compute_masking_cubes(Kind::Mux2, 0b010);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0], (PinCube{0b001, 0b001}));
  // Fault on B is masked when S selects A.
  const auto cubes_b = compute_masking_cubes(Kind::Mux2, 0b100);
  ASSERT_EQ(cubes_b.size(), 1u);
  EXPECT_EQ(cubes_b[0], (PinCube{0b001, 0b000}));
}

TEST(GateMasking, And3TwoFaultyInputs) {
  // Any healthy side input at 0 masks both faulty pins.
  const auto cubes = compute_masking_cubes(Kind::And3, 0b011);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0], (PinCube{0b100, 0b000}));
}

TEST(GateMasking, AllInputsFaultyCannotMask) {
  EXPECT_TRUE(compute_masking_cubes(Kind::And2, 0b11).empty());
  EXPECT_TRUE(compute_masking_cubes(Kind::Mux2, 0b111).empty());
}

TEST(GateMasking, Aoi21Cases) {
  // AOI21 = !((A&B) | C); pins A=0,B=1,C=2.
  // Fault on A masked when B=0 (kills the AND) ... but only if that fixes
  // the output: out = !C then, independent of A. So GM = { B=0 } U { C=1 }.
  const auto cubes = compute_masking_cubes(Kind::Aoi21, 0b001);
  EXPECT_TRUE(contains(cubes, PinCube{0b010, 0b000}));
  EXPECT_TRUE(contains(cubes, PinCube{0b100, 0b100}));
  EXPECT_EQ(cubes.size(), 2u);
  // Fault on C masked when A&B (output pinned to 0).
  const auto cubes_c = compute_masking_cubes(Kind::Aoi21, 0b100);
  ASSERT_EQ(cubes_c.size(), 1u);
  EXPECT_EQ(cubes_c[0], (PinCube{0b011, 0b011}));
}

TEST(GateMasking, CubesAreMaximal) {
  // No returned cube may be a specialization of another.
  for (Kind k : cell::Library::instance().combinational_kinds()) {
    const std::size_t n = cell::num_inputs(k);
    if (n == 0) continue;
    for (std::uint8_t mask = 1; mask < (1u << n); ++mask) {
      const auto cubes = compute_masking_cubes(k, mask);
      for (const PinCube& a : cubes) {
        for (const PinCube& b : cubes) {
          if (a == b) continue;
          const bool a_subsumes_b =
              (a.care & ~b.care) == 0 && (b.value & a.care) == a.value;
          EXPECT_FALSE(a_subsumes_b) << cell::name(k);
        }
      }
    }
  }
}

TEST(GateMasking, TableMatchesDirectComputation) {
  const GateMaskingTable& table = GateMaskingTable::instance();
  EXPECT_EQ(table.terms(Kind::And2, 0b01),
            compute_masking_cubes(Kind::And2, 0b01));
  EXPECT_TRUE(table.can_mask(Kind::Or3, 0b001));
  EXPECT_FALSE(table.can_mask(Kind::Xor2, 0b01));
  EXPECT_TRUE(table.terms(Kind::And2, 0).empty()) << "no faulty pins";
}

// Property: every cube really masks — for each assignment satisfying the
// cube, the output is constant over all faulty-pin combinations; and no
// masking assignment escapes the returned cube set (completeness).
struct Case {
  Kind kind;
  std::uint8_t mask;
};

class MaskingProperty : public ::testing::TestWithParam<Case> {};

TEST_P(MaskingProperty, SoundAndComplete) {
  const auto [kind, mask] = GetParam();
  const cell::Info& ci = cell::info(kind);
  if (mask >= (1u << ci.num_inputs)) GTEST_SKIP();
  const auto cubes = compute_masking_cubes(kind, mask);

  const std::uint32_t all = (1u << ci.num_inputs) - 1;
  const std::uint32_t free_mask = all & ~mask;
  for (std::uint32_t base = 0; base <= all; ++base) {
    if ((base & mask) != 0) continue; // faulty pins fixed at 0 in base
    // Is this free-pin assignment masking (reference computation)?
    bool constant = true;
    const bool first = cell::eval(kind, base);
    for (std::uint32_t f = mask; ; f = (f - 1) & mask) {
      if (cell::eval(kind, base | f) != first) constant = false;
      if (f == 0) break;
    }
    // Does some cube claim it?
    const bool claimed =
        std::any_of(cubes.begin(), cubes.end(), [&](const PinCube& c) {
          return (base & free_mask & c.care) == c.value;
        });
    EXPECT_EQ(claimed, constant)
        << cell::name(kind) << " mask=" << int(mask) << " base=" << base;
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (Kind k : cell::Library::instance().combinational_kinds()) {
    const std::size_t n = cell::num_inputs(k);
    for (std::uint8_t m = 1; m < (1u << n); ++m) {
      cases.push_back(Case{k, m});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCellsAllMasks, MaskingProperty,
                         ::testing::ValuesIn(all_cases()));

} // namespace
} // namespace ripple::mate
