#include <gtest/gtest.h>

#include "rtl/components.hpp"
#include "rtl/module.hpp"
#include "rtl/ports.hpp"
#include "sim/levelize.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace ripple::rtl {
namespace {

/// Evaluate a pure-combinational module for one input assignment.
struct Harness {
  explicit Harness(netlist::Netlist n) : nl(std::move(n)), sim(nl) {}
  netlist::Netlist nl;
  sim::Simulator sim;

  std::uint64_t eval(const Bus& in, std::uint64_t v, const Bus& out) {
    sim.drive_bus(in, v);
    sim.eval();
    return sim.read_bus(out);
  }
};

TEST(Rtl, AddProducesSumAndCarry) {
  Module m("add");
  const Bus a = m.input_bus("a", 8);
  const Bus b = m.input_bus("b", 8);
  const AddResult r = m.add(a, b);
  m.output_bus(r.sum);
  m.output(r.carry);
  const WireId carry = r.carry;
  const Bus sum = r.sum;
  Harness h(m.take());
  for (unsigned x : {0u, 1u, 17u, 200u, 255u}) {
    for (unsigned y : {0u, 3u, 99u, 255u}) {
      h.sim.drive_bus(a, x);
      h.sim.drive_bus(b, y);
      h.sim.eval();
      EXPECT_EQ(h.sim.read_bus(sum), (x + y) & 0xff);
      EXPECT_EQ(h.sim.value(carry), ((x + y) >> 8) != 0);
    }
  }
}

TEST(Rtl, AddSubSubtracts) {
  Module m("sub");
  const Bus a = m.input_bus("a", 8);
  const Bus b = m.input_bus("b", 8);
  const WireId sub = m.input("sub");
  const AddResult r = m.add_sub(a, b, sub);
  m.output_bus(r.sum);
  m.output(r.carry);
  const Bus sum = r.sum;
  const WireId carry = r.carry;
  Harness h(m.take());
  h.sim.set_input(sub, true);
  for (unsigned x : {0u, 5u, 130u, 255u}) {
    for (unsigned y : {0u, 5u, 131u}) {
      h.sim.drive_bus(a, x);
      h.sim.drive_bus(b, y);
      h.sim.eval();
      EXPECT_EQ(h.sim.read_bus(sum), (x - y) & 0xff);
      // adder carry out = !borrow
      EXPECT_EQ(h.sim.value(carry), x >= y);
    }
  }
}

TEST(Rtl, AddOverflowFlag) {
  Module m("ovf");
  const Bus a = m.input_bus("a", 8);
  const Bus b = m.input_bus("b", 8);
  const AddResult r = m.add(a, b);
  m.output(r.overflow);
  const WireId ovf = r.overflow;
  Harness h(m.take());
  const auto check = [&](unsigned x, unsigned y) {
    h.sim.drive_bus(a, x);
    h.sim.drive_bus(b, y);
    h.sim.eval();
    const int sx = static_cast<std::int8_t>(x);
    const int sy = static_cast<std::int8_t>(y);
    const int s = sx + sy;
    EXPECT_EQ(h.sim.value(ovf), s < -128 || s > 127) << x << "+" << y;
  };
  check(0x7f, 0x01); // overflow
  check(0x80, 0x80); // overflow (negative)
  check(0x01, 0x01); // fine
  check(0xff, 0x01); // -1 + 1, fine
}

TEST(Rtl, EqualsAndEqualsConst) {
  Module m("eq");
  const Bus a = m.input_bus("a", 6);
  const Bus b = m.input_bus("b", 6);
  const WireId eq = m.equals(a, b);
  const WireId eq42 = m.equals_const(a, 42);
  m.output(eq);
  m.output(eq42);
  Harness h(m.take());
  h.sim.drive_bus(a, 42);
  h.sim.drive_bus(b, 42);
  h.sim.eval();
  EXPECT_TRUE(h.sim.value(eq));
  EXPECT_TRUE(h.sim.value(eq42));
  h.sim.drive_bus(b, 41);
  h.sim.eval();
  EXPECT_FALSE(h.sim.value(eq));
}

TEST(Rtl, MuxTreeSelects) {
  Module m("mt");
  const Bus sel = m.input_bus("sel", 2);
  std::vector<Bus> options;
  for (unsigned i = 0; i < 4; ++i) {
    options.push_back(m.constant_bus(8, 10 + i));
  }
  const Bus out = m.mux_tree(sel, options);
  m.output_bus(out);
  Harness h(m.take());
  for (unsigned i = 0; i < 4; ++i) {
    h.sim.drive_bus(sel, i);
    h.sim.eval();
    EXPECT_EQ(h.sim.read_bus(out), 10 + i);
  }
}

TEST(Rtl, MuxTreeOddCount) {
  Module m("mt3");
  const Bus sel = m.input_bus("sel", 2);
  std::vector<Bus> options = {m.constant_bus(4, 1), m.constant_bus(4, 2),
                              m.constant_bus(4, 3)};
  const Bus out = m.mux_tree(sel, options);
  m.output_bus(out);
  Harness h(m.take());
  h.sim.drive_bus(sel, 2);
  h.sim.eval();
  EXPECT_EQ(h.sim.read_bus(out), 3u);
}

TEST(Rtl, DecodeOneHot) {
  Module m("dec");
  const Bus sel = m.input_bus("sel", 3);
  const Bus out = m.decode(sel, 8);
  m.output_bus(out);
  Harness h(m.take());
  for (unsigned i = 0; i < 8; ++i) {
    h.sim.drive_bus(sel, i);
    h.sim.eval();
    EXPECT_EQ(h.sim.read_bus(out), 1u << i);
  }
}

TEST(Rtl, ShiftHelpers) {
  Module m("sh");
  const Bus a = m.input_bus("a", 8);
  const WireId fill = m.input("fill");
  const Bus l = m.shift_left_const(a, 2);
  const Bus r = m.shift_right_const(a, 1, fill);
  m.output_bus(l);
  m.output_bus(r);
  Harness h(m.take());
  h.sim.drive_bus(a, 0b10110101);
  h.sim.set_input(fill, true);
  h.sim.eval();
  EXPECT_EQ(h.sim.read_bus(l), 0b11010100u);
  EXPECT_EQ(h.sim.read_bus(r), 0b11011010u);
}

TEST(Rtl, SignZeroExtend) {
  Module m("ext");
  const Bus a = m.input_bus("a", 4);
  const Bus z = m.zero_extend(a, 8);
  const Bus s = m.sign_extend(a, 8);
  m.output_bus(z);
  m.output_bus(s);
  Harness h(m.take());
  h.sim.drive_bus(a, 0b1010);
  h.sim.eval();
  EXPECT_EQ(h.sim.read_bus(z), 0b00001010u);
  EXPECT_EQ(h.sim.read_bus(s), 0b11111010u);
}

TEST(Rtl, AndOrAllReductions) {
  Module m("red");
  const Bus a = m.input_bus("a", 9);
  m.output(m.and_all(a));
  m.output(m.or_all(a));
  const WireId all = m.peek().primary_outputs()[0];
  const WireId any = m.peek().primary_outputs()[1];
  Harness h(m.take());
  h.sim.drive_bus(a, 0x1ff);
  h.sim.eval();
  EXPECT_TRUE(h.sim.value(all));
  EXPECT_TRUE(h.sim.value(any));
  h.sim.drive_bus(a, 0x0ff);
  h.sim.eval();
  EXPECT_FALSE(h.sim.value(all));
  EXPECT_TRUE(h.sim.value(any));
  h.sim.drive_bus(a, 0);
  h.sim.eval();
  EXPECT_FALSE(h.sim.value(any));
}

/// Differential property: the Kogge-Stone prefix adder (add) and the
/// ripple-carry reference (add_ripple) agree on sum, carry and overflow for
/// every width and random operands, including the carry-in.
class AdderWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderWidth, KoggeStoneMatchesRipple) {
  const std::size_t width = GetParam();
  Module m("adders");
  const Bus a = m.input_bus("a", width);
  const Bus b = m.input_bus("b", width);
  const WireId cin = m.input("cin");
  const AddResult ks = m.add(a, b, cin);
  const AddResult rp = m.add_ripple(a, b, cin);
  m.output_bus(ks.sum);
  m.output_bus(rp.sum);
  m.output(ks.carry);
  m.output(rp.carry);
  m.output(ks.overflow);
  m.output(rp.overflow);
  netlist::Netlist n = m.take();
  sim::Simulator sim(n);

  Rng rng(width * 31 + 7);
  const std::uint64_t mask =
      width == 64 ? ~0ull : ((1ull << width) - 1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t x = rng.next_u64() & mask;
    const std::uint64_t y = rng.next_u64() & mask;
    const bool c = rng.next_bool();
    sim.drive_bus(a, x);
    sim.drive_bus(b, y);
    sim.set_input(cin, c);
    sim.eval();
    EXPECT_EQ(sim.read_bus(ks.sum), sim.read_bus(rp.sum))
        << width << "-bit " << x << "+" << y << "+" << c;
    EXPECT_EQ(sim.value(ks.carry), sim.value(rp.carry));
    EXPECT_EQ(sim.value(ks.overflow), sim.value(rp.overflow));
    // And against plain arithmetic.
    EXPECT_EQ(sim.read_bus(ks.sum), (x + y + (c ? 1 : 0)) & mask);
    EXPECT_EQ(sim.value(ks.carry),
              ((x + y + (c ? 1 : 0)) >> width) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidth,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 11, 12, 16, 17,
                                           24, 32));

TEST(Rtl, KoggeStoneDepthIsLogarithmic) {
  Module m("ksdepth");
  const Bus a = m.input_bus("a", 16);
  const Bus b = m.input_bus("b", 16);
  const AddResult r = m.add(a, b);
  m.output_bus(r.sum);
  m.output(r.carry);
  const netlist::Netlist n = m.take();
  const sim::Levelization lv = sim::levelize(n);
  // pg(1) + 4 prefix levels + carry fold + sum = 7 levels.
  EXPECT_LE(lv.depth, 8u);
}

TEST(Rtl, StateAndNextEn) {
  Module m("cnt");
  const WireId en = m.input("en");
  const Bus q = m.state("cnt", 4, 0);
  m.next_en(q, en, m.add(q, m.constant_bus(4, 1)).sum);
  m.output_bus(q);
  netlist::Netlist n = m.take();
  sim::Simulator sim(n);
  sim.set_input(en, false);
  sim.step();
  sim.eval();
  EXPECT_EQ(sim.read_bus(q), 0u);
  sim.set_input(en, true);
  sim.step();
  sim.step();
  sim.eval();
  EXPECT_EQ(sim.read_bus(q), 2u);
}

TEST(Rtl, StateInitValue) {
  Module m("init");
  const Bus q = m.state("q", 8, 0xa5);
  m.next(q, q);
  m.output_bus(q);
  netlist::Netlist n = m.take();
  sim::Simulator sim(n);
  sim.eval();
  EXPECT_EQ(sim.read_bus(q), 0xa5u);
}

TEST(Rtl, TakeRejectsUnconnectedState) {
  Module m("bad");
  m.state("q", 2, 0);
  EXPECT_THROW(m.take(), Error);
}

TEST(Rtl, RegfileReadWrite) {
  Module m("rf");
  const Bus waddr = m.input_bus("waddr", 3);
  const Bus raddr = m.input_bus("raddr", 3);
  const WireId wen = m.input("wen");
  const Bus wdata = m.input_bus("wdata", 8);
  RegFile rf = make_regfile(m, "r", 8, 8);
  const Bus rdata = regfile_read(m, rf, raddr);
  regfile_write(m, rf, waddr, wen, wdata);
  m.output_bus(rdata);
  netlist::Netlist n = m.take();
  sim::Simulator sim(n);

  // Write 3 -> r5, then read it back.
  sim.drive_bus(waddr, 5);
  sim.drive_bus(wdata, 0x33);
  sim.set_input(wen, true);
  sim.step();
  sim.set_input(wen, false);
  sim.drive_bus(raddr, 5);
  sim.eval();
  EXPECT_EQ(sim.read_bus(rdata), 0x33u);
  sim.drive_bus(raddr, 4);
  sim.eval();
  EXPECT_EQ(sim.read_bus(rdata), 0u) << "other registers untouched";
}

TEST(Rtl, NamedOutputsResolvable) {
  Module m("ports");
  const Bus a = m.input_bus("a", 4);
  name_output_bus(m, a, "echo");
  name_output(m, a[0], "bit0");
  netlist::Netlist n = m.take();
  EXPECT_NO_THROW(find_bus(n, "echo", 4));
  EXPECT_NO_THROW(find_wire_checked(n, "bit0"));
  EXPECT_THROW(find_bus(n, "echo", 5), Error);
  EXPECT_THROW(find_wire_checked(n, "nope"), Error);
}

} // namespace
} // namespace ripple::rtl
