// Cone-isomorphism dedup (mate/iso.hpp): canonical fingerprints, cube
// remapping, the both-direction minimality recorder, and the end-to-end
// guarantee that find_mates with dedup on is byte-identical to the per-wire
// oracle — on hand-built twins, random circuits and both cores' flop sets.
#include <gtest/gtest.h>

#include <algorithm>

#include "cores/avr/core.hpp"
#include "cores/msp430/core.hpp"
#include "mate/iso.hpp"
#include "mate/search.hpp"
#include "netlist/random.hpp"
#include "util/rng.hpp"

namespace ripple::mate {
namespace {

using netlist::Kind;
using netlist::Netlist;

/// Two structurally identical single-AND cones behind flops fa/fb, gated by
/// distinct enable inputs, plus an OR-shaped third cone. Exercises match,
/// kind mismatch and pin-binding mismatch.
struct TwinCircuit {
  Netlist n;
  FlopId fa, fb, fc;
  WireId ena, enb, enc;
};

TwinCircuit build_twins() {
  TwinCircuit t;
  t.ena = t.n.add_input("ena");
  t.enb = t.n.add_input("enb");
  t.enc = t.n.add_input("enc");
  t.fa = t.n.add_flop("fa", false);
  t.fb = t.n.add_flop("fb", false);
  t.fc = t.n.add_flop("fc", false);
  const FlopId ta = t.n.add_flop("ta", false);
  const FlopId tb = t.n.add_flop("tb", false);
  const FlopId tc = t.n.add_flop("tc", false);
  t.n.connect_flop(
      ta, t.n.add_gate_new(Kind::And2, {t.n.flop(t.fa).q, t.ena}, "ka"));
  t.n.connect_flop(
      tb, t.n.add_gate_new(Kind::And2, {t.n.flop(t.fb).q, t.enb}, "kb"));
  t.n.connect_flop(
      tc, t.n.add_gate_new(Kind::Or2, {t.n.flop(t.fc).q, t.enc}, "kc"));
  t.n.connect_flop(t.fa, t.ena);
  t.n.connect_flop(t.fb, t.enb);
  t.n.connect_flop(t.fc, t.enc);
  t.n.mark_output(t.n.flop(ta).q);
  t.n.mark_output(t.n.flop(tb).q);
  t.n.mark_output(t.n.flop(tc).q);
  return t;
}

/// Everything that must be byte-identical between dedup on and off. Timing
/// fields and the informational threads_used/dedup_classes are excluded,
/// exactly like the cached-artifact replay path treats them.
void expect_identical(const SearchResult& oracle, const SearchResult& dedup) {
  EXPECT_EQ(oracle.set.mates.size(), dedup.set.mates.size());
  EXPECT_TRUE(oracle.set == dedup.set);
  ASSERT_EQ(oracle.outcomes.size(), dedup.outcomes.size());
  for (std::size_t i = 0; i < oracle.outcomes.size(); ++i) {
    const WireOutcome& x = oracle.outcomes[i];
    const WireOutcome& y = dedup.outcomes[i];
    EXPECT_EQ(x.wire, y.wire);
    EXPECT_EQ(x.status, y.status) << "wire index " << i;
    EXPECT_EQ(x.cone_gates, y.cone_gates);
    EXPECT_EQ(x.border_wires, y.border_wires);
    EXPECT_EQ(x.num_paths, y.num_paths);
    EXPECT_EQ(x.candidates_tried, y.candidates_tried) << "wire index " << i;
    EXPECT_EQ(x.mates_found, y.mates_found) << "wire index " << i;
  }
  EXPECT_EQ(oracle.total_candidates, dedup.total_candidates);
  EXPECT_EQ(oracle.total_mates, dedup.total_mates);
  EXPECT_EQ(oracle.unmaskable_wires, dedup.unmaskable_wires);
}

SearchResult run_mode(const Netlist& n, const std::vector<WireId>& wires,
                      SearchParams params, bool dedup) {
  params.dedup = dedup;
  return find_mates(n, wires, params);
}

TEST(IsoFingerprint, TwinConesMatchDifferentShapesDont) {
  const TwinCircuit t = build_twins();
  const auto topo = topo_positions(t.n);
  const FaultCone ca = compute_cone(t.n, t.n.flop(t.fa).q, topo);
  const FaultCone cb = compute_cone(t.n, t.n.flop(t.fb).q, topo);
  const FaultCone cc = compute_cone(t.n, t.n.flop(t.fc).q, topo);

  const ConeSignature sa = fingerprint_cone(t.n, ca);
  const ConeSignature sb = fingerprint_cone(t.n, cb);
  const ConeSignature sc = fingerprint_cone(t.n, cc);

  EXPECT_TRUE(sa == sb);
  EXPECT_EQ(sa.digest, sb.digest);
  EXPECT_EQ(sa.cone_gates, 1u);
  // Same gate count and border size, different cell kind -> different class.
  EXPECT_FALSE(sa == sc);

  // The border correspondence is positional over the sorted border lists.
  ASSERT_EQ(ca.border_wires.size(), cb.border_wires.size());
  EXPECT_EQ(ca.border_wires[0], t.ena);
  EXPECT_EQ(cb.border_wires[0], t.enb);
}

TEST(IsoFingerprint, PinBindingDistinguishesCones) {
  // Two AND cones whose faulty flop enters at pin 0 vs pin 1: structurally
  // different searches (the faulty_mask differs), so they must not class
  // together even though gate kind, counts and border sizes all match.
  Netlist n;
  const WireId ena = n.add_input("ena");
  const WireId enb = n.add_input("enb");
  const FlopId fa = n.add_flop("fa", false);
  const FlopId fb = n.add_flop("fb", false);
  const FlopId ta = n.add_flop("ta", false);
  const FlopId tb = n.add_flop("tb", false);
  n.connect_flop(ta, n.add_gate_new(Kind::And2, {n.flop(fa).q, ena}, "ka"));
  n.connect_flop(tb, n.add_gate_new(Kind::And2, {enb, n.flop(fb).q}, "kb"));
  n.connect_flop(fa, ena);
  n.connect_flop(fb, enb);
  n.mark_output(n.flop(ta).q);
  n.mark_output(n.flop(tb).q);

  const auto topo = topo_positions(n);
  const ConeSignature sa =
      fingerprint_cone(n, compute_cone(n, n.flop(fa).q, topo));
  const ConeSignature sb =
      fingerprint_cone(n, compute_cone(n, n.flop(fb).q, topo));
  EXPECT_FALSE(sa == sb);
}

TEST(IsoFingerprint, RemapCubeTranslatesByRank) {
  const std::vector<WireId> from = {WireId{2}, WireId{5}, WireId{9}};
  const std::vector<WireId> to = {WireId{11}, WireId{14}, WireId{30}};
  const Cube cube({Literal{WireId{2}, false}, Literal{WireId{9}, true}});
  const Cube mapped = remap_cube(cube, from, to);
  EXPECT_EQ(mapped,
            Cube({Literal{WireId{11}, false}, Literal{WireId{30}, true}}));
  // Rank map is monotone: cube ordering is preserved across translation.
  const Cube other({Literal{WireId{5}, true}});
  EXPECT_EQ(cube < other, mapped < remap_cube(other, from, to));
}

TEST(IsoFingerprint, GroupingClassesTwinWires) {
  const TwinCircuit t = build_twins();
  const std::vector<WireId> wires = {t.n.flop(t.fa).q, t.n.flop(t.fb).q,
                                     t.n.flop(t.fc).q};
  ThreadPool pool(2);
  const IsoGrouping g = group_isomorphic_cones(t.n, wires, pool);
  ASSERT_EQ(g.classes.size(), 2u);
  EXPECT_EQ(g.classes[0].members, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(g.classes[1].members, (std::vector<std::size_t>{2}));
  ASSERT_EQ(g.borders.size(), 3u);
  EXPECT_EQ(g.borders[0], (std::vector<WireId>{t.ena}));
  EXPECT_EQ(g.borders[1], (std::vector<WireId>{t.enb}));
}

TEST(MinimalCubeRecorderTest, DropsSupersetsInBothDirections) {
  MinimalCubeRecorder rec;
  const Cube a({Literal{WireId{1}, true}});
  const Cube b({Literal{WireId{2}, true}});
  const Cube c({Literal{WireId{3}, true}});

  // Supersets recorded first are evicted once the subset arrives.
  EXPECT_TRUE(rec.add({0, 1, 2}, a));
  EXPECT_TRUE(rec.add({3, 4}, b));
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_TRUE(rec.add({1, 2}, c)); // subsumes {0,1,2}
  EXPECT_EQ(rec.size(), 2u);

  // Supersets (and duplicates) of kept sets are rejected.
  EXPECT_FALSE(rec.add({1, 2, 5}, a));
  EXPECT_FALSE(rec.add({3, 4}, a));
  EXPECT_EQ(rec.size(), 2u);

  const std::vector<Cube> cubes = rec.take_cubes();
  EXPECT_EQ(cubes, (std::vector<Cube>{b, c}));
  EXPECT_EQ(rec.size(), 0u);
}

TEST(SearchIso, DedupMatchesOracleOnTwins) {
  const TwinCircuit t = build_twins();
  const std::vector<WireId> wires = {t.n.flop(t.fa).q, t.n.flop(t.fb).q,
                                     t.n.flop(t.fc).q};
  SearchParams params;
  params.threads = 2;
  const SearchResult oracle = run_mode(t.n, wires, params, false);
  const SearchResult dedup = run_mode(t.n, wires, params, true);
  expect_identical(oracle, dedup);
  EXPECT_EQ(oracle.dedup_classes, 0u);
  EXPECT_EQ(dedup.dedup_classes, 2u);

  // The remapped member MATE mentions *its* border wire, not the rep's.
  bool fb_masked_by_enb = false;
  for (const Mate& m : dedup.set.mates) {
    if (m.cube == Cube({Literal{t.enb, false}})) {
      fb_masked_by_enb =
          std::find(m.masked_wires.begin(), m.masked_wires.end(),
                    t.n.flop(t.fb).q) != m.masked_wires.end();
    }
  }
  EXPECT_TRUE(fb_masked_by_enb);
}

TEST(SearchIso, RandomCircuitsByteIdentical) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    netlist::RandomCircuitSpec spec;
    spec.num_inputs = 6;
    spec.num_flops = 12;
    spec.num_gates = 80;
    spec.allow_xor = (seed % 3 == 0);
    const Netlist n = random_circuit(spec, rng);

    SearchParams params;
    params.threads = 2;
    const std::vector<WireId> wires = all_flop_wires(n);
    const SearchResult oracle = run_mode(n, wires, params, false);
    const SearchResult dedup = run_mode(n, wires, params, true);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_identical(oracle, dedup);
    EXPECT_GE(dedup.dedup_classes, 1u);
    EXPECT_LE(dedup.dedup_classes, wires.size());
  }
}

TEST(SearchIso, GroupTopoOverloadMatchesConvenienceOverload) {
  const TwinCircuit t = build_twins();
  const WireId group[2] = {t.n.flop(t.fa).q, t.n.flop(t.fb).q};
  SearchParams params;
  const GroupOutcome a =
      find_group_mates(t.n, std::span<const WireId>(group, 2), params);
  const GroupOutcome b = find_group_mates(
      t.n, std::span<const WireId>(group, 2), params, topo_positions(t.n));
  EXPECT_EQ(a.wires, b.wires);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.cone_gates, b.cone_gates);
  EXPECT_EQ(a.num_paths, b.num_paths);
  EXPECT_EQ(a.candidates_tried, b.candidates_tried);
  EXPECT_EQ(a.mates, b.mates);
}

/// Full-flop-set identity on the real cores, trimmed search parameters so
/// the oracle side stays CI-sized. The dedup ratio must actually bite on
/// both cores (register files guarantee repeated cone shapes).
class SearchIsoCores : public ::testing::Test {
protected:
  static SearchParams core_params() {
    SearchParams p;
    p.path_depth = 8;
    p.max_candidates_per_wire = 2000;
    return p;
  }
};

TEST_F(SearchIsoCores, AvrFlopSetByteIdentical) {
  const Netlist n = cores::avr::build_avr_core(true).netlist;
  const std::vector<WireId> wires = all_flop_wires(n);
  const SearchResult oracle = run_mode(n, wires, core_params(), false);
  const SearchResult dedup = run_mode(n, wires, core_params(), true);
  expect_identical(oracle, dedup);
  EXPECT_GT(dedup.dedup_classes, 0u);
  EXPECT_LT(dedup.dedup_classes, wires.size() / 2)
      << "AVR register file should collapse into few classes";
}

TEST_F(SearchIsoCores, Msp430FlopSetByteIdentical) {
  const Netlist n = cores::msp430::build_msp430_core(true).netlist;
  const std::vector<WireId> wires = all_flop_wires(n);
  const SearchResult oracle = run_mode(n, wires, core_params(), false);
  const SearchResult dedup = run_mode(n, wires, core_params(), true);
  expect_identical(oracle, dedup);
  EXPECT_GT(dedup.dedup_classes, 0u);
  EXPECT_LT(dedup.dedup_classes, wires.size());
}

} // namespace
} // namespace ripple::mate
