// Streaming end-to-end smoke: a million-cycle AVR CRC-32 workload pushed
// through the chunked trace pipeline with simulation/evaluation overlap.
// The whole trace (cycles x wires bits) is never materialized — the test
// asserts, from the pipeline's own trace_bytes_peak stage counter, that
// peak resident trace memory stays below two chunks (producer fills chunk
// k+1 while the consumer scores chunk k) plus the recorder's 64-row block
// buffer. A second stream pass must replay every chunk from the artifact
// cache without re-simulating.
//
// Sanitizer builds (RIPPLE_SANITIZED) scale the workload down — same
// machinery, every thread interaction still exercised, TSan-friendly run
// time.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "mate/eval.hpp"
#include "mate/mate.hpp"
#include "pipeline/observer.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/stream.hpp"

namespace ripple::pipeline {
namespace {

#if defined(RIPPLE_SANITIZED)
constexpr std::size_t kCycles = 64 * 1024;      // scaled for sanitizer runs
constexpr std::size_t kChunkCycles = 16 * 1024; // still 4 chunks
#else
constexpr std::size_t kCycles = 1024 * 1024; // the million-cycle target
constexpr std::size_t kChunkCycles = sim::kDefaultChunkCycles; // 16 chunks
#endif

struct TempDir {
  std::filesystem::path path;

  TempDir() {
    const auto base = std::filesystem::temp_directory_path();
    for (int i = 0;; ++i) {
      auto candidate =
          base / ("ripple_stream_smoke_" + std::to_string(::getpid()) + "_" +
                  std::to_string(i));
      if (std::filesystem::create_directories(candidate)) {
        path = std::move(candidate);
        return;
      }
    }
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

struct Recorder : StageObserver {
  std::vector<StageStats> stages;
  void stage_end(const StageStats& stats) override { stages.push_back(stats); }
};

double counter(const StageStats& s, const char* name) {
  for (const auto& [key, value] : s.counters) {
    if (key == name) return value;
  }
  return -1.0;
}

/// A small synthetic MATE set over early core wires — the subject here is
/// the streaming machinery, not MATE quality; engine equivalence is covered
/// by eval_stream_test.
mate::MateSet smoke_mates() {
  mate::MateSet set;
  set.faulty_wires = {WireId{5}, WireId{9}, WireId{13}, WireId{21}};
  const auto add = [&set](std::vector<mate::Literal> lits,
                          std::vector<WireId> masked) {
    mate::Mate m;
    m.cube = mate::Cube(std::move(lits));
    m.masked_wires = std::move(masked);
    set.mates.push_back(std::move(m));
  };
  add({{WireId{10}, true}}, {WireId{5}, WireId{9}});
  add({{WireId{17}, false}, {WireId{33}, true}}, {WireId{13}});
  add({}, {WireId{21}}); // constant-true: triggers every cycle
  return set;
}

TEST(StreamSmoke, MillionCycleCrcBoundedMemory) {
  TempDir tmp;
  PipelineConfig config;
  config.cache_dir = tmp.path;
  config.trace_chunk_cycles = kChunkCycles;
  CampaignPipeline pipe(config);
  const auto rec_owner = std::make_shared<Recorder>();
  Recorder& rec = *rec_owner;
  pipe.add_observer(rec_owner);

  const auto stream = pipe.trace_stream(CoreKind::Avr, "crc", kCycles);
  const std::size_t wires = stream->num_wires();
  const std::size_t chunk_bytes = wires * (kChunkCycles / 64) * 8;
  const std::size_t rows_bytes = 64 * ((wires + 63) / 64) * 8;
  const std::size_t num_chunks = kCycles / kChunkCycles;

  const mate::MateSet set = smoke_mates();
  const mate::EvalResult result =
      pipe.evaluate_stream(set, *stream, stream->fingerprint(), "AVR crc");
  EXPECT_EQ(result.num_cycles, kCycles);
  ASSERT_EQ(result.per_mate.size(), set.mates.size());
  EXPECT_EQ(result.per_mate[2].triggers, kCycles); // the constant-true MATE

  // The nested record_trace stage simulated every chunk (cold cache) and
  // tracked the resident trace bytes.
  ASSERT_EQ(rec.stages.size(), 2u);
  const StageStats& record = rec.stages[0];
  const StageStats& evaluate = rec.stages[1];
  EXPECT_EQ(record.stage, "record_trace");
  EXPECT_EQ(evaluate.stage, "evaluate");
  EXPECT_EQ(counter(record, "chunks"), static_cast<double>(num_chunks));
  EXPECT_EQ(counter(record, "chunk_misses"), static_cast<double>(num_chunks));
  EXPECT_EQ(counter(record, "chunk_hits"), 0.0);

  // The memory bound of the tentpole: with overlap, at most the chunk being
  // produced plus the one being consumed are resident — never the whole
  // trace (num_chunks x chunk_bytes).
  const double peak = counter(record, "trace_bytes_peak");
  ASSERT_GT(peak, 0.0);
  EXPECT_GE(peak, static_cast<double>(chunk_bytes));
  EXPECT_LE(peak, static_cast<double>(2 * chunk_bytes + rows_bytes));

  // Second pass over the same stream: every chunk replays from the cache,
  // nothing re-simulates, and memory stays bounded the same way.
  struct CountSink final : sim::TraceSink {
    std::size_t chunks = 0;
    void on_chunk(sim::TraceChunk) override { ++chunks; }
  } replay;
  stream->stream(replay);
  EXPECT_EQ(replay.chunks, num_chunks);
  ASSERT_EQ(rec.stages.size(), 3u);
  EXPECT_EQ(counter(rec.stages[2], "chunk_hits"),
            static_cast<double>(num_chunks));
  EXPECT_EQ(counter(rec.stages[2], "chunk_misses"), 0.0);
  EXPECT_TRUE(rec.stages[2].cache_hit);
  const double replay_peak = counter(rec.stages[2], "trace_bytes_peak");
  ASSERT_GT(replay_peak, 0.0);
  EXPECT_LE(replay_peak, static_cast<double>(2 * chunk_bytes + rows_bytes));

  // And the cached evaluate artifact short-circuits a repeated evaluation.
  const mate::EvalResult again =
      pipe.evaluate_stream(set, *stream, stream->fingerprint(), "AVR crc");
  EXPECT_EQ(result, again);
  ASSERT_EQ(rec.stages.size(), 4u);
  EXPECT_TRUE(rec.stages[3].cache_hit);
}

} // namespace
} // namespace ripple::pipeline
