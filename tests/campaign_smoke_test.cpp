// End-to-end campaign smoke test (the `campaign_smoke` ctest target): a tiny
// sharded AVR campaign on 2 threads, run twice against the same temp cache
// directory with --resume semantics forced on. The second run must replay
// every shard from the checkpoint artifacts with a byte-identical merged
// result. Kept small enough for sanitizer builds (TSan included) and
// registered under a stable name so CI can invoke `ctest -R campaign_smoke`
// directly.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include <unistd.h>

#include "cores/avr/programs.hpp"
#include "hafi/avr_dut.hpp"
#include "hafi/campaign.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/pipeline.hpp"
#include "util/serialize.hpp"

namespace ripple::hafi {
namespace {

struct Recorder : pipeline::StageObserver {
  std::vector<pipeline::StageStats> stages;
  void stage_end(const pipeline::StageStats& s) override {
    stages.push_back(s);
  }
  [[nodiscard]] double counter(const std::string& name) const {
    for (const auto& [k, v] : stages.back().counters) {
      if (k == name) return v;
    }
    ADD_FAILURE() << "no counter " << name;
    return -1;
  }
};

TEST(CampaignSmoke, InterruptedCampaignResumesByteIdentical) {
  const auto cache_dir =
      std::filesystem::temp_directory_path() /
      ("ripple_campaign_smoke_" + std::to_string(::getpid()));
  std::filesystem::remove_all(cache_dir);
  std::filesystem::create_directories(cache_dir);

  const cores::avr::AvrCore core = cores::avr::build_avr_core(true);
  const cores::avr::Program program = cores::avr::fib_program();
  const std::uint64_t netlist_fp = pipeline::fingerprint(core.netlist);

  const auto run_once = [&](const std::shared_ptr<Recorder>& rec) {
    pipeline::PipelineConfig config;
    config.cache_dir = cache_dir;
    config.threads = 2;
    pipeline::CampaignPipeline pipe(config);
    pipe.add_observer(rec);

    pipeline::CampaignSpec spec;
    spec.factory = make_avr_factory(core, program);
    spec.config.run_cycles = 200;
    spec.config.sample = 24;
    spec.config.seed = 5;
    spec.config.threads = 2;
    spec.config.shard_size = 6; // 4 shards
    spec.netlist_fingerprint = netlist_fp;
    spec.resume = true;
    const CampaignResult result = pipe.campaign(std::move(spec), "smoke");
    ByteWriter w;
    pipeline::write_campaign_result(w, result);
    return w.take();
  };

  const auto cold = std::make_shared<Recorder>();
  const auto warm = std::make_shared<Recorder>();
  const std::vector<std::uint8_t> first = run_once(cold);
  const std::vector<std::uint8_t> second = run_once(warm);

  EXPECT_EQ(cold->counter("shards_resumed"), 0.0);
  EXPECT_EQ(warm->counter("shards"), 4.0);
  EXPECT_EQ(warm->counter("shards_resumed"), 4.0);
  EXPECT_EQ(first, second);

  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);
}

} // namespace
} // namespace ripple::hafi
