#include <gtest/gtest.h>

#include "mate/eval.hpp"
#include "mate/example.hpp"
#include "mate/faultspace.hpp"
#include "mate/lut_cost.hpp"
#include "mate/search.hpp"
#include "mate/select.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace ripple::mate {
namespace {

using netlist::Netlist;

/// Drive the Figure-1 circuit with a fixed 8-cycle input schedule (one row
/// per input a..e) and record the trace.
sim::Trace fig1_trace(const Figure1Circuit& fig,
                      const std::array<std::uint8_t, 5>& patterns) {
  sim::Simulator sim(fig.netlist);
  const WireId ins[5] = {fig.a, fig.b, fig.c, fig.d, fig.e};
  return sim::record_trace(sim, 8, [&](sim::Simulator& s, std::size_t c) {
    for (int i = 0; i < 5; ++i) {
      s.set_input(ins[i], (patterns[static_cast<std::size_t>(i)] >> c) & 1u);
    }
  });
}

TEST(MateEval, Figure1FaultSpaceReduction) {
  const Figure1Circuit fig = build_figure1_circuit();
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.c, fig.d, fig.e};
  const SearchResult r = find_mates(fig.netlist, faulty, {});

  // b = 0 in cycles 0,1; a = 0 in cycles 2,3; f/h make d benign in some
  // cycles depending on a,b,e.
  const sim::Trace trace =
      fig1_trace(fig, {0b11110011u, 0b11111100u, 0xffu, 0xffu, 0x0fu});
  const EvalResult eval = evaluate_mates(r.set, trace);

  EXPECT_EQ(eval.num_cycles, 8u);
  EXPECT_EQ(eval.num_faulty_wires, 5u);
  EXPECT_EQ(eval.fault_space(), 40u);
  EXPECT_GT(eval.masked_faults, 0u);
  EXPECT_LT(eval.masked_faults, 40u);
  EXPECT_GT(eval.effective_mates, 0u);
  EXPECT_GT(eval.avg_inputs, 0.0);

  // Cross-check against the benign matrix.
  const auto benign = benign_matrix(r.set, trace);
  std::size_t total = 0;
  for (const auto& row : benign) {
    for (bool b : row) total += b ? 1 : 0;
  }
  EXPECT_EQ(total, eval.masked_faults);
}

TEST(MateEval, ManualExpectations) {
  // Single MATE (!en) masking wire w: masked count = cycles where en == 0.
  Netlist n;
  const WireId en = n.add_input("en");
  const FlopId f = n.add_flop("f", false);
  const FlopId t = n.add_flop("t", false);
  n.connect_flop(t, n.add_gate_new(netlist::Kind::And2,
                                   {n.flop(f).q, en}, "k"));
  n.connect_flop(f, en);
  n.mark_output(n.flop(t).q);

  const SearchResult r = find_mates(n, {n.flop(f).q}, {});
  ASSERT_EQ(r.set.mates.size(), 1u);

  sim::Simulator sim(n);
  const sim::Trace trace =
      sim::record_trace(sim, 6, [&](sim::Simulator& s, std::size_t c) {
        s.set_input(en, c % 3 == 0); // en=1 in cycles 0 and 3
      });
  const EvalResult eval = evaluate_mates(r.set, trace);
  EXPECT_EQ(eval.masked_faults, 4u);
  EXPECT_DOUBLE_EQ(eval.masked_fraction(), 4.0 / 6.0);
  EXPECT_EQ(eval.per_mate[0].triggers, 4u);
  EXPECT_EQ(eval.effective_mates, 1u);
}

TEST(MateEval, TriggerListsKeptOnRequest) {
  const Figure1Circuit fig = build_figure1_circuit();
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.d};
  const SearchResult r = find_mates(fig.netlist, faulty, {});
  const sim::Trace trace = fig1_trace(fig, {0, 0, 0xff, 0xff, 0});
  const EvalResult with = evaluate_mates(r.set, trace, true);
  EXPECT_EQ(with.triggered_by_cycle.size(), 8u);
  const EvalResult without = evaluate_mates(r.set, trace, false);
  EXPECT_TRUE(without.triggered_by_cycle.empty());
  EXPECT_EQ(with.masked_faults, without.masked_faults);
}

TEST(MateSelect, TopNMatchesFullSetWhenNLarge) {
  const Figure1Circuit fig = build_figure1_circuit();
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.c, fig.d, fig.e};
  const SearchResult r = find_mates(fig.netlist, faulty, {});
  const sim::Trace trace =
      fig1_trace(fig, {0b10101010, 0b01100110, 0b11000011, 0xff, 0b00111100});

  const SelectionResult sel = rank_mates(r.set, trace);
  EXPECT_EQ(sel.ranking.size(), r.set.mates.size());

  const MateSet all = top_n(r.set, sel, r.set.mates.size() + 10);
  EXPECT_EQ(all.mates.size(), r.set.mates.size());
  EXPECT_EQ(evaluate_mates(all, trace).masked_faults,
            evaluate_mates(r.set, trace).masked_faults);
}

TEST(MateSelect, RankingIsByMarginalGain) {
  const Figure1Circuit fig = build_figure1_circuit();
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.c, fig.d, fig.e};
  const SearchResult r = find_mates(fig.netlist, faulty, {});
  const sim::Trace trace =
      fig1_trace(fig, {0b10101010, 0b01100110, 0b11000011, 0xff, 0b00111100});
  const SelectionResult sel = rank_mates(r.set, trace);
  // Hit counters are sorted descending along the ranking.
  for (std::size_t i = 1; i < sel.ranking.size(); ++i) {
    EXPECT_GE(sel.hits[sel.ranking[i - 1]], sel.hits[sel.ranking[i]]);
  }
  // Top-1 must achieve at least as much coverage as any single other MATE.
  const std::size_t top_masked =
      evaluate_mates(top_n(r.set, sel, 1), trace).masked_faults;
  for (std::size_t m = 0; m < r.set.mates.size(); ++m) {
    MateSet single;
    single.faulty_wires = r.set.faulty_wires;
    single.mates.push_back(r.set.mates[m]);
    EXPECT_GE(top_masked, evaluate_mates(single, trace).masked_faults);
  }
}

TEST(MateSelect, MonotoneCoverageInN) {
  const Figure1Circuit fig = build_figure1_circuit();
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.c, fig.d, fig.e};
  const SearchResult r = find_mates(fig.netlist, faulty, {});
  const sim::Trace trace =
      fig1_trace(fig, {0b00110101, 0b01010011, 0b10111101, 0xf0, 0b00101100});
  const SelectionResult sel = rank_mates(r.set, trace);
  std::size_t prev = 0;
  for (std::size_t k = 1; k <= r.set.mates.size(); ++k) {
    const std::size_t masked =
        evaluate_mates(top_n(r.set, sel, k), trace).masked_faults;
    EXPECT_GE(masked, prev);
    prev = masked;
  }
}

TEST(FaultGrid, RendersPaperStyleGrid) {
  const Figure1Circuit fig = build_figure1_circuit();
  const std::vector<WireId> faulty = {fig.a, fig.b, fig.c, fig.d, fig.e};
  const SearchResult r = find_mates(fig.netlist, faulty, {});
  const sim::Trace trace = fig1_trace(fig, {0, 0, 0xff, 0xff, 0});
  const std::string grid = render_fault_grid(fig.netlist, r.set, trace);
  EXPECT_NE(grid.find('o'), std::string::npos) << grid;
  EXPECT_NE(grid.find('*'), std::string::npos) << grid;
  EXPECT_NE(grid.find("a "), std::string::npos);
}

TEST(LutCost, ModelBoundaries) {
  Mate m;
  m.cube = Cube{};
  EXPECT_EQ(mate_luts(m), 0u);
  std::vector<Literal> lits;
  for (std::uint32_t i = 0; i < 6; ++i) lits.push_back({WireId{i}, true});
  m.cube = Cube(lits);
  EXPECT_EQ(mate_luts(m), 1u);
  lits.push_back({WireId{6}, true});
  m.cube = Cube(lits);
  EXPECT_EQ(mate_luts(m), 2u); // 7 inputs -> cascade of two 6-LUTs
  for (std::uint32_t i = 7; i < 11; ++i) lits.push_back({WireId{i}, true});
  m.cube = Cube(lits);
  EXPECT_EQ(mate_luts(m), 2u); // 11 = 6 + 5 still fits two
  lits.push_back({WireId{11}, true});
  m.cube = Cube(lits);
  EXPECT_EQ(mate_luts(m), 3u); // 12 inputs
}

TEST(LutCost, SetCostSumsAndStaysNegligible) {
  const Figure1Circuit fig = build_figure1_circuit();
  const SearchResult r = find_mates(
      fig.netlist, {fig.a, fig.b, fig.c, fig.d, fig.e}, {});
  const std::size_t luts = set_luts(r.set);
  EXPECT_GT(luts, 0u);
  EXPECT_LE(luts, r.set.mates.size() * 2u);
  const HafiPlatformCosts ref;
  EXPECT_LT(luts, ref.controller_luts_low);
}

} // namespace
} // namespace ripple::mate
