#include <gtest/gtest.h>

#include "netlist/dot.hpp"
#include "netlist/netlist.hpp"
#include "netlist/random.hpp"

namespace ripple::netlist {
namespace {

TEST(Netlist, BuildSmallCircuit) {
  Netlist n("t");
  const WireId a = n.add_input("a");
  const WireId b = n.add_input("b");
  const WireId y = n.add_gate_new(Kind::And2, {a, b}, "y");
  n.mark_output(y);
  n.check();
  EXPECT_EQ(n.num_wires(), 3u);
  EXPECT_EQ(n.num_gates(), 1u);
  EXPECT_EQ(n.primary_inputs().size(), 2u);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
  EXPECT_EQ(n.wire(y).driver_kind, DriverKind::Gate);
  EXPECT_EQ(n.gate(n.wire(y).driver_gate).kind, Kind::And2);
}

TEST(Netlist, FanoutTracked) {
  Netlist n;
  const WireId a = n.add_input("a");
  n.add_gate_new(Kind::Inv, {a}, "x");
  n.add_gate_new(Kind::Buf, {a}, "y");
  EXPECT_EQ(n.wire(a).gate_fanout.size(), 2u);
}

TEST(Netlist, FlopLifecycle) {
  Netlist n;
  const FlopId f = n.add_flop("state", true);
  const WireId q = n.flop(f).q;
  EXPECT_EQ(n.wire(q).driver_kind, DriverKind::Flop);
  EXPECT_TRUE(n.flop(f).init);
  const WireId d = n.add_gate_new(Kind::Inv, {q}, "d");
  n.connect_flop(f, d);
  n.mark_output(q);
  n.check();
  EXPECT_EQ(n.wire(d).flop_fanout.size(), 1u);
  EXPECT_EQ(n.find_flop("state").value(), f);
}

TEST(Netlist, DuplicateWireNameRejected) {
  Netlist n;
  n.add_input("a");
  EXPECT_THROW(n.add_wire("a"), Error);
}

TEST(Netlist, BadWireNameRejected) {
  Netlist n;
  EXPECT_THROW(n.add_wire("1bad"), Error);
  EXPECT_THROW(n.add_wire(""), Error);
  EXPECT_THROW(n.add_wire("x[y]"), Error);
  EXPECT_NO_THROW(n.add_wire("bus[12]"));
}

TEST(Netlist, DoubleDriveRejected) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId y = n.add_gate_new(Kind::Buf, {a}, "y");
  EXPECT_THROW(n.add_gate(Kind::Inv, {a}, y), Error);
}

TEST(Netlist, PinCountChecked) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId y = n.add_wire("y");
  EXPECT_THROW(n.add_gate(Kind::And2, {a}, y), Error);
}

TEST(Netlist, CheckCatchesUndriven) {
  Netlist n;
  n.add_wire("floating");
  EXPECT_THROW(n.check(), Error);
}

TEST(Netlist, CheckCatchesUnconnectedFlop) {
  Netlist n;
  n.add_flop("f", false);
  EXPECT_THROW(n.check(), Error);
}

TEST(Netlist, MarkOutputIdempotent) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId y = n.add_gate_new(Kind::Buf, {a}, "y");
  n.mark_output(y);
  n.mark_output(y);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
}

TEST(Netlist, AreaAndHistogram) {
  Netlist n;
  const WireId a = n.add_input("a");
  n.add_gate_new(Kind::Inv, {a}, "x");
  n.add_gate_new(Kind::Inv, {a}, "y");
  const FlopId f = n.add_flop("r", false);
  n.connect_flop(f, a);
  const auto hist = n.kind_histogram();
  EXPECT_EQ(hist.at(Kind::Inv), 2u);
  EXPECT_EQ(hist.at(Kind::Dff), 1u);
  EXPECT_GT(n.total_area(), 1.0);
}

TEST(RandomCircuit, AlwaysValid) {
  Rng rng(123);
  for (int i = 0; i < 20; ++i) {
    RandomCircuitSpec spec;
    spec.num_gates = 30 + i * 5;
    spec.num_flops = 4 + i % 5;
    const Netlist n = random_circuit(spec, rng);
    EXPECT_NO_THROW(n.check());
    EXPECT_EQ(n.num_flops(), spec.num_flops);
    EXPECT_EQ(n.num_gates(), spec.num_gates);
  }
}

TEST(RandomCircuit, Reproducible) {
  RandomCircuitSpec spec;
  Rng r1(9);
  Rng r2(9);
  const Netlist a = random_circuit(spec, r1);
  const Netlist b = random_circuit(spec, r2);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (GateId g : a.all_gates()) {
    EXPECT_EQ(a.gate(g).kind, b.gate(g).kind);
    EXPECT_EQ(a.gate(g).inputs, b.gate(g).inputs);
  }
}

TEST(Dot, ProducesGraph) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId y = n.add_gate_new(Kind::Inv, {a}, "y");
  n.mark_output(y);
  const std::string dot = to_dot(n);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("INV_X1"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Dot, HighlightsCone) {
  Netlist n;
  const WireId a = n.add_input("a");
  const WireId y = n.add_gate_new(Kind::Inv, {a}, "y");
  n.mark_output(y);
  DotOptions opt;
  opt.highlight_wires = {a};
  const std::string dot = to_dot(n, opt);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

} // namespace
} // namespace ripple::netlist
