#include <gtest/gtest.h>

#include "cores/avr/assembler.hpp"
#include "cores/avr/isa.hpp"
#include "cores/avr/programs.hpp"
#include "util/assert.hpp"

namespace ripple::cores::avr {
namespace {

TEST(AvrIsa, KnownEncodings) {
  // Reference words from the AVR instruction set manual.
  Instruction i;
  i.mnemonic = Mnemonic::Add;
  i.rd = 1;
  i.rr = 2;
  EXPECT_EQ(encode(i), 0x0c12u); // add r1, r2

  i.mnemonic = Mnemonic::Ldi;
  i.rd = 16;
  i.imm = 0xff;
  EXPECT_EQ(encode(i), 0xef0fu); // ldi r16, 0xff

  i.mnemonic = Mnemonic::Rjmp;
  i.offset = -1;
  EXPECT_EQ(encode(i), 0xcfffu); // rjmp .-1 (infinite loop)

  i.mnemonic = Mnemonic::Mov;
  i.rd = 26;
  i.rr = 20;
  EXPECT_EQ(encode(i), 0x2fa4u); // mov r26, r20

  i.mnemonic = Mnemonic::LdX;
  i.rd = 5;
  EXPECT_EQ(encode(i), 0x905cu); // ld r5, X

  i.mnemonic = Mnemonic::StX;
  i.rr = 5;
  EXPECT_EQ(encode(i), 0x925cu); // st X, r5

  i.mnemonic = Mnemonic::Brbc;
  i.sreg_bit = kZ;
  i.offset = -3;
  EXPECT_EQ(encode(i), 0xf7e9u); // brne .-3
}

TEST(AvrIsa, EncodeRejectsBadOperands) {
  Instruction i;
  i.mnemonic = Mnemonic::Ldi;
  i.rd = 3; // must be r16..r31
  EXPECT_THROW(encode(i), Error);

  i.mnemonic = Mnemonic::Rjmp;
  i.offset = 5000;
  EXPECT_THROW(encode(i), Error);

  i.mnemonic = Mnemonic::Brbs;
  i.offset = 100;
  i.sreg_bit = kC;
  EXPECT_THROW(encode(i), Error);
}

TEST(AvrIsa, DecodeUnknownIsNullopt) {
  EXPECT_FALSE(decode(0x9409).has_value()); // IJMP, outside subset
  EXPECT_FALSE(decode(0x95e8).has_value()); // SPM
}

class RoundTrip : public ::testing::TestWithParam<Mnemonic> {};

TEST_P(RoundTrip, EncodeDecodeIdentity) {
  const Mnemonic m = GetParam();
  for (int variant = 0; variant < 8; ++variant) {
    Instruction in;
    in.mnemonic = m;
    in.rd = static_cast<std::uint8_t>((variant * 5 + 1) % 32);
    in.rr = static_cast<std::uint8_t>((variant * 11 + 2) % 32);
    in.imm = static_cast<std::uint8_t>(variant * 37);
    in.offset = static_cast<std::int16_t>(variant * 9 - 30);
    in.sreg_bit = static_cast<std::uint8_t>(variant % 4);
    // Normalize fields the encoding does not carry for this mnemonic.
    switch (m) {
      case Mnemonic::Nop:
        in = Instruction{};
        break;
      case Mnemonic::Cpi:
      case Mnemonic::Sbci:
      case Mnemonic::Subi:
      case Mnemonic::Ori:
      case Mnemonic::Andi:
      case Mnemonic::Ldi:
        in.rd = static_cast<std::uint8_t>(16 + (in.rd % 16));
        in.rr = 0;
        in.offset = 0;
        in.sreg_bit = kC;
        break;
      case Mnemonic::Add:
      case Mnemonic::Adc:
      case Mnemonic::Sub:
      case Mnemonic::Sbc:
      case Mnemonic::And:
      case Mnemonic::Eor:
      case Mnemonic::Or:
      case Mnemonic::Mov:
      case Mnemonic::Cp:
      case Mnemonic::Cpc:
        in.imm = 0;
        in.offset = 0;
        in.sreg_bit = kC;
        break;
      case Mnemonic::Com:
      case Mnemonic::Inc:
      case Mnemonic::Dec:
      case Mnemonic::Lsr:
      case Mnemonic::Ror:
      case Mnemonic::LdX:
        in.rr = 0;
        in.imm = 0;
        in.offset = 0;
        in.sreg_bit = kC;
        break;
      case Mnemonic::StX:
        in.rd = 0;
        in.imm = 0;
        in.offset = 0;
        in.sreg_bit = kC;
        break;
      case Mnemonic::Rjmp:
        in.rd = in.rr = in.imm = 0;
        in.sreg_bit = kC;
        break;
      case Mnemonic::Brbs:
      case Mnemonic::Brbc:
        in.rd = in.rr = in.imm = 0;
        break;
      case Mnemonic::Out:
        in.rd = 0;
        in.imm = static_cast<std::uint8_t>(in.imm % 64);
        in.offset = 0;
        in.sreg_bit = kC;
        break;
    }
    const std::uint16_t word = encode(in);
    const auto out = decode(word);
    ASSERT_TRUE(out.has_value()) << "word " << word;
    EXPECT_EQ(*out, in) << disassemble(word);
    if (m == Mnemonic::Nop) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMnemonics, RoundTrip,
    ::testing::Values(Mnemonic::Nop, Mnemonic::Add, Mnemonic::Adc,
                      Mnemonic::Sub, Mnemonic::Sbc, Mnemonic::And,
                      Mnemonic::Eor, Mnemonic::Or, Mnemonic::Mov, Mnemonic::Cp,
                      Mnemonic::Cpc, Mnemonic::Cpi, Mnemonic::Sbci,
                      Mnemonic::Subi, Mnemonic::Ori, Mnemonic::Andi,
                      Mnemonic::Ldi, Mnemonic::Com, Mnemonic::Inc,
                      Mnemonic::Dec, Mnemonic::Lsr, Mnemonic::Ror,
                      Mnemonic::LdX, Mnemonic::StX, Mnemonic::Rjmp,
                      Mnemonic::Brbs, Mnemonic::Brbc, Mnemonic::Out));

TEST(AvrAsm, LabelsAndBranches) {
  const Program p = assemble(R"(
start:
    ldi r16, 1
loop:
    dec r16
    brne loop
    rjmp start
)");
  ASSERT_EQ(p.words.size(), 4u);
  const auto brne = decode(p.words[2]);
  ASSERT_TRUE(brne.has_value());
  EXPECT_EQ(brne->mnemonic, Mnemonic::Brbc);
  EXPECT_EQ(brne->offset, -2);
  const auto rjmp = decode(p.words[3]);
  EXPECT_EQ(rjmp->offset, -4);
}

TEST(AvrAsm, EquAndOrg) {
  const Program p = assemble(R"(
.equ PORT, 0x05
.org 2
    out PORT, r4
)");
  ASSERT_EQ(p.words.size(), 3u);
  EXPECT_EQ(p.words[0], 0u);
  const auto out = decode(p.words[2]);
  EXPECT_EQ(out->mnemonic, Mnemonic::Out);
  EXPECT_EQ(out->imm, 5);
  EXPECT_EQ(out->rr, 4);
}

TEST(AvrAsm, AliasesExpand) {
  const Program p = assemble(R"(
    lsl r4
    rol r5
    clr r6
    tst r7
)");
  EXPECT_EQ(decode(p.words[0])->mnemonic, Mnemonic::Add);
  EXPECT_EQ(decode(p.words[1])->mnemonic, Mnemonic::Adc);
  EXPECT_EQ(decode(p.words[2])->mnemonic, Mnemonic::Eor);
  EXPECT_EQ(decode(p.words[3])->mnemonic, Mnemonic::And);
}

TEST(AvrAsm, NegativeImmediateWraps) {
  const Program p = assemble("subi r26, -16");
  const auto i = decode(p.words[0]);
  EXPECT_EQ(i->imm, 0xf0);
}

TEST(AvrAsm, Errors) {
  EXPECT_THROW(assemble("bogus r1"), Error);
  EXPECT_THROW(assemble("add r1"), Error);
  EXPECT_THROW(assemble("add r1, r40"), Error);
  EXPECT_THROW(assemble("rjmp nowhere"), Error);
  EXPECT_THROW(assemble("ldi r3, 1"), Error);  // r16..r31 only
  EXPECT_THROW(assemble("x: nop\nx: nop"), Error);
  EXPECT_THROW(assemble("ld r1, Y"), Error);
}

TEST(AvrAsm, CommentsIgnored) {
  const Program p = assemble(R"(
 ; full-line comment
    nop       ; trailing
    nop       // c++ style
)");
  EXPECT_EQ(p.words.size(), 2u);
}

TEST(AvrIsa, DisassembleSamples) {
  EXPECT_EQ(disassemble(0x0c12), "add r1, r2");
  EXPECT_EQ(disassemble(0xef0f), "ldi r16, 0xff");
  EXPECT_EQ(disassemble(0x0000), "nop");
  EXPECT_EQ(disassemble(0xffff), ".word 0xffff");
}

TEST(AvrPrograms, WorkloadsAssemble) {
  EXPECT_GT(fib_program().words.size(), 10u);
  EXPECT_GT(conv_program().words.size(), 30u);
}

} // namespace
} // namespace ripple::cores::avr
