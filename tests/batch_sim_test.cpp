// BatchSimulator contracts: every lane of the 64-lane word-parallel engine
// behaves exactly like an independent scalar Simulator — per cell kind
// (against the library truth tables), on randomized synchronous circuits
// with per-lane inputs, and for the fault-injection primitives (lane-masked
// flip_flop, XOR-vs-golden-lane state_divergence).
#include <gtest/gtest.h>

#include <array>

#include "cell/library.hpp"
#include "netlist/random.hpp"
#include "sim/batch.hpp"
#include "sim/simulator.hpp"

namespace ripple::sim {
namespace {

using netlist::Kind;
using netlist::Netlist;

TEST(BatchSim, EveryCellKindMatchesTruthTable) {
  // One gate per combinational kind, all fed from the same four inputs;
  // lanes 0..15 carry the 16 input assignments, so one eval checks every
  // kind against every row of its truth table at once.
  Netlist n;
  Bus in;
  for (int i = 0; i < 4; ++i) {
    in.push_back(n.add_input("in" + std::to_string(i)));
  }
  std::vector<std::pair<cell::Kind, WireId>> outs;
  for (const cell::Kind kind :
       cell::Library::instance().combinational_kinds()) {
    std::vector<WireId> gate_in(in.begin(),
                                in.begin() + static_cast<std::ptrdiff_t>(
                                                 cell::num_inputs(kind)));
    const WireId out = n.add_gate_new(kind, gate_in,
                                      std::string(cell::name(kind)) + "_out");
    n.mark_output(out);
    outs.emplace_back(kind, out);
  }

  BatchSimulator sim(n);
  // Input j's word: bit lane = bit j of the assignment `lane & 15`.
  for (std::size_t j = 0; j < in.size(); ++j) {
    std::uint64_t word = 0;
    for (unsigned lane = 0; lane < kBatchLanes; ++lane) {
      word |= static_cast<std::uint64_t>((lane >> j) & 1u) << lane;
    }
    sim.set_input(in[j], word);
  }
  sim.eval();
  for (const auto& [kind, out] : outs) {
    const std::uint64_t word = sim.value(out);
    for (unsigned lane = 0; lane < kBatchLanes; ++lane) {
      const std::uint32_t assignment =
          (lane & 15u) & ((1u << cell::num_inputs(kind)) - 1u);
      EXPECT_EQ((word >> lane) & 1u,
                static_cast<std::uint64_t>(cell::eval(kind, assignment)))
          << cell::name(kind) << " lane " << lane;
    }
  }
}

TEST(BatchSim, LanesMatchScalarOnRandomCircuits) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    netlist::RandomCircuitSpec spec;
    spec.num_inputs = 6;
    spec.num_flops = 10;
    spec.num_gates = 80;
    const Netlist n = random_circuit(spec, rng);
    const auto inputs = n.primary_inputs();

    // Drive every lane with its own random input stream for 16 cycles and
    // record the batch wire words per cycle...
    constexpr std::size_t kCycles = 16;
    BatchSimulator batch(n);
    std::vector<std::vector<std::uint64_t>> input_words(
        kCycles, std::vector<std::uint64_t>(inputs.size()));
    std::vector<std::vector<std::uint64_t>> wire_words(kCycles);
    for (std::size_t c = 0; c < kCycles; ++c) {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        input_words[c][i] = rng.next_u64();
        batch.set_input(inputs[i], input_words[c][i]);
      }
      batch.eval();
      for (WireId w : n.all_wires()) {
        wire_words[c].push_back(batch.value(w));
      }
      batch.latch();
    }

    // ...then replay a handful of lanes on the scalar simulator and demand
    // bit-exact agreement on every wire of every cycle.
    for (const unsigned lane : {0u, 1u, 31u, 63u}) {
      Simulator scalar(n);
      for (std::size_t c = 0; c < kCycles; ++c) {
        for (std::size_t i = 0; i < inputs.size(); ++i) {
          scalar.set_input(inputs[i], (input_words[c][i] >> lane) & 1u);
        }
        scalar.eval();
        std::size_t wi = 0;
        for (WireId w : n.all_wires()) {
          ASSERT_EQ((wire_words[c][wi++] >> lane) & 1u,
                    static_cast<std::uint64_t>(scalar.value(w)))
              << "seed " << seed << " lane " << lane << " cycle " << c
              << " wire '" << n.wire(w).name << "'";
        }
        scalar.latch();
      }
    }
  }
}

TEST(BatchSim, FlipFlopMaskAndStateDivergence) {
  // A hold register: r' = r. Flipping lanes {3, 7} diverges exactly those
  // lanes from the golden lane 0; flipping them back reconverges.
  Netlist n;
  const FlopId f = n.add_flop("r", false);
  const WireId q = n.flop(f).q;
  n.connect_flop(f, q);
  n.mark_output(q);

  BatchSimulator sim(n);
  EXPECT_EQ(sim.state_divergence(0), 0u);

  const LaneMask faulty = (LaneMask{1} << 3) | (LaneMask{1} << 7);
  sim.flip_flop(f, faulty);
  EXPECT_EQ(sim.state_divergence(0), faulty);
  sim.eval();
  EXPECT_EQ(sim.value(q), faulty);

  sim.step(); // the hold loop keeps the fault alive
  EXPECT_EQ(sim.state_divergence(0), faulty);

  // Relative to a faulty lane, everyone else is the diverged one.
  EXPECT_EQ(sim.state_divergence(3), ~faulty);

  sim.flip_flop(f, faulty);
  EXPECT_EQ(sim.state_divergence(0), 0u);

  sim.flip_flop(f, LaneMask{1} << 5);
  sim.reset();
  EXPECT_EQ(sim.state_divergence(0), 0u);
  EXPECT_EQ(sim.cycle(), 0u);
}

TEST(BatchSim, BusHelpersRoundTripPerLane) {
  Netlist n;
  Bus in;
  for (int i = 0; i < 8; ++i) {
    in.push_back(n.add_input("in[" + std::to_string(i) + "]"));
  }
  Bus out;
  for (int i = 0; i < 8; ++i) {
    out.push_back(n.add_gate_new(Kind::Inv, {in[i]},
                                 "out[" + std::to_string(i) + "]"));
    n.mark_output(out[i]);
  }
  BatchSimulator sim(n);

  std::array<std::uint64_t, kBatchLanes> lane_values{};
  for (unsigned lane = 0; lane < kBatchLanes; ++lane) {
    lane_values[lane] = (0xa5u + lane * 3u) & 0xffu;
  }
  sim.drive_bus(in, lane_values);
  sim.eval();
  for (const unsigned lane : {0u, 1u, 42u, 63u}) {
    EXPECT_EQ(sim.read_bus(in, lane), lane_values[lane]);
    EXPECT_EQ(sim.read_bus(out, lane), (~lane_values[lane]) & 0xffu);
  }

  sim.drive_bus_broadcast(in, 0x3c);
  sim.eval();
  for (const unsigned lane : {0u, 17u, 63u}) {
    EXPECT_EQ(sim.read_bus(in, lane), 0x3cu);
    EXPECT_EQ(sim.read_bus(out, lane), 0xc3u);
  }
}

TEST(BatchSim, ResetRestoresInitPerLane) {
  Netlist n;
  const FlopId f1 = n.add_flop("r1", true);
  const FlopId f0 = n.add_flop("r0", false);
  n.connect_flop(f1, n.flop(f1).q);
  n.connect_flop(f0, n.flop(f0).q);
  n.mark_output(n.flop(f1).q);
  n.mark_output(n.flop(f0).q);
  BatchSimulator sim(n);
  // init=true seeds all 64 lanes set, init=false all clear.
  EXPECT_EQ(sim.value(n.flop(f1).q), ~std::uint64_t{0});
  EXPECT_EQ(sim.value(n.flop(f0).q), 0u);
}

} // namespace
} // namespace ripple::sim
